module hetsyslog

go 1.22
