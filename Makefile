# hetsyslog — build and reproduction targets.

GO ?= go

.PHONY: all build vet test bench experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate every table and figure (laptop scale; SCALE=196393 for the
# paper's full corpus).
SCALE ?= 20000
experiments:
	$(GO) run ./cmd/experiments -scale $(SCALE)

# One benchmark per table/figure plus the per-package ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/llmcompare
	$(GO) run ./examples/monitoring
	$(GO) run ./examples/driftretrain
	$(GO) run ./examples/summarize

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
