// Package hetsyslog reproduces "Heterogeneous Syslog Analysis: There Is
// Hope" (Quan, Howell, Greenberg — LANL; SC 2023 SYSPROS workshop): a
// real-time syslog classification system for heterogeneous test-bed
// clusters, built entirely from the standard library.
//
// The library lives under internal/ (see DESIGN.md for the module
// inventory), runnable binaries under cmd/, worked examples under
// examples/, and the benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation (EXPERIMENTS.md records the
// paper-vs-measured comparison).
package hetsyslog
