package linear

import (
	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// Ridge is a one-vs-rest ridge-regression classifier: for each class it
// regresses targets in {-1,+1} with L2 penalty and classifies by the
// highest regression output — scikit-learn's RidgeClassifier. The normal
// equations (XᵀX + αI)w = Xᵀy are solved per class by conjugate gradient,
// which needs only sparse matrix–vector products and mirrors the
// "sparse_cg" solver the paper's setup would have used on this data.
type Ridge struct {
	// Alpha is the L2 penalty (default 1.0).
	Alpha float64
	// MaxIter bounds CG iterations per class (default 100).
	MaxIter int
	// Tol is the CG residual tolerance (default 1e-6).
	Tol float64

	w    [][]float64
	bias []float64
	k    int
}

// Name implements ml.Classifier.
func (m *Ridge) Name() string { return "Ridge Classifier" }

func (m *Ridge) defaults() {
	if m.Alpha == 0 {
		m.Alpha = 1.0
	}
	if m.MaxIter == 0 {
		m.MaxIter = 100
	}
	if m.Tol == 0 {
		m.Tol = 1e-6
	}
}

// Fit solves one ridge problem per class, in parallel.
func (m *Ridge) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	m.defaults()
	m.k = ds.NumClasses()
	dims := ds.X.Cols
	m.w = make([][]float64, m.k)
	m.bias = make([]float64, m.k)

	ovrParallel(m.k, func(c int) {
		// Build targets and their mean (the bias absorbs the intercept:
		// center y, fit w on raw X, then bias = mean(y) - mean-feature
		// correction; with L2-normalized TF-IDF rows the simple
		// mean-target intercept works well).
		y := make([]float64, ds.Len())
		var mean float64
		for i, yi := range ds.Y {
			if yi == c {
				y[i] = 1
			} else {
				y[i] = -1
			}
			mean += y[i]
		}
		mean /= float64(len(y))
		for i := range y {
			y[i] -= mean
		}
		// rhs = Xᵀ y
		rhs := make([]float64, dims)
		for i, row := range ds.X.Rows {
			sparse.AxpyDense(y[i], row, rhs)
		}
		m.w[c] = conjugateGradient(ds.X, m.Alpha, rhs, m.MaxIter, m.Tol)
		m.bias[c] = mean
	})
	return nil
}

// conjugateGradient solves (XᵀX + αI)w = rhs.
func conjugateGradient(X *sparse.Matrix, alpha float64, rhs []float64, maxIter int, tol float64) []float64 {
	dims := len(rhs)
	w := make([]float64, dims)
	r := append([]float64(nil), rhs...) // r = rhs - A*0
	p := append([]float64(nil), rhs...)
	ap := make([]float64, dims)
	xv := make([]float64, len(X.Rows))

	rr := dot(r, r)
	if rr == 0 {
		return w
	}
	tol2 := tol * tol * rr
	for iter := 0; iter < maxIter; iter++ {
		// ap = (XᵀX + αI) p
		for i, row := range X.Rows {
			xv[i] = sparse.DotDense(row, p)
		}
		for i := range ap {
			ap[i] = alpha * p[i]
		}
		for i, row := range X.Rows {
			if xv[i] != 0 {
				sparse.AxpyDense(xv[i], row, ap)
			}
		}
		pap := dot(p, ap)
		if pap <= 0 {
			break
		}
		step := rr / pap
		for i := range w {
			w[i] += step * p[i]
			r[i] -= step * ap[i]
		}
		rrNew := dot(r, r)
		if rrNew < tol2 {
			break
		}
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return w
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// DecisionScores returns the per-class regression outputs.
func (m *Ridge) DecisionScores(x sparse.Vector) []float64 {
	out := make([]float64, m.k)
	for c := 0; c < m.k; c++ {
		out[c] = sparse.DotDense(x, m.w[c]) + m.bias[c]
	}
	return out
}

// Predict implements ml.Classifier.
func (m *Ridge) Predict(x sparse.Vector) int {
	return argmax(m.DecisionScores(x))
}
