// Package linear implements the four linear models of the paper's
// evaluation (Figure 3): multinomial Logistic Regression, a Ridge
// classifier solved by conjugate gradient, Linear SVC trained with
// liblinear-style dual coordinate descent, and a log-loss SGD classifier.
// One-vs-rest problems are trained in parallel, one goroutine per class.
package linear

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// ErrNotFitted is returned by Predict paths when Fit has not run.
var ErrNotFitted = errors.New("linear: model not fitted")

// LogisticRegression is a multinomial (softmax) logistic regression trained
// by SGD with an inverse-scaling learning-rate schedule and L2 regularization.
type LogisticRegression struct {
	// Epochs is the number of passes over the training set (default 30).
	Epochs int
	// LR0 is the initial learning rate (default 0.5).
	LR0 float64
	// L2 is the regularization strength (default 1e-6).
	L2 float64
	// Balanced reweights each sample's gradient by n/(k*count(class)),
	// scikit-learn's class_weight="balanced" — an alternative to
	// resampling for the corpus's extreme class imbalance (§4.4.2).
	Balanced bool
	// Seed drives the per-epoch shuffle.
	Seed int64

	w    [][]float64 // [class][feature]
	bias []float64
	k    int
}

// Name implements ml.Classifier.
func (m *LogisticRegression) Name() string { return "Logistic Regression" }

func (m *LogisticRegression) defaults() {
	if m.Epochs == 0 {
		m.Epochs = 30
	}
	if m.LR0 == 0 {
		m.LR0 = 0.5
	}
	if m.L2 == 0 {
		m.L2 = 1e-6
	}
}

// Fit trains with multinomial SGD.
func (m *LogisticRegression) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	m.defaults()
	m.k = ds.NumClasses()
	dims := ds.X.Cols
	m.w = make([][]float64, m.k)
	for c := range m.w {
		m.w[c] = make([]float64, dims)
	}
	m.bias = make([]float64, m.k)

	weights := balancedWeights(ds, m.Balanced)
	rng := rand.New(rand.NewSource(m.Seed + 1))
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	scores := make([]float64, m.k)
	t := 0.0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			t++
			lr := m.LR0 / (1 + m.LR0*m.L2*t)
			x := ds.X.Rows[i]
			y := ds.Y[i]
			m.rawScores(x, scores)
			softmaxInPlace(scores)
			sw := weights[y]
			for c := 0; c < m.k; c++ {
				g := scores[c] * sw
				if c == y {
					g -= sw
				}
				if g == 0 {
					continue
				}
				sparse.AxpyDense(-lr*g, x, m.w[c])
				m.bias[c] -= lr * g
			}
			// L2 shrink applied lazily per step on touched rows would be
			// exact; a global multiplicative decay per step is the usual
			// SGD approximation and keeps the update O(nnz).
			if m.L2 > 0 {
				decay := 1 - lr*m.L2
				if decay < 1 {
					for c := 0; c < m.k; c++ {
						scaleTouched(m.w[c], x, decay)
					}
				}
			}
		}
	}
	return nil
}

// scaleTouched multiplies only the weights touched by x's support — the
// sparse-friendly approximation of global weight decay.
func scaleTouched(w []float64, x sparse.Vector, decay float64) {
	for _, i := range x.Idx {
		if int(i) < len(w) {
			w[i] *= decay
		}
	}
}

func (m *LogisticRegression) rawScores(x sparse.Vector, out []float64) {
	for c := 0; c < m.k; c++ {
		out[c] = sparse.DotDense(x, m.w[c]) + m.bias[c]
	}
}

// DecisionScores returns class log-odds scores.
func (m *LogisticRegression) DecisionScores(x sparse.Vector) []float64 {
	out := make([]float64, m.k)
	m.rawScores(x, out)
	return out
}

// Predict implements ml.Classifier.
func (m *LogisticRegression) Predict(x sparse.Vector) int {
	scores := make([]float64, m.k)
	m.rawScores(x, scores)
	return argmax(scores)
}

// Proba returns calibrated class probabilities via softmax.
func (m *LogisticRegression) Proba(x sparse.Vector) []float64 {
	s := m.DecisionScores(x)
	softmaxInPlace(s)
	return s
}

func softmaxInPlace(s []float64) {
	mx := math.Inf(-1)
	for _, v := range s {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range s {
		e := math.Exp(v - mx)
		s[i] = e
		sum += e
	}
	for i := range s {
		s[i] /= sum
	}
}

func argmax(s []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range s {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ovrParallel runs fn for each class index on up to GOMAXPROCS workers;
// used by the one-vs-rest trainers.
func ovrParallel(k int, fn func(c int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				fn(c)
			}
		}()
	}
	for c := 0; c < k; c++ {
		work <- c
	}
	close(work)
	wg.Wait()
}

// balancedWeights returns per-class sample weights n/(k*count) when
// enabled, or all-ones otherwise.
func balancedWeights(ds *ml.Dataset, enabled bool) []float64 {
	k := ds.NumClasses()
	w := make([]float64, k)
	if !enabled {
		for c := range w {
			w[c] = 1
		}
		return w
	}
	counts := ds.ClassCounts()
	n := float64(ds.Len())
	for c := range w {
		if counts[c] > 0 {
			w[c] = n / (float64(k) * float64(counts[c]))
		}
	}
	return w
}
