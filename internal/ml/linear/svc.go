package linear

import (
	"math"
	"math/rand"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// SVC is a one-vs-rest linear support vector classifier with L1 hinge loss
// and L2 regularization, trained by the liblinear dual coordinate descent
// method (Hsieh et al., ICML 2008) — the algorithm behind scikit-learn's
// LinearSVC used in the paper. Dual CD runs many full passes over the
// training set per class, which is why LinearSVC posts by far the longest
// training time in Figure 3; the same behaviour emerges here.
type SVC struct {
	// C is the penalty parameter (default 1.0).
	C float64
	// MaxIter bounds the number of outer passes per class (default 1000,
	// liblinear's default).
	MaxIter int
	// Tol is the duality-gap style stopping tolerance on projected
	// gradients (default 1e-4).
	Tol float64
	// Balanced applies per-class box constraints C*n/(2*count) in each
	// one-vs-rest problem (liblinear's class_weight="balanced").
	Balanced bool
	// Seed drives coordinate shuffling.
	Seed int64

	w    [][]float64
	bias []float64
	k    int
}

// Name implements ml.Classifier.
func (m *SVC) Name() string { return "Linear SVC" }

func (m *SVC) defaults() {
	if m.C == 0 {
		m.C = 1.0
	}
	if m.MaxIter == 0 {
		m.MaxIter = 1000
	}
	if m.Tol == 0 {
		m.Tol = 1e-4
	}
}

// Fit trains one binary dual-CD problem per class, in parallel.
func (m *SVC) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	m.defaults()
	m.k = ds.NumClasses()
	m.w = make([][]float64, m.k)
	m.bias = make([]float64, m.k)

	// Per-sample squared norms, shared across the binary problems. The
	// bias is folded in as a constant feature of value 1 (liblinear's
	// -B 1), so Qii = ||x||² + 1.
	qii := make([]float64, ds.Len())
	for i, row := range ds.X.Rows {
		n := row.Norm()
		qii[i] = n*n + 1
	}

	ovrParallel(m.k, func(c int) {
		w, b := m.trainBinary(ds, c, qii)
		m.w[c] = w
		m.bias[c] = b
	})
	return nil
}

func (m *SVC) trainBinary(ds *ml.Dataset, class int, qii []float64) ([]float64, float64) {
	n := ds.Len()
	dims := ds.X.Cols
	w := make([]float64, dims)
	bias := 0.0
	alpha := make([]float64, n)
	y := make([]float64, n)
	for i, yi := range ds.Y {
		if yi == class {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	// Per-sample box upper bound: balanced mode upweights the rarer side
	// of each binary problem.
	upper := make([]float64, n)
	nPos := 0
	for _, yi := range ds.Y {
		if yi == class {
			nPos++
		}
	}
	for i := range upper {
		upper[i] = m.C
		if m.Balanced && nPos > 0 && nPos < n {
			if y[i] > 0 {
				upper[i] = m.C * float64(n) / (2 * float64(nPos))
			} else {
				upper[i] = m.C * float64(n) / (2 * float64(n-nPos))
			}
		}
	}
	rng := rand.New(rand.NewSource(m.Seed + int64(class)*7919 + 3))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for pass := 0; pass < m.MaxIter; pass++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		maxPG := 0.0
		for _, i := range order {
			x := ds.X.Rows[i]
			// G = y_i * f(x_i) - 1
			g := y[i]*(sparse.DotDense(x, w)+bias) - 1
			// Projected gradient for box constraint alpha in [0, C].
			pg := g
			switch {
			case alpha[i] <= 0 && g > 0:
				pg = 0
			case alpha[i] >= upper[i] && g < 0:
				pg = 0
			}
			if a := math.Abs(pg); a > maxPG {
				maxPG = a
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			na := old - g/qii[i]
			if na < 0 {
				na = 0
			} else if na > upper[i] {
				na = upper[i]
			}
			alpha[i] = na
			delta := (na - old) * y[i]
			if delta != 0 {
				sparse.AxpyDense(delta, x, w)
				bias += delta
			}
		}
		if maxPG < m.Tol {
			break
		}
	}
	return w, bias
}

// DecisionScores returns the per-class margins.
func (m *SVC) DecisionScores(x sparse.Vector) []float64 {
	out := make([]float64, m.k)
	for c := 0; c < m.k; c++ {
		out[c] = sparse.DotDense(x, m.w[c]) + m.bias[c]
	}
	return out
}

// Predict implements ml.Classifier.
func (m *SVC) Predict(x sparse.Vector) int {
	return argmax(m.DecisionScores(x))
}
