package linear

import (
	"math"
	"math/rand"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// SGD is a one-vs-rest binary logistic classifier trained with a small,
// fixed number of stochastic gradient passes — scikit-learn's
// SGDClassifier(loss="log_loss"). It trades a little accuracy for a very
// fast training time, which is exactly its position in Figure 3
// (F1 0.9878, 0.47 s train).
type SGD struct {
	// Epochs is the number of passes (default 5, sklearn's early-stopping
	// territory).
	Epochs int
	// LR0 is the initial learning rate for the inverse-scaling schedule
	// (default 0.1).
	LR0 float64
	// Alpha is the L2 penalty (default 1e-6).
	Alpha float64
	// Seed drives shuffling.
	Seed int64

	w    [][]float64
	bias []float64
	k    int
}

// Name implements ml.Classifier.
func (m *SGD) Name() string { return "Log-loss SGD" }

func (m *SGD) defaults() {
	if m.Epochs == 0 {
		m.Epochs = 5
	}
	if m.LR0 == 0 {
		m.LR0 = 0.1
	}
	if m.Alpha == 0 {
		m.Alpha = 1e-6
	}
}

// Fit trains the per-class binary problems in parallel.
func (m *SGD) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	m.defaults()
	m.k = ds.NumClasses()
	m.w = make([][]float64, m.k)
	m.bias = make([]float64, m.k)

	ovrParallel(m.k, func(c int) {
		w := make([]float64, ds.X.Cols)
		bias := 0.0
		rng := rand.New(rand.NewSource(m.Seed + int64(c)*104729 + 17))
		order := make([]int, ds.Len())
		for i := range order {
			order[i] = i
		}
		t := 0.0
		for epoch := 0; epoch < m.Epochs; epoch++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				t++
				lr := m.LR0 / math.Pow(1+t*m.Alpha*m.LR0, 0.25)
				x := ds.X.Rows[i]
				yi := -1.0
				if ds.Y[i] == c {
					yi = 1.0
				}
				z := yi * (sparse.DotDense(x, w) + bias)
				// d/dz log(1+exp(-z)) = -sigmoid(-z)
				g := -yi / (1 + math.Exp(z))
				if g != 0 {
					sparse.AxpyDense(-lr*g, x, w)
					bias -= lr * g
				}
				if m.Alpha > 0 {
					scaleTouched(w, x, 1-lr*m.Alpha)
				}
			}
		}
		m.w[c] = w
		m.bias[c] = bias
	})
	return nil
}

// DecisionScores returns the per-class logits.
func (m *SGD) DecisionScores(x sparse.Vector) []float64 {
	out := make([]float64, m.k)
	for c := 0; c < m.k; c++ {
		out[c] = sparse.DotDense(x, m.w[c]) + m.bias[c]
	}
	return out
}

// Predict implements ml.Classifier.
func (m *SGD) Predict(x sparse.Vector) int {
	return argmax(m.DecisionScores(x))
}
