package linear

import (
	"testing"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/ml/mltest"
	"hetsyslog/internal/sparse"
)

func trainTest(t *testing.T) (*ml.Dataset, *ml.Dataset) {
	t.Helper()
	ds := mltest.Generate(mltest.Config{
		Classes: 5, PerClass: 80, FeatPerCls: 8, SharedFeats: 4,
		NoiseProb: 0.1, Seed: 2,
	})
	return ml.StratifiedSplit(ds, 0.25, 3)
}

func checkModel(t *testing.T, m ml.Classifier, minAcc float64) {
	t.Helper()
	train, test := trainTest(t)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(m, test); acc < minAcc {
		t.Errorf("%s test accuracy = %.3f, want >= %.2f", m.Name(), acc, minAcc)
	}
	if acc := mltest.Accuracy(m, train); acc < minAcc {
		t.Errorf("%s train accuracy = %.3f, want >= %.2f", m.Name(), acc, minAcc)
	}
}

func TestLogisticRegression(t *testing.T) { checkModel(t, &LogisticRegression{}, 0.95) }
func TestRidge(t *testing.T)              { checkModel(t, &Ridge{}, 0.95) }
func TestSVC(t *testing.T)                { checkModel(t, &SVC{MaxIter: 200}, 0.95) }
func TestSGD(t *testing.T)                { checkModel(t, &SGD{}, 0.90) }

func TestNames(t *testing.T) {
	names := map[ml.Classifier]string{
		&LogisticRegression{}: "Logistic Regression",
		&Ridge{}:              "Ridge Classifier",
		&SVC{}:                "Linear SVC",
		&SGD{}:                "Log-loss SGD",
	}
	for m, want := range names {
		if m.Name() != want {
			t.Errorf("Name() = %q, want %q", m.Name(), want)
		}
	}
}

func TestFitRejectsBadDataset(t *testing.T) {
	bad := &ml.Dataset{
		X: &sparse.Matrix{Rows: make([]sparse.Vector, 1), Cols: 1},
		Y: []int{9}, Labels: []string{"a"},
	}
	for _, m := range []ml.Classifier{&LogisticRegression{}, &Ridge{}, &SVC{}, &SGD{}} {
		if err := m.Fit(bad); err == nil {
			t.Errorf("%s.Fit accepted invalid dataset", m.Name())
		}
	}
}

func TestLogRegProbaSumsToOne(t *testing.T) {
	train, test := trainTest(t)
	m := &LogisticRegression{}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.X.Rows[:10] {
		p := m.Proba(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", p)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestDecisionScoresArgmaxIsPredict(t *testing.T) {
	train, test := trainTest(t)
	models := []ml.Classifier{&LogisticRegression{}, &Ridge{}, &SVC{MaxIter: 100}, &SGD{}}
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		scorer := m.(ml.DecisionScorer)
		for _, x := range test.X.Rows[:20] {
			s := scorer.DecisionScores(x)
			if argmax(s) != m.Predict(x) {
				t.Errorf("%s: DecisionScores argmax != Predict", m.Name())
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	train, test := trainTest(t)
	a := &LogisticRegression{Seed: 5}
	b := &LogisticRegression{Seed: 5}
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.X.Rows {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed should give identical predictions")
		}
	}
}

func TestConjugateGradientSolvesRidgeSystem(t *testing.T) {
	// Small dense system: X = I (3x3), alpha=1 -> (I+I)w = rhs -> w = rhs/2.
	X := &sparse.Matrix{Cols: 3}
	for i := 0; i < 3; i++ {
		X.Rows = append(X.Rows, sparse.NewVectorFromMap(map[int32]float64{int32(i): 1}))
	}
	rhs := []float64{2, 4, 6}
	w := conjugateGradient(X, 1, rhs, 50, 1e-10)
	want := []float64{1, 2, 3}
	for i := range want {
		if diff := w[i] - want[i]; diff > 1e-8 || diff < -1e-8 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestSVCMarginSeparation(t *testing.T) {
	// Two trivially separable classes on disjoint features.
	ds := &ml.Dataset{
		X:      &sparse.Matrix{Cols: 2},
		Labels: []string{"neg", "pos"},
	}
	for i := 0; i < 20; i++ {
		f := int32(i % 2)
		ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{f: 1}))
		ds.Y = append(ds.Y, int(f))
	}
	m := &SVC{MaxIter: 100}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for i, x := range ds.X.Rows {
		if m.Predict(x) != ds.Y[i] {
			t.Fatal("separable data not separated")
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	s := []float64{1000, 1001, 999}
	softmaxInPlace(s)
	var sum float64
	for _, v := range s {
		if v != v { // NaN
			t.Fatal("softmax produced NaN on large inputs")
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if s[1] < s[0] || s[1] < s[2] {
		t.Error("softmax ordering wrong")
	}
}

// imbalancedSplit builds a heavily skewed train set and a balanced test
// set over shared/noisy features, where unweighted models favor the
// majority class.
func imbalancedSplit(t *testing.T) (*ml.Dataset, *ml.Dataset) {
	t.Helper()
	big := mltest.Generate(mltest.Config{
		Classes: 2, PerClass: 400, FeatPerCls: 6, SharedFeats: 8,
		NoiseProb: 0.5, Seed: 13,
	})
	train := &ml.Dataset{X: &sparse.Matrix{Cols: big.X.Cols}, Labels: big.Labels}
	test := &ml.Dataset{X: &sparse.Matrix{Cols: big.X.Cols}, Labels: big.Labels}
	caps := map[int]int{0: 300, 1: 15}
	got := map[int]int{}
	testGot := map[int]int{}
	for i, y := range big.Y {
		if got[y] < caps[y] {
			got[y]++
			train.X.Rows = append(train.X.Rows, big.X.Rows[i])
			train.Y = append(train.Y, y)
		} else if testGot[y] < 80 {
			testGot[y]++
			test.X.Rows = append(test.X.Rows, big.X.Rows[i])
			test.Y = append(test.Y, y)
		}
	}
	return train, test
}

func minorityRecall(m ml.Classifier, test *ml.Dataset) float64 {
	hit, tot := 0, 0
	for i, y := range test.Y {
		if y != 1 {
			continue
		}
		tot++
		if m.Predict(test.X.Rows[i]) == 1 {
			hit++
		}
	}
	return float64(hit) / float64(tot)
}

func TestBalancedClassWeightsImproveMinorityRecall(t *testing.T) {
	train, test := imbalancedSplit(t)

	plain := &LogisticRegression{Epochs: 10}
	if err := plain.Fit(train); err != nil {
		t.Fatal(err)
	}
	weighted := &LogisticRegression{Epochs: 10, Balanced: true}
	if err := weighted.Fit(train); err != nil {
		t.Fatal(err)
	}
	pr, wr := minorityRecall(plain, test), minorityRecall(weighted, test)
	if wr < pr-0.05 {
		t.Errorf("balanced logreg minority recall %.3f regressed vs unweighted %.3f", wr, pr)
	}
	if wr < 0.9 {
		t.Errorf("balanced logreg minority recall = %.3f", wr)
	}

	plainSVC := &SVC{MaxIter: 200}
	if err := plainSVC.Fit(train); err != nil {
		t.Fatal(err)
	}
	weightedSVC := &SVC{MaxIter: 200, Balanced: true}
	if err := weightedSVC.Fit(train); err != nil {
		t.Fatal(err)
	}
	ps, ws := minorityRecall(plainSVC, test), minorityRecall(weightedSVC, test)
	if ws < ps-0.05 {
		t.Errorf("balanced SVC minority recall %.3f regressed vs unweighted %.3f", ws, ps)
	}
	if ws < 0.9 {
		t.Errorf("balanced SVC minority recall = %.3f", ws)
	}

	// The mechanism must actually change the learned decision function:
	// balanced mode shifts scores toward the minority class.
	shifted := false
	for _, x := range test.X.Rows {
		a := plainSVC.DecisionScores(x)
		b := weightedSVC.DecisionScores(x)
		if (b[1]-b[0])-(a[1]-a[0]) > 1e-6 {
			shifted = true
			break
		}
	}
	if !shifted {
		t.Error("Balanced had no effect on the SVC decision function")
	}
}
