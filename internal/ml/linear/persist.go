package linear

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// linearState is the serialized form shared by the four linear models:
// per-class weight rows plus biases.
type linearState struct {
	W    [][]float64
	Bias []float64
	K    int
}

func marshalLinear(w [][]float64, bias []float64, k int) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(linearState{W: w, Bias: bias, K: k}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func unmarshalLinear(data []byte) (linearState, error) {
	var st linearState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return st, err
	}
	if len(st.W) != st.K || len(st.Bias) != st.K {
		return st, fmt.Errorf("linear: inconsistent state (k=%d, |W|=%d, |bias|=%d)",
			st.K, len(st.W), len(st.Bias))
	}
	return st, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *LogisticRegression) MarshalBinary() ([]byte, error) {
	return marshalLinear(m.w, m.bias, m.k)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *LogisticRegression) UnmarshalBinary(data []byte) error {
	st, err := unmarshalLinear(data)
	if err != nil {
		return err
	}
	m.w, m.bias, m.k = st.W, st.Bias, st.K
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Ridge) MarshalBinary() ([]byte, error) {
	return marshalLinear(m.w, m.bias, m.k)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Ridge) UnmarshalBinary(data []byte) error {
	st, err := unmarshalLinear(data)
	if err != nil {
		return err
	}
	m.w, m.bias, m.k = st.W, st.Bias, st.K
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *SVC) MarshalBinary() ([]byte, error) {
	return marshalLinear(m.w, m.bias, m.k)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *SVC) UnmarshalBinary(data []byte) error {
	st, err := unmarshalLinear(data)
	if err != nil {
		return err
	}
	m.w, m.bias, m.k = st.W, st.Bias, st.K
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *SGD) MarshalBinary() ([]byte, error) {
	return marshalLinear(m.w, m.bias, m.k)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *SGD) UnmarshalBinary(data []byte) error {
	st, err := unmarshalLinear(data)
	if err != nil {
		return err
	}
	m.w, m.bias, m.k = st.W, st.Bias, st.K
	return nil
}
