// Package mltest provides synthetic labelled datasets shared by the
// classifier test suites: class-conditional sparse vectors with a tunable
// amount of feature overlap, mimicking the structure of TF-IDF'd syslog
// text (few shared "noise" features, a handful of class-specific ones).
package mltest

import (
	"math/rand"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// Config controls the generated dataset.
type Config struct {
	Classes     int
	PerClass    int     // samples per class
	FeatPerCls  int     // class-specific features
	SharedFeats int     // features shared by every class
	NoiseProb   float64 // probability of borrowing a feature from another class
	Seed        int64
}

// Generate builds a dataset where class c's samples activate a random
// subset of class-c features plus shared features, with occasional borrowed
// cross-class features when NoiseProb > 0.
func Generate(cfg Config) *ml.Dataset {
	if cfg.Classes == 0 {
		cfg.Classes = 4
	}
	if cfg.PerClass == 0 {
		cfg.PerClass = 50
	}
	if cfg.FeatPerCls == 0 {
		cfg.FeatPerCls = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 42))
	dims := cfg.Classes*cfg.FeatPerCls + cfg.SharedFeats
	ds := &ml.Dataset{
		X: &sparse.Matrix{Cols: dims},
	}
	for c := 0; c < cfg.Classes; c++ {
		ds.Labels = append(ds.Labels, string(rune('A'+c)))
	}
	for c := 0; c < cfg.Classes; c++ {
		base := c * cfg.FeatPerCls
		for s := 0; s < cfg.PerClass; s++ {
			m := map[int32]float64{}
			// 3..FeatPerCls class-specific features
			n := 3 + rng.Intn(cfg.FeatPerCls-2)
			for len(m) < n {
				f := base + rng.Intn(cfg.FeatPerCls)
				m[int32(f)] = 0.5 + rng.Float64()
			}
			// shared features
			for sh := 0; sh < cfg.SharedFeats; sh++ {
				if rng.Float64() < 0.5 {
					m[int32(cfg.Classes*cfg.FeatPerCls+sh)] = 0.3 + rng.Float64()*0.4
				}
			}
			// borrowed cross-class noise
			if cfg.NoiseProb > 0 && rng.Float64() < cfg.NoiseProb {
				other := rng.Intn(cfg.Classes)
				f := other*cfg.FeatPerCls + rng.Intn(cfg.FeatPerCls)
				m[int32(f)] = 0.5 + rng.Float64()
			}
			v := sparse.NewVectorFromMap(m)
			v.Normalize()
			ds.X.Rows = append(ds.X.Rows, v)
			ds.Y = append(ds.Y, c)
		}
	}
	// Shuffle rows.
	rng.Shuffle(len(ds.Y), func(i, j int) {
		ds.X.Rows[i], ds.X.Rows[j] = ds.X.Rows[j], ds.X.Rows[i]
		ds.Y[i], ds.Y[j] = ds.Y[j], ds.Y[i]
	})
	return ds
}

// Accuracy computes simple accuracy of a fitted classifier on ds.
func Accuracy(c ml.Classifier, ds *ml.Dataset) float64 {
	correct := 0
	for i, row := range ds.X.Rows {
		if c.Predict(row) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
