package bayes

import (
	"testing"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/ml/mltest"
	"hetsyslog/internal/sparse"
)

func TestComplementNBAccuracy(t *testing.T) {
	ds := mltest.Generate(mltest.Config{
		Classes: 5, PerClass: 80, FeatPerCls: 8, SharedFeats: 4,
		NoiseProb: 0.1, Seed: 2,
	})
	train, test := ml.StratifiedSplit(ds, 0.25, 3)
	m := &ComplementNB{}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(m, test); acc < 0.9 {
		t.Errorf("test accuracy = %.3f", acc)
	}
}

func TestComplementNBImbalanced(t *testing.T) {
	// 20:1 imbalance — CNB should still recover the minority class.
	big := mltest.Generate(mltest.Config{Classes: 2, PerClass: 200, FeatPerCls: 6, Seed: 4})
	// Keep only 10 samples of class 1.
	ds := &ml.Dataset{X: &sparse.Matrix{Cols: big.X.Cols}, Labels: big.Labels}
	kept1 := 0
	for i, y := range big.Y {
		if y == 1 {
			if kept1 >= 10 {
				continue
			}
			kept1++
		}
		ds.X.Rows = append(ds.X.Rows, big.X.Rows[i])
		ds.Y = append(ds.Y, y)
	}
	m := &ComplementNB{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// Every minority-class training sample must classify correctly.
	miss := 0
	for i, y := range ds.Y {
		if y == 1 && m.Predict(ds.X.Rows[i]) != 1 {
			miss++
		}
	}
	if miss > 1 {
		t.Errorf("minority class misses = %d of 10", miss)
	}
}

func TestComplementNBNormVariant(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 3, PerClass: 60, Seed: 6})
	train, test := ml.StratifiedSplit(ds, 0.25, 3)
	m := &ComplementNB{Norm: true}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(m, test); acc < 0.85 {
		t.Errorf("normed CNB accuracy = %.3f", acc)
	}
}

func TestComplementNBName(t *testing.T) {
	if (&ComplementNB{}).Name() != "Complement Naive Bayes" {
		t.Error("wrong name")
	}
}

func TestComplementNBRejectsBadDataset(t *testing.T) {
	bad := &ml.Dataset{
		X: &sparse.Matrix{Rows: make([]sparse.Vector, 1), Cols: 1},
		Y: []int{5}, Labels: []string{"a"},
	}
	if err := (&ComplementNB{}).Fit(bad); err == nil {
		t.Error("Fit accepted invalid dataset")
	}
}

func TestComplementNBDecisionScores(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 3, PerClass: 40, Seed: 8})
	m := &ComplementNB{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X.Rows[:10] {
		s := m.DecisionScores(x)
		if len(s) != 3 {
			t.Fatalf("scores len = %d", len(s))
		}
		best, bi := s[0], 0
		for c, v := range s {
			if v > best {
				best, bi = v, c
			}
		}
		if bi != m.Predict(x) {
			t.Error("argmax(DecisionScores) != Predict")
		}
	}
}

func TestComplementNBPersistRoundTrip(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 3, PerClass: 40, Seed: 2})
	m := &ComplementNB{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &ComplementNB{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X.Rows[:20] {
		if restored.Predict(x) != m.Predict(x) {
			t.Fatal("restored CNB diverges")
		}
	}
	if err := restored.UnmarshalBinary([]byte("junk")); err == nil {
		t.Error("junk blob should error")
	}
}
