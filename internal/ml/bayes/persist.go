package bayes

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

type cnbState struct {
	W [][]float64
	K int
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ComplementNB) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cnbState{W: m.w, K: m.k}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ComplementNB) UnmarshalBinary(data []byte) error {
	var st cnbState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st.W) != st.K {
		return fmt.Errorf("bayes: inconsistent state (k=%d, |W|=%d)", st.K, len(st.W))
	}
	m.w, m.k = st.W, st.K
	return nil
}
