// Package bayes implements Complement Naive Bayes (Rennie et al., ICML
// 2003), the variant designed for imbalanced text classification — which is
// why the paper includes it against a corpus where "Unimportant" outweighs
// "Slurm Issues" by 2300×. It posts the fastest testing time in Figure 3.
package bayes

import (
	"math"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// ComplementNB estimates per-class feature weights from the *complement* of
// each class (all training samples not in the class), which is far better
// conditioned for rare classes than standard multinomial NB.
type ComplementNB struct {
	// Alpha is the Lidstone smoothing parameter (default 1.0).
	Alpha float64
	// Norm applies the weight normalization from the CNB paper when true
	// (scikit-learn's norm=True).
	Norm bool

	w [][]float64 // [class][feature] weights
	k int
}

// Name implements ml.Classifier.
func (m *ComplementNB) Name() string { return "Complement Naive Bayes" }

// Fit computes complement counts and weights.
func (m *ComplementNB) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if m.Alpha == 0 {
		m.Alpha = 1.0
	}
	m.k = ds.NumClasses()
	dims := ds.X.Cols

	// Per-class feature totals and the global totals.
	classFeat := make([][]float64, m.k)
	for c := range classFeat {
		classFeat[c] = make([]float64, dims)
	}
	classSum := make([]float64, m.k)
	globalFeat := make([]float64, dims)
	globalSum := 0.0
	for i, row := range ds.X.Rows {
		c := ds.Y[i]
		sparse.AxpyDense(1, row, classFeat[c])
		sparse.AxpyDense(1, row, globalFeat)
		s := row.Sum()
		classSum[c] += s
		globalSum += s
	}

	m.w = make([][]float64, m.k)
	for c := 0; c < m.k; c++ {
		compSum := globalSum - classSum[c] + m.Alpha*float64(dims)
		w := make([]float64, dims)
		var norm float64
		for f := 0; f < dims; f++ {
			comp := globalFeat[f] - classFeat[c][f] + m.Alpha
			// Weight is the negated complement log-probability: features
			// frequent outside the class push the score down.
			w[f] = -math.Log(comp / compSum)
			norm += math.Abs(w[f])
		}
		if m.Norm && norm > 0 {
			for f := range w {
				w[f] /= norm
			}
		}
		m.w[c] = w
	}
	return nil
}

// DecisionScores returns the per-class complement log-likelihoods.
func (m *ComplementNB) DecisionScores(x sparse.Vector) []float64 {
	out := make([]float64, m.k)
	for c := 0; c < m.k; c++ {
		out[c] = sparse.DotDense(x, m.w[c])
	}
	return out
}

// Predict implements ml.Classifier. The argmax runs over the class dots
// directly — no scores slice, so the per-record classify path stays
// allocation-free (DecisionScores serves callers that need the values).
func (m *ComplementNB) Predict(x sparse.Vector) int {
	best, bi := math.Inf(-1), 0
	for c := 0; c < m.k; c++ {
		if v := sparse.DotDense(x, m.w[c]); v > best {
			best, bi = v, c
		}
	}
	return bi
}
