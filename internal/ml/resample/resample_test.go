package resample

import (
	"testing"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/ml/mltest"
	"hetsyslog/internal/ml/neighbors"
	"hetsyslog/internal/sparse"
)

// imbalanced builds a 3-class dataset with counts 200/50/10.
func imbalanced(t testing.TB) *ml.Dataset {
	t.Helper()
	big := mltest.Generate(mltest.Config{Classes: 3, PerClass: 200, FeatPerCls: 6, Seed: 5})
	keep := map[int]int{0: 200, 1: 50, 2: 10}
	got := map[int]int{}
	out := &ml.Dataset{X: &sparse.Matrix{Cols: big.X.Cols}, Labels: big.Labels}
	for i, y := range big.Y {
		if got[y] >= keep[y] {
			continue
		}
		got[y]++
		out.X.Rows = append(out.X.Rows, big.X.Rows[i])
		out.Y = append(out.Y, y)
	}
	return out
}

func TestRandomOversampleBalances(t *testing.T) {
	ds := imbalanced(t)
	out := RandomOversample(ds, 1)
	counts := out.ClassCounts()
	for c, n := range counts {
		if n != 200 {
			t.Errorf("class %d = %d, want 200", c, n)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomUndersampleBalances(t *testing.T) {
	ds := imbalanced(t)
	out := RandomUndersample(ds, 1)
	for c, n := range out.ClassCounts() {
		if n != 10 {
			t.Errorf("class %d = %d, want 10", c, n)
		}
	}
}

func TestResampleDeterministic(t *testing.T) {
	ds := imbalanced(t)
	a := RandomOversample(ds, 9)
	b := RandomOversample(ds, 9)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed should reproduce the resample")
		}
	}
}

func TestTomekLinksRemovesBoundaryMajority(t *testing.T) {
	// Hand-built: two well-separated clusters plus one majority point
	// sitting on the minority cluster (a Tomek link).
	ds := &ml.Dataset{X: &sparse.Matrix{Cols: 4}, Labels: []string{"maj", "min"}}
	add := func(y int, vals map[int32]float64) {
		v := sparse.NewVectorFromMap(vals)
		v.Normalize()
		ds.X.Rows = append(ds.X.Rows, v)
		ds.Y = append(ds.Y, y)
	}
	// Majority cluster on features 0,1.
	add(0, map[int32]float64{0: 1, 1: 0.9})
	add(0, map[int32]float64{0: 0.9, 1: 1})
	add(0, map[int32]float64{0: 1, 1: 1.1})
	// Minority cluster on features 2,3.
	add(1, map[int32]float64{2: 1, 3: 0.9})
	add(1, map[int32]float64{2: 0.9, 3: 1})
	// Intruder: majority-labelled point nearly identical to the first
	// minority point — mutual nearest neighbors across classes.
	add(0, map[int32]float64{2: 1, 3: 0.91})

	out := TomekLinks(ds)
	if out.Len() != ds.Len()-1 {
		t.Fatalf("removed %d samples, want 1", ds.Len()-out.Len())
	}
	// The intruder (majority member of the link) must be gone: no
	// majority sample should remain on features 2/3.
	for i, y := range out.Y {
		if y == 0 && out.X.Rows[i].At(2) > 0 {
			t.Error("Tomek link majority member survived")
		}
	}
}

func TestTomekLinksNoLinksNoChange(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 2, PerClass: 20, FeatPerCls: 6, Seed: 3})
	out := TomekLinks(ds)
	if out.Len() < ds.Len()-4 {
		t.Errorf("TomekLinks removed too much on clean data: %d -> %d", ds.Len(), out.Len())
	}
}

func TestSMOTEBalancesWithSyntheticSamples(t *testing.T) {
	ds := imbalanced(t)
	out := SMOTE(ds, 3, 1.0, 1)
	counts := out.ClassCounts()
	if counts[2] < 150 {
		t.Errorf("minority class only %d after SMOTE", counts[2])
	}
	if out.Len() <= ds.Len() {
		t.Error("SMOTE added no samples")
	}
	// Synthetic vectors remain valid sparse vectors.
	for _, r := range out.X.Rows {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSMOTESkipsSingletonClasses(t *testing.T) {
	ds := &ml.Dataset{X: &sparse.Matrix{Cols: 2}, Labels: []string{"a", "b"}}
	for i := 0; i < 10; i++ {
		ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{0: 1}))
		ds.Y = append(ds.Y, 0)
	}
	ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{1: 1}))
	ds.Y = append(ds.Y, 1)
	out := SMOTE(ds, 3, 1.0, 1)
	// Cannot interpolate a single point; class b stays at 1.
	if out.ClassCounts()[1] != 1 {
		t.Errorf("singleton class grew to %d", out.ClassCounts()[1])
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a := sparse.NewVectorFromMap(map[int32]float64{0: 1, 2: 2})
	b := sparse.NewVectorFromMap(map[int32]float64{1: 3})
	v0 := interpolate(a, b, 0)
	if v0.At(0) != 1 || v0.At(2) != 2 || v0.At(1) != 0 {
		t.Errorf("t=0 should equal a: %+v", v0)
	}
	v1 := interpolate(a, b, 1)
	if v1.At(1) != 3 || v1.At(0) != 0 {
		t.Errorf("t=1 should equal b: %+v", v1)
	}
	vh := interpolate(a, b, 0.5)
	if vh.At(0) != 0.5 || vh.At(1) != 1.5 || vh.At(2) != 1 {
		t.Errorf("midpoint wrong: %+v", vh)
	}
}

// TestResamplingImprovesMinorityRecall is the end-to-end claim: on a
// heavily imbalanced dataset, oversampling improves the minority class's
// recall for a centroid classifier.
func TestResamplingImprovesMinorityRecall(t *testing.T) {
	big := mltest.Generate(mltest.Config{Classes: 3, PerClass: 300, FeatPerCls: 6, SharedFeats: 6, NoiseProb: 0.4, Seed: 11})
	// Train: imbalanced; Test: balanced.
	train := &ml.Dataset{X: &sparse.Matrix{Cols: big.X.Cols}, Labels: big.Labels}
	test := &ml.Dataset{X: &sparse.Matrix{Cols: big.X.Cols}, Labels: big.Labels}
	trainCaps := map[int]int{0: 200, 1: 200, 2: 12}
	trainGot := map[int]int{}
	testGot := map[int]int{}
	for i, y := range big.Y {
		if trainGot[y] < trainCaps[y] {
			trainGot[y]++
			train.X.Rows = append(train.X.Rows, big.X.Rows[i])
			train.Y = append(train.Y, y)
		} else if testGot[y] < 50 {
			testGot[y]++
			test.X.Rows = append(test.X.Rows, big.X.Rows[i])
			test.Y = append(test.Y, y)
		}
	}
	recall2 := func(ds *ml.Dataset) float64 {
		m := &neighbors.NearestCentroid{}
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		hit, tot := 0, 0
		for i, y := range test.Y {
			if y != 2 {
				continue
			}
			tot++
			if m.Predict(test.X.Rows[i]) == 2 {
				hit++
			}
		}
		return float64(hit) / float64(tot)
	}
	before := recall2(train)
	after := recall2(SMOTE(train, 5, 1.0, 1))
	if after < before {
		t.Errorf("SMOTE hurt minority recall: %.3f -> %.3f", before, after)
	}
}

// BenchmarkResamplers compares the cost of the balancing strategies on an
// imbalanced dataset (DESIGN.md §2's recommended techniques).
func BenchmarkResamplers(b *testing.B) {
	ds := imbalanced(b)
	b.Run("oversample", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RandomOversample(ds, int64(i))
		}
	})
	b.Run("undersample", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RandomUndersample(ds, int64(i))
		}
	})
	b.Run("smote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SMOTE(ds, 5, 1.0, int64(i))
		}
	})
	b.Run("tomek", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TomekLinks(ds)
		}
	})
}

func TestADASYNGrowsMinorityAdaptively(t *testing.T) {
	ds := imbalanced(t)
	out := ADASYN(ds, 5, 1.0, 1)
	counts := out.ClassCounts()
	if counts[2] <= 10 {
		t.Errorf("ADASYN did not grow minority: %v", counts)
	}
	if out.Len() <= ds.Len() {
		t.Error("ADASYN added no samples")
	}
	for _, r := range out.X.Rows {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Deterministic per seed.
	again := ADASYN(ds, 5, 1.0, 1)
	if again.Len() != out.Len() {
		t.Error("ADASYN not deterministic")
	}
}

func TestADASYNSkipsBalancedData(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 2, PerClass: 30, Seed: 9})
	out := ADASYN(ds, 5, 1.0, 1)
	if out.Len() != ds.Len() {
		t.Errorf("balanced data grew from %d to %d", ds.Len(), out.Len())
	}
}
