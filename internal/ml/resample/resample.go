// Package resample implements the data-balancing techniques the paper's
// related work singles out for imbalanced log data (§2, citing Studiawan &
// Sohel): random oversampling of minority classes, random undersampling of
// majority classes, Tomek-link removal, and a SMOTE-style synthetic
// minority oversampler adapted to sparse vectors. The corpus has a 2300:1
// imbalance between "Unimportant" and "Slurm Issues", so these are the
// levers a practitioner would reach for.
package resample

import (
	"math/rand"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// RandomOversample duplicates minority-class samples (with replacement)
// until every class matches the largest class's count.
func RandomOversample(ds *ml.Dataset, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed + 3))
	byClass := indicesByClass(ds)
	maxCount := 0
	for _, idx := range byClass {
		if len(idx) > maxCount {
			maxCount = len(idx)
		}
	}
	out := cloneShell(ds)
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		for _, i := range idx {
			appendSample(out, ds, i)
		}
		for extra := len(idx); extra < maxCount; extra++ {
			appendSample(out, ds, idx[rng.Intn(len(idx))])
		}
	}
	shuffle(out, rng)
	return out
}

// RandomUndersample drops majority-class samples until every class matches
// the smallest non-empty class's count.
func RandomUndersample(ds *ml.Dataset, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed + 5))
	byClass := indicesByClass(ds)
	minCount := -1
	for _, idx := range byClass {
		if len(idx) > 0 && (minCount < 0 || len(idx) < minCount) {
			minCount = len(idx)
		}
	}
	out := cloneShell(ds)
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		perm := rng.Perm(len(idx))
		for k := 0; k < minCount; k++ {
			appendSample(out, ds, idx[perm[k]])
		}
	}
	shuffle(out, rng)
	return out
}

// TomekLinks removes the majority-class member of every Tomek link: a
// pair of opposite-class samples that are each other's nearest neighbor.
// Removing them cleans the class boundary (the undersampling the paper's
// related work recommends). Cosine distance over the (typically
// normalized) TF-IDF vectors is used.
func TomekLinks(ds *ml.Dataset) *ml.Dataset {
	n := ds.Len()
	counts := ds.ClassCounts()
	nn := nearestNeighbors(ds)
	remove := make([]bool, n)
	for i := 0; i < n; i++ {
		j := nn[i]
		if j < 0 || nn[j] != i {
			continue // not mutual
		}
		if ds.Y[i] == ds.Y[j] {
			continue // same class: not a Tomek link
		}
		// Drop the sample from the larger class.
		victim := i
		if counts[ds.Y[j]] > counts[ds.Y[i]] {
			victim = j
		}
		remove[victim] = true
	}
	out := cloneShell(ds)
	for i := 0; i < n; i++ {
		if !remove[i] {
			appendSample(out, ds, i)
		}
	}
	return out
}

// SMOTE generates synthetic minority samples by interpolating between a
// minority sample and one of its k nearest same-class neighbors, until
// every class reaches ratio * (largest class count). ratio in (0,1]; 1
// fully balances. Sparse interpolation unions the two supports.
func SMOTE(ds *ml.Dataset, k int, ratio float64, seed int64) *ml.Dataset {
	if k <= 0 {
		k = 5
	}
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	rng := rand.New(rand.NewSource(seed + 7))
	byClass := indicesByClass(ds)
	maxCount := 0
	for _, idx := range byClass {
		if len(idx) > maxCount {
			maxCount = len(idx)
		}
	}
	target := int(ratio * float64(maxCount))

	out := cloneShell(ds)
	for i := 0; i < ds.Len(); i++ {
		appendSample(out, ds, i)
	}
	for c, idx := range byClass {
		if len(idx) < 2 || len(idx) >= target {
			continue
		}
		// k-NN within the class (brute force; minority classes are small
		// by definition).
		neigh := classNeighbors(ds, idx, k)
		need := target - len(idx)
		for s := 0; s < need; s++ {
			a := rng.Intn(len(idx))
			nb := neigh[a]
			if len(nb) == 0 {
				continue
			}
			b := nb[rng.Intn(len(nb))]
			t := rng.Float64()
			v := interpolate(ds.X.Rows[idx[a]], ds.X.Rows[b], t)
			out.X.Rows = append(out.X.Rows, v)
			out.Y = append(out.Y, c)
		}
	}
	shuffle(out, rand.New(rand.NewSource(seed+11)))
	return out
}

// --- helpers ---

func indicesByClass(ds *ml.Dataset) [][]int {
	byClass := make([][]int, ds.NumClasses())
	for i, y := range ds.Y {
		byClass[y] = append(byClass[y], i)
	}
	return byClass
}

func cloneShell(ds *ml.Dataset) *ml.Dataset {
	return &ml.Dataset{
		X:      &sparse.Matrix{Cols: ds.X.Cols},
		Labels: ds.Labels,
	}
}

func appendSample(dst, src *ml.Dataset, i int) {
	dst.X.Rows = append(dst.X.Rows, src.X.Rows[i])
	dst.Y = append(dst.Y, src.Y[i])
}

func shuffle(ds *ml.Dataset, rng *rand.Rand) {
	rng.Shuffle(len(ds.Y), func(i, j int) {
		ds.X.Rows[i], ds.X.Rows[j] = ds.X.Rows[j], ds.X.Rows[i]
		ds.Y[i], ds.Y[j] = ds.Y[j], ds.Y[i]
	})
}

// nearestNeighbors returns each sample's nearest other sample by cosine
// similarity (-1 when isolated).
func nearestNeighbors(ds *ml.Dataset) []int {
	n := ds.Len()
	nn := make([]int, n)
	best := make([]float64, n)
	for i := range nn {
		nn[i] = -1
		best[i] = -1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := sparse.Cosine(ds.X.Rows[i], ds.X.Rows[j])
			if s > best[i] {
				best[i], nn[i] = s, j
			}
			if s > best[j] {
				best[j], nn[j] = s, i
			}
		}
	}
	return nn
}

// classNeighbors returns, for each position a in idx, up to k same-class
// neighbor row indices.
func classNeighbors(ds *ml.Dataset, idx []int, k int) [][]int {
	out := make([][]int, len(idx))
	type scored struct {
		row int
		sim float64
	}
	for a, i := range idx {
		var cands []scored
		for b, j := range idx {
			if a == b {
				continue
			}
			cands = append(cands, scored{j, sparse.Cosine(ds.X.Rows[i], ds.X.Rows[j])})
		}
		// partial selection of top-k
		for s := 0; s < k && s < len(cands); s++ {
			maxI := s
			for t := s + 1; t < len(cands); t++ {
				if cands[t].sim > cands[maxI].sim {
					maxI = t
				}
			}
			cands[s], cands[maxI] = cands[maxI], cands[s]
			out[a] = append(out[a], cands[s].row)
		}
	}
	return out
}

// interpolate returns a + t*(b-a) over the union of supports, dropping
// exact zeros.
func interpolate(a, b sparse.Vector, t float64) sparse.Vector {
	m := make(map[int32]float64, a.NNZ()+b.NNZ())
	for k, i := range a.Idx {
		m[i] += (1 - t) * a.Val[k]
	}
	for k, i := range b.Idx {
		m[i] += t * b.Val[k]
	}
	for i, v := range m {
		if v == 0 {
			delete(m, i)
		}
	}
	return sparse.NewVectorFromMap(m)
}

// ADASYN (He et al., 2008) is the adaptive variant of SMOTE the paper's
// related work recommends by name (§2): each minority sample generates
// synthetic neighbors in proportion to how surrounded it is by other
// classes, concentrating new samples along the decision boundary where
// the classifier needs them.
func ADASYN(ds *ml.Dataset, k int, ratio float64, seed int64) *ml.Dataset {
	if k <= 0 {
		k = 5
	}
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	rng := rand.New(rand.NewSource(seed + 13))
	byClass := indicesByClass(ds)
	maxCount := 0
	for _, idx := range byClass {
		if len(idx) > maxCount {
			maxCount = len(idx)
		}
	}
	target := int(ratio * float64(maxCount))

	out := cloneShell(ds)
	for i := 0; i < ds.Len(); i++ {
		appendSample(out, ds, i)
	}
	for c, idx := range byClass {
		if len(idx) < 2 || len(idx) >= target {
			continue
		}
		need := target - len(idx)
		// Hardness r_i: fraction of each minority sample's k nearest
		// neighbors (over the whole dataset) that belong to other classes.
		hard := make([]float64, len(idx))
		var hardSum float64
		for a, i := range idx {
			nn := nearestAny(ds, i, k)
			other := 0
			for _, j := range nn {
				if ds.Y[j] != c {
					other++
				}
			}
			if len(nn) > 0 {
				hard[a] = float64(other) / float64(len(nn))
			}
			hardSum += hard[a]
		}
		sameNeigh := classNeighbors(ds, idx, k)
		for a, i := range idx {
			var gen int
			if hardSum > 0 {
				gen = int(float64(need)*hard[a]/hardSum + 0.5)
			} else {
				gen = need / len(idx)
			}
			nb := sameNeigh[a]
			for s := 0; s < gen && len(nb) > 0; s++ {
				b := nb[rng.Intn(len(nb))]
				out.X.Rows = append(out.X.Rows, interpolate(ds.X.Rows[i], ds.X.Rows[b], rng.Float64()))
				out.Y = append(out.Y, c)
			}
		}
	}
	shuffle(out, rand.New(rand.NewSource(seed+17)))
	return out
}

// nearestAny returns up to k nearest rows (any class) to row i by cosine.
func nearestAny(ds *ml.Dataset, i, k int) []int {
	type scored struct {
		row int
		sim float64
	}
	var cands []scored
	for j := 0; j < ds.Len(); j++ {
		if j == i {
			continue
		}
		cands = append(cands, scored{j, sparse.Cosine(ds.X.Rows[i], ds.X.Rows[j])})
	}
	out := make([]int, 0, k)
	for s := 0; s < k && s < len(cands); s++ {
		maxI := s
		for t := s + 1; t < len(cands); t++ {
			if cands[t].sim > cands[maxI].sim {
				maxI = t
			}
		}
		cands[s], cands[maxI] = cands[maxI], cands[s]
		out = append(out, cands[s].row)
	}
	return out
}
