package forest

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// nodeState is the exported mirror of treeNode for serialization.
type nodeState struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Class     int32
}

type treeState struct {
	Nodes []nodeState
	K     int
}

func (t *Tree) state() treeState {
	st := treeState{Nodes: make([]nodeState, len(t.nodes)), K: t.k}
	for i, n := range t.nodes {
		st.Nodes[i] = nodeState{
			Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right, Class: n.class,
		}
	}
	return st
}

func (t *Tree) restore(st treeState) {
	t.nodes = make([]treeNode, len(st.Nodes))
	for i, n := range st.Nodes {
		t.nodes[i] = treeNode{
			feature: n.Feature, threshold: n.Threshold,
			left: n.Left, right: n.Right, class: n.Class,
		}
	}
	t.k = st.K
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Tree) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t.state()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Tree) UnmarshalBinary(data []byte) error {
	var st treeState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	t.restore(st)
	return nil
}

type forestState struct {
	Trees []treeState
	K     int
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *RandomForest) MarshalBinary() ([]byte, error) {
	st := forestState{Trees: make([]treeState, len(f.trees)), K: f.k}
	for i, t := range f.trees {
		st.Trees[i] = t.state()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *RandomForest) UnmarshalBinary(data []byte) error {
	var st forestState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st.Trees) == 0 && st.K > 0 {
		return fmt.Errorf("forest: empty ensemble in state")
	}
	f.trees = make([]*Tree, len(st.Trees))
	for i := range st.Trees {
		tr := &Tree{}
		tr.restore(st.Trees[i])
		f.trees[i] = tr
	}
	f.k = st.K
	f.Trees = len(f.trees)
	return nil
}
