package forest

import (
	"testing"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/ml/mltest"
	"hetsyslog/internal/sparse"
)

func dataset(t testing.TB) (*ml.Dataset, *ml.Dataset) {
	t.Helper()
	ds := mltest.Generate(mltest.Config{
		Classes: 5, PerClass: 80, FeatPerCls: 8, SharedFeats: 4,
		NoiseProb: 0.1, Seed: 2,
	})
	return ml.StratifiedSplit(ds, 0.25, 3)
}

func TestTreeFitsTrainingData(t *testing.T) {
	train, _ := dataset(t)
	tr := &Tree{MaxFeatures: -1}
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	// An unpruned CART with all features should (nearly) memorize.
	if acc := mltest.Accuracy(tr, train); acc < 0.99 {
		t.Errorf("train accuracy = %.3f", acc)
	}
	if tr.NumNodes() < 3 {
		t.Errorf("tree suspiciously small: %d nodes", tr.NumNodes())
	}
	if tr.Depth() < 2 {
		t.Errorf("depth = %d", tr.Depth())
	}
}

func TestTreeGeneralizes(t *testing.T) {
	train, test := dataset(t)
	tr := &Tree{MaxFeatures: -1}
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(tr, test); acc < 0.85 {
		t.Errorf("test accuracy = %.3f", acc)
	}
}

func TestTreeDepthLimit(t *testing.T) {
	train, _ := dataset(t)
	tr := &Tree{MaxDepth: 3, MaxFeatures: -1}
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 4 { // depth counts nodes on path; limit 3 splits
		t.Errorf("depth = %d exceeds limit", d)
	}
}

func TestTreePureNodeIsLeaf(t *testing.T) {
	// Single-class data -> a single leaf.
	ds := &ml.Dataset{X: &sparse.Matrix{Cols: 2}, Labels: []string{"only"}}
	for i := 0; i < 10; i++ {
		ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{0: float64(i + 1)}))
		ds.Y = append(ds.Y, 0)
	}
	tr := &Tree{}
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Errorf("pure data should give one leaf, got %d nodes", tr.NumNodes())
	}
}

func TestTreeSplitsOnZeroVsNonzero(t *testing.T) {
	// Class 0 has feature 0 absent, class 1 present: one split suffices.
	ds := &ml.Dataset{X: &sparse.Matrix{Cols: 2}, Labels: []string{"absent", "present"}}
	for i := 0; i < 10; i++ {
		ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{1: 1}))
		ds.Y = append(ds.Y, 0)
		ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{0: 1, 1: 1}))
		ds.Y = append(ds.Y, 1)
	}
	tr := &Tree{MaxFeatures: -1}
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(tr, ds); acc != 1 {
		t.Errorf("accuracy = %.3f on trivially separable data", acc)
	}
	if tr.NumNodes() != 3 {
		t.Errorf("expected a single split (3 nodes), got %d", tr.NumNodes())
	}
}

func TestRandomForestAccuracy(t *testing.T) {
	train, test := dataset(t)
	rf := &RandomForest{Trees: 30}
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(rf, test); acc < 0.9 {
		t.Errorf("forest accuracy = %.3f", acc)
	}
}

func TestRandomForestSerialMatchesParallelQuality(t *testing.T) {
	train, test := dataset(t)
	par := &RandomForest{Trees: 20, Seed: 9}
	ser := &RandomForest{Trees: 20, Seed: 9, Serial: true}
	if err := par.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := ser.Fit(train); err != nil {
		t.Fatal(err)
	}
	// Seeds are per-tree, so the ensembles are identical regardless of
	// scheduling.
	for _, x := range test.X.Rows {
		if par.Predict(x) != ser.Predict(x) {
			t.Fatal("serial and parallel forests diverge despite identical seeds")
		}
	}
}

func TestRandomForestDecisionScores(t *testing.T) {
	train, _ := dataset(t)
	rf := &RandomForest{Trees: 10}
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range train.X.Rows[:10] {
		s := rf.DecisionScores(x)
		var sum float64
		for _, v := range s {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("vote fractions sum to %v", sum)
		}
	}
}

func TestNames(t *testing.T) {
	if (&Tree{}).Name() != "Decision Tree" || (&RandomForest{}).Name() != "Random Forest" {
		t.Error("wrong names")
	}
}

func TestRejectBadDataset(t *testing.T) {
	bad := &ml.Dataset{
		X: &sparse.Matrix{Rows: make([]sparse.Vector, 1), Cols: 1},
		Y: []int{5}, Labels: []string{"a"},
	}
	if err := (&Tree{}).Fit(bad); err == nil {
		t.Error("Tree accepted invalid dataset")
	}
	if err := (&RandomForest{}).Fit(bad); err == nil {
		t.Error("RandomForest accepted invalid dataset")
	}
}

func BenchmarkForestFitParallel(b *testing.B) {
	train, _ := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := &RandomForest{Trees: 16, Seed: int64(i)}
		if err := rf.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFitSerial is the DESIGN.md ablation counterpart.
func BenchmarkForestFitSerial(b *testing.B) {
	train, _ := dataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := &RandomForest{Trees: 16, Seed: int64(i), Serial: true}
		if err := rf.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTreeAndForestPersistRoundTrip(t *testing.T) {
	train, test := dataset(t)
	tr := &Tree{MaxFeatures: -1}
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	blob, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	tr2 := &Tree{}
	if err := tr2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.X.Rows[:30] {
		if tr2.Predict(x) != tr.Predict(x) {
			t.Fatal("restored tree diverges")
		}
	}

	rf := &RandomForest{Trees: 8, Seed: 3}
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	fblob, err := rf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rf2 := &RandomForest{}
	if err := rf2.UnmarshalBinary(fblob); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.X.Rows[:30] {
		if rf2.Predict(x) != rf.Predict(x) {
			t.Fatal("restored forest diverges")
		}
	}
	if err := rf2.UnmarshalBinary([]byte("junk")); err == nil {
		t.Error("junk blob should error")
	}
}
