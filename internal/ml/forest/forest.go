package forest

import (
	"math/rand"
	"runtime"
	"sync"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// RandomForest is an ensemble of CART trees grown on bootstrap resamples
// with sqrt-feature subsampling per node, aggregated by majority vote.
// Trees grow in parallel (one goroutine per tree, bounded by GOMAXPROCS);
// the serial path is kept behind Serial for the DESIGN.md ablation bench.
type RandomForest struct {
	// Trees is the ensemble size (default 100, sklearn's default).
	Trees int
	// MaxDepth bounds each tree (default 64).
	MaxDepth int
	// Seed derives per-tree seeds.
	Seed int64
	// Serial disables parallel tree growth.
	Serial bool

	trees []*Tree
	k     int
}

// Name implements ml.Classifier.
func (f *RandomForest) Name() string { return "Random Forest" }

// Fit grows the ensemble.
func (f *RandomForest) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if f.Trees == 0 {
		f.Trees = 100
	}
	f.k = ds.NumClasses()
	cols := BuildColumns(ds.X)
	f.trees = make([]*Tree, f.Trees)

	grow := func(t int) {
		rng := rand.New(rand.NewSource(f.Seed + int64(t)*6364136223846793005 + 1442695040888963407))
		// Bootstrap: sample n rows with replacement, folded into
		// (unique index, weight) pairs so node bookkeeping stays O(unique).
		n := ds.Len()
		counts := make(map[int32]float64, n)
		for i := 0; i < n; i++ {
			counts[int32(rng.Intn(n))]++
		}
		idx := make([]int32, 0, len(counts))
		w := make([]float64, 0, len(counts))
		for row, c := range counts {
			idx = append(idx, row)
			w = append(w, c)
		}
		tree := &Tree{MaxDepth: f.MaxDepth, Seed: f.Seed + int64(t)*31}
		tree.fitWeighted(ds, cols, idx, w)
		f.trees[t] = tree
	}

	if f.Serial {
		for t := 0; t < f.Trees; t++ {
			grow(t)
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	work := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				grow(t)
			}
		}()
	}
	for t := 0; t < f.Trees; t++ {
		work <- t
	}
	close(work)
	wg.Wait()
	return nil
}

// DecisionScores returns per-class vote fractions.
func (f *RandomForest) DecisionScores(x sparse.Vector) []float64 {
	votes := make([]float64, f.k)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	if len(f.trees) > 0 {
		inv := 1 / float64(len(f.trees))
		for c := range votes {
			votes[c] *= inv
		}
	}
	return votes
}

// Predict implements ml.Classifier.
func (f *RandomForest) Predict(x sparse.Vector) int {
	votes := f.DecisionScores(x)
	best, bi := -1.0, 0
	for c, v := range votes {
		if v > best {
			best, bi = v, c
		}
	}
	return bi
}
