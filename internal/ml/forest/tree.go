// Package forest implements a CART decision tree and a Random Forest
// (bootstrap aggregation with per-node feature subsampling), the
// top-scoring model in the paper's Figure 3 (weighted F1 0.9995). The
// split search is sparse-aware: candidate thresholds for a feature are
// enumerated from the inverted-index column of nonzero values, so a node
// split costs O(column nnz · log) instead of O(node size · features).
package forest

import (
	"math"
	"math/rand"
	"sort"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// treeNode is one node of a fitted CART tree. Leaves have feature == -1.
type treeNode struct {
	feature   int32
	threshold float64
	left      int32 // child indices into Tree.nodes
	right     int32
	class     int32 // leaf prediction
}

// Tree is a single CART classifier.
type Tree struct {
	// MaxDepth bounds recursion (default 64).
	MaxDepth int
	// MinSamplesSplit is the minimum weighted node size to attempt a
	// split (default 2).
	MinSamplesSplit int
	// MaxFeatures is the number of features sampled per node; 0 means
	// sqrt of the feature count (the Random Forest convention), -1 means
	// all features (plain CART).
	MaxFeatures int
	// Seed drives feature subsampling.
	Seed int64

	nodes []treeNode
	k     int
}

// Name implements ml.Classifier.
func (t *Tree) Name() string { return "Decision Tree" }

// growContext carries the shared fit-time state.
type growContext struct {
	ds    *ml.Dataset
	cols  map[int32][]colEntry // feature -> (row, value), rows ascending
	feats []int32              // features with at least one nonzero
	// mark/weight implement O(1) node-membership tests: mark[row] equals
	// the current node's stamp iff row is in the node; weight holds the
	// bootstrap multiplicity.
	mark        []int32
	weight      []float64
	stamp       int32
	rng         *rand.Rand
	k           int
	maxFeatures int
}

type colEntry struct {
	row int32
	val float64
}

// Fit grows the tree on all samples with weight 1.
func (t *Tree) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	idx := make([]int32, ds.Len())
	w := make([]float64, ds.Len())
	for i := range idx {
		idx[i] = int32(i)
		w[i] = 1
	}
	t.fitWeighted(ds, nil, idx, w)
	return nil
}

// fitWeighted grows the tree on the given sample indices and bootstrap
// weights. cols may be a prebuilt shared column index (Random Forest builds
// it once); pass nil to build it here.
func (t *Tree) fitWeighted(ds *ml.Dataset, cols map[int32][]colEntry, idx []int32, w []float64) {
	if t.MaxDepth == 0 {
		t.MaxDepth = 64
	}
	if t.MinSamplesSplit == 0 {
		t.MinSamplesSplit = 2
	}
	t.k = ds.NumClasses()
	if cols == nil {
		cols = BuildColumns(ds.X)
	}
	feats := make([]int32, 0, len(cols))
	for f := range cols {
		feats = append(feats, f)
	}
	sort.Slice(feats, func(a, b int) bool { return feats[a] < feats[b] })

	maxFeat := t.MaxFeatures
	switch {
	case maxFeat == 0:
		maxFeat = int(math.Sqrt(float64(len(feats)))) + 1
	case maxFeat < 0 || maxFeat > len(feats):
		maxFeat = len(feats)
	}

	g := &growContext{
		ds: ds, cols: cols, feats: feats,
		mark:        make([]int32, ds.Len()),
		weight:      make([]float64, ds.Len()),
		rng:         rand.New(rand.NewSource(t.Seed + 101)),
		k:           t.k,
		maxFeatures: maxFeat,
	}
	for i := range g.mark {
		g.mark[i] = -1
	}
	t.nodes = t.nodes[:0]
	t.grow(g, idx, w, 0)
}

// grow recursively builds the subtree for the samples (idx, w) and returns
// its root index.
func (t *Tree) grow(g *growContext, idx []int32, w []float64, depth int) int32 {
	counts := make([]float64, g.k)
	var total float64
	for i, row := range idx {
		counts[g.ds.Y[row]] += w[i]
		total += w[i]
	}
	majority, best := 0, -1.0
	pure := true
	nz := 0
	for c, n := range counts {
		if n > best {
			best, majority = n, c
		}
		if n > 0 {
			nz++
		}
	}
	pure = nz <= 1

	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, class: int32(majority)})
	if pure || depth >= t.MaxDepth || total < float64(t.MinSamplesSplit) {
		return self
	}

	feat, thr, ok := t.bestSplit(g, idx, w, counts, total)
	if !ok {
		return self
	}

	var li, ri []int32
	var lw, rw []float64
	for i, row := range idx {
		if g.ds.X.Rows[row].At(feat) <= thr {
			li = append(li, row)
			lw = append(lw, w[i])
		} else {
			ri = append(ri, row)
			rw = append(rw, w[i])
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return self
	}
	left := t.grow(g, li, lw, depth+1)
	right := t.grow(g, ri, rw, depth+1)
	t.nodes[self] = treeNode{feature: feat, threshold: thr, left: left, right: right, class: int32(majority)}
	return self
}

// bestSplit samples candidate features and returns the split minimizing
// weighted Gini impurity.
func (t *Tree) bestSplit(g *growContext, idx []int32, w []float64, counts []float64, total float64) (int32, float64, bool) {
	// Stamp node membership.
	g.stamp++
	for i, row := range idx {
		g.mark[row] = g.stamp
		g.weight[row] = w[i]
	}

	nCand := g.maxFeatures
	bestGini := math.Inf(1)
	var bestFeat int32 = -1
	bestThr := 0.0

	// Sample features without replacement via partial Fisher-Yates over a
	// scratch copy when subsampling, or scan all otherwise.
	var candidates []int32
	if nCand >= len(g.feats) {
		candidates = g.feats
	} else {
		candidates = make([]int32, 0, nCand)
		seen := make(map[int]bool, nCand)
		for len(candidates) < nCand {
			j := g.rng.Intn(len(g.feats))
			if !seen[j] {
				seen[j] = true
				candidates = append(candidates, g.feats[j])
			}
		}
	}

	type vl struct {
		val float64
		cls int
		w   float64
	}
	var scratch []vl
	for _, f := range candidates {
		col := g.cols[f]
		scratch = scratch[:0]
		var nzTotal float64
		for _, e := range col {
			if g.mark[e.row] == g.stamp {
				scratch = append(scratch, vl{e.val, g.ds.Y[e.row], g.weight[e.row]})
				nzTotal += g.weight[e.row]
			}
		}
		if len(scratch) == 0 || nzTotal >= total {
			// All-zero or all-nonzero columns can still split on value
			// thresholds among nonzeros; all-zero cannot split at all.
			if len(scratch) == 0 {
				continue
			}
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].val < scratch[b].val })

		// Left starts as the zero group (value 0 <= any positive thr).
		left := make([]float64, g.k)
		lTotal := total - nzTotal
		for c := range left {
			left[c] = counts[c]
		}
		for _, e := range scratch {
			left[e.cls] -= e.w
		}
		// Candidate 1: threshold between 0 and the smallest nonzero.
		if lTotal > 0 && scratch[0].val > 0 {
			gini := weightedGini(left, lTotal, counts, total)
			if gini < bestGini {
				bestGini, bestFeat, bestThr = gini, f, scratch[0].val/2
			}
		}
		// Sweep nonzero values left-to-right.
		for i := 0; i < len(scratch)-1; i++ {
			left[scratch[i].cls] += scratch[i].w
			lTotal += scratch[i].w
			if scratch[i].val == scratch[i+1].val {
				continue
			}
			gini := weightedGini(left, lTotal, counts, total)
			if gini < bestGini {
				bestGini, bestFeat, bestThr = gini, f, (scratch[i].val+scratch[i+1].val)/2
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, false
	}
	// Verify the split is not degenerate against the parent impurity.
	parent := giniOf(counts, total)
	if bestGini >= parent-1e-12 {
		return 0, 0, false
	}
	return bestFeat, bestThr, true
}

// weightedGini returns the size-weighted Gini of a left/right partition
// where right = parent - left.
func weightedGini(left []float64, lTotal float64, parent []float64, total float64) float64 {
	rTotal := total - lTotal
	if lTotal <= 0 || rTotal <= 0 {
		return math.Inf(1)
	}
	var lg, rg float64
	for c := range left {
		lp := left[c] / lTotal
		rp := (parent[c] - left[c]) / rTotal
		lg += lp * lp
		rg += rp * rp
	}
	return (lTotal*(1-lg) + rTotal*(1-rg)) / total
}

func giniOf(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	var s float64
	for _, n := range counts {
		p := n / total
		s += p * p
	}
	return 1 - s
}

// Predict implements ml.Classifier.
func (t *Tree) Predict(x sparse.Vector) int {
	if len(t.nodes) == 0 {
		return 0
	}
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return int(n.class)
		}
		if x.At(n.feature) <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes reports the tree size (diagnostics and tests).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Depth returns the maximum depth of the fitted tree.
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int32) int
	walk = func(i int32) int {
		n := t.nodes[i]
		if n.feature < 0 {
			return 1
		}
		l, r := walk(n.left), walk(n.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return walk(0)
}

// BuildColumns constructs the shared feature->column inverted index.
func BuildColumns(m *sparse.Matrix) map[int32][]colEntry {
	cols := make(map[int32][]colEntry)
	for i, row := range m.Rows {
		for j, f := range row.Idx {
			cols[f] = append(cols[f], colEntry{int32(i), row.Val[j]})
		}
	}
	return cols
}
