package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func mustCM(t *testing.T, labels []string, yTrue, yPred []int) *ConfusionMatrix {
	t.Helper()
	cm, err := NewConfusionMatrix(labels, yTrue, yPred)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestPerfectPrediction(t *testing.T) {
	cm := mustCM(t, []string{"a", "b"}, []int{0, 0, 1, 1}, []int{0, 0, 1, 1})
	if cm.Accuracy() != 1 || cm.WeightedF1() != 1 || cm.MacroF1() != 1 {
		t.Errorf("perfect scores: acc=%v wF1=%v mF1=%v", cm.Accuracy(), cm.WeightedF1(), cm.MacroF1())
	}
}

func TestKnownScores(t *testing.T) {
	// 2-class example: class a: 3 true (2 correct), class b: 2 true (1 correct)
	yTrue := []int{0, 0, 0, 1, 1}
	yPred := []int{0, 0, 1, 1, 0}
	cm := mustCM(t, []string{"a", "b"}, yTrue, yPred)
	scores := cm.PerClass()
	// class a: tp=2 fp=1 fn=1 -> p=2/3 r=2/3 f1=2/3
	if math.Abs(scores[0].F1-2.0/3.0) > 1e-12 {
		t.Errorf("class a F1 = %v", scores[0].F1)
	}
	// class b: tp=1 fp=1 fn=1 -> p=1/2 r=1/2 f1=1/2
	if math.Abs(scores[1].F1-0.5) > 1e-12 {
		t.Errorf("class b F1 = %v", scores[1].F1)
	}
	wantWeighted := (2.0/3.0*3 + 0.5*2) / 5
	if math.Abs(cm.WeightedF1()-wantWeighted) > 1e-12 {
		t.Errorf("weighted F1 = %v, want %v", cm.WeightedF1(), wantWeighted)
	}
	wantMacro := (2.0/3.0 + 0.5) / 2
	if math.Abs(cm.MacroF1()-wantMacro) > 1e-12 {
		t.Errorf("macro F1 = %v, want %v", cm.MacroF1(), wantMacro)
	}
	if cm.Accuracy() != 3.0/5.0 {
		t.Errorf("accuracy = %v", cm.Accuracy())
	}
}

func TestZeroDivisionConvention(t *testing.T) {
	// class b never predicted and has no support in predictions
	cm := mustCM(t, []string{"a", "b"}, []int{0, 0}, []int{0, 0})
	scores := cm.PerClass()
	if scores[1].Precision != 0 || scores[1].Recall != 0 || scores[1].F1 != 0 {
		t.Errorf("empty class scores = %+v", scores[1])
	}
	if scores[1].Support != 0 {
		t.Errorf("support = %d", scores[1].Support)
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := NewConfusionMatrix([]string{"a"}, []int{0}, []int{0, 0}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewConfusionMatrix([]string{"a"}, []int{1}, []int{0}); err == nil {
		t.Error("out-of-range label should error")
	}
}

func TestMostConfusedPair(t *testing.T) {
	yTrue := []int{0, 0, 0, 1, 1, 2}
	yPred := []int{1, 1, 0, 1, 1, 2}
	cm := mustCM(t, []string{"noise", "thermal", "usb"}, yTrue, yPred)
	tc, pc, n := cm.MostConfusedPair()
	if tc != "noise" || pc != "thermal" || n != 2 {
		t.Errorf("MostConfusedPair = %s->%s x%d", tc, pc, n)
	}
	if got := cm.ConfusionInvolving("noise"); got != 2 {
		t.Errorf("ConfusionInvolving(noise) = %d", got)
	}
	if got := cm.ConfusionInvolving("absent"); got != 0 {
		t.Errorf("ConfusionInvolving(absent) = %d", got)
	}
}

func TestStringAndReport(t *testing.T) {
	cm := mustCM(t, []string{"Thermal Issue", "Unimportant"},
		[]int{0, 1, 1}, []int{0, 1, 0})
	s := cm.String()
	if !strings.Contains(s, "Thermal Issue") || !strings.Contains(s, "true\\pred") {
		t.Errorf("String() = %q", s)
	}
	r := cm.Report()
	for _, want := range []string{"precision", "weighted avg F1", "macro avg F1", "accuracy"} {
		if !strings.Contains(r, want) {
			t.Errorf("Report missing %q:\n%s", want, r)
		}
	}
}

// Property: weighted F1 is bounded by the min and max per-class F1, and
// accuracy is within [0,1], on random confusion data.
func TestQuickBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 50 + rng.Intn(100)
		k := 2 + rng.Intn(5)
		labels := make([]string, k)
		for i := range labels {
			labels[i] = string(rune('a' + i))
		}
		yTrue := make([]int, n)
		yPred := make([]int, n)
		for i := range yTrue {
			yTrue[i] = rng.Intn(k)
			yPred[i] = rng.Intn(k)
		}
		cm := mustCM(t, labels, yTrue, yPred)
		if a := cm.Accuracy(); a < 0 || a > 1 {
			t.Fatalf("accuracy out of range: %v", a)
		}
		lo, hi := 2.0, -1.0
		for _, s := range cm.PerClass() {
			if s.Support == 0 {
				continue
			}
			if s.F1 < lo {
				lo = s.F1
			}
			if s.F1 > hi {
				hi = s.F1
			}
		}
		w := cm.WeightedF1()
		if w < lo-1e-9 || w > hi+1e-9 {
			t.Fatalf("weighted F1 %v outside [%v,%v]", w, lo, hi)
		}
	}
}

// Property: support per class equals the number of true labels.
func TestQuickSupportConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 30 + rng.Intn(50)
		yTrue := make([]int, n)
		yPred := make([]int, n)
		counts := make([]int, 3)
		for i := range yTrue {
			yTrue[i] = rng.Intn(3)
			yPred[i] = rng.Intn(3)
			counts[yTrue[i]]++
		}
		cm := mustCM(t, []string{"x", "y", "z"}, yTrue, yPred)
		for i, s := range cm.PerClass() {
			if s.Support != counts[i] {
				t.Fatalf("support[%d] = %d, want %d", i, s.Support, counts[i])
			}
		}
		if cm.Total() != n {
			t.Fatalf("Total = %d, want %d", cm.Total(), n)
		}
	}
}
