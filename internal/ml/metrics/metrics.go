// Package metrics implements the evaluation protocol of the paper (§5.1):
// per-class precision/recall/F1 from confusion matrices, the weighted-
// average F1 used for the imbalanced corpus, and text rendering of
// confusion matrices (Figure 2) and classification reports.
package metrics

import (
	"fmt"
	"strings"
)

// ConfusionMatrix counts predictions: M[true][predicted].
type ConfusionMatrix struct {
	Labels []string
	M      [][]int
}

// NewConfusionMatrix builds the matrix from parallel truth/prediction
// slices over n classes.
func NewConfusionMatrix(labels []string, yTrue, yPred []int) (*ConfusionMatrix, error) {
	if len(yTrue) != len(yPred) {
		return nil, fmt.Errorf("metrics: len(yTrue)=%d != len(yPred)=%d", len(yTrue), len(yPred))
	}
	n := len(labels)
	cm := &ConfusionMatrix{Labels: labels, M: make([][]int, n)}
	for i := range cm.M {
		cm.M[i] = make([]int, n)
	}
	for i := range yTrue {
		t, p := yTrue[i], yPred[i]
		if t < 0 || t >= n || p < 0 || p >= n {
			return nil, fmt.Errorf("metrics: label out of range at sample %d (%d,%d)", i, t, p)
		}
		cm.M[t][p]++
	}
	return cm, nil
}

// Total returns the number of counted samples.
func (cm *ConfusionMatrix) Total() int {
	n := 0
	for _, row := range cm.M {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Support returns the number of true samples of class i.
func (cm *ConfusionMatrix) Support(i int) int {
	n := 0
	for _, c := range cm.M[i] {
		n += c
	}
	return n
}

// Accuracy returns the fraction of correct predictions.
func (cm *ConfusionMatrix) Accuracy() float64 {
	total, correct := 0, 0
	for i, row := range cm.M {
		for j, c := range row {
			total += c
			if i == j {
				correct += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// ClassScores holds the per-class diagnostics.
type ClassScores struct {
	Label     string
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// PerClass computes precision, recall and F1 for each class. Classes with
// zero predicted positives get precision 0; zero-support classes get
// recall 0 (the scikit-learn "zero_division=0" convention).
func (cm *ConfusionMatrix) PerClass() []ClassScores {
	n := len(cm.Labels)
	out := make([]ClassScores, n)
	for i := 0; i < n; i++ {
		tp := cm.M[i][i]
		fn, fp := 0, 0
		for j := 0; j < n; j++ {
			if j != i {
				fn += cm.M[i][j]
				fp += cm.M[j][i]
			}
		}
		var prec, rec, f1 float64
		if tp+fp > 0 {
			prec = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			rec = float64(tp) / float64(tp+fn)
		}
		if prec+rec > 0 {
			f1 = 2 * prec * rec / (prec + rec)
		}
		out[i] = ClassScores{
			Label: cm.Labels[i], Precision: prec, Recall: rec, F1: f1,
			Support: tp + fn,
		}
	}
	return out
}

// WeightedF1 returns the support-weighted mean of per-class F1 scores —
// the headline metric in Figure 3 ("better for imbalanced data, like
// ours").
func (cm *ConfusionMatrix) WeightedF1() float64 {
	scores := cm.PerClass()
	var sum float64
	var total int
	for _, s := range scores {
		sum += s.F1 * float64(s.Support)
		total += s.Support
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// MacroF1 returns the unweighted mean of per-class F1 scores.
func (cm *ConfusionMatrix) MacroF1() float64 {
	scores := cm.PerClass()
	if len(scores) == 0 {
		return 0
	}
	var sum float64
	for _, s := range scores {
		sum += s.F1
	}
	return sum / float64(len(scores))
}

// MostConfusedPair returns the off-diagonal cell with the largest count:
// (true class, predicted class, count). Used to verify the paper's finding
// that "Unimportant" is the most frequently confused category.
func (cm *ConfusionMatrix) MostConfusedPair() (trueClass, predClass string, count int) {
	bi, bj, best := -1, -1, 0
	for i, row := range cm.M {
		for j, c := range row {
			if i != j && c > best {
				bi, bj, best = i, j, c
			}
		}
	}
	if bi < 0 {
		return "", "", 0
	}
	return cm.Labels[bi], cm.Labels[bj], best
}

// ConfusionInvolving returns the total off-diagonal count in the row and
// column of the named class — how often it is confused in either direction.
func (cm *ConfusionMatrix) ConfusionInvolving(label string) int {
	idx := -1
	for i, l := range cm.Labels {
		if l == label {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	n := 0
	for j := range cm.M {
		if j != idx {
			n += cm.M[idx][j] + cm.M[j][idx]
		}
	}
	return n
}

// String renders the matrix with truncated row/column headers (Figure 2
// style: rows are true classes, columns are predictions).
func (cm *ConfusionMatrix) String() string {
	var b strings.Builder
	short := make([]string, len(cm.Labels))
	for i, l := range cm.Labels {
		if len(l) > 10 {
			l = l[:10]
		}
		short[i] = l
	}
	fmt.Fprintf(&b, "%-22s", "true\\pred")
	for _, l := range short {
		fmt.Fprintf(&b, "%11s", l)
	}
	b.WriteByte('\n')
	for i, row := range cm.M {
		fmt.Fprintf(&b, "%-22s", cm.Labels[i])
		for _, c := range row {
			fmt.Fprintf(&b, "%11d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Report renders a classification report: per-class rows plus the
// weighted/macro summary lines.
func (cm *ConfusionMatrix) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %9s %9s %9s %9s\n", "class", "precision", "recall", "f1", "support")
	for _, s := range cm.PerClass() {
		fmt.Fprintf(&b, "%-22s %9.4f %9.4f %9.4f %9d\n",
			s.Label, s.Precision, s.Recall, s.F1, s.Support)
	}
	fmt.Fprintf(&b, "%-22s %29.4f %9d\n", "weighted avg F1", cm.WeightedF1(), cm.Total())
	fmt.Fprintf(&b, "%-22s %29.4f\n", "macro avg F1", cm.MacroF1())
	fmt.Fprintf(&b, "%-22s %29.4f\n", "accuracy", cm.Accuracy())
	return b.String()
}
