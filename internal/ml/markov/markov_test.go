package markov

import (
	"math"
	"math/rand"
	"testing"
)

// cyclic generates sequences following 0 -> 1 -> 2 -> 0 with occasional
// self-loops.
func cyclic(rng *rand.Rand, n, length int) [][]int {
	out := make([][]int, n)
	for i := range out {
		seq := make([]int, length)
		s := rng.Intn(3)
		for t := range seq {
			seq[t] = s
			if rng.Float64() < 0.9 {
				s = (s + 1) % 3
			}
		}
		out[i] = seq
	}
	return out
}

func fitted(t *testing.T) *Chain {
	t.Helper()
	c := NewChain(3)
	if err := c.Fit(cyclic(rand.New(rand.NewSource(1)), 50, 40)); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFitValidation(t *testing.T) {
	c := NewChain(2)
	if err := c.Fit([][]int{{0, 5}}); err == nil {
		t.Error("out-of-range state should error")
	}
	if err := NewChain(0).Fit(nil); err == nil {
		t.Error("zero states should error")
	}
	if _, err := (NewChain(2)).LogLikelihood([]int{0}); err == nil {
		t.Error("unfitted chain should error")
	}
}

func TestTransitionProbsLearned(t *testing.T) {
	c := fitted(t)
	// Dominant transitions of the cycle.
	for from, to := range map[int]int{0: 1, 1: 2, 2: 0} {
		p, err := c.TransitionProb(from, to)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.7 {
			t.Errorf("P(%d|%d) = %.3f, want > 0.7", to, from, p)
		}
		next, np, err := c.Next(from)
		if err != nil {
			t.Fatal(err)
		}
		if next != to || np < 0.7 {
			t.Errorf("Next(%d) = %d (%.3f)", from, next, np)
		}
	}
	// Rows are probability distributions.
	for from := 0; from < 3; from++ {
		var sum float64
		for to := 0; to < 3; to++ {
			p, _ := c.TransitionProb(from, to)
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", from, sum)
		}
	}
}

func TestLikelihoodOrdersSequences(t *testing.T) {
	c := fitted(t)
	good := []int{0, 1, 2, 0, 1, 2, 0, 1}
	bad := []int{0, 2, 1, 0, 2, 1, 0, 2} // reversed cycle: rare transitions
	lg, err := c.LogLikelihood(good)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := c.LogLikelihood(bad)
	if err != nil {
		t.Fatal(err)
	}
	if lg <= lb {
		t.Errorf("typical sequence (%f) should outscore reversed cycle (%f)", lg, lb)
	}
	sg, _ := c.PerStepSurprise(good)
	sb, _ := c.PerStepSurprise(bad)
	if sg >= sb {
		t.Errorf("surprise: typical %f should be below anomalous %f", sg, sb)
	}
	// Degenerate inputs.
	if ll, err := c.LogLikelihood(nil); err != nil || ll != 0 {
		t.Errorf("empty sequence = %v, %v", ll, err)
	}
	if _, err := c.LogLikelihood([]int{7}); err == nil {
		t.Error("out-of-range state should error")
	}
}

func TestSequenceDetectorEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := cyclic(rng, 60, 50)
	c := NewChain(3)
	if err := c.Fit(train); err != nil {
		t.Fatal(err)
	}
	d := NewSequenceDetector(c, 8)
	if err := d.Calibrate(train, 1.2); err != nil {
		t.Fatal(err)
	}
	if d.Threshold <= 0 {
		t.Fatal("calibration produced no threshold")
	}

	// A healthy node: never anomalous after warmup.
	s := 0
	for i := 0; i < 60; i++ {
		_, anom, err := d.Observe("healthy", s)
		if err != nil {
			t.Fatal(err)
		}
		if anom {
			t.Fatalf("healthy node flagged at step %d", i)
		}
		if rng.Float64() < 0.9 {
			s = (s + 1) % 3
		}
	}

	// A wedged node: repeats the rarest anti-cycle transitions.
	flagged := false
	states := []int{0, 2, 1}
	for i := 0; i < 30; i++ {
		_, anom, err := d.Observe("wedged", states[i%3])
		if err != nil {
			t.Fatal(err)
		}
		if anom {
			flagged = true
			break
		}
	}
	if !flagged {
		t.Error("anomalous sequence never flagged")
	}
}

func TestObserveWarmup(t *testing.T) {
	c := fitted(t)
	d := NewSequenceDetector(c, 5)
	d.Threshold = 0.001
	for i := 0; i < 4; i++ {
		if _, anom, _ := d.Observe("n", 0); anom {
			t.Fatal("flagged before a full window accumulated")
		}
	}
}
