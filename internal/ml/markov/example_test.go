package markov_test

import (
	"fmt"

	"hetsyslog/internal/ml/markov"
)

func ExampleChain() {
	// States: 0 = job start, 1 = job end, 2 = OOM kill. Healthy nodes
	// alternate start/end.
	chain := markov.NewChain(3)
	healthy := [][]int{
		{0, 1, 0, 1, 0, 1, 0, 1, 0, 1},
		{0, 1, 0, 1, 0, 1, 0, 1},
	}
	if err := chain.Fit(healthy); err != nil {
		panic(err)
	}
	next, _, _ := chain.Next(0)
	fmt.Println("after start comes state", next)

	ok, _ := chain.PerStepSurprise([]int{0, 1, 0, 1})
	bad, _ := chain.PerStepSurprise([]int{0, 2, 2, 2}) // OOM loop
	fmt.Println("healthy window less surprising:", ok < bad)
	// Output:
	// after start comes state 1
	// healthy window less surprising: true
}
