// Package markov implements the temporal modelling thread of the paper's
// related work (§2, Li et al. [15]): a first-order Markov chain over
// per-node category sequences. Where the TF-IDF classifiers judge each
// message in isolation, the chain captures *dynamics* — which category
// tends to follow which — so a node whose recent event sequence is
// improbable under the fleet's learned transitions can be flagged even
// when every individual message is ordinary.
package markov

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chain is a first-order Markov model over a finite state alphabet
// (category indices) with Lidstone smoothing.
type Chain struct {
	// Alpha is the smoothing pseudo-count (default 1).
	Alpha float64

	k       int
	initial []float64   // log P(s_0)
	trans   [][]float64 // log P(s_t | s_{t-1})
	fitted  bool
}

// NewChain returns a chain over k states.
func NewChain(k int) *Chain {
	return &Chain{Alpha: 1, k: k}
}

// States returns the alphabet size.
func (c *Chain) States() int { return c.k }

// Fit estimates initial and transition probabilities from sequences of
// state indices. Sequences shorter than 1 are ignored; out-of-range
// states are rejected.
func (c *Chain) Fit(sequences [][]int) error {
	if c.k <= 0 {
		return fmt.Errorf("markov: chain needs a positive state count")
	}
	if c.Alpha <= 0 {
		c.Alpha = 1
	}
	initCounts := make([]float64, c.k)
	transCounts := make([][]float64, c.k)
	for i := range transCounts {
		transCounts[i] = make([]float64, c.k)
	}
	for si, seq := range sequences {
		for t, s := range seq {
			if s < 0 || s >= c.k {
				return fmt.Errorf("markov: sequence %d has state %d outside [0,%d)", si, s, c.k)
			}
			if t == 0 {
				initCounts[s]++
			} else {
				transCounts[seq[t-1]][s]++
			}
		}
	}
	c.initial = logNormalize(initCounts, c.Alpha)
	c.trans = make([][]float64, c.k)
	for i := range transCounts {
		c.trans[i] = logNormalize(transCounts[i], c.Alpha)
	}
	c.fitted = true
	return nil
}

func logNormalize(counts []float64, alpha float64) []float64 {
	total := alpha * float64(len(counts))
	for _, n := range counts {
		total += n
	}
	out := make([]float64, len(counts))
	for i, n := range counts {
		out[i] = math.Log((n + alpha) / total)
	}
	return out
}

// LogLikelihood returns the log probability of the sequence under the
// fitted chain.
func (c *Chain) LogLikelihood(seq []int) (float64, error) {
	if !c.fitted {
		return 0, fmt.Errorf("markov: chain not fitted")
	}
	if len(seq) == 0 {
		return 0, nil
	}
	for _, s := range seq {
		if s < 0 || s >= c.k {
			return 0, fmt.Errorf("markov: state %d outside [0,%d)", s, c.k)
		}
	}
	ll := c.initial[seq[0]]
	for t := 1; t < len(seq); t++ {
		ll += c.trans[seq[t-1]][seq[t]]
	}
	return ll, nil
}

// PerStepSurprise returns the negated average log likelihood per step —
// a length-normalized anomaly score (higher = more surprising).
func (c *Chain) PerStepSurprise(seq []int) (float64, error) {
	if len(seq) == 0 {
		return 0, nil
	}
	ll, err := c.LogLikelihood(seq)
	if err != nil {
		return 0, err
	}
	return -ll / float64(len(seq)), nil
}

// Next returns the most probable successor of state s and its
// probability.
func (c *Chain) Next(s int) (int, float64, error) {
	if !c.fitted {
		return 0, 0, fmt.Errorf("markov: chain not fitted")
	}
	if s < 0 || s >= c.k {
		return 0, 0, fmt.Errorf("markov: state %d outside [0,%d)", s, c.k)
	}
	best, bi := math.Inf(-1), 0
	for j, lp := range c.trans[s] {
		if lp > best {
			best, bi = lp, j
		}
	}
	return bi, math.Exp(best), nil
}

// TransitionProb returns P(to | from).
func (c *Chain) TransitionProb(from, to int) (float64, error) {
	if !c.fitted {
		return 0, fmt.Errorf("markov: chain not fitted")
	}
	if from < 0 || from >= c.k || to < 0 || to >= c.k {
		return 0, fmt.Errorf("markov: state outside [0,%d)", c.k)
	}
	return math.Exp(c.trans[from][to]), nil
}

// SequenceDetector watches per-node category streams and flags windows
// whose per-step surprise exceeds a threshold learned from training data.
type SequenceDetector struct {
	Chain *Chain
	// Window is the sliding-window length (default 8).
	Window int
	// Threshold is the per-step surprise above which a window is
	// anomalous; set it from Calibrate.
	Threshold float64

	buf map[string][]int
}

// NewSequenceDetector wraps a fitted chain.
func NewSequenceDetector(chain *Chain, window int) *SequenceDetector {
	if window <= 0 {
		window = 8
	}
	return &SequenceDetector{Chain: chain, Window: window, buf: make(map[string][]int)}
}

// Calibrate sets Threshold to the 99th-percentile per-step surprise
// observed over sliding windows of the training sequences, times margin
// (>= 1). A quantile rather than the maximum keeps one freak training
// window from pushing the threshold beyond every real anomaly.
func (d *SequenceDetector) Calibrate(sequences [][]int, margin float64) error {
	if margin < 1 {
		margin = 1
	}
	var scores []float64
	for _, seq := range sequences {
		for i := 0; i+d.Window <= len(seq); i++ {
			s, err := d.Chain.PerStepSurprise(seq[i : i+d.Window])
			if err != nil {
				return err
			}
			scores = append(scores, s)
		}
	}
	if len(scores) == 0 {
		return fmt.Errorf("markov: no calibration windows (window %d too long?)", d.Window)
	}
	sort.Float64s(scores)
	q := int(0.99 * float64(len(scores)-1))
	d.Threshold = scores[q] * margin
	return nil
}

// Observe appends a state for a node and reports whether the node's
// current window is anomalous (false until a full window accumulates).
// The node string is copied on first sight, so callers may pass transient
// strings (pooled syslog message hostnames).
func (d *SequenceDetector) Observe(node string, state int) (surprise float64, anomalous bool, err error) {
	prev, known := d.buf[node]
	if !known {
		// A new map key is retained for the detector's lifetime; an
		// existing key is kept as-is by the assignment below.
		node = strings.Clone(node)
	}
	buf := append(prev, state)
	if len(buf) > d.Window {
		buf = buf[len(buf)-d.Window:]
	}
	d.buf[node] = buf
	if len(buf) < d.Window {
		return 0, false, nil
	}
	s, err := d.Chain.PerStepSurprise(buf)
	if err != nil {
		return 0, false, err
	}
	return s, d.Threshold > 0 && s > d.Threshold, nil
}
