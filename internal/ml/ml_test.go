package ml_test

import (
	"testing"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/ml/mltest"
	"hetsyslog/internal/sparse"
)

func TestDatasetValidate(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 3, PerClass: 10})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &ml.Dataset{
		X:      &sparse.Matrix{Rows: make([]sparse.Vector, 2)},
		Y:      []int{0, 5},
		Labels: []string{"a"},
	}
	if bad.Validate() == nil {
		t.Error("out-of-range label should fail validation")
	}
	mismatch := &ml.Dataset{
		X: &sparse.Matrix{Rows: make([]sparse.Vector, 1)},
		Y: []int{0, 0}, Labels: []string{"a"},
	}
	if mismatch.Validate() == nil {
		t.Error("row/label count mismatch should fail validation")
	}
}

func TestClassCounts(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 3, PerClass: 7})
	for c, n := range ds.ClassCounts() {
		if n != 7 {
			t.Errorf("class %d count = %d, want 7", c, n)
		}
	}
}

func TestStratifiedSplitPreservesProportions(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 4, PerClass: 100})
	train, test := ml.StratifiedSplit(ds, 0.2, 1)
	if train.Len()+test.Len() != ds.Len() {
		t.Fatalf("split lost samples: %d + %d != %d", train.Len(), test.Len(), ds.Len())
	}
	for c, n := range test.ClassCounts() {
		if n != 20 {
			t.Errorf("test class %d = %d, want 20", c, n)
		}
	}
	for c, n := range train.ClassCounts() {
		if n != 80 {
			t.Errorf("train class %d = %d, want 80", c, n)
		}
	}
}

func TestStratifiedSplitTinyClassKeepsTrainSample(t *testing.T) {
	// A class with one sample must stay in train even at high testFrac.
	ds := &ml.Dataset{
		X:      &sparse.Matrix{Rows: make([]sparse.Vector, 3), Cols: 1},
		Y:      []int{0, 0, 1},
		Labels: []string{"big", "tiny"},
	}
	for i := range ds.X.Rows {
		ds.X.Rows[i] = sparse.NewVectorFromMap(map[int32]float64{0: 1})
	}
	train, _ := ml.StratifiedSplit(ds, 0.9, 1)
	if train.ClassCounts()[1] != 1 {
		t.Errorf("tiny class lost from training: counts=%v", train.ClassCounts())
	}
}

func TestStratifiedSplitDeterministic(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 3, PerClass: 30})
	a1, b1 := ml.StratifiedSplit(ds, 0.25, 7)
	a2, b2 := ml.StratifiedSplit(ds, 0.25, 7)
	for i := range a1.Y {
		if a1.Y[i] != a2.Y[i] {
			t.Fatal("same seed should give identical splits")
		}
	}
	for i := range b1.Y {
		if b1.Y[i] != b2.Y[i] {
			t.Fatal("same seed should give identical test splits")
		}
	}
}

func TestDropClass(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 3, PerClass: 10})
	out := ml.DropClass(ds, "B")
	if out.Len() != 20 {
		t.Fatalf("Len = %d, want 20", out.Len())
	}
	if out.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", out.NumClasses())
	}
	for _, l := range out.Labels {
		if l == "B" {
			t.Error("label B should be gone")
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// dropping a non-existent class is a no-op returning the original
	same := ml.DropClass(ds, "missing")
	if same != ds {
		t.Error("DropClass of unknown label should return the input")
	}
}

func TestLabelEncoder(t *testing.T) {
	e := ml.NewLabelEncoder()
	a := e.Encode("Thermal Issue")
	b := e.Encode("Unimportant")
	if a2 := e.Encode("Thermal Issue"); a2 != a {
		t.Error("re-encoding should return the same id")
	}
	if a == b {
		t.Error("distinct labels must get distinct ids")
	}
	if id, ok := e.Lookup("Unimportant"); !ok || id != b {
		t.Error("Lookup failed")
	}
	if _, ok := e.Lookup("nope"); ok {
		t.Error("Lookup of unknown label should fail")
	}
	labels := e.Labels()
	if labels[a] != "Thermal Issue" || labels[b] != "Unimportant" {
		t.Errorf("Labels() = %v", labels)
	}
}

func TestSubsetSharesRows(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 2, PerClass: 5})
	sub := ds.Subset([]int{0, 2, 4})
	if sub.Len() != 3 {
		t.Fatalf("Len = %d", sub.Len())
	}
	if sub.Y[1] != ds.Y[2] {
		t.Error("Subset label mismatch")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 3, PerClass: 60, FeatPerCls: 6, Seed: 7})
	res, err := ml.CrossValidate(func() ml.Classifier {
		return &centroidish{}
	}, ds, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	if res.Mean < 0.9 {
		t.Errorf("CV mean accuracy = %.3f", res.Mean)
	}
	if res.Std < 0 || res.Std > 0.2 {
		t.Errorf("CV std = %.3f", res.Std)
	}
	// Errors.
	if _, err := ml.CrossValidate(func() ml.Classifier { return &centroidish{} }, ds, 1, 1); err == nil {
		t.Error("k=1 should error")
	}
}

// centroidish is a tiny self-contained classifier for the CV test (per-
// class mean vectors, cosine assignment) so the ml package test does not
// import the model packages.
type centroidish struct {
	centroids []map[int32]float64
}

func (c *centroidish) Name() string { return "centroidish" }

func (c *centroidish) Fit(ds *ml.Dataset) error {
	c.centroids = make([]map[int32]float64, ds.NumClasses())
	counts := make([]int, ds.NumClasses())
	for i := range c.centroids {
		c.centroids[i] = map[int32]float64{}
	}
	for i, row := range ds.X.Rows {
		y := ds.Y[i]
		counts[y]++
		for k, f := range row.Idx {
			c.centroids[y][f] += row.Val[k]
		}
	}
	for y := range c.centroids {
		if counts[y] > 0 {
			for f := range c.centroids[y] {
				c.centroids[y][f] /= float64(counts[y])
			}
		}
	}
	return nil
}

func (c *centroidish) Predict(x sparse.Vector) int {
	best, bi := -1.0, 0
	for y, cent := range c.centroids {
		var dot float64
		for k, f := range x.Idx {
			dot += x.Val[k] * cent[f]
		}
		if dot > best {
			best, bi = dot, y
		}
	}
	return bi
}

func TestPredictAllParallelMatchesSerial(t *testing.T) {
	ds := mltest.Generate(mltest.Config{Classes: 4, PerClass: 50, Seed: 3})
	m := &centroidish{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	serial := ml.PredictAll(m, ds.X)
	parallel := ml.PredictAllParallel(m, ds.X)
	if len(serial) != len(parallel) {
		t.Fatal("length mismatch")
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d: %d != %d", i, serial[i], parallel[i])
		}
	}
	// Tiny inputs fall back cleanly.
	one := ds.Subset([]int{0})
	if got := ml.PredictAllParallel(m, one.X); len(got) != 1 {
		t.Fatal("single-row parallel predict broken")
	}
}
