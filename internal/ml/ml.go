// Package ml defines the shared machine-learning plumbing for the
// reproduction: labelled sparse datasets, the Classifier interface all
// eight paper models implement (Figure 3), label encoding, and stratified
// train/test splitting for the imbalanced corpus (§4.4.2).
package ml

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"hetsyslog/internal/sparse"
)

// Dataset is a labelled sparse design matrix. Y holds class indices into
// Labels.
type Dataset struct {
	X      *sparse.Matrix
	Y      []int
	Labels []string
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// NumClasses returns the number of distinct labels.
func (d *Dataset) NumClasses() int { return len(d.Labels) }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.X == nil || len(d.X.Rows) != len(d.Y) {
		return fmt.Errorf("ml: X rows (%d) != labels (%d)", d.X.NRows(), len(d.Y))
	}
	for i, y := range d.Y {
		if y < 0 || y >= len(d.Labels) {
			return fmt.Errorf("ml: sample %d has label %d outside [0,%d)", i, y, len(d.Labels))
		}
	}
	return nil
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Subset returns a view Dataset containing the given sample indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		X:      &sparse.Matrix{Rows: make([]sparse.Vector, len(idx)), Cols: d.X.Cols},
		Y:      make([]int, len(idx)),
		Labels: d.Labels,
	}
	for k, i := range idx {
		sub.X.Rows[k] = d.X.Rows[i]
		sub.Y[k] = d.Y[i]
	}
	return sub
}

// Classifier is the contract every model in the evaluation implements.
// Predict must be safe for concurrent use after Fit returns: it may only
// read fitted state, allocating any scratch (score slices, neighbor
// heaps) per call. All eight paper models comply, which is what allows
// PredictAllParallel here and the worker-pool Sink in internal/core.
type Classifier interface {
	// Name returns the display name used in result tables.
	Name() string
	// Fit trains on the dataset.
	Fit(ds *Dataset) error
	// Predict returns the class index for one feature vector.
	Predict(x sparse.Vector) int
}

// DecisionScorer is implemented by classifiers that expose per-class
// decision scores (used for confidence reporting and diagnostics).
type DecisionScorer interface {
	// DecisionScores returns one score per class; the argmax is the
	// prediction.
	DecisionScores(x sparse.Vector) []float64
}

// PredictAll runs Predict over every row of m.
func PredictAll(c Classifier, m *sparse.Matrix) []int {
	out := make([]int, len(m.Rows))
	for i, r := range m.Rows {
		out[i] = c.Predict(r)
	}
	return out
}

// LabelEncoder assigns dense integer ids to string labels in first-seen
// order.
type LabelEncoder struct {
	index map[string]int
	names []string
}

// NewLabelEncoder returns an empty encoder.
func NewLabelEncoder() *LabelEncoder {
	return &LabelEncoder{index: make(map[string]int)}
}

// Encode returns the id for label, assigning a new one if unseen.
func (e *LabelEncoder) Encode(label string) int {
	if id, ok := e.index[label]; ok {
		return id
	}
	id := len(e.names)
	e.index[label] = id
	e.names = append(e.names, label)
	return id
}

// Lookup returns the id for label and whether it is known.
func (e *LabelEncoder) Lookup(label string) (int, bool) {
	id, ok := e.index[label]
	return id, ok
}

// Labels returns the label names indexed by id.
func (e *LabelEncoder) Labels() []string { return e.names }

// StratifiedSplit partitions the dataset into train/test preserving the
// per-class proportions — essential for the paper's corpus where "Slurm
// Issues" has 46 samples against 106 552 "Unimportant" (§4.4.2). testFrac
// is the fraction per class routed to the test set; every class keeps at
// least one training sample when it has any.
func StratifiedSplit(d *Dataset, testFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	byClass := make([][]int, d.NumClasses())
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var trainIdx, testIdx []int
	for _, idx := range byClass {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTest := int(float64(len(idx)) * testFrac)
		if nTest >= len(idx) && len(idx) > 0 {
			nTest = len(idx) - 1
		}
		testIdx = append(testIdx, idx[:nTest]...)
		trainIdx = append(trainIdx, idx[nTest:]...)
	}
	rng.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	rng.Shuffle(len(testIdx), func(i, j int) { testIdx[i], testIdx[j] = testIdx[j], testIdx[i] })
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// DropClass returns a copy of the dataset with every sample of the named
// class removed and labels re-encoded. It backs the §5.1 ablation that
// removes the "Unimportant" category.
func DropClass(d *Dataset, label string) *Dataset {
	drop := -1
	for i, l := range d.Labels {
		if l == label {
			drop = i
			break
		}
	}
	if drop < 0 {
		return d
	}
	enc := NewLabelEncoder()
	out := &Dataset{X: &sparse.Matrix{Cols: d.X.Cols}}
	for i, y := range d.Y {
		if y == drop {
			continue
		}
		out.X.Rows = append(out.X.Rows, d.X.Rows[i])
		out.Y = append(out.Y, enc.Encode(d.Labels[y]))
	}
	out.Labels = enc.Labels()
	return out
}

// PredictAllParallel is the production counterpart of PredictAll: it fans
// queries across GOMAXPROCS workers. Evaluation code deliberately uses the
// serial PredictAll so the measured "testing time" stays comparable to the
// paper's single-stream numbers; deployments draining a backlog should use
// this one.
func PredictAllParallel(c Classifier, m *sparse.Matrix) []int {
	out := make([]int, len(m.Rows))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(m.Rows) {
		workers = len(m.Rows)
	}
	if workers <= 1 {
		return PredictAll(c, m)
	}
	var wg sync.WaitGroup
	chunk := (len(m.Rows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(m.Rows) {
			hi = len(m.Rows)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = c.Predict(m.Rows[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
