package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// FoldResult is one fold's held-out score.
type FoldResult struct {
	Fold     int
	Accuracy float64
}

// CVResult summarizes a cross-validation run.
type CVResult struct {
	Folds []FoldResult
	Mean  float64
	Std   float64
}

// CrossValidate runs stratified k-fold cross-validation: newModel must
// return a fresh classifier per fold (fitted state must not leak between
// folds). Accuracy is the per-fold held-out metric.
func CrossValidate(newModel func() Classifier, ds *Dataset, k int, seed int64) (*CVResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: k-fold needs k >= 2, got %d", k)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	// Stratified fold assignment: shuffle within each class, deal
	// round-robin into folds.
	rng := rand.New(rand.NewSource(seed + 97))
	foldOf := make([]int, ds.Len())
	byClass := make([][]int, ds.NumClasses())
	for i, y := range ds.Y {
		byClass[y] = append(byClass[y], i)
	}
	for _, idx := range byClass {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for pos, i := range idx {
			foldOf[i] = pos % k
		}
	}

	res := &CVResult{}
	for fold := 0; fold < k; fold++ {
		var trainIdx, testIdx []int
		for i := range ds.Y {
			if foldOf[i] == fold {
				testIdx = append(testIdx, i)
			} else {
				trainIdx = append(trainIdx, i)
			}
		}
		if len(testIdx) == 0 || len(trainIdx) == 0 {
			return nil, fmt.Errorf("ml: fold %d is empty (k=%d too large for %d samples)", fold, k, ds.Len())
		}
		train, test := ds.Subset(trainIdx), ds.Subset(testIdx)
		model := newModel()
		if err := model.Fit(train); err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", fold, err)
		}
		correct := 0
		for i, row := range test.X.Rows {
			if model.Predict(row) == test.Y[i] {
				correct++
			}
		}
		res.Folds = append(res.Folds, FoldResult{
			Fold:     fold,
			Accuracy: float64(correct) / float64(test.Len()),
		})
	}
	var sum, sq float64
	for _, f := range res.Folds {
		sum += f.Accuracy
	}
	res.Mean = sum / float64(k)
	for _, f := range res.Folds {
		d := f.Accuracy - res.Mean
		sq += d * d
	}
	res.Std = math.Sqrt(sq / float64(k))
	return res, nil
}
