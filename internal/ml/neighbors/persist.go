package neighbors

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"hetsyslog/internal/sparse"
)

type knnState struct {
	K          int
	Weighted   bool
	BruteForce bool
	Rows       []sparse.Vector
	Labels     []int
	Classes    int
}

// MarshalBinary implements encoding.BinaryMarshaler. The inverted index is
// not serialized; UnmarshalBinary rebuilds it.
func (m *KNN) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	st := knnState{
		K: m.K, Weighted: m.Weighted, BruteForce: m.BruteForce,
		Rows: m.rows, Labels: m.labels, Classes: m.k,
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *KNN) UnmarshalBinary(data []byte) error {
	var st knnState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st.Rows) != len(st.Labels) {
		return fmt.Errorf("neighbors: inconsistent kNN state (%d rows vs %d labels)",
			len(st.Rows), len(st.Labels))
	}
	m.K, m.Weighted, m.BruteForce = st.K, st.Weighted, st.BruteForce
	m.rows, m.labels, m.k = st.Rows, st.Labels, st.Classes
	m.norms = make([]float64, len(m.rows))
	for i, r := range m.rows {
		m.norms[i] = r.Norm()
	}
	m.postings = nil
	if !m.BruteForce {
		m.postings = make(map[int32][]posting)
		for i, r := range m.rows {
			for j, f := range r.Idx {
				m.postings[f] = append(m.postings[f], posting{int32(i), r.Val[j]})
			}
		}
	}
	return nil
}

type centroidState struct {
	Centroids [][]float64
	SqNorm    []float64
	K         int
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *NearestCentroid) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	st := centroidState{Centroids: m.centroids, SqNorm: m.sqnorm, K: m.k}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *NearestCentroid) UnmarshalBinary(data []byte) error {
	var st centroidState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st.Centroids) != st.K || len(st.SqNorm) != st.K {
		return fmt.Errorf("neighbors: inconsistent centroid state")
	}
	m.centroids, m.sqnorm, m.k = st.Centroids, st.SqNorm, st.K
	return nil
}
