// Package neighbors implements kNN and Nearest Centroid (Figure 3). kNN
// stores the training matrix at fit time — which is why it posts the
// fastest training time in the paper — and pays at query time; our query
// path scores candidates through an inverted index over features, with a
// brute-force fallback retained for the DESIGN.md ablation.
package neighbors

import (
	"container/heap"
	"math"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/sparse"
)

// KNN is a k-nearest-neighbors classifier over cosine similarity. On the
// L2-normalized TF-IDF vectors produced by the vectorizer, cosine ordering
// equals Euclidean ordering, so this matches the scikit-learn setup.
// Predict is safe for concurrent use after Fit: the inverted index is
// read-only and the similarity map and top-k heap are per-call scratch.
type KNN struct {
	// K is the number of neighbors (default 5, sklearn's default).
	K int
	// Weighted enables similarity-weighted voting instead of uniform.
	Weighted bool
	// BruteForce disables the inverted index and scans every training row
	// per query (ablation baseline).
	BruteForce bool

	rows   []sparse.Vector
	norms  []float64
	labels []int
	k      int // classes
	// postings[f] lists (row, value) pairs of training rows containing
	// feature f.
	postings map[int32][]posting
}

type posting struct {
	row int32
	val float64
}

// Name implements ml.Classifier.
func (m *KNN) Name() string { return "kNN" }

// Fit stores the training data and builds the inverted index.
func (m *KNN) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if m.K == 0 {
		m.K = 5
	}
	m.rows = ds.X.Rows
	m.labels = ds.Y
	m.k = ds.NumClasses()
	m.norms = make([]float64, len(m.rows))
	for i, r := range m.rows {
		m.norms[i] = r.Norm()
	}
	if !m.BruteForce {
		m.postings = make(map[int32][]posting)
		for i, r := range m.rows {
			for j, f := range r.Idx {
				m.postings[f] = append(m.postings[f], posting{int32(i), r.Val[j]})
			}
		}
	}
	return nil
}

// neighborHeap is a min-heap by similarity holding the current top-k.
type neighborHeap []scored

type scored struct {
	row int32
	sim float64
}

func (h neighborHeap) Len() int { return len(h) }

// Less orders by similarity with row id as the deterministic tie-break
// (lower row wins), so Predict is stable regardless of map iteration
// order during candidate scoring.
func (h neighborHeap) Less(i, j int) bool {
	if h[i].sim != h[j].sim {
		return h[i].sim < h[j].sim
	}
	return h[i].row > h[j].row
}
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// topK returns up to K (row, cosine) pairs most similar to x.
func (m *KNN) topK(x sparse.Vector) []scored {
	xn := x.Norm()
	if xn == 0 {
		return nil
	}
	var sims map[int32]float64
	if m.BruteForce {
		sims = make(map[int32]float64, len(m.rows))
		for i, r := range m.rows {
			if d := sparse.Dot(x, r); d != 0 {
				sims[int32(i)] = d
			}
		}
	} else {
		sims = make(map[int32]float64, 64)
		for j, f := range x.Idx {
			for _, p := range m.postings[f] {
				sims[p.row] += x.Val[j] * p.val
			}
		}
	}
	h := make(neighborHeap, 0, m.K+1)
	for row, dot := range sims {
		n := m.norms[row]
		if n == 0 {
			continue
		}
		s := dot / (xn * n)
		if len(h) < m.K {
			heap.Push(&h, scored{row, s})
		} else if s > h[0].sim || (s == h[0].sim && row < h[0].row) {
			h[0] = scored{row, s}
			heap.Fix(&h, 0)
		}
	}
	return h
}

// DecisionScores returns per-class vote totals.
func (m *KNN) DecisionScores(x sparse.Vector) []float64 {
	votes := make([]float64, m.k)
	for _, nb := range m.topK(x) {
		w := 1.0
		if m.Weighted {
			w = nb.sim
		}
		votes[m.labels[nb.row]] += w
	}
	return votes
}

// Predict implements ml.Classifier. Queries sharing no feature with any
// training row fall back to the majority training class.
func (m *KNN) Predict(x sparse.Vector) int {
	votes := m.DecisionScores(x)
	best, bi, any := math.Inf(-1), 0, false
	for c, v := range votes {
		if v > 0 {
			any = true
		}
		if v > best {
			best, bi = v, c
		}
	}
	if !any {
		counts := make([]int, m.k)
		for _, y := range m.labels {
			counts[y]++
		}
		mc, mi := -1, 0
		for c, n := range counts {
			if n > mc {
				mc, mi = n, c
			}
		}
		return mi
	}
	return bi
}

// NearestCentroid classifies to the class whose mean feature vector is
// closest in Euclidean distance — the fastest-to-train, least accurate
// model in Figure 3 (F1 0.9523).
type NearestCentroid struct {
	centroids [][]float64
	sqnorm    []float64
	k         int
}

// Name implements ml.Classifier.
func (m *NearestCentroid) Name() string { return "Nearest Centroid" }

// Fit computes per-class centroids.
func (m *NearestCentroid) Fit(ds *ml.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	m.k = ds.NumClasses()
	m.centroids = make([][]float64, m.k)
	counts := make([]int, m.k)
	for c := range m.centroids {
		m.centroids[c] = make([]float64, ds.X.Cols)
	}
	for i, row := range ds.X.Rows {
		sparse.AxpyDense(1, row, m.centroids[ds.Y[i]])
		counts[ds.Y[i]]++
	}
	m.sqnorm = make([]float64, m.k)
	for c := range m.centroids {
		if counts[c] > 0 {
			inv := 1 / float64(counts[c])
			for i := range m.centroids[c] {
				m.centroids[c][i] *= inv
			}
		}
		for _, v := range m.centroids[c] {
			m.sqnorm[c] += v * v
		}
	}
	return nil
}

// DecisionScores returns negated squared distances (higher is closer).
func (m *NearestCentroid) DecisionScores(x sparse.Vector) []float64 {
	out := make([]float64, m.k)
	for c := 0; c < m.k; c++ {
		// ||x-c||² = ||x||² - 2x·c + ||c||²; ||x||² is constant across
		// classes so it is omitted.
		out[c] = 2*sparse.DotDense(x, m.centroids[c]) - m.sqnorm[c]
	}
	return out
}

// Predict implements ml.Classifier.
func (m *NearestCentroid) Predict(x sparse.Vector) int {
	s := m.DecisionScores(x)
	best, bi := math.Inf(-1), 0
	for c, v := range s {
		if v > best {
			best, bi = v, c
		}
	}
	return bi
}
