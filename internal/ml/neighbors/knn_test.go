package neighbors

import (
	"testing"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/ml/mltest"
	"hetsyslog/internal/sparse"
)

func dataset(t *testing.T) (*ml.Dataset, *ml.Dataset) {
	t.Helper()
	ds := mltest.Generate(mltest.Config{
		Classes: 5, PerClass: 80, FeatPerCls: 8, SharedFeats: 4,
		NoiseProb: 0.1, Seed: 2,
	})
	return ml.StratifiedSplit(ds, 0.25, 3)
}

func TestKNNAccuracy(t *testing.T) {
	train, test := dataset(t)
	m := &KNN{}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(m, test); acc < 0.9 {
		t.Errorf("kNN accuracy = %.3f", acc)
	}
}

func TestKNNBruteForceAgreesWithIndex(t *testing.T) {
	train, test := dataset(t)
	idx := &KNN{K: 5}
	brute := &KNN{K: 5, BruteForce: true}
	if err := idx.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := brute.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.X.Rows {
		if idx.Predict(x) != brute.Predict(x) {
			t.Fatal("inverted-index kNN disagrees with brute force")
		}
	}
}

func TestKNNWeightedVoting(t *testing.T) {
	train, test := dataset(t)
	m := &KNN{Weighted: true}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(m, test); acc < 0.9 {
		t.Errorf("weighted kNN accuracy = %.3f", acc)
	}
}

func TestKNNExactNeighborWins(t *testing.T) {
	// A query identical to a training row must adopt that row's class
	// with K=1.
	train, _ := dataset(t)
	m := &KNN{K: 1}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if m.Predict(train.X.Rows[i]) != train.Y[i] {
			t.Fatalf("1-NN failed on its own training row %d", i)
		}
	}
}

func TestKNNNoSharedFeatures(t *testing.T) {
	train, _ := dataset(t)
	m := &KNN{}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	// A vector on a feature no training row has: falls back to majority.
	far := sparse.NewVectorFromMap(map[int32]float64{9999: 1})
	got := m.Predict(far)
	counts := train.ClassCounts()
	want, best := 0, -1
	for c, n := range counts {
		if n > best {
			best, want = n, c
		}
	}
	if got != want {
		t.Errorf("orphan query predicted %d, want majority class %d", got, want)
	}
	// Zero vector behaves the same way.
	if m.Predict(sparse.Vector{}) != want {
		t.Error("zero vector should fall back to majority")
	}
}

func TestNearestCentroidAccuracy(t *testing.T) {
	train, test := dataset(t)
	m := &NearestCentroid{}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(m, test); acc < 0.85 {
		t.Errorf("NearestCentroid accuracy = %.3f", acc)
	}
}

func TestNearestCentroidSimpleGeometry(t *testing.T) {
	// Two classes on orthogonal axes: points land with their axis.
	ds := &ml.Dataset{X: &sparse.Matrix{Cols: 2}, Labels: []string{"x", "y"}}
	for i := 0; i < 10; i++ {
		ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{0: 1}))
		ds.Y = append(ds.Y, 0)
		ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{1: 1}))
		ds.Y = append(ds.Y, 1)
	}
	m := &NearestCentroid{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if m.Predict(sparse.NewVectorFromMap(map[int32]float64{0: 0.9, 1: 0.1})) != 0 {
		t.Error("point near x-centroid misclassified")
	}
	if m.Predict(sparse.NewVectorFromMap(map[int32]float64{0: 0.1, 1: 0.9})) != 1 {
		t.Error("point near y-centroid misclassified")
	}
}

func TestNames(t *testing.T) {
	if (&KNN{}).Name() != "kNN" || (&NearestCentroid{}).Name() != "Nearest Centroid" {
		t.Error("wrong names")
	}
}

func TestRejectBadDataset(t *testing.T) {
	bad := &ml.Dataset{
		X: &sparse.Matrix{Rows: make([]sparse.Vector, 1), Cols: 1},
		Y: []int{5}, Labels: []string{"a"},
	}
	if err := (&KNN{}).Fit(bad); err == nil {
		t.Error("KNN accepted invalid dataset")
	}
	if err := (&NearestCentroid{}).Fit(bad); err == nil {
		t.Error("NearestCentroid accepted invalid dataset")
	}
}

func BenchmarkKNNPredictIndexed(b *testing.B) {
	ds := mltest.Generate(mltest.Config{Classes: 8, PerClass: 500, FeatPerCls: 10, Seed: 1})
	m := &KNN{}
	if err := m.Fit(ds); err != nil {
		b.Fatal(err)
	}
	q := ds.X.Rows[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(q)
	}
}

// BenchmarkKNNPredictBrute is the DESIGN.md ablation counterpart: full scan
// per query.
func BenchmarkKNNPredictBrute(b *testing.B) {
	ds := mltest.Generate(mltest.Config{Classes: 8, PerClass: 500, FeatPerCls: 10, Seed: 1})
	m := &KNN{BruteForce: true}
	if err := m.Fit(ds); err != nil {
		b.Fatal(err)
	}
	q := ds.X.Rows[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(q)
	}
}

// TestKNNDeterministicUnderTies guards the tie-break fix: identical
// similarities at the k boundary must not make predictions depend on map
// iteration order.
func TestKNNDeterministicUnderTies(t *testing.T) {
	// Many training rows identical to the query (all cosine 1.0) with
	// mixed labels: the vote must be reproducible.
	ds := &ml.Dataset{X: &sparse.Matrix{Cols: 2}, Labels: []string{"a", "b"}}
	for i := 0; i < 20; i++ {
		ds.X.Rows = append(ds.X.Rows, sparse.NewVectorFromMap(map[int32]float64{0: 1}))
		ds.Y = append(ds.Y, i%2)
	}
	m := &KNN{K: 5}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	q := sparse.NewVectorFromMap(map[int32]float64{0: 1})
	first := m.Predict(q)
	for i := 0; i < 50; i++ {
		if m.Predict(q) != first {
			t.Fatal("prediction varies across calls under ties")
		}
	}
}

func TestNeighborsPersistRoundTrip(t *testing.T) {
	train, test := dataset(t)
	m := &KNN{K: 5}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m2 := &KNN{}
	if err := m2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.X.Rows[:30] {
		if m2.Predict(x) != m.Predict(x) {
			t.Fatal("restored kNN diverges")
		}
	}

	nc := &NearestCentroid{}
	if err := nc.Fit(train); err != nil {
		t.Fatal(err)
	}
	cblob, err := nc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	nc2 := &NearestCentroid{}
	if err := nc2.UnmarshalBinary(cblob); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.X.Rows[:30] {
		if nc2.Predict(x) != nc.Predict(x) {
			t.Fatal("restored centroid diverges")
		}
	}
	if err := nc2.UnmarshalBinary([]byte("junk")); err == nil {
		t.Error("junk blob should error")
	}
}
