package monitor

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// ServeAlerts handles GET /alerts: the manager's recent-alert ring as a
// JSON array, oldest first. Parameters:
//
//	limit  maximum alerts returned (default 100, must be positive)
//	since  RFC 3339 timestamp; alerts before it are excluded
//
// Malformed parameters are rejected with 400 rather than silently
// defaulted, matching the dashboard views' validation.
func (am *AlertManager) ServeAlerts(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			http.Error(w, "bad limit: must be a positive integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	var since time.Time
	if s := r.URL.Query().Get("since"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = t
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(am.Recent(limit, since)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
