package monitor

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"hetsyslog/internal/taxonomy"
)

// TestAlertRingRecent covers the recent-alert ring: wrap-around at
// RingSize keeping the newest entries, oldest-first ordering, the since
// filter, and limit trimming from the tail.
func TestAlertRingRecent(t *testing.T) {
	am := &AlertManager{RingSize: 4, Notifier: NotifierFunc(func(Alert) {})}
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 7; i++ {
		ok := am.ConsiderAlert(Alert{
			Category: taxonomy.IntrusionDetection,
			Node:     fmt.Sprintf("cn%d", i),
			Text:     "alert",
			Time:     t0.Add(time.Duration(i) * time.Minute),
		})
		if !ok {
			t.Fatalf("alert %d not sent", i)
		}
	}
	got := am.Recent(0, time.Time{})
	if len(got) != 4 {
		t.Fatalf("ring retained %d, want RingSize 4", len(got))
	}
	for i, a := range got {
		if want := fmt.Sprintf("cn%d", i+3); a.Node != want {
			t.Errorf("recent[%d] = %s, want %s (oldest first, newest retained)", i, a.Node, want)
		}
	}
	if got := am.Recent(2, time.Time{}); len(got) != 2 || got[1].Node != "cn6" {
		t.Errorf("limit 2 returned %+v, want the 2 newest", got)
	}
	if got := am.Recent(0, t0.Add(5*time.Minute)); len(got) != 2 {
		t.Errorf("since filter returned %d, want 2 (cn5, cn6)", len(got))
	}
}

// TestAlertRingDisabled: a negative RingSize keeps the manager sending
// but retains nothing for the read API.
func TestAlertRingDisabled(t *testing.T) {
	am := &AlertManager{RingSize: -1}
	am.ConsiderAlert(Alert{Category: taxonomy.IntrusionDetection, Node: "cn1", Time: time.Now()})
	if sent, _ := am.Counts(); sent != 1 {
		t.Fatalf("sent = %d, want 1", sent)
	}
	if got := am.Recent(0, time.Time{}); len(got) != 0 {
		t.Errorf("disabled ring retained %d alerts", len(got))
	}
}

// TestServeAlertsValidation: GET /alerts rejects malformed limit/since
// with 400 (never silently defaults) and serves the ring as JSON.
func TestServeAlertsValidation(t *testing.T) {
	am := &AlertManager{}
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	am.ConsiderAlert(Alert{
		Category: taxonomy.IntrusionDetection, Node: "cn1", Text: "burst",
		Time: now, Detector: "burst", Confidence: 0.75,
	})

	for _, bad := range []string{
		"?limit=0", "?limit=-3", "?limit=abc", "?limit=1.5",
		"?since=yesterday", "?since=2026-13-40",
	} {
		w := httptest.NewRecorder()
		am.ServeAlerts(w, httptest.NewRequest("GET", "/alerts"+bad, nil))
		if w.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, w.Code)
		}
	}

	w := httptest.NewRecorder()
	am.ServeAlerts(w, httptest.NewRequest("GET", "/alerts?limit=10&since=2026-08-07T11:00:00Z", nil))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var alerts []Alert
	if err := json.Unmarshal(w.Body.Bytes(), &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Detector != "burst" || alerts[0].Confidence != 0.75 {
		t.Errorf("served %+v", alerts)
	}
}
