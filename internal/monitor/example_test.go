package monitor_test

import (
	"fmt"
	"time"

	"hetsyslog/internal/monitor"
	"hetsyslog/internal/store"
)

func ExampleDetectSurges() {
	base := time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC)
	buckets := []store.HistogramBucket{
		{Start: base, Count: 5},
		{Start: base.Add(time.Minute), Count: 6},
		{Start: base.Add(2 * time.Minute), Count: 90}, // cold-aisle door left open
		{Start: base.Add(3 * time.Minute), Count: 5},
	}
	for _, s := range monitor.DetectSurges(buckets, 3, 10) {
		fmt.Printf("surge at %s: %d messages\n", s.Start.Format("15:04"), s.Count)
	}
	// Output: surge at 12:02: 90 messages
}

func ExampleSparkline() {
	base := time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC)
	buckets := []store.HistogramBucket{
		{Start: base, Count: 1},
		{Start: base.Add(time.Minute), Count: 4},
		{Start: base.Add(2 * time.Minute), Count: 8},
		{Start: base.Add(3 * time.Minute), Count: 2},
	}
	fmt.Println(monitor.Sparkline(buckets))
	// Output: ▁▄█▂
}
