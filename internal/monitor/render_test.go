package monitor

import (
	"strings"
	"testing"
	"time"

	"hetsyslog/internal/store"
)

func buckets3() []store.HistogramBucket {
	return []store.HistogramBucket{
		{Start: t0, Count: 2},
		{Start: t0.Add(time.Minute), Count: 100},
		{Start: t0.Add(2 * time.Minute), Count: 0},
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline(buckets3())
	if rc := len([]rune(s)); rc != 3 {
		t.Fatalf("sparkline runes = %d", rc)
	}
	runes := []rune(s)
	if runes[1] != '█' {
		t.Errorf("max bucket should render full block, got %q", string(runes[1]))
	}
	if runes[2] != '▁' {
		t.Errorf("empty bucket should render lowest block, got %q", string(runes[2]))
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty string")
	}
	// All-zero buckets must not divide by zero.
	z := Sparkline([]store.HistogramBucket{{Start: t0, Count: 0}})
	if z != "▁" {
		t.Errorf("zero sparkline = %q", z)
	}
}

func TestRenderHistogram(t *testing.T) {
	surges := []Surge{{Start: t0.Add(time.Minute), Count: 100}}
	out := RenderHistogram(buckets3(), surges, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "!") {
		t.Errorf("surge bucket not marked: %q", lines[1])
	}
	if strings.Contains(lines[0], "!") {
		t.Errorf("non-surge bucket marked: %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("max bucket bar wrong: %q", lines[1])
	}
	if RenderHistogram(nil, nil, 10) != "(no data)\n" {
		t.Error("empty histogram rendering wrong")
	}
}

func TestRenderTerms(t *testing.T) {
	out := RenderTerms([]store.TermBucket{
		{Value: "cn007", Count: 50},
		{Value: "cn013", Count: 5},
	}, 10)
	if !strings.Contains(out, "cn007") || !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Errorf("terms rendering:\n%s", out)
	}
	if RenderTerms(nil, 10) != "(no data)\n" {
		t.Error("empty terms rendering wrong")
	}
}
