package monitor

import (
	"sort"
	"time"

	"hetsyslog/internal/store"
)

// CorrelatedPair links one event from query A to a temporally-close event
// from query B — §4.5.1's investigative move: "correlate someone's access
// control to the data center room with a log that is identified as a
// security event, such as someone plugging in a USB device".
type CorrelatedPair struct {
	A store.Doc `json:"a"`
	B store.Doc `json:"b"`
	// Gap is B.Time - A.Time (negative when B precedes A).
	Gap time.Duration `json:"gap_ns"`
}

// Correlate returns, for every document matching qA, the nearest-in-time
// document matching qB within ±window. Results are ordered by |Gap|,
// tightest correlations first, capped at limit (0 = no cap).
func Correlate(st *store.Store, qA, qB store.Query, window time.Duration, limit int) []CorrelatedPair {
	aHits := st.Search(store.SearchRequest{Query: qA, Size: -1, SortAsc: true})
	bHits := st.Search(store.SearchRequest{Query: qB, Size: -1, SortAsc: true})
	if len(aHits) == 0 || len(bHits) == 0 {
		return nil
	}
	var out []CorrelatedPair
	j := 0
	for _, a := range aHits {
		// Advance j to the first B not before (A - window).
		lo := a.Doc.Time.Add(-window)
		for j < len(bHits) && bHits[j].Doc.Time.Before(lo) {
			j++
		}
		// Scan the in-window Bs for the closest.
		bestIdx, bestAbs := -1, window+1
		for k := j; k < len(bHits); k++ {
			gap := bHits[k].Doc.Time.Sub(a.Doc.Time)
			if gap > window {
				break
			}
			abs := gap
			if abs < 0 {
				abs = -abs
			}
			if abs < bestAbs {
				bestAbs, bestIdx = abs, k
			}
		}
		if bestIdx >= 0 {
			out = append(out, CorrelatedPair{
				A:   a.Doc,
				B:   bHits[bestIdx].Doc,
				Gap: bHits[bestIdx].Doc.Time.Sub(a.Doc.Time),
			})
		}
	}
	sort.Slice(out, func(x, y int) bool {
		ax, ay := out[x].Gap, out[y].Gap
		if ax < 0 {
			ax = -ax
		}
		if ay < 0 {
			ay = -ay
		}
		return ax < ay
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
