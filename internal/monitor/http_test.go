package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

func dashboardServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st := store.New(2)
	// Background + a thermal burst on rack r1.
	for i := 0; i < 20; i++ {
		indexEvent(st, time.Duration(i)*time.Minute, "cn01", "r0", "x86_64-dell",
			"kernel", taxonomy.Unimportant, "routine chatter")
	}
	for i := 0; i < 60; i++ {
		indexEvent(st, 5*time.Minute+time.Duration(i)*time.Second, "cn17", "r1",
			"aarch64-cavium", "ipmiseld", taxonomy.ThermalIssue, "temperature above threshold")
	}
	d := &Dashboard{
		Store: st,
		Archs: func(arch string) (int, bool) {
			if arch == "aarch64-cavium" {
				return 16, true
			}
			return 0, false
		},
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return srv, st
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestDashboardCategories(t *testing.T) {
	srv, _ := dashboardServer(t)
	var buckets []store.TermBucket
	if code := getJSON(t, srv, "/views/categories", &buckets); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(buckets) != 2 || buckets[0].Value != string(taxonomy.ThermalIssue) {
		t.Errorf("categories = %+v", buckets)
	}
}

func TestDashboardFrequency(t *testing.T) {
	srv, _ := dashboardServer(t)
	var rep FrequencyReport
	if code := getJSON(t, srv, "/views/frequency?interval=1m&factor=3&min=10", &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(rep.Surges) == 0 {
		t.Fatalf("no surges detected: %+v", rep)
	}
	if rep.TopNodes[0].Value != "cn17" {
		t.Errorf("top node = %+v", rep.TopNodes)
	}
	// Category filter narrows the histogram.
	var rep2 FrequencyReport
	getJSON(t, srv, "/views/frequency?interval=1m&category=Unimportant", &rep2)
	total := 0
	for _, b := range rep2.Buckets {
		total += b.Count
	}
	if total != 20 {
		t.Errorf("filtered histogram total = %d", total)
	}
}

func TestDashboardFrequencyBadParams(t *testing.T) {
	srv, _ := dashboardServer(t)
	for _, path := range []string{
		"/views/frequency?interval=nope",
		"/views/frequency?interval=-1m",
		"/views/frequency?interval=0s",
		"/views/frequency?factor=abc",
		"/views/frequency?min=x",
		"/views/correlate?a=x&b=y&window=-5m",
		"/views/correlate?a=x&b=y&window=0s",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestDashboardPositional(t *testing.T) {
	srv, _ := dashboardServer(t)
	var reports []RackReport
	if code := getJSON(t, srv, "/views/positional?category="+url.QueryEscape("Thermal Issue"), &reports); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(reports) != 1 || reports[0].Rack != "r1" || reports[0].Total != 60 {
		t.Errorf("positional = %+v", reports)
	}
}

func TestDashboardPerArch(t *testing.T) {
	srv, _ := dashboardServer(t)
	var v ArchVerdict
	code := getJSON(t, srv, "/views/perarch?arch=aarch64-cavium&match="+url.QueryEscape("temperature above threshold"), &v)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if v.NodesTotal != 16 || v.NodesReporting != 1 {
		t.Errorf("verdict = %+v", v)
	}
	if v.LikelyFalseIndication {
		t.Error("single reporter should not be a false indication")
	}
	// Missing params are rejected.
	resp, err := http.Get(srv.URL + "/views/perarch?arch=onlyarch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing match -> %d", resp.StatusCode)
	}
}

func TestDashboardAlertsConfig(t *testing.T) {
	srv, _ := dashboardServer(t)
	var rows []struct {
		Category   string `json:"category"`
		Actionable bool   `json:"actionable"`
	}
	if code := getJSON(t, srv, "/views/alerts/config", &rows); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		want := r.Category != string(taxonomy.Unimportant)
		if r.Actionable != want {
			t.Errorf("%s actionable = %v", r.Category, r.Actionable)
		}
	}
}

func TestDashboardCorrelate(t *testing.T) {
	st := store.New(1)
	indexEvent(st, 0, "door1", "r0", "-", "badge", taxonomy.Unimportant, "badge access granted")
	indexEvent(st, 30*time.Second, "cn07", "r0", "-", "kernel", taxonomy.USBDevice,
		"usb 1-1: new device")
	d := &Dashboard{Store: st}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var pairs []CorrelatedPair
	code := getJSON(t, srv, "/views/correlate?a="+url.QueryEscape("badge access")+
		"&b=category:USB-Device&window=2m", &pairs)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(pairs) != 1 || pairs[0].Gap != 30*time.Second {
		t.Errorf("pairs = %+v", pairs)
	}
	// Missing params rejected.
	resp, err := http.Get(srv.URL + "/views/correlate?a=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing b -> %d", resp.StatusCode)
	}
}
