// Package monitor implements the §4.5 monitoring views on top of the Tivan
// store: frequency/temporal surge detection (§4.5.1), positional (rack)
// analysis (§4.5.2), per-architecture anomaly verification (§4.5.3), and
// the category-triggered notification rules described in §3.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

// Surge is one detected burst of messages.
type Surge struct {
	Start time.Time `json:"start"`
	Count int       `json:"count"`
	// Baseline is the mean bucket count outside the surge.
	Baseline float64 `json:"baseline"`
	// Factor is Count/Baseline.
	Factor float64 `json:"factor"`
}

// DetectSurges flags histogram buckets whose count exceeds factor times
// the mean of the other buckets (and at least minCount). This is the
// "sudden influx of a large quantity of new syslog messages" signal of
// §4.5.1.
func DetectSurges(buckets []store.HistogramBucket, factor float64, minCount int) []Surge {
	if len(buckets) == 0 {
		return nil
	}
	if factor <= 1 {
		factor = 3
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	var surges []Surge
	for _, b := range buckets {
		others := total - b.Count
		n := len(buckets) - 1
		baseline := 0.0
		if n > 0 {
			baseline = float64(others) / float64(n)
		}
		if b.Count < minCount {
			continue
		}
		if baseline == 0 || float64(b.Count) >= factor*baseline {
			f := math.Inf(1)
			if baseline > 0 {
				f = float64(b.Count) / baseline
			}
			surges = append(surges, Surge{Start: b.Start, Count: b.Count, Baseline: baseline, Factor: f})
		}
	}
	return surges
}

// FrequencyReport runs the §4.5.1 view: histogram a query, detect surges,
// and rank the noisiest nodes and services inside each surge window.
type FrequencyReport struct {
	Buckets []store.HistogramBucket `json:"buckets"`
	Surges  []Surge                 `json:"surges"`
	// TopNodes/TopApps rank activity within the surge windows.
	TopNodes []store.TermBucket `json:"top_nodes"`
	TopApps  []store.TermBucket `json:"top_apps"`
}

// Frequency builds a FrequencyReport for q at the given interval.
func Frequency(st *store.Store, q store.Query, interval time.Duration, surgeFactor float64, minCount int) FrequencyReport {
	rep := FrequencyReport{Buckets: st.DateHistogram(q, interval)}
	rep.Surges = DetectSurges(rep.Buckets, surgeFactor, minCount)
	if len(rep.Surges) > 0 {
		first := rep.Surges[0]
		window := store.Bool{Must: []store.Query{
			q,
			store.TimeRange{From: first.Start, To: rep.Surges[len(rep.Surges)-1].Start.Add(interval)},
		}}
		rep.TopNodes = st.Terms(window, "hostname", 5)
		rep.TopApps = st.Terms(window, "app", 5)
	}
	return rep
}

// RackReport aggregates activity for one rack (§4.5.2): nodes in a rack
// share an edge switch and a thermal micro-climate, so rack-correlated
// issues point at infrastructure rather than individual nodes.
type RackReport struct {
	Rack       string         `json:"rack"`
	Total      int            `json:"total"`
	ByCategory map[string]int `json:"by_category"`
	// NodesReporting counts distinct hostnames with matches.
	NodesReporting int `json:"nodes_reporting"`
}

// Positional groups matching documents by the "rack" field. Racks are
// returned busiest-first.
func Positional(st *store.Store, q store.Query) []RackReport {
	racks := st.Terms(q, "rack", 0)
	out := make([]RackReport, 0, len(racks))
	for _, rb := range racks {
		rackQ := store.Bool{Must: []store.Query{q, store.Term{Field: "rack", Value: rb.Value}}}
		rep := RackReport{Rack: rb.Value, Total: rb.Count, ByCategory: map[string]int{}}
		for _, cb := range st.Terms(rackQ, "category", 0) {
			rep.ByCategory[cb.Value] = cb.Count
		}
		rep.NodesReporting = len(st.Terms(rackQ, "hostname", 0))
		out = append(out, rep)
	}
	return out
}

// ArchVerdict is the §4.5.3 judgement: a reading that every node of an
// architecture reports identically is probably a chassis/firmware quirk,
// not a real per-node fault.
type ArchVerdict struct {
	Arch           string  `json:"arch"`
	NodesReporting int     `json:"nodes_reporting"`
	NodesTotal     int     `json:"nodes_total"`
	Fraction       float64 `json:"fraction"`
	// LikelyFalseIndication is true when (nearly) the whole architecture
	// reports the same condition.
	LikelyFalseIndication bool `json:"likely_false_indication"`
}

// PerArch evaluates how widespread a condition (query q) is within one
// architecture, given the total number of nodes of that architecture.
// threshold is the reporting fraction above which the condition is judged
// architecture-wide (default 0.8 when <= 0).
func PerArch(st *store.Store, q store.Query, arch string, nodesTotal int, threshold float64) ArchVerdict {
	if threshold <= 0 {
		threshold = 0.8
	}
	archQ := store.Bool{Must: []store.Query{q, store.Term{Field: "arch", Value: arch}}}
	reporting := len(st.Terms(archQ, "hostname", 0))
	v := ArchVerdict{Arch: arch, NodesReporting: reporting, NodesTotal: nodesTotal}
	if nodesTotal > 0 {
		v.Fraction = float64(reporting) / float64(nodesTotal)
	}
	v.LikelyFalseIndication = nodesTotal > 1 && v.Fraction >= threshold
	return v
}

// Alert is one notification to the administrators.
type Alert struct {
	Category taxonomy.Category `json:"category"`
	Node     string            `json:"node"`
	Text     string            `json:"text"`
	Time     time.Time         `json:"time"`
	// Detector names the streaming detector that raised the alert
	// ("rate", "burst", "spray", "scan"); empty for per-message
	// classification alerts.
	Detector string `json:"detector,omitempty"`
	// Confidence is the detector's score in (0, 1); zero when the alert
	// did not come from a detector.
	Confidence float64 `json:"confidence,omitempty"`
}

// String renders the alert like the notification emails of §3.
func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s %s: %s", a.Category, a.Time.Format(time.RFC3339), a.Node, a.Text)
}

// Notifier delivers alerts (email, chat, test recorder...).
type Notifier interface {
	Notify(Alert)
}

// NotifierFunc adapts a function to Notifier.
type NotifierFunc func(Alert)

// Notify calls f.
func (f NotifierFunc) Notify(a Alert) { f(a) }

// AlertManager applies the §3 rule — "issue categories could be set to
// trigger a notification email when a new message within that category has
// been identified" — with a per-category cooldown so a surge doesn't send
// ten thousand emails.
type AlertManager struct {
	// Enabled lists the categories that trigger notifications; when nil,
	// every actionable category triggers.
	Enabled map[taxonomy.Category]bool
	// Cooldown is the minimum spacing between alerts of one category
	// (default 0 = alert on everything).
	Cooldown time.Duration
	Notifier Notifier
	// RingSize caps the in-memory ring of recently sent alerts served by
	// the /alerts read API: 0 means DefaultAlertRing, negative disables
	// retention entirely. Set it before the first alert; later changes
	// are ignored.
	RingSize int

	mu       sync.Mutex
	lastSent map[taxonomy.Category]time.Time
	sent     int
	muted    int
	ring     []Alert
	ringNext int
	ringLen  int
}

// DefaultAlertRing is the recent-alert ring capacity when
// AlertManager.RingSize is left zero.
const DefaultAlertRing = 1024

// Consider evaluates one classified message and possibly notifies.
// It reports whether a notification went out.
func (am *AlertManager) Consider(cat taxonomy.Category, node, text string, at time.Time) bool {
	return am.ConsiderAlert(Alert{Category: cat, Node: node, Text: text, Time: at})
}

// ConsiderAlert is Consider for pre-built alerts carrying detector
// attribution and confidence — the streaming detectors' entry point. The
// same category filtering and cooldown apply.
func (am *AlertManager) ConsiderAlert(a Alert) bool {
	if am.Enabled != nil {
		if !am.Enabled[a.Category] {
			return false
		}
	} else if !taxonomy.Actionable(a.Category) {
		return false
	}
	am.mu.Lock()
	if am.lastSent == nil {
		am.lastSent = make(map[taxonomy.Category]time.Time)
	}
	if last, ok := am.lastSent[a.Category]; ok && am.Cooldown > 0 && a.Time.Sub(last) < am.Cooldown {
		am.muted++
		am.mu.Unlock()
		return false
	}
	am.lastSent[a.Category] = a.Time
	am.sent++
	// The alert is retained (ring) and handed to the notifier, but its
	// Node/Text may be views of a pooled syslog message that gets
	// re-parsed after this record is released. Copy them here, at the
	// post-cooldown alert rate, instead of per considered message.
	a.Node = strings.Clone(a.Node)
	a.Text = strings.Clone(a.Text)
	am.recordLocked(a)
	n := am.Notifier
	am.mu.Unlock()
	if n != nil {
		n.Notify(a)
	}
	return true
}

// recordLocked appends a sent alert to the recent ring. Caller holds
// am.mu.
func (am *AlertManager) recordLocked(a Alert) {
	if am.RingSize < 0 {
		return
	}
	if am.ring == nil {
		size := am.RingSize
		if size == 0 {
			size = DefaultAlertRing
		}
		am.ring = make([]Alert, size)
	}
	am.ring[am.ringNext] = a
	am.ringNext = (am.ringNext + 1) % len(am.ring)
	if am.ringLen < len(am.ring) {
		am.ringLen++
	}
}

// Recent returns up to limit of the most recently sent alerts whose time
// is not before since, oldest first. limit <= 0 means every retained
// alert; a zero since means no time filter.
func (am *AlertManager) Recent(limit int, since time.Time) []Alert {
	am.mu.Lock()
	defer am.mu.Unlock()
	out := make([]Alert, 0, am.ringLen)
	if am.ringLen == 0 {
		return out
	}
	start := am.ringNext - am.ringLen
	if start < 0 {
		start += len(am.ring)
	}
	for i := 0; i < am.ringLen; i++ {
		a := am.ring[(start+i)%len(am.ring)]
		if !since.IsZero() && a.Time.Before(since) {
			continue
		}
		out = append(out, a)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Counts returns how many alerts were sent and how many were muted by the
// cooldown.
func (am *AlertManager) Counts() (sent, muted int) {
	am.mu.Lock()
	defer am.mu.Unlock()
	return am.sent, am.muted
}

// CategoryQuery matches documents classified into cat (documents must
// carry a "category" field, which the core pipeline adds).
func CategoryQuery(cat taxonomy.Category) store.Query {
	return store.Term{Field: "category", Value: string(cat)}
}

// BusiestRacks returns rack reports sorted by total, capped at n.
func BusiestRacks(reports []RackReport, n int) []RackReport {
	sorted := append([]RackReport(nil), reports...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Total > sorted[b].Total })
	if n > 0 && len(sorted) > n {
		sorted = sorted[:n]
	}
	return sorted
}
