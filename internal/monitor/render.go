package monitor

import (
	"fmt"
	"strings"

	"hetsyslog/internal/store"
)

// sparkRunes are eight fill levels for terminal sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders bucket counts as a one-line unicode sparkline — the
// terminal edition of §4.5.1's "number of messages on one axis, time on
// the other".
func Sparkline(buckets []store.HistogramBucket) string {
	if len(buckets) == 0 {
		return ""
	}
	maxC := 0
	for _, b := range buckets {
		if b.Count > maxC {
			maxC = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range buckets {
		if maxC == 0 {
			sb.WriteRune(sparkRunes[0])
			continue
		}
		level := b.Count * (len(sparkRunes) - 1) / maxC
		sb.WriteRune(sparkRunes[level])
	}
	return sb.String()
}

// RenderHistogram renders buckets as horizontal bars with timestamps,
// width columns wide, marking surge buckets with '!'.
func RenderHistogram(buckets []store.HistogramBucket, surges []Surge, width int) string {
	if len(buckets) == 0 {
		return "(no data)\n"
	}
	if width <= 0 {
		width = 40
	}
	maxC := 0
	for _, b := range buckets {
		if b.Count > maxC {
			maxC = b.Count
		}
	}
	surgeSet := make(map[int64]bool, len(surges))
	for _, s := range surges {
		surgeSet[s.Start.UnixNano()] = true
	}
	var sb strings.Builder
	for _, b := range buckets {
		bar := 0
		if maxC > 0 {
			bar = b.Count * width / maxC
		}
		mark := ' '
		if surgeSet[b.Start.UnixNano()] {
			mark = '!'
		}
		fmt.Fprintf(&sb, "%s %c %6d %s\n",
			b.Start.Format("15:04"), mark, b.Count, strings.Repeat("#", bar))
	}
	return sb.String()
}

// RenderTerms renders a terms aggregation as aligned rows with bars.
func RenderTerms(buckets []store.TermBucket, width int) string {
	if len(buckets) == 0 {
		return "(no data)\n"
	}
	if width <= 0 {
		width = 30
	}
	maxC := buckets[0].Count
	for _, b := range buckets {
		if b.Count > maxC {
			maxC = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range buckets {
		bar := 0
		if maxC > 0 {
			bar = b.Count * width / maxC
		}
		fmt.Fprintf(&sb, "%-24s %6d %s\n", b.Value, b.Count, strings.Repeat("#", bar))
	}
	return sb.String()
}
