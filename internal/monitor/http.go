package monitor

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

// ArchInfo supplies node totals per architecture for the per-arch view.
type ArchInfo func(arch string) (nodesTotal int, ok bool)

// Dashboard serves the §4.5 monitoring views as JSON over HTTP — the
// reproduction's Grafana. Routes:
//
//	GET /views/categories                          message counts per category
//	GET /views/frequency?interval=1m&category=X    histogram + surges + top nodes/apps
//	GET /views/positional?category=X               per-rack reports, busiest first
//	GET /views/perarch?arch=A&match=TEXT           architecture-wide false-indication check
//	GET /views/alerts/config                       alertable categories
type Dashboard struct {
	Store *store.Store
	// Archs resolves architecture sizes; nil disables /views/perarch
	// verdicts (NodesTotal 0).
	Archs ArchInfo
}

// Handler returns the dashboard mux.
func (d *Dashboard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /views/categories", d.handleCategories)
	mux.HandleFunc("GET /views/frequency", d.handleFrequency)
	mux.HandleFunc("GET /views/positional", d.handlePositional)
	mux.HandleFunc("GET /views/perarch", d.handlePerArch)
	mux.HandleFunc("GET /views/alerts/config", d.handleAlertsConfig)
	mux.HandleFunc("GET /views/correlate", d.handleCorrelate)
	return mux
}

func dashJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// queryFor builds the base query from optional ?category= and ?node=.
func queryFor(r *http.Request) store.Query {
	var must []store.Query
	if cat := r.URL.Query().Get("category"); cat != "" {
		must = append(must, store.Term{Field: "category", Value: cat})
	}
	if node := r.URL.Query().Get("node"); node != "" {
		must = append(must, store.Term{Field: "hostname", Value: node})
	}
	switch len(must) {
	case 0:
		return store.MatchAll{}
	case 1:
		return must[0]
	default:
		return store.Bool{Must: must}
	}
}

func (d *Dashboard) handleCategories(w http.ResponseWriter, r *http.Request) {
	dashJSON(w, d.Store.Terms(store.MatchAll{}, "category", 0))
}

func (d *Dashboard) handleFrequency(w http.ResponseWriter, r *http.Request) {
	interval := time.Minute
	if s := r.URL.Query().Get("interval"); s != "" {
		var err error
		interval, err = time.ParseDuration(s)
		if err != nil {
			http.Error(w, "bad interval: "+err.Error(), http.StatusBadRequest)
			return
		}
		// "-1m" and "0s" parse fine but would poison the histogram
		// bucketing (division by a non-positive bucket width).
		if interval <= 0 {
			http.Error(w, "bad interval: must be positive", http.StatusBadRequest)
			return
		}
	}
	factor := 3.0
	if s := r.URL.Query().Get("factor"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			http.Error(w, "bad factor", http.StatusBadRequest)
			return
		}
		factor = f
	}
	minCount := 10
	if s := r.URL.Query().Get("min"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad min", http.StatusBadRequest)
			return
		}
		minCount = n
	}
	dashJSON(w, Frequency(d.Store, queryFor(r), interval, factor, minCount))
}

func (d *Dashboard) handlePositional(w http.ResponseWriter, r *http.Request) {
	reports := Positional(d.Store, queryFor(r))
	dashJSON(w, BusiestRacks(reports, 0))
}

func (d *Dashboard) handlePerArch(w http.ResponseWriter, r *http.Request) {
	arch := r.URL.Query().Get("arch")
	match := r.URL.Query().Get("match")
	if arch == "" || match == "" {
		http.Error(w, "arch and match required", http.StatusBadRequest)
		return
	}
	total := 0
	if d.Archs != nil {
		if n, ok := d.Archs(arch); ok {
			total = n
		}
	}
	dashJSON(w, PerArch(d.Store, store.Match{Text: match}, arch, total, 0))
}

// handleCorrelate pairs events matching ?a= (match text or a:category)
// with temporally-close events matching ?b=, within ?window (default 5m).
func (d *Dashboard) handleCorrelate(w http.ResponseWriter, r *http.Request) {
	parse := func(param string) (store.Query, bool) {
		v := r.URL.Query().Get(param)
		if v == "" {
			return nil, false
		}
		if cat, ok := strings.CutPrefix(v, "category:"); ok {
			return store.Term{Field: "category", Value: cat}, true
		}
		return store.Match{Text: v}, true
	}
	qa, okA := parse("a")
	qb, okB := parse("b")
	if !okA || !okB {
		http.Error(w, "a and b required (text or category:<name>)", http.StatusBadRequest)
		return
	}
	window := 5 * time.Minute
	if s := r.URL.Query().Get("window"); s != "" {
		var err error
		window, err = time.ParseDuration(s)
		if err != nil {
			http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
			return
		}
		if window <= 0 {
			http.Error(w, "bad window: must be positive", http.StatusBadRequest)
			return
		}
	}
	limit := 20
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	dashJSON(w, Correlate(d.Store, qa, qb, window, limit))
}

func (d *Dashboard) handleAlertsConfig(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Category   string `json:"category"`
		Actionable bool   `json:"actionable"`
	}
	var rows []row
	for _, c := range taxonomy.All() {
		rows = append(rows, row{Category: string(c), Actionable: taxonomy.Actionable(c)})
	}
	dashJSON(w, rows)
}
