package monitor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

var t0 = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func indexEvent(st *store.Store, offset time.Duration, host, rack, arch, app string, cat taxonomy.Category, body string) {
	st.Index(store.Doc{
		Time: t0.Add(offset),
		Fields: store.F(
			"hostname", host, "rack", rack, "arch", arch, "app", app,
			"category", string(cat),
		),
		Body: body,
	})
}

func TestDetectSurges(t *testing.T) {
	buckets := []store.HistogramBucket{
		{Start: t0, Count: 5},
		{Start: t0.Add(time.Minute), Count: 4},
		{Start: t0.Add(2 * time.Minute), Count: 100}, // the door was left open
		{Start: t0.Add(3 * time.Minute), Count: 6},
	}
	surges := DetectSurges(buckets, 3, 10)
	if len(surges) != 1 {
		t.Fatalf("surges = %d, want 1", len(surges))
	}
	if !surges[0].Start.Equal(t0.Add(2*time.Minute)) || surges[0].Count != 100 {
		t.Errorf("surge = %+v", surges[0])
	}
	if surges[0].Factor < 10 {
		t.Errorf("factor = %v", surges[0].Factor)
	}
}

func TestDetectSurgesQuietStream(t *testing.T) {
	buckets := []store.HistogramBucket{
		{Start: t0, Count: 5}, {Start: t0.Add(time.Minute), Count: 6},
		{Start: t0.Add(2 * time.Minute), Count: 5},
	}
	if got := DetectSurges(buckets, 3, 10); len(got) != 0 {
		t.Errorf("quiet stream produced surges: %+v", got)
	}
	if got := DetectSurges(nil, 3, 10); got != nil {
		t.Error("empty buckets should give nil")
	}
}

func TestFrequencyReport(t *testing.T) {
	st := store.New(2)
	// Background chatter from several nodes.
	for i := 0; i < 10; i++ {
		indexEvent(st, time.Duration(i)*time.Minute, fmt.Sprintf("cn%d", i%3), "r0",
			"x86_64-dell", "kernel", taxonomy.Unimportant, "routine chatter")
	}
	// A thermal burst from cn7 in minute 4.
	for i := 0; i < 50; i++ {
		indexEvent(st, 4*time.Minute+time.Duration(i)*time.Second, "cn7", "r1",
			"x86_64-dell", "ipmiseld", taxonomy.ThermalIssue, "temperature above threshold")
	}
	rep := Frequency(st, store.MatchAll{}, time.Minute, 3, 10)
	if len(rep.Surges) != 1 {
		t.Fatalf("surges = %+v", rep.Surges)
	}
	if len(rep.TopNodes) == 0 || rep.TopNodes[0].Value != "cn7" {
		t.Errorf("top nodes = %+v", rep.TopNodes)
	}
	if len(rep.TopApps) == 0 || rep.TopApps[0].Value != "ipmiseld" {
		t.Errorf("top apps = %+v", rep.TopApps)
	}
}

func TestPositional(t *testing.T) {
	st := store.New(2)
	// Rack r2 is cooking: thermal events on three nodes.
	for i, host := range []string{"cn20", "cn21", "cn22"} {
		for j := 0; j < 5; j++ {
			indexEvent(st, time.Duration(i*5+j)*time.Second, host, "r2",
				"aarch64-cavium", "kernel", taxonomy.ThermalIssue, "thermal zone throttled")
		}
	}
	indexEvent(st, time.Minute, "cn01", "r0", "x86_64-dell", "sshd",
		taxonomy.SSHConnection, "connection closed")
	reports := Positional(st, store.MatchAll{})
	if len(reports) != 2 {
		t.Fatalf("racks = %d", len(reports))
	}
	top := BusiestRacks(reports, 1)[0]
	if top.Rack != "r2" || top.Total != 15 || top.NodesReporting != 3 {
		t.Errorf("top rack = %+v", top)
	}
	if top.ByCategory[string(taxonomy.ThermalIssue)] != 15 {
		t.Errorf("by category = %v", top.ByCategory)
	}
}

func TestPerArchFalseIndication(t *testing.T) {
	st := store.New(2)
	// Every cavium node reports the identical bogus fan reading (§4.5.3's
	// IPMI example) — likely firmware, not hardware.
	for i := 0; i < 8; i++ {
		indexEvent(st, time.Duration(i)*time.Second, fmt.Sprintf("cn%d", i), "r1",
			"aarch64-cavium", "ipmiseld", taxonomy.HardwareIssue, "Fan 3 reading absent")
	}
	v := PerArch(st, store.Match{Text: "Fan 3 reading absent"}, "aarch64-cavium", 8, 0.8)
	if !v.LikelyFalseIndication || v.NodesReporting != 8 {
		t.Errorf("verdict = %+v", v)
	}
	// One node only: a real anomaly.
	st2 := store.New(2)
	indexEvent(st2, 0, "cn3", "r1", "aarch64-cavium", "ipmiseld",
		taxonomy.HardwareIssue, "Fan 3 reading absent")
	v2 := PerArch(st2, store.Match{Text: "Fan 3 reading absent"}, "aarch64-cavium", 8, 0.8)
	if v2.LikelyFalseIndication || v2.NodesReporting != 1 {
		t.Errorf("verdict = %+v", v2)
	}
}

func TestPerArchDefaults(t *testing.T) {
	st := store.New(1)
	v := PerArch(st, store.MatchAll{}, "x86_64-dell", 0, 0)
	if v.LikelyFalseIndication {
		t.Error("zero-node architecture cannot be a false indication")
	}
}

type recordingNotifier struct {
	mu     sync.Mutex
	alerts []Alert
}

func (r *recordingNotifier) Notify(a Alert) {
	r.mu.Lock()
	r.alerts = append(r.alerts, a)
	r.mu.Unlock()
}

func TestAlertManagerActionableOnly(t *testing.T) {
	rec := &recordingNotifier{}
	am := &AlertManager{Notifier: rec}
	if am.Consider(taxonomy.Unimportant, "cn1", "noise", t0) {
		t.Error("Unimportant must not alert")
	}
	if !am.Consider(taxonomy.ThermalIssue, "cn1", "hot", t0) {
		t.Error("Thermal should alert")
	}
	if len(rec.alerts) != 1 || rec.alerts[0].Category != taxonomy.ThermalIssue {
		t.Errorf("alerts = %+v", rec.alerts)
	}
}

func TestAlertManagerCooldown(t *testing.T) {
	rec := &recordingNotifier{}
	am := &AlertManager{Notifier: rec, Cooldown: time.Minute}
	am.Consider(taxonomy.MemoryIssue, "cn1", "a", t0)
	am.Consider(taxonomy.MemoryIssue, "cn2", "b", t0.Add(10*time.Second)) // muted
	am.Consider(taxonomy.MemoryIssue, "cn3", "c", t0.Add(2*time.Minute))  // sent
	am.Consider(taxonomy.USBDevice, "cn4", "d", t0.Add(11*time.Second))   // other category unaffected
	sent, muted := am.Counts()
	if sent != 3 || muted != 1 {
		t.Errorf("sent=%d muted=%d", sent, muted)
	}
}

func TestAlertManagerEnabledSet(t *testing.T) {
	rec := &recordingNotifier{}
	am := &AlertManager{
		Notifier: rec,
		Enabled:  map[taxonomy.Category]bool{taxonomy.IntrusionDetection: true},
	}
	if am.Consider(taxonomy.ThermalIssue, "cn1", "hot", t0) {
		t.Error("disabled category alerted")
	}
	if !am.Consider(taxonomy.IntrusionDetection, "cn1", "root login", t0) {
		t.Error("enabled category did not alert")
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{Category: taxonomy.ThermalIssue, Node: "cn7", Text: "hot", Time: t0}
	s := a.String()
	if s == "" || s[0] != '[' {
		t.Errorf("String = %q", s)
	}
}

func TestCategoryQuery(t *testing.T) {
	st := store.New(1)
	indexEvent(st, 0, "cn1", "r0", "a", "kernel", taxonomy.ThermalIssue, "hot")
	indexEvent(st, time.Second, "cn1", "r0", "a", "kernel", taxonomy.Unimportant, "meh")
	if got := st.CountQuery(CategoryQuery(taxonomy.ThermalIssue)); got != 1 {
		t.Errorf("category query hits = %d", got)
	}
}
