package monitor

import (
	"testing"
	"time"

	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

func TestCorrelateBadgeToUSB(t *testing.T) {
	st := store.New(2)
	// Badge access events from the door controller.
	indexEvent(st, 0, "door1", "r0", "-", "badge", taxonomy.Unimportant,
		"badge access granted operator 42")
	indexEvent(st, 30*time.Minute, "door1", "r0", "-", "badge", taxonomy.Unimportant,
		"badge access granted operator 17")
	// A USB attach 40 seconds after the first badge event.
	indexEvent(st, 40*time.Second, "cn07", "r0", "-", "kernel", taxonomy.USBDevice,
		"usb 1-1: new high-speed USB device number 5")
	// Unrelated USB attach hours later.
	indexEvent(st, 5*time.Hour, "cn99", "r3", "-", "kernel", taxonomy.USBDevice,
		"usb 2-1: new high-speed USB device number 9")

	pairs := Correlate(st,
		store.Term{Field: "app", Value: "badge"},
		CategoryQuery(taxonomy.USBDevice),
		2*time.Minute, 0)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	p := pairs[0]
	if p.A.Fields.Value("app") != "badge" || p.B.Fields.Value("hostname") != "cn07" {
		t.Errorf("pair = %+v", p)
	}
	if p.Gap != 40*time.Second {
		t.Errorf("gap = %v", p.Gap)
	}
}

func TestCorrelateNegativeGapAndOrdering(t *testing.T) {
	st := store.New(1)
	// B precedes A by 10s; another B follows A by 60s: nearest wins.
	indexEvent(st, 10*time.Second, "b1", "r0", "-", "evB", taxonomy.Unimportant, "b event one")
	indexEvent(st, 20*time.Second, "a1", "r0", "-", "evA", taxonomy.Unimportant, "a event")
	indexEvent(st, 80*time.Second, "b2", "r0", "-", "evB", taxonomy.Unimportant, "b event two")

	pairs := Correlate(st,
		store.Term{Field: "app", Value: "evA"},
		store.Term{Field: "app", Value: "evB"},
		5*time.Minute, 0)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0].B.Fields.Value("hostname") != "b1" || pairs[0].Gap != -10*time.Second {
		t.Errorf("nearest-B selection wrong: %+v", pairs[0])
	}
}

func TestCorrelateWindowExcludes(t *testing.T) {
	st := store.New(1)
	indexEvent(st, 0, "a1", "r0", "-", "evA", taxonomy.Unimportant, "a event")
	indexEvent(st, time.Hour, "b1", "r0", "-", "evB", taxonomy.Unimportant, "b event")
	pairs := Correlate(st,
		store.Term{Field: "app", Value: "evA"},
		store.Term{Field: "app", Value: "evB"},
		time.Minute, 0)
	if len(pairs) != 0 {
		t.Errorf("out-of-window pair returned: %+v", pairs)
	}
	// Empty sides return nil.
	if Correlate(st, store.Term{Field: "app", Value: "absent"},
		store.Term{Field: "app", Value: "evB"}, time.Minute, 0) != nil {
		t.Error("empty A side should give nil")
	}
}

func TestCorrelateLimitAndSort(t *testing.T) {
	st := store.New(1)
	// Three A events with B gaps of 30s, 10s, 20s.
	gaps := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, g := range gaps {
		base := time.Duration(i) * time.Hour
		indexEvent(st, base, "a", "r0", "-", "evA", taxonomy.Unimportant, "a event")
		indexEvent(st, base+g, "b", "r0", "-", "evB", taxonomy.Unimportant, "b event")
	}
	pairs := Correlate(st,
		store.Term{Field: "app", Value: "evA"},
		store.Term{Field: "app", Value: "evB"},
		time.Minute, 2)
	if len(pairs) != 2 {
		t.Fatalf("limit ignored: %d", len(pairs))
	}
	if pairs[0].Gap != 10*time.Second || pairs[1].Gap != 20*time.Second {
		t.Errorf("not sorted by |gap|: %v, %v", pairs[0].Gap, pairs[1].Gap)
	}
}
