package llm

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"hetsyslog/internal/taxonomy"
	"hetsyslog/internal/tfidf"
)

// TestTable3Calibration checks that the latency model lands near the
// paper's Table 3 cost points (±20%): Falcon-7b 0.639 s, Falcon-40b
// 2.184 s, bart-large-mnli 0.13359 s.
func TestTable3Calibration(t *testing.T) {
	hw := A100Node()
	prompt := DefaultPrompt().Render("Warning: Socket 2 - CPU 23 throttling")
	promptTokens := CountTokens(prompt)
	const answerTokens = 64 // typical capped answer

	within := func(got time.Duration, wantSec, tol float64) bool {
		g := got.Seconds()
		return g > wantSec*(1-tol) && g < wantSec*(1+tol)
	}

	if got := Falcon7B().InferenceTime(hw, promptTokens, answerTokens); !within(got, 0.639, 0.20) {
		t.Errorf("Falcon-7b inference = %v, paper 0.639s", got)
	}
	if got := Falcon40B().InferenceTime(hw, promptTokens, answerTokens); !within(got, 2.184, 0.20) {
		t.Errorf("Falcon-40b inference = %v, paper 2.184s", got)
	}
	if got := BartLargeMNLI().ZeroShotTime(hw, CountTokens("Warning: Socket 2 - CPU 23 throttling"), 8); !within(got, 0.13359, 0.25) {
		t.Errorf("bart zero-shot = %v, paper 0.13359s", got)
	}
}

func TestLatencyOrdering(t *testing.T) {
	hw := A100Node()
	f7 := Falcon7B().InferenceTime(hw, 200, 64)
	f40 := Falcon40B().InferenceTime(hw, 200, 64)
	bart := BartLargeMNLI().ZeroShotTime(hw, 25, 8)
	if !(bart < f7 && f7 < f40) {
		t.Errorf("cost ordering wrong: bart=%v f7=%v f40=%v", bart, f7, f40)
	}
	// Table 3 shape: 40b roughly 3-4x the 7b cost.
	ratio := f40.Seconds() / f7.Seconds()
	if ratio < 2.5 || ratio > 4.5 {
		t.Errorf("40b/7b ratio = %.2f, want ~3.4", ratio)
	}
}

func TestMessagesPerHour(t *testing.T) {
	if got := MessagesPerHour(639 * time.Millisecond); got < 5500 || got > 5700 {
		t.Errorf("msgs/hour at 0.639s = %d, paper says 5633", got)
	}
	if MessagesPerHour(0) != 0 {
		t.Error("zero latency should give zero throughput")
	}
}

func TestCountTokens(t *testing.T) {
	if got := CountTokens(""); got != 0 {
		t.Errorf("empty = %d", got)
	}
	if got := CountTokens("one two three"); got != 4 {
		t.Errorf("3 words = %d tokens, want 4 (4/3 rule)", got)
	}
}

func TestDecodeDominatesForLongOutputs(t *testing.T) {
	m := Falcon7B()
	hw := A100Node()
	short := m.InferenceTime(hw, 200, 8)
	long := m.InferenceTime(hw, 200, 256)
	if long < 10*short/2 {
		t.Errorf("generation length should dominate cost: short=%v long=%v", short, long)
	}
}

func TestPromptRenderContainsEverything(t *testing.T) {
	p := DefaultPrompt()
	text := p.Render("EDAC MC0: 5 CE memory read error")
	for _, want := range []string{
		"Thermal Issue", "Unimportant", "common words:", "temperature",
		"Example:", "Warning: Socket 2", "EDAC MC0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestParseResponse(t *testing.T) {
	p := DefaultPrompt()
	cat, _, ok := p.ParseResponse(`"Thermal Issue". The message indicates overheating.`)
	if !ok || cat != taxonomy.ThermalIssue {
		t.Errorf("parse = %q, %v", cat, ok)
	}
	// Invented category.
	_, invented, ok := p.ParseResponse(`"Cooling Failure"`)
	if ok || invented != "Cooling Failure" {
		t.Errorf("invented parse = %q, ok=%v", invented, ok)
	}
	// Unquoted novel single-line answer.
	_, invented, ok = p.ParseResponse("Power Problem")
	if ok || invented != "Power Problem" {
		t.Errorf("unquoted parse = %q ok=%v", invented, ok)
	}
	// Category mentioned on a later line must not count.
	_, _, ok = p.ParseResponse("something else\nThermal Issue")
	if ok {
		t.Error("category on later line should not parse")
	}
}

func TestGenerativeClassifiesObviousMessages(t *testing.T) {
	g := NewGenerative(Falcon40B(), A100Node(), FailureModes{}, 1)
	g.MaxNewTokens = 64
	p := DefaultPrompt()
	cases := map[string]taxonomy.Category{
		"CPU 3 temperature above threshold, cpu clock throttled":       taxonomy.ThermalIssue,
		"error: Node cn101 has low real_memory size (190000 < 256000)": taxonomy.MemoryIssue,
		"Connection closed by 10.0.0.1 port 22 [preauth]":              taxonomy.SSHConnection,
		"usb 1-1: new high-speed USB device number 4 using xhci_hcd":   taxonomy.USBDevice,
		"slurmd version 22.05.3 differs, please update slurm on node":  taxonomy.SlurmIssue,
		"New session 17 of user root started on seat0 after boot":      taxonomy.IntrusionDetection,
	}
	for msg, want := range cases {
		res := g.Classify(msg, p)
		if !res.ParseOK || res.Category != want {
			t.Errorf("Classify(%q) = %q (ok=%v), want %q", msg, res.Category, res.ParseOK, want)
		}
		if res.Latency <= 0 || res.PromptTokens == 0 {
			t.Errorf("missing cost accounting: %+v", res)
		}
	}
}

func TestGenerativeInventedCategories(t *testing.T) {
	g := NewGenerative(Falcon7B(), A100Node(), FailureModes{InventCategory: 1}, 2)
	p := DefaultPrompt()
	res := g.Classify("CPU 3 temperature above threshold", p)
	if res.ParseOK {
		t.Fatal("forced invention still parsed as valid")
	}
	if res.Invented == "" {
		t.Fatal("invented label missing")
	}
}

func TestGenerativeExcessiveGenerationAndCap(t *testing.T) {
	failures := FailureModes{ExcessJustification: 1, RolePlay: 1}
	// Uncapped: long output.
	unc := NewGenerative(Falcon7B(), A100Node(), failures, 3)
	p := DefaultPrompt()
	resU := unc.Classify("CPU 3 temperature above threshold", p)
	if resU.NewTokens < 60 {
		t.Fatalf("uncapped output only %d tokens", resU.NewTokens)
	}
	if !strings.Contains(resU.RawOutput, "system administrator") &&
		!strings.Contains(resU.RawOutput, "System administrator") {
		t.Error("role-play failure mode missing from output")
	}
	// Capped: the paper's mitigation.
	capped := NewGenerative(Falcon7B(), A100Node(), failures, 3)
	capped.MaxNewTokens = 24
	resC := capped.Classify("CPU 3 temperature above threshold", p)
	if !resC.Truncated || resC.NewTokens > 24 {
		t.Fatalf("cap not applied: %+v", resC)
	}
	if resC.Latency >= resU.Latency {
		t.Error("token cap should reduce cost")
	}
}

func TestGenerativeDeterministicPerSeed(t *testing.T) {
	p := DefaultPrompt()
	a := NewGenerative(Falcon7B(), A100Node(), Falcon7BFailures(), 9)
	b := NewGenerative(Falcon7B(), A100Node(), Falcon7BFailures(), 9)
	for i := 0; i < 20; i++ {
		ra := a.Classify("Connection closed by 10.0.0.1 port 22 [preauth]", p)
		rb := b.Classify("Connection closed by 10.0.0.1 port 22 [preauth]", p)
		if ra.RawOutput != rb.RawOutput {
			t.Fatal("same seed should reproduce outputs")
		}
	}
}

func TestExplainFigure1Style(t *testing.T) {
	g := NewGenerative(Falcon40B(), A100Node(), FailureModes{}, 4)
	out := g.Explain("Warning: Socket 2 - CPU 23 throttling", DefaultPrompt())
	if !strings.Contains(out, "Thermal Issue") {
		t.Errorf("explanation lacks category: %s", out)
	}
	if len(strings.Fields(out)) < 20 {
		t.Errorf("explanation too short: %s", out)
	}
}

func TestZeroShotAlwaysValidLabel(t *testing.T) {
	z := NewZeroShot()
	for _, msg := range []string{
		"CPU 3 temperature above threshold, cpu clock throttled",
		"total gibberish xyzzy frobnicate",
		"",
	} {
		cat, lat := z.Top(msg)
		if !taxonomy.Valid(cat) {
			t.Errorf("Top(%q) = %q (invalid)", msg, cat)
		}
		if lat <= 0 {
			t.Error("zero latency")
		}
	}
}

func TestZeroShotEasyCases(t *testing.T) {
	z := NewZeroShot()
	cases := map[string]taxonomy.Category{
		"CPU 3 temperature above threshold, thermal sensor throttled": taxonomy.ThermalIssue,
		"usb 1-1: new USB device found, hub port 3":                   taxonomy.USBDevice,
		"slurmd version mismatch, please update slurm":                taxonomy.SlurmIssue,
	}
	for msg, want := range cases {
		got, _ := z.Top(msg)
		if got != want {
			scores, _ := z.Classify(msg)
			t.Errorf("Top(%q) = %q, want %q (scores %v)", msg, got, want, scores[:3])
		}
	}
}

func TestZeroShotScoresSorted(t *testing.T) {
	z := NewZeroShot()
	scores, _ := z.Classify("memory error on DIMM_A3")
	for i := 1; i < len(scores); i++ {
		if scores[i].Value > scores[i-1].Value {
			t.Fatal("scores not sorted descending")
		}
	}
	if len(scores) != len(taxonomy.All()) {
		t.Errorf("scores cover %d labels", len(scores))
	}
}

func TestNgramGenerates(t *testing.T) {
	lm := TrainNgram([]string{"the quick brown fox jumps over the lazy dog"})
	rng := rand.New(rand.NewSource(1))
	out := lm.Generate(rng, "the quick", 5)
	if !strings.HasPrefix(out, "brown") {
		t.Errorf("trigram continuation = %q", out)
	}
	// Empty model yields empty output.
	empty := TrainNgram(nil)
	if got := empty.Generate(rng, "anything", 5); got != "" {
		t.Errorf("empty model generated %q", got)
	}
}

func BenchmarkGenerativeClassify(b *testing.B) {
	g := NewGenerative(Falcon7B(), A100Node(), Falcon7BFailures(), 1)
	g.MaxNewTokens = 64
	p := DefaultPrompt()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Classify("CPU 3 temperature above threshold, cpu clock throttled", p)
	}
}

func BenchmarkZeroShotClassify(b *testing.B) {
	z := NewZeroShot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Top("CPU 3 temperature above threshold, cpu clock throttled")
	}
}

func TestHintsFromTopTerms(t *testing.T) {
	top := map[string][]tfidf.TermScore{
		"Thermal Issue":  {{Term: "temperature", Score: 9}, {Term: "throttle", Score: 8}},
		"Not A Category": {{Term: "ignored", Score: 1}},
	}
	hints := HintsFromTopTerms(top)
	if got := hints[taxonomy.ThermalIssue]; len(got) != 2 || got[0] != "temperature" {
		t.Errorf("hints = %v", got)
	}
	if len(hints) != 1 {
		t.Errorf("unknown category not ignored: %v", hints)
	}
	// A prompt built from fitted hints renders them.
	p := DefaultPrompt()
	p.Hints = hints
	if !strings.Contains(p.Render("x"), "temperature, throttle") {
		t.Error("fitted hints missing from prompt")
	}
}

func TestLlama270BCostliest(t *testing.T) {
	hw := A100Node()
	l70 := Llama270B().InferenceTime(hw, 200, 64)
	f40 := Falcon40B().InferenceTime(hw, 200, 64)
	if l70 <= f40 {
		t.Errorf("llama2-70b (%v) should cost more than falcon-40b (%v)", l70, f40)
	}
	// 70B/40B weight ratio bounds the decode-cost ratio loosely.
	ratio := l70.Seconds() / f40.Seconds()
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("70b/40b cost ratio = %.2f", ratio)
	}
}
