package llm

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"hetsyslog/internal/taxonomy"
	"hetsyslog/internal/textproc"
)

// FailureModes configures how often the simulator reproduces each
// misbehaviour the paper documents for Falcon-7b/40b (§5.2). All values
// are probabilities in [0,1].
type FailureModes struct {
	// InventCategory answers with a plausible but undefined category
	// ("generated classification").
	InventCategory float64
	// ExcessJustification appends an unsolicited explanation paragraph.
	ExcessJustification float64
	// RolePlay continues with a fabricated system-administrator dialogue
	// and a new artificial syslog message (the paper's most striking
	// failure).
	RolePlay float64
	// Misclassify flips the answer to the second-best category (base
	// error rate; larger models should set this lower).
	Misclassify float64
}

// Falcon7BFailures returns the failure profile observed for the smaller
// model: frequent alignment problems.
func Falcon7BFailures() FailureModes {
	return FailureModes{InventCategory: 0.18, ExcessJustification: 0.55, RolePlay: 0.08, Misclassify: 0.30}
}

// Falcon40BFailures returns the 40b profile: better accuracy, same
// alignment problems ("this issue persisted on both Falcon-40b and
// Falcon-7b").
func Falcon40BFailures() FailureModes {
	return FailureModes{InventCategory: 0.12, ExcessJustification: 0.50, RolePlay: 0.05, Misclassify: 0.18}
}

// Result is one simulated generative classification.
type Result struct {
	// RawOutput is the simulated model text (after any token cap).
	RawOutput string
	// Category is the parsed taxonomy label; valid only when ParseOK.
	Category taxonomy.Category
	// ParseOK is false when the model invented a category.
	ParseOK bool
	// Invented holds the out-of-taxonomy label when ParseOK is false.
	Invented string
	// Truncated reports that MaxNewTokens cut the output.
	Truncated bool
	// PromptTokens and NewTokens are the simulated token counts.
	PromptTokens int
	NewTokens    int
	// Latency is the modelled inference time on the configured hardware.
	Latency time.Duration
}

// Generative simulates prompting a generative LLM for classification. It
// is safe for concurrent use.
type Generative struct {
	Spec     ModelSpec
	HW       Hardware
	Failures FailureModes
	// MaxNewTokens caps generation; 0 means uncapped (reproducing the
	// paper's initial runaway-generation runs). The paper resolved the
	// excessive-generation problem "by placing a limit on the number of
	// new tokens".
	MaxNewTokens int
	// Seed makes runs reproducible.
	Seed int64

	mu   sync.Mutex
	rng  *rand.Rand
	prep *textproc.Preprocessor
}

// NewGenerative builds a simulator for the given model profile.
func NewGenerative(spec ModelSpec, hw Hardware, failures FailureModes, seed int64) *Generative {
	return &Generative{
		Spec: spec, HW: hw, Failures: failures, Seed: seed,
		rng:  rand.New(rand.NewSource(seed + 1009)),
		prep: textproc.NewPreprocessor(),
	}
}

// inventedCategories is the pool of plausible-but-undefined labels the
// simulator invents, echoing the paper's observation that invented
// categories "make sense in the context of the message provided".
var inventedCategories = []string{
	"Power Issue", "Network Issue", "Cooling Failure", "Authentication Event",
	"Disk Failure", "Firmware Problem", "Unimportant Noise", "Performance Degradation",
}

// Classify runs one simulated generative classification of msg using the
// prompt p.
func (g *Generative) Classify(msg string, p *Prompt) Result {
	g.mu.Lock()
	defer g.mu.Unlock()

	promptText := p.Render(msg)
	promptTokens := CountTokens(promptText)

	// "Understanding": score categories by preprocessed keyword evidence
	// from the prompt hints — the model can only be as aligned as the
	// hints allow, which is exactly how the paper encoded TF-IDF
	// knowledge into prompts.
	best, second := g.scoreCategories(msg, p)

	answer := best
	if g.rng.Float64() < g.Failures.Misclassify && second != "" {
		answer = second
	}

	var b strings.Builder
	if g.rng.Float64() < g.Failures.InventCategory {
		inv := inventedCategories[g.rng.Intn(len(inventedCategories))]
		fmt.Fprintf(&b, "%q", inv)
	} else {
		fmt.Fprintf(&b, "%q", string(answer))
	}

	if g.rng.Float64() < g.Failures.ExcessJustification {
		b.WriteString(". ")
		b.WriteString(defaultLM.Generate(g.rng, "The message indicates", 40+g.rng.Intn(40)))
	}
	if g.rng.Float64() < g.Failures.RolePlay {
		b.WriteString("\n\nNow consider the following scenario. You are a system administrator reviewing logs.\n")
		b.WriteString("Message: \"kernel: node reports synthetic condition on subsystem ")
		fmt.Fprintf(&b, "%d\"\nSystem administrator: ", g.rng.Intn(100))
		b.WriteString(defaultLM.Generate(g.rng, "you should consider", 30+g.rng.Intn(50)))
	}

	raw := b.String()
	newTokens := CountTokens(raw)
	truncated := false
	if g.MaxNewTokens > 0 && newTokens > g.MaxNewTokens {
		raw = truncateTokens(raw, g.MaxNewTokens)
		newTokens = g.MaxNewTokens
		truncated = true
	}

	res := Result{
		RawOutput:    raw,
		Truncated:    truncated,
		PromptTokens: promptTokens,
		NewTokens:    newTokens,
		Latency:      g.Spec.InferenceTime(g.HW, promptTokens, newTokens),
	}
	res.Category, res.Invented, res.ParseOK = p.ParseResponse(raw)
	return res
}

// scoreCategories returns the best and second-best categories by keyword
// evidence.
func (g *Generative) scoreCategories(msg string, p *Prompt) (best, second taxonomy.Category) {
	tokens := g.prep.Process(msg)
	rawTokens := strings.Fields(strings.ToLower(msg))
	scores := make(map[taxonomy.Category]float64, len(p.Categories))
	for _, c := range p.Categories {
		var s float64
		for _, hint := range p.Hints[c] {
			h := strings.ToLower(hint)
			for _, t := range tokens {
				if t == h {
					s += 1
				}
			}
			for _, t := range rawTokens {
				if strings.Trim(t, ".,:;()[]\"'") == h {
					s += 0.5
				}
			}
		}
		scores[c] = s
	}
	var b1, b2 float64 = -1, -1
	for _, c := range p.Categories {
		s := scores[c]
		switch {
		case s > b1:
			b2, second = b1, best
			b1, best = s, c
		case s > b2:
			b2, second = s, c
		}
	}
	if b1 <= 0 {
		// No evidence at all: the model guesses noise.
		best = taxonomy.Unimportant
	}
	return best, second
}

// truncateTokens cuts text to approximately n tokens (word-boundary).
func truncateTokens(text string, n int) string {
	words := (n*3 + 3) / 4
	fields := strings.Fields(text)
	if len(fields) <= words {
		return text
	}
	return strings.Join(fields[:words], " ")
}

// Explain produces a Figure 1 style answer: classification plus a
// human-readable explanation paragraph, regardless of failure settings.
func (g *Generative) Explain(msg string, p *Prompt) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	best, _ := g.scoreCategories(msg, p)
	expl := defaultLM.Generate(g.rng, "The message indicates", 45)
	return fmt.Sprintf("The message %q would fall under the category of %q. %s",
		msg, string(best), expl)
}
