package llm

import (
	"sort"
	"strings"
	"time"

	"hetsyslog/internal/taxonomy"
	"hetsyslog/internal/textproc"
)

// ZeroShot simulates zero-shot text classification à la
// facebook/bart-large-mnli (§5.2): the model receives only the message and
// the category *names* — no keyword hints, no example — and rates
// entailment of "This text is about <category>." per label. This fixes the
// generated-classification problem (output is always a valid label) but,
// as the paper notes, cannot exploit TF-IDF category knowledge, so
// accuracy is driven purely by how evocative the label names are.
type ZeroShot struct {
	Spec       ModelSpec
	HW         Hardware
	Categories []taxonomy.Category

	prep *textproc.Preprocessor
	// labelTokens caches the lemmatized tokens of each label name plus a
	// small amount of world knowledge per word (an MNLI model knows that
	// "thermal" relates to temperature).
	labelTokens map[taxonomy.Category]map[string]float64
}

// worldKnowledge maps label words to related message words, standing in
// for the semantic generalization a real MNLI model brings.
var worldKnowledge = map[string][]string{
	"thermal":    {"temperature", "throttle", "overheat", "degree", "sensor", "cooling", "heat", "cpu", "processor"},
	"memory":     {"dimm", "oom", "real_memory", "ram", "edac", "size", "allocation"},
	"hardware":   {"fan", "power", "supply", "clock", "sensor", "board", "bmc", "psu", "firmware"},
	"intrusion":  {"root", "login", "auth", "session", "sudoers", "audit", "password", "su"},
	"detection":  {"audit", "alert", "failure"},
	"ssh":        {"sshd", "preauth", "disconnect", "port", "connection"},
	"connection": {"connection", "port", "close", "disconnect", "reset", "timeout"},
	"slurm":      {"slurmd", "slurmctld", "job", "partition", "drain", "version"},
	"usb":        {"usb", "hub", "device", "xhci_hcd", "idvendor"},
	"device":     {"device", "hub", "number"},
	"issue":      {"error", "fail", "warning", "critical"},
	"issues":     {"error", "fail", "warning", "critical"},
	"unimportant": {"routine", "completed", "nominal", "debug1", "stats", "usec",
		"informational", "report", "probe"},
}

// NewZeroShot builds a zero-shot classifier over the full taxonomy with
// the bart-large-mnli cost profile.
func NewZeroShot() *ZeroShot {
	z := &ZeroShot{
		Spec:       BartLargeMNLI(),
		HW:         A100Node(),
		Categories: taxonomy.All(),
		prep:       textproc.NewPreprocessor(),
	}
	z.buildLabelTokens()
	return z
}

func (z *ZeroShot) buildLabelTokens() {
	z.labelTokens = make(map[taxonomy.Category]map[string]float64, len(z.Categories))
	for _, c := range z.Categories {
		m := make(map[string]float64)
		for _, w := range z.prep.Process(strings.ToLower(string(c))) {
			m[w] += 2 // direct label-word mention is strong evidence
			for _, rel := range worldKnowledge[w] {
				m[z.prep.Lemmatizer.Lemma(rel)] += 1
			}
		}
		// Also index unlemmatized label words.
		for _, w := range strings.FieldsFunc(strings.ToLower(string(c)), func(r rune) bool {
			return r == ' ' || r == '-'
		}) {
			m[w] += 2
			for _, rel := range worldKnowledge[w] {
				m[z.prep.Lemmatizer.Lemma(rel)] += 1
			}
		}
		z.labelTokens[c] = m
	}
}

// Score is one label's entailment score.
type Score struct {
	Category taxonomy.Category
	Value    float64
}

// Classify returns all label scores (descending) and the modelled latency
// of the len(labels) forward passes.
func (z *ZeroShot) Classify(msg string) ([]Score, time.Duration) {
	tokens := z.prep.Process(msg)
	scores := make([]Score, 0, len(z.Categories))
	for _, c := range z.Categories {
		lt := z.labelTokens[c]
		var s float64
		for _, t := range tokens {
			s += lt[t]
		}
		if len(tokens) > 0 {
			s /= float64(len(tokens)) // normalize by message length
		}
		scores = append(scores, Score{Category: c, Value: s})
	}
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].Value != scores[b].Value {
			return scores[a].Value > scores[b].Value
		}
		return scores[a].Category < scores[b].Category
	})
	latency := z.Spec.ZeroShotTime(z.HW, CountTokens(msg), len(z.Categories))
	return scores, latency
}

// Top returns the best label; ties and zero evidence fall back to
// Unimportant, the majority class.
func (z *ZeroShot) Top(msg string) (taxonomy.Category, time.Duration) {
	scores, lat := z.Classify(msg)
	if len(scores) == 0 || scores[0].Value == 0 {
		return taxonomy.Unimportant, lat
	}
	return scores[0].Category, lat
}
