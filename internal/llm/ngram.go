package llm

import (
	"math/rand"
	"strings"
)

// NgramLM is a trigram language model with bigram/unigram backoff, trained
// on an admin-speak corpus. The generative simulator uses it to produce
// the unsolicited free-text the paper observed: justifications,
// explanations and runaway role-play continuations.
type NgramLM struct {
	tri map[[2]string][]string
	bi  map[string][]string
	uni []string
}

// TrainNgram builds a model from sentences (one string per sentence).
func TrainNgram(sentences []string) *NgramLM {
	lm := &NgramLM{
		tri: make(map[[2]string][]string),
		bi:  make(map[string][]string),
	}
	for _, s := range sentences {
		words := strings.Fields(s)
		if len(words) == 0 {
			continue
		}
		lm.uni = append(lm.uni, words...)
		for i := 0; i < len(words); i++ {
			if i+1 < len(words) {
				lm.bi[words[i]] = append(lm.bi[words[i]], words[i+1])
			}
			if i+2 < len(words) {
				key := [2]string{words[i], words[i+1]}
				lm.tri[key] = append(lm.tri[key], words[i+2])
			}
		}
	}
	return lm
}

// Next samples the next word following the context, backing off from
// trigram to bigram to unigram.
func (lm *NgramLM) Next(rng *rand.Rand, w1, w2 string) string {
	if opts := lm.tri[[2]string{w1, w2}]; len(opts) > 0 {
		return opts[rng.Intn(len(opts))]
	}
	if opts := lm.bi[w2]; len(opts) > 0 {
		return opts[rng.Intn(len(opts))]
	}
	if len(lm.uni) > 0 {
		return lm.uni[rng.Intn(len(lm.uni))]
	}
	return ""
}

// Generate produces up to n words continuing from the seed text.
func (lm *NgramLM) Generate(rng *rand.Rand, seed string, n int) string {
	words := strings.Fields(seed)
	w1, w2 := "", ""
	if len(words) >= 2 {
		w1, w2 = words[len(words)-2], words[len(words)-1]
	} else if len(words) == 1 {
		w2 = words[0]
	}
	var out []string
	for i := 0; i < n; i++ {
		next := lm.Next(rng, w1, w2)
		if next == "" {
			break
		}
		out = append(out, next)
		w1, w2 = w2, next
	}
	return strings.Join(out, " ")
}

// adminCorpus is the training text for the explanation generator: the
// register of Figure 1's model output and of system-administration prose.
var adminCorpus = []string{
	"The message indicates that the CPU is experiencing thermal throttling which means that it is being slowed down to prevent overheating .",
	"Throttling is a technique used to regulate the temperature of a computer's CPU by reducing its power consumption which can help prevent overheating and damage to the system .",
	"This message would fall under the category of thermal because it describes a temperature condition on the processor .",
	"The system administrator should investigate the cooling system and verify that the fans are operating at the expected speed .",
	"A memory error of this kind usually points to a failing DIMM and the node should be drained and scheduled for memory diagnostics .",
	"Repeated connection attempts from an unknown host can indicate a brute force attack and should be reviewed by the security team .",
	"This appears to be routine application output that does not require any administrator action at this time .",
	"The log entry shows a USB device enumeration event which is expected behavior when hardware is attached to the node .",
	"If the condition persists after a reboot the node should be removed from the scheduler and the vendor should be contacted .",
	"Slurm reported a version mismatch and the node daemon should be updated to match the controller version .",
	"The power supply failure reduces redundancy and the failed unit should be replaced during the next maintenance window .",
	"Clock synchronization drift can affect distributed workloads and the time service configuration should be checked .",
	"Based on the keywords in the message the most likely category is hardware failure because it mentions a system event .",
	"Please classify the following syslog message into one of the given categories and respond with the category name only .",
	"As a system administrator managing a heterogeneous cluster you should consider the context of the message before acting .",
	"The node has been reporting elevated temperatures since the last firmware update and the airflow in the rack should be verified .",
	"This classification is based on the presence of terms related to authentication sessions for the root user .",
	"No action is required because the message is informational and reflects normal operation of the batch system .",
}

// defaultLM is the shared explanation model.
var defaultLM = TrainNgram(adminCorpus)
