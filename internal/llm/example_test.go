package llm_test

import (
	"fmt"

	"hetsyslog/internal/llm"
)

func ExampleModelSpec_InferenceTime() {
	// Table 3's cost points from the analytic latency model: prompt of
	// ~200 tokens, 64-token capped answer, the paper's 4xA100 node.
	hw := llm.A100Node()
	f7 := llm.Falcon7B().InferenceTime(hw, 200, 64)
	f40 := llm.Falcon40B().InferenceTime(hw, 200, 64)
	fmt.Printf("Falcon-7b within 20%% of paper 0.639s: %v\n", f7.Seconds() > 0.5 && f7.Seconds() < 0.77)
	fmt.Printf("Falcon-40b within 20%% of paper 2.184s: %v\n", f40.Seconds() > 1.75 && f40.Seconds() < 2.62)
	fmt.Println("msgs/hour at 7b rate above 4500:", llm.MessagesPerHour(f7) > 4500)
	// Output:
	// Falcon-7b within 20% of paper 0.639s: true
	// Falcon-40b within 20% of paper 2.184s: true
	// msgs/hour at 7b rate above 4500: true
}

func ExampleGenerative_Classify() {
	// A perfectly aligned simulator (no failure modes) classifying the
	// Figure 1 message.
	g := llm.NewGenerative(llm.Falcon40B(), llm.A100Node(), llm.FailureModes{}, 1)
	g.MaxNewTokens = 64
	res := g.Classify("Warning: Socket 2 - CPU 23 throttling", llm.DefaultPrompt())
	fmt.Println(res.Category, res.ParseOK)
	// Output: Thermal Issue true
}

func ExampleZeroShot_Top() {
	z := llm.NewZeroShot()
	cat, _ := z.Top("usb 1-1: new USB device found, hub port 3")
	fmt.Println(cat)
	// Output: USB-Device
}
