package llm

import (
	"fmt"
	"strings"

	"hetsyslog/internal/taxonomy"
	"hetsyslog/internal/tfidf"
)

// Prompt is the classification prompt structure that worked best in the
// paper (§5.2): an introduction of the problem, the category list, the
// TF-IDF top words per category, the output format, and one worked
// example.
type Prompt struct {
	Categories []taxonomy.Category
	// Hints holds the TF-IDF top tokens per category (Table 1), encoding
	// "information about many syslog messages into a small prompt"
	// (§4.3.1).
	Hints map[taxonomy.Category][]string
	// ExampleMessage/ExampleCategory form the one-shot demonstration.
	ExampleMessage  string
	ExampleCategory taxonomy.Category
}

// DefaultPrompt returns the paper-shaped prompt over the full taxonomy
// with built-in keyword hints (used when no fitted TF-IDF table is
// supplied).
func DefaultPrompt() *Prompt {
	return &Prompt{
		Categories:      taxonomy.All(),
		Hints:           BuiltinHints(),
		ExampleMessage:  "Warning: Socket 2 - CPU 23 throttling",
		ExampleCategory: taxonomy.ThermalIssue,
	}
}

// BuiltinHints returns per-category keyword lists approximating the
// paper's Table 1.
func BuiltinHints() map[taxonomy.Category][]string {
	return map[taxonomy.Category][]string{
		taxonomy.HardwareIssue:      {"timestamp", "sync", "clock", "system", "event", "power", "fan", "supply", "bmc", "redundancy"},
		taxonomy.IntrusionDetection: {"root", "session", "user", "started", "boot", "sudoers", "failures", "audit", "su", "pam_unix"},
		taxonomy.MemoryIssue:        {"size", "real_memory", "low", "cn", "node", "memory", "dimm", "edac", "oom", "killed"},
		taxonomy.SSHConnection:      {"closed", "preauth", "connection", "port", "user", "disconnect", "disconnected", "reset", "timeout"},
		taxonomy.SlurmIssue:         {"version", "update", "slurm", "please", "node", "slurmd", "slurmctld", "drain", "mismatch"},
		taxonomy.ThermalIssue:       {"processor", "throttled", "sensor", "cpu", "temperature", "thermal", "throttling", "overheating", "degrees"},
		taxonomy.USBDevice:          {"usb", "device", "hub", "number", "new", "xhci_hcd", "idvendor", "idproduct", "disconnect"},
		taxonomy.Unimportant:        {"error", "lpi_hbm_nn", "job_argument", "slurm_rpc_node_registration", "usec", "completed", "nominal", "routine", "debug1", "stats"},
	}
}

// Render builds the full prompt text for one message.
func (p *Prompt) Render(msg string) string {
	var b strings.Builder
	b.WriteString("You are monitoring syslog from a heterogeneous test-bed cluster. ")
	b.WriteString("Classify the given syslog message into exactly one of the following categories.\n\n")
	b.WriteString("Categories:\n")
	for _, c := range p.Categories {
		fmt.Fprintf(&b, "- %q", string(c))
		if hints := p.Hints[c]; len(hints) > 0 {
			n := len(hints)
			if n > 5 {
				n = 5
			}
			fmt.Fprintf(&b, " (common words: %s)", strings.Join(hints[:n], ", "))
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nRespond with only the category name in quotes.\n")
	if p.ExampleMessage != "" {
		fmt.Fprintf(&b, "\nExample:\nMessage: %q\nCategory: %q\n", p.ExampleMessage, string(p.ExampleCategory))
	}
	fmt.Fprintf(&b, "\nMessage: %q\nCategory:", msg)
	return b.String()
}

// ParseResponse extracts a category from raw model output. It returns the
// matched category, or ok=false with the invented label when the model
// produced a category outside the taxonomy (the paper's "generated
// classification" failure).
func (p *Prompt) ParseResponse(raw string) (cat taxonomy.Category, invented string, ok bool) {
	text := strings.TrimSpace(raw)
	lower := strings.ToLower(text)
	// Longest-name-first so "Unimportant Noise" style supersets still
	// match their base category... but an exact quoted novel label should
	// be reported as invented. Check known categories anywhere in the
	// first line.
	firstLine := lower
	if i := strings.IndexByte(firstLine, '\n'); i >= 0 {
		firstLine = firstLine[:i]
	}
	for _, c := range p.Categories {
		if strings.Contains(firstLine, strings.ToLower(string(c))) {
			return c, "", true
		}
	}
	// Extract whatever was quoted as the invented label.
	if i := strings.IndexByte(text, '"'); i >= 0 {
		if j := strings.IndexByte(text[i+1:], '"'); j >= 0 {
			return "", text[i+1 : i+1+j], false
		}
	}
	if fl := strings.TrimSpace(strings.SplitN(text, "\n", 2)[0]); fl != "" {
		return "", fl, false
	}
	return "", "", false
}

// HintsFromTopTerms converts a fitted Table 1 (tfidf.ClassTopTerms output,
// keyed by category name) into prompt hints — the paper's mechanism for
// encoding "information about many syslog messages into a small prompt"
// (§4.3.1) with *learned* rather than built-in vocabulary. Unknown
// category names are ignored.
func HintsFromTopTerms(top map[string][]tfidf.TermScore) map[taxonomy.Category][]string {
	out := make(map[taxonomy.Category][]string, len(top))
	for name, terms := range top {
		cat := taxonomy.Category(name)
		if !taxonomy.Valid(cat) {
			continue
		}
		words := make([]string, 0, len(terms))
		for _, ts := range terms {
			words = append(words, ts.Term)
		}
		out[cat] = words
	}
	return out
}
