package llm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"hetsyslog/internal/taxonomy"
)

// Summarizer implements the paper's future-work use-cases for LLMs on a
// test-bed (§7): "summarizing the system status, explanation of groups of
// syslog messages within a given node, generating recommended responses to
// admin emails" — the low-frequency tasks where per-message cost doesn't
// matter. Like the generative classifier, it is a simulator: template +
// n-gram composition with the same analytic latency accounting.
type Summarizer struct {
	Spec ModelSpec
	HW   Hardware
	Seed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewSummarizer builds a summarizer on the given model profile.
func NewSummarizer(spec ModelSpec, hw Hardware, seed int64) *Summarizer {
	return &Summarizer{Spec: spec, HW: hw, Seed: seed, rng: rand.New(rand.NewSource(seed + 31))}
}

// NodeStatus is the classified activity of one node over a window.
type NodeStatus struct {
	Node   string
	Counts map[taxonomy.Category]int
	// Examples holds representative raw messages (optional).
	Examples []string
}

func (ns NodeStatus) total() int {
	n := 0
	for _, c := range ns.Counts {
		n += c
	}
	return n
}

// dominant returns the most frequent actionable category, or Unimportant
// when nothing actionable happened.
func (ns NodeStatus) dominant() taxonomy.Category {
	best, bestN := taxonomy.Unimportant, 0
	for _, c := range taxonomy.All() {
		if !taxonomy.Actionable(c) {
			continue
		}
		if n := ns.Counts[c]; n > bestN {
			best, bestN = c, n
		}
	}
	if bestN == 0 {
		return taxonomy.Unimportant
	}
	return best
}

var categoryAdvice = map[taxonomy.Category]string{
	taxonomy.ThermalIssue:       "verify rack airflow and fan operation; check for cold-aisle containment problems",
	taxonomy.MemoryIssue:        "drain the node and schedule memory diagnostics; a DIMM replacement may be needed",
	taxonomy.HardwareIssue:      "review the BMC event log and schedule a maintenance-window inspection",
	taxonomy.IntrusionDetection: "review authentication logs with the security team and correlate with badge access",
	taxonomy.SSHConnection:      "review connection churn for scanning activity",
	taxonomy.SlurmIssue:         "update the slurm daemon to match the controller version",
	taxonomy.USBDevice:          "confirm the USB attach/detach events correspond to authorized physical access",
}

// SummarizeNode produces a Figure 1 style paragraph describing one node's
// recent log activity (the "explanation of groups of syslog messages
// within a given node" use-case) plus the modelled generation latency.
func (s *Summarizer) SummarizeNode(ns NodeStatus) (string, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var b strings.Builder
	dom := ns.dominant()
	total := ns.total()
	if total == 0 {
		fmt.Fprintf(&b, "Node %s logged no messages in this window and appears idle.", ns.Node)
	} else if dom == taxonomy.Unimportant {
		fmt.Fprintf(&b, "Node %s logged %d messages, all routine chatter; no administrator action is indicated.",
			ns.Node, total)
	} else {
		fmt.Fprintf(&b, "Node %s logged %d messages, dominated by %q (%d occurrences). ",
			ns.Node, total, dom, ns.Counts[dom])
		if advice := categoryAdvice[dom]; advice != "" {
			fmt.Fprintf(&b, "Recommended next step: %s. ", advice)
		}
		b.WriteString(defaultLM.Generate(s.rng, "The system administrator should", 25))
	}
	out := b.String()
	latency := s.Spec.InferenceTime(s.HW, CountTokens(statusPromptText(ns)), CountTokens(out))
	return out, latency
}

// SummarizeSystem rolls up many node statuses into a cluster status
// report, most-troubled nodes first.
func (s *Summarizer) SummarizeSystem(statuses []NodeStatus) (string, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()

	totals := map[taxonomy.Category]int{}
	type hot struct {
		node string
		n    int
		dom  taxonomy.Category
	}
	var hots []hot
	for _, ns := range statuses {
		actionable := 0
		for _, c := range taxonomy.All() {
			totals[c] += ns.Counts[c]
			if taxonomy.Actionable(c) {
				actionable += ns.Counts[c]
			}
		}
		if actionable > 0 {
			hots = append(hots, hot{ns.Node, actionable, ns.dominant()})
		}
	}
	sort.Slice(hots, func(a, b int) bool {
		if hots[a].n != hots[b].n {
			return hots[a].n > hots[b].n
		}
		return hots[a].node < hots[b].node
	})

	var b strings.Builder
	fmt.Fprintf(&b, "Cluster status across %d nodes: ", len(statuses))
	if len(hots) == 0 {
		b.WriteString("no actionable issues; all traffic is routine.")
	} else {
		fmt.Fprintf(&b, "%d node(s) show actionable issues. ", len(hots))
		top := hots
		if len(top) > 3 {
			top = top[:3]
		}
		for _, h := range top {
			fmt.Fprintf(&b, "%s: %d %q messages. ", h.node, h.n, h.dom)
		}
		b.WriteString(defaultLM.Generate(s.rng, "you should consider", 20))
	}
	out := b.String()
	prompt := len(statuses) * 12 // rough: one status line each
	latency := s.Spec.InferenceTime(s.HW, prompt, CountTokens(out))
	return out, latency
}

// DraftReply generates a recommended response to an administrator email
// grounded in the current node statuses (§7's "generating recommended
// responses to admin emails based on system specific information").
func (s *Summarizer) DraftReply(question string, statuses []NodeStatus) (string, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Ground the reply: find a node mentioned in the question.
	var subject *NodeStatus
	qLower := strings.ToLower(question)
	for i := range statuses {
		if strings.Contains(qLower, strings.ToLower(statuses[i].Node)) {
			subject = &statuses[i]
			break
		}
	}
	var b strings.Builder
	b.WriteString("Hi,\n\n")
	if subject != nil {
		dom := subject.dominant()
		if dom == taxonomy.Unimportant {
			fmt.Fprintf(&b, "%s looks healthy: %d log messages in the window, all routine. ",
				subject.Node, subject.total())
		} else {
			fmt.Fprintf(&b, "%s has been reporting %q issues (%d in the window). ",
				subject.Node, dom, subject.Counts[dom])
			if advice := categoryAdvice[dom]; advice != "" {
				fmt.Fprintf(&b, "Suggested action: %s. ", advice)
			}
		}
	} else {
		b.WriteString("Nothing in the recent logs matches a specific node from your question, but here is the overall picture. ")
	}
	b.WriteString(defaultLM.Generate(s.rng, "If the condition persists", 25))
	b.WriteString("\n\nRegards,\nTivan monitoring")
	out := b.String()
	latency := s.Spec.InferenceTime(s.HW,
		CountTokens(question)+len(statuses)*12, CountTokens(out))
	return out, latency
}

func statusPromptText(ns NodeStatus) string {
	var b strings.Builder
	b.WriteString(ns.Node)
	for c, n := range ns.Counts {
		fmt.Fprintf(&b, " %s=%d", c, n)
	}
	for _, e := range ns.Examples {
		b.WriteByte(' ')
		b.WriteString(e)
	}
	return b.String()
}
