package llm

import (
	"strings"
	"testing"

	"hetsyslog/internal/taxonomy"
)

func statuses() []NodeStatus {
	return []NodeStatus{
		{Node: "cn007", Counts: map[taxonomy.Category]int{
			taxonomy.ThermalIssue: 42, taxonomy.Unimportant: 100,
		}},
		{Node: "cn013", Counts: map[taxonomy.Category]int{
			taxonomy.Unimportant: 80,
		}},
		{Node: "cn021", Counts: map[taxonomy.Category]int{
			taxonomy.MemoryIssue: 7, taxonomy.Unimportant: 12,
		}},
	}
}

func TestSummarizeNodeActionable(t *testing.T) {
	s := NewSummarizer(Falcon40B(), A100Node(), 1)
	out, lat := s.SummarizeNode(statuses()[0])
	if !strings.Contains(out, "cn007") || !strings.Contains(out, "Thermal Issue") {
		t.Errorf("summary = %q", out)
	}
	if !strings.Contains(out, "airflow") {
		t.Errorf("summary lacks category advice: %q", out)
	}
	if lat <= 0 {
		t.Error("latency missing")
	}
}

func TestSummarizeNodeQuietAndIdle(t *testing.T) {
	s := NewSummarizer(Falcon40B(), A100Node(), 1)
	quiet, _ := s.SummarizeNode(statuses()[1])
	if !strings.Contains(quiet, "routine") {
		t.Errorf("quiet summary = %q", quiet)
	}
	idle, _ := s.SummarizeNode(NodeStatus{Node: "cn099"})
	if !strings.Contains(idle, "idle") {
		t.Errorf("idle summary = %q", idle)
	}
}

func TestSummarizeSystem(t *testing.T) {
	s := NewSummarizer(Falcon40B(), A100Node(), 1)
	out, lat := s.SummarizeSystem(statuses())
	if !strings.Contains(out, "3 nodes") {
		t.Errorf("system summary = %q", out)
	}
	// Hot nodes first: cn007 (42 actionable) before cn021 (7).
	if strings.Index(out, "cn007") > strings.Index(out, "cn021") {
		t.Errorf("nodes not ordered by severity: %q", out)
	}
	if strings.Contains(out, "cn013") {
		t.Errorf("healthy node listed as hot: %q", out)
	}
	if lat <= 0 {
		t.Error("latency missing")
	}
	// All-quiet cluster.
	quiet, _ := s.SummarizeSystem(statuses()[1:2])
	if !strings.Contains(quiet, "no actionable issues") {
		t.Errorf("quiet cluster summary = %q", quiet)
	}
}

func TestDraftReplyGrounded(t *testing.T) {
	s := NewSummarizer(Falcon40B(), A100Node(), 1)
	out, _ := s.DraftReply("Hey, is cn021 OK? A user says jobs are crashing there.", statuses())
	if !strings.Contains(out, "cn021") || !strings.Contains(out, "Memory Issue") {
		t.Errorf("reply = %q", out)
	}
	if !strings.Contains(out, "memory diagnostics") {
		t.Errorf("reply lacks advice: %q", out)
	}
	// Question about an unknown node falls back gracefully.
	out2, _ := s.DraftReply("what about cn555?", statuses())
	if !strings.Contains(out2, "overall picture") {
		t.Errorf("fallback reply = %q", out2)
	}
	// Healthy node gets a healthy answer.
	out3, _ := s.DraftReply("status of cn013 please", statuses())
	if !strings.Contains(out3, "healthy") {
		t.Errorf("healthy reply = %q", out3)
	}
}

func TestSummarizerDeterministic(t *testing.T) {
	a := NewSummarizer(Falcon7B(), A100Node(), 5)
	b := NewSummarizer(Falcon7B(), A100Node(), 5)
	oa, _ := a.SummarizeNode(statuses()[0])
	ob, _ := b.SummarizeNode(statuses()[0])
	if oa != ob {
		t.Error("same seed should reproduce summaries")
	}
}

func TestSummaryLatencyIsLLMScale(t *testing.T) {
	// The point of §7: these are low-frequency tasks where LLM latency is
	// acceptable. The modelled cost should be in the LLM regime
	// (hundreds of ms), not the classifier regime (µs).
	s := NewSummarizer(Falcon40B(), A100Node(), 1)
	_, lat := s.SummarizeNode(statuses()[0])
	if lat.Seconds() < 0.1 {
		t.Errorf("summary latency %v implausibly cheap for a 40B model", lat)
	}
}
