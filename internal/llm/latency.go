// Package llm simulates the paper's large-language-model experiments
// (§5.2, Table 3, Figure 1) without GPUs. Three pieces substitute for the
// real models (see DESIGN.md §2):
//
//   - an analytic inference-latency model (memory-bandwidth-bound decoding
//     plus per-token framework overhead) parameterized by the published
//     model sizes and the paper's A100 inference node, reproducing the
//     Table 3 cost points;
//   - a generative classifier simulator that answers classification
//     prompts through keyword evidence and *injects the documented failure
//     modes* — invented categories, unsolicited justifications, runaway
//     role-play — unless capped by a max-new-tokens limit (the paper's
//     mitigation);
//   - a zero-shot entailment-style classifier standing in for
//     facebook/bart-large-mnli.
package llm

import "time"

// Hardware describes the inference node.
type Hardware struct {
	Name string
	// HBMBandwidthGBs is per-GPU memory bandwidth in GB/s.
	HBMBandwidthGBs float64
	// GPUs available for tensor parallelism.
	GPUs int
}

// A100Node returns the paper's inference box: four A100 SXM4 40GB GPUs
// (1555 GB/s HBM each) on a dual EPYC 7742 host (§4.2.1).
func A100Node() Hardware {
	return Hardware{Name: "4xA100-SXM4-40GB", HBMBandwidthGBs: 1555, GPUs: 4}
}

// ModelSpec describes one model's cost profile.
type ModelSpec struct {
	Name string
	// ParamsB is the parameter count in billions.
	ParamsB float64
	// BytesPerParam reflects the serving precision (2 for fp16).
	BytesPerParam float64
	// ShardGPUs is how many GPUs the weights are sharded across.
	ShardGPUs int
	// ParallelEff discounts multi-GPU bandwidth for communication
	// overhead (1.0 = perfect scaling).
	ParallelEff float64
	// OverheadPerToken is fixed per-token framework/kernel-launch cost.
	OverheadPerToken time.Duration
	// PrefillTokPerSec is prompt-processing throughput (compute-bound,
	// much faster than decode).
	PrefillTokPerSec float64
	// PassOverhead is fixed per-forward-pass cost (dominant for the small
	// zero-shot model at batch size 1).
	PassOverhead time.Duration
}

// Falcon7B returns the falcon-7b profile (fits on one A100).
func Falcon7B() ModelSpec {
	return ModelSpec{
		Name: "Falcon-7b", ParamsB: 7, BytesPerParam: 2,
		ShardGPUs: 1, ParallelEff: 1.0,
		OverheadPerToken: 500 * time.Microsecond,
		PrefillTokPerSec: 8000,
	}
}

// Falcon40B returns the falcon-40b profile (80 GB of fp16 weights sharded
// over all four GPUs; tensor-parallel efficiency well below 1).
func Falcon40B() ModelSpec {
	return ModelSpec{
		Name: "Falcon-40b", ParamsB: 40, BytesPerParam: 2,
		ShardGPUs: 4, ParallelEff: 0.40,
		OverheadPerToken: 2 * time.Millisecond,
		PrefillTokPerSec: 3000,
	}
}

// Llama270B returns the llama2-70b-chat-hf profile — the model behind the
// paper's Figure 1 example (140 GB of fp16 weights, 4-way sharded).
func Llama270B() ModelSpec {
	return ModelSpec{
		Name: "llama2-70b-chat-hf", ParamsB: 70, BytesPerParam: 2,
		ShardGPUs: 4, ParallelEff: 0.40,
		OverheadPerToken: 2 * time.Millisecond,
		PrefillTokPerSec: 2000,
	}
}

// BartLargeMNLI returns the facebook/bart-large-mnli profile used by the
// zero-shot pipeline: one encoder-decoder pass per candidate label.
func BartLargeMNLI() ModelSpec {
	return ModelSpec{
		Name: "facebook/Bart-Large-MNLI", ParamsB: 0.406, BytesPerParam: 4,
		ShardGPUs: 1, ParallelEff: 1.0,
		PrefillTokPerSec: 12000,
		PassOverhead:     15 * time.Millisecond,
	}
}

// weightBytesGB returns the model's weight footprint in GB.
func (m ModelSpec) weightBytesGB() float64 {
	return m.ParamsB * m.BytesPerParam
}

// DecodeTime models autoregressive generation: each new token streams the
// full weight set through HBM (memory-bound), plus fixed per-token
// overhead.
func (m ModelSpec) DecodeTime(h Hardware, newTokens int) time.Duration {
	if newTokens <= 0 {
		return 0
	}
	gpus := m.ShardGPUs
	if gpus > h.GPUs {
		gpus = h.GPUs
	}
	effBW := h.HBMBandwidthGBs * float64(gpus) * m.ParallelEff
	perTok := time.Duration(m.weightBytesGB() / effBW * float64(time.Second))
	return time.Duration(newTokens) * (perTok + m.OverheadPerToken)
}

// PrefillTime models prompt ingestion at the compute-bound prefill rate.
func (m ModelSpec) PrefillTime(promptTokens int) time.Duration {
	if promptTokens <= 0 || m.PrefillTokPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(promptTokens) / m.PrefillTokPerSec * float64(time.Second))
}

// InferenceTime is the end-to-end cost of one generative classification.
func (m ModelSpec) InferenceTime(h Hardware, promptTokens, newTokens int) time.Duration {
	return m.PrefillTime(promptTokens) + m.DecodeTime(h, newTokens) + m.PassOverhead
}

// ZeroShotTime is the cost of a zero-shot classification: one forward pass
// per candidate label over the message tokens.
func (m ModelSpec) ZeroShotTime(h Hardware, msgTokens, nLabels int) time.Duration {
	perPass := m.PrefillTime(msgTokens+8) + m.PassOverhead
	return time.Duration(nLabels) * perPass
}

// MessagesPerHour converts a per-message latency into Table 3's throughput
// column.
func MessagesPerHour(perMessage time.Duration) int {
	if perMessage <= 0 {
		return 0
	}
	return int(float64(time.Hour) / float64(perMessage))
}

// CountTokens estimates the LLM token count of text: whitespace words
// times 4/3 (the usual BPE words→tokens rule of thumb).
func CountTokens(text string) int {
	words := 0
	inWord := false
	for _, r := range text {
		if r == ' ' || r == '\n' || r == '\t' {
			inWord = false
			continue
		}
		if !inWord {
			words++
			inWord = true
		}
	}
	return (words*4 + 2) / 3
}
