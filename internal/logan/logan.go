// Package logan reimplements the essence of LOGAN, the LANL log-analysis
// tool the paper compares against (§1, §3, [3,4]): an online detector that
// surfaces *anomalous and interesting* syslog messages to administrators,
// who mark them interesting or uninteresting through a feedback UI; the
// detector learns from that feedback. The paper's critique — that on a
// heterogeneous test-bed the message distribution shifts constantly, so
// the tool "needs constant retraining" — is directly observable here: a
// firmware update makes previously-common patterns rare again and the
// surprise scores spike (see the package tests and examples).
package logan

import (
	"math"
	"sort"
	"strings"
	"sync"

	"hetsyslog/internal/textproc"
)

// Verdict is administrator feedback on a surfaced message pattern.
type Verdict int

// Feedback states: patterns start Unreviewed; administrators mark them
// Interesting (keep surfacing) or Uninteresting (suppress).
const (
	Unreviewed Verdict = iota
	Interesting
	Uninteresting
)

// Detector is an online rarity scorer over message *patterns* (the
// token sequence after number/hex masking, so "CPU 3 throttled" and
// "CPU 14 throttled" share a pattern). It is safe for concurrent use.
type Detector struct {
	// Threshold is the surprise score above which a message is surfaced
	// (default 2.5 ≈ "this pattern is >12x rarer than the mean").
	Threshold float64

	mu       sync.Mutex
	tok      *textproc.Tokenizer
	counts   map[string]int64
	total    int64
	feedback map[string]Verdict
}

// NewDetector returns a detector with the default threshold.
func NewDetector() *Detector {
	return &Detector{
		Threshold: 2.5,
		tok:       textproc.NewTokenizer(),
		counts:    make(map[string]int64),
		feedback:  make(map[string]Verdict),
	}
}

// pattern canonicalizes a message: the tokenizer masks numbers, hex and
// IPs, then any remaining token containing a digit (node names like
// "cn101", DIMM slots, zone ids) collapses to "<id>" so the pattern
// captures the template shape, not the instance.
func (d *Detector) pattern(msg string) string {
	tokens := d.tok.Tokenize(msg)
	for i, t := range tokens {
		if strings.ContainsAny(t, "0123456789") && t[0] != '<' {
			tokens[i] = "<id>"
		}
	}
	return strings.Join(tokens, " ")
}

// Result is the detector's judgement of one message.
type Result struct {
	Pattern  string
	Surprise float64
	// Anomalous is true when the message should be surfaced to the
	// administrators.
	Anomalous bool
	// Verdict is the current feedback state of the pattern.
	Verdict Verdict
}

// Observe scores msg, updates the model, and returns the judgement.
// Surprise is the negative log relative frequency of the pattern versus a
// uniform baseline: 0 for patterns at the mean rate, larger for rarer.
func (d *Detector) Observe(msg string) Result {
	p := d.pattern(msg)
	d.mu.Lock()
	defer d.mu.Unlock()

	d.total++
	d.counts[p]++
	n := d.counts[p]

	// surprise = ln(mean pattern count / this pattern count)
	mean := float64(d.total) / float64(len(d.counts))
	surprise := math.Log(mean / float64(n))
	if surprise < 0 {
		surprise = 0
	}
	v := d.feedback[p]
	res := Result{
		Pattern:  p,
		Surprise: surprise,
		Verdict:  v,
	}
	switch v {
	case Interesting:
		res.Anomalous = true // explicit admin interest always surfaces
	case Uninteresting:
		res.Anomalous = false
	default:
		res.Anomalous = surprise >= d.Threshold && d.total > 10
	}
	return res
}

// Feedback records an administrator verdict for the pattern of msg —
// the "mark messages as being interesting or uninteresting" loop of the
// LOGAN Grafana interface.
func (d *Detector) Feedback(msg string, v Verdict) {
	p := d.pattern(msg)
	d.mu.Lock()
	d.feedback[p] = v
	d.mu.Unlock()
}

// Patterns returns the number of distinct patterns seen.
func (d *Detector) Patterns() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.counts)
}

// Reviewed returns how many patterns carry administrator feedback — the
// ongoing labelling cost the paper complains about.
func (d *Detector) Reviewed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.feedback)
}

// TopRare returns the k rarest patterns (candidates for review), rarest
// first.
func (d *Detector) TopRare(k int) []Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	mean := float64(d.total) / float64(max(len(d.counts), 1))
	out := make([]Result, 0, len(d.counts))
	for p, n := range d.counts {
		s := math.Log(mean / float64(n))
		if s < 0 {
			s = 0
		}
		out = append(out, Result{Pattern: p, Surprise: s, Verdict: d.feedback[p]})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Surprise != out[b].Surprise {
			return out[a].Surprise > out[b].Surprise
		}
		return out[a].Pattern < out[b].Pattern
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
