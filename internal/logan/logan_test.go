package logan

import (
	"fmt"
	"testing"

	"hetsyslog/internal/loggen"
	"hetsyslog/internal/taxonomy"
)

func TestPatternMasksIdentifiers(t *testing.T) {
	d := NewDetector()
	a := d.pattern("CPU 3 temperature above threshold")
	b := d.pattern("CPU 14 temperature above threshold")
	if a != b {
		t.Errorf("patterns differ: %q vs %q", a, b)
	}
}

func TestRareMessageSurfaces(t *testing.T) {
	d := NewDetector()
	// A steady stream of one common pattern.
	for i := 0; i < 500; i++ {
		res := d.Observe(fmt.Sprintf("slurm_rpc_node_registration complete for cn%03d usec=%d", i%16, i))
		if i > 20 && res.Anomalous {
			t.Fatalf("common pattern surfaced at i=%d (surprise %.2f)", i, res.Surprise)
		}
	}
	// A never-seen pattern: high surprise, surfaced.
	res := d.Observe("EEH: Frozen PHB detected, adapter reset required immediately")
	if !res.Anomalous {
		t.Errorf("novel pattern not surfaced (surprise %.2f)", res.Surprise)
	}
}

func TestFeedbackSuppressionAndPromotion(t *testing.T) {
	d := NewDetector()
	for i := 0; i < 200; i++ {
		d.Observe("routine heartbeat ok")
	}
	rare := "strange one-off condition on the fabric switch"
	if !d.Observe(rare).Anomalous {
		t.Fatal("setup: rare message should surface")
	}
	// Admin: noise. It stops surfacing even though still rare.
	d.Feedback(rare, Uninteresting)
	if d.Observe(rare).Anomalous {
		t.Error("uninteresting pattern still surfacing")
	}
	// Admin: interesting. A *common* pattern now surfaces.
	d.Feedback("routine heartbeat ok", Interesting)
	if !d.Observe("routine heartbeat ok").Anomalous {
		t.Error("interesting pattern not surfacing")
	}
	if d.Reviewed() != 2 {
		t.Errorf("Reviewed = %d", d.Reviewed())
	}
}

func TestTopRareOrdering(t *testing.T) {
	d := NewDetector()
	for i := 0; i < 100; i++ {
		d.Observe("very common pattern")
	}
	for i := 0; i < 10; i++ {
		d.Observe("somewhat common pattern")
	}
	d.Observe("unique pattern")
	top := d.TopRare(2)
	if len(top) != 2 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].Pattern != "unique pattern" {
		t.Errorf("rarest = %q", top[0].Pattern)
	}
	if top[0].Surprise < top[1].Surprise {
		t.Error("not sorted by surprise")
	}
}

// TestDriftCausesRetrainingBurden reproduces the paper's §3 critique: a
// heterogeneous cluster's firmware drift makes LOGAN-style detectors
// surface floods of "new" patterns that are really just rewordings,
// demanding continual review.
func TestDriftCausesRetrainingBurden(t *testing.T) {
	d := NewDetector()
	g := loggen.NewGenerator(17)
	// Learn the pre-drift world.
	for i := 0; i < 3000; i++ {
		d.Observe(g.Example().Text)
	}
	// Review burden so far (patterns an admin would need to triage).
	preSurfaced := 0
	for i := 0; i < 500; i++ {
		if d.Observe(g.Example().Text).Anomalous {
			preSurfaced++
		}
	}
	// Firmware update on every architecture: rewordings arrive.
	for _, a := range loggen.Arches() {
		g.ApplyFirmwareUpdate(a)
	}
	postSurfaced := 0
	for i := 0; i < 500; i++ {
		if d.Observe(g.Example().Text).Anomalous {
			postSurfaced++
		}
	}
	if postSurfaced <= preSurfaced {
		t.Errorf("drift did not increase review burden: %d -> %d", preSurfaced, postSurfaced)
	}
	t.Logf("surfaced per 500 msgs: pre-drift %d, post-drift %d", preSurfaced, postSurfaced)
}

func TestThermalBurstNotAnomalousByVolume(t *testing.T) {
	// A repeated thermal message becomes "normal" by count even though it
	// is an issue — exactly why the paper wants *classification*, not
	// just anomaly detection, for actionable categories.
	d := NewDetector()
	g := loggen.NewGenerator(19)
	for i := 0; i < 2000; i++ {
		d.Observe(g.Example().Text)
	}
	node := g.Cluster.Nodes[0]
	burst := g.Burst(taxonomy.ThermalIssue, node, 200, 0)
	surfaced := 0
	for _, ex := range burst {
		if d.Observe(ex.Text).Anomalous {
			surfaced++
		}
	}
	if surfaced > len(burst)/2 {
		t.Errorf("high-volume burst mostly surfaced (%d/%d); rarity scoring should fatigue", surfaced, len(burst))
	}
}
