package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// The JSON query DSL mirrors OpenSearch's shape:
//
//	{"term":   {"field": "hostname", "value": "cn101"}}
//	{"match":  {"text": "temperature throttled"}}
//	{"range":  {"from": "2023-07-01T00:00:00Z", "to": "..."}}
//	{"bool":   {"must": [...], "should": [...], "must_not": [...]}}
//	{"match_all": {}}
type jsonQuery struct {
	MatchAll *struct{}  `json:"match_all,omitempty"`
	Term     *jsonTerm  `json:"term,omitempty"`
	Match    *jsonMatch `json:"match,omitempty"`
	Range    *jsonRange `json:"range,omitempty"`
	Bool     *jsonBool  `json:"bool,omitempty"`
}

type jsonTerm struct {
	Field string `json:"field"`
	Value string `json:"value"`
}

type jsonMatch struct {
	Text string `json:"text"`
}

type jsonRange struct {
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
}

type jsonBool struct {
	Must    []jsonQuery `json:"must,omitempty"`
	Should  []jsonQuery `json:"should,omitempty"`
	MustNot []jsonQuery `json:"must_not,omitempty"`
}

// ParseQuery decodes the JSON DSL into a Query.
func ParseQuery(raw []byte) (Query, error) {
	var jq jsonQuery
	if err := json.Unmarshal(raw, &jq); err != nil {
		return nil, fmt.Errorf("store: bad query: %w", err)
	}
	return jq.toQuery()
}

// MarshalQuery renders a Query back into the JSON DSL — the inverse of
// ParseQuery, used by cluster coordinators forwarding (possibly
// partition-restricted) queries to remote store nodes over HTTP.
func MarshalQuery(q Query) (json.RawMessage, error) {
	jq, err := toJSONQuery(q)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jq)
}

func toJSONQuery(q Query) (jsonQuery, error) {
	switch t := q.(type) {
	case nil, MatchAll:
		return jsonQuery{MatchAll: &struct{}{}}, nil
	case Term:
		return jsonQuery{Term: &jsonTerm{Field: t.Field, Value: t.Value}}, nil
	case Match:
		return jsonQuery{Match: &jsonMatch{Text: t.Text}}, nil
	case matchPrepared:
		return jsonQuery{Match: &jsonMatch{Text: strings.Join(t.want, " ")}}, nil
	case TimeRange:
		return jsonQuery{Range: &jsonRange{From: t.From, To: t.To}}, nil
	case Bool:
		jb := &jsonBool{}
		for _, sub := range t.Must {
			j, err := toJSONQuery(sub)
			if err != nil {
				return jsonQuery{}, err
			}
			jb.Must = append(jb.Must, j)
		}
		for _, sub := range t.Should {
			j, err := toJSONQuery(sub)
			if err != nil {
				return jsonQuery{}, err
			}
			jb.Should = append(jb.Should, j)
		}
		for _, sub := range t.MustNot {
			j, err := toJSONQuery(sub)
			if err != nil {
				return jsonQuery{}, err
			}
			jb.MustNot = append(jb.MustNot, j)
		}
		return jsonQuery{Bool: jb}, nil
	default:
		return jsonQuery{}, fmt.Errorf("store: cannot marshal query type %T", q)
	}
}

func (jq jsonQuery) toQuery() (Query, error) {
	switch {
	case jq.Term != nil:
		return Term{Field: jq.Term.Field, Value: jq.Term.Value}, nil
	case jq.Match != nil:
		return Match{Text: jq.Match.Text}, nil
	case jq.Range != nil:
		return TimeRange{From: jq.Range.From, To: jq.Range.To}, nil
	case jq.Bool != nil:
		b := Bool{}
		for _, sub := range jq.Bool.Must {
			q, err := sub.toQuery()
			if err != nil {
				return nil, err
			}
			b.Must = append(b.Must, q)
		}
		for _, sub := range jq.Bool.Should {
			q, err := sub.toQuery()
			if err != nil {
				return nil, err
			}
			b.Should = append(b.Should, q)
		}
		for _, sub := range jq.Bool.MustNot {
			q, err := sub.toQuery()
			if err != nil {
				return nil, err
			}
			b.MustNot = append(b.MustNot, q)
		}
		return b, nil
	default:
		return MatchAll{}, nil
	}
}

// Handler returns an http.Handler exposing the store API:
//
//	POST /index         {"time": ..., "fields": {...}, "body": "..."}
//	POST /index/batch   {"docs": [{...}, ...]}
//	POST /search        {"query": {...}, "size": 100, "sort_asc": false}
//	POST /count         {"query": {...}}
//	POST /agg/datehist  {"query": {...}, "interval": "1m", "sparse": false}
//	POST /agg/terms     {"query": {...}, "field": "hostname", "size": 10}
//	GET  /stats
func (st *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /index", st.handleIndex)
	mux.HandleFunc("POST /index/batch", st.handleIndexBatch)
	mux.HandleFunc("POST /search", st.handleSearch)
	mux.HandleFunc("POST /count", st.handleCount)
	mux.HandleFunc("POST /agg/datehist", st.handleDateHist)
	mux.HandleFunc("POST /agg/terms", st.handleTerms)
	mux.HandleFunc("GET /stats", st.handleStats)
	mux.HandleFunc("GET /search", st.handleSearchGet)
	return mux
}

// handleSearchGet serves the curl-friendly query-string search:
//
//	GET /search?q=app:sshd+-preauth+temperature&size=20
func (st *Store) handleSearchGet(w http.ResponseWriter, r *http.Request) {
	q, err := ParseQueryString(r.URL.Query().Get("q"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	size := 10
	if s := r.URL.Query().Get("size"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &size); err != nil {
			http.Error(w, "bad size", http.StatusBadRequest)
			return
		}
	}
	hits := st.Search(SearchRequest{Query: q, Size: size})
	writeJSON(w, map[string]any{"total": len(hits), "hits": hits})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (st *Store) handleIndex(w http.ResponseWriter, r *http.Request) {
	var d Doc
	if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id := st.Index(d)
	writeJSON(w, map[string]int64{"id": id})
}

// indexBatchBody is the JSON wire form of POST /index/batch — the bulk
// ingest endpoint a cluster router uses so a whole pipeline batch reaches
// the node as one request and one IndexBatch call. Requests may instead
// carry the binary doc codec (Content-Type DocsContentType, see codec.go);
// JSON remains the negotiation fallback for clients and nodes that do not
// share a codec version.
type indexBatchBody struct {
	Docs []Doc `json:"docs"`
}

// batchBufPool recycles the read buffers binary /index/batch requests
// decode from; DecodeDocs copies the strings out, so the buffer is free
// for the next request as soon as the handler returns.
var batchBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func (st *Store) handleIndexBatch(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, DocsContentType) {
		buf := batchBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer batchBufPool.Put(buf)
		if _, err := buf.ReadFrom(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		docs, err := DecodeDocs(buf.Bytes(), nil)
		if err != nil {
			// A versioned-but-foreign payload gets 415 so the client knows
			// to renegotiate down to JSON; garbage is a plain bad request.
			status := http.StatusBadRequest
			if errors.Is(err, ErrCodecVersion) {
				status = http.StatusUnsupportedMediaType
			}
			http.Error(w, err.Error(), status)
			return
		}
		first := st.IndexBatch(docs)
		writeJSON(w, map[string]int64{"first_id": first, "count": int64(len(docs))})
		return
	}
	var body indexBatchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	first := st.IndexBatch(body.Docs)
	writeJSON(w, map[string]int64{"first_id": first, "count": int64(len(body.Docs))})
}

func (st *Store) handleCount(w http.ResponseWriter, r *http.Request) {
	var body searchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := Query(MatchAll{})
	if len(body.Query) > 0 {
		var err error
		q, err = ParseQuery(body.Query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	writeJSON(w, map[string]int{"count": st.CountQuery(q)})
}

type searchBody struct {
	Query   json.RawMessage `json:"query"`
	Size    int             `json:"size"`
	SortAsc bool            `json:"sort_asc"`
}

func (st *Store) handleSearch(w http.ResponseWriter, r *http.Request) {
	var body searchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := Query(MatchAll{})
	if len(body.Query) > 0 {
		var err error
		q, err = ParseQuery(body.Query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	hits := st.Search(SearchRequest{Query: q, Size: body.Size, SortAsc: body.SortAsc})
	writeJSON(w, map[string]any{"total": len(hits), "hits": hits})
}

type dateHistBody struct {
	Query    json.RawMessage `json:"query"`
	Interval string          `json:"interval"`
	// Sparse skips gap-filling: only non-empty buckets return. Cluster
	// coordinators request this form and gap-fill once after merging.
	Sparse bool `json:"sparse,omitempty"`
}

func (st *Store) handleDateHist(w http.ResponseWriter, r *http.Request) {
	var body dateHistBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := Query(MatchAll{})
	if len(body.Query) > 0 {
		var err error
		q, err = ParseQuery(body.Query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	interval, err := time.ParseDuration(body.Interval)
	if err != nil {
		http.Error(w, "bad interval: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Sparse {
		writeJSON(w, st.DateHistogramSparse(q, interval))
		return
	}
	writeJSON(w, st.DateHistogram(q, interval))
}

type termsBody struct {
	Query json.RawMessage `json:"query"`
	Field string          `json:"field"`
	Size  int             `json:"size"`
}

func (st *Store) handleTerms(w http.ResponseWriter, r *http.Request) {
	var body termsBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := Query(MatchAll{})
	if len(body.Query) > 0 {
		var err error
		q, err = ParseQuery(body.Query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if body.Field == "" {
		http.Error(w, "field required", http.StatusBadRequest)
		return
	}
	writeJSON(w, st.Terms(q, body.Field, body.Size))
}

func (st *Store) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, st.Stats())
}
