package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Binary doc codec: the compact wire form of a document batch, used by
// cluster routers POSTing to /index/batch. The JSON form this replaces
// spent most of the cluster hop's CPU on marshaling field maps and
// escaping bodies — and did it once per *replica*, not once per batch.
// The binary form is a flat length-prefixed layout that encodes with
// nothing but appends and decodes with one backing-string allocation for
// the whole batch:
//
//	payload  := magic("TVD") version(0x01) uvarint(nDocs) doc*
//	doc      := varint(id) varint(unixSeconds) uvarint(nanos)
//	            string(body) uvarint(nFields) (string(key) string(value))*
//	string   := uvarint(len) bytes
//
// Timestamps travel as Unix seconds + in-second nanos, which round-trips
// every time.Time instant exactly (including the zero time and pre-epoch
// values whose UnixNano would overflow); the decoded location is
// normalized to UTC, matching what the store's time comparisons and the
// JSON wire form's RFC 3339 rendering already treat as canonical. Strings
// are raw bytes: unlike JSON, which replaces invalid UTF-8 with U+FFFD,
// the binary codec is byte-exact.
//
// Requests negotiate the codec via Content-Type: a client that sends
// DocsContentType to a node that cannot decode it (an older build answers
// 400, a newer-than-us version answers 415) falls back to JSON, which
// stays fully supported as the compatibility path and the differential
// oracle for the codec's tests.

// DocsContentType is the Content-Type announcing the binary doc codec on
// POST /index/batch.
const DocsContentType = "application/x-tivan-docs"

// docsMagic brands binary payloads; the 4th byte is the codec version.
var docsMagic = [4]byte{'T', 'V', 'D', docsVersion}

const docsVersion = 0x01

// ErrCodecVersion marks a payload carrying the codec magic but a version
// this build does not speak. HTTP handlers map it to 415 so newer clients
// know to fall back to JSON rather than treating the node as broken.
var ErrCodecVersion = errors.New("store: unsupported doc codec version")

// AppendDocsHeader appends the payload header for an n-doc batch to dst.
// Routers assembling per-node payloads from pre-encoded doc spans call
// this once per node, then append the spans.
func AppendDocsHeader(dst []byte, n int) []byte {
	dst = append(dst, docsMagic[:]...)
	return binary.AppendUvarint(dst, uint64(n))
}

// AppendDoc appends one document's binary encoding to dst and returns the
// grown slice. It allocates nothing beyond dst's own growth, so encoding
// into a reused buffer is allocation-free at steady state.
func AppendDoc(dst []byte, d *Doc) []byte {
	dst = binary.AppendVarint(dst, d.ID)
	dst = binary.AppendVarint(dst, d.Time.Unix())
	dst = binary.AppendUvarint(dst, uint64(d.Time.Nanosecond()))
	dst = appendCodecString(dst, d.Body)
	dst = binary.AppendUvarint(dst, uint64(len(d.Fields)))
	for i := range d.Fields {
		dst = appendCodecString(dst, d.Fields[i].K)
		dst = appendCodecString(dst, d.Fields[i].V)
	}
	return dst
}

// EncodeDocs appends the complete payload (header + every doc) to dst.
func EncodeDocs(dst []byte, docs []Doc) []byte {
	dst = AppendDocsHeader(dst, len(docs))
	for i := range docs {
		dst = AppendDoc(dst, &docs[i])
	}
	return dst
}

func appendCodecString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeDocs parses a binary payload into documents appended to dst
// (usually nil). Every string field of every returned doc is a substring
// of ONE copy of the payload, so a whole batch decodes with a single
// backing-string allocation plus the doc and field slices — the payload
// itself may be reused by the caller once DecodeDocs returns. A payload
// with the codec magic but an unknown version returns ErrCodecVersion;
// anything else malformed returns a plain error.
func DecodeDocs(payload []byte, dst []Doc) ([]Doc, error) {
	if len(payload) < len(docsMagic)+1 {
		return nil, fmt.Errorf("store: doc codec payload truncated (%d bytes)", len(payload))
	}
	if payload[0] != 'T' || payload[1] != 'V' || payload[2] != 'D' {
		return nil, errors.New("store: doc codec magic missing")
	}
	if payload[3] != docsVersion {
		return nil, fmt.Errorf("%w %d", ErrCodecVersion, payload[3])
	}
	// One conversion backs every decoded string: docs retained by the
	// store slice into it instead of allocating per field. The varint
	// overhead it pins alongside the text is a few percent of the payload.
	pool := string(payload)
	i := len(docsMagic)
	n, w := binary.Uvarint(payload[i:])
	if w <= 0 {
		return nil, errors.New("store: doc codec count corrupt")
	}
	i += w
	// Each doc occupies at least 5 bytes, so a count beyond the remaining
	// length is corruption, not a big batch — reject before preallocating.
	if n > uint64(len(payload)-i) {
		return nil, fmt.Errorf("store: doc codec count %d exceeds payload", n)
	}
	if dst == nil {
		dst = make([]Doc, 0, n)
	}
	// All docs' fields share one slab; growth mid-way strands the earlier
	// backing array but every already-built Fields slice stays valid.
	slab := make([]Field, 0, 8*n)
	readString := func() (string, error) {
		l, w := binary.Uvarint(payload[i:])
		if w <= 0 || l > uint64(len(payload)-i-w) {
			return "", errors.New("store: doc codec string corrupt")
		}
		i += w
		s := pool[i : i+int(l)]
		i += int(l)
		return s, nil
	}
	for k := uint64(0); k < n; k++ {
		var d Doc
		id, w := binary.Varint(payload[i:])
		if w <= 0 {
			return nil, errors.New("store: doc codec id corrupt")
		}
		i += w
		d.ID = id
		sec, w := binary.Varint(payload[i:])
		if w <= 0 {
			return nil, errors.New("store: doc codec time corrupt")
		}
		i += w
		nsec, w := binary.Uvarint(payload[i:])
		if w <= 0 || nsec >= 1_000_000_000 {
			return nil, errors.New("store: doc codec nanos corrupt")
		}
		i += w
		d.Time = unixUTC(sec, int64(nsec))
		body, err := readString()
		if err != nil {
			return nil, err
		}
		d.Body = body
		nf, w := binary.Uvarint(payload[i:])
		if w <= 0 || nf > uint64(len(payload)-i) {
			return nil, errors.New("store: doc codec field count corrupt")
		}
		i += w
		start := len(slab)
		for f := uint64(0); f < nf; f++ {
			k, err := readString()
			if err != nil {
				return nil, err
			}
			v, err := readString()
			if err != nil {
				return nil, err
			}
			slab = append(slab, Field{K: k, V: v})
		}
		if nf > 0 {
			d.Fields = Fields(slab[start:len(slab):len(slab)])
		}
		dst = append(dst, d)
	}
	if i != len(payload) {
		return nil, fmt.Errorf("store: doc codec payload has %d trailing bytes", len(payload)-i)
	}
	return dst, nil
}

// unixUTC rebuilds the instant encoded as Unix seconds + in-second
// nanos. time.Unix normalizes internally, so the zero time (whose Unix
// seconds are large and negative) reconstructs to a value for which
// IsZero still reports true.
func unixUTC(sec, nsec int64) time.Time {
	return time.Unix(sec, nsec).UTC()
}
