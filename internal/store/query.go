package store

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Query is the search AST. Implementations: MatchAll, Term, Match, Bool,
// TimeRange.
type Query interface {
	// matches evaluates the query against one document (the fallback and
	// filter path; indexed evaluation happens per shard where possible).
	matches(d *Doc) bool
}

// MatchAll matches every document.
type MatchAll struct{}

func (MatchAll) matches(*Doc) bool { return true }

// Term matches documents whose metadata field equals value
// (case-insensitive).
type Term struct {
	Field string
	Value string
}

func (t Term) matches(d *Doc) bool {
	v, ok := d.Fields.Get(t.Field)
	return ok && equalFold(v, t.Value)
}

// Match matches documents whose body contains every token of Text.
type Match struct {
	Text string
}

func (m Match) matches(d *Doc) bool {
	// Fallback for Match nodes evaluated outside the store's entry points
	// (which rewrite them via prepareQuery so the query text is analyzed
	// once per query, not once per candidate document).
	return matchPrepared{want: Analyze(m.Text)}.matches(d)
}

// matchPrepared is the query-time rewrite of Match: Text already
// analyzed, so per-document evaluation only tokenizes the document.
type matchPrepared struct {
	want []string
}

// tokScratchPool recycles token slices across matchPrepared evaluations.
// Per-document tokenization runs under shard read locks, possibly from
// several shard goroutines sharing one prepared query, so the scratch is
// pooled rather than carried on the query value.
var tokScratchPool = sync.Pool{New: func() any { s := make([]string, 0, 32); return &s }}

func (m matchPrepared) matches(d *Doc) bool {
	if len(m.want) == 0 {
		return true
	}
	sc := tokScratchPool.Get().(*[]string)
	// Tokenize without lowercasing and compare fold-wise: a body token
	// with uppercase letters (think "CPU") would otherwise force a
	// strings.ToLower copy per candidate document.
	toks := analyzeRawInto(d.Body, (*sc)[:0])
	// Containment via nested scan: syslog bodies tokenize short, so this
	// beats building a per-document set.
	ok := true
	for _, w := range m.want {
		found := false
		for _, tok := range toks {
			if tokenEqualFold(tok, w) {
				found = true
				break
			}
		}
		if !found {
			ok = false
			break
		}
	}
	*sc = toks[:0]
	tokScratchPool.Put(sc)
	return ok
}

// tokenEqualFold reports whether the raw body token tok analyzes to the
// already-lowercase query token want, without materializing the lowercase
// copy: ASCII tokens compare fold-wise in place; a token with any
// non-ASCII byte defers to lowerToken for exact Unicode behaviour.
func tokenEqualFold(tok, want string) bool {
	for i := 0; i < len(tok); i++ {
		if tok[i] >= 0x80 {
			return lowerToken(tok) == want
		}
	}
	return equalFold(tok, want)
}

// prepareQuery rewrites Match nodes (recursively through Bool) into their
// prepared form. Called once per query at every store entry point.
func prepareQuery(q Query) Query {
	switch t := q.(type) {
	case Match:
		return matchPrepared{want: Analyze(t.Text)}
	case Bool:
		out := Bool{}
		if len(t.Must) > 0 {
			out.Must = make([]Query, len(t.Must))
			for i, c := range t.Must {
				out.Must[i] = prepareQuery(c)
			}
		}
		if len(t.Should) > 0 {
			out.Should = make([]Query, len(t.Should))
			for i, c := range t.Should {
				out.Should[i] = prepareQuery(c)
			}
		}
		if len(t.MustNot) > 0 {
			out.MustNot = make([]Query, len(t.MustNot))
			for i, c := range t.MustNot {
				out.MustNot[i] = prepareQuery(c)
			}
		}
		return out
	default:
		return q
	}
}

// TimeRange matches documents with From <= Time < To. Zero bounds are
// open.
type TimeRange struct {
	From time.Time
	To   time.Time
}

func (t TimeRange) matches(d *Doc) bool {
	if !t.From.IsZero() && d.Time.Before(t.From) {
		return false
	}
	if !t.To.IsZero() && !d.Time.Before(t.To) {
		return false
	}
	return true
}

// Bool combines clauses: all Must and none of MustNot, plus at least one
// Should when any are present.
type Bool struct {
	Must    []Query
	Should  []Query
	MustNot []Query
}

func (b Bool) matches(d *Doc) bool {
	for _, q := range b.Must {
		if !q.matches(d) {
			return false
		}
	}
	for _, q := range b.MustNot {
		if q.matches(d) {
			return false
		}
	}
	if len(b.Should) > 0 {
		for _, q := range b.Should {
			if q.matches(d) {
				return true
			}
		}
		return false
	}
	return true
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Hit is one search result.
type Hit struct {
	Doc Doc `json:"doc"`
}

// SearchRequest bundles a query with result controls.
type SearchRequest struct {
	Query Query
	// Size limits returned hits (default 10; negative = unlimited).
	Size int
	// SortAsc returns oldest-first instead of the default newest-first.
	SortAsc bool
}

// Search runs the request across all shards in parallel and merges hits by
// time.
func (st *Store) Search(req SearchRequest) []Hit {
	defer st.observeQuery(st.querySearch, st.queryStart())
	if req.Query == nil {
		req.Query = MatchAll{}
	}
	req.Query = prepareQuery(req.Query)
	size := req.Size
	if size == 0 {
		size = 10
	}

	perShard := make([][]Hit, len(st.shards))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, sh := range st.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perShard[i] = sh.search(req.Query)
		}(i, sh)
	}
	wg.Wait()

	var hits []Hit
	for _, h := range perShard {
		hits = append(hits, h...)
	}
	sort.Slice(hits, func(a, b int) bool {
		ta, tb := hits[a].Doc.Time, hits[b].Doc.Time
		if !ta.Equal(tb) {
			if req.SortAsc {
				return ta.Before(tb)
			}
			return tb.Before(ta)
		}
		return hits[a].Doc.ID < hits[b].Doc.ID
	})
	if size >= 0 && len(hits) > size {
		hits = hits[:size]
	}
	return hits
}

// CountQuery returns the number of documents matching q.
func (st *Store) CountQuery(q Query) int {
	defer st.observeQuery(st.queryCount, st.queryStart())
	q = prepareQuery(q)
	n := 0
	for _, sh := range st.shards {
		n += sh.count(q)
	}
	return n
}

// candScratch carries the reusable buffers a candidate-driven query
// evaluation needs: two int32 lists for intersection ping-pong, a list
// staging slice, and the scratch Doc the scan loop materializes
// candidates into. The Doc lives inside the pooled struct because its
// address is passed through the Query interface (q.matches(&d)), which
// would force a stack-local Doc to escape — one heap alloc per shard per
// query. Pooled so the steady-state Term and Match paths allocate
// nothing.
type candScratch struct {
	a, b  []int32
	lists []*postings
	doc   Doc
}

var candScratchPool = sync.Pool{New: func() any { return &candScratch{} }}

// maxScratchCands caps the candidate-list capacity a pooled scratch may
// retain; a one-off query over a huge posting list should not pin its
// working set in the pool forever.
const maxScratchCands = 1 << 20

func putCandScratch(sc *candScratch) {
	if cap(sc.a) > maxScratchCands {
		sc.a = nil
	}
	if cap(sc.b) > maxScratchCands {
		sc.b = nil
	}
	// Drop the arena views the scratch Doc held so a pooled scratch never
	// pins a compacted-away arena block; the Fields backing array is kept.
	f := sc.doc.Fields
	clear(f[:cap(f)])
	sc.doc = Doc{Fields: f[:0]}
	candScratchPool.Put(sc)
}

// count evaluates q on one shard without materializing hits — the
// allocation-free counterpart of search used by CountQuery.
func (s *shard) count(q Query) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc := candScratchPool.Get().(*candScratch)
	n := 0
	d := &sc.doc
	if cand, ok := s.candList(q, sc); ok {
		for _, off := range cand {
			if s.deleted(off) {
				continue
			}
			s.fillDoc(off, d)
			if q.matches(d) {
				n++
			}
		}
	} else {
		for i := range s.ents {
			if s.deleted(int32(i)) {
				continue
			}
			s.fillDoc(int32(i), d)
			if q.matches(d) {
				n++
			}
		}
	}
	putCandScratch(sc)
	return n
}

// search evaluates q on one shard, using postings where the query shape
// allows and falling back to a filtered scan otherwise. Candidate checks
// run against a reused scratch Doc; only actual hits copy out.
func (s *shard) search(q Query) []Hit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc := candScratchPool.Get().(*candScratch)
	var hits []Hit
	d := &sc.doc
	if cand, ok := s.candList(q, sc); ok {
		hits = make([]Hit, 0, len(cand))
		for _, off := range cand {
			if s.deleted(off) {
				continue
			}
			s.fillDoc(off, d)
			if q.matches(d) {
				hits = append(hits, Hit{Doc: s.docCopy(off)})
			}
		}
	} else {
		for i := range s.ents {
			if s.deleted(int32(i)) {
				continue
			}
			s.fillDoc(int32(i), d)
			if q.matches(d) {
				hits = append(hits, Hit{Doc: s.docCopy(int32(i))})
			}
		}
	}
	putCandScratch(sc)
	return hits
}

// candEstimate returns an upper bound on the candidate count q's index
// driver would yield, without materializing anything: Bool uses it to
// pick its most selective Must clause before a single list is staged.
// Returns -1 when q has no indexable driver.
func (s *shard) candEstimate(q Query) int {
	switch t := q.(type) {
	case Term:
		if p := s.fieldPostings(t.Field, t.Value); p != nil {
			return int(p.count)
		}
		return 0
	case Match:
		return s.matchEstimate(Analyze(t.Text))
	case matchPrepared:
		return s.matchEstimate(t.want)
	case Bool:
		best := -1
		for _, m := range t.Must {
			if e := s.candEstimate(m); e >= 0 && (best < 0 || e < best) {
				best = e
			}
		}
		return best
	default:
		return -1
	}
}

// matchEstimate bounds a token conjunction by its rarest token's count;
// an absent token means zero matches.
func (s *shard) matchEstimate(toks []string) int {
	if len(toks) == 0 {
		return -1
	}
	best := -1
	for _, tok := range toks {
		p, ok := s.text[tok]
		if !ok {
			return 0
		}
		if best < 0 || int(p.count) < best {
			best = int(p.count)
		}
	}
	return best
}

// candList materializes a superset of matching doc offsets into sc's
// scratch buffers via the inverted index, when the query has at least one
// indexable conjunct. ok=false means "scan everything". The returned
// slice aliases sc and is valid until the next candList call on the same
// scratch.
func (s *shard) candList(q Query, sc *candScratch) ([]int32, bool) {
	switch t := q.(type) {
	case Term:
		p := s.fieldPostings(t.Field, t.Value)
		if p == nil {
			return nil, true
		}
		sc.a = s.appendPostings(sc.a[:0], p)
		return sc.a, true
	case Match:
		return s.matchCandList(Analyze(t.Text), sc)
	case matchPrepared:
		return s.matchCandList(t.want, sc)
	case Bool:
		// Drive from the most selective indexable Must clause, chosen by
		// estimate so only one clause is ever materialized (nested Bools
		// share sc); correctness comes from the matches() re-check.
		var best Query
		bestE := -1
		for _, m := range t.Must {
			if e := s.candEstimate(m); e >= 0 && (bestE < 0 || e < bestE) {
				bestE, best = e, m
			}
		}
		if best == nil {
			return nil, false
		}
		return s.candList(best, sc)
	default:
		return nil, false
	}
}

// matchCandList intersects the body postings of the analyzed tokens,
// rarest list first: the rarest list is materialized into scratch, then
// each remaining chunked list is merged against it in place.
func (s *shard) matchCandList(toks []string, sc *candScratch) ([]int32, bool) {
	if len(toks) == 0 {
		return nil, false
	}
	if len(toks) == 1 {
		// Single-token fast path: no list staging, no intersection.
		p, ok := s.text[toks[0]]
		if !ok {
			return nil, true
		}
		sc.a = s.appendPostings(sc.a[:0], p)
		return sc.a, true
	}
	sc.lists = sc.lists[:0]
	for _, tok := range toks {
		p, ok := s.text[tok]
		if !ok {
			return nil, true // a required token is absent: no matches
		}
		sc.lists = append(sc.lists, p)
	}
	// Insertion sort by count: token lists are few, and sort.Slice would
	// allocate its closure on every query.
	for i := 1; i < len(sc.lists); i++ {
		for j := i; j > 0 && sc.lists[j].count < sc.lists[j-1].count; j-- {
			sc.lists[j], sc.lists[j-1] = sc.lists[j-1], sc.lists[j]
		}
	}
	acc := s.appendPostings(sc.a[:0], sc.lists[0])
	sc.a = acc
	for _, p := range sc.lists[1:] {
		sc.b = s.intersectIter(acc, p, sc.b[:0])
		sc.a, sc.b = sc.b, sc.a
		acc = sc.a
		if len(acc) == 0 {
			return nil, true
		}
	}
	return acc, true
}
