package store

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Query is the search AST. Implementations: MatchAll, Term, Match, Bool,
// TimeRange.
type Query interface {
	// matches evaluates the query against one document (the fallback and
	// filter path; indexed evaluation happens per shard where possible).
	matches(d *Doc) bool
}

// MatchAll matches every document.
type MatchAll struct{}

func (MatchAll) matches(*Doc) bool { return true }

// Term matches documents whose metadata field equals value
// (case-insensitive).
type Term struct {
	Field string
	Value string
}

func (t Term) matches(d *Doc) bool {
	v, ok := d.Fields.Get(t.Field)
	return ok && equalFold(v, t.Value)
}

// Match matches documents whose body contains every token of Text.
type Match struct {
	Text string
}

func (m Match) matches(d *Doc) bool {
	// Fallback for Match nodes evaluated outside the store's entry points
	// (which rewrite them via prepareQuery so the query text is analyzed
	// once per query, not once per candidate document).
	return matchPrepared{want: Analyze(m.Text)}.matches(d)
}

// matchPrepared is the query-time rewrite of Match: Text already
// analyzed, so per-document evaluation only tokenizes the document.
type matchPrepared struct {
	want []string
}

// tokScratchPool recycles token slices across matchPrepared evaluations.
// Per-document tokenization runs under shard read locks, possibly from
// several shard goroutines sharing one prepared query, so the scratch is
// pooled rather than carried on the query value.
var tokScratchPool = sync.Pool{New: func() any { s := make([]string, 0, 32); return &s }}

func (m matchPrepared) matches(d *Doc) bool {
	if len(m.want) == 0 {
		return true
	}
	sc := tokScratchPool.Get().(*[]string)
	// Tokenize without lowercasing and compare fold-wise: a body token
	// with uppercase letters (think "CPU") would otherwise force a
	// strings.ToLower copy per candidate document.
	toks := analyzeRawInto(d.Body, (*sc)[:0])
	// Containment via nested scan: syslog bodies tokenize short, so this
	// beats building a per-document set.
	ok := true
	for _, w := range m.want {
		found := false
		for _, tok := range toks {
			if tokenEqualFold(tok, w) {
				found = true
				break
			}
		}
		if !found {
			ok = false
			break
		}
	}
	*sc = toks[:0]
	tokScratchPool.Put(sc)
	return ok
}

// tokenEqualFold reports whether the raw body token tok analyzes to the
// already-lowercase query token want, without materializing the lowercase
// copy: ASCII tokens compare fold-wise in place; a token with any
// non-ASCII byte defers to lowerToken for exact Unicode behaviour.
func tokenEqualFold(tok, want string) bool {
	for i := 0; i < len(tok); i++ {
		if tok[i] >= 0x80 {
			return lowerToken(tok) == want
		}
	}
	return equalFold(tok, want)
}

// prepareQuery rewrites Match nodes (recursively through Bool) into their
// prepared form. Called once per query at every store entry point.
func prepareQuery(q Query) Query {
	switch t := q.(type) {
	case Match:
		return matchPrepared{want: Analyze(t.Text)}
	case Bool:
		out := Bool{}
		if len(t.Must) > 0 {
			out.Must = make([]Query, len(t.Must))
			for i, c := range t.Must {
				out.Must[i] = prepareQuery(c)
			}
		}
		if len(t.Should) > 0 {
			out.Should = make([]Query, len(t.Should))
			for i, c := range t.Should {
				out.Should[i] = prepareQuery(c)
			}
		}
		if len(t.MustNot) > 0 {
			out.MustNot = make([]Query, len(t.MustNot))
			for i, c := range t.MustNot {
				out.MustNot[i] = prepareQuery(c)
			}
		}
		return out
	default:
		return q
	}
}

// TimeRange matches documents with From <= Time < To. Zero bounds are
// open.
type TimeRange struct {
	From time.Time
	To   time.Time
}

func (t TimeRange) matches(d *Doc) bool {
	if !t.From.IsZero() && d.Time.Before(t.From) {
		return false
	}
	if !t.To.IsZero() && !d.Time.Before(t.To) {
		return false
	}
	return true
}

// Bool combines clauses: all Must and none of MustNot, plus at least one
// Should when any are present.
type Bool struct {
	Must    []Query
	Should  []Query
	MustNot []Query
}

func (b Bool) matches(d *Doc) bool {
	for _, q := range b.Must {
		if !q.matches(d) {
			return false
		}
	}
	for _, q := range b.MustNot {
		if q.matches(d) {
			return false
		}
	}
	if len(b.Should) > 0 {
		for _, q := range b.Should {
			if q.matches(d) {
				return true
			}
		}
		return false
	}
	return true
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Hit is one search result.
type Hit struct {
	Doc Doc `json:"doc"`
}

// SearchRequest bundles a query with result controls.
type SearchRequest struct {
	Query Query
	// Size limits returned hits (default 10; negative = unlimited).
	Size int
	// SortAsc returns oldest-first instead of the default newest-first.
	SortAsc bool
}

// Search runs the request across all shards in parallel and merges hits by
// time.
func (st *Store) Search(req SearchRequest) []Hit {
	defer st.observeQuery(st.querySearch, st.queryStart())
	if req.Query == nil {
		req.Query = MatchAll{}
	}
	req.Query = prepareQuery(req.Query)
	size := req.Size
	if size == 0 {
		size = 10
	}

	perShard := make([][]Hit, len(st.shards))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, sh := range st.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perShard[i] = sh.search(req.Query)
		}(i, sh)
	}
	wg.Wait()

	var hits []Hit
	for _, h := range perShard {
		hits = append(hits, h...)
	}
	sort.Slice(hits, func(a, b int) bool {
		ta, tb := hits[a].Doc.Time, hits[b].Doc.Time
		if !ta.Equal(tb) {
			if req.SortAsc {
				return ta.Before(tb)
			}
			return tb.Before(ta)
		}
		return hits[a].Doc.ID < hits[b].Doc.ID
	})
	if size >= 0 && len(hits) > size {
		hits = hits[:size]
	}
	return hits
}

// CountQuery returns the number of documents matching q.
func (st *Store) CountQuery(q Query) int {
	defer st.observeQuery(st.queryCount, st.queryStart())
	q = prepareQuery(q)
	n := 0
	for _, sh := range st.shards {
		n += sh.count(q)
	}
	return n
}

// count evaluates q on one shard without materializing hits — the
// allocation-free counterpart of search used by CountQuery.
func (s *shard) count(q Query) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	if cand, ok := s.candidates(q); ok {
		for _, off := range cand {
			if !s.deleted(off) && q.matches(&s.docs[off]) {
				n++
			}
		}
		return n
	}
	for i := range s.docs {
		if !s.deleted(int32(i)) && q.matches(&s.docs[i]) {
			n++
		}
	}
	return n
}

// search evaluates q on one shard, using postings where the query shape
// allows and falling back to a filtered scan otherwise.
func (s *shard) search(q Query) []Hit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if cand, ok := s.candidates(q); ok {
		hits := make([]Hit, 0, len(cand))
		for _, off := range cand {
			if s.deleted(off) {
				continue
			}
			d := &s.docs[off]
			if q.matches(d) {
				hits = append(hits, Hit{Doc: *d})
			}
		}
		return hits
	}
	var hits []Hit
	for i := range s.docs {
		if s.deleted(int32(i)) {
			continue
		}
		if q.matches(&s.docs[i]) {
			hits = append(hits, Hit{Doc: s.docs[i]})
		}
	}
	return hits
}

// candidates returns a superset of matching doc offsets via the inverted
// index, when the query has at least one indexable conjunct. ok=false
// means "scan everything".
func (s *shard) candidates(q Query) ([]int32, bool) {
	switch t := q.(type) {
	case Term:
		return s.fieldPostings(t.Field, t.Value), true
	case Match:
		return s.matchCandidates(Analyze(t.Text))
	case matchPrepared:
		return s.matchCandidates(t.want)
	case Bool:
		// Use the most selective indexable Must clause as the candidate
		// driver; correctness comes from the matches() re-check.
		var best []int32
		found := false
		for _, m := range t.Must {
			if cand, ok := s.candidates(m); ok {
				if !found || len(cand) < len(best) {
					best, found = cand, true
				}
			}
		}
		if found {
			return best, true
		}
		return nil, false
	default:
		return nil, false
	}
}

// matchCandidates intersects the body postings of the analyzed tokens,
// rarest list first.
func (s *shard) matchCandidates(toks []string) ([]int32, bool) {
	if len(toks) == 0 {
		return nil, false
	}
	if len(toks) == 1 {
		// Single-token fast path: no list staging, no intersection.
		if p, ok := s.text[toks[0]]; ok {
			return p.offs, true
		}
		return nil, true
	}
	lists := make([][]int32, 0, len(toks))
	for _, tok := range toks {
		p, ok := s.text[tok]
		if !ok {
			return nil, true // a required token is absent: no matches
		}
		lists = append(lists, p.offs)
	}
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	acc := lists[0]
	for _, l := range lists[1:] {
		acc = intersect(acc, l)
		if len(acc) == 0 {
			return nil, true
		}
	}
	return acc, true
}

func intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
