package store

import (
	"bytes"
	"testing"
	"time"
)

func TestDeleteByID(t *testing.T) {
	st := New(3)
	seed(st)
	id := int64(0)
	if !st.Delete(id) {
		t.Fatal("delete of live doc failed")
	}
	if st.Delete(id) {
		t.Error("double delete should report false")
	}
	if st.Delete(-1) || st.Delete(9999) {
		t.Error("delete of absent ids should report false")
	}
	if _, ok := st.Get(id); ok {
		t.Error("deleted doc still retrievable")
	}
	if st.Count() != 4 {
		t.Errorf("Count = %d, want 4", st.Count())
	}
	if st.Deleted() != 1 {
		t.Errorf("Deleted = %d", st.Deleted())
	}
}

func TestDeletedDocsExcludedEverywhere(t *testing.T) {
	st := New(2)
	seed(st)
	// Find and delete the real_memory doc.
	hits := st.Search(SearchRequest{Query: Match{Text: "real_memory"}, Size: -1})
	if len(hits) != 1 {
		t.Fatal("setup: expected one real_memory doc")
	}
	st.Delete(hits[0].Doc.ID)

	if got := st.CountQuery(Match{Text: "real_memory"}); got != 0 {
		t.Errorf("search still returns deleted doc: %d hits", got)
	}
	for _, b := range st.Terms(MatchAll{}, "app", 0) {
		if b.Value == "slurmd" {
			t.Error("terms agg still counts deleted doc")
		}
	}
	total := 0
	for _, b := range st.DateHistogram(MatchAll{}, time.Minute) {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("histogram total = %d, want 4", total)
	}
}

func TestDeleteBeforeRetention(t *testing.T) {
	st := New(3)
	seed(st) // docs at t0 + 0..4 minutes
	n := st.DeleteBefore(t0.Add(2 * time.Minute))
	if n != 2 {
		t.Fatalf("DeleteBefore removed %d, want 2", n)
	}
	if st.Count() != 3 {
		t.Errorf("Count = %d", st.Count())
	}
	// Idempotent.
	if st.DeleteBefore(t0.Add(2*time.Minute)) != 0 {
		t.Error("second DeleteBefore should remove nothing")
	}
}

func TestCompactReclaimsAndPreservesQueries(t *testing.T) {
	st := New(2)
	seed(st)
	st.DeleteBefore(t0.Add(2 * time.Minute))
	before := st.Search(SearchRequest{Size: -1})
	st.Compact()
	if st.Deleted() != 0 {
		t.Errorf("Deleted = %d after compact", st.Deleted())
	}
	after := st.Search(SearchRequest{Size: -1})
	if len(after) != len(before) {
		t.Fatalf("compact changed result count: %d vs %d", len(after), len(before))
	}
	for i := range after {
		if after[i].Doc.ID != before[i].Doc.ID || after[i].Doc.Body != before[i].Doc.Body {
			t.Fatal("compact changed results")
		}
	}
	// Ids still resolve.
	for _, h := range after {
		if _, ok := st.Get(h.Doc.ID); !ok {
			t.Fatalf("doc %d lost by compact", h.Doc.ID)
		}
	}
	// Compact on a clean store is a no-op.
	st.Compact()
	if st.Count() != len(after) {
		t.Error("second compact changed count")
	}
}

func TestSnapshotSkipsDeleted(t *testing.T) {
	st := New(2)
	seed(st)
	st.Delete(0)
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(1)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != 4 {
		t.Errorf("snapshot carried %d docs, want 4", dst.Count())
	}
}
