package store

import (
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"
)

// referenceMatch evaluates q over the raw document slice with the same
// prepared-query semantics the store's entry points use — but with none
// of the store's machinery: no arenas, no postings, no candidate-list
// planning. Whatever the indexed evaluation answers must agree with this.
func referenceMatch(docs []Doc, q Query) []int {
	pq := prepareQuery(q)
	var idx []int
	for i := range docs {
		if pq.matches(&docs[i]) {
			idx = append(idx, i)
		}
	}
	return idx
}

// diffDocKey identifies a document by content for order-insensitive hit
// comparison (store-assigned IDs differ from corpus indices). Times
// compare as instants — the arena store reconstructs them from (sec,
// nsec), which must round-trip exactly, including the zero time and
// pre-epoch timestamps.
func diffDocKey(d *Doc) string {
	host, _ := d.Fields.Get("hostname")
	app, _ := d.Fields.Get("app")
	return strconv.FormatInt(d.Time.Unix(), 10) + "." +
		strconv.Itoa(d.Time.Nanosecond()) + "|" + host + "|" + app + "|" + d.Body
}

func refSparseHistogram(docs []Doc, ref []int, interval time.Duration) []HistogramBucket {
	counts := map[int64]int{}
	for _, di := range ref {
		counts[bucketIndex(docs[di].Time, interval)]++
	}
	if len(counts) == 0 {
		return nil
	}
	out := make([]HistogramBucket, 0, len(counts))
	for b, c := range counts {
		out = append(out, HistogramBucket{Start: time.Unix(0, b*int64(interval)).UTC(), Count: c})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start.Before(out[b].Start) })
	return out
}

func refTerms(docs []Doc, ref []int, field string) []TermBucket {
	counts := map[string]int{}
	for _, di := range ref {
		if v, ok := docs[di].Fields.Get(field); ok {
			counts[v]++
		}
	}
	out := make([]TermBucket, 0, len(counts))
	for v, c := range counts {
		out = append(out, TermBucket{Value: v, Count: c})
	}
	SortTerms(out)
	return out
}

// TestArenaStoreDifferential pins the arena/chunked-postings store to a
// naive reference over randomized corpora: for every query shape the
// store supports, Search, CountQuery, DateHistogramSparse and Terms must
// answer exactly what a linear scan of the original documents answers.
// Corpora include zero-time and pre-epoch documents (the timestamp
// reconstruction edge cases) and, in half the trials, a retention
// DeleteBefore + Compact pass — the arena-rebuild path.
func TestArenaStoreDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	hosts := []string{"cn001", "cn002", "gpu01", "mgmt"}
	apps := []string{"kernel", "slurmd", "sshd"}
	bodies := []string{
		"CPU temperature above threshold clock throttled",
		"link down on port eth0",
		"Accepted publickey for root",
		"EDAC MC0 CE memory read error",
		"temperature normal again",
	}

	for trial := 0; trial < 24; trial++ {
		n := 1 + rng.Intn(160)
		docs := make([]Doc, n)
		for i := range docs {
			var ts time.Time
			switch rng.Intn(8) {
			case 0:
				// zero time: a record whose timestamp failed to parse
			case 1:
				ts = time.Unix(-1-rng.Int63n(1<<20), int64(rng.Intn(1e9)))
			default:
				ts = time.Unix(1700000000+rng.Int63n(1<<17), int64(rng.Intn(1e9)))
			}
			docs[i] = Doc{
				Time: ts,
				Body: bodies[rng.Intn(len(bodies))] + " " + strconv.Itoa(rng.Intn(6)),
				Fields: F(
					"hostname", hosts[rng.Intn(len(hosts))],
					"app", apps[rng.Intn(len(apps))],
				),
			}
		}
		st := New(1 + rng.Intn(4))
		st.IndexBatch(docs)

		if trial%2 == 1 {
			// Retention pass: prune, compact (arena rebuild), and shrink
			// the reference corpus the same way.
			cutoff := time.Unix(1700000000+rng.Int63n(1<<17), 0)
			st.DeleteBefore(cutoff)
			st.Compact()
			kept := docs[:0]
			for _, d := range docs {
				if !d.Time.Before(cutoff) {
					kept = append(kept, d)
				}
			}
			docs = kept
		}

		from := time.Unix(1700000000+rng.Int63n(1<<17), 0)
		queries := []Query{
			MatchAll{},
			Term{Field: "hostname", Value: hosts[rng.Intn(len(hosts))]},
			Term{Field: "HOSTNAME", Value: "CN001"}, // fold-insensitive both sides
			Term{Field: "missing", Value: "x"},
			Match{Text: "temperature"},
			Match{Text: "temperature threshold"},
			Match{Text: "Temperature " + strconv.Itoa(rng.Intn(6))},
			Match{Text: "tokens matching nothing whatsoever"},
			TimeRange{From: from},
			TimeRange{To: from},
			TimeRange{From: time.Unix(-1<<21, 0), To: from},
			Bool{
				Must:    []Query{Match{Text: "temperature"}, Term{Field: "app", Value: apps[rng.Intn(len(apps))]}},
				MustNot: []Query{Term{Field: "hostname", Value: hosts[0]}},
			},
			Bool{Should: []Query{Match{Text: "throttled"}, Term{Field: "app", Value: "sshd"}}},
		}

		for qi, q := range queries {
			ref := referenceMatch(docs, q)

			if got := st.CountQuery(q); got != len(ref) {
				t.Fatalf("trial %d query %d (%#v): CountQuery = %d, reference = %d",
					trial, qi, q, got, len(ref))
			}

			hits := st.Search(SearchRequest{Query: q, Size: -1})
			want := make([]string, len(ref))
			for i, di := range ref {
				want[i] = diffDocKey(&docs[di])
			}
			got := make([]string, len(hits))
			for i := range hits {
				got[i] = diffDocKey(&hits[i].Doc)
			}
			sort.Strings(want)
			sort.Strings(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d query %d (%#v): Search hits diverge\n got %v\nwant %v",
					trial, qi, q, got, want)
			}

			for _, interval := range []time.Duration{time.Hour, 7*time.Minute + 13*time.Second} {
				wantH := refSparseHistogram(docs, ref, interval)
				gotH := st.DateHistogramSparse(q, interval)
				if !reflect.DeepEqual(gotH, wantH) {
					t.Fatalf("trial %d query %d (%#v) interval %v: histogram diverges\n got %v\nwant %v",
						trial, qi, q, interval, gotH, wantH)
				}
			}

			wantT := refTerms(docs, ref, "hostname")
			gotT := st.Terms(q, "hostname", 0)
			if !reflect.DeepEqual(gotT, wantT) {
				t.Fatalf("trial %d query %d (%#v): terms diverge\n got %v\nwant %v",
					trial, qi, q, gotT, wantT)
			}
		}
	}
}
