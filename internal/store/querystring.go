package store

import (
	"fmt"
	"strings"
	"time"
)

// ParseQueryString parses a compact one-line query language for
// interactive use (the GET /search?q=... endpoint and CLI tools):
//
//	temperature throttled            full-text: both tokens must appear
//	app:sshd hostname:cn101          field equality
//	after:2023-07-01T00:00:00Z       time lower bound (inclusive)
//	before:2023-07-02T00:00:00Z      time upper bound (exclusive)
//	-preauth                         negated full-text token
//	-app:sshd                        negated field equality
//
// Terms combine with AND semantics. An empty string matches everything.
func ParseQueryString(s string) (Query, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return MatchAll{}, nil
	}
	var must []Query
	var mustNot []Query
	var textTokens []string
	tr := TimeRange{}
	haveRange := false

	for _, tok := range fields {
		switch {
		case strings.HasPrefix(tok, "-") && len(tok) > 1:
			// A negated field term (-app:sshd) must become MustNot(Term),
			// not a full-text match on the literal "app:sshd" — the latter
			// silently excludes the wrong documents.
			neg := tok[1:]
			switch {
			case strings.HasPrefix(neg, "after:"), strings.HasPrefix(neg, "before:"):
				return nil, fmt.Errorf("store: cannot negate %q (invert the bound instead)", tok)
			case strings.Contains(neg, ":"):
				parts := strings.SplitN(neg, ":", 2)
				if parts[0] == "" || parts[1] == "" {
					return nil, fmt.Errorf("store: bad field term %q", tok)
				}
				value := strings.ReplaceAll(parts[1], "+", " ")
				mustNot = append(mustNot, Term{Field: parts[0], Value: value})
			default:
				mustNot = append(mustNot, Match{Text: neg})
			}
		case strings.HasPrefix(tok, "after:"):
			t, err := time.Parse(time.RFC3339, strings.TrimPrefix(tok, "after:"))
			if err != nil {
				return nil, fmt.Errorf("store: bad after: %w", err)
			}
			tr.From = t
			haveRange = true
		case strings.HasPrefix(tok, "before:"):
			t, err := time.Parse(time.RFC3339, strings.TrimPrefix(tok, "before:"))
			if err != nil {
				return nil, fmt.Errorf("store: bad before: %w", err)
			}
			tr.To = t
			haveRange = true
		case strings.Contains(tok, ":"):
			parts := strings.SplitN(tok, ":", 2)
			if parts[0] == "" || parts[1] == "" {
				return nil, fmt.Errorf("store: bad field term %q", tok)
			}
			// Categories and other values may contain spaces; the query
			// language uses '+' as the space stand-in.
			value := strings.ReplaceAll(parts[1], "+", " ")
			must = append(must, Term{Field: parts[0], Value: value})
		default:
			textTokens = append(textTokens, tok)
		}
	}
	if len(textTokens) > 0 {
		must = append(must, Match{Text: strings.Join(textTokens, " ")})
	}
	if haveRange {
		must = append(must, tr)
	}
	if len(mustNot) == 0 && len(must) == 1 {
		return must[0], nil
	}
	if len(mustNot) == 0 && len(must) == 0 {
		return MatchAll{}, nil
	}
	return Bool{Must: must, MustNot: mustNot}, nil
}
