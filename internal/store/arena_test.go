package store

import (
	"testing"
	"time"
	"unsafe"

	"hetsyslog/internal/raceflag"
)

// recycledDoc builds a Doc whose Body and hostname are unsafe views of
// buf — the shape IndexBatch sees on the zero-garbage ingest path, where
// every string is a window into a pooled listener slab that is recycled
// (overwritten in place) as soon as the batch is indexed.
func recycledDoc(buf []byte, body, host string) Doc {
	view := func(off int, s string) string {
		copy(buf[off:], s)
		return unsafe.String(&buf[off], len(s))
	}
	return Doc{
		Time: time.Unix(42, 0),
		Body: view(0, body),
		Fields: F(
			"tag", "syslog",
			"hostname", view(len(body), host),
			"app", "kernel",
			"severity", "warning",
		),
	}
}

// TestIndexBatchArenaSteadyStateAllocs replays the ownership contract the
// arena-backed store exists to honour: IndexBatch copies everything it
// retains into shard-owned slabs at index time, so (a) indexing a batch
// of recycled-buffer views performs zero steady-state heap allocations —
// the body resolves through bodyMemo, fields through the intern table,
// posting appends bump into chunk slack — and (b) scribbling over the
// caller's buffer afterwards, as the syslog pool does when the next
// datagram reuses the slab, cannot mutate a single stored document.
func TestIndexBatchArenaSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const body = "CPU 3 temperature above threshold, cpu clock throttled"
	const host = "cn042"
	buf := make([]byte, len(body)+len(host))
	doc := recycledDoc(buf, body, host)
	batch := make([]Doc, 8)
	for i := range batch {
		batch[i] = doc
	}

	st := New(1)
	// Warm until doc-slice and posting-chunk growth has enough slack that
	// the measured window never grows (same budget as the canonical-doc
	// steady-state test).
	for i := 0; i < 4608/len(batch); i++ {
		st.IndexBatch(batch)
	}
	if n := testing.AllocsPerRun(20, func() {
		st.IndexBatch(batch)
	}); n != 0 {
		t.Errorf("IndexBatch allocs/op over recycled views = %v, want 0", n)
	}

	// Recycle the buffer: every byte the caller handed in is overwritten.
	for i := range buf {
		buf[i] = 'x'
	}

	total := st.Count()
	if got := st.CountQuery(Term{Field: "hostname", Value: host}); got != total {
		t.Fatalf("after recycling the input buffer: hostname term matches %d of %d docs", got, total)
	}
	hits := st.Search(SearchRequest{Query: Match{Text: "throttled"}, Size: 1})
	if len(hits) != 1 {
		t.Fatalf("after recycling the input buffer: body match found %d hits, want 1", len(hits))
	}
	if hits[0].Doc.Body != body {
		t.Errorf("stored body mutated by buffer recycling:\n got %q\nwant %q", hits[0].Doc.Body, body)
	}
	if v, _ := hits[0].Doc.Fields.Get("hostname"); v != host {
		t.Errorf("stored hostname mutated by buffer recycling: got %q, want %q", v, host)
	}
}

// TestStoreStatsMemoryAccounting checks the arena-era Stats fields: slab
// bytes grow with the corpus, posting chunks are counted, and the body
// memo's hit ratio reflects a Zipf-shaped workload (identical bodies
// resolve through the memo after first sight).
func TestStoreStatsMemoryAccounting(t *testing.T) {
	st := New(2)
	batch := make([]Doc, 64)
	for i := range batch {
		buf := make([]byte, 80)
		batch[i] = recycledDoc(buf, "link down on port eth0", "cn001")
	}
	st.IndexBatch(batch)
	st.IndexBatch(batch)

	s := st.Stats()
	if s.Docs != 128 {
		t.Fatalf("Docs = %d, want 128", s.Docs)
	}
	if s.ArenaBytes <= 0 {
		t.Errorf("ArenaBytes = %d, want > 0", s.ArenaBytes)
	}
	if s.PostingChunks <= 0 {
		t.Errorf("PostingChunks = %d, want > 0", s.PostingChunks)
	}
	// 128 identical bodies across 2 shards: at most one miss per shard.
	if s.BodyMemoMisses > 2 || s.BodyMemoHits < 126 {
		t.Errorf("body memo hits=%d misses=%d over 128 identical bodies", s.BodyMemoHits, s.BodyMemoMisses)
	}
	if r := s.BodyMemoHitRatio(); r < 0.95 || r > 1 {
		t.Errorf("BodyMemoHitRatio = %v, want ~0.98", r)
	}
}
