package store

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSnapshotLoadRoundTrip(t *testing.T) {
	src := New(3)
	seed(src)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(5) // different shard count must not matter
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != src.Count() {
		t.Fatalf("count %d != %d", dst.Count(), src.Count())
	}
	// Queries behave identically.
	for _, q := range []Query{
		Match{Text: "temperature"},
		Term{Field: "hostname", Value: "cn101"},
		TimeRange{From: t0.Add(time.Minute)},
	} {
		if got, want := dst.CountQuery(q), src.CountQuery(q); got != want {
			t.Errorf("query %#v: %d hits after load, want %d", q, got, want)
		}
	}
	// Aggregations too.
	a, b := src.Terms(MatchAll{}, "hostname", 0), dst.Terms(MatchAll{}, "hostname", 0)
	if len(a) != len(b) || a[0] != b[0] {
		t.Errorf("terms diverged: %v vs %v", a, b)
	}
}

func TestLoadRejectsNonEmptyStore(t *testing.T) {
	st := New(2)
	seed(st)
	if err := st.Load(strings.NewReader("")); err == nil {
		t.Error("Load into non-empty store should error")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	st := New(2)
	err := st.Load(strings.NewReader(`{"id":1,"body":"ok"}` + "\n" + `{broken`))
	if err == nil {
		t.Error("corrupt snapshot should error")
	}
	// The valid prefix was indexed; the error names the failing record.
	if !strings.Contains(err.Error(), "doc 1") {
		t.Errorf("error should locate the bad record: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tivan.jsonl")
	src := New(2)
	seed(src)
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dst := New(2)
	if err := dst.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != src.Count() {
		t.Fatalf("count = %d", dst.Count())
	}
	// Missing file errors cleanly.
	if err := New(1).LoadFile(filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Error("missing file should error")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New(2).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty snapshot wrote %d bytes", buf.Len())
	}
	dst := New(1)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != 0 {
		t.Error("empty load should stay empty")
	}
}
