package store

import (
	"fmt"
	"testing"
	"time"

	"hetsyslog/internal/raceflag"
)

// canonicalDoc builds a doc shaped like the collector's RecordToDoc
// output: the canonical field set plus a short repeated body, i.e. the
// steady-state input the index hot path sees from live syslog traffic.
func canonicalDoc(i int) Doc {
	return Doc{
		Time: time.Unix(int64(i), 0),
		Fields: F(
			"tag", "syslog",
			"hostname", fmt.Sprintf("cn%03d", i%64),
			"app", "kernel",
			"severity", "warning",
			"facility", "kern",
			"category", "hardware_issue",
		),
		Body: fmt.Sprintf("CPU %d temperature above threshold, cpu clock throttled", i%16),
	}
}

// TestIndexBatchSteadyStateAllocs enforces the store-side acceptance bar
// of the socket→store fast path: once the shard has seen a body shape and
// its field values, indexing another canonical doc performs zero heap
// allocations — the body resolves through bodyMemo, every posting append
// is in place, and field keys build in the shard's scratch buffer. Only
// amortized posting-list growth allocates, and the warmup leaves enough
// capacity slack that the measured window never grows. Skipped under
// -race like every AllocsPerRun ceiling in this repo.
func TestIndexBatchSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	st := New(1)
	warm := make([]Doc, 4608)
	for i := range warm {
		warm[i] = canonicalDoc(i)
	}
	st.IndexBatch(warm)

	batch := make([]Doc, 8)
	for i := range batch {
		batch[i] = canonicalDoc(i)
	}
	if n := testing.AllocsPerRun(20, func() {
		st.IndexBatch(batch)
	}); n != 0 {
		t.Errorf("IndexBatch steady-state allocs/op = %v, want 0", n)
	}
}

// TestIndexSteadyStateAllocs is the single-doc counterpart: the Index
// entry point shares indexLocked with IndexBatch, so it inherits the same
// zero-allocation steady state.
func TestIndexSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	st := New(1)
	warm := make([]Doc, 4608)
	for i := range warm {
		warm[i] = canonicalDoc(i)
	}
	st.IndexBatch(warm)

	d := canonicalDoc(1)
	if n := testing.AllocsPerRun(100, func() {
		st.Index(d)
	}); n != 0 {
		t.Errorf("Index steady-state allocs/op = %v, want 0", n)
	}
}

// TestQuerySteadyStateAllocs pins the allocation ceilings of the prepared
// query hot paths. A Term count is fully allocation-free: the field key
// builds in a stack buffer, candidates come straight from the posting
// list, and the per-candidate re-check scans the doc's field slice. Match
// counts allocate only at prepare time (the analyzed token slice, plus
// intersection staging for multi-token queries) — never per candidate,
// which is what keeps query cost independent of corpus size.
func TestQuerySteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	st := New(4)
	for i := 0; i < 4096; i++ {
		st.Index(canonicalDoc(i))
	}
	cases := []struct {
		name    string
		q       Query
		ceiling float64
	}{
		// Match ceilings are per query, not per candidate: the prepare
		// step boxes the rewritten query and analyzes its text (2), and
		// multi-token intersection stages lists per shard (4 shards
		// here). None of it scales with the 4096-doc corpus.
		{"term", Term{Field: "app", Value: "kernel"}, 0},
		{"match_single_token", Match{Text: "throttled"}, 2},
		{"match_multi_token", Match{Text: "temperature threshold"}, 24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := st.CountQuery(tc.q); got == 0 {
				t.Fatalf("query %v matched nothing; bad fixture", tc.q)
			}
			if n := testing.AllocsPerRun(100, func() {
				st.CountQuery(tc.q)
			}); n > tc.ceiling {
				t.Errorf("CountQuery(%v) allocs/op = %v, want <= %v", tc.q, n, tc.ceiling)
			}
		})
	}
}

// BenchmarkStoreIndexBatch measures the batched index path in isolation —
// the store-side half of the socket→store gap. Retention pruning runs
// off-clock, as a deployment's retention loop would, so the numbers
// reflect steady-state indexing rather than unbounded corpus growth.
func BenchmarkStoreIndexBatch(b *testing.B) {
	const batchSize = 128
	st := New(4)
	batch := make([]Doc, batchSize)
	for i := range batch {
		batch[i] = canonicalDoc(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.IndexBatch(batch)
		if st.Count() >= 1<<16 {
			b.StopTimer()
			st.DeleteBefore(time.Unix(1<<40, 0))
			st.Compact()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkStoreIndexSingle is the per-doc baseline the batch path is
// measured against: same docs, one lock round-trip per document.
func BenchmarkStoreIndexSingle(b *testing.B) {
	st := New(4)
	docs := make([]Doc, 1024)
	for i := range docs {
		docs[i] = canonicalDoc(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Index(docs[i%1024])
		if st.Count() >= 1<<16 {
			b.StopTimer()
			st.DeleteBefore(time.Unix(1<<40, 0))
			st.Compact()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}
