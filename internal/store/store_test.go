package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func doc(offset time.Duration, host, app, body string) Doc {
	return Doc{
		Time:   t0.Add(offset),
		Fields: F("hostname", host, "app", app),
		Body:   body,
	}
}

func seed(st *Store) {
	st.Index(doc(0, "cn101", "kernel", "CPU temperature above threshold, cpu clock throttled"))
	st.Index(doc(time.Minute, "cn102", "sshd", "Connection closed by 10.0.0.1 port 22 [preauth]"))
	st.Index(doc(2*time.Minute, "cn101", "slurmd", "error: Node cn101 has low real_memory size"))
	st.Index(doc(3*time.Minute, "cn103", "kernel", "usb 1-1: new high-speed USB device number 4"))
	st.Index(doc(4*time.Minute, "cn101", "kernel", "CPU 2 temperature above threshold, throttled"))
}

func TestAnalyze(t *testing.T) {
	got := Analyze("error: Node cn101 has low real_memory size (190000 < 256000)")
	want := []string{"error", "node", "cn101", "has", "low", "real_memory", "size", "190000", "256000"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Analyze = %v", got)
	}
}

func TestIndexAndGet(t *testing.T) {
	st := New(4)
	id := st.Index(doc(0, "cn1", "app", "hello world"))
	d, ok := st.Get(id)
	if !ok || d.Body != "hello world" || d.ID != id {
		t.Fatalf("Get = %+v, %v", d, ok)
	}
	if _, ok := st.Get(999); ok {
		t.Error("Get of absent id succeeded")
	}
	if _, ok := st.Get(-1); ok {
		t.Error("Get of negative id succeeded")
	}
}

func TestTermQuery(t *testing.T) {
	st := New(3)
	seed(st)
	hits := st.Search(SearchRequest{Query: Term{Field: "hostname", Value: "cn101"}, Size: -1})
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want 3", len(hits))
	}
	// Case-insensitive.
	hits = st.Search(SearchRequest{Query: Term{Field: "hostname", Value: "CN101"}, Size: -1})
	if len(hits) != 3 {
		t.Errorf("case-insensitive term = %d hits", len(hits))
	}
}

func TestMatchQuery(t *testing.T) {
	st := New(3)
	seed(st)
	hits := st.Search(SearchRequest{Query: Match{Text: "temperature throttled"}, Size: -1})
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	// Token absent from the index -> no hits.
	hits = st.Search(SearchRequest{Query: Match{Text: "temperature nonexistenttoken"}, Size: -1})
	if len(hits) != 0 {
		t.Errorf("impossible match returned %d hits", len(hits))
	}
}

func TestBoolQuery(t *testing.T) {
	st := New(3)
	seed(st)
	q := Bool{
		Must:    []Query{Term{Field: "hostname", Value: "cn101"}},
		MustNot: []Query{Match{Text: "real_memory"}},
	}
	hits := st.Search(SearchRequest{Query: q, Size: -1})
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	for _, h := range hits {
		if h.Doc.Fields.Value("app") != "kernel" {
			t.Errorf("unexpected hit: %+v", h.Doc)
		}
	}
	// Should semantics: at least one must match.
	q2 := Bool{Should: []Query{Match{Text: "usb"}, Match{Text: "preauth"}}}
	if got := len(st.Search(SearchRequest{Query: q2, Size: -1})); got != 2 {
		t.Errorf("should query hits = %d, want 2", got)
	}
}

func TestTimeRange(t *testing.T) {
	st := New(3)
	seed(st)
	q := TimeRange{From: t0.Add(time.Minute), To: t0.Add(3 * time.Minute)}
	hits := st.Search(SearchRequest{Query: q, Size: -1})
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2 (half-open interval)", len(hits))
	}
	// Open-ended range.
	if got := len(st.Search(SearchRequest{Query: TimeRange{From: t0.Add(2 * time.Minute)}, Size: -1})); got != 3 {
		t.Errorf("open range hits = %d, want 3", got)
	}
}

func TestSearchOrderingAndSize(t *testing.T) {
	st := New(2)
	seed(st)
	hits := st.Search(SearchRequest{Size: 2})
	if len(hits) != 2 {
		t.Fatalf("size cap ignored: %d", len(hits))
	}
	// Default: newest first.
	if !hits[0].Doc.Time.After(hits[1].Doc.Time) {
		t.Error("default order should be newest-first")
	}
	asc := st.Search(SearchRequest{Size: -1, SortAsc: true})
	for i := 1; i < len(asc); i++ {
		if asc[i].Doc.Time.Before(asc[i-1].Doc.Time) {
			t.Fatal("ascending order violated")
		}
	}
}

func TestCountQuery(t *testing.T) {
	st := New(3)
	seed(st)
	if got := st.CountQuery(Match{Text: "temperature"}); got != 2 {
		t.Errorf("CountQuery = %d", got)
	}
	if st.Count() != 5 {
		t.Errorf("Count = %d", st.Count())
	}
}

func TestDateHistogram(t *testing.T) {
	st := New(2)
	seed(st)
	buckets := st.DateHistogram(MatchAll{}, time.Minute)
	if len(buckets) != 5 {
		t.Fatalf("buckets = %d, want 5 contiguous minutes", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != 5 {
		t.Errorf("histogram total = %d", total)
	}
	// Empty result.
	if got := st.DateHistogram(Match{Text: "absent"}, time.Minute); got != nil {
		t.Errorf("empty histogram = %v", got)
	}
}

func TestDateHistogramIncludesEmptyBuckets(t *testing.T) {
	st := New(1)
	st.Index(doc(0, "a", "x", "one"))
	st.Index(doc(10*time.Minute, "a", "x", "two"))
	buckets := st.DateHistogram(MatchAll{}, time.Minute)
	if len(buckets) != 11 {
		t.Fatalf("buckets = %d, want 11", len(buckets))
	}
	empties := 0
	for _, b := range buckets {
		if b.Count == 0 {
			empties++
		}
	}
	if empties != 9 {
		t.Errorf("empty buckets = %d, want 9", empties)
	}
}

func TestTermsAggregation(t *testing.T) {
	st := New(3)
	seed(st)
	buckets := st.Terms(MatchAll{}, "hostname", 0)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Value != "cn101" || buckets[0].Count != 3 {
		t.Errorf("top bucket = %+v", buckets[0])
	}
	capped := st.Terms(MatchAll{}, "hostname", 1)
	if len(capped) != 1 {
		t.Errorf("size cap ignored: %d", len(capped))
	}
}

func TestConcurrentIndexAndSearch(t *testing.T) {
	st := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Index(doc(time.Duration(i)*time.Second, fmt.Sprintf("cn%d", g),
					"kernel", fmt.Sprintf("message %d from goroutine %d", i, g)))
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st.Search(SearchRequest{Query: Match{Text: "message"}, Size: 5})
			}
		}()
	}
	wg.Wait()
	if st.Count() != 800 {
		t.Errorf("Count = %d, want 800", st.Count())
	}
	// Every doc retrievable by id.
	for id := int64(0); id < 800; id++ {
		if _, ok := st.Get(id); !ok {
			t.Fatalf("doc %d missing", id)
		}
	}
}

func TestShardDistribution(t *testing.T) {
	st := New(4)
	for i := 0; i < 100; i++ {
		st.Index(doc(0, "h", "a", "b"))
	}
	for i, sh := range st.shards {
		sh.mu.RLock()
		n := len(sh.ents)
		sh.mu.RUnlock()
		if n != 25 {
			t.Errorf("shard %d has %d docs, want 25", i, n)
		}
	}
}

func BenchmarkIndex(b *testing.B) {
	st := New(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Index(doc(time.Duration(i)*time.Millisecond, "cn101", "kernel",
			"CPU temperature above threshold, cpu clock throttled"))
	}
}

func BenchmarkSearchMatch(b *testing.B) {
	st := New(4)
	for i := 0; i < 10000; i++ {
		st.Index(doc(time.Duration(i)*time.Second, fmt.Sprintf("cn%03d", i%128),
			"kernel", fmt.Sprintf("CPU %d temperature above threshold event %d", i%64, i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Search(SearchRequest{Query: Match{Text: "temperature threshold"}, Size: 10})
	}
}

// BenchmarkMatchEvaluation isolates the S-fix to Match.matches: the
// "naive" case re-analyzes the query text for every candidate document
// (the old behaviour, still reachable via direct matches calls), while
// "prepared" analyzes once per query as every store entry point now does.
func BenchmarkMatchEvaluation(b *testing.B) {
	docs := make([]Doc, 512)
	for i := range docs {
		docs[i] = doc(time.Duration(i)*time.Second, fmt.Sprintf("cn%03d", i%128),
			"kernel", fmt.Sprintf("CPU %d temperature above threshold event %d", i%64, i))
	}
	q := Match{Text: "Temperature Above Threshold"}
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range docs {
				q.matches(&docs[j])
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		p := prepareQuery(q)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range docs {
				p.matches(&docs[j])
			}
		}
	})
}

// BenchmarkAnalyzeInto contrasts the allocating Analyze with the
// scratch-reusing AnalyzeInto the indexing path now uses.
func BenchmarkAnalyzeInto(b *testing.B) {
	body := "error: Node cn101 has low real_memory size (190000 < 256000)"
	b.Run("Analyze", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Analyze(body)
		}
	})
	b.Run("AnalyzeInto", func(b *testing.B) {
		scratch := AnalyzeInto(body, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scratch = AnalyzeInto(body, scratch[:0])
		}
	})
}

// BenchmarkShardingFactor measures indexing throughput at different shard
// counts under concurrent writers (DESIGN.md ablation: sharding factor for
// indexing throughput).
func BenchmarkShardingFactor(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := New(shards)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					st.Index(doc(time.Duration(i)*time.Millisecond, "cn101", "kernel",
						"CPU temperature above threshold, cpu clock throttled"))
					i++
				}
			})
		})
	}
}
