package store

import (
	"sort"
	"time"
)

// HistogramBucket is one interval of a date histogram.
type HistogramBucket struct {
	Start time.Time `json:"start"`
	Count int       `json:"count"`
}

// DateHistogram counts matching documents per fixed interval — the
// message-volume-over-time view behind the §4.5.1 frequency analysis.
// Buckets are contiguous from the first to the last matching document;
// empty buckets in between are included so surges stand out.
func (st *Store) DateHistogram(q Query, interval time.Duration) []HistogramBucket {
	defer st.observeQuery(st.queryHist, st.queryStart())
	if q == nil {
		q = MatchAll{}
	}
	q = prepareQuery(q)
	if interval <= 0 {
		interval = time.Minute
	}
	counts := make(map[int64]int)
	var lo, hi int64
	first := true
	for _, sh := range st.shards {
		sh.mu.RLock()
		for i := range sh.docs {
			if sh.deleted(int32(i)) {
				continue
			}
			d := &sh.docs[i]
			if !q.matches(d) {
				continue
			}
			b := d.Time.UnixNano() / int64(interval)
			counts[b]++
			if first || b < lo {
				lo = b
			}
			if first || b > hi {
				hi = b
			}
			first = false
		}
		sh.mu.RUnlock()
	}
	if first {
		return nil
	}
	out := make([]HistogramBucket, 0, hi-lo+1)
	for b := lo; b <= hi; b++ {
		out = append(out, HistogramBucket{
			Start: time.Unix(0, b*int64(interval)).UTC(),
			Count: counts[b],
		})
	}
	return out
}

// TermBucket is one value of a terms aggregation.
type TermBucket struct {
	Value string `json:"value"`
	Count int    `json:"count"`
}

// Terms counts matching documents per distinct value of a metadata field,
// descending — "group syslog by node / by service" (§4.5.1).
func (st *Store) Terms(q Query, field string, size int) []TermBucket {
	defer st.observeQuery(st.queryTerms, st.queryStart())
	if q == nil {
		q = MatchAll{}
	}
	q = prepareQuery(q)
	counts := make(map[string]int)
	for _, sh := range st.shards {
		sh.mu.RLock()
		for i := range sh.docs {
			if sh.deleted(int32(i)) {
				continue
			}
			d := &sh.docs[i]
			if !q.matches(d) {
				continue
			}
			if v, ok := d.Fields.Get(field); ok {
				counts[v]++
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]TermBucket, 0, len(counts))
	for v, c := range counts {
		out = append(out, TermBucket{Value: v, Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	if size > 0 && len(out) > size {
		out = out[:size]
	}
	return out
}
