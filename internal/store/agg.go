package store

import (
	"sort"
	"time"
)

// HistogramBucket is one interval of a date histogram.
type HistogramBucket struct {
	Start time.Time `json:"start"`
	Count int       `json:"count"`
}

// MaxHistogramBuckets bounds how many contiguous buckets DateHistogram
// (and FillHistogram) will materialize. Without a bound, one document
// with a wild timestamp — e.g. a record whose timestamp failed to parse
// and stayed the zero time — plus a small interval would ask for billions
// of buckets and OOM the process from a single HTTP request. Past the
// bound the result degrades to the sparse form: non-empty buckets only.
const MaxHistogramBuckets = 100_000

// bucketIndex maps a document time onto the interval grid using floor
// division, so pre-1970 timestamps (negative Unix nanos) land in the
// bucket whose Start <= t < Start+interval instead of being shifted off
// the grid by Go's truncate-toward-zero division. Every node of a
// cluster computes the same grid, which is what lets per-node histograms
// merge by bucket Start.
func bucketIndex(t time.Time, interval time.Duration) int64 {
	return floorDiv(t.UnixNano(), int64(interval))
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// DateHistogram counts matching documents per fixed interval — the
// message-volume-over-time view behind the §4.5.1 frequency analysis.
// Buckets are contiguous from the first to the last matching document;
// empty buckets in between are included so surges stand out. When the
// span would exceed MaxHistogramBuckets the result is the sparse form
// (non-empty buckets only, still sorted), so a single stray timestamp
// cannot force a multi-GB allocation.
func (st *Store) DateHistogram(q Query, interval time.Duration) []HistogramBucket {
	return FillHistogram(st.DateHistogramSparse(q, interval), interval)
}

// DateHistogramSparse is DateHistogram without gap-filling: only
// non-empty buckets, ascending by Start. This is the merge-friendly form
// a cluster coordinator requests from each node — summing sparse buckets
// by Start and gap-filling once after the merge is both cheaper on the
// wire and immune to per-node span blowups.
func (st *Store) DateHistogramSparse(q Query, interval time.Duration) []HistogramBucket {
	defer st.observeQuery(st.queryHist, st.queryStart())
	if q == nil {
		q = MatchAll{}
	}
	q = prepareQuery(q)
	if interval <= 0 {
		interval = time.Minute
	}
	counts := make(map[int64]int)
	var d Doc
	d.Fields = make(Fields, 0, 16)
	for _, sh := range st.shards {
		sh.mu.RLock()
		for i := range sh.ents {
			if sh.deleted(int32(i)) {
				continue
			}
			sh.fillDoc(int32(i), &d)
			if !q.matches(&d) {
				continue
			}
			counts[bucketIndex(d.Time, interval)]++
		}
		sh.mu.RUnlock()
	}
	if len(counts) == 0 {
		return nil
	}
	out := make([]HistogramBucket, 0, len(counts))
	for b, c := range counts {
		out = append(out, HistogramBucket{
			Start: time.Unix(0, b*int64(interval)).UTC(),
			Count: c,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start.Before(out[b].Start) })
	return out
}

// FillHistogram materializes the contiguous gap-filled histogram from
// sparse non-empty buckets (ascending by Start, all on the same interval
// grid). When the span from first to last bucket would exceed
// MaxHistogramBuckets — or overflows outright — the sparse input is
// returned unchanged, bounding the allocation. It is exported so a
// cluster coordinator merging per-node sparse histograms applies exactly
// the same materialization rule as a single store.
func FillHistogram(sparse []HistogramBucket, interval time.Duration) []HistogramBucket {
	if len(sparse) == 0 {
		return nil
	}
	if interval <= 0 {
		interval = time.Minute
	}
	lo := bucketIndex(sparse[0].Start, interval)
	hi := bucketIndex(sparse[len(sparse)-1].Start, interval)
	span := hi - lo
	// span < 0 means hi-lo overflowed int64 (a zero-time doc next to a
	// current one at a tiny interval does exactly this).
	if span < 0 || span+1 > MaxHistogramBuckets || span+1 <= 0 {
		return sparse
	}
	out := make([]HistogramBucket, span+1)
	for i := range out {
		out[i].Start = time.Unix(0, (lo+int64(i))*int64(interval)).UTC()
	}
	for _, b := range sparse {
		out[bucketIndex(b.Start, interval)-lo].Count = b.Count
	}
	return out
}

// TermBucket is one value of a terms aggregation.
type TermBucket struct {
	Value string `json:"value"`
	Count int    `json:"count"`
}

// Terms counts matching documents per distinct value of a metadata field,
// descending — "group syslog by node / by service" (§4.5.1).
func (st *Store) Terms(q Query, field string, size int) []TermBucket {
	defer st.observeQuery(st.queryTerms, st.queryStart())
	if q == nil {
		q = MatchAll{}
	}
	q = prepareQuery(q)
	counts := make(map[string]int)
	var d Doc
	d.Fields = make(Fields, 0, 16)
	for _, sh := range st.shards {
		sh.mu.RLock()
		for i := range sh.ents {
			if sh.deleted(int32(i)) {
				continue
			}
			sh.fillDoc(int32(i), &d)
			if !q.matches(&d) {
				continue
			}
			// v is an arena view; retaining it as a map key (and later in
			// the returned TermBucket) is safe — the view pins its block.
			if v, ok := d.Fields.Get(field); ok {
				counts[v]++
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]TermBucket, 0, len(counts))
	for v, c := range counts {
		out = append(out, TermBucket{Value: v, Count: c})
	}
	SortTerms(out)
	if size > 0 && len(out) > size {
		out = out[:size]
	}
	return out
}

// SortTerms orders term buckets the way Terms returns them: count
// descending, then value ascending. Exported so merged multi-node terms
// are truncated under exactly the same order as a single store's.
func SortTerms(out []TermBucket) {
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
}
