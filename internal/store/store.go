// Package store implements "Tivan", the reproduction's stand-in for the
// paper's OpenSearch cluster (§4.2): a sharded in-process document store
// with an inverted index over message text and metadata fields, boolean and
// time-range queries, and the aggregations (date histogram, terms) that the
// monitoring views consume. Shards are searched in parallel.
package store

import (
	"fmt"
	"strings"
	"sync"
	"time"
	"unicode"

	"hetsyslog/internal/obs"
)

// Doc is one stored log record.
type Doc struct {
	ID   int64     `json:"id"`
	Time time.Time `json:"time"`
	// Fields holds exact-match metadata: hostname, app, severity,
	// facility, rack, arch, category, ...
	Fields map[string]string `json:"fields"`
	// Body is the free-text message content (analyzed).
	Body string `json:"body"`
}

// Analyze splits body text into lowercase search tokens. Letters, digits,
// underscores and dots form tokens (so "cn101", "real_memory" and IP
// fragments stay searchable).
func Analyze(s string) []string {
	return AnalyzeInto(s, nil)
}

// AnalyzeInto is Analyze appending into out — pass a reused scratch slice
// (truncated to len 0) and the call does not allocate a token slice, and
// tokens that are already lowercase ASCII (the common case for syslog
// bodies) are substrings of s rather than fresh ToLower copies.
func AnalyzeInto(s string, out []string) []string {
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, lowerToken(s[start:end]))
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(s))
	return out
}

// lowerToken lowercases a token, returning it unchanged (no copy) when it
// is already lowercase ASCII; any uppercase or non-ASCII byte defers to
// strings.ToLower for exact Unicode behaviour.
func lowerToken(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || ('A' <= c && c <= 'Z') {
			return strings.ToLower(s)
		}
	}
	return s
}

// shard is one index partition. All access goes through its lock.
type shard struct {
	mu   sync.RWMutex
	docs []Doc
	byID map[int64]int
	// body postings: token -> doc offsets (ascending, deduplicated)
	text map[string][]int32
	// field postings: "field\x00value" -> doc offsets
	field map[string][]int32
	// dead holds tombstoned offsets awaiting Compact.
	dead map[int32]struct{}
	// tokScratch is reused across indexLocked calls (always under the
	// write lock) so indexing does not allocate a token slice per doc.
	tokScratch []string
}

// deleted reports whether the offset is tombstoned. Caller holds a lock.
func (s *shard) deleted(off int32) bool {
	_, ok := s.dead[off]
	return ok
}

// tombstone marks an offset deleted. Caller holds the write lock.
func (s *shard) tombstone(off int32) {
	if s.dead == nil {
		s.dead = make(map[int32]struct{})
	}
	s.dead[off] = struct{}{}
}

func newShard() *shard {
	return &shard{
		byID:  make(map[int64]int),
		text:  make(map[string][]int32),
		field: make(map[string][]int32),
	}
}

func fieldKey(field, value string) string { return field + "\x00" + strings.ToLower(value) }

func (s *shard) index(d Doc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexLocked(d)
}

// indexLocked adds a document; the caller holds the write lock (or owns
// the shard exclusively, as Compact does).
func (s *shard) indexLocked(d Doc) {
	off := int32(len(s.docs))
	s.docs = append(s.docs, d)
	s.byID[d.ID] = int(off)
	s.tokScratch = AnalyzeInto(d.Body, s.tokScratch[:0])
	toks := s.tokScratch
	if len(toks) <= maxScanDedup {
		// Typical syslog bodies: a handful of tokens, so a nested scan
		// dedups without the per-doc map allocation.
		for i, tok := range toks {
			dup := false
			for _, prev := range toks[:i] {
				if prev == tok {
					dup = true
					break
				}
			}
			if !dup {
				s.text[tok] = append(s.text[tok], off)
			}
		}
	} else {
		seen := make(map[string]bool, len(toks))
		for _, tok := range toks {
			if !seen[tok] {
				seen[tok] = true
				s.text[tok] = append(s.text[tok], off)
			}
		}
	}
	for f, v := range d.Fields {
		k := fieldKey(f, v)
		s.field[k] = append(s.field[k], off)
	}
}

// maxScanDedup bounds the quadratic scan dedup during indexing; larger
// token lists (pathological mega-lines) fall back to a map.
const maxScanDedup = 128

// Store is the sharded index.
type Store struct {
	shards []*shard
	mu     sync.Mutex
	nextID int64

	// Observability (see Instrument). All fields are nil until a
	// registry is attached; obs metrics no-op on nil, and latency timing
	// is additionally gated so an uninstrumented store never calls
	// time.Now on the index or query paths.
	indexTotal  *obs.Counter
	indexLat    *obs.Histogram
	querySearch *obs.Counter
	queryCount  *obs.Counter
	queryHist   *obs.Counter
	queryTerms  *obs.Counter
	queryLat    *obs.Histogram
}

// Instrument publishes the store's metrics — index/query counters and
// latency histograms, plus a docs gauge — into r. Call it once, before
// concurrent use (typically right after New). A nil registry is a no-op.
func (st *Store) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	st.indexTotal = r.Counter("store_index_total", "documents indexed")
	st.indexLat = r.Histogram("store_index_seconds",
		"per-document index latency", obs.LatencyBuckets)
	st.querySearch = r.Counter(`store_query_total{op="search"}`,
		"queries served, by operation")
	st.queryCount = r.Counter(`store_query_total{op="count"}`,
		"queries served, by operation")
	st.queryHist = r.Counter(`store_query_total{op="datehist"}`,
		"queries served, by operation")
	st.queryTerms = r.Counter(`store_query_total{op="terms"}`,
		"queries served, by operation")
	st.queryLat = r.Histogram("store_query_seconds",
		"query latency across all operations", obs.LatencyBuckets)
	r.GaugeFunc("store_docs", "live documents in the index",
		func() int64 { return int64(st.Count()) })
}

// observeQuery records one query of the given op; it returns immediately
// when the store is uninstrumented.
func (st *Store) observeQuery(op *obs.Counter, start time.Time) {
	op.Inc()
	if st.queryLat != nil {
		st.queryLat.ObserveDuration(time.Since(start))
	}
}

// queryStart returns the wall clock only when latency is being measured,
// keeping time.Now off the uninstrumented path.
func (st *Store) queryStart() time.Time {
	if st.queryLat == nil {
		return time.Time{}
	}
	return time.Now()
}

// New creates a store with the given shard count (default 4 when n <= 0,
// matching a small OpenSearch deployment).
func New(nShards int) *Store {
	if nShards <= 0 {
		nShards = 4
	}
	st := &Store{shards: make([]*shard, nShards)}
	for i := range st.shards {
		st.shards[i] = newShard()
	}
	return st
}

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// Index stores a document and returns its assigned id. Documents are
// routed to shards round-robin by id, so time ranges spread evenly.
func (st *Store) Index(d Doc) int64 {
	var start time.Time
	if st.indexLat != nil {
		start = time.Now()
	}
	st.mu.Lock()
	id := st.nextID
	st.nextID++
	st.mu.Unlock()
	d.ID = id
	st.shards[id%int64(len(st.shards))].index(d)
	st.indexTotal.Inc()
	if st.indexLat != nil {
		st.indexLat.ObserveDuration(time.Since(start))
	}
	return id
}

// Get returns the document with the given id.
func (st *Store) Get(id int64) (Doc, bool) {
	if id < 0 || len(st.shards) == 0 {
		return Doc{}, false
	}
	sh := st.shards[id%int64(len(st.shards))]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	off, ok := sh.byID[id]
	if !ok || sh.deleted(int32(off)) {
		return Doc{}, false
	}
	return sh.docs[off], true
}

// Count returns the total number of indexed documents.
func (st *Store) Count() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		n += len(sh.docs) - len(sh.dead)
		sh.mu.RUnlock()
	}
	return n
}

// Stats summarizes the store.
type Stats struct {
	Docs      int `json:"docs"`
	Shards    int `json:"shards"`
	TextTerms int `json:"text_terms"`
}

// Stats reports document, shard and distinct-term counts.
func (st *Store) Stats() Stats {
	s := Stats{Shards: len(st.shards)}
	for _, sh := range st.shards {
		sh.mu.RLock()
		s.Docs += len(sh.docs) - len(sh.dead)
		s.TextTerms += len(sh.text)
		sh.mu.RUnlock()
	}
	return s
}

// String renders a short description.
func (st *Store) String() string {
	s := st.Stats()
	return fmt.Sprintf("tivan: %d docs across %d shards (%d terms)", s.Docs, s.Shards, s.TextTerms)
}
