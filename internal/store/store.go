// Package store implements "Tivan", the reproduction's stand-in for the
// paper's OpenSearch cluster (§4.2): a sharded in-process document store
// with an inverted index over message text and metadata fields, boolean and
// time-range queries, and the aggregations (date histogram, terms) that the
// monitoring views consume. Shards are searched in parallel.
//
// Storage is arena-backed (see arena.go): IndexBatch copies every retained
// byte — bodies and field strings — into shard-owned slabs, so callers keep
// ownership of everything they pass in. The syslog fast path leans on that:
// pooled messages are recycled right after indexing instead of detaching a
// fresh heap copy per record.
package store

import (
	"fmt"
	"strings"
	"sync"
	"time"
	"unicode"

	"hetsyslog/internal/obs"
)

// Doc is one stored log record. Docs passed to Index/IndexBatch are copied
// into the shard arenas — the store retains no reference to the caller's
// strings or Fields slice. Docs returned from queries hold stable views
// into those arenas (or fresh copies, for Search hits and Get).
type Doc struct {
	ID   int64     `json:"id"`
	Time time.Time `json:"time"`
	// Fields holds exact-match metadata: hostname, app, severity,
	// facility, rack, arch, category, ...
	Fields Fields `json:"fields"`
	// Body is the free-text message content (analyzed).
	Body string `json:"body"`
}

// Analyze splits body text into lowercase search tokens. Letters, digits,
// underscores and dots form tokens (so "cn101", "real_memory" and IP
// fragments stay searchable).
func Analyze(s string) []string {
	return AnalyzeInto(s, nil)
}

// AnalyzeInto is Analyze appending into out — pass a reused scratch slice
// (truncated to len 0) and the call does not allocate a token slice, and
// tokens that are already lowercase ASCII (the common case for syslog
// bodies) are substrings of s rather than fresh ToLower copies.
func AnalyzeInto(s string, out []string) []string {
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, lowerToken(s[start:end]))
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(s))
	return out
}

// analyzeRawInto splits s into tokens with AnalyzeInto's boundary rules
// but leaves case untouched, returning substrings of s. Match evaluation
// uses it to fold-compare candidate bodies without a ToLower copy per
// uppercase token.
func analyzeRawInto(s string, out []string) []string {
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, s[start:end])
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(s))
	return out
}

// lowerToken lowercases a token, returning it unchanged (no copy) when it
// is already lowercase ASCII; any uppercase or non-ASCII byte defers to
// strings.ToLower for exact Unicode behaviour.
func lowerToken(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || ('A' <= c && c <= 'Z') {
			return strings.ToLower(s)
		}
	}
	return s
}

// docEnt is a stored document's pointer-free representation: the id, the
// timestamp decomposed into (sec, nsec), the body span, and the range of
// this doc's entries in the shard's fieldSpans. One shard's corpus is
// therefore three flat pointer-less arrays (ents, fieldSpans, arena
// blocks) no matter how many documents it holds — the GC mark phase skips
// all of it, where the previous []Doc layout put four string headers plus
// a Fields slice per document on the scan queue.
type docEnt struct {
	id   int64
	sec  int64
	nsec int32
	body span
	fOff uint32
	fN   uint32
}

// fieldPair is one stored field: interned key and value spans.
type fieldPair struct {
	k span
	v span
}

// bodyEntry memoizes one distinct body: the interned body span and the
// resolved posting list of each deduplicated token. A memo hit indexes a
// document without copying the body again — the Zipf traffic shape the
// paper leans on (§4.4.1) stores each template's text exactly once.
type bodyEntry struct {
	body  span
	lists []*postings
}

// fieldEntry memoizes one distinct field pair: the interned key and value
// spans plus the pair's resolved posting list. A memo hit turns addField's
// steady state — three string-map probes (key intern, value intern,
// field-postings lookup) per field per document — into a single probe
// followed by two in-place appends.
type fieldEntry struct {
	k, v span
	post *postings
}

// shard is one index partition. All access goes through its lock.
type shard struct {
	mu sync.RWMutex
	// ents holds the stored documents; fieldSpans their field pairs,
	// contiguous per document. Both are pointer-free.
	ents       []docEnt
	fieldSpans []fieldPair
	// arena owns every retained byte: bodies, field keys and values.
	arena arena
	// body postings: token -> posting list
	text map[string]*postings
	// field postings: "field\x00lower(value)" -> posting list
	field map[string]*postings
	// bodyMemo caches each distinct body's interned span and resolved
	// posting lists, keyed by the arena-backed body view. Real syslog
	// traffic repeats a small set of message shapes (§4.4.1), so the
	// steady-state body insert skips the arena copy, tokenization and the
	// per-token map probes entirely: one lookup, then one in-place append
	// per list. Cleared wholesale when it reaches maxBodyMemo entries.
	bodyMemo map[string]bodyEntry
	// intern dedups field keys and values, keyed by the arena-backed view.
	// Syslog metadata draws from tiny vocabularies (hostnames, apps,
	// severities), so steady-state field storage is a map hit per pair.
	intern map[string]span
	// fieldMemo caches each distinct (key, value) pair's interned spans and
	// posting list, keyed by the exact-case "key\x00value" bytes (arena
	// view). It collapses the per-field triple map probe into one lookup —
	// on the profile that triple was the single largest consumer of the
	// index stage. Cleared wholesale at maxBodyMemo entries, like bodyMemo.
	fieldMemo map[string]fieldEntry
	// chunkBlocks backs the shard's posting chunks; nChunks is the global
	// allocation cursor (see arena.go). postBlocks/nPost do the same for
	// the postings headers themselves.
	chunkBlocks [][]pchunk
	nChunks     int32
	postBlocks  [][]postings
	nPost       int32
	// dead holds tombstoned offsets awaiting Compact.
	dead map[int32]struct{}
	// tokScratch, keyScratch and lowScratch are reused across indexLocked
	// calls (always under the write lock) so indexing allocates neither a
	// token slice nor a field-key string per doc: keyScratch stages the
	// exact-case memo key, lowScratch the folded postings key.
	tokScratch []string
	keyScratch []byte
	lowScratch []byte
	// memoHits/memoMisses count bodyMemo outcomes, for Stats.
	memoHits   int64
	memoMisses int64
}

// offByID locates a document's offset by binary search: ids are assigned
// monotonically and documents append in id order, so each shard's ents
// are sorted by ID. Read-path searches replace the per-doc byID map
// assignment that was pure overhead on the index hot path.
func (s *shard) offByID(id int64) (int, bool) {
	lo, hi := 0, len(s.ents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ents[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.ents) && s.ents[lo].id == id {
		return lo, true
	}
	return -1, false
}

// deleted reports whether the offset is tombstoned. Caller holds a lock.
func (s *shard) deleted(off int32) bool {
	_, ok := s.dead[off]
	return ok
}

// tombstone marks an offset deleted. Caller holds the write lock.
func (s *shard) tombstone(off int32) {
	if s.dead == nil {
		s.dead = make(map[int32]struct{})
	}
	s.dead[off] = struct{}{}
}

func newShard() *shard {
	return &shard{
		text:      make(map[string]*postings),
		field:     make(map[string]*postings),
		bodyMemo:  make(map[string]bodyEntry),
		intern:    make(map[string]span),
		fieldMemo: make(map[string]fieldEntry),
	}
}

// fillDoc materializes the document at off into d, reusing d.Fields'
// backing array. The strings are arena views — stable for the shard's
// lifetime, but d must not outlive the arena (i.e. survive past Compact);
// hot scan loops reuse one scratch Doc per query, and anything handed to
// a caller goes through docCopy instead.
func (s *shard) fillDoc(off int32, d *Doc) {
	e := &s.ents[off]
	d.ID = e.id
	d.Time = time.Unix(e.sec, int64(e.nsec)).UTC()
	d.Body = s.arena.view(e.body)
	fs := d.Fields[:0]
	for _, fp := range s.fieldSpans[e.fOff : e.fOff+uint32(e.fN)] {
		fs = append(fs, Field{K: s.arena.view(fp.k), V: s.arena.view(fp.v)})
	}
	d.Fields = fs
}

// docCopy materializes the document at off with a freshly allocated
// Fields slice, safe to hand outside the shard lock. The strings remain
// zero-copy arena views (immutable, alive as long as anything references
// them — each view retains its block).
func (s *shard) docCopy(off int32) Doc {
	e := &s.ents[off]
	var d Doc
	if e.fN > 0 {
		d.Fields = make(Fields, 0, e.fN)
	}
	s.fillDoc(off, &d)
	return d
}

// entBefore reports whether the document at off has Time < cutoff,
// straight off the stored (sec, nsec) pair — no Doc materialization.
func (s *shard) entBefore(off int32, cutSec int64, cutNsec int32) bool {
	e := &s.ents[off]
	return e.sec < cutSec || (e.sec == cutSec && e.nsec < cutNsec)
}

// appendFieldKey appends the field-postings key "field\x00lower(value)"
// to dst and returns it. ASCII values are lowercased byte-wise in place;
// a value with any non-ASCII byte defers to strings.ToLower for exact
// Unicode behaviour. Unlike the string concatenation it replaces, the
// common case allocates nothing: index inserts build into the shard's
// keyScratch, Term lookups into a stack buffer.
func appendFieldKey(dst []byte, field, value string) []byte {
	dst = append(dst, field...)
	dst = append(dst, 0)
	for i := 0; i < len(value); i++ {
		if value[i] >= 0x80 {
			return append(dst, strings.ToLower(value)...)
		}
	}
	for i := 0; i < len(value); i++ {
		c := value[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

func (s *shard) index(d Doc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexLocked(d)
}

// indexLocked adds a document, copying every retained byte into the
// shard's arena; the caller holds the write lock (or owns the shard
// exclusively, as Compact does) and keeps ownership of d's strings.
func (s *shard) indexLocked(d Doc) {
	off := int32(len(s.ents))
	e := docEnt{
		id:   d.ID,
		sec:  d.Time.Unix(),
		nsec: int32(d.Time.Nanosecond()),
		fOff: uint32(len(s.fieldSpans)),
		fN:   uint32(len(d.Fields)),
	}
	if be, ok := s.bodyMemo[d.Body]; ok {
		// Memoized body: reuse the interned text and the already-resolved
		// posting lists — no copy, no tokenization, no map probes.
		s.memoHits++
		e.body = be.body
		for _, p := range be.lists {
			s.postAppend(p, off)
		}
	} else {
		s.memoMisses++
		e.body = s.indexBody(d.Body, off)
	}
	for _, fv := range d.Fields {
		s.addField(fv.K, fv.V, off)
	}
	s.ents = append(s.ents, e)
}

// indexBody copies a body the shard has not memoized into the arena,
// analyzes it, adds its text postings, and memoizes the interned span and
// resolved lists for the repeats to come. Returns the body's span.
func (s *shard) indexBody(body string, off int32) span {
	bsp := s.arena.copy(body)
	view := s.arena.view(bsp)
	// Tokenize the arena view, not the caller's body: lowercase-ASCII
	// tokens are substrings, so new text-map keys alias arena bytes that
	// live as long as the map entry does.
	s.tokScratch = AnalyzeInto(view, s.tokScratch[:0])
	toks := s.tokScratch
	lists := make([]*postings, 0, len(toks))
	if len(toks) <= maxScanDedup {
		// Typical syslog bodies: a handful of tokens, so a nested scan
		// dedups without the per-doc map allocation.
		for i, tok := range toks {
			dup := false
			for _, prev := range toks[:i] {
				if prev == tok {
					dup = true
					break
				}
			}
			if !dup {
				lists = append(lists, s.addText(tok, off))
			}
		}
	} else {
		seen := make(map[string]bool, len(toks))
		for _, tok := range toks {
			if !seen[tok] {
				seen[tok] = true
				lists = append(lists, s.addText(tok, off))
			}
		}
	}
	if len(s.bodyMemo) >= maxBodyMemo {
		// Wholesale reset; the dropped entries' arena bytes stay reserved
		// until the next Compact rebuilds the shard.
		clear(s.bodyMemo)
	}
	s.bodyMemo[view] = bodyEntry{body: bsp, lists: lists}
	return bsp
}

// addText appends off to tok's body postings and returns the list. Only
// a brand-new term allocates (its posting list); a known term appends in
// place. The key may alias the document body's arena bytes (AnalyzeInto
// returns substrings), which is safe: the arena is append-only and lives
// as long as the map.
func (s *shard) addText(tok string, off int32) *postings {
	if p, ok := s.text[tok]; ok {
		s.postAppend(p, off)
		return p
	}
	p := s.newPostings()
	s.postAppend(p, off)
	s.text[tok] = p
	return p
}

// internStr returns an arena span holding v's bytes, copying them in only
// the first time a distinct value is seen.
func (s *shard) internStr(v string) span {
	if len(v) == 0 {
		return span{}
	}
	if sp, ok := s.intern[v]; ok {
		return sp
	}
	sp := s.arena.copy(v)
	s.intern[s.arena.view(sp)] = sp
	return sp
}

// appendRawFieldKey appends the exact-case memo key "field\x00value" to
// dst — two memmoves, no case folding, because the memo keys on the bytes
// as the caller sent them (two casings of one value memoize separately but
// share the fold-insensitive posting list).
func appendRawFieldKey(dst []byte, field, value string) []byte {
	dst = append(dst, field...)
	dst = append(dst, 0)
	return append(dst, value...)
}

// addField records the fieldPair and appends off to the field=value
// postings. The steady state — a pair the shard has already stored, i.e.
// every field of every canonical doc — is one fieldMemo probe and two
// in-place appends, allocation-free. Only a brand-new pair runs the full
// intern + fold + postings-map path, and both map keys it inserts are
// arena views, so even the miss path adds no standalone heap strings.
func (s *shard) addField(f, v string, off int32) {
	s.keyScratch = appendRawFieldKey(s.keyScratch[:0], f, v)
	if fe, ok := s.fieldMemo[string(s.keyScratch)]; ok {
		s.fieldSpans = append(s.fieldSpans, fieldPair{k: fe.k, v: fe.v})
		s.postAppend(fe.post, off)
		return
	}
	fe := fieldEntry{k: s.internStr(f), v: s.internStr(v)}
	s.lowScratch = appendFieldKey(s.lowScratch[:0], f, v)
	p, ok := s.field[string(s.lowScratch)]
	if !ok {
		p = s.newPostings()
		s.field[s.arena.view(s.arena.copyBytes(s.lowScratch))] = p
	}
	fe.post = p
	s.postAppend(p, off)
	s.fieldSpans = append(s.fieldSpans, fieldPair{k: fe.k, v: fe.v})
	if len(s.fieldMemo) >= maxBodyMemo {
		clear(s.fieldMemo)
	}
	s.fieldMemo[s.arena.view(s.arena.copyBytes(s.keyScratch))] = fe
}

// fieldPostings returns the posting list for field=value, building the
// key in a stack buffer so the Term query path does not allocate.
func (s *shard) fieldPostings(field, value string) *postings {
	var buf [64]byte
	k := appendFieldKey(buf[:0], field, value)
	return s.field[string(k)]
}

// maxScanDedup bounds the quadratic scan dedup during indexing; larger
// token lists (pathological mega-lines) fall back to a map.
const maxScanDedup = 128

// maxBodyMemo caps each shard's body memo (a few MB at worst); a shard
// seeing more distinct bodies than this drops the memo and rebuilds it
// from the traffic that follows.
const maxBodyMemo = 4096

// Store is the sharded index.
type Store struct {
	shards []*shard
	mu     sync.Mutex
	nextID int64

	// Observability (see Instrument). All fields are nil until a
	// registry is attached; obs metrics no-op on nil, and latency timing
	// is additionally gated so an uninstrumented store never calls
	// time.Now on the index or query paths.
	indexTotal    *obs.Counter
	indexLat      *obs.Histogram
	indexBatchLat *obs.Histogram
	querySearch   *obs.Counter
	queryCount    *obs.Counter
	queryHist     *obs.Counter
	queryTerms    *obs.Counter
	queryLat      *obs.Histogram
}

// Instrument publishes the store's metrics — index/query counters and
// latency histograms, plus docs and memory gauges — into r. Call it once,
// before concurrent use (typically right after New). A nil registry is a
// no-op.
func (st *Store) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	st.indexTotal = r.Counter("store_index_total", "documents indexed")
	st.indexLat = r.Histogram("store_index_seconds",
		"per-document index latency", obs.LatencyBuckets)
	st.indexBatchLat = r.Histogram("store_index_batch_seconds",
		"per-batch IndexBatch latency (the index stage of the per-stage profile)",
		obs.LatencyBuckets)
	st.querySearch = r.Counter(`store_query_total{op="search"}`,
		"queries served, by operation")
	st.queryCount = r.Counter(`store_query_total{op="count"}`,
		"queries served, by operation")
	st.queryHist = r.Counter(`store_query_total{op="datehist"}`,
		"queries served, by operation")
	st.queryTerms = r.Counter(`store_query_total{op="terms"}`,
		"queries served, by operation")
	st.queryLat = r.Histogram("store_query_seconds",
		"query latency across all operations", obs.LatencyBuckets)
	r.GaugeFunc("store_docs", "live documents in the index",
		func() int64 { return int64(st.Count()) })
	r.GaugeFunc("store_arena_bytes", "bytes reserved by the shard string arenas",
		func() int64 { return st.Stats().ArenaBytes })
	r.GaugeFunc("store_posting_chunks", "posting-list chunks allocated across shards",
		func() int64 { return st.Stats().PostingChunks })
	r.GaugeFuncFloat("store_body_memo_hit_ratio",
		"fraction of indexed docs whose body was already interned",
		func() float64 { return st.Stats().BodyMemoHitRatio() })
}

// observeQuery records one query of the given op; it returns immediately
// when the store is uninstrumented.
func (st *Store) observeQuery(op *obs.Counter, start time.Time) {
	op.Inc()
	if st.queryLat != nil {
		st.queryLat.ObserveDuration(time.Since(start))
	}
}

// queryStart returns the wall clock only when latency is being measured,
// keeping time.Now off the uninstrumented path.
func (st *Store) queryStart() time.Time {
	if st.queryLat == nil {
		return time.Time{}
	}
	return time.Now()
}

// New creates a store with the given shard count (default 4 when n <= 0,
// matching a small OpenSearch deployment).
func New(nShards int) *Store {
	if nShards <= 0 {
		nShards = 4
	}
	st := &Store{shards: make([]*shard, nShards)}
	for i := range st.shards {
		st.shards[i] = newShard()
	}
	return st
}

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// Index stores a document and returns its assigned id. Documents are
// routed to shards round-robin by id, so time ranges spread evenly. The
// caller keeps ownership of d's strings.
func (st *Store) Index(d Doc) int64 {
	var start time.Time
	if st.indexLat != nil {
		start = time.Now()
	}
	st.mu.Lock()
	id := st.nextID
	st.nextID++
	st.mu.Unlock()
	d.ID = id
	st.shards[id%int64(len(st.shards))].index(d)
	st.indexTotal.Inc()
	if st.indexLat != nil {
		st.indexLat.ObserveDuration(time.Since(start))
	}
	return id
}

// IndexBatch stores a batch of documents, assigning consecutive ids
// (written into the caller's slice: docs[i].ID = first + i), and returns
// the first id (-1 for an empty batch). One id-range reservation replaces
// len(docs) mutex acquisitions and each shard's write lock is taken once
// per batch instead of once per document, so a flushed pipeline batch
// reaches the postings with a handful of lock operations total.
//
// The store copies everything it retains, so when IndexBatch returns the
// caller may recycle the docs, their Fields slices, and the pooled
// messages whose slabs back the strings.
func (st *Store) IndexBatch(docs []Doc) (firstID int64) {
	if len(docs) == 0 {
		return -1
	}
	var start time.Time
	if st.indexBatchLat != nil {
		start = time.Now()
	}
	st.mu.Lock()
	firstID = st.nextID
	st.nextID += int64(len(docs))
	st.mu.Unlock()
	for i := range docs {
		docs[i].ID = firstID + int64(i)
	}
	nsh := int64(len(st.shards))
	if int64(len(docs)) >= parallelBatchMin*nsh && nsh > 1 {
		st.indexParallel(docs, firstID, nsh)
	} else {
		for si := int64(0); si < nsh && si < int64(len(docs)); si++ {
			st.indexStripe(docs, firstID, si, nsh)
		}
	}
	st.indexTotal.Add(int64(len(docs)))
	if st.indexBatchLat != nil {
		st.indexBatchLat.ObserveDuration(time.Since(start))
	}
	return firstID
}

// parallelBatchMin is the per-shard stripe size (docs per shard) at which
// IndexBatch fans the stripes out to goroutines instead of walking them
// serially.
const parallelBatchMin = 8

// indexParallel indexes the batch's shard stripes concurrently. Stripes
// share nothing — each touches exactly one shard under that shard's own
// lock — and per-shard doc order (ascending id) is preserved because one
// goroutine owns the whole stripe. It lives in its own function (not
// inline in IndexBatch) so the WaitGroup and goroutine closures, which
// escape, are only allocated when a batch is actually large enough to fan
// out; small flushes stay on IndexBatch's serial, allocation-free path.
func (st *Store) indexParallel(docs []Doc, firstID, nsh int64) {
	var wg sync.WaitGroup
	for si := int64(0); si < nsh; si++ {
		wg.Add(1)
		go func(si int64) {
			defer wg.Done()
			st.indexStripe(docs, firstID, si, nsh)
		}(si)
	}
	wg.Wait()
}

// indexStripe indexes every doc in the batch that routes to shard
// (firstID+si) % nsh — doc i routes to shard (firstID+i) % nsh, matching
// Index, so si is the smallest doc index landing on this shard.
func (st *Store) indexStripe(docs []Doc, firstID, si, nsh int64) {
	sh := st.shards[(firstID+si)%nsh]
	cnt := 0
	nf := 0
	for i := si; i < int64(len(docs)); i += nsh {
		cnt++
		nf += len(docs[i].Fields)
	}
	sh.mu.Lock()
	// Grow the flat arrays once for the whole batch share instead of
	// amortizing inside the append loops.
	if need := len(sh.ents) + cnt; need > cap(sh.ents) {
		grown := make([]docEnt, len(sh.ents), need+need/4)
		copy(grown, sh.ents)
		sh.ents = grown
	}
	if need := len(sh.fieldSpans) + nf; need > cap(sh.fieldSpans) {
		grown := make([]fieldPair, len(sh.fieldSpans), need+need/4)
		copy(grown, sh.fieldSpans)
		sh.fieldSpans = grown
	}
	for i := si; i < int64(len(docs)); i += nsh {
		sh.indexLocked(docs[i])
	}
	sh.mu.Unlock()
}

// Get returns the document with the given id.
func (st *Store) Get(id int64) (Doc, bool) {
	if id < 0 || len(st.shards) == 0 {
		return Doc{}, false
	}
	sh := st.shards[id%int64(len(st.shards))]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	off, ok := sh.offByID(id)
	if !ok || sh.deleted(int32(off)) {
		return Doc{}, false
	}
	return sh.docCopy(int32(off)), true
}

// Count returns the total number of indexed documents.
func (st *Store) Count() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		n += len(sh.ents) - len(sh.dead)
		sh.mu.RUnlock()
	}
	return n
}

// Stats summarizes the store, including the memory accounting the arena
// layout makes legible: slab reservation, posting-chunk count, and how
// often the body memo is absorbing repeats.
type Stats struct {
	Docs      int `json:"docs"`
	Shards    int `json:"shards"`
	TextTerms int `json:"text_terms"`
	// ArenaBytes is the total capacity reserved by the shard string
	// arenas (bodies, field keys/values).
	ArenaBytes int64 `json:"arena_bytes"`
	// PostingChunks is the number of fixed-size posting chunks allocated
	// across all shards (each postChunkLen doc offsets).
	PostingChunks int64 `json:"posting_chunks"`
	// BodyMemoHits/Misses count indexed docs whose body was/wasn't
	// already interned.
	BodyMemoHits   int64 `json:"body_memo_hits"`
	BodyMemoMisses int64 `json:"body_memo_misses"`
}

// BodyMemoHitRatio returns hits/(hits+misses), 0 when nothing indexed.
func (s Stats) BodyMemoHitRatio() float64 {
	tot := s.BodyMemoHits + s.BodyMemoMisses
	if tot == 0 {
		return 0
	}
	return float64(s.BodyMemoHits) / float64(tot)
}

// Stats reports document, shard, term and memory-accounting counts.
func (st *Store) Stats() Stats {
	s := Stats{Shards: len(st.shards)}
	for _, sh := range st.shards {
		sh.mu.RLock()
		s.Docs += len(sh.ents) - len(sh.dead)
		s.TextTerms += len(sh.text)
		s.ArenaBytes += sh.arena.reserved
		s.PostingChunks += int64(sh.nChunks)
		s.BodyMemoHits += sh.memoHits
		s.BodyMemoMisses += sh.memoMisses
		sh.mu.RUnlock()
	}
	return s
}

// String renders a short description.
func (st *Store) String() string {
	s := st.Stats()
	return fmt.Sprintf("tivan: %d docs across %d shards (%d terms)", s.Docs, s.Shards, s.TextTerms)
}
