// Package store implements "Tivan", the reproduction's stand-in for the
// paper's OpenSearch cluster (§4.2): a sharded in-process document store
// with an inverted index over message text and metadata fields, boolean and
// time-range queries, and the aggregations (date histogram, terms) that the
// monitoring views consume. Shards are searched in parallel.
package store

import (
	"fmt"
	"strings"
	"sync"
	"time"
	"unicode"

	"hetsyslog/internal/obs"
)

// Doc is one stored log record.
type Doc struct {
	ID   int64     `json:"id"`
	Time time.Time `json:"time"`
	// Fields holds exact-match metadata: hostname, app, severity,
	// facility, rack, arch, category, ...
	Fields Fields `json:"fields"`
	// Body is the free-text message content (analyzed).
	Body string `json:"body"`
}

// Analyze splits body text into lowercase search tokens. Letters, digits,
// underscores and dots form tokens (so "cn101", "real_memory" and IP
// fragments stay searchable).
func Analyze(s string) []string {
	return AnalyzeInto(s, nil)
}

// AnalyzeInto is Analyze appending into out — pass a reused scratch slice
// (truncated to len 0) and the call does not allocate a token slice, and
// tokens that are already lowercase ASCII (the common case for syslog
// bodies) are substrings of s rather than fresh ToLower copies.
func AnalyzeInto(s string, out []string) []string {
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, lowerToken(s[start:end]))
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(s))
	return out
}

// analyzeRawInto splits s into tokens with AnalyzeInto's boundary rules
// but leaves case untouched, returning substrings of s. Match evaluation
// uses it to fold-compare candidate bodies without a ToLower copy per
// uppercase token.
func analyzeRawInto(s string, out []string) []string {
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, s[start:end])
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(s))
	return out
}

// lowerToken lowercases a token, returning it unchanged (no copy) when it
// is already lowercase ASCII; any uppercase or non-ASCII byte defers to
// strings.ToLower for exact Unicode behaviour.
func lowerToken(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || ('A' <= c && c <= 'Z') {
			return strings.ToLower(s)
		}
	}
	return s
}

// postings is one term's posting list: doc offsets, ascending and
// deduplicated. The shard maps hold *postings so the steady-state insert
// — a term the index has already seen — is a map read plus an in-place
// append; the per-token map assignment it replaces (mapassign_faststr)
// was the single hottest call on the socket→store profile.
type postings struct {
	offs []int32
}

// shard is one index partition. All access goes through its lock.
type shard struct {
	mu   sync.RWMutex
	docs []Doc
	// body postings: token -> posting list
	text map[string]*postings
	// field postings: "field\x00lower(value)" -> posting list
	field map[string]*postings
	// bodyMemo caches the resolved posting lists of a body's deduplicated
	// tokens, keyed by the body text (the key aliases the copy retained in
	// docs). Real syslog traffic repeats a small set of message shapes
	// (§4.4.1), so the steady-state body insert skips tokenization and the
	// per-token map probes entirely: one lookup, then one in-place append
	// per list. Cleared wholesale when it reaches maxBodyMemo entries.
	bodyMemo map[string][]*postings
	// dead holds tombstoned offsets awaiting Compact.
	dead map[int32]struct{}
	// tokScratch and keyScratch are reused across indexLocked calls
	// (always under the write lock) so indexing allocates neither a token
	// slice nor a field-key string per doc.
	tokScratch []string
	keyScratch []byte
}

// offByID locates a document's offset by binary search: ids are assigned
// monotonically and documents append in id order, so each shard's docs
// are sorted by ID. Read-path searches replace the per-doc byID map
// assignment that was pure overhead on the index hot path.
func (s *shard) offByID(id int64) (int, bool) {
	lo, hi := 0, len(s.docs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.docs[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.docs) && s.docs[lo].ID == id {
		return lo, true
	}
	return -1, false
}

// deleted reports whether the offset is tombstoned. Caller holds a lock.
func (s *shard) deleted(off int32) bool {
	_, ok := s.dead[off]
	return ok
}

// tombstone marks an offset deleted. Caller holds the write lock.
func (s *shard) tombstone(off int32) {
	if s.dead == nil {
		s.dead = make(map[int32]struct{})
	}
	s.dead[off] = struct{}{}
}

func newShard() *shard {
	return &shard{
		text:     make(map[string]*postings),
		field:    make(map[string]*postings),
		bodyMemo: make(map[string][]*postings),
	}
}

// appendFieldKey appends the field-postings key "field\x00lower(value)"
// to dst and returns it. ASCII values are lowercased byte-wise in place;
// a value with any non-ASCII byte defers to strings.ToLower for exact
// Unicode behaviour. Unlike the string concatenation it replaces, the
// common case allocates nothing: index inserts build into the shard's
// keyScratch, Term lookups into a stack buffer.
func appendFieldKey(dst []byte, field, value string) []byte {
	dst = append(dst, field...)
	dst = append(dst, 0)
	for i := 0; i < len(value); i++ {
		if value[i] >= 0x80 {
			return append(dst, strings.ToLower(value)...)
		}
	}
	for i := 0; i < len(value); i++ {
		c := value[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

func (s *shard) index(d Doc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexLocked(d)
}

// indexLocked adds a document; the caller holds the write lock (or owns
// the shard exclusively, as Compact does).
func (s *shard) indexLocked(d Doc) {
	off := int32(len(s.docs))
	s.docs = append(s.docs, d)
	if lists, ok := s.bodyMemo[d.Body]; ok {
		// Memoized body: every token's posting list is already resolved.
		for _, p := range lists {
			p.offs = append(p.offs, off)
		}
	} else {
		s.indexBody(d.Body, off)
	}
	for _, fv := range d.Fields {
		s.addField(fv.K, fv.V, off)
	}
}

// indexBody analyzes a body the shard has not memoized, adds its text
// postings, and memoizes the resolved lists for the repeats to come.
func (s *shard) indexBody(body string, off int32) {
	s.tokScratch = AnalyzeInto(body, s.tokScratch[:0])
	toks := s.tokScratch
	lists := make([]*postings, 0, len(toks))
	if len(toks) <= maxScanDedup {
		// Typical syslog bodies: a handful of tokens, so a nested scan
		// dedups without the per-doc map allocation.
		for i, tok := range toks {
			dup := false
			for _, prev := range toks[:i] {
				if prev == tok {
					dup = true
					break
				}
			}
			if !dup {
				lists = append(lists, s.addText(tok, off))
			}
		}
	} else {
		seen := make(map[string]bool, len(toks))
		for _, tok := range toks {
			if !seen[tok] {
				seen[tok] = true
				lists = append(lists, s.addText(tok, off))
			}
		}
	}
	if len(s.bodyMemo) >= maxBodyMemo {
		clear(s.bodyMemo)
	}
	s.bodyMemo[body] = lists
}

// addText appends off to tok's body postings and returns the list. Only
// a brand-new term allocates (its posting list); a known term appends in
// place. The key may alias the document body (AnalyzeInto returns
// substrings), which is safe: the body itself is retained in s.docs for
// the shard's lifetime.
func (s *shard) addText(tok string, off int32) *postings {
	if p, ok := s.text[tok]; ok {
		p.offs = append(p.offs, off)
		return p
	}
	p := &postings{offs: []int32{off}}
	s.text[tok] = p
	return p
}

// addField appends off to the field=value postings, building the lookup
// key in the shard's scratch buffer. The steady-state insert — a
// field/value pair the index has seen before, i.e. every canonical doc —
// is allocation-free; only a new pair copies the key out of scratch.
func (s *shard) addField(f, v string, off int32) {
	s.keyScratch = appendFieldKey(s.keyScratch[:0], f, v)
	if p, ok := s.field[string(s.keyScratch)]; ok {
		p.offs = append(p.offs, off)
		return
	}
	s.field[string(s.keyScratch)] = &postings{offs: []int32{off}}
}

// fieldPostings returns the posting list for field=value, building the
// key in a stack buffer so the Term query path does not allocate.
func (s *shard) fieldPostings(field, value string) []int32 {
	var buf [64]byte
	k := appendFieldKey(buf[:0], field, value)
	if p, ok := s.field[string(k)]; ok {
		return p.offs
	}
	return nil
}

// maxScanDedup bounds the quadratic scan dedup during indexing; larger
// token lists (pathological mega-lines) fall back to a map.
const maxScanDedup = 128

// maxBodyMemo caps each shard's body memo (a few MB at worst); a shard
// seeing more distinct bodies than this drops the memo and rebuilds it
// from the traffic that follows.
const maxBodyMemo = 4096

// Store is the sharded index.
type Store struct {
	shards []*shard
	mu     sync.Mutex
	nextID int64

	// Observability (see Instrument). All fields are nil until a
	// registry is attached; obs metrics no-op on nil, and latency timing
	// is additionally gated so an uninstrumented store never calls
	// time.Now on the index or query paths.
	indexTotal    *obs.Counter
	indexLat      *obs.Histogram
	indexBatchLat *obs.Histogram
	querySearch   *obs.Counter
	queryCount    *obs.Counter
	queryHist     *obs.Counter
	queryTerms    *obs.Counter
	queryLat      *obs.Histogram
}

// Instrument publishes the store's metrics — index/query counters and
// latency histograms, plus a docs gauge — into r. Call it once, before
// concurrent use (typically right after New). A nil registry is a no-op.
func (st *Store) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	st.indexTotal = r.Counter("store_index_total", "documents indexed")
	st.indexLat = r.Histogram("store_index_seconds",
		"per-document index latency", obs.LatencyBuckets)
	st.indexBatchLat = r.Histogram("store_index_batch_seconds",
		"per-batch IndexBatch latency (the index stage of the per-stage profile)",
		obs.LatencyBuckets)
	st.querySearch = r.Counter(`store_query_total{op="search"}`,
		"queries served, by operation")
	st.queryCount = r.Counter(`store_query_total{op="count"}`,
		"queries served, by operation")
	st.queryHist = r.Counter(`store_query_total{op="datehist"}`,
		"queries served, by operation")
	st.queryTerms = r.Counter(`store_query_total{op="terms"}`,
		"queries served, by operation")
	st.queryLat = r.Histogram("store_query_seconds",
		"query latency across all operations", obs.LatencyBuckets)
	r.GaugeFunc("store_docs", "live documents in the index",
		func() int64 { return int64(st.Count()) })
}

// observeQuery records one query of the given op; it returns immediately
// when the store is uninstrumented.
func (st *Store) observeQuery(op *obs.Counter, start time.Time) {
	op.Inc()
	if st.queryLat != nil {
		st.queryLat.ObserveDuration(time.Since(start))
	}
}

// queryStart returns the wall clock only when latency is being measured,
// keeping time.Now off the uninstrumented path.
func (st *Store) queryStart() time.Time {
	if st.queryLat == nil {
		return time.Time{}
	}
	return time.Now()
}

// New creates a store with the given shard count (default 4 when n <= 0,
// matching a small OpenSearch deployment).
func New(nShards int) *Store {
	if nShards <= 0 {
		nShards = 4
	}
	st := &Store{shards: make([]*shard, nShards)}
	for i := range st.shards {
		st.shards[i] = newShard()
	}
	return st
}

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// Index stores a document and returns its assigned id. Documents are
// routed to shards round-robin by id, so time ranges spread evenly.
func (st *Store) Index(d Doc) int64 {
	var start time.Time
	if st.indexLat != nil {
		start = time.Now()
	}
	st.mu.Lock()
	id := st.nextID
	st.nextID++
	st.mu.Unlock()
	d.ID = id
	st.shards[id%int64(len(st.shards))].index(d)
	st.indexTotal.Inc()
	if st.indexLat != nil {
		st.indexLat.ObserveDuration(time.Since(start))
	}
	return id
}

// IndexBatch stores a batch of documents, assigning consecutive ids
// (written into the caller's slice: docs[i].ID = first + i), and returns
// the first id (-1 for an empty batch). One id-range reservation replaces
// len(docs) mutex acquisitions and each shard's write lock is taken once
// per batch instead of once per document, so a flushed pipeline batch
// reaches the postings with a handful of lock operations total.
func (st *Store) IndexBatch(docs []Doc) (firstID int64) {
	if len(docs) == 0 {
		return -1
	}
	var start time.Time
	if st.indexBatchLat != nil {
		start = time.Now()
	}
	st.mu.Lock()
	firstID = st.nextID
	st.nextID += int64(len(docs))
	st.mu.Unlock()
	for i := range docs {
		docs[i].ID = firstID + int64(i)
	}
	nsh := int64(len(st.shards))
	for si := int64(0); si < nsh && si < int64(len(docs)); si++ {
		// Doc i routes to shard (firstID+i) % nsh, matching Index; si is
		// the smallest doc index landing on this shard.
		sh := st.shards[(firstID+si)%nsh]
		cnt := (len(docs) - int(si) + int(nsh) - 1) / int(nsh)
		sh.mu.Lock()
		// Grow the docs slice once for the whole batch share instead of
		// amortizing inside the append loop.
		if need := len(sh.docs) + cnt; need > cap(sh.docs) {
			grown := make([]Doc, len(sh.docs), need+need/4)
			copy(grown, sh.docs)
			sh.docs = grown
		}
		for i := si; i < int64(len(docs)); i += nsh {
			sh.indexLocked(docs[i])
		}
		sh.mu.Unlock()
	}
	st.indexTotal.Add(int64(len(docs)))
	if st.indexBatchLat != nil {
		st.indexBatchLat.ObserveDuration(time.Since(start))
	}
	return firstID
}

// Get returns the document with the given id.
func (st *Store) Get(id int64) (Doc, bool) {
	if id < 0 || len(st.shards) == 0 {
		return Doc{}, false
	}
	sh := st.shards[id%int64(len(st.shards))]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	off, ok := sh.offByID(id)
	if !ok || sh.deleted(int32(off)) {
		return Doc{}, false
	}
	return sh.docs[off], true
}

// Count returns the total number of indexed documents.
func (st *Store) Count() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		n += len(sh.docs) - len(sh.dead)
		sh.mu.RUnlock()
	}
	return n
}

// Stats summarizes the store.
type Stats struct {
	Docs      int `json:"docs"`
	Shards    int `json:"shards"`
	TextTerms int `json:"text_terms"`
}

// Stats reports document, shard and distinct-term counts.
func (st *Store) Stats() Stats {
	s := Stats{Shards: len(st.shards)}
	for _, sh := range st.shards {
		sh.mu.RLock()
		s.Docs += len(sh.docs) - len(sh.dead)
		s.TextTerms += len(sh.text)
		sh.mu.RUnlock()
	}
	return s
}

// String renders a short description.
func (st *Store) String() string {
	s := st.Stats()
	return fmt.Sprintf("tivan: %d docs across %d shards (%d terms)", s.Docs, s.Shards, s.TextTerms)
}
