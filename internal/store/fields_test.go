package store

import (
	"encoding/json"
	"testing"
)

func TestFieldsGetSetValue(t *testing.T) {
	fs := F("app", "sshd", "severity", "err")
	if v, ok := fs.Get("app"); !ok || v != "sshd" {
		t.Errorf("Get(app) = %q, %v", v, ok)
	}
	if v, ok := fs.Get("missing"); ok || v != "" {
		t.Errorf("Get(missing) = %q, %v", v, ok)
	}
	if fs.Value("severity") != "err" || fs.Value("missing") != "" {
		t.Errorf("Value lookups wrong: %v", fs)
	}
	fs = fs.Set("severity", "warning")
	if len(fs) != 2 || fs.Value("severity") != "warning" {
		t.Errorf("Set should replace in place: %v", fs)
	}
	fs = fs.Set("hostname", "cn101")
	if len(fs) != 3 || fs.Value("hostname") != "cn101" {
		t.Errorf("Set should append new keys: %v", fs)
	}
}

func TestFieldsFDuplicatesAndPanic(t *testing.T) {
	// Later duplicates overwrite earlier ones, matching the map literals
	// F replaced.
	fs := F("app", "sshd", "app", "kernel")
	if len(fs) != 1 || fs.Value("app") != "kernel" {
		t.Errorf("duplicate key handling: %v", fs)
	}
	defer func() {
		if recover() == nil {
			t.Error("F with odd argument count should panic")
		}
	}()
	F("orphan")
}

// TestFieldsJSONWireCompat pins the serialized form to the JSON object
// the old map[string]string representation produced, so snapshots written
// before the slice redesign load unchanged and HTTP API clients see no
// difference.
func TestFieldsJSONWireCompat(t *testing.T) {
	d := Doc{ID: 7, Fields: F("b", "2", "a", "1"), Body: "x"}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `"fields":{"a":"1","b":"2"}`
	if got := string(data); !containsStr(got, want) {
		t.Errorf("marshaled doc %s missing %s", got, want)
	}

	// The legacy object form (any member order) unmarshals back.
	var fs Fields
	if err := json.Unmarshal([]byte(`{"hostname":"cn1","app":"sshd"}`), &fs); err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs.Value("hostname") != "cn1" || fs.Value("app") != "sshd" {
		t.Errorf("unmarshal: %v", fs)
	}

	// Round trip.
	var back Doc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fields.Value("a") != "1" || back.Fields.Value("b") != "2" {
		t.Errorf("round trip: %v", back.Fields)
	}

	// Empty fields stay an object, not null.
	data, err = json.Marshal(Doc{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(string(data), `"fields":{}`) {
		t.Errorf("empty fields serialized as %s", data)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
