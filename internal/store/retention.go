package store

import "time"

// The paper's deployment ingests >30M records/month (§4.2); bounded disk
// means bounded retention. Deletion uses tombstones: deleted documents
// stay in the postings until Compact rebuilds the shard, but are filtered
// from every read path.

// DeleteBefore tombstones all documents older than cutoff and returns how
// many were marked.
func (st *Store) DeleteBefore(cutoff time.Time) int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		for i := range sh.docs {
			if !sh.deleted(int32(i)) && sh.docs[i].Time.Before(cutoff) {
				sh.tombstone(int32(i))
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Delete tombstones one document by id; it reports whether the document
// existed and was live.
func (st *Store) Delete(id int64) bool {
	if id < 0 || len(st.shards) == 0 {
		return false
	}
	sh := st.shards[id%int64(len(st.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	off, ok := sh.offByID(id)
	if !ok || sh.deleted(int32(off)) {
		return false
	}
	sh.tombstone(int32(off))
	return true
}

// Deleted returns the number of tombstoned documents awaiting compaction.
func (st *Store) Deleted() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		n += len(sh.dead)
		sh.mu.RUnlock()
	}
	return n
}

// Compact rebuilds every shard without its tombstoned documents,
// reclaiming postings memory. Document ids are preserved.
func (st *Store) Compact() {
	for _, sh := range st.shards {
		sh.mu.Lock()
		if len(sh.dead) == 0 {
			sh.mu.Unlock()
			continue
		}
		live := make([]Doc, 0, len(sh.docs)-len(sh.dead))
		for i := range sh.docs {
			if !sh.deleted(int32(i)) {
				live = append(live, sh.docs[i])
			}
		}
		fresh := newShard()
		for _, d := range live {
			fresh.indexLocked(d)
		}
		sh.docs = fresh.docs
		sh.text = fresh.text
		sh.field = fresh.field
		sh.bodyMemo = fresh.bodyMemo
		sh.dead = nil
		sh.mu.Unlock()
	}
}
