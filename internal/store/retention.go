package store

import "time"

// The paper's deployment ingests >30M records/month (§4.2); bounded disk
// means bounded retention. Deletion uses tombstones: deleted documents
// stay in the postings until Compact rebuilds the shard, but are filtered
// from every read path.

// DeleteBefore tombstones all documents older than cutoff and returns how
// many were marked.
func (st *Store) DeleteBefore(cutoff time.Time) int {
	cutSec, cutNsec := cutoff.Unix(), int32(cutoff.Nanosecond())
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		for i := range sh.ents {
			if !sh.deleted(int32(i)) && sh.entBefore(int32(i), cutSec, cutNsec) {
				sh.tombstone(int32(i))
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Delete tombstones one document by id; it reports whether the document
// existed and was live.
func (st *Store) Delete(id int64) bool {
	if id < 0 || len(st.shards) == 0 {
		return false
	}
	sh := st.shards[id%int64(len(st.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	off, ok := sh.offByID(id)
	if !ok || sh.deleted(int32(off)) {
		return false
	}
	sh.tombstone(int32(off))
	return true
}

// Deleted returns the number of tombstoned documents awaiting compaction.
func (st *Store) Deleted() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		n += len(sh.dead)
		sh.mu.RUnlock()
	}
	return n
}

// Compact rebuilds every shard without its tombstoned documents,
// reclaiming postings, arena and interning memory (this is also the only
// point where arena bytes orphaned by bodyMemo resets are released).
// Document ids are preserved.
//
// The rebuild recycles everything it does not read: the map buckets
// (cleared, not reallocated) and the chunk and postings blocks (rewritten
// in place — the rebuild walks ents and the arena, never the old posting
// lists). Only byte arenas are always replaced, because handed-out query
// results hold string views into the old blocks and those must stay
// immutable. Under a steady retention cycle — delete the expired window,
// compact, keep ingesting — a shard therefore reaches a fixed set of
// allocations and reuses it forever.
func (st *Store) Compact() {
	for _, sh := range st.shards {
		sh.mu.Lock()
		sh.compactLocked()
		sh.mu.Unlock()
	}
}

// compactLocked rebuilds one shard without its tombstoned documents; the
// caller holds the write lock.
func (sh *shard) compactLocked() {
	if len(sh.dead) == 0 {
		return
	}
	live := len(sh.ents) - len(sh.dead)
	if live == 0 {
		// Everything expired at once — the common shape when retention
		// fires on a quiet shard. Reset in place: no rebuild loop, no
		// fresh maps, no new blocks.
		sh.ents = sh.ents[:0]
		sh.fieldSpans = sh.fieldSpans[:0]
		sh.arena = arena{}
		clear(sh.text)
		clear(sh.field)
		clear(sh.bodyMemo)
		clear(sh.intern)
		clear(sh.fieldMemo)
		sh.nChunks = 0
		sh.nPost = 0
		sh.dead = nil
		return
	}
	// Re-index each live doc into a fresh shard through a scratch Doc:
	// indexLocked copies every retained byte into the fresh arena, so the
	// scratch's views into the old arena are read-only inputs. The fresh
	// shard adopts the old shard's maps (cleared) and block storage — the
	// rebuild never reads the old postings, only ents and the arena.
	clear(sh.text)
	clear(sh.field)
	clear(sh.bodyMemo)
	clear(sh.intern)
	clear(sh.fieldMemo)
	fresh := &shard{
		ents:        make([]docEnt, 0, live),
		text:        sh.text,
		field:       sh.field,
		bodyMemo:    sh.bodyMemo,
		intern:      sh.intern,
		fieldMemo:   sh.fieldMemo,
		chunkBlocks: sh.chunkBlocks,
		postBlocks:  sh.postBlocks,
		tokScratch:  sh.tokScratch,
		keyScratch:  sh.keyScratch,
		lowScratch:  sh.lowScratch,
	}
	var d Doc
	d.Fields = make(Fields, 0, 16)
	for i := range sh.ents {
		if sh.deleted(int32(i)) {
			continue
		}
		sh.fillDoc(int32(i), &d)
		fresh.indexLocked(d)
	}
	sh.ents = fresh.ents
	sh.fieldSpans = fresh.fieldSpans
	sh.arena = fresh.arena
	sh.chunkBlocks = fresh.chunkBlocks
	sh.nChunks = fresh.nChunks
	sh.postBlocks = fresh.postBlocks
	sh.nPost = fresh.nPost
	sh.tokScratch = fresh.tokScratch
	sh.keyScratch = fresh.keyScratch
	sh.lowScratch = fresh.lowScratch
	sh.dead = nil
}
