package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Field is one key/value metadata pair on a document.
type Field struct {
	K string
	V string
}

// Fields holds a document's exact-match metadata as a flat key/value
// list. Docs carry a handful of fields (hostname, app, severity, rack,
// category, ...) and are retained for the store's lifetime, so a slice
// beats the map it replaced on every axis that matters here: one
// contiguous backing allocation instead of a header plus hash buckets, no
// per-key hashing when a record is converted to a Doc, linear scans that
// outrun map probes at this size, and far less garbage-collector mark
// work multiplied across millions of live documents.
//
// Keys are unique when built through Set / F / RecordToDoc; Get returns
// the first match, so a hand-built list with duplicate keys behaves as if
// later duplicates were absent.
type Fields []Field

// Get returns the value for key k and whether it is present.
func (fs Fields) Get(k string) (string, bool) {
	for i := range fs {
		if fs[i].K == k {
			return fs[i].V, true
		}
	}
	return "", false
}

// Value returns the value for key k, or "" when the key is absent.
func (fs Fields) Value(k string) string {
	v, _ := fs.Get(k)
	return v
}

// Set replaces k's value in place, or appends the pair if k is absent,
// and returns the (possibly grown) slice — append-style usage:
//
//	d.Fields = d.Fields.Set("category", cat)
func (fs Fields) Set(k, v string) Fields {
	for i := range fs {
		if fs[i].K == k {
			fs[i].V = v
			return fs
		}
	}
	return append(fs, Field{K: k, V: v})
}

// F builds Fields from alternating key/value pairs:
//
//	store.F("app", "sshd", "severity", "err")
//
// It panics on an odd argument count; later duplicates overwrite earlier
// ones, matching the map literals it replaces.
func F(kv ...string) Fields {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("store.F: odd argument count %d", len(kv)))
	}
	fs := make(Fields, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		fs = fs.Set(kv[i], kv[i+1])
	}
	return fs
}

// MarshalJSON renders the JSON object form {"key":"value", ...} with
// sorted keys, keeping snapshots and the HTTP API wire-compatible with
// the map representation Fields replaced.
func (fs Fields) MarshalJSON() ([]byte, error) {
	if len(fs) == 0 {
		return []byte("{}"), nil
	}
	sorted := make(Fields, len(fs))
	copy(sorted, fs)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].K < sorted[b].K })
	var b bytes.Buffer
	b.WriteByte('{')
	for i := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		k, err := json.Marshal(sorted[i].K)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(sorted[i].V)
		if err != nil {
			return nil, err
		}
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON accepts the JSON object form and rebuilds the list with
// sorted keys (object member order is not significant in JSON).
func (fs *Fields) UnmarshalJSON(data []byte) error {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	out := make(Fields, 0, len(m))
	for k, v := range m {
		out = append(out, Field{K: k, V: v})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].K < out[b].K })
	*fs = out
	return nil
}
