package store

import (
	"math/bits"
	"unsafe"
)

// This file is the store's memory substrate: append-only byte arenas that
// own every retained string, and chunked posting lists that grow without
// copying. Together they make the retained corpus pointer-free — the GC
// sees a handful of large pointer-less arrays per shard instead of
// millions of per-document string headers — and they let the ingest path
// copy each incoming document's bytes exactly once (or zero times, when
// the body and field values are already interned), so the syslog server
// can recycle its pooled messages the moment a batch is indexed.

// span addresses one immutable byte string inside a shard's arena. The
// zero span is the empty string.
type span struct {
	block uint32
	off   uint32
	n     uint32
}

// arenaBlockSize is the capacity of one arena block. Blocks are allocated
// at full capacity and never grown in place, so a string view into a block
// stays valid for the arena's lifetime.
const arenaBlockSize = 64 * 1024

// arenaOversize is the threshold above which a string gets a dedicated
// block instead of being packed into the shared tail block, bounding the
// space a huge value can strand at the end of a partially-filled block.
const arenaOversize = arenaBlockSize / 4

// arena is an append-only byte allocator. Strings are copied in once and
// read back as zero-copy views; nothing is ever freed individually —
// reclamation happens wholesale when Compact rebuilds the shard.
type arena struct {
	blocks   [][]byte
	reserved int64 // total capacity across blocks, for Stats
}

// copy appends s to the arena and returns its span. The returned span's
// bytes never move: blocks are allocated at final capacity, and growing
// the outer blocks slice copies only slice headers.
func (a *arena) copy(s string) span {
	if len(s) == 0 {
		return span{}
	}
	if len(s) >= arenaOversize {
		b := make([]byte, len(s))
		copy(b, s)
		a.blocks = append(a.blocks, b)
		a.reserved += int64(len(s))
		return span{block: uint32(len(a.blocks) - 1), n: uint32(len(s))}
	}
	tail := len(a.blocks) - 1
	if tail < 0 || cap(a.blocks[tail])-len(a.blocks[tail]) < len(s) {
		a.blocks = append(a.blocks, make([]byte, 0, arenaBlockSize))
		a.reserved += arenaBlockSize
		tail = len(a.blocks) - 1
	}
	off := len(a.blocks[tail])
	a.blocks[tail] = append(a.blocks[tail], s...)
	return span{block: uint32(tail), off: uint32(off), n: uint32(len(s))}
}

// copyBytes is copy for a byte-slice source — used where the string to
// retain was assembled in a scratch buffer (field-postings keys), so
// interning it does not first materialize a heap string.
func (a *arena) copyBytes(b []byte) span {
	if len(b) == 0 {
		return span{}
	}
	return a.copy(unsafe.String(&b[0], len(b)))
}

// view returns the string addressed by sp without copying. The bytes are
// immutable (the arena is append-only), so the view is safe to hand out
// and retains the block it points into for as long as the string lives.
func (a *arena) view(sp span) string {
	if sp.n == 0 {
		return ""
	}
	return unsafe.String(&a.blocks[sp.block][sp.off], int(sp.n))
}

// postChunkLen is the number of doc offsets per posting chunk. 16 keeps a
// chunk at 68 bytes — one cache line plus a tail — so a rare term strands
// little space while a popular term's iteration still touches one chunk
// header per 16 candidates. Must stay a power of two (the slot arithmetic
// compiles to a mask).
const postChunkLen = 16

// pchunk is one fixed-size block of a posting list: up to postChunkLen
// doc offsets plus the global index of the next chunk (-1 at the tail).
// It contains no pointers, so the GC never scans posting data.
type pchunk struct {
	next  int32
	elems [postChunkLen]int32
}

// chunkBlockMin is the chunk count of the first chunk block; block b
// holds chunkBlockMin<<b chunks. Capacity doubles like an appending slice
// — so steady-state allocation is amortized away, which the zero-alloc
// index ceilings rely on — but existing chunks never move: growth links a
// fresh block instead of copying a multi-MB array, the failure mode the
// per-term doubling slices this replaces had on popular terms.
const chunkBlockMin = 512

// postings is one term's posting list: doc offsets ascending and
// deduplicated, stored as a linked list of fixed chunks. The steady-state
// append — a term the index has seen before — writes one int32 into the
// tail chunk; only every postChunkLen-th append links a new chunk.
type postings struct {
	head  int32
	tail  int32
	count int32
}

// postBlockMin is the postings count of the first postings block; block b
// holds postBlockMin<<b structs, mirroring the chunk-block geometry.
const postBlockMin = 256

// newPostings hands out the next postings header from the shard's postings
// blocks. Headers used to be individual 12-byte heap objects — one per
// distinct term, tens of thousands per shard, every one of them a GC mark
// target; block allocation makes them amortized-free to create and lets
// Compact recycle the whole population by resetting one cursor.
func (s *shard) newPostings() *postings {
	idx := s.nPost
	b := len(s.postBlocks)
	if int64(idx) == int64(postBlockMin)*((1<<b)-1) {
		s.postBlocks = append(s.postBlocks, make([]postings, postBlockMin<<b))
	}
	s.nPost++
	q := uint32(idx)/postBlockMin + 1
	bb := bits.Len32(q) - 1
	off := uint32(idx) - postBlockMin*((1<<bb)-1)
	p := &s.postBlocks[bb][off]
	*p = postings{head: -1, tail: -1}
	return p
}

// newChunk hands out the next free chunk, growing the block list when the
// current capacity is exhausted.
func (s *shard) newChunk() int32 {
	idx := s.nChunks
	b := len(s.chunkBlocks)
	if int64(idx) == int64(chunkBlockMin)*((1<<b)-1) {
		s.chunkBlocks = append(s.chunkBlocks, make([]pchunk, chunkBlockMin<<b))
	}
	s.nChunks++
	c := s.chunkAt(idx)
	c.next = -1
	return idx
}

// chunkAt resolves a global chunk index to its chunk. With block b sized
// chunkBlockMin<<b, the cumulative capacity below block b is
// chunkBlockMin*(2^b - 1), so the block is one bit-length computation —
// no per-block search, no bounds walk.
func (s *shard) chunkAt(idx int32) *pchunk {
	q := uint32(idx)/chunkBlockMin + 1
	b := bits.Len32(q) - 1
	off := uint32(idx) - chunkBlockMin*((1<<b)-1)
	return &s.chunkBlocks[b][off]
}

// postAppend appends a doc offset to p.
func (s *shard) postAppend(p *postings, off int32) {
	slot := p.count % postChunkLen
	if slot == 0 {
		nc := s.newChunk()
		if p.count == 0 {
			p.head = nc
		} else {
			s.chunkAt(p.tail).next = nc
		}
		p.tail = nc
	}
	s.chunkAt(p.tail).elems[slot] = off
	p.count++
}

// postIter walks a posting list in insertion (ascending-offset) order. It
// is the one iterator every read path shares: Search/Count candidates,
// intersection staging, and the aggregations' candidate-driven scans all
// consume postings through it.
type postIter struct {
	s     *shard
	chunk *pchunk
	pos   int32
	count int32
}

// postIterate returns an iterator over p. Caller holds a shard lock.
func (s *shard) postIterate(p *postings) postIter {
	it := postIter{s: s, count: p.count}
	if p.count > 0 {
		it.chunk = s.chunkAt(p.head)
	}
	return it
}

// next returns the next doc offset, or ok=false when exhausted.
func (it *postIter) next() (int32, bool) {
	if it.pos >= it.count {
		return 0, false
	}
	slot := it.pos % postChunkLen
	v := it.chunk.elems[slot]
	it.pos++
	if slot == postChunkLen-1 && it.pos < it.count {
		it.chunk = it.s.chunkAt(it.chunk.next)
	}
	return v, true
}

// appendPostings materializes p into dst (reused scratch), chunk by chunk.
func (s *shard) appendPostings(dst []int32, p *postings) []int32 {
	if p == nil || p.count == 0 {
		return dst
	}
	remaining := p.count
	ci := p.head
	for remaining > 0 {
		c := s.chunkAt(ci)
		n := remaining
		if n > postChunkLen {
			n = postChunkLen
		}
		dst = append(dst, c.elems[:n]...)
		remaining -= n
		ci = c.next
	}
	return dst
}

// intersectIter intersects an already-materialized ascending candidate
// list with a posting list, appending matches to dst — the merge step of
// multi-token Match evaluation, walking the chunked list once without
// materializing it.
func (s *shard) intersectIter(acc []int32, p *postings, dst []int32) []int32 {
	it := s.postIterate(p)
	v, ok := it.next()
	for i := 0; i < len(acc) && ok; {
		switch {
		case acc[i] < v:
			i++
		case acc[i] > v:
			v, ok = it.next()
		default:
			dst = append(dst, v)
			i++
			v, ok = it.next()
		}
	}
	return dst
}
