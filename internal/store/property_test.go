package store

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// randomStore fills a store with random docs drawn from a small vocabulary
// so queries have interesting selectivity.
func randomStore(rng *rand.Rand, n int) *Store {
	st := New(1 + rng.Intn(6))
	words := []string{"cpu", "temperature", "throttled", "usb", "device",
		"connection", "closed", "memory", "error", "node", "sensor", "fan"}
	hosts := []string{"cn001", "cn002", "cn003"}
	apps := []string{"kernel", "sshd", "slurmd"}
	for i := 0; i < n; i++ {
		nw := 2 + rng.Intn(6)
		body := ""
		for w := 0; w < nw; w++ {
			if w > 0 {
				body += " "
			}
			body += words[rng.Intn(len(words))]
		}
		st.Index(Doc{
			Time: t0.Add(time.Duration(rng.Intn(3600)) * time.Second),
			Fields: F(
				"hostname", hosts[rng.Intn(len(hosts))],
				"app", apps[rng.Intn(len(apps))],
			),
			Body: body,
		})
	}
	return st
}

func randomQuery(rng *rand.Rand, depth int) Query {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return MatchAll{}
		case 1:
			return Term{Field: "hostname", Value: fmt.Sprintf("cn%03d", 1+rng.Intn(4))}
		case 2:
			words := []string{"cpu", "temperature", "usb", "memory", "ghost"}
			return Match{Text: words[rng.Intn(len(words))]}
		default:
			return TimeRange{
				From: t0.Add(time.Duration(rng.Intn(1800)) * time.Second),
				To:   t0.Add(time.Duration(1800+rng.Intn(1800)) * time.Second),
			}
		}
	}
	b := Bool{}
	for i := 0; i < 1+rng.Intn(2); i++ {
		b.Must = append(b.Must, randomQuery(rng, depth-1))
	}
	if rng.Intn(2) == 0 {
		b.MustNot = append(b.MustNot, randomQuery(rng, depth-1))
	}
	return b
}

// Property: every hit returned by Search satisfies the query predicate,
// and the indexed path agrees with a full scan.
func TestQuickSearchSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		st := randomStore(rng, 200)
		for qi := 0; qi < 10; qi++ {
			q := randomQuery(rng, rng.Intn(3))
			hits := st.Search(SearchRequest{Query: q, Size: -1})
			// Soundness: every hit matches.
			for _, h := range hits {
				if !q.matches(&h.Doc) {
					t.Fatalf("unsound hit %+v for query %#v", h.Doc, q)
				}
			}
			// Completeness: brute-force scan finds the same count.
			want := 0
			for id := int64(0); id < 200; id++ {
				if d, ok := st.Get(id); ok && q.matches(&d) {
					want++
				}
			}
			if len(hits) != want {
				t.Fatalf("query %#v returned %d hits, scan found %d", q, len(hits), want)
			}
		}
	}
}

// Property: deleting documents never makes unrelated documents disappear,
// and Compact never changes any query's result set.
func TestQuickDeleteCompactInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		st := randomStore(rng, 150)
		// Delete a random subset.
		deleted := map[int64]bool{}
		for i := 0; i < 40; i++ {
			id := int64(rng.Intn(150))
			if st.Delete(id) {
				deleted[id] = true
			}
		}
		q := randomQuery(rng, 1)
		before := st.Search(SearchRequest{Query: q, Size: -1})
		for _, h := range before {
			if deleted[h.Doc.ID] {
				t.Fatal("deleted doc returned by search")
			}
		}
		st.Compact()
		after := st.Search(SearchRequest{Query: q, Size: -1})
		if len(after) != len(before) {
			t.Fatalf("compact changed hits: %d -> %d", len(before), len(after))
		}
		for i := range after {
			if after[i].Doc.ID != before[i].Doc.ID {
				t.Fatal("compact reordered results")
			}
		}
	}
}

// Property: histogram totals equal CountQuery for any query/interval.
func TestQuickHistogramConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	st := randomStore(rng, 300)
	for trial := 0; trial < 20; trial++ {
		q := randomQuery(rng, rng.Intn(2))
		interval := time.Duration(1+rng.Intn(600)) * time.Second
		total := 0
		for _, b := range st.DateHistogram(q, interval) {
			total += b.Count
		}
		if want := st.CountQuery(q); total != want {
			t.Fatalf("histogram total %d != count %d for %#v @ %v", total, want, q, interval)
		}
	}
}
