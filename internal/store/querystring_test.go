package store

import (
	"testing"
	"time"
)

func TestParseQueryStringShapes(t *testing.T) {
	// Full text only.
	q, err := ParseQueryString("temperature throttled")
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := q.(Match); !ok || m.Text != "temperature throttled" {
		t.Errorf("parsed = %#v", q)
	}
	// Field terms with '+' space stand-in.
	q, err = ParseQueryString("category:Thermal+Issue app:kernel")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := q.(Bool)
	if !ok || len(b.Must) != 2 {
		t.Fatalf("parsed = %#v", q)
	}
	if tm := b.Must[0].(Term); tm.Field != "category" || tm.Value != "Thermal Issue" {
		t.Errorf("term = %+v", tm)
	}
	// Negation + range.
	q, err = ParseQueryString("-preauth after:2023-07-01T00:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	b = q.(Bool)
	if len(b.MustNot) != 1 || len(b.Must) != 1 {
		t.Fatalf("parsed = %#v", b)
	}
	// Empty.
	q, _ = ParseQueryString("   ")
	if _, ok := q.(MatchAll); !ok {
		t.Errorf("empty = %#v", q)
	}
	// Errors.
	for _, bad := range []string{"after:notatime", "before:xx", ":novalue", "field:"} {
		if _, err := ParseQueryString(bad); err == nil {
			t.Errorf("ParseQueryString(%q) should error", bad)
		}
	}
}

// TestParseQueryStringNegatedFieldTerm: -field:value used to fall
// through to full-text negation, matching the literal text "app:sshd"
// (i.e. nothing) instead of excluding app=sshd documents.
func TestParseQueryStringNegatedFieldTerm(t *testing.T) {
	q, err := ParseQueryString("-app:sshd")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := q.(Bool)
	if !ok || len(b.MustNot) != 1 || len(b.Must) != 0 {
		t.Fatalf("parsed = %#v, want Bool with one MustNot", q)
	}
	tm, ok := b.MustNot[0].(Term)
	if !ok || tm.Field != "app" || tm.Value != "sshd" {
		t.Fatalf("must_not = %#v, want Term{app sshd}", b.MustNot[0])
	}
	// '+' space stand-in applies inside negated values too.
	q, err = ParseQueryString("-category:Thermal+Issue")
	if err != nil {
		t.Fatal(err)
	}
	tm = q.(Bool).MustNot[0].(Term)
	if tm.Value != "Thermal Issue" {
		t.Errorf("negated value = %q, want %q", tm.Value, "Thermal Issue")
	}
	// Bare negation is still full-text.
	q, err = ParseQueryString("-preauth")
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := q.(Bool).MustNot[0].(Match); !ok || m.Text != "preauth" {
		t.Errorf("bare negation = %#v, want Match{preauth}", q.(Bool).MustNot[0])
	}
	// Negating a range bound or writing a malformed field term errors.
	for _, bad := range []string{"-after:2023-07-01T00:00:00Z", "-before:2023-07-01T00:00:00Z", "-app:", "-:sshd"} {
		if _, err := ParseQueryString(bad); err == nil {
			t.Errorf("ParseQueryString(%q) should error", bad)
		}
	}
}

func TestParseQueryStringNegatedFieldAgainstStore(t *testing.T) {
	st := New(2)
	seed(st)
	q, err := ParseQueryString("-hostname:cn101")
	if err != nil {
		t.Fatal(err)
	}
	hits := st.Search(SearchRequest{Query: q, Size: -1})
	if len(hits) == 0 {
		t.Fatal("negated field query matched nothing")
	}
	for _, h := range hits {
		if v, _ := h.Doc.Fields.Get("hostname"); v == "cn101" {
			t.Fatalf("hit %+v should have been excluded", h.Doc)
		}
	}
	if got, want := len(hits)+st.CountQuery(Term{Field: "hostname", Value: "cn101"}), st.Count(); got != want {
		t.Errorf("negation partition: %d + excluded != total %d", got, want)
	}
}

func TestParseQueryStringAgainstStore(t *testing.T) {
	st := New(2)
	seed(st)
	q, err := ParseQueryString("hostname:cn101 -real_memory")
	if err != nil {
		t.Fatal(err)
	}
	hits := st.Search(SearchRequest{Query: q, Size: -1})
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	q2, err := ParseQueryString("after:" + t0.Add(2*time.Minute).Format(time.RFC3339))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.CountQuery(q2); got != 3 {
		t.Errorf("range query hits = %d", got)
	}
}
