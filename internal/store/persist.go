package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Snapshot writes every document as one JSON object per line (JSONL),
// ordered by id, so a store can be persisted and later rebuilt with Load.
// This is the reproduction's stand-in for OpenSearch index snapshots: the
// paper's deployment retains >30M records/month, which must survive
// restarts.
func (st *Store) Snapshot(w io.Writer) error {
	var docs []Doc
	for _, sh := range st.shards {
		sh.mu.RLock()
		for i := range sh.ents {
			if !sh.deleted(int32(i)) {
				docs = append(docs, sh.docCopy(int32(i)))
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(docs, func(a, b int) bool { return docs[a].ID < docs[b].ID })
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range docs {
		if err := enc.Encode(&docs[i]); err != nil {
			return fmt.Errorf("store: snapshot doc %d: %w", docs[i].ID, err)
		}
	}
	return bw.Flush()
}

// Load reads a Snapshot stream into an empty store, rebuilding all
// indices. Document ids are reassigned sequentially (snapshot order), so
// queries behave identically; loading into a non-empty store is rejected.
func (st *Store) Load(r io.Reader) error {
	if st.Count() != 0 {
		return fmt.Errorf("store: Load requires an empty store (have %d docs)", st.Count())
	}
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var d Doc
		if err := dec.Decode(&d); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("store: load doc %d: %w", n, err)
		}
		st.Index(d)
		n++
	}
}

// SaveFile snapshots to path (atomically via a temp file + rename).
func (st *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := st.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a store from a SaveFile snapshot.
func (st *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return st.Load(f)
}
