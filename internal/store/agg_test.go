package store

// Regression tests for the aggregation edge cases the cluster work
// exposed: unbounded histogram materialization on outlier timestamps,
// and truncating (rather than flooring) division on the bucket grid.

import (
	"math"
	"testing"
	"time"
)

// TestDateHistogramZeroTimeDocBounded: one zero-time document used to
// make DateHistogram materialize every bucket between year 1 and now —
// at interval=1s that is an allocation in the exabucket range (the span
// even overflows int64 nanoseconds). The clamp must degrade to the
// sparse form instead, and conservation must survive.
func TestDateHistogramZeroTimeDocBounded(t *testing.T) {
	st := New(2)
	st.Index(Doc{Time: time.Time{}, Body: "forged timestamp"})
	st.Index(Doc{Time: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC), Body: "normal"})

	done := make(chan []HistogramBucket, 1)
	go func() { done <- st.DateHistogram(nil, time.Second) }()
	var buckets []HistogramBucket
	select {
	case buckets = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("DateHistogram did not return — unbounded materialization")
	}
	if len(buckets) > MaxHistogramBuckets {
		t.Fatalf("materialized %d buckets, cap is %d", len(buckets), MaxHistogramBuckets)
	}
	if len(buckets) != 2 {
		t.Fatalf("sparse fallback should return the 2 non-empty buckets, got %d", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != 2 {
		t.Errorf("histogram total = %d, want 2 (conservation)", total)
	}
}

// TestDateHistogramWithinCapStaysDense: the clamp must not cost the
// dense (gap-filled) form when the span is reasonable.
func TestDateHistogramWithinCapStaysDense(t *testing.T) {
	st := New(2)
	base := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	st.Index(Doc{Time: base, Body: "a"})
	st.Index(Doc{Time: base.Add(10 * time.Second), Body: "b"})
	buckets := st.DateHistogram(nil, time.Second)
	if len(buckets) != 11 {
		t.Fatalf("buckets = %d, want 11 (dense form with gaps filled)", len(buckets))
	}
	if buckets[5].Count != 0 {
		t.Errorf("gap bucket count = %d, want 0", buckets[5].Count)
	}
}

// TestDateHistogramPreEpochFloorGrid: UnixNano()/interval truncates
// toward zero, so pre-1970 timestamps used to land one bucket late and
// the two sides of the epoch shared bucket 0. The grid must floor: a doc
// at -1.5s with interval=1s belongs to the bucket starting at -2s, and
// every bucket start must be an exact multiple of the interval.
func TestDateHistogramPreEpochFloorGrid(t *testing.T) {
	st := New(2)
	preEpoch := time.Unix(0, 0).Add(-1500 * time.Millisecond)
	st.Index(Doc{Time: preEpoch, Body: "pre epoch"})
	st.Index(Doc{Time: time.Unix(0, 250_000_000), Body: "post epoch"})

	buckets := st.DateHistogram(nil, time.Second)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %v, want 3 (-2s, -1s, 0s)", buckets)
	}
	if want := time.Unix(-2, 0).UTC(); !buckets[0].Start.Equal(want) {
		t.Errorf("first bucket starts %v, want %v (floor, not truncate)", buckets[0].Start, want)
	}
	if buckets[0].Count != 1 || buckets[1].Count != 0 || buckets[2].Count != 1 {
		t.Errorf("bucket counts = %v, want [1 0 1]", buckets)
	}
	for _, b := range buckets {
		if b.Start.UnixNano()%int64(time.Second) != 0 {
			t.Errorf("bucket start %v off the interval grid", b.Start)
		}
	}
}

// TestFillHistogramClamp pins the exported materialization rule the
// cluster coordinator reuses: dense within the cap, sparse beyond it,
// overflow-safe on extreme spans.
func TestFillHistogramClamp(t *testing.T) {
	grid := func(idx int64) time.Time { return time.Unix(0, idx*int64(time.Second)).UTC() }
	// Within cap: dense.
	dense := FillHistogram([]HistogramBucket{
		{Start: grid(0), Count: 1}, {Start: grid(4), Count: 2},
	}, time.Second)
	if len(dense) != 5 || dense[0].Count != 1 || dense[4].Count != 2 {
		t.Fatalf("dense fill = %v", dense)
	}
	// Beyond cap: unchanged sparse.
	sparse := []HistogramBucket{
		{Start: grid(0), Count: 1},
		{Start: grid(int64(MaxHistogramBuckets)), Count: 1},
	}
	if got := FillHistogram(sparse, time.Second); len(got) != 2 {
		t.Fatalf("over-cap fill materialized %d buckets", len(got))
	}
	// Arithmetic overflow of the span itself (zero time vs the far future
	// at nanosecond interval: hi-lo wraps negative): unchanged sparse.
	overflow := []HistogramBucket{
		{Start: time.Time{}, Count: 1},
		{Start: time.Unix(0, math.MaxInt64), Count: 1},
	}
	if got := FillHistogram(overflow, time.Nanosecond); len(got) != 2 {
		t.Fatalf("overflow fill materialized %d buckets", len(got))
	}
	// Empty and nil: pass through.
	if got := FillHistogram(nil, time.Second); got != nil {
		t.Fatalf("nil fill = %v", got)
	}
}
