package store

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPRoundTrip(t *testing.T) {
	st := New(2)
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	// Index two docs.
	for i, body := range []string{"CPU temperature above threshold", "Connection closed by peer"} {
		resp := postJSON(t, srv, "/index", Doc{
			Time:   t0.Add(time.Duration(i) * time.Minute),
			Fields: F("hostname", "cn101"),
			Body:   body,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("index status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Search via the JSON DSL.
	resp := postJSON(t, srv, "/search", map[string]any{
		"query": map[string]any{"match": map[string]string{"text": "temperature"}},
		"size":  10,
	})
	defer resp.Body.Close()
	var result struct {
		Total int   `json:"total"`
		Hits  []Hit `json:"hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	if result.Total != 1 || result.Hits[0].Doc.Body != "CPU temperature above threshold" {
		t.Fatalf("search result = %+v", result)
	}
}

func TestHTTPAggregations(t *testing.T) {
	st := New(2)
	seed(st)
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	resp := postJSON(t, srv, "/agg/datehist", map[string]any{"interval": "1m"})
	defer resp.Body.Close()
	var buckets []HistogramBucket
	if err := json.NewDecoder(resp.Body).Decode(&buckets); err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 5 {
		t.Errorf("datehist buckets = %d", len(buckets))
	}

	resp2 := postJSON(t, srv, "/agg/terms", map[string]any{"field": "hostname", "size": 2})
	defer resp2.Body.Close()
	var terms []TermBucket
	if err := json.NewDecoder(resp2.Body).Decode(&terms); err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 || terms[0].Value != "cn101" {
		t.Errorf("terms = %+v", terms)
	}
}

func TestHTTPStats(t *testing.T) {
	st := New(2)
	seed(st)
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Docs != 5 || s.Shards != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	st := New(1)
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/search", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad search body status = %d", resp.StatusCode)
	}

	resp2 := postJSON(t, srv, "/agg/datehist", map[string]any{"interval": "not-a-duration"})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad interval status = %d", resp2.StatusCode)
	}

	resp3 := postJSON(t, srv, "/agg/terms", map[string]any{"size": 5})
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("missing field status = %d", resp3.StatusCode)
	}
}

func TestParseQueryDSL(t *testing.T) {
	raw := []byte(`{"bool":{
		"must":[{"term":{"field":"app","value":"kernel"}},
		        {"range":{"from":"2023-07-01T00:00:00Z"}}],
		"must_not":[{"match":{"text":"usb"}}]}}`)
	q, err := ParseQuery(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := q.(Bool)
	if !ok || len(b.Must) != 2 || len(b.MustNot) != 1 {
		t.Fatalf("parsed = %#v", q)
	}
	if _, err := ParseQuery([]byte("{bad")); err == nil {
		t.Error("expected parse error")
	}
	// Empty object = match_all.
	q2, err := ParseQuery([]byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q2.(MatchAll); !ok {
		t.Errorf("empty query = %#v, want MatchAll", q2)
	}
}

func TestHTTPSearchGet(t *testing.T) {
	st := New(2)
	seed(st)
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/search?q=" + url.QueryEscape("hostname:cn101 temperature") + "&size=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Total int `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 2 {
		t.Errorf("GET search total = %d, want 2", out.Total)
	}
	// Bad query errors.
	resp2, err := http.Get(srv.URL + "/search?q=after:nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad q -> %d", resp2.StatusCode)
	}
}

// TestMarshalQueryRoundTrip: MarshalQuery must be the exact inverse of
// ParseQuery for every query shape — the cluster coordinator relies on
// it to forward partition-restricted queries to remote nodes.
func TestMarshalQueryRoundTrip(t *testing.T) {
	queries := []Query{
		MatchAll{},
		Term{Field: "hostname", Value: "cn101"},
		Match{Text: "temperature throttled"},
		TimeRange{From: t0, To: t0.Add(time.Hour)},
		Bool{
			Must:    []Query{Term{Field: "app", Value: "sshd"}, Match{Text: "closed"}},
			Should:  []Query{Term{Field: "_part", Value: "3"}, Term{Field: "_part", Value: "7"}},
			MustNot: []Query{Match{Text: "preauth"}},
		},
	}
	for _, q := range queries {
		raw, err := MarshalQuery(q)
		if err != nil {
			t.Fatalf("MarshalQuery(%#v): %v", q, err)
		}
		back, err := ParseQuery(raw)
		if err != nil {
			t.Fatalf("ParseQuery(%s): %v", raw, err)
		}
		if !reflect.DeepEqual(back, q) {
			t.Errorf("round trip changed query:\n  in  %#v\n  out %#v\n  via %s", q, back, raw)
		}
	}
	// nil marshals as match_all; a prepared match survives as its terms.
	raw, err := MarshalQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	if back, _ := ParseQuery(raw); !reflect.DeepEqual(back, MatchAll{}) {
		t.Errorf("nil marshaled to %#v", back)
	}
	raw, err = MarshalQuery(prepareQuery(Match{Text: "cpu throttled"}))
	if err != nil {
		t.Fatal(err)
	}
	if back, _ := ParseQuery(raw); !reflect.DeepEqual(back, Match{Text: "cpu throttled"}) {
		t.Errorf("prepared match marshaled to %#v", back)
	}
}
