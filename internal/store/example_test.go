package store_test

import (
	"fmt"
	"time"

	"hetsyslog/internal/store"
)

func ExampleStore() {
	st := store.New(4)
	base := time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC)
	st.Index(store.Doc{
		Time:   base,
		Fields: store.F("hostname", "cn101", "app", "kernel"),
		Body:   "CPU 3 temperature above threshold, cpu clock throttled",
	})
	st.Index(store.Doc{
		Time:   base.Add(time.Minute),
		Fields: store.F("hostname", "cn102", "app", "sshd"),
		Body:   "Connection closed by 10.0.0.1 port 22 [preauth]",
	})

	hits := st.Search(store.SearchRequest{
		Query: store.Match{Text: "temperature throttled"},
		Size:  10,
	})
	fmt.Println(len(hits), hits[0].Doc.Fields.Value("hostname"))
	// Output: 1 cn101
}

func ExampleParseQueryString() {
	st := store.New(2)
	st.Index(store.Doc{
		Time:   time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC),
		Fields: store.F("app", "sshd"),
		Body:   "Connection closed by 10.0.0.1 port 22 [preauth]",
	})
	q, err := store.ParseQueryString("app:sshd -temperature")
	if err != nil {
		panic(err)
	}
	fmt.Println(st.CountQuery(q))
	// Output: 1
}
