package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hetsyslog/internal/raceflag"
)

// randomCodecDoc builds a doc exercising the codec's edge geometry:
// empty bodies, empty field sets, empty keys/values, zero and pre-epoch
// timestamps, sub-second nanos, and (when rawBytes) strings that are not
// valid UTF-8.
func randomCodecDoc(rng *rand.Rand, rawBytes bool) Doc {
	randStr := func(maxLen int) string {
		n := rng.Intn(maxLen + 1)
		b := make([]byte, n)
		for i := range b {
			if rawBytes {
				b[i] = byte(rng.Intn(256))
			} else {
				b[i] = byte(' ' + rng.Intn(95)) // printable ASCII: JSON-stable
			}
		}
		return string(b)
	}
	var ts time.Time
	switch rng.Intn(5) {
	case 0:
		ts = time.Time{}
	case 1: // pre-epoch, with nanos
		ts = time.Unix(-int64(rng.Intn(1<<30)), int64(rng.Intn(1e9))).UTC()
	case 2: // deep pre-epoch (year > 0 so the JSON oracle can render it)
		ts = time.Date(1+rng.Intn(1900), 1, 1, 0, 0, 0, rng.Intn(1e9), time.UTC)
	default:
		ts = time.Unix(int64(rng.Int31()), int64(rng.Intn(1e9))).UTC()
	}
	nf := rng.Intn(5)
	fields := make(Fields, 0, nf)
	for i := 0; i < nf; i++ {
		fields = append(fields, Field{K: fmt.Sprintf("k%d%s", i, randStr(4)), V: randStr(12)})
	}
	return Doc{
		ID:     rng.Int63() - rng.Int63(), // negative ids too: varint, not uvarint
		Time:   ts,
		Fields: fields,
		Body:   randStr(40),
	}
}

// docsEquivalent compares docs the way the store distinguishes them:
// same instant (Equal, ignoring wall-clock rendering/location), same
// fields in order, same body, same id.
func docsEquivalent(t *testing.T, label string, got, want []Doc) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d docs, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID {
			t.Fatalf("%s: doc %d id = %d, want %d", label, i, g.ID, w.ID)
		}
		if !g.Time.Equal(w.Time) {
			t.Fatalf("%s: doc %d time = %v, want %v", label, i, g.Time, w.Time)
		}
		if w.Time.IsZero() != g.Time.IsZero() {
			t.Fatalf("%s: doc %d IsZero = %v, want %v", label, i, g.Time.IsZero(), w.Time.IsZero())
		}
		if g.Body != w.Body {
			t.Fatalf("%s: doc %d body = %q, want %q", label, i, g.Body, w.Body)
		}
		if len(g.Fields) != len(w.Fields) {
			t.Fatalf("%s: doc %d has %d fields, want %d", label, i, len(g.Fields), len(w.Fields))
		}
		for f := range w.Fields {
			if g.Fields.Value(w.Fields[f].K) != w.Fields[f].V {
				t.Fatalf("%s: doc %d field %q = %q, want %q", label, i,
					w.Fields[f].K, g.Fields.Value(w.Fields[f].K), w.Fields[f].V)
			}
		}
	}
}

// TestDocCodecRoundTripEquivalentToJSON is the codec's differential
// property: for random JSON-safe docs, decoding the binary form yields
// exactly what the JSON wire form yields — same ids, instants (including
// the zero time and pre-epoch values), field sets, and bodies.
func TestDocCodecRoundTripEquivalentToJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		docs := make([]Doc, rng.Intn(20))
		for i := range docs {
			docs[i] = randomCodecDoc(rng, false)
		}

		bin, err := DecodeDocs(EncodeDocs(nil, docs), nil)
		if err != nil {
			t.Fatalf("trial %d: binary decode: %v", trial, err)
		}
		raw, err := json.Marshal(indexBatchBody{Docs: docs})
		if err != nil {
			t.Fatalf("trial %d: json encode: %v", trial, err)
		}
		var viaJSON indexBatchBody
		if err := json.Unmarshal(raw, &viaJSON); err != nil {
			t.Fatalf("trial %d: json decode: %v", trial, err)
		}

		label := fmt.Sprintf("trial %d", trial)
		docsEquivalent(t, label+" binary vs original", bin, docs)
		docsEquivalent(t, label+" binary vs json oracle", bin, viaJSON.Docs)
	}
}

// TestDocCodecRoundTripRawBytes pins the property JSON cannot offer: the
// binary codec is byte-exact for strings that are not valid UTF-8, where
// the JSON path would substitute U+FFFD.
func TestDocCodecRoundTripRawBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		docs := make([]Doc, 1+rng.Intn(10))
		for i := range docs {
			docs[i] = randomCodecDoc(rng, true)
		}
		got, err := DecodeDocs(EncodeDocs(nil, docs), nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		docsEquivalent(t, fmt.Sprintf("trial %d", trial), got, docs)
	}
}

// TestDocCodecRejectsCorruptPayloads: truncations and flipped version
// bytes must error (the version flip with the typed ErrCodecVersion, so
// HTTP handlers can answer 415), never panic or return partial batches.
func TestDocCodecRejectsCorruptPayloads(t *testing.T) {
	docs := []Doc{{Time: time.Unix(10, 0).UTC(), Fields: F("hostname", "cn001"), Body: "usb device connected"}}
	payload := EncodeDocs(nil, docs)

	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeDocs(payload[:cut], nil); err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(payload))
		}
	}
	vflip := append([]byte(nil), payload...)
	vflip[3] = 0x7f
	if _, err := DecodeDocs(vflip, nil); !errors.Is(err, ErrCodecVersion) {
		t.Fatalf("version flip error = %v, want ErrCodecVersion", err)
	}
	trailing := append(append([]byte(nil), payload...), 0x00)
	if _, err := DecodeDocs(trailing, nil); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
	garbage := []byte("{\"docs\":[]}")
	if _, err := DecodeDocs(garbage, nil); err == nil {
		t.Fatal("JSON body decoded as binary")
	}
}

// TestDocCodecEncodeSteadyStateAllocs enforces the router-side bar: once
// the destination buffer has grown to batch size, re-encoding a batch
// performs zero heap allocations — the whole encode is appends into the
// caller's buffer. Skipped under -race like every AllocsPerRun ceiling.
func TestDocCodecEncodeSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	docs := make([]Doc, 256)
	for i := range docs {
		docs[i] = Doc{
			Time:   time.Unix(int64(i), 0).UTC(),
			Fields: F("hostname", fmt.Sprintf("cn%03d", i%64), "app", "kernel", "_part", "7"),
			Body:   fmt.Sprintf("CPU %d temperature above threshold", i),
		}
	}
	buf := EncodeDocs(nil, docs) // warm the buffer to full batch capacity
	if n := testing.AllocsPerRun(20, func() {
		buf = EncodeDocs(buf[:0], docs)
	}); n != 0 {
		t.Errorf("EncodeDocs steady-state allocs/op = %v, want 0", n)
	}
}

// TestDocCodecDecodeAllocsBounded pins the decode side's design: one
// backing string plus the doc and field slabs, independent of how many
// string fields the batch carries (no per-field allocations).
func TestDocCodecDecodeAllocsBounded(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	docs := make([]Doc, 128)
	for i := range docs {
		docs[i] = Doc{
			Time:   time.Unix(int64(i), 0).UTC(),
			Fields: F("hostname", fmt.Sprintf("cn%03d", i), "app", "sshd", "severity", "info"),
			Body:   fmt.Sprintf("session %d opened", i),
		}
	}
	payload := EncodeDocs(nil, docs)
	n := testing.AllocsPerRun(20, func() {
		if _, err := DecodeDocs(payload, nil); err != nil {
			t.Fatal(err)
		}
	})
	// 1 backing string + 1 doc slice + field slab growth (ldexp'd by the
	// append doubling): anything beyond ~8 means a per-doc or per-field
	// allocation crept in (128 docs × 4 strings would show as 500+).
	if n > 8 {
		t.Errorf("DecodeDocs allocs/op = %v for 128 docs, want <= 8 (per-field allocation regression)", n)
	}
}
