package syslog

import (
	"strings"
	"testing"
	"time"

	"hetsyslog/internal/raceflag"
)

// equivalenceRef is the fixed reference time the differential targets use
// (fuzz inputs are only the wire bytes, so the ref must be deterministic).
var equivalenceRef = time.Date(2023, 7, 1, 10, 30, 0, 0, time.UTC)

// sameMessage asserts every exported field of the byte-parser result
// matches the legacy string parser's.
func sameMessage(t *testing.T, input string, got, want *Message) {
	t.Helper()
	if got.Facility != want.Facility || got.Severity != want.Severity {
		t.Errorf("%q: pri %v.%v != %v.%v", input, got.Facility, got.Severity, want.Facility, want.Severity)
	}
	if !got.Timestamp.Equal(want.Timestamp) {
		t.Errorf("%q: timestamp %v != %v", input, got.Timestamp, want.Timestamp)
	}
	gn, go_ := got.Timestamp.Zone()
	wn, wo := want.Timestamp.Zone()
	if gn != wn || go_ != wo {
		t.Errorf("%q: zone %q/%d != %q/%d", input, gn, go_, wn, wo)
	}
	if got.Hostname != want.Hostname || got.AppName != want.AppName ||
		got.ProcID != want.ProcID || got.MsgID != want.MsgID {
		t.Errorf("%q: header fields %q/%q/%q/%q != %q/%q/%q/%q", input,
			got.Hostname, got.AppName, got.ProcID, got.MsgID,
			want.Hostname, want.AppName, want.ProcID, want.MsgID)
	}
	if got.Content != want.Content {
		t.Errorf("%q: content %q != %q", input, got.Content, want.Content)
	}
	if got.Raw != want.Raw {
		t.Errorf("%q: raw %q != %q", input, got.Raw, want.Raw)
	}
	gsd, wsd := got.SD(), want.SD()
	if len(gsd) != len(wsd) {
		t.Errorf("%q: structured %v != %v", input, gsd, wsd)
		return
	}
	for id, params := range wsd {
		gp, ok := gsd[id]
		if !ok || len(gp) != len(params) {
			t.Errorf("%q: structured[%q] %v != %v", input, id, gp, params)
			continue
		}
		for k, v := range params {
			if gp[k] != v {
				t.Errorf("%q: structured[%q][%q] %q != %q", input, id, k, gp[k], v)
			}
		}
	}
}

// checkEquivalence runs one input through a byte parser and its legacy
// string oracle and asserts identical outcomes (same error identity and
// text, or same Message).
func checkEquivalence(t *testing.T, input string,
	byteParse func(*Message) error, legacy func() (*Message, error)) {
	t.Helper()
	m := &Message{}
	errB := byteParse(m)
	want, errL := legacy()
	if (errB == nil) != (errL == nil) {
		t.Errorf("%q: byte err = %v, legacy err = %v", input, errB, errL)
		return
	}
	if errB != nil {
		if errB.Error() != errL.Error() {
			t.Errorf("%q: error text %q != %q", input, errB, errL)
		}
		return
	}
	sameMessage(t, input, m, want)
}

// equivalenceSeeds collects the canonical, torn and odd-timestamp inputs
// from the parser tests plus framing and SD edge cases.
var equivalenceSeeds = []string{
	"<34>Oct 11 22:14:15 mymachine su[231]: 'su root' failed on /dev/pts/8",
	"<13>Oct 11 22:14:15 cn42 CPU temperature above threshold, cpu clock throttled",
	"<13>2023-07-01T10:20:30Z cn42 kernel: usb 1-1: new high-speed USB device number 7",
	"<13>2023-07-01T10:20:30.123456789+02:00 cn42 app[9]: fractional offset",
	"<13>2023-07-01T10:20:30.123456789012345-23:59 cn42 app: overlong fraction",
	"<13>2023-02-29T10:20:30Z cn42 app: bad leap day",
	"<13>Feb 29 10:20:30 cn42 app: year-0 leap day",
	"<13>Oct  1 22:14:15 host single digit day",
	"<13>oct 11 22:14:15 case insensitive month",
	"<13>Oct 41 22:14:15 torn day",
	"<13>Oct 11 25:14:15 torn hour",
	"<13>Oct 11 22:99:15 torn minute",
	"<13>something without any timestamp",
	"<34>",
	"<34>x",
	"<0>a: b",
	"<191>tag[pid]: ok",
	"<165>1 2003-10-11T22:14:15.003Z mymachine.example.com evntslog 111 ID47 [exampleSDID@32473 iut=\"3\" eventSource=\"Application\"] BOMAn application event log entry",
	"<34>1 - - - - - -",
	"<34>1 2023-07-01T00:00:00Z h a p m - hello",
	"<34>1 2023-07-01T00:00:00Z h a p m [x@1 k=\"v\\\"w\\]z\"] esc",
	"<34>1 2023-07-01T00:00:00Z h a p m [a b=\"c\"][d e=\"f\"] two elements",
	"<34>2 2023-07-01T00:00:00Z h a p m - x",
	"<34>1 not-a-time h a p m - x",
	"<34>1 2023-07-01T00:00:00Z h a p",
	"<34>1 2023-07-01T00:00:00Z h a p m [x@1 k",
	"<34>1 2023-07-01T00:00:00,5Z h a p m - comma fraction",
	"<6>Jul  1 09:15:22 cn042 systemd[1]: Started Session 1234 of user root.",
	"<30>1 2023-07-01T09:15:27Z cn046 chronyd - - - System clock wrong by 1.284911 seconds",
	"",
	"no pri at all",
	"<999>overflow pri",
	"<abc>non-numeric pri",
}

// FuzzParseBytesEquivalence pins the tentpole's behavioural contract: the
// byte parsers are bit-for-bit equivalent to the legacy string parsers —
// same Message (timestamps compared down to zone offset), same error —
// for RFC 3164, RFC 5424, and the auto-detecting entry point.
func FuzzParseBytesEquivalence(f *testing.F) {
	for _, s := range equivalenceSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		m := &Message{}
		checkEquivalence(t, raw,
			func(m *Message) error { return ParseRFC3164Bytes([]byte(raw), equivalenceRef, m) },
			func() (*Message, error) { return parseRFC3164Legacy(raw, equivalenceRef) })
		checkEquivalence(t, raw,
			func(m *Message) error { return ParseRFC5424Bytes([]byte(raw), m) },
			func() (*Message, error) { return parseRFC5424Legacy(raw) })
		checkEquivalence(t, raw,
			func(m *Message) error { return ParseBytes([]byte(raw), equivalenceRef, m) },
			func() (*Message, error) { return parseLegacy(raw, equivalenceRef) })
		// Reusing one Message across parses must not leak state between
		// frames: parse twice into the same struct, expect the same result.
		if err := ParseBytes([]byte(raw), equivalenceRef, m); err == nil {
			first := m.Clone()
			if err := ParseBytes([]byte(raw), equivalenceRef, m); err != nil {
				t.Fatalf("%q: reparse into reused Message errored: %v", raw, err)
			}
			sameMessage(t, raw, m, first)
		}
	})
}

// TestParseBytesEquivalenceCorpus runs the differential check over the
// seed corpus in ordinary test runs (fuzzing only executes seeds when the
// -fuzz flag is absent, so this keeps the contract visible in go test).
func TestParseBytesEquivalenceCorpus(t *testing.T) {
	for _, raw := range equivalenceSeeds {
		checkEquivalence(t, raw,
			func(m *Message) error { return ParseRFC3164Bytes([]byte(raw), equivalenceRef, m) },
			func() (*Message, error) { return parseRFC3164Legacy(raw, equivalenceRef) })
		checkEquivalence(t, raw,
			func(m *Message) error { return ParseRFC5424Bytes([]byte(raw), m) },
			func() (*Message, error) { return parseRFC5424Legacy(raw) })
		checkEquivalence(t, raw,
			func(m *Message) error { return ParseBytes([]byte(raw), equivalenceRef, m) },
			func() (*Message, error) { return parseLegacy(raw, equivalenceRef) })
	}
}

// TestParseBytesZeroAllocs enforces the tentpole's acceptance bar: the
// steady-state parse of canonical RFC 3164 and RFC 5424 messages (reused
// Message, warm slab) performs zero heap allocations. Skipped under -race
// like every AllocsPerRun ceiling in this repo.
func TestParseBytesZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	cases := []struct {
		name string
		raw  string
	}{
		{"rfc3164_stamp", "<34>Oct 11 22:14:15 mymachine su[231]: 'su root' failed on /dev/pts/8"},
		{"rfc3164_rfc3339", "<13>2023-07-01T10:20:30Z cn42 kernel: usb 1-1: new high-speed USB device"},
		{"rfc3164_rfc3339_nano_offset", "<13>2023-07-01T10:20:30.123456+02:00 cn42 app[9]: tick"},
		{"rfc5424_no_sd", "<165>1 2003-10-11T22:14:15.003Z mymachine.example.com evntslog 111 ID47 - An application event log entry"},
	}
	ref := equivalenceRef
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := []byte(tc.raw)
			m := &Message{}
			if err := ParseBytes(buf, ref, m); err != nil { // warm the slab
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(200, func() {
				if err := ParseBytes(buf, ref, m); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("steady-state allocs/op = %v, want 0", n)
			}
		})
	}
}

// TestParseBytesSpeedup asserts the fast path's headline win: parsing the
// canonical RFC 3164 line (the dominant wire format in the paper's corpus)
// at least 3x faster than the legacy string parser it replaced. Timing
// ratios are compared best-of-N to shrug off scheduler noise, and the test
// is skipped under -race and -short where timing is not meaningful.
func TestParseBytesSpeedup(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("timing is not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	raw := "<34>Oct 11 22:14:15 mymachine su[231]: 'su root' failed on /dev/pts/8"
	buf := []byte(raw)
	ref := equivalenceRef
	const iters = 200000
	best := func(f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for round := 0; round < 5; round++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	m := &Message{}
	if err := ParseBytes(buf, ref, m); err != nil {
		t.Fatal(err)
	}
	fast := best(func() {
		for i := 0; i < iters; i++ {
			if err := ParseBytes(buf, ref, m); err != nil {
				t.Fatal(err)
			}
		}
	})
	slow := best(func() {
		for i := 0; i < iters; i++ {
			if _, err := parseLegacy(raw, ref); err != nil {
				t.Fatal(err)
			}
		}
	})
	ratio := float64(slow) / float64(fast)
	t.Logf("bytes %v, legacy %v for %d iterations: %.2fx", fast, slow, iters, ratio)
	if ratio < 3 {
		t.Errorf("parse speedup = %.2fx, want >= 3x", ratio)
	}
}

// TestDetachedMessageSurvivesReuse pins the ownership rule: Detach makes
// the message permanent even though the buffer it was parsed from is
// recycled and other messages keep flowing through the pool.
func TestDetachedMessageSurvivesReuse(t *testing.T) {
	buf := []byte("<34>Oct 11 22:14:15 host app[7]: first payload")
	m := getMessage()
	if err := ParseBytes(buf, equivalenceRef, m); err != nil {
		t.Fatal(err)
	}
	m.Detach()
	putMessage(m) // no-op: detached messages never return to the pool
	copy(buf, []byte("<34>Oct 11 22:14:15 host app[7]: XXXXXXXXXXXXXX"))
	for i := 0; i < 64; i++ {
		m2 := getMessage()
		if err := ParseBytes([]byte("<34>Oct 11 22:14:15 other oth: noise"), equivalenceRef, m2); err != nil {
			t.Fatal(err)
		}
		putMessage(m2)
	}
	if m.Content != "first payload" || m.Hostname != "host" || m.AppName != "app" {
		t.Errorf("detached message corrupted: %+v", m)
	}
}

// TestCloneOfPooledMessageCopiesStrings: a Clone taken while the message
// is still pool-owned must not alias the slab.
func TestCloneOfPooledMessageCopiesStrings(t *testing.T) {
	m := getMessage()
	if !m.pooled {
		t.Fatal("pool message not marked pooled")
	}
	if err := ParseBytes([]byte("<34>Oct 11 22:14:15 host app: keep me"), equivalenceRef, m); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	// Reuse the original for a different frame; the clone must not change.
	if err := ParseBytes([]byte("<34>Oct 11 22:14:15 mutated mut: other"), equivalenceRef, m); err != nil {
		t.Fatal(err)
	}
	if c.Content != "keep me" || c.Hostname != "host" {
		t.Errorf("clone aliased the recycled slab: %+v", c)
	}
	if c.pooled {
		t.Error("clone still marked pooled")
	}
}

// TestCloneOfReusedByteParsedMessageCopiesStrings: Clone must deep-copy
// the slab-aliased strings of ANY byte-parsed message, not just pooled
// ones. A user reusing a non-pooled Message across ParseBytes calls (the
// documented hot-path pattern) would otherwise see earlier clones mutate
// when the slab is overwritten in place.
func TestCloneOfReusedByteParsedMessageCopiesStrings(t *testing.T) {
	m := &Message{} // ordinary heap value, never pooled
	if err := ParseBytes([]byte("<34>Oct 11 22:14:15 host app: keep me"), equivalenceRef, m); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := ParseBytes([]byte("<34>Oct 11 22:14:15 mutated mut: other"), equivalenceRef, m); err != nil {
		t.Fatal(err)
	}
	if c.Content != "keep me" || c.Hostname != "host" || c.AppName != "app" ||
		c.Raw != "<34>Oct 11 22:14:15 host app: keep me" {
		t.Errorf("clone aliased the reused slab: %+v", c)
	}
}

// TestParseBytesLongMessage exercises slab growth across reuse.
func TestParseBytesLongMessage(t *testing.T) {
	m := &Message{}
	long := "<34>Oct 11 22:14:15 host app: " + strings.Repeat("x", 4096)
	for _, raw := range []string{"<34>short: a", long, "<34>short: b"} {
		if err := ParseBytes([]byte(raw), equivalenceRef, m); err != nil {
			t.Fatalf("%q: %v", raw[:20], err)
		}
		if m.Raw != raw {
			t.Fatalf("raw mismatch after slab growth/shrink")
		}
	}
}
