package syslog

import (
	"bufio"
	"strings"
	"sync"
	"testing"
	"time"

	"hetsyslog/internal/obs"
)

// gather is a Handler that appends into a slice under a mutex. It retains
// the messages past the handler return, so it must Detach them from the
// server's pool (the ownership rule every retaining Handler follows).
type gather struct {
	mu   sync.Mutex
	msgs []*Message
}

func (g *gather) HandleSyslog(m *Message) {
	g.mu.Lock()
	g.msgs = append(g.msgs, m.Detach())
	g.mu.Unlock()
}

func (g *gather) wait(t *testing.T, n int) []*Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		if len(g.msgs) >= n {
			out := append([]*Message(nil), g.msgs...)
			g.mu.Unlock()
			return out
		}
		g.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages", n)
	return nil
}

func testMessage(content string) *Message {
	return &Message{
		Facility: Daemon, Severity: Warning,
		Timestamp: time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC),
		Hostname:  "cn7", AppName: "kernel",
		Content: content,
	}
}

func TestServerUDP(t *testing.T) {
	g := &gather{}
	srv := &Server{Handler: g}
	addr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	snd, err := DialSender("udp", addr.String(), FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	for i := 0; i < 10; i++ {
		if err := snd.Send(testMessage("thermal event")); err != nil {
			t.Fatal(err)
		}
	}
	msgs := g.wait(t, 10)
	if msgs[0].Content != "thermal event" || msgs[0].Hostname != "cn7" {
		t.Errorf("message = %+v", msgs[0])
	}
	recv, drop := srv.Stats()
	if recv < 10 || drop != 0 {
		t.Errorf("stats = %d received, %d dropped", recv, drop)
	}
}

func TestServerTCPOctetCounted(t *testing.T) {
	g := &gather{}
	srv := &Server{Handler: g}
	addr, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	snd, err := DialSender("tcp", addr.String(), FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	for i := 0; i < 25; i++ {
		if err := snd.Send(testMessage("slurmd: node registration")); err != nil {
			t.Fatal(err)
		}
	}
	msgs := g.wait(t, 25)
	if len(msgs) < 25 {
		t.Fatalf("got %d messages", len(msgs))
	}
}

func TestReadFrameLFDelimited(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("<34>Oct 11 22:14:15 h su: one\n<34>Oct 11 22:14:15 h su: two\n"))
	f1, err := ReadFrame(r)
	if err != nil || !strings.HasSuffix(f1, "one") {
		t.Fatalf("frame1 = %q err=%v", f1, err)
	}
	f2, err := ReadFrame(r)
	if err != nil || !strings.HasSuffix(f2, "two") {
		t.Fatalf("frame2 = %q err=%v", f2, err)
	}
}

func TestReadFrameOctetCounted(t *testing.T) {
	msg := "<34>1 - h a p m - hi"
	r := bufio.NewReader(strings.NewReader("20 " + msg))
	f, err := ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if f != msg {
		t.Errorf("frame = %q, want %q", f, msg)
	}
}

func TestReadFrameBadLength(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("99999999999 x"))
	if _, err := ReadFrame(r); err == nil {
		t.Error("expected error for oversized frame length")
	}
}

func TestServerDropsGarbage(t *testing.T) {
	g := &gather{}
	srv := &Server{Handler: g}
	addr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	snd, err := DialSender("udp", addr.String(), func(*Message) string { return "garbage with no pri" })
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	for i := 0; i < 5; i++ {
		_ = snd.Send(testMessage("x"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, dropped := srv.Stats(); dropped >= 5 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, dropped := srv.Stats()
	t.Fatalf("dropped = %d, want >= 5", dropped)
}

func TestRelayForwards(t *testing.T) {
	// downstream server
	g := &gather{}
	down := &Server{Handler: g}
	downAddr, err := down.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer down.Close()

	// relay: UDP in, TCP out
	snd, err := DialSender("tcp", downAddr.String(), FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	relay := NewRelay(snd)
	relayAddr, err := relay.Server().ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	src, err := DialSender("udp", relayAddr.String(), FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 8; i++ {
		if err := src.Send(testMessage("forwarded")); err != nil {
			t.Fatal(err)
		}
	}
	msgs := g.wait(t, 8)
	if msgs[0].Content != "forwarded" {
		t.Errorf("relayed message = %+v", msgs[0])
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := &Server{}
	if _, err := srv.ListenUDP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerCloseWithOpenConnection guards against the shutdown hang where
// Close waited on handler goroutines blocked reading from still-open TCP
// connections.
func TestServerCloseWithOpenConnection(t *testing.T) {
	srv := &Server{Handler: &gather{}}
	addr, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snd, err := DialSender("tcp", addr.String(), FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	if err := snd.Send(testMessage("hello")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with an open client connection")
	}
}

func TestReadFrameOversizedPrefix(t *testing.T) {
	// A malicious peer streaming an endless digit run must be rejected
	// after maxFrameDigits bytes, not buffered until memory runs out.
	longRun := strings.Repeat("9", 1<<22)
	r := bufio.NewReader(strings.NewReader(longRun))
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("expected error for unbounded digit run")
	}

	// Eight digits exceed the prefix bound even with a space following.
	r = bufio.NewReader(strings.NewReader("10485760 x"))
	if _, err := ReadFrame(r); err == nil {
		t.Error("expected error for 8-digit length prefix")
	}

	// Non-digit garbage inside the prefix is rejected.
	r = bufio.NewReader(strings.NewReader("12a4 x"))
	if _, err := ReadFrame(r); err == nil {
		t.Error("expected error for non-digit in length prefix")
	}

	// The maximum legal frame still parses.
	payload := strings.Repeat("x", maxFrameLen)
	r = bufio.NewReader(strings.NewReader("1048576 " + payload))
	f, err := ReadFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != maxFrameLen {
		t.Errorf("frame len = %d, want %d", len(f), maxFrameLen)
	}
}

func TestServerMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	g := &gather{}
	srv := &Server{Handler: g, Metrics: reg}
	ua, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ta, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	us, err := DialSender("udp", ua.String(), FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	ts, err := DialSender("tcp", ta.String(), FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	for i := 0; i < 3; i++ {
		if err := us.Send(testMessage("udp msg")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := ts.Send(testMessage("tcp msg")); err != nil {
			t.Fatal(err)
		}
	}
	g.wait(t, 5)

	received, dropped := srv.Stats()
	if received != 5 || dropped != 0 {
		t.Errorf("Stats = %d/%d, want 5/0", received, dropped)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"syslog_received_total 5",
		`syslog_frames_total{transport="udp"} 3`,
		`syslog_frames_total{transport="tcp"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
