package syslog

import (
	"bytes"
	"fmt"
	"strings"
	"time"
	"unsafe"
)

// This file holds the zero-allocation ingest fast path: parsers that work
// directly on the listener's read buffer and fill a caller-supplied
// Message. Field extraction tracks byte spans into the frame; on success
// the frame is materialized into the Message with ONE sized copy (the
// slab behind Raw) and every string field aliases that slab. The string
// parsers in rfc3164.go / rfc5424.go are thin wrappers over these;
// equivalence is pinned by FuzzParseBytesEquivalence.

// span is a half-open byte range into the frame being parsed.
type span struct{ a, b int }

// bstr reinterprets b as a string without copying. Callers must guarantee
// b's bytes are never mutated afterwards; the byte parsers uphold this by
// only handing out views of a Message's private slab.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// stringBytes gives a read-only byte view of s without copying.
func stringBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// materialize copies the frame into the message's reusable slab and wires
// every retained field as a view of that single copy.
func (m *Message) materialize(buf []byte, host, app, pid, msgid, content, sd span) {
	n := len(buf)
	if cap(m.buf) < n {
		c := 2 * cap(m.buf)
		if c < n {
			c = n
		}
		if c < 128 {
			c = 128
		}
		m.buf = make([]byte, n, c)
	} else {
		m.buf = m.buf[:n]
	}
	copy(m.buf, buf)
	m.Raw = bstr(m.buf)
	m.Hostname = m.sub(host)
	m.AppName = m.sub(app)
	m.ProcID = m.sub(pid)
	m.MsgID = m.sub(msgid)
	m.Content = m.sub(content)
	m.sdRaw = m.sub(sd)
}

func (m *Message) sub(s span) string {
	if s.a >= s.b {
		return ""
	}
	return bstr(m.buf[s.a:s.b])
}

// parsePriBytes consumes "<NNN>" at the start of b, returning the
// priority and the offset of the first byte after '>'.
func parsePriBytes(b []byte) (Priority, int, error) {
	if len(b) == 0 {
		return 0, 0, ErrEmpty
	}
	if b[0] != '<' {
		return 0, 0, ErrNoPriority
	}
	end := bytes.IndexByte(b, '>')
	if end < 2 || end > 4 {
		return 0, 0, ErrBadPriority
	}
	pri := 0
	for _, c := range b[1:end] {
		if c < '0' || c > '9' {
			return 0, 0, ErrBadPriority
		}
		pri = pri*10 + int(c-'0')
	}
	p := Priority(pri)
	if !p.Valid() {
		return 0, 0, ErrBadPriority
	}
	return p, end + 1, nil
}

// ParseRFC3164Bytes parses a classic BSD syslog message from buf into m,
// semantically identical to ParseRFC3164 but without per-token
// allocation: the only steady-state cost is the single slab copy inside
// materialize. m is reset first; buf may be reused by the caller as soon
// as the call returns.
func ParseRFC3164Bytes(buf []byte, ref time.Time, m *Message) error {
	m.Reset()
	pri, off, err := parsePriBytes(buf)
	if err != nil {
		return err
	}
	m.Facility = pri.Facility()
	m.Severity = pri.Severity()

	ts, rest := consumeTimestampBytes(buf, off, ref)
	m.Timestamp = ts

	// HOSTNAME is the token up to the next space — but only if a timestamp
	// was present; otherwise the whole remainder is the content.
	var host span
	if !ts.IsZero() {
		if sp := bytes.IndexByte(buf[rest:], ' '); sp > 0 {
			host = span{rest, rest + sp}
			rest += sp + 1
		}
	}

	app, pid, content := splitTagBytes(buf, rest)
	m.materialize(buf, host, app, pid, span{}, content, span{})
	return nil
}

// consumeTimestampBytes mirrors consumeTimestamp: RFC 3339 variants are
// detected by the '-' at offset 4, the BSD format by its month
// abbreviation. The hand-rolled parsers cover the canonical forms;
// anything they reject goes through the exact legacy time.Parse calls so
// behaviour is unchanged for torn or exotic timestamps.
func consumeTimestampBytes(buf []byte, off int, ref time.Time) (time.Time, int) {
	s := buf[off:]
	if len(s) >= 20 && s[4] == '-' {
		if end := bytes.IndexByte(s, ' '); end > 0 {
			if t, ok := parseRFC3339Bytes(s[:end]); ok {
				return t, off + end + 1
			}
			tok := string(s[:end])
			for _, layout := range rfc3164TimeLayouts[1:] {
				if t, err := time.Parse(layout, tok); err == nil {
					return t, off + end + 1
				}
			}
		}
	}
	if len(s) >= 15 {
		t, ok, monthOK := parseStampBytes(s, ref)
		if !ok && monthOK {
			// The month matched but the rest is non-canonical; defer to
			// time.Parse for the handful of spellings it is laxer about.
			if lt, err := time.Parse(time.Stamp, string(s[:15])); err == nil {
				year := ref.Year()
				if year == 0 {
					year = 1
				}
				t = time.Date(year, lt.Month(), lt.Day(), lt.Hour(), lt.Minute(),
					lt.Second(), 0, ref.Location())
				ok = true
			}
		}
		if ok {
			rest := off + 15
			if rest < len(buf) && buf[rest] == ' ' {
				rest++
			}
			return t, rest
		}
	}
	return time.Time{}, off
}

// splitTagBytes mirrors splitTag over spans: "app[pid]: content". When no
// well-formed tag is present, the whole input from off is the content.
func splitTagBytes(buf []byte, off int) (app, pid, content span) {
	whole := span{off, len(buf)}
	s := buf[off:]
	i := 0
	for i < len(s) {
		c := s[i]
		if c == ':' || c == '[' || c == ' ' {
			break
		}
		if !isTagChar(c) {
			return span{}, span{}, whole
		}
		i++
	}
	if i == 0 || i > 48 {
		return span{}, span{}, whole
	}
	app = span{off, off + i}
	rest := off + i
	if rest < len(buf) && buf[rest] == '[' {
		end := bytes.IndexByte(buf[rest:], ']')
		if end < 0 {
			return span{}, span{}, whole
		}
		pid = span{rest + 1, rest + end}
		rest += end + 1
	}
	if rest >= len(buf) || buf[rest] != ':' {
		return span{}, span{}, whole
	}
	rest++
	if rest < len(buf) && buf[rest] == ' ' {
		rest++
	}
	return app, pid, span{rest, len(buf)}
}

// ParseRFC5424Bytes parses a modern syslog message from buf into m,
// semantically identical to ParseRFC5424. The header fast path is
// allocation-free; structured-data elements (rare on real traffic) still
// allocate their maps.
func ParseRFC5424Bytes(buf []byte, m *Message) error {
	m.Reset()
	pri, off, err := parsePriBytes(buf)
	if err != nil {
		return err
	}
	m.Facility = pri.Facility()
	m.Severity = pri.Severity()

	// VERSION
	if len(buf)-off < 2 || buf[off] != '1' || buf[off+1] != ' ' {
		return fmt.Errorf("%w: unsupported version", ErrBadFormat)
	}
	p := off + 2

	// TIMESTAMP HOSTNAME APP-NAME PROCID MSGID — space-separated tokens.
	var fields [5]span
	for i := 0; i < 5; i++ {
		sp := bytes.IndexByte(buf[p:], ' ')
		if sp < 0 {
			return fmt.Errorf("%w: truncated header", ErrBadFormat)
		}
		fields[i] = span{p, p + sp}
		p += sp + 1
	}
	if ts := buf[fields[0].a:fields[0].b]; !(len(ts) == 1 && ts[0] == '-') {
		t, ok := parseRFC3339Bytes(ts)
		if !ok {
			var perr error
			t, perr = time.Parse(time.RFC3339Nano, string(ts))
			if perr != nil {
				return fmt.Errorf("%w: bad timestamp %q", ErrBadFormat, ts)
			}
		}
		m.Timestamp = t
	}
	host := nilSpan(buf, fields[1])
	app := nilSpan(buf, fields[2])
	pid := nilSpan(buf, fields[3])
	msgid := nilSpan(buf, fields[4])

	// STRUCTURED-DATA: "-" or one or more [id k="v" ...] elements,
	// validated here but materialized lazily (Message.SD) — the ingest
	// hot path never reads the maps.
	sd, p, err := skipStructuredDataBytes(buf, p)
	if err != nil {
		return err
	}

	// MSG: optional, preceded by a single space; a UTF-8 BOM is stripped
	// per the RFC.
	content := span{p, len(buf)}
	if content.a < content.b && buf[content.a] == ' ' {
		content.a++
	}
	if content.b-content.a >= 3 && buf[content.a] == 0xef &&
		buf[content.a+1] == 0xbb && buf[content.a+2] == 0xbf {
		content.a += 3
	}
	m.materialize(buf, host, app, pid, msgid, content, sd)
	return nil
}

// nilSpan maps the RFC 5424 NILVALUE ("-") to the empty span.
func nilSpan(buf []byte, s span) span {
	if s.b-s.a == 1 && buf[s.a] == '-' {
		return span{}
	}
	return s
}

// skipStructuredDataBytes walks the STRUCTURED-DATA section starting at
// p with full validation — element framing and param shape — but builds
// nothing: it returns the section's span for deferred materialization.
// Rejecting exactly what parseStructuredDataBytes rejects keeps the
// RFC 5424/3164 auto-detection fallback behavior unchanged.
func skipStructuredDataBytes(buf []byte, p int) (span, int, error) {
	if p < len(buf) && buf[p] == '-' {
		return span{}, p + 1, nil
	}
	if p >= len(buf) || buf[p] != '[' {
		return span{}, 0, fmt.Errorf("%w: expected structured data", ErrBadFormat)
	}
	start := p
	for p < len(buf) && buf[p] == '[' {
		elemEnd := findSDEndBytes(buf[p:])
		if elemEnd < 0 {
			return span{}, 0, fmt.Errorf("%w: unterminated SD element", ErrBadFormat)
		}
		if err := validateSDElementBytes(buf[p+1 : p+elemEnd]); err != nil {
			return span{}, 0, err
		}
		p += elemEnd + 1
	}
	return span{start, p}, p, nil
}

// validateSDElementBytes checks one element's params without allocating:
// the structural mirror of parseSDElementBytes.
func validateSDElementBytes(elem []byte) error {
	sp := bytes.IndexByte(elem, ' ')
	if sp < 0 {
		return nil
	}
	rest := elem[sp+1:]
	for len(rest) != 0 {
		rest = bytes.TrimLeft(rest, " ")
		if len(rest) == 0 {
			break
		}
		eq := bytes.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return fmt.Errorf("%w: bad SD param in %q", ErrBadFormat, elem)
		}
		remainder, err := skipQuotedBytes(rest[eq+1:])
		if err != nil {
			return err
		}
		rest = remainder
	}
	return nil
}

// skipQuotedBytes consumes a leading `"..."` like parseQuotedBytes but
// discards the value.
func skipQuotedBytes(b []byte) ([]byte, error) {
	if len(b) == 0 || b[0] != '"' {
		return nil, fmt.Errorf("%w: expected quoted value", ErrBadFormat)
	}
	for i := 1; i < len(b); i++ {
		switch b[i] {
		case '\\':
			i++
		case '"':
			return b[i+1:], nil
		}
	}
	return nil, fmt.Errorf("%w: unterminated quoted value", ErrBadFormat)
}

func parseStructuredDataBytes(buf []byte, p int) (StructuredData, int, error) {
	if p < len(buf) && buf[p] == '-' {
		return nil, p + 1, nil
	}
	if p >= len(buf) || buf[p] != '[' {
		return nil, 0, fmt.Errorf("%w: expected structured data", ErrBadFormat)
	}
	sd := make(StructuredData)
	for p < len(buf) && buf[p] == '[' {
		elemEnd := findSDEndBytes(buf[p:])
		if elemEnd < 0 {
			return nil, 0, fmt.Errorf("%w: unterminated SD element", ErrBadFormat)
		}
		elem := buf[p+1 : p+elemEnd]
		p += elemEnd + 1
		id, params, err := parseSDElementBytes(elem)
		if err != nil {
			return nil, 0, err
		}
		sd[id] = params
	}
	return sd, p, nil
}

// findSDEndBytes locates the closing ']' of the SD element opening at
// b[0], honouring escaped \] inside quoted values.
func findSDEndBytes(b []byte) int {
	inQuote := false
	for i := 1; i < len(b); i++ {
		switch b[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			inQuote = !inQuote
		case ']':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseSDElementBytes(elem []byte) (string, map[string]string, error) {
	sp := bytes.IndexByte(elem, ' ')
	if sp < 0 {
		return string(elem), map[string]string{}, nil
	}
	id := string(elem[:sp])
	params := make(map[string]string, 4)
	rest := elem[sp+1:]
	for len(rest) != 0 {
		rest = bytes.TrimLeft(rest, " ")
		if len(rest) == 0 {
			break
		}
		eq := bytes.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", nil, fmt.Errorf("%w: bad SD param in %q", ErrBadFormat, elem)
		}
		name := string(rest[:eq])
		val, remainder, err := parseQuotedBytes(rest[eq+1:])
		if err != nil {
			return "", nil, err
		}
		params[name] = val
		rest = remainder
	}
	return id, params, nil
}

// parseQuotedBytes consumes a leading `"..."` handling \" \\ \] escapes.
// Values without escapes — the overwhelming majority — are converted in
// one string allocation; only a value containing a backslash pays for the
// byte-at-a-time unescaping pass.
func parseQuotedBytes(b []byte) (string, []byte, error) {
	if len(b) == 0 || b[0] != '"' {
		return "", nil, fmt.Errorf("%w: expected quoted value", ErrBadFormat)
	}
	for i := 1; i < len(b); i++ {
		switch b[i] {
		case '\\':
			return parseQuotedEscapedBytes(b, i)
		case '"':
			return string(b[1:i]), b[i+1:], nil
		}
	}
	return "", nil, fmt.Errorf("%w: unterminated quoted value", ErrBadFormat)
}

// parseQuotedEscapedBytes is the slow path of parseQuotedBytes, entered
// at the first backslash (index i); everything before it is literal.
func parseQuotedEscapedBytes(b []byte, i int) (string, []byte, error) {
	var sb strings.Builder
	sb.Grow(len(b) - 2)
	sb.Write(b[1:i])
	for ; i < len(b); i++ {
		switch b[i] {
		case '\\':
			if i+1 < len(b) {
				sb.WriteByte(b[i+1])
				i++
			}
		case '"':
			return sb.String(), b[i+1:], nil
		default:
			sb.WriteByte(b[i])
		}
	}
	return "", nil, fmt.Errorf("%w: unterminated quoted value", ErrBadFormat)
}

// ParseBytes auto-detects the wire format like Parse: RFC 5424 messages
// have "1 " after the PRI; anything else — including malformed 5424 —
// falls back to the RFC 3164 path, which accepts any content.
func ParseBytes(buf []byte, ref time.Time, m *Message) error {
	_, off, err := parsePriBytes(buf)
	if err != nil {
		return err
	}
	if len(buf)-off >= 2 && buf[off] == '1' && buf[off+1] == ' ' {
		if err := ParseRFC5424Bytes(buf, m); err == nil {
			return nil
		}
	}
	return ParseRFC3164Bytes(buf, ref, m)
}
