package syslog

import (
	"sync"
	"time"
)

// Hand-rolled, allocation-free parsers for the timestamp layouts accepted
// on the ingest fast path: time.Stamp ("Jan _2 15:04:05") and
// RFC 3339 / RFC 3339Nano. Both are deliberately *conservative*: they
// accept a subset of what time.Parse accepts (exactly the canonical wire
// forms) and report ok=false for anything else, so callers can fall back
// to time.Parse for the rare non-canonical case. For every input they do
// accept, the result is bit-for-bit what time.Parse produces (pinned by
// FuzzParseBytesEquivalence).

// monthFromAbbrev decodes a 3-byte English month abbreviation,
// case-insensitively (time.Parse's month matching is case-insensitive
// too). Returns 0 when the bytes are not a month name.
func monthFromAbbrev(b0, b1, b2 byte) time.Month {
	// Lowercase the three bytes; non-letters map to garbage that will
	// miss every case below.
	b0 |= 0x20
	b1 |= 0x20
	b2 |= 0x20
	switch b0 {
	case 'j':
		if b1 == 'a' && b2 == 'n' {
			return time.January
		}
		if b1 == 'u' {
			if b2 == 'n' {
				return time.June
			}
			if b2 == 'l' {
				return time.July
			}
		}
	case 'f':
		if b1 == 'e' && b2 == 'b' {
			return time.February
		}
	case 'm':
		if b1 == 'a' {
			if b2 == 'r' {
				return time.March
			}
			if b2 == 'y' {
				return time.May
			}
		}
	case 'a':
		if b1 == 'p' && b2 == 'r' {
			return time.April
		}
		if b1 == 'u' && b2 == 'g' {
			return time.August
		}
	case 's':
		if b1 == 'e' && b2 == 'p' {
			return time.September
		}
	case 'o':
		if b1 == 'c' && b2 == 't' {
			return time.October
		}
	case 'n':
		if b1 == 'o' && b2 == 'v' {
			return time.November
		}
	case 'd':
		if b1 == 'e' && b2 == 'c' {
			return time.December
		}
	}
	return 0
}

// daysInYear0 holds the day count per month in year 0, the year
// time.Parse assigns to year-less time.Stamp timestamps. Year 0 is a leap
// year in Go's proleptic calendar, so February has 29 days.
var daysInYear0 = [13]int{0, 31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// two decodes a fixed two-digit number.
func two(b0, b1 byte) (int, bool) {
	if !isDigit(b0) || !isDigit(b1) {
		return 0, false
	}
	return int(b0-'0')*10 + int(b1-'0'), true
}

// parseStampBytes parses the canonical BSD timestamp "Jan _2 15:04:05"
// from exactly 15 bytes, applying the reference year and location the way
// consumeTimestamp always has: the parsed (month, day, clock) is rebuilt
// with ref's year via time.Date, which also normalizes Feb 29 in non-leap
// reference years exactly like the time.Parse path did.
//
// The month lookup doubles as the cheap dispatch test: when it misses,
// the caller can skip the time.Parse fallback entirely, because
// time.Parse(time.Stamp, ...) matches month names case-insensitively and
// would reject the input too.
func parseStampBytes(b []byte, ref time.Time) (t time.Time, ok bool, monthOK bool) {
	if len(b) < 15 {
		return time.Time{}, false, false
	}
	month := monthFromAbbrev(b[0], b[1], b[2])
	if month == 0 {
		return time.Time{}, false, false
	}
	if b[3] != ' ' || b[6] != ' ' || b[9] != ':' || b[12] != ':' {
		return time.Time{}, false, true
	}
	var day int
	switch {
	case b[4] == ' ' && isDigit(b[5]):
		day = int(b[5] - '0')
	default:
		var dok bool
		day, dok = two(b[4], b[5])
		if !dok {
			return time.Time{}, false, true
		}
	}
	if day < 1 || day > daysInYear0[month] {
		return time.Time{}, false, true
	}
	hour, hok := two(b[7], b[8])
	min, mok := two(b[10], b[11])
	sec, sok := two(b[13], b[14])
	if !hok || !mok || !sok || hour > 23 || min > 59 || sec > 59 {
		return time.Time{}, false, true
	}
	year := ref.Year()
	if year == 0 {
		year = 1
	}
	return time.Date(year, month, day, hour, min, sec, 0, ref.Location()), true, true
}

// fixedZoneCache caches time.FixedZone locations by offset so repeated
// non-UTC RFC 3339 timestamps don't allocate a *Location per message.
var fixedZoneCache sync.Map // offsetSeconds int -> *time.Location

func cachedFixedZone(offset int) *time.Location {
	if loc, ok := fixedZoneCache.Load(offset); ok {
		return loc.(*time.Location)
	}
	loc := time.FixedZone("", offset)
	fixedZoneCache.Store(offset, loc)
	return loc
}

// parseRFC3339Bytes parses "2006-01-02T15:04:05[.fraction](Z|±hh:mm)"
// mirroring the strict fast path time.Parse uses for the RFC3339 and
// RFC3339Nano layouts (including its local-zone reuse for numeric
// offsets). ok=false means "fall back to time.Parse": the standard
// library's slow path additionally accepts a few non-canonical spellings
// (comma fractions, for one) that never appear on the wire.
func parseRFC3339Bytes(b []byte) (time.Time, bool) {
	if len(b) < 20 {
		return time.Time{}, false
	}
	year, y1ok := two(b[0], b[1])
	y2, y2ok := two(b[2], b[3])
	if !y1ok || !y2ok || b[4] != '-' || b[7] != '-' || b[10] != 'T' ||
		b[13] != ':' || b[16] != ':' {
		return time.Time{}, false
	}
	year = year*100 + y2
	month, mok := two(b[5], b[6])
	day, dok := two(b[8], b[9])
	hour, hok := two(b[11], b[12])
	min, minok := two(b[14], b[15])
	sec, sok := two(b[17], b[18])
	if !mok || !dok || !hok || !minok || !sok {
		return time.Time{}, false
	}
	if month < 1 || month > 12 || hour > 23 || min > 59 || sec > 59 {
		return time.Time{}, false
	}
	if day < 1 || day > daysIn(year, time.Month(month)) {
		return time.Time{}, false
	}
	i := 19
	nsec := 0
	if b[i] == '.' {
		j := i + 1
		for j < len(b) && isDigit(b[j]) {
			j++
		}
		if j == i+1 {
			return time.Time{}, false // "." with no digits
		}
		// First nine digits are significant; the rest (legal per the
		// grammar) are consumed and truncated, like time.Parse does.
		scale := 100_000_000
		for k := i + 1; k < j && k <= i+9; k++ {
			nsec += int(b[k]-'0') * scale
			scale /= 10
		}
		i = j
		if i >= len(b) {
			return time.Time{}, false
		}
	}
	switch b[i] {
	case 'Z':
		if i+1 != len(b) {
			return time.Time{}, false
		}
		return time.Date(year, time.Month(month), day, hour, min, sec, nsec, time.UTC), true
	case '+', '-':
		if i+6 != len(b) || b[i+3] != ':' {
			return time.Time{}, false
		}
		zh, zhok := two(b[i+1], b[i+2])
		zm, zmok := two(b[i+4], b[i+5])
		if !zhok || !zmok || zh > 23 || zm > 59 {
			return time.Time{}, false
		}
		offset := (zh*60 + zm) * 60
		if b[i] == '-' {
			offset = -offset
		}
		t := time.Date(year, time.Month(month), day, hour, min, sec, nsec, time.UTC).
			Add(-time.Duration(offset) * time.Second)
		// Prefer the local zone when it has this offset at this instant —
		// exactly what time.Parse does — so formatting round-trips match.
		if _, localOff := t.In(time.Local).Zone(); localOff == offset {
			return t.In(time.Local), true
		}
		return t.In(cachedFixedZone(offset)), true
	}
	return time.Time{}, false
}

// daysIn returns the day count of a month, honouring leap Februaries.
func daysIn(year int, m time.Month) int {
	if m == time.February && isLeap(year) {
		return 29
	}
	return daysInYear0[m] - b2i(m == time.February)
}

func isLeap(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
