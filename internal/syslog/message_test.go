package syslog

import (
	"testing"
	"time"
)

func TestSeverityString(t *testing.T) {
	cases := map[Severity]string{
		Emergency: "emerg", Alert: "alert", Critical: "crit", Error: "err",
		Warning: "warning", Notice: "notice", Info: "info", Debug: "debug",
	}
	for sev, want := range cases {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", sev, got, want)
		}
	}
	if got := Severity(42).String(); got != "severity(42)" {
		t.Errorf("out-of-range severity = %q", got)
	}
}

func TestFacilityString(t *testing.T) {
	cases := map[Facility]string{
		Kern: "kern", Daemon: "daemon", AuthPriv: "authpriv",
		Local0: "local0", Local7: "local7",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Facility(%d).String() = %q, want %q", f, got, want)
		}
	}
	if Facility(99).Valid() {
		t.Error("Facility(99) should be invalid")
	}
}

func TestPriorityRoundTrip(t *testing.T) {
	for f := Kern; f <= Local7; f++ {
		for s := Emergency; s <= Debug; s++ {
			p := Make(f, s)
			if !p.Valid() {
				t.Fatalf("Make(%d,%d) invalid", f, s)
			}
			if p.Facility() != f || p.Severity() != s {
				t.Fatalf("priority %d round-trip: got (%d,%d), want (%d,%d)",
					p, p.Facility(), p.Severity(), f, s)
			}
		}
	}
	if Priority(192).Valid() {
		t.Error("Priority(192) should be invalid")
	}
}

func TestMessageTag(t *testing.T) {
	m := &Message{AppName: "sshd", ProcID: "4321"}
	if got := m.Tag(); got != "sshd[4321]" {
		t.Errorf("Tag() = %q", got)
	}
	m.ProcID = ""
	if got := m.Tag(); got != "sshd" {
		t.Errorf("Tag() without pid = %q", got)
	}
	m.AppName = ""
	if got := m.Tag(); got != "" {
		t.Errorf("Tag() without app = %q", got)
	}
}

func TestMessageClone(t *testing.T) {
	m := &Message{
		Facility: Daemon, Severity: Warning,
		Timestamp:  time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC),
		Hostname:   "cn101",
		AppName:    "kernel",
		Content:    "CPU3: Core temperature above threshold",
		Structured: StructuredData{"meta@1": {"rack": "r7"}},
	}
	c := m.Clone()
	if c.Content != m.Content || c.Hostname != m.Hostname {
		t.Fatal("clone lost scalar fields")
	}
	c.Structured["meta@1"]["rack"] = "r9"
	if m.Structured["meta@1"]["rack"] != "r7" {
		t.Error("Clone shares structured data with original")
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{
		Facility: Auth, Severity: Info,
		Timestamp: time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC),
		Hostname:  "cn101", AppName: "sshd", ProcID: "99",
		Content: "Accepted publickey for root",
	}
	got := m.String()
	want := "auth.info 2023-07-01T12:00:00Z cn101 sshd[99]: Accepted publickey for root"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
