// Package syslog implements the syslog wire formats (RFC 3164 and RFC 5424)
// together with UDP/TCP listeners and a forwarding relay. It is the transport
// substrate of the reproduction: compute nodes emit syslog, a primary syslog
// server relays it, and the collector ingests it (paper §4.2).
package syslog

import (
	"fmt"
	"strings"
	"time"
)

// Severity is the syslog severity level (RFC 5424 §6.2.1).
type Severity int

// Severity levels, most to least severe.
const (
	Emergency Severity = iota
	Alert
	Critical
	Error
	Warning
	Notice
	Info
	Debug
)

var severityNames = [...]string{
	"emerg", "alert", "crit", "err", "warning", "notice", "info", "debug",
}

// String returns the conventional short name ("warning", "err", ...).
func (s Severity) String() string {
	if s < 0 || int(s) >= len(severityNames) {
		return fmt.Sprintf("severity(%d)", int(s))
	}
	return severityNames[s]
}

// Valid reports whether s is one of the eight defined severities.
func (s Severity) Valid() bool { return s >= Emergency && s <= Debug }

// Facility is the syslog facility code (RFC 5424 §6.2.1).
type Facility int

// Facility codes. LOCAL0..LOCAL7 are 16..23.
const (
	Kern Facility = iota
	User
	Mail
	Daemon
	Auth
	Syslog
	LPR
	News
	UUCP
	Cron
	AuthPriv
	FTP
	NTP
	LogAudit
	LogAlert
	Clock
	Local0
	Local1
	Local2
	Local3
	Local4
	Local5
	Local6
	Local7
)

var facilityNames = [...]string{
	"kern", "user", "mail", "daemon", "auth", "syslog", "lpr", "news",
	"uucp", "cron", "authpriv", "ftp", "ntp", "audit", "alert", "clock",
	"local0", "local1", "local2", "local3", "local4", "local5", "local6", "local7",
}

// String returns the conventional facility name ("daemon", "local0", ...).
func (f Facility) String() string {
	if f < 0 || int(f) >= len(facilityNames) {
		return fmt.Sprintf("facility(%d)", int(f))
	}
	return facilityNames[f]
}

// Valid reports whether f is one of the 24 defined facilities.
func (f Facility) Valid() bool { return f >= Kern && f <= Local7 }

// Priority is the combined <PRI> value: facility*8 + severity.
type Priority int

// Make combines a facility and severity into a Priority.
func Make(f Facility, s Severity) Priority { return Priority(int(f)*8 + int(s)) }

// Facility extracts the facility part of the priority.
func (p Priority) Facility() Facility { return Facility(p / 8) }

// Severity extracts the severity part of the priority.
func (p Priority) Severity() Severity { return Severity(p % 8) }

// Valid reports whether p is within the encodable range 0..191.
func (p Priority) Valid() bool { return p >= 0 && p <= 191 }

// StructuredData holds RFC 5424 structured-data elements:
// SD-ID -> param name -> param value.
type StructuredData map[string]map[string]string

// Message is a parsed syslog message, independent of wire format.
//
// RFC 3164 messages fill Facility, Severity, Timestamp, Hostname, AppName,
// ProcID and Content. RFC 5424 messages additionally carry MsgID and
// Structured. Raw preserves the original wire bytes when the message came
// off a network listener or parser.
//
// Ownership: a Message delivered by a Server's Handler (or BatchHandler)
// comes from an internal pool and is valid only until the handler
// returns. A handler that retains the message — stores it, enqueues it,
// sends it to another goroutine — has two options:
//
//   - Lease: the server skips recycling and ownership transfers to the
//     handler, which must call Recycle exactly once when it is done with
//     the message (typically right after indexing, which copies every
//     retained byte into the store's arenas). This is the fast path — the
//     message and its slab go back to the pool instead of being replaced
//     by a fresh allocation per record.
//   - Detach: the server forgets the message permanently and its string
//     fields stay valid forever. Use when the message's lifetime is
//     unbounded (retained in analysis state, returned to a caller).
//
// Messages obtained any other way (literals, the string parsers, Clone)
// are ordinary heap values and never recycled; Lease, Detach and Recycle
// are no-ops on them.
type Message struct {
	Facility   Facility
	Severity   Severity
	Timestamp  time.Time
	Hostname   string
	AppName    string
	ProcID     string
	MsgID      string
	Structured StructuredData
	Content    string
	Raw        string

	// buf is the materialization slab for the byte parsers: one sized
	// copy of the wire frame that Raw, Hostname, AppName, ProcID, MsgID
	// and Content alias. Reset keeps it, so a pooled Message re-parses
	// without allocating.
	buf []byte
	// sdRaw is the validated-but-unparsed STRUCTURED-DATA section of a
	// byte-parsed message (a view of buf, like the other fields). The
	// byte parsers defer building the Structured maps because most
	// consumers — the collector pipeline, the store mapping — never read
	// them; SD materializes on first use.
	sdRaw string
	// pooled marks a message currently owned by a Server pool. Detach
	// and Lease clear it.
	pooled bool
	// leased marks a pool-origin message whose ownership was transferred
	// to the handler via Lease; Recycle (and only Recycle) returns it to
	// the pool.
	leased bool
}

// Reset clears the message for reuse, retaining the materialization slab
// so the next byte-parse into it does not allocate.
func (m *Message) Reset() {
	buf, pooled := m.buf, m.pooled
	*m = Message{buf: buf[:0], pooled: pooled}
}

// Detach releases a pool-owned message from its Server's pool: the server
// will not recycle it after the handler returns, so the message and every
// string field remain valid indefinitely. It returns m for chaining.
// Calling Detach on a message that never came from a pool is a no-op.
func (m *Message) Detach() *Message {
	m.pooled = false
	m.leased = false
	return m
}

// Lease transfers ownership of a pool-owned message from the Server to
// the handler: the server will not recycle it after the handler returns,
// and the new owner must call Recycle exactly once when the message's
// strings are no longer referenced. It returns m for chaining. On a
// message that is not currently server-owned, Lease is Detach: a plain
// heap value stays a plain heap value.
func (m *Message) Lease() *Message {
	if m.pooled {
		m.leased = true
		m.pooled = false
	}
	return m
}

// Transient reports whether the message's strings have a bounded
// lifetime — it is pool-owned or leased, so it will be re-parsed after
// the current processing step releases it. Consumers that retain message
// strings beyond that point (dedup state, analysis rings) must Clone a
// transient message first.
func (m *Message) Transient() bool { return m.pooled || m.leased }

// SD returns the message's structured data, materializing it on first
// use: the byte parsers validate the SD section during parsing but defer
// building its maps until something asks for them. Reading the
// Structured field directly is still correct for messages built by hand
// or by the string parsers; SD covers both.
func (m *Message) SD() StructuredData {
	if m.Structured == nil && m.sdRaw != "" {
		// Framing and params were validated at parse time, so this
		// cannot fail on a parser-produced message.
		m.Structured, _, _ = parseStructuredDataBytes(stringBytes(m.sdRaw), 0)
	}
	return m.Structured
}

// Priority returns the combined <PRI> value of the message.
func (m *Message) Priority() Priority { return Make(m.Facility, m.Severity) }

// Tag returns the RFC 3164 style TAG: "app[pid]" or just "app".
func (m *Message) Tag() string {
	if m.AppName == "" {
		return ""
	}
	if m.ProcID == "" {
		return m.AppName
	}
	return m.AppName + "[" + m.ProcID + "]"
}

// String renders a human-oriented one-line summary (not a wire format).
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s.%s %s %s", m.Facility, m.Severity,
		m.Timestamp.Format(time.RFC3339), m.Hostname)
	if tag := m.Tag(); tag != "" {
		b.WriteByte(' ')
		b.WriteString(tag)
		b.WriteByte(':')
	}
	b.WriteByte(' ')
	b.WriteString(m.Content)
	return b.String()
}

// Clone returns a deep copy of the message. The copy is always an
// ordinary heap value: cloning a byte-parsed message (pooled or not)
// copies its string fields out of the materialization slab, so the clone
// stays valid after the original is re-parsed or recycled.
func (m *Message) Clone() *Message {
	c := *m
	c.buf = nil
	c.pooled = false
	c.leased = false
	if len(m.buf) > 0 {
		c.Hostname = strings.Clone(m.Hostname)
		c.AppName = strings.Clone(m.AppName)
		c.ProcID = strings.Clone(m.ProcID)
		c.MsgID = strings.Clone(m.MsgID)
		c.Content = strings.Clone(m.Content)
		c.Raw = strings.Clone(m.Raw)
		c.sdRaw = strings.Clone(m.sdRaw)
	}
	if m.Structured != nil {
		c.Structured = make(StructuredData, len(m.Structured))
		for id, params := range m.Structured {
			p := make(map[string]string, len(params))
			for k, v := range params {
				p[k] = v
			}
			c.Structured[id] = p
		}
	}
	return &c
}
