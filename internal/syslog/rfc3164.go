package syslog

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Parsing errors shared by both wire formats.
var (
	ErrEmpty       = errors.New("syslog: empty message")
	ErrNoPriority  = errors.New("syslog: missing <PRI> header")
	ErrBadPriority = errors.New("syslog: invalid <PRI> value")
	ErrBadFormat   = errors.New("syslog: malformed message")
)

// parsePri consumes "<NNN>" at the start of s and returns the priority and
// the remainder of the string.
func parsePri(s string) (Priority, string, error) {
	if s == "" {
		return 0, "", ErrEmpty
	}
	if s[0] != '<' {
		return 0, "", ErrNoPriority
	}
	end := strings.IndexByte(s, '>')
	if end < 2 || end > 4 {
		return 0, "", ErrBadPriority
	}
	pri := 0
	for _, c := range s[1:end] {
		if c < '0' || c > '9' {
			return 0, "", ErrBadPriority
		}
		pri = pri*10 + int(c-'0')
	}
	p := Priority(pri)
	if !p.Valid() {
		return 0, "", ErrBadPriority
	}
	return p, s[end+1:], nil
}

// rfc3164TimeLayouts lists timestamp layouts accepted in the RFC 3164
// header, most common first. Real rsyslog deployments frequently emit
// RFC3339 timestamps in the legacy format position, so we accept both.
var rfc3164TimeLayouts = []string{
	time.Stamp,       // "Jan _2 15:04:05" — the canonical BSD format
	time.RFC3339,     // rsyslog's "high precision" mode
	time.RFC3339Nano, //
}

// ParseRFC3164 parses a classic BSD syslog message:
//
//	<34>Oct 11 22:14:15 mymachine su[231]: 'su root' failed on /dev/pts/8
//
// Missing timestamps and hostnames are tolerated (RFC 3164 relays are
// required to cope with them); the zero time and empty hostname result.
// The reference year for BSD timestamps (which carry no year) is taken from
// ref; pass time.Now() in production code.
//
// This is a thin wrapper over ParseRFC3164Bytes; use the byte parser
// directly on hot paths to reuse the Message allocation.
func ParseRFC3164(raw string, ref time.Time) (*Message, error) {
	m := &Message{}
	if err := ParseRFC3164Bytes(stringBytes(raw), ref, m); err != nil {
		return nil, err
	}
	return m, nil
}

// parseRFC3164Legacy is the original token-by-token string implementation,
// kept unexported as the reference oracle for FuzzParseBytesEquivalence:
// the byte parsers must agree with it on every input.
func parseRFC3164Legacy(raw string, ref time.Time) (*Message, error) {
	m := &Message{Raw: raw}
	pri, rest, err := parsePri(raw)
	if err != nil {
		return nil, err
	}
	m.Facility = pri.Facility()
	m.Severity = pri.Severity()

	rest, ts := consumeTimestamp(rest, ref)
	m.Timestamp = ts

	// HOSTNAME is the token up to the next space — but only if a timestamp
	// was present; otherwise the whole remainder is the content.
	if !ts.IsZero() {
		if sp := strings.IndexByte(rest, ' '); sp > 0 {
			m.Hostname = rest[:sp]
			rest = rest[sp+1:]
		}
	}

	// TAG: "app[pid]:" or "app:" — alphanumerics plus a few symbols, max 32
	// chars per the RFC (tolerated longer in practice).
	app, pid, content := splitTag(rest)
	m.AppName = app
	m.ProcID = pid
	m.Content = content
	return m, nil
}

// consumeTimestamp tries each accepted layout at the front of s. On success
// it returns the remainder after the timestamp and one following space.
func consumeTimestamp(s string, ref time.Time) (string, time.Time) {
	// RFC3339 variants: find the end at the first space.
	if len(s) >= 20 && s[4] == '-' {
		end := strings.IndexByte(s, ' ')
		if end > 0 {
			for _, layout := range rfc3164TimeLayouts[1:] {
				if t, err := time.Parse(layout, s[:end]); err == nil {
					return s[end+1:], t
				}
			}
		}
	}
	// BSD format is fixed width: "Jan _2 15:04:05" = 15 bytes.
	if len(s) >= 15 {
		if t, err := time.Parse(time.Stamp, s[:15]); err == nil {
			year := ref.Year()
			if year == 0 {
				year = 1
			}
			t = time.Date(year, t.Month(), t.Day(), t.Hour(), t.Minute(),
				t.Second(), 0, ref.Location())
			rest := s[15:]
			rest = strings.TrimPrefix(rest, " ")
			return rest, t
		}
	}
	return s, time.Time{}
}

// splitTag splits "app[pid]: content" into its parts. If no well-formed tag
// is present the whole input is returned as content.
func splitTag(s string) (app, pid, content string) {
	i := 0
	for i < len(s) {
		c := s[i]
		if c == ':' || c == '[' || c == ' ' {
			break
		}
		if !isTagChar(c) {
			return "", "", s
		}
		i++
	}
	if i == 0 || i > 48 {
		return "", "", s
	}
	app = s[:i]
	rest := s[i:]
	if strings.HasPrefix(rest, "[") {
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return "", "", s
		}
		pid = rest[1:end]
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, ":") {
		return "", "", s
	}
	content = strings.TrimPrefix(rest[1:], " ")
	return app, pid, content
}

func isTagChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '-' || c == '_' || c == '.' || c == '/':
		return true
	}
	return false
}

// FormatRFC3164 renders m in the classic BSD format.
func FormatRFC3164(m *Message) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%d>", int(m.Priority()))
	ts := m.Timestamp
	if ts.IsZero() {
		ts = time.Date(2023, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	b.WriteString(ts.Format(time.Stamp))
	b.WriteByte(' ')
	host := m.Hostname
	if host == "" {
		host = "-"
	}
	b.WriteString(host)
	if tag := m.Tag(); tag != "" {
		b.WriteByte(' ')
		b.WriteString(tag)
		b.WriteByte(':')
	}
	b.WriteByte(' ')
	b.WriteString(m.Content)
	return b.String()
}
