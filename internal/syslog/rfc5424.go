package syslog

import (
	"fmt"
	"strings"
	"time"
)

// ParseRFC5424 parses a modern syslog message (RFC 5424 §6):
//
//	<165>1 2003-10-11T22:14:15.003Z mymachine.example.com evntslog 111 ID47
//	  [exampleSDID@32473 iut="3"] BOMAn application event log entry...
//
// The version must be 1. NILVALUE ("-") fields come back as empty strings.
//
// This is a thin wrapper over ParseRFC5424Bytes; use the byte parser
// directly on hot paths to reuse the Message allocation.
func ParseRFC5424(raw string) (*Message, error) {
	m := &Message{}
	if err := ParseRFC5424Bytes(stringBytes(raw), m); err != nil {
		return nil, err
	}
	return m, nil
}

// parseRFC5424Legacy is the original string implementation, kept
// unexported as the reference oracle for FuzzParseBytesEquivalence: the
// byte parsers must agree with it on every input.
func parseRFC5424Legacy(raw string) (*Message, error) {
	m := &Message{Raw: raw}
	pri, rest, err := parsePri(raw)
	if err != nil {
		return nil, err
	}
	m.Facility = pri.Facility()
	m.Severity = pri.Severity()

	// VERSION
	if !strings.HasPrefix(rest, "1 ") {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadFormat)
	}
	rest = rest[2:]

	// TIMESTAMP HOSTNAME APP-NAME PROCID MSGID — space-separated tokens.
	fields := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
		}
		fields = append(fields, rest[:sp])
		rest = rest[sp+1:]
	}
	if fields[0] != "-" {
		t, err := time.Parse(time.RFC3339Nano, fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: bad timestamp %q", ErrBadFormat, fields[0])
		}
		m.Timestamp = t
	}
	m.Hostname = nilValue(fields[1])
	m.AppName = nilValue(fields[2])
	m.ProcID = nilValue(fields[3])
	m.MsgID = nilValue(fields[4])

	// STRUCTURED-DATA: "-" or one or more [id k="v" ...] elements.
	sd, rest, err := parseStructuredData(rest)
	if err != nil {
		return nil, err
	}
	m.Structured = sd

	// MSG: optional, preceded by a single space.
	m.Content = strings.TrimPrefix(rest, " ")
	m.Content = strings.TrimPrefix(m.Content, "\xef\xbb\xbf") // UTF-8 BOM per RFC
	return m, nil
}

func nilValue(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

func parseStructuredData(s string) (StructuredData, string, error) {
	if strings.HasPrefix(s, "-") {
		return nil, s[1:], nil
	}
	if !strings.HasPrefix(s, "[") {
		return nil, "", fmt.Errorf("%w: expected structured data", ErrBadFormat)
	}
	sd := make(StructuredData)
	for strings.HasPrefix(s, "[") {
		elemEnd := findSDEnd(s)
		if elemEnd < 0 {
			return nil, "", fmt.Errorf("%w: unterminated SD element", ErrBadFormat)
		}
		elem := s[1:elemEnd]
		s = s[elemEnd+1:]
		id, params, err := parseSDElement(elem)
		if err != nil {
			return nil, "", err
		}
		sd[id] = params
	}
	return sd, s, nil
}

// findSDEnd locates the closing ']' of the SD element opening at s[0],
// honouring escaped \] inside quoted values.
func findSDEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			inQuote = !inQuote
		case ']':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseSDElement(elem string) (string, map[string]string, error) {
	sp := strings.IndexByte(elem, ' ')
	if sp < 0 {
		return elem, map[string]string{}, nil
	}
	id := elem[:sp]
	params := make(map[string]string)
	rest := elem[sp+1:]
	for rest != "" {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", nil, fmt.Errorf("%w: bad SD param in %q", ErrBadFormat, elem)
		}
		name := rest[:eq]
		val, remainder, err := parseQuoted(rest[eq+1:])
		if err != nil {
			return "", nil, err
		}
		params[name] = val
		rest = remainder
	}
	return id, params, nil
}

// parseQuoted consumes a leading `"..."` handling \" \\ \] escapes.
func parseQuoted(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("%w: expected quoted value", ErrBadFormat)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 < len(s) {
				b.WriteByte(s[i+1])
				i++
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("%w: unterminated quoted value", ErrBadFormat)
}

// FormatRFC5424 renders m in RFC 5424 format.
func FormatRFC5424(m *Message) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%d>1 ", int(m.Priority()))
	if m.Timestamp.IsZero() {
		b.WriteString("- ")
	} else {
		b.WriteString(m.Timestamp.Format(time.RFC3339Nano))
		b.WriteByte(' ')
	}
	for _, f := range []string{m.Hostname, m.AppName, m.ProcID, m.MsgID} {
		if f == "" {
			f = "-"
		}
		b.WriteString(f)
		b.WriteByte(' ')
	}
	if sd := m.SD(); len(sd) == 0 {
		b.WriteByte('-')
	} else {
		// Sort IDs for deterministic output.
		ids := make([]string, 0, len(sd))
		for id := range sd {
			ids = append(ids, id)
		}
		sortStrings(ids)
		for _, id := range ids {
			b.WriteByte('[')
			b.WriteString(id)
			params := sd[id]
			names := make([]string, 0, len(params))
			for n := range params {
				names = append(names, n)
			}
			sortStrings(names)
			for _, n := range names {
				b.WriteByte(' ')
				b.WriteString(n)
				b.WriteString(`="`)
				b.WriteString(escapeSDValue(params[n]))
				b.WriteByte('"')
			}
			b.WriteByte(']')
		}
	}
	if m.Content != "" {
		b.WriteByte(' ')
		b.WriteString(m.Content)
	}
	return b.String()
}

func escapeSDValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, `]`, `\]`)
	return v
}

func sortStrings(s []string) {
	// Insertion sort: SD elements are tiny; avoids importing sort here.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Parse auto-detects the wire format: RFC 5424 messages have "1 " after
// the PRI; anything else — including malformed 5424 — falls back to the
// RFC 3164 path, which (per that RFC's relay rules) accepts any content.
//
// This is a thin wrapper over ParseBytes; use the byte parser directly on
// hot paths to reuse the Message allocation.
func Parse(raw string, ref time.Time) (*Message, error) {
	m := &Message{}
	if err := ParseBytes(stringBytes(raw), ref, m); err != nil {
		return nil, err
	}
	return m, nil
}

// parseLegacy is the original auto-detecting string implementation, kept
// unexported as the reference oracle for FuzzParseBytesEquivalence.
func parseLegacy(raw string, ref time.Time) (*Message, error) {
	_, rest, err := parsePri(raw)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(rest, "1 ") {
		if m, err := parseRFC5424Legacy(raw); err == nil {
			return m, nil
		}
	}
	return parseRFC3164Legacy(raw, ref)
}
