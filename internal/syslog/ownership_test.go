package syslog

import (
	"testing"
	"time"
)

// TestMessageOwnershipStateMachine pins the pooled → leased → pooled
// lifecycle behind the zero-garbage ingest path: Lease hands a pool-owned
// message to the pipeline without copying, Recycle returns it once every
// retention point has copied what it keeps, and Detach remains the
// permanent opt-out.
func TestMessageOwnershipStateMachine(t *testing.T) {
	m := getMessage()
	if !m.pooled || m.leased {
		t.Fatalf("fresh pool message: pooled=%v leased=%v, want pooled only", m.pooled, m.leased)
	}
	if !m.Transient() {
		t.Error("pool-owned message must be Transient")
	}

	if got := m.Lease(); got != m {
		t.Error("Lease must return its receiver for chaining")
	}
	if m.pooled || !m.leased {
		t.Fatalf("after Lease: pooled=%v leased=%v, want leased only", m.pooled, m.leased)
	}
	if !m.Transient() {
		t.Error("leased message must remain Transient")
	}

	// Leasing a non-pooled message is a no-op: the pipeline may pass a
	// heap message (spool replay, tests) through the same code path.
	heap := &Message{}
	heap.Lease()
	if heap.pooled || heap.leased || heap.Transient() {
		t.Error("Lease on a heap message must not mark it transient")
	}

	// Recycle is the release half: only a leased message goes back.
	Recycle(heap) // no-op, not leased
	Recycle(nil)  // nil-safe
	Recycle(m)
	if m.leased || !m.pooled {
		t.Fatalf("after Recycle: pooled=%v leased=%v, want pooled only", m.pooled, m.leased)
	}

	// Double release must be harmless: the first Recycle cleared leased,
	// so a second (buggy) call cannot put the message into the pool twice.
	Recycle(m)

	// Detach opts out permanently, even mid-lease.
	m2 := getMessage().Lease()
	m2.Detach()
	if m2.pooled || m2.leased || m2.Transient() {
		t.Error("Detach must clear both ownership flags")
	}
	Recycle(m2) // no-op: detached messages never return to the pool

	// Clone always yields an independent heap message.
	m3 := getMessage().Lease()
	m3.Hostname = "cn001"
	c := m3.Clone()
	if c.pooled || c.leased || c.Transient() {
		t.Error("Clone must not be transient")
	}
	Recycle(m3)
}

// TestRecycledMessageReparse proves the hazard Recycle exists to manage:
// re-parsing into a recycled message overwrites its materialization slab,
// so any undetached string view of the old contents changes underneath
// its holder. Consumers must copy before Recycle — this test documents
// the sharp edge the clone-at-retention points guard against.
func TestRecycledMessageReparse(t *testing.T) {
	m := getMessage()
	ref := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	if err := ParseBytes([]byte("<13>Aug  7 12:00:00 cn042 kernel: CPU 3 throttled"), ref, m); err != nil {
		t.Fatal(err)
	}
	if m.Hostname != "cn042" {
		t.Fatalf("parsed hostname = %q", m.Hostname)
	}
	aliased := m.Content // view of m's slab, NOT copied
	cloned := m.Clone()

	m.Lease()
	Recycle(m)
	m2 := getMessage()
	if m2 != m {
		t.Skip("pool returned a different message; cannot demonstrate reuse deterministically")
	}
	if err := ParseBytes([]byte("<13>Aug  7 12:00:01 gpu07 sshd: Accepted publickey for root from 10.0.0.9"), ref, m2); err != nil {
		t.Fatal(err)
	}

	// The clone is immune; the aliased view is not guaranteed anything.
	if cloned.Content != "CPU 3 throttled" || cloned.Hostname != "cn042" {
		t.Errorf("cloned message mutated by pool reuse: %q from %q", cloned.Content, cloned.Hostname)
	}
	_ = aliased // may or may not still read the old bytes; holding it past Recycle is the bug
}
