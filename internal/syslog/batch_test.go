package syslog

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// batchGather records BatchHandler deliveries: every message (detached, per
// the ownership rule) plus the size of each batch. HandleSyslog records a
// stray single delivery — the server must never use it when the handler
// implements BatchHandler.
type batchGather struct {
	mu      sync.Mutex
	msgs    []*Message
	batches []int
	singles int
}

func (g *batchGather) HandleSyslog(m *Message) {
	g.mu.Lock()
	g.singles++
	g.msgs = append(g.msgs, m.Detach())
	g.mu.Unlock()
}

func (g *batchGather) HandleSyslogBatch(ms []*Message) {
	g.mu.Lock()
	g.batches = append(g.batches, len(ms))
	for _, m := range ms {
		g.msgs = append(g.msgs, m.Detach())
	}
	g.mu.Unlock()
}

func (g *batchGather) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		got := len(g.msgs)
		g.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t.Fatalf("timed out: %d of %d messages", len(g.msgs), n)
}

func TestServerUDPBatchDelivery(t *testing.T) {
	g := &batchGather{}
	srv := &Server{Handler: g}
	addr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	snd, err := DialSender("udp", addr.String(), FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if err := snd.Send(testMessage(fmt.Sprintf("burst %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	g.wait(t, n)

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.singles != 0 {
		t.Errorf("server used HandleSyslog %d times despite BatchHandler", g.singles)
	}
	total := 0
	for _, sz := range g.batches {
		if sz < 1 || sz > DefaultMaxBatch {
			t.Errorf("batch size %d outside [1, %d]", sz, DefaultMaxBatch)
		}
		total += sz
	}
	if total != n {
		t.Errorf("batched messages = %d, want %d", total, n)
	}
	recv, drop := srv.Stats()
	if recv != n || drop != 0 {
		t.Errorf("Stats = %d/%d, want %d/0", recv, drop, n)
	}
	for i, m := range g.msgs {
		if m.Hostname != "cn7" || !strings.HasPrefix(m.Content, "burst ") {
			t.Fatalf("message %d corrupted: %+v", i, m)
		}
	}
}

// TestServerTCPBatchRespectsMaxBatch writes many frames in a single TCP
// segment so the server's drain loop sees them all buffered at once, and
// checks the batches arrive intact and capped at MaxBatch.
func TestServerTCPBatchRespectsMaxBatch(t *testing.T) {
	g := &batchGather{}
	srv := &Server{Handler: g, MaxBatch: 4}
	addr, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 21
	var sb strings.Builder
	for i := 0; i < n; i++ {
		wire := FormatRFC5424(testMessage(fmt.Sprintf("frame %d", i)))
		fmt.Fprintf(&sb, "%d %s", len(wire), wire)
	}
	if _, err := conn.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	g.wait(t, n)

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.singles != 0 {
		t.Errorf("server used HandleSyslog %d times despite BatchHandler", g.singles)
	}
	total := 0
	for _, sz := range g.batches {
		if sz > 4 {
			t.Errorf("batch size %d exceeds MaxBatch 4", sz)
		}
		total += sz
	}
	if total != n {
		t.Errorf("batched messages = %d, want %d", total, n)
	}
	// Delivery order within a connection is the wire order.
	for i, m := range g.msgs {
		if want := fmt.Sprintf("frame %d", i); m.Content != want {
			t.Fatalf("message %d = %q, want %q", i, m.Content, want)
		}
	}
	recv, drop := srv.Stats()
	if recv != n || drop != 0 {
		t.Errorf("Stats = %d/%d, want %d/0", recv, drop, n)
	}
}

func TestReadFrameRejectsEmptyOctetFrame(t *testing.T) {
	fr := NewFrameReader(strings.NewReader("0 <34>hidden"))
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("err = %v, want ErrEmptyFrame", err)
	}
	// The package-level wrapper surfaces the same typed error.
	if _, err := ReadFrame(bufio.NewReader(strings.NewReader("0 x"))); !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("wrapper err = %v, want ErrEmptyFrame", err)
	}
}

// TestReadFrameLeadingZeroLFLine: an LF-delimited line that happens to
// start with '0' is not an octet-count prefix (compliant counts have no
// leading zeros); it must be delivered as a normal line, as it was before
// the zero-length-frame hardening.
func TestReadFrameLeadingZeroLFLine(t *testing.T) {
	fr := NewFrameReader(strings.NewReader("0hello\n07:00 up\n3 abc"))
	for i, want := range []string{"0hello", "07:00 up", "abc"} {
		f, err := fr.ReadFrame()
		if err != nil || string(f) != want {
			t.Fatalf("frame %d = %q err=%v, want %q", i, f, err, want)
		}
	}
}

// TestServerTCPBatchClosesOnFramingError: a malformed octet-count prefix
// inside the drain loop desynchronizes the byte stream; the server must
// deliver what already parsed and close the connection rather than resume
// reading garbage.
func TestServerTCPBatchClosesOnFramingError(t *testing.T) {
	g := &batchGather{}
	srv := &Server{Handler: g}
	addr, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire := FormatRFC5424(testMessage("before the tear"))
	// One segment: a valid frame, a malformed prefix, then a frame that
	// must NOT be ingested from the desynchronized stream.
	tail := FormatRFC5424(testMessage("after the tear"))
	frame := fmt.Sprintf("%d %s99x garbage%d %s", len(wire), wire, len(tail), tail)
	if _, err := conn.Write([]byte(frame)); err != nil {
		t.Fatal(err)
	}
	g.wait(t, 1)

	// The server closes its side; the client read must hit EOF.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after framing error")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.msgs) != 1 || g.msgs[0].Content != "before the tear" {
		t.Fatalf("delivered %d messages, want the single pre-error frame: %+v", len(g.msgs), g.msgs)
	}
}

// TestFrameReaderScratchReuse pins the documented contract: a returned
// frame is valid only until the next ReadFrame, because the octet path
// reuses one per-connection scratch buffer instead of allocating per frame.
func TestFrameReaderScratchReuse(t *testing.T) {
	fr := NewFrameReader(strings.NewReader("5 first6 second3 two"))
	f1, err := fr.ReadFrame()
	if err != nil || string(f1) != "first" {
		t.Fatalf("frame1 = %q err=%v", f1, err)
	}
	saved := string(f1) // materialize before the buffer is reused
	f2, err := fr.ReadFrame()
	if err != nil || string(f2) != "second" {
		t.Fatalf("frame2 = %q err=%v", f2, err)
	}
	if saved != "first" {
		t.Errorf("copied frame1 changed to %q", saved)
	}
	f3, err := fr.ReadFrame()
	if err != nil || string(f3) != "two" {
		t.Fatalf("frame3 = %q err=%v", f3, err)
	}
}

func TestFrameBuffered(t *testing.T) {
	// Everything a strings.Reader holds lands in the bufio buffer on the
	// first fill, so after one ReadFrame the reader can report precisely on
	// what remains.
	cases := []struct {
		name    string
		stream  string
		want    bool // FrameBuffered after consuming the first frame
		explain string
	}{
		{"complete_octet", "5 hello3 abc", true, "full second frame buffered"},
		{"short_octet_payload", "5 hello9 abc", false, "declared 9, only 3 buffered"},
		{"incomplete_prefix", "5 hello12", false, "length prefix still incomplete"},
		{"seven_digit_prefix", "5 hello1048576", false, "7-digit prefix is legal but its space has not arrived"},
		{"overlong_prefix", "5 hello12345678 x", true, "8-digit prefix fails fast"},
		{"malformed_prefix", "5 hello12x4 y", true, "malformed prefix fails fast"},
		{"lf_frame", "5 hello<34>next\n", true, "newline-terminated frame buffered"},
		{"lf_partial", "5 hello<34>torn", false, "no newline yet"},
		{"zero_lf_frame", "5 hello0abc\n", true, "leading-zero LF line with newline buffered"},
		{"zero_lf_partial", "5 hello0abc", false, "leading-zero LF line, no newline yet"},
		{"zero_octet", "5 hello0 x", true, "zero-length octet frame fails fast"},
		{"drained", "5 hello", false, "nothing left"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := NewFrameReader(strings.NewReader(tc.stream))
			if f, err := fr.ReadFrame(); err != nil || string(f) != "hello" {
				t.Fatalf("first frame = %q err=%v", f, err)
			}
			if got := fr.FrameBuffered(); got != tc.want {
				t.Errorf("FrameBuffered = %v, want %v (%s)", got, tc.want, tc.explain)
			}
		})
	}
}

// TestPutMessageSkipsDetached: a detached message must never re-enter the
// pool, or its aliased strings could be overwritten by a later parse.
func TestPutMessageSkipsDetached(t *testing.T) {
	m := &Message{pooled: true}
	m.Detach()
	if m.pooled {
		t.Fatal("Detach did not clear pooled")
	}
	putMessage(m) // must be a no-op
	// Drain the pool: m must not come back out.
	for i := 0; i < 64; i++ {
		if getMessage() == m {
			t.Fatal("detached message re-entered the pool")
		}
	}
}
