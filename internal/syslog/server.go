package syslog

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Handler receives parsed messages from a listener. Implementations must be
// safe for concurrent use: UDP datagrams and TCP connections are handled on
// separate goroutines.
type Handler interface {
	HandleSyslog(m *Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *Message)

// HandleSyslog calls f(m).
func (f HandlerFunc) HandleSyslog(m *Message) { f(m) }

// Server listens for syslog traffic on UDP and/or TCP and dispatches parsed
// messages to a Handler. TCP connections accept both octet-counted framing
// (RFC 6587 §3.4.1) and LF-delimited framing (§3.4.2), auto-detected per
// message. Unparseable datagrams are counted and dropped, mirroring how
// rsyslog treats garbage input.
type Server struct {
	Handler Handler

	// Now supplies the reference time for year-less RFC 3164 timestamps.
	// Defaults to time.Now.
	Now func() time.Time

	mu       sync.Mutex
	udpConn  *net.UDPConn
	tcpLn    net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
	received int64
	dropped  int64
}

// trackConn registers an active TCP connection so Close can tear it down;
// it reports false when the server is already closed.
func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Stats reports how many messages were accepted and dropped since start.
func (s *Server) Stats() (received, dropped int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.dropped
}

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// ListenUDP starts a UDP listener on addr ("127.0.0.1:0" picks a free
// port) and returns the bound address.
func (s *Server) ListenUDP(addr string) (net.Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.udpConn = conn
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveUDP(conn)
	return conn.LocalAddr(), nil
}

func (s *Server) serveUDP(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		s.dispatch(strings.TrimRight(string(buf[:n]), "\r\n\x00"))
	}
}

// ListenTCP starts a TCP listener on addr and returns the bound address.
func (s *Server) ListenTCP(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.tcpLn = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveTCP(ln)
	return ln.Addr(), nil
}

func (s *Server) serveTCP(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		if !s.trackConn(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	for {
		frame, err := ReadFrame(r)
		if err != nil {
			return
		}
		s.dispatch(frame)
	}
}

// ReadFrame reads one syslog frame from r, auto-detecting octet-counted
// ("123 <34>...") versus LF-delimited framing.
func ReadFrame(r *bufio.Reader) (string, error) {
	first, err := r.Peek(1)
	if err != nil {
		return "", err
	}
	if first[0] >= '1' && first[0] <= '9' {
		// Octet-counted: "LEN SP MSG".
		lenStr, err := r.ReadString(' ')
		if err != nil {
			return "", err
		}
		n, err := strconv.Atoi(strings.TrimSpace(lenStr))
		if err != nil || n <= 0 || n > 1<<20 {
			return "", fmt.Errorf("syslog: bad frame length %q", lenStr)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	line, err := r.ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (s *Server) dispatch(raw string) {
	if raw == "" {
		return
	}
	m, err := Parse(raw, s.now())
	s.mu.Lock()
	if err != nil {
		s.dropped++
		s.mu.Unlock()
		return
	}
	s.received++
	h := s.Handler
	s.mu.Unlock()
	if h != nil {
		h.HandleSyslog(m)
	}
}

// Close shuts down all listeners and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	udp, tcp := s.udpConn, s.tcpLn
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if udp != nil {
		err = errors.Join(err, udp.Close())
	}
	if tcp != nil {
		err = errors.Join(err, tcp.Close())
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// Sender writes syslog messages to a remote collector over TCP (with
// octet-counted framing) or UDP. It is the client side of the relay chain:
// compute node -> primary syslog server -> collector.
type Sender struct {
	mu     sync.Mutex
	conn   net.Conn
	octets bool // true for TCP octet-counted framing
	format func(*Message) string
}

// DialSender connects to addr over network ("tcp" or "udp"). format selects
// the wire format; pass FormatRFC5424 or FormatRFC3164.
func DialSender(network, addr string, format func(*Message) string) (*Sender, error) {
	conn, err := net.DialTimeout(network, addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Sender{conn: conn, octets: network == "tcp", format: format}, nil
}

// Send transmits one message.
func (s *Sender) Send(m *Message) error {
	wire := s.format(m)
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.octets {
		_, err = fmt.Fprintf(s.conn, "%d %s", len(wire), wire)
	} else {
		_, err = io.WriteString(s.conn, wire)
	}
	return err
}

// Close closes the underlying connection.
func (s *Sender) Close() error { return s.conn.Close() }

// Relay receives messages on one listener and forwards them to a downstream
// sender, emulating the primary syslog server in the paper's topology
// (rsyslogd's builtin forwarding, §4.2.2).
type Relay struct {
	server *Server
	sender *Sender
}

// NewRelay wires a Server to forward every received message through sender.
func NewRelay(sender *Sender) *Relay {
	r := &Relay{sender: sender}
	r.server = &Server{Handler: HandlerFunc(func(m *Message) {
		// Forwarding failures are silently dropped, matching UDP syslog
		// semantics; the store-side collector owns reliability.
		_ = sender.Send(m)
	})}
	return r
}

// Server exposes the relay's listening side so callers can bind addresses.
func (r *Relay) Server() *Server { return r.server }

// Close shuts down both sides of the relay.
func (r *Relay) Close() error {
	return errors.Join(r.server.Close(), r.sender.Close())
}

// Collect drains messages from ch into a slice until ctx is done or the
// channel closes; a convenience for tests and examples.
func Collect(ctx context.Context, ch <-chan *Message) []*Message {
	var out []*Message
	for {
		select {
		case <-ctx.Done():
			return out
		case m, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, m)
		}
	}
}
