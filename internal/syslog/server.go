package syslog

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hetsyslog/internal/obs"
)

// Handler receives parsed messages from a listener. Implementations must be
// safe for concurrent use: UDP datagrams and TCP connections are handled on
// separate goroutines.
//
// Ownership: the *Message comes from the server's pool and is recycled as
// soon as the handler returns. A handler that retains it beyond the call —
// stores it, enqueues it, hands it to another goroutine — must call
// m.Detach() (keeping the message forever) or work on m.Clone().
type Handler interface {
	HandleSyslog(m *Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *Message)

// HandleSyslog calls f(m).
func (f HandlerFunc) HandleSyslog(m *Message) { f(m) }

// BatchHandler is an optional upgrade interface for Handler: when the
// configured Handler also implements it, the server delivers one batch per
// read-loop iteration (UDP: the datagrams drained from the socket queue;
// TCP: the frames already buffered on the connection) instead of one call
// per message, amortizing downstream synchronization.
//
// Ownership matches Handler: the slice and every Message in it are valid
// only until HandleSyslogBatch returns; retain individual messages with
// Detach or Clone. The slice itself is always reused — never keep it.
type BatchHandler interface {
	HandleSyslogBatch(ms []*Message)
}

// messagePool recycles Messages (and their materialization slabs) across
// frames. Pool-owned messages carry the pooled flag so Detach can opt out.
var messagePool = sync.Pool{New: func() any { return &Message{pooled: true} }}

func getMessage() *Message { return messagePool.Get().(*Message) }

// putMessage returns m to the pool unless a handler detached or leased it.
func putMessage(m *Message) {
	if m.pooled {
		messagePool.Put(m)
	}
}

// Recycle returns a leased message (see Message.Lease) to the server pool
// once its owner no longer references any of its strings — for the
// indexed path, the moment IndexBatch returns, since the store copies
// everything it retains. Calling Recycle on a non-leased message (a plain
// heap value, a Clone, a detached message) is a no-op, so release hooks
// can call it unconditionally. Recycle must be called at most once per
// lease and never while any string field is still held: the message slab
// is re-parsed into by the next frame that draws it from the pool.
func Recycle(m *Message) {
	if m == nil || !m.leased {
		return
	}
	m.leased = false
	m.pooled = true
	m.Reset()
	messagePool.Put(m)
}

// Server listens for syslog traffic on UDP and/or TCP and dispatches parsed
// messages to a Handler. TCP connections accept both octet-counted framing
// (RFC 6587 §3.4.1) and LF-delimited framing (§3.4.2), auto-detected per
// message. Unparseable datagrams are counted and dropped, mirroring how
// rsyslog treats garbage input.
type Server struct {
	Handler Handler

	// MaxBatch caps how many messages a read-loop iteration accumulates
	// before delivering to a BatchHandler (and bounds the drain window on
	// UDP). Defaults to DefaultMaxBatch; irrelevant when the Handler does
	// not implement BatchHandler beyond bounding pool residency.
	MaxBatch int

	// Now supplies the reference time for year-less RFC 3164 timestamps.
	// Defaults to time.Now.
	Now func() time.Time

	// Metrics optionally publishes the server's counters (received,
	// dropped, frames by transport) into a shared registry; set it before
	// the first Listen call. Left nil the same counters still run
	// standalone, so Stats() is always exact.
	Metrics *obs.Registry

	metricsOnce sync.Once
	received    *obs.Counter
	dropped     *obs.Counter
	framesUDP   *obs.Counter
	framesTCP   *obs.Counter

	// ingestLat/ingestBatch time and size each read-loop batch (framing +
	// parse + handler delivery, excluding the blocking first read) — the
	// ingest stage of the per-stage profiling harness. They exist only
	// with a live registry, so an unobserved server never calls time.Now
	// in its read loops.
	ingestLat   *obs.Histogram
	ingestBatch *obs.Histogram

	mu      sync.Mutex
	udpConn *net.UDPConn
	tcpLn   net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  bool
}

// initMetrics lazily creates the server's counters — inside Metrics when
// set, standalone otherwise (obs treats a nil registry that way).
func (s *Server) initMetrics() {
	s.metricsOnce.Do(func() {
		s.received = s.Metrics.Counter("syslog_received_total",
			"syslog messages parsed and dispatched")
		s.dropped = s.Metrics.Counter("syslog_dropped_total",
			"unparseable syslog messages dropped")
		s.framesUDP = s.Metrics.Counter(`syslog_frames_total{transport="udp"}`,
			"raw frames read, by transport")
		s.framesTCP = s.Metrics.Counter(`syslog_frames_total{transport="tcp"}`,
			"raw frames read, by transport")
		if s.Metrics != nil {
			s.ingestLat = s.Metrics.Histogram("syslog_ingest_batch_seconds",
				"per-read-loop-batch ingest latency: framing + parse + handler delivery",
				obs.LatencyBuckets)
			s.ingestBatch = s.Metrics.Histogram("syslog_ingest_batch_size",
				"messages per read-loop batch", obs.SizeBuckets)
		}
	})
}

// trackConn registers an active TCP connection so Close can tear it down;
// it reports false when the server is already closed.
func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Stats reports how many messages were accepted and dropped since start.
// The values are reads of the same counters /metrics exports.
func (s *Server) Stats() (received, dropped int64) {
	s.initMetrics()
	return s.received.Value(), s.dropped.Value()
}

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// ListenUDP starts a UDP listener on addr ("127.0.0.1:0" picks a free
// port) and returns the bound address.
func (s *Server) ListenUDP(addr string) (net.Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s.initMetrics()
	s.mu.Lock()
	s.udpConn = conn
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveUDP(conn)
	return conn.LocalAddr(), nil
}

// DefaultMaxBatch is the per-iteration batch cap when Server.MaxBatch is
// unset.
const DefaultMaxBatch = 256

// udpDrainWindow is the read deadline used while draining already-queued
// datagrams after a blocking read delivered the first one. Long enough
// that a kernel-queued packet always makes it, short enough that a lone
// trailing message is not held back noticeably.
const udpDrainWindow = 100 * time.Microsecond

func (s *Server) maxBatch() int {
	if s.MaxBatch > 0 {
		return s.MaxBatch
	}
	return DefaultMaxBatch
}

func (s *Server) serveUDP(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	maxBatch := s.maxBatch()
	batch := make([]*Message, 0, maxBatch)
	for {
		// First read blocks until traffic arrives.
		_ = conn.SetReadDeadline(time.Time{})
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		s.framesUDP.Inc()
		var start time.Time
		if s.ingestLat != nil {
			start = time.Now()
		}
		s.appendParsed(bytes.TrimRight(buf[:n], "\r\n\x00"), &batch)
		// Drain datagrams the kernel already queued behind it, up to
		// MaxBatch. A short *future* deadline is required: Go fails every
		// read once a deadline is in the past, even with data queued.
		for len(batch) < maxBatch {
			_ = conn.SetReadDeadline(time.Now().Add(udpDrainWindow))
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					break // queue drained
				}
				s.deliver(batch)
				return // closed
			}
			s.framesUDP.Inc()
			s.appendParsed(bytes.TrimRight(buf[:n], "\r\n\x00"), &batch)
		}
		n = len(batch)
		s.deliver(batch)
		s.observeIngest(start, n)
		batch = batch[:0]
	}
}

// observeIngest records one read-loop batch on the ingest-stage
// histograms; a no-op (and no time.Now call) when uninstrumented.
func (s *Server) observeIngest(start time.Time, n int) {
	if s.ingestLat == nil || n == 0 {
		return
	}
	s.ingestLat.ObserveDuration(time.Since(start))
	s.ingestBatch.Observe(float64(n))
}

// appendParsed parses one wire frame into a pooled Message and appends it
// to the batch; unparseable frames are counted and dropped, empty frames
// ignored.
func (s *Server) appendParsed(frame []byte, batch *[]*Message) {
	if len(frame) == 0 {
		return
	}
	m := getMessage()
	if err := ParseBytes(frame, s.now(), m); err != nil {
		s.dropped.Inc()
		putMessage(m)
		return
	}
	s.received.Inc()
	*batch = append(*batch, m)
}

// deliver hands a batch to the Handler — one HandleSyslogBatch call when
// it implements BatchHandler, per-message HandleSyslog otherwise — then
// recycles every message a handler did not Detach.
func (s *Server) deliver(batch []*Message) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	h := s.Handler
	s.mu.Unlock()
	if bh, ok := h.(BatchHandler); ok {
		bh.HandleSyslogBatch(batch)
	} else if h != nil {
		for _, m := range batch {
			h.HandleSyslog(m)
		}
	}
	for _, m := range batch {
		putMessage(m)
	}
}

// ListenTCP starts a TCP listener on addr and returns the bound address.
func (s *Server) ListenTCP(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.initMetrics()
	s.mu.Lock()
	s.tcpLn = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveTCP(ln)
	return ln.Addr(), nil
}

func (s *Server) serveTCP(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		if !s.trackConn(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	fr := NewFrameReader(conn)
	maxBatch := s.maxBatch()
	batch := make([]*Message, 0, maxBatch)
	for {
		// First frame blocks; after it, keep going only while a complete
		// frame is already sitting in the read buffer, so a batch never
		// waits on the network.
		frame, err := fr.ReadFrame()
		if err != nil {
			return
		}
		s.framesTCP.Inc()
		var start time.Time
		if s.ingestLat != nil {
			start = time.Now()
		}
		s.appendParsed(frame, &batch)
		for len(batch) < maxBatch && fr.FrameBuffered() {
			frame, err := fr.ReadFrame()
			if err != nil {
				// A framing error mid-stream leaves the byte stream
				// desynchronized; deliver what parsed and close the
				// connection, as the single-frame path does.
				s.deliver(batch)
				return
			}
			s.framesTCP.Inc()
			s.appendParsed(frame, &batch)
		}
		n := len(batch)
		s.deliver(batch)
		s.observeIngest(start, n)
		batch = batch[:0]
	}
}

// maxFrameLen caps octet-counted frame sizes (RFC 6587 leaves the limit
// to the receiver; 1 MiB comfortably exceeds any real syslog line).
const maxFrameLen = 1 << 20

// maxFrameDigits bounds the octet-count prefix to the digits of
// maxFrameLen ("1048576" = 7), so a malicious peer streaming an endless
// digit run is rejected after a handful of bytes instead of being
// buffered without limit.
const maxFrameDigits = 7

// ErrEmptyFrame reports an octet-counted frame declaring a length of
// zero. RFC 6587 gives zero-length frames no meaning, and accepting them
// would let "0 " round-trip as an invisible message.
var ErrEmptyFrame = errors.New("syslog: zero-length frame")

// FrameReader reads syslog frames from a TCP stream, auto-detecting
// octet-counted ("123 <34>...") versus LF-delimited framing per frame.
// Unlike the package-level ReadFrame it returns frames as byte slices
// aliasing internal buffers — valid only until the next ReadFrame call —
// and reuses one scratch buffer per connection, so steady-state framing
// does not allocate. It is not safe for concurrent use.
type FrameReader struct {
	r       *bufio.Reader
	scratch []byte
}

// NewFrameReader wraps r; an existing *bufio.Reader is used as-is.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	return &FrameReader{r: br}
}

// ReadFrame reads one frame. The returned slice is valid only until the
// next call.
func (fr *FrameReader) ReadFrame() ([]byte, error) {
	first, err := fr.r.Peek(1)
	if err != nil {
		return nil, err
	}
	// '1'-'9' selects octet-counted framing as before. A leading '0' is
	// ambiguous: compliant octet counts have no leading zeros, but "0 "
	// (a zero-length frame) should be rejected rather than round-trip as
	// an invisible LF line. Treat '0' as octet-counted only when the
	// lookahead confirms an all-digit, space-terminated prefix; anything
	// else (e.g. an LF line that happens to start with '0') keeps the
	// pre-existing LF-delimited behaviour.
	if first[0] >= '1' && first[0] <= '9' ||
		first[0] == '0' && fr.leadingZeroIsOctet() {
		// Octet-counted: "LEN SP MSG". Read the length digit by digit so
		// the prefix is bounded before anything is buffered.
		n, nd := 0, 0
		for {
			b, err := fr.r.ReadByte()
			if err != nil {
				return nil, err
			}
			if b == ' ' {
				break
			}
			if b < '0' || b > '9' {
				return nil, fmt.Errorf("syslog: bad frame length byte %q", b)
			}
			if nd == maxFrameDigits {
				return nil, fmt.Errorf("syslog: frame length prefix exceeds %d digits", maxFrameDigits)
			}
			n = n*10 + int(b-'0')
			nd++
		}
		if n == 0 {
			return nil, ErrEmptyFrame
		}
		if n > maxFrameLen {
			return nil, fmt.Errorf("syslog: bad frame length %d", n)
		}
		if cap(fr.scratch) < n {
			fr.scratch = make([]byte, n)
		}
		buf := fr.scratch[:n]
		if _, err := io.ReadFull(fr.r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	// LF-delimited. ReadSlice hands back a view of the bufio buffer; only
	// lines longer than the buffer fall into the accumulate path.
	line, err := fr.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		fr.scratch = append(fr.scratch[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = fr.r.ReadSlice('\n')
			fr.scratch = append(fr.scratch, line...)
		}
		line = fr.scratch
	}
	if err != nil && len(line) == 0 {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

// leadingZeroIsOctet disambiguates a frame whose first byte is '0': it
// peeks ahead and reports whether the stream opens with an all-digit,
// space-terminated length prefix (octet-counted framing, e.g. the
// zero-length frame "0 "). Blocking inside Peek is acceptable here:
// whichever framing applies, ReadFrame needs the same bytes before a
// frame can complete.
func (fr *FrameReader) leadingZeroIsOctet() bool {
	for i := 1; i <= maxFrameDigits; i++ {
		b, err := fr.r.Peek(i + 1)
		if err != nil {
			return false // short stream: let the LF path surface it
		}
		switch c := b[i]; {
		case c == ' ':
			return true
		case c < '0' || c > '9':
			return false
		}
	}
	return false // more than maxFrameDigits digits: not a valid prefix
}

// FrameBuffered reports whether a complete frame is already buffered, so
// the next ReadFrame is guaranteed not to block on the network. Malformed
// buffered input also reports true: ReadFrame will fail on it without
// blocking.
func (fr *FrameReader) FrameBuffered() bool {
	n := fr.r.Buffered()
	if n == 0 {
		return false
	}
	b, _ := fr.r.Peek(n)
	if len(b) == 0 {
		return false
	}
	if b[0] >= '0' && b[0] <= '9' {
		i, ln := 0, 0
		for i < len(b) && i < maxFrameDigits && b[i] >= '0' && b[i] <= '9' {
			ln = ln*10 + int(b[i]-'0')
			i++
		}
		if i == len(b) {
			// All buffered bytes are digits: the prefix (or, for a
			// leading '0', the LF line) may still be incomplete. Even at
			// maxFrameDigits a legal prefix needs its terminating space.
			return false
		}
		if b[0] == '0' && b[i] != ' ' {
			// Leading zero without a space-terminated digit prefix:
			// ReadFrame treats this as an LF-delimited line.
			return bytes.IndexByte(b, '\n') >= 0
		}
		if b[i] != ' ' {
			return true // over-long or malformed prefix: fails fast
		}
		return len(b) >= i+1+ln
	}
	return bytes.IndexByte(b, '\n') >= 0
}

// ReadFrame reads one syslog frame from r, auto-detecting octet-counted
// ("123 <34>...") versus LF-delimited framing.
//
// Compatibility wrapper over FrameReader; the server's connection loop
// uses a per-connection FrameReader to avoid the per-frame copy.
func ReadFrame(r *bufio.Reader) (string, error) {
	fr := FrameReader{r: r}
	frame, err := fr.ReadFrame()
	if err != nil {
		return "", err
	}
	return string(frame), nil
}

// Close shuts down all listeners and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	udp, tcp := s.udpConn, s.tcpLn
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if udp != nil {
		err = errors.Join(err, udp.Close())
	}
	if tcp != nil {
		err = errors.Join(err, tcp.Close())
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// Sender writes syslog messages to a remote collector over TCP (with
// octet-counted framing) or UDP. It is the client side of the relay chain:
// compute node -> primary syslog server -> collector.
type Sender struct {
	mu     sync.Mutex
	conn   net.Conn
	octets bool // true for TCP octet-counted framing
	format func(*Message) string
}

// DialSender connects to addr over network ("tcp" or "udp"). format selects
// the wire format; pass FormatRFC5424 or FormatRFC3164.
func DialSender(network, addr string, format func(*Message) string) (*Sender, error) {
	conn, err := net.DialTimeout(network, addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Sender{conn: conn, octets: network == "tcp", format: format}, nil
}

// Send transmits one message.
func (s *Sender) Send(m *Message) error {
	wire := s.format(m)
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.octets {
		_, err = fmt.Fprintf(s.conn, "%d %s", len(wire), wire)
	} else {
		_, err = io.WriteString(s.conn, wire)
	}
	return err
}

// Close closes the underlying connection.
func (s *Sender) Close() error { return s.conn.Close() }

// Relay receives messages on one listener and forwards them to a downstream
// sender, emulating the primary syslog server in the paper's topology
// (rsyslogd's builtin forwarding, §4.2.2).
type Relay struct {
	server *Server
	sender *Sender
}

// NewRelay wires a Server to forward every received message through sender.
func NewRelay(sender *Sender) *Relay {
	r := &Relay{sender: sender}
	r.server = &Server{Handler: HandlerFunc(func(m *Message) {
		// Forwarding failures are silently dropped, matching UDP syslog
		// semantics; the store-side collector owns reliability.
		_ = sender.Send(m)
	})}
	return r
}

// Server exposes the relay's listening side so callers can bind addresses.
func (r *Relay) Server() *Server { return r.server }

// Close shuts down both sides of the relay.
func (r *Relay) Close() error {
	return errors.Join(r.server.Close(), r.sender.Close())
}

// Collect drains messages from ch into a slice until ctx is done or the
// channel closes; a convenience for tests and examples.
func Collect(ctx context.Context, ch <-chan *Message) []*Message {
	var out []*Message
	for {
		select {
		case <-ctx.Done():
			return out
		case m, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, m)
		}
	}
}
