package syslog

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"hetsyslog/internal/obs"
)

// Handler receives parsed messages from a listener. Implementations must be
// safe for concurrent use: UDP datagrams and TCP connections are handled on
// separate goroutines.
type Handler interface {
	HandleSyslog(m *Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *Message)

// HandleSyslog calls f(m).
func (f HandlerFunc) HandleSyslog(m *Message) { f(m) }

// Server listens for syslog traffic on UDP and/or TCP and dispatches parsed
// messages to a Handler. TCP connections accept both octet-counted framing
// (RFC 6587 §3.4.1) and LF-delimited framing (§3.4.2), auto-detected per
// message. Unparseable datagrams are counted and dropped, mirroring how
// rsyslog treats garbage input.
type Server struct {
	Handler Handler

	// Now supplies the reference time for year-less RFC 3164 timestamps.
	// Defaults to time.Now.
	Now func() time.Time

	// Metrics optionally publishes the server's counters (received,
	// dropped, frames by transport) into a shared registry; set it before
	// the first Listen call. Left nil the same counters still run
	// standalone, so Stats() is always exact.
	Metrics *obs.Registry

	metricsOnce sync.Once
	received    *obs.Counter
	dropped     *obs.Counter
	framesUDP   *obs.Counter
	framesTCP   *obs.Counter

	mu      sync.Mutex
	udpConn *net.UDPConn
	tcpLn   net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  bool
}

// initMetrics lazily creates the server's counters — inside Metrics when
// set, standalone otherwise (obs treats a nil registry that way).
func (s *Server) initMetrics() {
	s.metricsOnce.Do(func() {
		s.received = s.Metrics.Counter("syslog_received_total",
			"syslog messages parsed and dispatched")
		s.dropped = s.Metrics.Counter("syslog_dropped_total",
			"unparseable syslog messages dropped")
		s.framesUDP = s.Metrics.Counter(`syslog_frames_total{transport="udp"}`,
			"raw frames read, by transport")
		s.framesTCP = s.Metrics.Counter(`syslog_frames_total{transport="tcp"}`,
			"raw frames read, by transport")
	})
}

// trackConn registers an active TCP connection so Close can tear it down;
// it reports false when the server is already closed.
func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Stats reports how many messages were accepted and dropped since start.
// The values are reads of the same counters /metrics exports.
func (s *Server) Stats() (received, dropped int64) {
	s.initMetrics()
	return s.received.Value(), s.dropped.Value()
}

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// ListenUDP starts a UDP listener on addr ("127.0.0.1:0" picks a free
// port) and returns the bound address.
func (s *Server) ListenUDP(addr string) (net.Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s.initMetrics()
	s.mu.Lock()
	s.udpConn = conn
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveUDP(conn)
	return conn.LocalAddr(), nil
}

func (s *Server) serveUDP(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		s.framesUDP.Inc()
		s.dispatch(strings.TrimRight(string(buf[:n]), "\r\n\x00"))
	}
}

// ListenTCP starts a TCP listener on addr and returns the bound address.
func (s *Server) ListenTCP(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.initMetrics()
	s.mu.Lock()
	s.tcpLn = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveTCP(ln)
	return ln.Addr(), nil
}

func (s *Server) serveTCP(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		if !s.trackConn(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	for {
		frame, err := ReadFrame(r)
		if err != nil {
			return
		}
		s.framesTCP.Inc()
		s.dispatch(frame)
	}
}

// maxFrameLen caps octet-counted frame sizes (RFC 6587 leaves the limit
// to the receiver; 1 MiB comfortably exceeds any real syslog line).
const maxFrameLen = 1 << 20

// maxFrameDigits bounds the octet-count prefix to the digits of
// maxFrameLen ("1048576" = 7), so a malicious peer streaming an endless
// digit run is rejected after a handful of bytes instead of being
// buffered without limit.
const maxFrameDigits = 7

// ReadFrame reads one syslog frame from r, auto-detecting octet-counted
// ("123 <34>...") versus LF-delimited framing.
func ReadFrame(r *bufio.Reader) (string, error) {
	first, err := r.Peek(1)
	if err != nil {
		return "", err
	}
	if first[0] >= '1' && first[0] <= '9' {
		// Octet-counted: "LEN SP MSG". Read the length digit by digit so
		// the prefix is bounded before anything is buffered.
		var lenBuf [maxFrameDigits]byte
		nd := 0
		for {
			b, err := r.ReadByte()
			if err != nil {
				return "", err
			}
			if b == ' ' {
				break
			}
			if b < '0' || b > '9' {
				return "", fmt.Errorf("syslog: bad frame length byte %q", b)
			}
			if nd == maxFrameDigits {
				return "", fmt.Errorf("syslog: frame length prefix exceeds %d digits", maxFrameDigits)
			}
			lenBuf[nd] = b
			nd++
		}
		n, err := strconv.Atoi(string(lenBuf[:nd]))
		if err != nil || n <= 0 || n > maxFrameLen {
			return "", fmt.Errorf("syslog: bad frame length %q", lenBuf[:nd])
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	line, err := r.ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (s *Server) dispatch(raw string) {
	if raw == "" {
		return
	}
	m, err := Parse(raw, s.now())
	if err != nil {
		s.dropped.Inc()
		return
	}
	s.received.Inc()
	s.mu.Lock()
	h := s.Handler
	s.mu.Unlock()
	if h != nil {
		h.HandleSyslog(m)
	}
}

// Close shuts down all listeners and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	udp, tcp := s.udpConn, s.tcpLn
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if udp != nil {
		err = errors.Join(err, udp.Close())
	}
	if tcp != nil {
		err = errors.Join(err, tcp.Close())
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// Sender writes syslog messages to a remote collector over TCP (with
// octet-counted framing) or UDP. It is the client side of the relay chain:
// compute node -> primary syslog server -> collector.
type Sender struct {
	mu     sync.Mutex
	conn   net.Conn
	octets bool // true for TCP octet-counted framing
	format func(*Message) string
}

// DialSender connects to addr over network ("tcp" or "udp"). format selects
// the wire format; pass FormatRFC5424 or FormatRFC3164.
func DialSender(network, addr string, format func(*Message) string) (*Sender, error) {
	conn, err := net.DialTimeout(network, addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Sender{conn: conn, octets: network == "tcp", format: format}, nil
}

// Send transmits one message.
func (s *Sender) Send(m *Message) error {
	wire := s.format(m)
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.octets {
		_, err = fmt.Fprintf(s.conn, "%d %s", len(wire), wire)
	} else {
		_, err = io.WriteString(s.conn, wire)
	}
	return err
}

// Close closes the underlying connection.
func (s *Sender) Close() error { return s.conn.Close() }

// Relay receives messages on one listener and forwards them to a downstream
// sender, emulating the primary syslog server in the paper's topology
// (rsyslogd's builtin forwarding, §4.2.2).
type Relay struct {
	server *Server
	sender *Sender
}

// NewRelay wires a Server to forward every received message through sender.
func NewRelay(sender *Sender) *Relay {
	r := &Relay{sender: sender}
	r.server = &Server{Handler: HandlerFunc(func(m *Message) {
		// Forwarding failures are silently dropped, matching UDP syslog
		// semantics; the store-side collector owns reliability.
		_ = sender.Send(m)
	})}
	return r
}

// Server exposes the relay's listening side so callers can bind addresses.
func (r *Relay) Server() *Server { return r.server }

// Close shuts down both sides of the relay.
func (r *Relay) Close() error {
	return errors.Join(r.server.Close(), r.sender.Close())
}

// Collect drains messages from ch into a slice until ctx is done or the
// channel closes; a convenience for tests and examples.
func Collect(ctx context.Context, ch <-chan *Message) []*Message {
	var out []*Message
	for {
		select {
		case <-ctx.Done():
			return out
		case m, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, m)
		}
	}
}
