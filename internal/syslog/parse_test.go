package syslog

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var ref = time.Date(2023, time.October, 15, 0, 0, 0, 0, time.UTC)

func TestParseRFC3164Classic(t *testing.T) {
	raw := "<34>Oct 11 22:14:15 mymachine su[231]: 'su root' failed on /dev/pts/8"
	m, err := ParseRFC3164(raw, ref)
	if err != nil {
		t.Fatal(err)
	}
	if m.Facility != Auth || m.Severity != Critical {
		t.Errorf("pri = %v.%v", m.Facility, m.Severity)
	}
	if m.Hostname != "mymachine" {
		t.Errorf("hostname = %q", m.Hostname)
	}
	if m.AppName != "su" || m.ProcID != "231" {
		t.Errorf("tag = %q[%q]", m.AppName, m.ProcID)
	}
	if m.Content != "'su root' failed on /dev/pts/8" {
		t.Errorf("content = %q", m.Content)
	}
	if m.Timestamp.Month() != time.October || m.Timestamp.Day() != 11 ||
		m.Timestamp.Year() != 2023 {
		t.Errorf("timestamp = %v", m.Timestamp)
	}
}

func TestParseRFC3164NoTag(t *testing.T) {
	raw := "<13>Oct 11 22:14:15 cn42 CPU temperature above threshold, cpu clock throttled"
	m, err := ParseRFC3164(raw, ref)
	if err != nil {
		t.Fatal(err)
	}
	if m.AppName != "" {
		t.Errorf("app = %q, want empty", m.AppName)
	}
	if !strings.HasPrefix(m.Content, "CPU temperature") {
		t.Errorf("content = %q", m.Content)
	}
}

func TestParseRFC3164RFC3339Timestamp(t *testing.T) {
	raw := "<13>2023-07-01T10:20:30Z cn42 kernel: usb 1-1: new high-speed USB device number 7"
	m, err := ParseRFC3164(raw, ref)
	if err != nil {
		t.Fatal(err)
	}
	if m.Timestamp != time.Date(2023, 7, 1, 10, 20, 30, 0, time.UTC) {
		t.Errorf("timestamp = %v", m.Timestamp)
	}
	if m.Hostname != "cn42" || m.AppName != "kernel" {
		t.Errorf("host/app = %q/%q", m.Hostname, m.AppName)
	}
}

func TestParseRFC3164NoTimestamp(t *testing.T) {
	raw := "<13>something without any timestamp"
	m, err := ParseRFC3164(raw, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Timestamp.IsZero() {
		t.Errorf("timestamp should be zero, got %v", m.Timestamp)
	}
	if m.Content != "something without any timestamp" {
		t.Errorf("content = %q", m.Content)
	}
}

func TestParsePriErrors(t *testing.T) {
	cases := []struct {
		raw  string
		want error
	}{
		{"", ErrEmpty},
		{"no pri here", ErrNoPriority},
		{"<>x", ErrBadPriority},
		{"<abc>x", ErrBadPriority},
		{"<999>x", ErrBadPriority},
		{"<192>x", ErrBadPriority},
	}
	for _, c := range cases {
		_, err := ParseRFC3164(c.raw, ref)
		if !errors.Is(err, c.want) {
			t.Errorf("ParseRFC3164(%q) err = %v, want %v", c.raw, err, c.want)
		}
	}
}

func TestParseRFC5424Full(t *testing.T) {
	raw := `<165>1 2003-10-11T22:14:15.003Z mymachine.example.com evntslog 111 ID47 [exampleSDID@32473 iut="3" eventSource="Application"] An application event log entry`
	m, err := ParseRFC5424(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Facility != Local4 || m.Severity != Notice {
		t.Errorf("pri = %v.%v", m.Facility, m.Severity)
	}
	if m.Hostname != "mymachine.example.com" || m.AppName != "evntslog" ||
		m.ProcID != "111" || m.MsgID != "ID47" {
		t.Errorf("header = %q %q %q %q", m.Hostname, m.AppName, m.ProcID, m.MsgID)
	}
	if m.SD()["exampleSDID@32473"]["iut"] != "3" {
		t.Errorf("sd = %v", m.SD())
	}
	if m.Content != "An application event log entry" {
		t.Errorf("content = %q", m.Content)
	}
}

func TestParseRFC5424NilFields(t *testing.T) {
	raw := "<34>1 - - - - - -"
	m, err := ParseRFC5424(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Timestamp.IsZero() || m.Hostname != "" || m.AppName != "" {
		t.Errorf("nil fields not empty: %+v", m)
	}
	// "-" MSG remains as content "-": per RFC the MSG is optional; our
	// parser keeps the trailing token.
}

func TestParseRFC5424EscapedSD(t *testing.T) {
	raw := `<34>1 2023-07-01T00:00:00Z h app 1 mid [x@1 k="a\"b\]c\\d"] msg`
	m, err := ParseRFC5424(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SD()["x@1"]["k"]; got != `a"b]c\d` {
		t.Errorf("escaped SD value = %q", got)
	}
}

func TestParseRFC5424Errors(t *testing.T) {
	for _, raw := range []string{
		"<34>2 2023-07-01T00:00:00Z h a p m - x", // bad version
		"<34>1 not-a-time h a p m - x",
		"<34>1 2023-07-01T00:00:00Z h a p",          // truncated
		"<34>1 2023-07-01T00:00:00Z h a p m [x@1 k", // bad SD
	} {
		if _, err := ParseRFC5424(raw); err == nil {
			t.Errorf("ParseRFC5424(%q) expected error", raw)
		}
	}
}

func TestFormatParse5424RoundTrip(t *testing.T) {
	m := &Message{
		Facility: Daemon, Severity: Warning,
		Timestamp: time.Date(2023, 7, 1, 10, 0, 0, 123000000, time.UTC),
		Hostname:  "cn101", AppName: "slurmd", ProcID: "881", MsgID: "T1",
		Structured: StructuredData{"meta@1": {"rack": "r7", "arch": "x86_64"}},
		Content:    "error: Node cn101 has low real_memory size (190000 < 256000)",
	}
	got, err := ParseRFC5424(FormatRFC5424(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Content != m.Content || got.Hostname != m.Hostname ||
		got.SD()["meta@1"]["rack"] != "r7" {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if !got.Timestamp.Equal(m.Timestamp) {
		t.Errorf("timestamp: %v != %v", got.Timestamp, m.Timestamp)
	}
}

func TestFormatParse3164RoundTrip(t *testing.T) {
	m := &Message{
		Facility: Kern, Severity: Warning,
		Timestamp: time.Date(2023, 10, 11, 22, 14, 15, 0, time.UTC),
		Hostname:  "cn7", AppName: "kernel",
		Content: "Package temperature above threshold, cpu clock throttled",
	}
	got, err := ParseRFC3164(FormatRFC3164(m), ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.Content != m.Content || got.Hostname != m.Hostname || got.AppName != "kernel" {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestParseAutoDetect(t *testing.T) {
	m5, err := Parse("<34>1 2023-07-01T00:00:00Z h a p m - hello", ref)
	if err != nil || m5.MsgID != "m" {
		t.Fatalf("5424 auto-detect failed: %v %+v", err, m5)
	}
	m3, err := Parse("<34>Oct 11 22:14:15 h su: hi", ref)
	if err != nil || m3.AppName != "su" {
		t.Fatalf("3164 auto-detect failed: %v %+v", err, m3)
	}
}

// Property: any message with printable content and valid pri survives an
// RFC 5424 format/parse round trip.
func TestQuickRoundTrip5424(t *testing.T) {
	f := func(fac uint8, sev uint8, host, app, content string) bool {
		m := &Message{
			Facility:  Facility(fac % 24),
			Severity:  Severity(sev % 8),
			Timestamp: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
			Hostname:  sanitizeToken(host),
			AppName:   sanitizeToken(app),
			Content:   sanitizeContent(content),
		}
		got, err := ParseRFC5424(FormatRFC5424(m))
		if err != nil {
			return false
		}
		return got.Facility == m.Facility && got.Severity == m.Severity &&
			got.Hostname == m.Hostname && got.Content == m.Content
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// sanitizeToken maps arbitrary strings onto valid RFC 5424 header tokens.
func sanitizeToken(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r < 127 {
			b.WriteRune(r)
		}
	}
	out := b.String()
	if len(out) > 48 {
		out = out[:48]
	}
	return out
}

// sanitizeContent strips control characters that would break framing.
func sanitizeContent(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= ' ' && r != 127 {
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}
