package syslog

import (
	"bufio"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// Property: Parse never panics and either errors or returns a message with
// a valid priority, whatever bytes arrive off the wire.
func TestQuickParseNeverPanics(t *testing.T) {
	ref := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	f := func(raw string) bool {
		m, err := Parse(raw, ref)
		if err != nil {
			return m == nil
		}
		return m.Facility.Valid() && m.Severity.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: prepending a valid PRI to arbitrary printable junk always
// parses as RFC 3164 (the RFC requires relays to accept malformed content).
func TestQuickAnyContentWithValidPri(t *testing.T) {
	ref := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		pri := rng.Intn(192)
		var b strings.Builder
		n := rng.Intn(120)
		for j := 0; j < n; j++ {
			b.WriteByte(byte(32 + rng.Intn(95)))
		}
		raw := "<" + itoa(pri) + ">" + b.String()
		m, err := Parse(raw, ref)
		if err != nil {
			t.Fatalf("Parse(%q) errored: %v", raw, err)
		}
		if int(m.Priority()) != pri {
			t.Fatalf("priority mangled: %d != %d", m.Priority(), pri)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// Property: ReadFrame never panics or over-reads on arbitrary streams.
func TestQuickReadFrameRobust(t *testing.T) {
	f := func(data []byte) bool {
		r := bufio.NewReader(strings.NewReader(string(data)))
		for i := 0; i < 10; i++ {
			if _, err := ReadFrame(r); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: format/parse round trip preserves severity and facility for
// every (facility, severity) pair and both wire formats.
func TestRoundTripAllPriorities(t *testing.T) {
	ref := time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)
	for fac := Kern; fac <= Local7; fac++ {
		for sev := Emergency; sev <= Debug; sev++ {
			m := &Message{
				Facility: fac, Severity: sev,
				Timestamp: ref, Hostname: "cn1", AppName: "app",
				Content: "payload",
			}
			for _, format := range []func(*Message) string{FormatRFC3164, FormatRFC5424} {
				got, err := Parse(format(m), ref)
				if err != nil {
					t.Fatalf("fac=%v sev=%v: %v", fac, sev, err)
				}
				if got.Facility != fac || got.Severity != sev {
					t.Fatalf("priority mangled: got %v.%v want %v.%v",
						got.Facility, got.Severity, fac, sev)
				}
			}
		}
	}
}

// Real-world corpus: a grab bag of actual syslog lines must all parse.
func TestRealWorldSamples(t *testing.T) {
	ref := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	samples := []string{
		"<6>Jul  1 09:15:22 cn042 systemd[1]: Started Session 1234 of user root.",
		"<4>Jul  1 09:15:23 cn042 kernel: [12345.678901] CPU3: Core temperature above threshold, cpu clock throttled (total events = 12345)",
		"<86>Jul  1 09:15:24 cn043 sshd[28431]: pam_unix(sshd:session): session opened for user alice by (uid=0)",
		"<13>Jul  1 09:15:25 cn044 slurmd[2211]: error: Node cn044 has low real_memory size (190000 < 256000)",
		"<165>1 2023-07-01T09:15:26.123456Z cn045 ipmiseld 991 TH01 [origin@1 sw=\"ipmiseld\"] CPU 1 Temperature Above Non-Recoverable - Asserted",
		"<30>1 2023-07-01T09:15:27Z cn046 chronyd - - - System clock wrong by 1.284911 seconds",
	}
	for _, raw := range samples {
		m, err := Parse(raw, ref)
		if err != nil {
			t.Errorf("Parse(%q): %v", raw, err)
			continue
		}
		if m.Content == "" {
			t.Errorf("Parse(%q): empty content", raw)
		}
	}
}
