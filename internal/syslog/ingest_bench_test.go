package syslog

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Benchmarks for the zero-allocation ingest fast path. The */bytes cases
// are the production path (ParseBytes into a reused Message); the */string
// cases are the pre-fast-path implementations kept as the equivalence
// oracles, so the pair is a live before/after comparison.

var benchLines = []struct {
	name string
	raw  string
}{
	{"rfc3164", "<34>Oct 11 22:14:15 mymachine su[231]: 'su root' failed on /dev/pts/8"},
	{"rfc3164_rfc3339", "<13>2023-07-01T10:20:30.123456+02:00 cn42 kernel: usb 1-1: new high-speed USB device number 7"},
	{"rfc5424", "<165>1 2003-10-11T22:14:15.003Z mymachine.example.com evntslog 111 ID47 - An application event log entry"},
	{"rfc5424_sd", "<165>1 2003-10-11T22:14:15.003Z mymachine.example.com evntslog 111 ID47 [exampleSDID@32473 iut=\"3\" eventSource=\"Application\"] An application event log entry"},
}

func BenchmarkIngestParse(b *testing.B) {
	ref := time.Date(2023, 7, 1, 10, 30, 0, 0, time.UTC)
	for _, line := range benchLines {
		buf := []byte(line.raw)
		b.Run(line.name+"/bytes", func(b *testing.B) {
			m := &Message{}
			if err := ParseBytes(buf, ref, m); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ParseBytes(buf, ref, m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(line.name+"/string", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				if _, err := parseLegacy(line.raw, ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// countingBatchHandler counts delivered messages without retaining them —
// the cheapest possible consumer, so the benchmark measures the listener.
type countingBatchHandler struct{ n atomic.Int64 }

func (h *countingBatchHandler) HandleSyslog(*Message) { h.n.Add(1) }
func (h *countingBatchHandler) HandleSyslogBatch(ms []*Message) {
	h.n.Add(int64(len(ms)))
}

// BenchmarkServerIngestTCP measures loopback socket -> framing -> parse ->
// batch delivery throughput. TCP is lossless, so every sent frame is
// awaited and recs/s reflects the full b.N.
func BenchmarkServerIngestTCP(b *testing.B) {
	h := &countingBatchHandler{}
	srv := &Server{Handler: h}
	addr, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	wire := FormatRFC5424(testMessage("benchmark payload for ingest"))
	frame := fmt.Sprintf("%d %s", len(wire), wire)
	// Pre-build multi-frame segments so the writer isn't the bottleneck.
	const framesPerWrite = 64
	segment := []byte(strings.Repeat(frame, framesPerWrite))

	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		n := framesPerWrite
		buf := segment
		if remaining := b.N - sent; remaining < framesPerWrite {
			n = remaining
			buf = segment[:len(frame)*remaining]
		}
		if _, err := conn.Write(buf); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	for h.n.Load() < int64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkServerIngestUDP measures the datagram path. UDP may drop under
// benchmark load, so the metric is computed from messages actually
// received; drops are reported as their own metric rather than awaited.
func BenchmarkServerIngestUDP(b *testing.B) {
	h := &countingBatchHandler{}
	srv := &Server{Handler: h}
	addr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	payload := []byte(FormatRFC5424(testMessage("benchmark payload for ingest")))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for the listener to drain what the kernel kept.
	for prev := int64(-1); ; {
		cur := h.n.Load()
		if cur >= int64(b.N) || cur == prev {
			break
		}
		prev = cur
		time.Sleep(2 * time.Millisecond)
	}
	b.StopTimer()
	got := h.n.Load()
	b.ReportMetric(float64(got)/b.Elapsed().Seconds(), "recs/s")
	b.ReportMetric(float64(int64(b.N)-got), "dropped")
}
