// Package integration exercises the whole reproduction end to end over
// real sockets and HTTP: workload generator -> syslog relay -> collector
// pipeline (topology enrichment + dedup) -> classification service ->
// Tivan store -> dashboard views and store API -> LLM status summary.
package integration

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/core"
	"hetsyslog/internal/llm"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
	"hetsyslog/internal/taxonomy"
)

func TestFullSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}

	// --- Train. ---
	gen := loggen.NewGenerator(101)
	examples, err := gen.Dataset(loggen.ScaledPaperCounts(3000))
	if err != nil {
		t.Fatal(err)
	}
	model, _ := core.NewModel("Complement Naive Bayes")
	clf, err := core.Train(model, core.FromExamples(examples), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// --- Service + store + alerts. ---
	st := store.New(4)
	alertCh := make(chan monitor.Alert, 1024)
	alerts := &monitor.AlertManager{Notifier: monitor.NotifierFunc(func(a monitor.Alert) {
		select {
		case alertCh <- a:
		default:
		}
	})}
	svc := &core.Service{Classifier: clf, Store: st, Alerts: alerts}

	cluster := gen.Cluster
	enrich := collector.TopologyEnricher(func(host string) (string, string, bool) {
		n, ok := cluster.Lookup(host)
		if !ok {
			return "", "", false
		}
		return fmt.Sprintf("r%d", n.Rack), string(n.Arch), true
	})

	src := collector.NewSyslogSource("", "127.0.0.1:0")
	pipe := &collector.Pipeline{
		Source:    src,
		Filters:   []collector.Filter{enrich},
		Sink:      svc,
		BatchSize: 32, FlushInterval: 10 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pipeDone := make(chan error, 1)
	go func() { pipeDone <- pipe.Run(ctx) }()
	<-src.Ready()

	// --- Relay in front, as in §4.2. ---
	down, err := syslog.DialSender("tcp", src.BoundTCP, syslog.FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	relay := syslog.NewRelay(down)
	relayAddr, err := relay.Server().ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	// --- Drive traffic. ---
	snd, err := syslog.DialSender("tcp", relayAddr.String(), syslog.FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	const total = 1000
	for i := 0; i < total; i++ {
		if err := snd.Send(gen.Example().Message()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if c, _ := svc.Counts(); c >= total {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-pipeDone; err != nil {
		t.Fatal(err)
	}
	classified, actionable := svc.Counts()
	if classified != total {
		t.Fatalf("classified = %d, want %d", classified, total)
	}
	if actionable == 0 {
		t.Fatal("no actionable classifications")
	}
	if st.Count() != total {
		t.Fatalf("store count = %d", st.Count())
	}
	select {
	case <-alertCh:
	default:
		t.Error("no alerts delivered")
	}

	// --- Store HTTP API. ---
	apiSrv := httptest.NewServer(st.Handler())
	defer apiSrv.Close()
	resp, err := http.Post(apiSrv.URL+"/search", "application/json",
		strings.NewReader(`{"query":{"term":{"field":"category","value":"Thermal Issue"}},"size":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var searchOut struct {
		Total int `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&searchOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if searchOut.Total == 0 {
		t.Error("no thermal docs findable over HTTP")
	}

	// --- Dashboard views. ---
	dash := &monitor.Dashboard{Store: st, Archs: func(arch string) (int, bool) {
		n := len(cluster.NodesWithArch(loggen.Arch(arch)))
		return n, n > 0
	}}
	dashSrv := httptest.NewServer(dash.Handler())
	defer dashSrv.Close()

	var cats []store.TermBucket
	getJSON(t, dashSrv.URL+"/views/categories", &cats)
	if len(cats) < 3 {
		t.Errorf("dashboard categories = %+v", cats)
	}
	var racks []monitor.RackReport
	getJSON(t, dashSrv.URL+"/views/positional?category="+url.QueryEscape(string(taxonomy.ThermalIssue)), &racks)
	if len(racks) == 0 {
		t.Error("no rack reports; topology enrichment broken?")
	}

	// --- LLM status summary over the same store. ---
	s := llm.NewSummarizer(llm.Falcon40B(), llm.A100Node(), 1)
	var statuses []llm.NodeStatus
	for _, nb := range st.Terms(store.MatchAll{}, "hostname", 5) {
		ns := llm.NodeStatus{Node: nb.Value, Counts: map[taxonomy.Category]int{}}
		for _, cb := range st.Terms(store.Term{Field: "hostname", Value: nb.Value}, "category", 0) {
			ns.Counts[taxonomy.Category(cb.Value)] = cb.Count
		}
		statuses = append(statuses, ns)
	}
	summary, lat := s.SummarizeSystem(statuses)
	if summary == "" || lat <= 0 {
		t.Error("summarizer produced nothing")
	}

	// --- Persistence round trip of the live store. ---
	dir := t.TempDir()
	if err := st.SaveFile(dir + "/snap.jsonl"); err != nil {
		t.Fatal(err)
	}
	st2 := store.New(4)
	if err := st2.LoadFile(dir + "/snap.jsonl"); err != nil {
		t.Fatal(err)
	}
	if st2.Count() != st.Count() {
		t.Errorf("snapshot round trip: %d != %d", st2.Count(), st.Count())
	}
}

func getJSON(t *testing.T, u string, out any) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s -> %d", u, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
