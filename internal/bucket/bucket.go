// Package bucket implements the Levenshtein-distance bucketing scheme that
// preceded the ML classifiers on Darwin (§3) and that labelled the paper's
// dataset (§4.4.1): messages within edit distance 7 of a bucket's exemplar
// join that bucket; a message matching no bucket opens a new one, which an
// administrator must then label. The paper labelled 3 415 exemplars to
// cover 196k messages this way.
//
// The matcher prunes candidates by length band before running the banded
// Levenshtein check, since |len(a)-len(b)| > k implies distance > k.
package bucket

import (
	"sort"
	"sync"
	"unicode/utf8"

	"hetsyslog/internal/editdist"
	"hetsyslog/internal/taxonomy"
)

// DefaultThreshold is the similarity threshold used on Darwin (§4.4.1).
const DefaultThreshold = 7

// Bucket groups messages within Threshold edits of its exemplar.
type Bucket struct {
	ID       int
	Exemplar string
	// Category is empty until an administrator labels the bucket.
	Category taxonomy.Category
	// Count is the number of messages assigned (including the exemplar).
	Count int
}

// Labeled reports whether an administrator has categorized the bucket.
func (b *Bucket) Labeled() bool { return b.Category != "" }

// Bucketer assigns messages to buckets by minimum edit distance. It is safe
// for concurrent use.
type Bucketer struct {
	// Threshold is the maximum Levenshtein distance to join a bucket
	// (default DefaultThreshold).
	Threshold int

	mu      sync.RWMutex
	buckets []*Bucket
	// byLen indexes bucket ids by exemplar rune length for band pruning.
	byLen map[int][]int
}

// NewBucketer returns a Bucketer with the paper's threshold.
func NewBucketer() *Bucketer {
	return &Bucketer{Threshold: DefaultThreshold, byLen: make(map[int][]int)}
}

// Len returns the number of buckets.
func (bk *Bucketer) Len() int {
	bk.mu.RLock()
	defer bk.mu.RUnlock()
	return len(bk.buckets)
}

// Buckets returns a snapshot of all buckets ordered by ID.
func (bk *Bucketer) Buckets() []*Bucket {
	bk.mu.RLock()
	defer bk.mu.RUnlock()
	out := make([]*Bucket, len(bk.buckets))
	copy(out, bk.buckets)
	return out
}

// match finds the id of the closest bucket within Threshold, or -1.
// Caller must hold at least the read lock.
func (bk *Bucketer) match(msg string) int {
	k := bk.Threshold
	rmsg := []rune(msg) // converted once, reused against every candidate
	n := len(rmsg)
	bestID, bestDist := -1, k+1
	for l := n - k; l <= n+k; l++ {
		for _, id := range bk.byLen[l] {
			ex := bk.buckets[id].Exemplar
			d, ok := editdist.BandedLevenshtein([]rune(ex), rmsg, k)
			if ok && d < bestDist {
				bestDist, bestID = d, id
				if d == 0 {
					return id
				}
			}
		}
	}
	return bestID
}

// Assign routes msg to its bucket, creating a new bucket (with msg as
// exemplar) when nothing matches. isNew reports whether a bucket was
// created — the event that costs administrator labelling time.
func (bk *Bucketer) Assign(msg string) (b *Bucket, isNew bool) {
	// Fast path under read lock.
	bk.mu.RLock()
	if id := bk.match(msg); id >= 0 {
		bucket := bk.buckets[id]
		bk.mu.RUnlock()
		bk.mu.Lock()
		bucket.Count++
		bk.mu.Unlock()
		return bucket, false
	}
	bk.mu.RUnlock()

	bk.mu.Lock()
	defer bk.mu.Unlock()
	// Re-check: another goroutine may have created a matching bucket.
	if id := bk.match(msg); id >= 0 {
		bk.buckets[id].Count++
		return bk.buckets[id], false
	}
	nb := &Bucket{ID: len(bk.buckets), Exemplar: msg, Count: 1}
	bk.buckets = append(bk.buckets, nb)
	if bk.byLen == nil {
		bk.byLen = make(map[int][]int)
	}
	l := utf8.RuneCountInString(msg)
	bk.byLen[l] = append(bk.byLen[l], nb.ID)
	return nb, true
}

// Label assigns a category to bucket id, the administrator's action.
func (bk *Bucketer) Label(id int, cat taxonomy.Category) bool {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if id < 0 || id >= len(bk.buckets) {
		return false
	}
	bk.buckets[id].Category = cat
	return true
}

// Peek reports how msg would classify without mutating any bucket:
// the matched bucket's category (empty if the bucket is unlabelled) and
// whether any bucket matched at all.
func (bk *Bucketer) Peek(msg string) (cat taxonomy.Category, matched bool) {
	bk.mu.RLock()
	defer bk.mu.RUnlock()
	id := bk.match(msg)
	if id < 0 {
		return "", false
	}
	return bk.buckets[id].Category, true
}

// Classify returns the category for msg. ok is false when the message
// opens a new (unlabelled) bucket or lands in a bucket the administrator
// has not labelled yet — the re-training burden the paper set out to
// eliminate.
func (bk *Bucketer) Classify(msg string) (taxonomy.Category, bool) {
	b, _ := bk.Assign(msg)
	if !b.Labeled() {
		return "", false
	}
	return b.Category, true
}

// Unlabeled returns the buckets still awaiting administrator labels,
// largest first — the triage queue.
func (bk *Bucketer) Unlabeled() []*Bucket {
	bk.mu.RLock()
	defer bk.mu.RUnlock()
	var out []*Bucket
	for _, b := range bk.buckets {
		if !b.Labeled() {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Stats summarizes the bucketing state.
type Stats struct {
	Buckets  int
	Labeled  int
	Messages int
	PerClass map[taxonomy.Category]int
}

// Stats returns counts of buckets, labelled buckets, total messages and
// per-category message totals.
func (bk *Bucketer) Stats() Stats {
	bk.mu.RLock()
	defer bk.mu.RUnlock()
	s := Stats{PerClass: make(map[taxonomy.Category]int)}
	s.Buckets = len(bk.buckets)
	for _, b := range bk.buckets {
		s.Messages += b.Count
		if b.Labeled() {
			s.Labeled++
			s.PerClass[b.Category] += b.Count
		}
	}
	return s
}
