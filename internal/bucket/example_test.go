package bucket_test

import (
	"fmt"

	"hetsyslog/internal/bucket"
	"hetsyslog/internal/taxonomy"
)

func ExampleBucketer() {
	bk := bucket.NewBucketer()

	// The first message of a new shape opens a bucket the administrator
	// must label.
	b, isNew := bk.Assign("usb 1-1: new high-speed USB device number 4")
	fmt.Println("new bucket:", isNew)
	bk.Label(b.ID, taxonomy.USBDevice)

	// Near-duplicates (within Levenshtein distance 7) classify for free.
	cat, ok := bk.Classify("usb 1-2: new high-speed USB device number 9")
	fmt.Println(cat, ok)

	// A reworded message (firmware drift) opens a fresh, unlabelled
	// bucket: the maintenance burden the paper set out to eliminate.
	_, ok = bk.Classify("USB subsystem: enumerated device 9 on hub 1-2 (high speed)")
	fmt.Println("drifted message classified:", ok)
	// Output:
	// new bucket: true
	// USB-Device true
	// drifted message classified: false
}
