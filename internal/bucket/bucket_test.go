package bucket

import (
	"fmt"
	"sync"
	"testing"

	"hetsyslog/internal/taxonomy"
)

func TestAssignGroupsSimilarMessages(t *testing.T) {
	bk := NewBucketer()
	b1, isNew := bk.Assign("error: Node cn101 has low real_memory size")
	if !isNew {
		t.Fatal("first message must open a bucket")
	}
	// Same message with different node id: distance 2 < 7.
	b2, isNew := bk.Assign("error: Node cn107 has low real_memory size")
	if isNew {
		t.Fatal("near-duplicate opened a new bucket")
	}
	if b1.ID != b2.ID {
		t.Fatal("similar messages in different buckets")
	}
	if b1.Count != 2 {
		t.Errorf("count = %d", b1.Count)
	}
}

func TestAssignSeparatesDifferentMessages(t *testing.T) {
	bk := NewBucketer()
	bk.Assign("CPU temperature above threshold, cpu clock throttled.")
	_, isNew := bk.Assign("CPU 1 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C")
	if !isNew {
		t.Error("the paper's §4.3.1 example pair should split into two buckets")
	}
	if bk.Len() != 2 {
		t.Errorf("buckets = %d", bk.Len())
	}
}

func TestClassifyRequiresLabel(t *testing.T) {
	bk := NewBucketer()
	b, _ := bk.Assign("usb 1-1: new high-speed USB device number 4")
	if _, ok := bk.Classify("usb 1-1: new high-speed USB device number 7"); ok {
		t.Fatal("unlabelled bucket must not classify")
	}
	bk.Label(b.ID, taxonomy.USBDevice)
	cat, ok := bk.Classify("usb 1-1: new high-speed USB device number 9")
	if !ok || cat != taxonomy.USBDevice {
		t.Fatalf("Classify = %q, %v", cat, ok)
	}
}

func TestLabelOutOfRange(t *testing.T) {
	bk := NewBucketer()
	if bk.Label(0, taxonomy.USBDevice) {
		t.Error("labelling a missing bucket should fail")
	}
	if bk.Label(-1, taxonomy.USBDevice) {
		t.Error("negative id should fail")
	}
}

func TestUnlabeledTriageOrder(t *testing.T) {
	bk := NewBucketer()
	for i := 0; i < 5; i++ {
		bk.Assign("frequent message about the fan tray beeping loudly")
	}
	bk.Assign("rare one-off message mentioning a novel subsystem entirely")
	un := bk.Unlabeled()
	if len(un) != 2 {
		t.Fatalf("unlabeled = %d", len(un))
	}
	if un[0].Count < un[1].Count {
		t.Error("triage queue not sorted by count")
	}
	b, _ := bk.Assign("frequent message about the fan tray beeping loudly")
	bk.Label(b.ID, taxonomy.HardwareIssue)
	if len(bk.Unlabeled()) != 1 {
		t.Error("labelled bucket still in queue")
	}
}

func TestStats(t *testing.T) {
	bk := NewBucketer()
	b, _ := bk.Assign("Connection closed by 10.0.0.1 port 22 [preauth]")
	bk.Assign("Connection closed by 10.0.0.9 port 44 [preauth]")
	bk.Label(b.ID, taxonomy.SSHConnection)
	bk.Assign("a completely different unlabelled message about nothing")
	s := bk.Stats()
	if s.Buckets != 2 || s.Labeled != 1 || s.Messages != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.PerClass[taxonomy.SSHConnection] != 2 {
		t.Errorf("per-class = %v", s.PerClass)
	}
}

// TestDriftOpensNewBuckets reproduces the paper's core complaint (§3): a
// firmware update that rewords messages forces new buckets that need
// re-labelling.
func TestDriftOpensNewBuckets(t *testing.T) {
	bk := NewBucketer()
	b, _ := bk.Assign("CPU 3 temperature above threshold, clock throttled")
	bk.Label(b.ID, taxonomy.ThermalIssue)
	// New firmware rephrases the same condition.
	_, isNew := bk.Assign("Processor #3 thermal threshold exceeded; frequency reduced by firmware")
	if !isNew {
		t.Fatal("reworded message should not match the old bucket")
	}
	if _, ok := bk.Classify("Processor #4 thermal threshold exceeded; frequency reduced by firmware"); ok {
		t.Fatal("drifted messages must be unclassifiable until re-labelled")
	}
}

func TestConcurrentAssign(t *testing.T) {
	bk := NewBucketer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				bk.Assign(fmt.Sprintf("worker %d message body number %d", g, i%5))
			}
		}(g)
	}
	wg.Wait()
	s := bk.Stats()
	if s.Messages != 400 {
		t.Errorf("messages = %d, want 400", s.Messages)
	}
	// All "worker X message body number Y" strings are within distance 7
	// of each other (two digits differ), so exactly one bucket exists.
	if s.Buckets != 1 {
		t.Errorf("buckets = %d, want 1", s.Buckets)
	}
}

func TestZeroThresholdExactMatchOnly(t *testing.T) {
	bk := &Bucketer{Threshold: 0, byLen: map[int][]int{}}
	bk.Assign("exact message")
	_, isNew := bk.Assign("exact message")
	if isNew {
		t.Error("identical message should match at threshold 0")
	}
	_, isNew = bk.Assign("exact messagE")
	if !isNew {
		t.Error("one-char difference should not match at threshold 0")
	}
}

func BenchmarkAssignAgainstManyBuckets(b *testing.B) {
	bk := NewBucketer()
	for i := 0; i < 2000; i++ {
		bk.Assign(fmt.Sprintf("unique synthetic exemplar %d with content block %d%d", i*37, i*13, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk.Assign("error: Node cn101 has low real_memory size (190000 < 256000)")
	}
}

func TestPeekDoesNotMutate(t *testing.T) {
	bk := NewBucketer()
	b, _ := bk.Assign("usb 1-1: new high-speed USB device number 4")
	bk.Label(b.ID, taxonomy.USBDevice)
	before := bk.Len()
	if cat, ok := bk.Peek("usb 1-1: new high-speed USB device number 9"); !ok || cat != taxonomy.USBDevice {
		t.Errorf("Peek = %q, %v", cat, ok)
	}
	if cat, ok := bk.Peek("a wholly different message about nothing at all"); ok || cat != "" {
		t.Errorf("Peek of novel message = %q, %v", cat, ok)
	}
	if bk.Len() != before {
		t.Error("Peek created buckets")
	}
	if b.Count != 1 {
		t.Error("Peek incremented counts")
	}
}

func TestBucketsSnapshot(t *testing.T) {
	bk := NewBucketer()
	bk.Assign("first exemplar message about a fan")
	bk.Assign("a second very different exemplar about networking gear")
	bs := bk.Buckets()
	if len(bs) != 2 || bs[0].ID != 0 || bs[1].ID != 1 {
		t.Errorf("Buckets = %+v", bs)
	}
}
