package ngramcat

import (
	"testing"

	"hetsyslog/internal/loggen"
	"hetsyslog/internal/taxonomy"
)

func TestTrainValidation(t *testing.T) {
	c := &Classifier{}
	if err := c.Train([]string{"a"}, []string{"x", "y"}); err == nil {
		t.Error("length mismatch should error")
	}
	if err := c.Train(nil, nil); err == nil {
		t.Error("empty training set should error")
	}
}

func TestClassifyObviousCategories(t *testing.T) {
	c := &Classifier{}
	err := c.Train(
		[]string{
			"CPU temperature above threshold cpu clock throttled",
			"processor thermal sensor reports overheating throttled",
			"Connection closed by remote port preauth",
			"Received disconnect from port disconnected by user",
		},
		[]string{"thermal", "thermal", "ssh", "ssh"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classify("CPU 7 thermal throttling detected"); got != "thermal" {
		t.Errorf("thermal message -> %q", got)
	}
	if got := c.Classify("Connection reset by peer port 22"); got != "ssh" {
		t.Errorf("ssh message -> %q", got)
	}
	if len(c.Labels()) != 2 {
		t.Errorf("labels = %v", c.Labels())
	}
}

func TestClassifyBeforeTrain(t *testing.T) {
	c := &Classifier{}
	if got := c.Classify("anything"); got != "" {
		t.Errorf("untrained classifier returned %q", got)
	}
}

func TestOnSyntheticCorpus(t *testing.T) {
	g := loggen.NewGenerator(3)
	examples, err := g.Dataset(loggen.ScaledPaperCounts(2000))
	if err != nil {
		t.Fatal(err)
	}
	var texts, labels []string
	for _, ex := range examples {
		texts = append(texts, ex.Text)
		labels = append(labels, string(ex.Category))
	}
	// 80/20 split by stride.
	var trT, trL, teT, teL []string
	for i := range texts {
		if i%5 == 0 {
			teT = append(teT, texts[i])
			teL = append(teL, labels[i])
		} else {
			trT = append(trT, texts[i])
			trL = append(trL, labels[i])
		}
	}
	c := &Classifier{}
	if err := c.Train(trT, trL); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range teT {
		if c.Classify(teT[i]) == teL[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(teT))
	// The 1994 baseline is respectable but clearly below the TF-IDF
	// pipeline's 0.99+; it must at least beat the majority class (~54%).
	if acc < 0.60 {
		t.Errorf("n-gram baseline accuracy = %.3f, want >= 0.60", acc)
	}
	t.Logf("Cavnar-Trenkle accuracy on synthetic corpus: %.3f", acc)
}

func TestDeterministicProfiles(t *testing.T) {
	texts := []string{"alpha beta gamma", "beta gamma delta", "x y z"}
	labels := []string{"a", "a", "b"}
	c1, c2 := &Classifier{}, &Classifier{}
	if err := c1.Train(texts, labels); err != nil {
		t.Fatal(err)
	}
	if err := c2.Train(texts, labels); err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{"alpha gamma", "z y", "beta delta x"} {
		if c1.Classify(msg) != c2.Classify(msg) {
			t.Fatal("profiles not deterministic")
		}
	}
}

func TestProfileSizeCap(t *testing.T) {
	c := &Classifier{ProfileSize: 10}
	if err := c.Train([]string{"the quick brown fox jumps over the lazy dog"}, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if len(c.profiles[0]) > 10 {
		t.Errorf("profile size = %d, want <= 10", len(c.profiles[0]))
	}
}

var sinkLabel string

func BenchmarkNgramClassify(b *testing.B) {
	g := loggen.NewGenerator(1)
	var texts, labels []string
	for i := 0; i < 1000; i++ {
		ex := g.Example()
		texts = append(texts, ex.Text)
		labels = append(labels, string(ex.Category))
	}
	c := &Classifier{}
	if err := c.Train(texts, labels); err != nil {
		b.Fatal(err)
	}
	msg := string(taxonomy.ThermalIssue) // avoid dead-code elim confusion
	_ = msg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkLabel = c.Classify("CPU 12 temperature above threshold, cpu clock throttled")
	}
}
