// Package ngramcat implements N-gram-based text categorization (Cavnar &
// Trenkle, 1994), the "traditional machine learning method" the paper's
// introduction cites as prior art for automated syslog processing [6].
// Each category gets a profile: its most frequent character n-grams
// (n = 1..5) in rank order. A message is classified to the category whose
// profile minimizes the out-of-place rank distance.
package ngramcat

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultProfileSize is the classic 300-n-gram profile from the paper.
const DefaultProfileSize = 300

// Classifier is a Cavnar-Trenkle categorizer. Train before Classify.
type Classifier struct {
	// ProfileSize caps each profile's length (default 300).
	ProfileSize int
	// MinN and MaxN bound the n-gram sizes (defaults 1 and 5).
	MinN, MaxN int

	labels   []string
	profiles []map[string]int // n-gram -> rank, one per label
}

// ngrams appends padded character n-grams of sizes [minN, maxN] for each
// whitespace-delimited token of text (the original algorithm pads tokens
// with underscores).
func ngrams(text string, minN, maxN int, counts map[string]int) {
	for _, tok := range strings.Fields(strings.ToLower(text)) {
		padded := "_" + tok + "_"
		runes := []rune(padded)
		for n := minN; n <= maxN; n++ {
			for i := 0; i+n <= len(runes); i++ {
				counts[string(runes[i:i+n])]++
			}
		}
	}
}

func (c *Classifier) defaults() {
	if c.ProfileSize <= 0 {
		c.ProfileSize = DefaultProfileSize
	}
	if c.MinN <= 0 {
		c.MinN = 1
	}
	if c.MaxN < c.MinN {
		c.MaxN = 5
	}
}

// Train builds one profile per distinct label.
func (c *Classifier) Train(texts, labels []string) error {
	if len(texts) != len(labels) {
		return fmt.Errorf("ngramcat: %d texts vs %d labels", len(texts), len(labels))
	}
	if len(texts) == 0 {
		return fmt.Errorf("ngramcat: empty training set")
	}
	c.defaults()
	idx := make(map[string]int)
	var perClass []map[string]int
	for i, text := range texts {
		li, ok := idx[labels[i]]
		if !ok {
			li = len(c.labels)
			idx[labels[i]] = li
			c.labels = append(c.labels, labels[i])
			perClass = append(perClass, make(map[string]int))
		}
		ngrams(text, c.MinN, c.MaxN, perClass[li])
	}
	c.profiles = make([]map[string]int, len(c.labels))
	for li, counts := range perClass {
		c.profiles[li] = buildProfile(counts, c.ProfileSize)
	}
	return nil
}

// buildProfile converts raw counts into a rank map of the top-k n-grams.
func buildProfile(counts map[string]int, k int) map[string]int {
	type gc struct {
		g string
		n int
	}
	all := make([]gc, 0, len(counts))
	for g, n := range counts {
		all = append(all, gc{g, n})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		return all[a].g < all[b].g
	})
	if len(all) > k {
		all = all[:k]
	}
	profile := make(map[string]int, len(all))
	for rank, e := range all {
		profile[e.g] = rank
	}
	return profile
}

// Labels returns the trained label set.
func (c *Classifier) Labels() []string { return c.labels }

// Classify returns the label whose profile is closest by out-of-place
// distance.
func (c *Classifier) Classify(text string) string {
	label, _ := c.ClassifyWithDistance(text)
	return label
}

// ClassifyWithDistance also returns the winning out-of-place distance
// (lower is closer).
func (c *Classifier) ClassifyWithDistance(text string) (string, int) {
	if len(c.profiles) == 0 {
		return "", 0
	}
	counts := make(map[string]int)
	ngrams(text, c.MinN, c.MaxN, counts)
	doc := buildProfile(counts, c.ProfileSize)

	best, bestDist := "", int(^uint(0)>>1)
	for li, profile := range c.profiles {
		d := outOfPlace(doc, profile, c.ProfileSize)
		if d < bestDist {
			bestDist, best = d, c.labels[li]
		}
	}
	return best, bestDist
}

// outOfPlace sums |rank(doc) - rank(profile)| with the maximum penalty for
// n-grams missing from the category profile.
func outOfPlace(doc, profile map[string]int, maxPenalty int) int {
	d := 0
	for g, rd := range doc {
		rp, ok := profile[g]
		if !ok {
			d += maxPenalty
			continue
		}
		diff := rd - rp
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}
