package experiments

import (
	"fmt"
	"strings"
	"time"

	"hetsyslog/internal/bucket"
	"hetsyslog/internal/core"
	"hetsyslog/internal/drain"
	"hetsyslog/internal/ngramcat"
	"hetsyslog/internal/taxonomy"
)

// BaselineRow is one row of the historical-baselines comparison.
type BaselineRow struct {
	Name      string
	Accuracy  float64
	Coverage  float64 // fraction of test messages the method classifies at all
	TrainTime time.Duration
	TestTime  time.Duration
}

// Baselines compares the approaches that preceded the paper's pipeline —
// Levenshtein bucketing (§3) and Cavnar-Trenkle n-gram categorization
// (intro, [6]) — against the TF-IDF + Complement Naive Bayes pipeline on
// the same split. This grounds the paper's claim that the older
// techniques are the thing to improve upon.
func (r *Runner) Baselines() ([]BaselineRow, string, error) {
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	train, test := c.Split(r.Config.TestFrac, r.Config.Seed)
	var rows []BaselineRow

	// --- Levenshtein bucketing ---
	bk := bucket.NewBucketer()
	start := time.Now()
	for i, text := range train.Texts {
		b, _ := bk.Assign(text)
		if !b.Labeled() {
			bk.Label(b.ID, taxonomy.Category(train.Labels[i]))
		}
	}
	bkTrain := time.Since(start)
	start = time.Now()
	correct, covered := 0, 0
	for i, text := range test.Texts {
		cat, ok := bk.Peek(text)
		if !ok || cat == "" {
			continue
		}
		covered++
		if string(cat) == test.Labels[i] {
			correct++
		}
	}
	bkTest := time.Since(start)
	rows = append(rows, BaselineRow{
		Name:      "Levenshtein bucketing (thr 7)",
		Accuracy:  safeDiv(correct, test.Len()),
		Coverage:  safeDiv(covered, test.Len()),
		TrainTime: bkTrain, TestTime: bkTest,
	})

	// --- Drain-style template mining (the LogPAI-era successor to
	// bucketing): templates inherit the label of their first message. ---
	dm := drain.NewMiner()
	start = time.Now()
	for i, text := range train.Texts {
		c, isNew := dm.Observe(text)
		if isNew {
			dm.Label(c.ID, train.Labels[i])
		}
	}
	dmTrain := time.Since(start)
	start = time.Now()
	correct, covered = 0, 0
	for i, text := range test.Texts {
		c := dm.Match(text)
		if c == nil || c.Label == "" {
			continue
		}
		covered++
		if c.Label == test.Labels[i] {
			correct++
		}
	}
	dmTest := time.Since(start)
	rows = append(rows, BaselineRow{
		Name:      "Drain template mining",
		Accuracy:  safeDiv(correct, test.Len()),
		Coverage:  safeDiv(covered, test.Len()),
		TrainTime: dmTrain, TestTime: dmTest,
	})

	// --- Cavnar-Trenkle n-gram categorization ---
	ng := &ngramcat.Classifier{}
	start = time.Now()
	if err := ng.Train(train.Texts, train.Labels); err != nil {
		return nil, "", err
	}
	ngTrain := time.Since(start)
	start = time.Now()
	correct = 0
	for i, text := range test.Texts {
		if ng.Classify(text) == test.Labels[i] {
			correct++
		}
	}
	ngTest := time.Since(start)
	rows = append(rows, BaselineRow{
		Name:      "Cavnar-Trenkle n-grams",
		Accuracy:  safeDiv(correct, test.Len()),
		Coverage:  1,
		TrainTime: ngTrain, TestTime: ngTest,
	})

	// --- The paper's pipeline (CNB as the cheap representative) ---
	model, _ := core.NewModel("Complement Naive Bayes")
	tc, err := core.Train(model, train, core.DefaultOptions())
	if err != nil {
		return nil, "", err
	}
	res, err := tc.Evaluate(test)
	if err != nil {
		return nil, "", err
	}
	rows = append(rows, BaselineRow{
		Name:      "TF-IDF + Complement NB",
		Accuracy:  res.Accuracy,
		Coverage:  1,
		TrainTime: res.TrainTime, TestTime: res.TestTime,
	})

	var b strings.Builder
	b.WriteString("Historical baselines vs the paper's pipeline\n")
	fmt.Fprintf(&b, "%-32s %9s %9s %12s %12s\n", "Method", "Accuracy", "Coverage", "Train (s)", "Test (s)")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-32s %9.4f %8.1f%% %12.4f %12.4f\n",
			row.Name, row.Accuracy, 100*row.Coverage,
			row.TrainTime.Seconds(), row.TestTime.Seconds())
	}
	b.WriteString("(bucketing accuracy counts unclassified messages as wrong;\n coverage is the fraction it can classify at all)\n")
	return rows, b.String(), nil
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
