package experiments

import (
	"fmt"
	"math"
	"strings"

	"hetsyslog/internal/core"
	"hetsyslog/internal/loggen"
)

// StabilityRow reports F1 variability across generator/split seeds for one
// model — evidence the reproduction's conclusions are not seed luck.
type StabilityRow struct {
	Model string
	Seeds int
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
}

// Stability reruns train/evaluate over several seeds (fresh corpus and
// split per seed) for each configured model.
func (r *Runner) Stability(nSeeds int) ([]StabilityRow, string, error) {
	if nSeeds <= 0 {
		nSeeds = 3
	}
	scale := r.Config.Scale / 2
	if scale < 2000 {
		scale = 2000
	}

	var rows []StabilityRow
	for _, name := range r.Config.Models {
		row := StabilityRow{Model: name, Seeds: nSeeds, Min: 2}
		var f1s []float64
		for s := 0; s < nSeeds; s++ {
			seed := r.Config.Seed + int64(s)*101
			g := loggen.NewGenerator(seed)
			examples, err := g.Dataset(loggen.ScaledPaperCounts(scale))
			if err != nil {
				return nil, "", err
			}
			corpus := core.FromExamples(examples)
			train, test := corpus.Split(r.Config.TestFrac, seed)
			model, err := core.NewModel(name)
			if err != nil {
				return nil, "", err
			}
			tc, err := core.Train(model, train, core.DefaultOptions())
			if err != nil {
				return nil, "", err
			}
			res, err := tc.Evaluate(test)
			if err != nil {
				return nil, "", err
			}
			f1s = append(f1s, res.WeightedF1)
		}
		var sum float64
		for _, f := range f1s {
			sum += f
			if f < row.Min {
				row.Min = f
			}
			if f > row.Max {
				row.Max = f
			}
		}
		row.Mean = sum / float64(len(f1s))
		var sq float64
		for _, f := range f1s {
			d := f - row.Mean
			sq += d * d
		}
		row.Std = math.Sqrt(sq / float64(len(f1s)))
		rows = append(rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Seed stability: weighted F1 over %d seeds (scale %d)\n", nSeeds, scale)
	fmt.Fprintf(&b, "%-24s %10s %10s %10s %10s\n", "Classifier", "mean", "std", "min", "max")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-24s %10.6f %10.6f %10.6f %10.6f\n",
			row.Model, row.Mean, row.Std, row.Min, row.Max)
	}
	return rows, b.String(), nil
}
