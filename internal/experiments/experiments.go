// Package experiments reproduces every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each runner
// returns both structured results and a formatted text block; the
// cmd/experiments binary prints them and regenerates EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hetsyslog/internal/core"
	"hetsyslog/internal/llm"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/taxonomy"
	"hetsyslog/internal/textproc"
	"hetsyslog/internal/tfidf"
)

// Config scopes an experiment run.
type Config struct {
	// Scale is the approximate corpus size. The paper's full corpus is
	// 196 393 unique messages (taxonomy.PaperTotal()); the default of
	// 20 000 preserves the class imbalance at laptop scale.
	Scale int
	// Seed drives generation and splits.
	Seed int64
	// Models restricts Figure 3 / ablation to a subset (nil = all 8).
	Models []string
	// TestFrac is the held-out fraction (default 0.2, the usual 80/20).
	TestFrac float64
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{Scale: 20000, Seed: 1, TestFrac: 0.2}
}

// Runner caches the generated corpus across experiments.
type Runner struct {
	Config Config

	corpus *core.Corpus
	gen    *loggen.Generator
}

// NewRunner builds a runner, normalizing the config.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale <= 0 {
		cfg.Scale = 20000
	}
	if cfg.TestFrac <= 0 || cfg.TestFrac >= 1 {
		cfg.TestFrac = 0.2
	}
	if len(cfg.Models) == 0 {
		cfg.Models = core.ModelNames()
	}
	return &Runner{Config: cfg}
}

// Corpus generates (once) the scaled Table 2 corpus.
func (r *Runner) Corpus() (*core.Corpus, error) {
	if r.corpus != nil {
		return r.corpus, nil
	}
	r.gen = loggen.NewGenerator(r.Config.Seed)
	examples, err := r.gen.Dataset(loggen.ScaledPaperCounts(r.Config.Scale))
	if err != nil {
		return nil, err
	}
	r.corpus = core.FromExamples(examples)
	return r.corpus, nil
}

// Table2Result is the reproduced Table 2.
type Table2Result struct {
	Counts map[taxonomy.Category]int
	Total  int
}

// Table2 regenerates the per-category unique-message counts.
func (r *Runner) Table2() (*Table2Result, string, error) {
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	res := &Table2Result{Counts: map[taxonomy.Category]int{}}
	for _, l := range c.Labels {
		res.Counts[taxonomy.Category(l)]++
		res.Total++
	}
	var b strings.Builder
	b.WriteString("Table 2: unique messages per category\n")
	fmt.Fprintf(&b, "%-22s %10s %12s\n", "Category", "This run", "Paper")
	paper := taxonomy.PaperCounts()
	for _, cat := range taxonomy.All() {
		fmt.Fprintf(&b, "%-22s %10d %12d\n", cat, res.Counts[cat], paper[cat])
	}
	fmt.Fprintf(&b, "%-22s %10d %12d\n", "total", res.Total, taxonomy.PaperTotal())
	return res, b.String(), nil
}

// Table1 computes per-category top TF-IDF tokens (after the §4.3
// preprocessing, so tokens appear in lemma form).
func (r *Runner) Table1(topK int) (map[string][]tfidf.TermScore, string, error) {
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	if topK <= 0 {
		topK = 5
	}
	prep := textproc.NewPreprocessor()
	byClass := make(map[string][][]string)
	for i, text := range c.Texts {
		byClass[c.Labels[i]] = append(byClass[c.Labels[i]], prep.Process(text))
	}
	top := tfidf.ClassTopTerms(byClass, topK)
	var b strings.Builder
	b.WriteString("Table 1: top TF-IDF tokens per category (lemmatized)\n")
	b.WriteString(tfidf.FormatTopTerms(top))
	return top, b.String(), nil
}

// Figure3 trains and evaluates every configured model on the 80/20 split —
// the main results table.
func (r *Runner) Figure3() ([]core.EvalResult, string, error) {
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	train, test := c.Split(r.Config.TestFrac, r.Config.Seed)
	results, err := r.evalModels(train, test)
	if err != nil {
		return nil, "", err
	}
	return results, formatFigure3("Figure 3: classifier comparison (TF-IDF preprocessing)", results), nil
}

func (r *Runner) evalModels(train, test *core.Corpus) ([]core.EvalResult, error) {
	var results []core.EvalResult
	for _, name := range r.Config.Models {
		model, err := core.NewModel(name)
		if err != nil {
			return nil, err
		}
		tc, err := core.Train(model, train, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		res, err := tc.Evaluate(test)
		if err != nil {
			return nil, err
		}
		results = append(results, *res)
	}
	return results, nil
}

func formatFigure3(title string, results []core.EvalResult) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-24s %12s %15s %15s\n", "Classifier", "Weighted F1", "Train Time (s)", "Test Time (s)")
	for _, res := range results {
		fmt.Fprintf(&b, "%-24s %12.6f %15.4f %15.4f\n",
			res.ModelName, res.WeightedF1, res.TrainTime.Seconds(), res.TestTime.Seconds())
	}
	return b.String()
}

// Figure2 trains Linear SVC and renders its confusion matrix, plus the
// most-confused-category analysis (§5.1's "Unimportant" finding).
func (r *Runner) Figure2() (*core.EvalResult, string, error) {
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	train, test := c.Split(r.Config.TestFrac, r.Config.Seed)
	model, _ := core.NewModel("Linear SVC")
	tc, err := core.Train(model, train, core.DefaultOptions())
	if err != nil {
		return nil, "", err
	}
	res, err := tc.Evaluate(test)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	b.WriteString("Figure 2: confusion matrix for Linear SVC\n")
	b.WriteString(res.Confusion.String())
	tcat, pcat, n := res.Confusion.MostConfusedPair()
	fmt.Fprintf(&b, "most confused pair: true=%q predicted=%q (%d)\n", tcat, pcat, n)
	fmt.Fprintf(&b, "off-diagonal involving %q: %d of %d total errors\n",
		taxonomy.Unimportant,
		res.Confusion.ConfusionInvolving(string(taxonomy.Unimportant)),
		totalErrors(res))
	return res, b.String(), nil
}

func totalErrors(res *core.EvalResult) int {
	errs := 0
	for i, row := range res.Confusion.M {
		for j, c := range row {
			if i != j {
				errs += c
			}
		}
	}
	return errs
}

// AblationResult pairs with/without-Unimportant rows per model.
type AblationResult struct {
	With    core.EvalResult
	Without core.EvalResult
}

// Ablation reruns the evaluation with the "Unimportant" category removed
// (§5.1): every F1 should rise and Linear SVC's training time should
// collapse.
func (r *Runner) Ablation() (map[string]AblationResult, string, error) {
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	train, test := c.Split(r.Config.TestFrac, r.Config.Seed)
	withRes, err := r.evalModels(train, test)
	if err != nil {
		return nil, "", err
	}
	trainNo := dropLabel(train, string(taxonomy.Unimportant))
	testNo := dropLabel(test, string(taxonomy.Unimportant))
	withoutRes, err := r.evalModels(trainNo, testNo)
	if err != nil {
		return nil, "", err
	}
	out := make(map[string]AblationResult, len(withRes))
	for i := range withRes {
		out[withRes[i].ModelName] = AblationResult{With: withRes[i], Without: withoutRes[i]}
	}
	var b strings.Builder
	b.WriteString("Ablation (§5.1): removing the \"Unimportant\" category\n")
	fmt.Fprintf(&b, "%-24s %14s %14s %12s %12s\n", "Classifier",
		"F1 (with)", "F1 (without)", "train w (s)", "train w/o (s)")
	for _, name := range r.Config.Models {
		a := out[name]
		fmt.Fprintf(&b, "%-24s %14.6f %14.6f %12.4f %12.4f\n", name,
			a.With.WeightedF1, a.Without.WeightedF1,
			a.With.TrainTime.Seconds(), a.Without.TrainTime.Seconds())
	}
	return out, b.String(), nil
}

func dropLabel(c *core.Corpus, label string) *core.Corpus {
	out := &core.Corpus{}
	for i, l := range c.Labels {
		if l != label {
			out.Append(c.Texts[i], l)
		}
	}
	return out
}

// Table3Row is one LLM cost point.
type Table3Row struct {
	Model           string
	InferenceSec    float64
	MessagesPerHour int
	PaperSec        float64
	PaperPerHour    int
}

// Table3 reproduces the LLM inference-cost table using the analytic
// latency model over real prompt/answer token counts from the simulators.
func (r *Runner) Table3(samples int) ([]Table3Row, string, error) {
	if samples <= 0 {
		samples = 50
	}
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	msgs := sampleTexts(c, samples, r.Config.Seed)
	hw := llm.A100Node()
	prompt := llm.DefaultPrompt()

	rows := []Table3Row{
		{Model: "Falcon-7b", PaperSec: 0.639, PaperPerHour: 5633},
		{Model: "Falcon-40b", PaperSec: 2.184, PaperPerHour: 1648},
		{Model: "facebook/Bart-Large-MNLI", PaperSec: 0.13359, PaperPerHour: 26948},
	}

	// Cost measurement uses the behaviour the paper timed: the models
	// justify essentially every answer ("unsolicited justification"),
	// bounded by the max-new-tokens mitigation.
	timing := llm.FailureModes{ExcessJustification: 1}
	g7 := llm.NewGenerative(llm.Falcon7B(), hw, timing, r.Config.Seed)
	g7.MaxNewTokens = 64
	g40 := llm.NewGenerative(llm.Falcon40B(), hw, timing, r.Config.Seed)
	g40.MaxNewTokens = 64
	zs := llm.NewZeroShot()

	var t7, t40, tz time.Duration
	for _, m := range msgs {
		t7 += g7.Classify(m, prompt).Latency
		t40 += g40.Classify(m, prompt).Latency
		_, lat := zs.Top(m)
		tz += lat
	}
	n := time.Duration(len(msgs))
	rows[0].InferenceSec = (t7 / n).Seconds()
	rows[1].InferenceSec = (t40 / n).Seconds()
	rows[2].InferenceSec = (tz / n).Seconds()
	for i := range rows {
		rows[i].MessagesPerHour = llm.MessagesPerHour(time.Duration(rows[i].InferenceSec * float64(time.Second)))
	}

	var b strings.Builder
	b.WriteString("Table 3: LLM classification cost per message (simulated A100 node)\n")
	fmt.Fprintf(&b, "%-26s %12s %10s %12s %10s\n", "Model", "Inference(s)", "Msgs/hour", "Paper(s)", "Paper m/h")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-26s %12.5f %10d %12.5f %10d\n",
			row.Model, row.InferenceSec, row.MessagesPerHour, row.PaperSec, row.PaperPerHour)
	}
	return rows, b.String(), nil
}

func sampleTexts(c *core.Corpus, n int, seed int64) []string {
	if n >= c.Len() {
		return c.Texts
	}
	// Deterministic stride sampling keeps the category mix.
	stride := c.Len() / n
	out := make([]string, 0, n)
	for i := 0; i < c.Len() && len(out) < n; i += stride {
		out = append(out, c.Texts[i])
	}
	return out
}

// Figure1 produces the worked example: one thermal message classified with
// a generated explanation by the simulated llama2-70b-chat-hf (the model
// in the paper's Figure 1).
func (r *Runner) Figure1() (string, error) {
	spec := llm.Llama270B()
	g := llm.NewGenerative(spec, llm.A100Node(), llm.FailureModes{}, r.Config.Seed)
	msg := "Warning: Socket 2 - CPU 23 throttling"
	out := g.Explain(msg, llm.DefaultPrompt())
	cost := spec.InferenceTime(llm.A100Node(), llm.CountTokens(msg)+40, llm.CountTokens(out))
	return fmt.Sprintf("Figure 1: example generative classification (%s)\nPrompt message: %q\nModel output: %s\n(modelled inference cost: %.2fs)\n",
		spec.Name, msg, out, cost.Seconds()), nil
}

// FailureStats summarizes the §5.2 failure-mode sweep.
type FailureStats struct {
	Model              string
	Samples            int
	Invented           int     // out-of-taxonomy answers
	Truncated          int     // outputs cut by the token cap
	MeanNewTokens      float64 // with cap
	MeanNewTokensNoCap float64
	Accuracy           float64 // vs generator labels, parsed answers only
}

// Failures sweeps the generative simulators with and without the
// max-new-tokens cap, quantifying invented categories and excessive
// generation.
func (r *Runner) Failures(samples int) ([]FailureStats, string, error) {
	if samples <= 0 {
		samples = 200
	}
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	idx := sampleIndices(c, samples)
	prompt := llm.DefaultPrompt()
	hw := llm.A100Node()

	var out []FailureStats
	for _, spec := range []struct {
		name     string
		model    llm.ModelSpec
		failures llm.FailureModes
	}{
		{"Falcon-7b", llm.Falcon7B(), llm.Falcon7BFailures()},
		{"Falcon-40b", llm.Falcon40B(), llm.Falcon40BFailures()},
	} {
		capped := llm.NewGenerative(spec.model, hw, spec.failures, r.Config.Seed)
		capped.MaxNewTokens = 64
		uncapped := llm.NewGenerative(spec.model, hw, spec.failures, r.Config.Seed)

		st := FailureStats{Model: spec.name, Samples: len(idx)}
		correct, parsed := 0, 0
		var toks, toksNoCap float64
		for _, i := range idx {
			res := capped.Classify(c.Texts[i], prompt)
			resU := uncapped.Classify(c.Texts[i], prompt)
			toks += float64(res.NewTokens)
			toksNoCap += float64(resU.NewTokens)
			if res.Truncated {
				st.Truncated++
			}
			if !res.ParseOK {
				st.Invented++
				continue
			}
			parsed++
			if string(res.Category) == c.Labels[i] {
				correct++
			}
		}
		st.MeanNewTokens = toks / float64(len(idx))
		st.MeanNewTokensNoCap = toksNoCap / float64(len(idx))
		if parsed > 0 {
			st.Accuracy = float64(correct) / float64(parsed)
		}
		out = append(out, st)
	}

	var b strings.Builder
	b.WriteString("§5.2 failure modes: generative classification with 64-token cap vs uncapped\n")
	fmt.Fprintf(&b, "%-12s %8s %9s %10s %10s %12s %9s\n",
		"Model", "Samples", "Invented", "Truncated", "MeanToks", "MeanToksNoCap", "Accuracy")
	for _, s := range out {
		fmt.Fprintf(&b, "%-12s %8d %9d %10d %10.1f %12.1f %9.3f\n",
			s.Model, s.Samples, s.Invented, s.Truncated, s.MeanNewTokens, s.MeanNewTokensNoCap, s.Accuracy)
	}
	return out, b.String(), nil
}

func sampleIndices(c *core.Corpus, n int) []int {
	if n >= c.Len() {
		n = c.Len()
	}
	stride := c.Len() / n
	if stride == 0 {
		stride = 1
	}
	out := make([]int, 0, n)
	for i := 0; i < c.Len() && len(out) < n; i += stride {
		out = append(out, i)
	}
	return out
}

// Names lists the experiment ids understood by Run.
func Names() []string {
	return []string{"table1", "table2", "table3", "figure1", "figure2", "figure3", "ablation", "failures", "drift", "baselines", "lemmas", "stability"}
}

// Run executes one experiment by id and returns its text block.
func (r *Runner) Run(name string) (string, error) {
	switch name {
	case "table1":
		_, txt, err := r.Table1(5)
		return txt, err
	case "table2":
		_, txt, err := r.Table2()
		return txt, err
	case "table3":
		_, txt, err := r.Table3(0)
		return txt, err
	case "figure1":
		return r.Figure1()
	case "figure2":
		_, txt, err := r.Figure2()
		return txt, err
	case "figure3":
		_, txt, err := r.Figure3()
		return txt, err
	case "ablation":
		_, txt, err := r.Ablation()
		return txt, err
	case "failures":
		_, txt, err := r.Failures(0)
		return txt, err
	case "drift":
		_, txt, err := r.Drift("")
		return txt, err
	case "baselines":
		_, txt, err := r.Baselines()
		return txt, err
	case "lemmas":
		_, txt, err := r.LemmaAblation()
		return txt, err
	case "stability":
		_, txt, err := r.Stability(0)
		return txt, err
	default:
		sort.Strings(Names())
		return "", fmt.Errorf("experiments: unknown id %q (want one of %v)", name, Names())
	}
}
