package experiments

import (
	"strings"
	"testing"

	"hetsyslog/internal/taxonomy"
)

// testRunner uses a small corpus and the two fastest models so the suite
// stays quick; the full sweep runs in cmd/experiments and the benches.
func testRunner() *Runner {
	return NewRunner(Config{
		Scale:  3000,
		Seed:   1,
		Models: []string{"Complement Naive Bayes", "Nearest Centroid"},
	})
}

func TestTable2(t *testing.T) {
	r := testRunner()
	res, txt, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[taxonomy.Unimportant] <= res.Counts[taxonomy.ThermalIssue] {
		t.Errorf("imbalance shape broken: %v", res.Counts)
	}
	if res.Counts[taxonomy.SlurmIssue] == 0 {
		t.Error("Slurm Issues empty")
	}
	if !strings.Contains(txt, "Thermal Issue") || !strings.Contains(txt, "59411") {
		t.Errorf("Table 2 text missing content:\n%s", txt)
	}
}

func TestTable1TokensMatchPaperShape(t *testing.T) {
	r := testRunner()
	top, txt, err := r.Table1(8)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		string(taxonomy.ThermalIssue):  {"temperature", "throttle"},
		string(taxonomy.USBDevice):     {"usb"},
		string(taxonomy.SSHConnection): {"preauth"},
		string(taxonomy.MemoryIssue):   {"real_memory"},
		string(taxonomy.SlurmIssue):    {"slurm"},
	}
	for class, tokens := range want {
		got := map[string]bool{}
		for _, ts := range top[class] {
			got[ts.Term] = true
		}
		for _, tok := range tokens {
			if !got[tok] {
				t.Errorf("Table 1 class %q missing token %q (got %v)", class, tok, top[class])
			}
		}
	}
	if !strings.Contains(txt, "Table 1") {
		t.Error("missing title")
	}
}

func TestFigure3ShapeHolds(t *testing.T) {
	r := testRunner()
	results, txt, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if res.WeightedF1 < 0.9 {
			t.Errorf("%s F1 = %.4f, want > 0.9", res.ModelName, res.WeightedF1)
		}
		if res.TrainTime <= 0 || res.TestTime <= 0 {
			t.Errorf("%s times not recorded", res.ModelName)
		}
	}
	if !strings.Contains(txt, "Weighted F1") {
		t.Errorf("Figure 3 text:\n%s", txt)
	}
}

func TestFigure2UnimportantConfusion(t *testing.T) {
	r := testRunner()
	res, txt, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelName != "Linear SVC" {
		t.Errorf("model = %s", res.ModelName)
	}
	if !strings.Contains(txt, "confusion matrix") {
		t.Error("missing matrix header")
	}
	// The paper's finding: when any confusion exists, "Unimportant" is
	// the most frequently involved category.
	total := totalErrors(res)
	if total > 0 {
		inv := res.Confusion.ConfusionInvolving(string(taxonomy.Unimportant))
		if inv*2 < total {
			t.Errorf("Unimportant involved in %d of %d errors; expected the majority", inv, total)
		}
	}
}

func TestAblationImproves(t *testing.T) {
	r := testRunner()
	results, txt, err := r.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range results {
		if a.Without.WeightedF1+1e-9 < a.With.WeightedF1 {
			t.Errorf("%s: F1 without Unimportant (%.5f) dropped below with (%.5f)",
				name, a.Without.WeightedF1, a.With.WeightedF1)
		}
	}
	if !strings.Contains(txt, "Unimportant") {
		t.Error("missing title")
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	r := testRunner()
	rows, txt, err := r.Table3(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ordering and rough magnitudes: each simulated cost within 35% of
	// the paper's number.
	for _, row := range rows {
		ratio := row.InferenceSec / row.PaperSec
		if ratio < 0.65 || ratio > 1.35 {
			t.Errorf("%s inference = %.4fs vs paper %.4fs (ratio %.2f)",
				row.Model, row.InferenceSec, row.PaperSec, ratio)
		}
	}
	if !(rows[2].InferenceSec < rows[0].InferenceSec && rows[0].InferenceSec < rows[1].InferenceSec) {
		t.Errorf("cost ordering broken: %+v", rows)
	}
	if !strings.Contains(txt, "Falcon-40b") {
		t.Error("missing row")
	}
}

func TestFigure1(t *testing.T) {
	r := testRunner()
	txt, err := r.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "Thermal Issue") || !strings.Contains(txt, "CPU 23 throttling") {
		t.Errorf("Figure 1:\n%s", txt)
	}
}

func TestFailuresSweep(t *testing.T) {
	r := testRunner()
	stats, txt, err := r.Failures(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats = %d", len(stats))
	}
	for _, s := range stats {
		if s.Invented == 0 {
			t.Errorf("%s: no invented categories; failure injection inactive", s.Model)
		}
		if s.MeanNewTokensNoCap <= s.MeanNewTokens {
			t.Errorf("%s: cap did not reduce token usage (%f vs %f)",
				s.Model, s.MeanNewTokens, s.MeanNewTokensNoCap)
		}
	}
	// 40b should be at least as accurate as 7b on parsed answers.
	if stats[1].Accuracy+0.05 < stats[0].Accuracy {
		t.Errorf("Falcon-40b accuracy %.3f well below 7b %.3f", stats[1].Accuracy, stats[0].Accuracy)
	}
	if !strings.Contains(txt, "failure modes") {
		t.Error("missing title")
	}
}

func TestRunDispatch(t *testing.T) {
	r := testRunner()
	for _, name := range []string{"table2", "figure1"} {
		txt, err := r.Run(name)
		if err != nil || txt == "" {
			t.Errorf("Run(%q): %v", name, err)
		}
	}
	if _, err := r.Run("table9"); err == nil {
		t.Error("unknown experiment should error")
	}
	if len(Names()) != 12 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestDriftClassifierBeatsBucketing(t *testing.T) {
	r := testRunner()
	res, txt, err := r.Drift("Complement Naive Bayes")
	if err != nil {
		t.Fatal(err)
	}
	// The classifier's F1 should degrade gracefully under drift...
	if res.F1After < 0.7 {
		t.Errorf("post-drift F1 = %.3f; classifier should be robust", res.F1After)
	}
	// ...while the bucketing baseline loses coverage and accrues
	// labelling debt (the paper's §3 complaint).
	if res.BucketCoverageAfter >= res.BucketCoverageBefore {
		t.Errorf("bucket coverage did not drop: %.3f -> %.3f",
			res.BucketCoverageBefore, res.BucketCoverageAfter)
	}
	if res.NewBuckets == 0 {
		t.Error("drift opened no new buckets")
	}
	if res.F1After < res.BucketCoverageAfter {
		t.Errorf("classifier (%.3f) should out-cover drifted bucketing (%.3f)",
			res.F1After, res.BucketCoverageAfter)
	}
	if !strings.Contains(txt, "firmware") {
		t.Error("missing drift narrative")
	}
}

func TestDriftUnknownModelErrors(t *testing.T) {
	r := testRunner()
	if _, _, err := r.Drift("No Such Model"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestBaselinesShape(t *testing.T) {
	r := testRunner()
	rows, txt, err := r.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	bucketing, dr, ngram, pipeline := rows[0], rows[1], rows[2], rows[3]
	// Template mining covers more than edit-distance bucketing.
	if dr.Coverage <= bucketing.Coverage {
		t.Errorf("drain coverage %.3f should beat bucketing %.3f", dr.Coverage, bucketing.Coverage)
	}
	// The modern pipeline must beat both historical baselines.
	if pipeline.Accuracy <= ngram.Accuracy || pipeline.Accuracy <= bucketing.Accuracy {
		t.Errorf("pipeline (%.3f) should beat n-grams (%.3f) and bucketing (%.3f)",
			pipeline.Accuracy, ngram.Accuracy, bucketing.Accuracy)
	}
	// Bucketing cannot cover unseen phrasings; the others always answer.
	if bucketing.Coverage >= 1 {
		t.Errorf("bucketing coverage = %.3f, expected < 1", bucketing.Coverage)
	}
	if ngram.Coverage != 1 || pipeline.Coverage != 1 {
		t.Error("classifiers should always produce a label")
	}
	if !strings.Contains(txt, "Cavnar-Trenkle") {
		t.Error("missing baseline row")
	}
}

func TestLemmaAblation(t *testing.T) {
	r := testRunner()
	rows, txt, err := r.LemmaAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.VocabWith >= row.VocabWithout {
			t.Errorf("%s: lemmatized vocab %d should be smaller than raw %d",
				row.Model, row.VocabWith, row.VocabWithout)
		}
		if row.F1With < 0.85 || row.F1Without < 0.85 {
			t.Errorf("%s: ablation F1s too low: %.3f / %.3f",
				row.Model, row.F1With, row.F1Without)
		}
	}
	if !strings.Contains(txt, "Lemmatization") {
		t.Error("missing title")
	}
}

// TestRunAllNames executes every registered experiment id end to end at
// test scale, guaranteeing the dispatch table stays complete.
func TestRunAllNames(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	r := testRunner()
	for _, name := range Names() {
		txt, err := r.Run(name)
		if err != nil {
			t.Fatalf("Run(%q): %v", name, err)
		}
		if len(txt) < 20 {
			t.Errorf("Run(%q) produced suspiciously short output: %q", name, txt)
		}
	}
}

func TestStability(t *testing.T) {
	r := testRunner()
	rows, txt, err := r.Stability(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Mean < 0.85 {
			t.Errorf("%s mean F1 = %.3f", row.Model, row.Mean)
		}
		if row.Std > 0.05 {
			t.Errorf("%s F1 std = %.4f; results look seed-unstable", row.Model, row.Std)
		}
		if row.Min > row.Max || row.Mean < row.Min || row.Mean > row.Max {
			t.Errorf("%s stats inconsistent: %+v", row.Model, row)
		}
	}
	if !strings.Contains(txt, "stability") {
		t.Error("missing title")
	}
}
