package experiments

import (
	"fmt"
	"strings"

	"hetsyslog/internal/bucket"
	"hetsyslog/internal/core"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/taxonomy"
)

// DriftResult quantifies robustness to environment change — the question
// the paper poses as its immediate future work (§7: "how well this
// particular classification/pre-processing technique combination holds up
// to changes in our cluster's environment") and the failure that killed
// the Levenshtein bucketing approach (§3).
type DriftResult struct {
	Model string
	// F1Before/F1After: classifier weighted F1 on pre-drift and
	// post-firmware-update test data.
	F1Before float64
	F1After  float64
	// BucketCoverageBefore/After: fraction of test messages the labelled
	// bucketing baseline can classify at all (unmatched messages open new
	// buckets that wait for an administrator).
	BucketCoverageBefore float64
	BucketCoverageAfter  float64
	// NewBuckets is how many fresh buckets (= labelling work) the
	// post-drift stream opened.
	NewBuckets int
}

// Drift trains the classifier and the bucketing baseline on pre-drift
// data, applies a firmware update to every architecture, and evaluates
// both on the reworded stream.
func (r *Runner) Drift(modelName string) (*DriftResult, string, error) {
	if modelName == "" {
		modelName = "Complement Naive Bayes"
	}
	scale := r.Config.Scale / 2
	if scale < 2000 {
		scale = 2000
	}

	// Fresh generator so drift state is controlled locally.
	g := loggen.NewGenerator(r.Config.Seed + 77)
	trainEx, err := g.Dataset(loggen.ScaledPaperCounts(scale))
	if err != nil {
		return nil, "", err
	}
	trainCorpus := core.FromExamples(trainEx)

	model, err := core.NewModel(modelName)
	if err != nil {
		return nil, "", err
	}
	tc, err := core.Train(model, trainCorpus, core.DefaultOptions())
	if err != nil {
		return nil, "", err
	}

	// The bucketing baseline "trains" by bucketing the corpus and
	// inheriting the known labels (the paper labelled 3 415 exemplars to
	// cover 196k messages this way).
	bk := bucket.NewBucketer()
	for i, text := range trainCorpus.Texts {
		b, _ := bk.Assign(text)
		if !b.Labeled() {
			bk.Label(b.ID, taxonomy.Category(trainCorpus.Labels[i]))
		}
	}
	trainedBuckets := bk.Len()

	// Coverage uses the non-mutating Peek so measurement does not itself
	// open buckets; a message is covered when it lands in a labelled
	// bucket.
	evalBoth := func(test *core.Corpus) (f1 float64, coverage float64, err error) {
		res, err := tc.Evaluate(test)
		if err != nil {
			return 0, 0, err
		}
		covered := 0
		for _, text := range test.Texts {
			if cat, ok := bk.Peek(text); ok && cat != "" {
				covered++
			}
		}
		return res.WeightedF1, float64(covered) / float64(test.Len()), nil
	}

	// Pre-drift evaluation stream.
	preEx := sampleStream(g, scale/4)
	pre := core.FromExamples(preEx)
	f1Before, covBefore, err := evalBoth(pre)
	if err != nil {
		return nil, "", err
	}

	// Firmware update everywhere: the drift event.
	for _, a := range loggen.Arches() {
		g.ApplyFirmwareUpdate(a)
	}
	postEx := sampleStream(g, scale/4)
	post := core.FromExamples(postEx)
	f1After, covAfter, err := evalBoth(post)
	if err != nil {
		return nil, "", err
	}

	// Labelling debt: route the post-drift stream through the bucketer
	// and count the buckets it opens.
	for _, text := range post.Texts {
		bk.Assign(text)
	}

	res := &DriftResult{
		Model:                modelName,
		F1Before:             f1Before,
		F1After:              f1After,
		BucketCoverageBefore: covBefore,
		BucketCoverageAfter:  covAfter,
		NewBuckets:           bk.Len() - trainedBuckets,
	}
	var b strings.Builder
	b.WriteString("Drift robustness (§3 motivation / §7 future work): firmware update rewords messages\n")
	fmt.Fprintf(&b, "%-34s %12s %12s\n", "", "pre-drift", "post-drift")
	fmt.Fprintf(&b, "%-34s %12.4f %12.4f\n", modelName+" weighted F1", res.F1Before, res.F1After)
	fmt.Fprintf(&b, "%-34s %11.1f%% %11.1f%%\n", "bucketing coverage",
		100*res.BucketCoverageBefore, 100*res.BucketCoverageAfter)
	fmt.Fprintf(&b, "new buckets opened post-training (administrator labelling debt): %d\n", res.NewBuckets)
	return res, b.String(), nil
}

// sampleStream draws n mixed examples from the generator's live stream.
func sampleStream(g *loggen.Generator, n int) []loggen.Example {
	out := make([]loggen.Example, n)
	for i := range out {
		out[i] = g.Example()
	}
	return out
}
