package experiments

import (
	"fmt"
	"strings"

	"hetsyslog/internal/core"
)

// LemmaAblationRow compares the pipeline with and without the §4.3.2
// lemmatization step for one model.
type LemmaAblationRow struct {
	Model        string
	F1With       float64
	F1Without    float64
	VocabWith    int
	VocabWithout int
}

// LemmaAblation quantifies what lemmatization buys: a smaller vocabulary
// (different inflections of "fail" collapse) and robustness to vendors
// that use different parts of speech for the same word (§4.3.2). The
// classifiers are strong enough that F1 moves little on clean data; the
// vocabulary compression is the observable effect.
func (r *Runner) LemmaAblation() ([]LemmaAblationRow, string, error) {
	c, err := r.Corpus()
	if err != nil {
		return nil, "", err
	}
	train, test := c.Split(r.Config.TestFrac, r.Config.Seed)

	var rows []LemmaAblationRow
	for _, name := range r.Config.Models {
		withModel, err := core.NewModel(name)
		if err != nil {
			return nil, "", err
		}
		withTC, err := core.Train(withModel, train, core.DefaultOptions())
		if err != nil {
			return nil, "", err
		}
		withRes, err := withTC.Evaluate(test)
		if err != nil {
			return nil, "", err
		}

		withoutModel, _ := core.NewModel(name)
		opts := core.DefaultOptions()
		opts.SkipLemmas = true
		withoutTC, err := core.Train(withoutModel, train, opts)
		if err != nil {
			return nil, "", err
		}
		withoutRes, err := withoutTC.Evaluate(test)
		if err != nil {
			return nil, "", err
		}

		rows = append(rows, LemmaAblationRow{
			Model:        name,
			F1With:       withRes.WeightedF1,
			F1Without:    withoutRes.WeightedF1,
			VocabWith:    withTC.Vectorizer.Dims(),
			VocabWithout: withoutTC.Vectorizer.Dims(),
		})
	}

	var b strings.Builder
	b.WriteString("Lemmatization ablation (§4.3.2)\n")
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %12s\n", "Classifier",
		"F1 lemmas", "F1 raw", "vocab lemmas", "vocab raw")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-24s %12.6f %12.6f %12d %12d\n",
			row.Model, row.F1With, row.F1Without, row.VocabWith, row.VocabWithout)
	}
	return rows, b.String(), nil
}
