package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"hetsyslog/internal/store"
)

// NodeClient speaks the store's HTTP API to one cluster node. All calls
// honor the passed context on top of the client's own timeout; a non-2xx
// status or transport failure returns an error carrying the node URL so
// breaker trips and failovers are attributable in logs. Response bodies
// are always read to EOF — with or without a decode target — so the
// keep-alive connection returns to the transport's idle pool instead of
// being torn down after every call.
type NodeClient struct {
	// BaseURL is the node's HTTP root, e.g. "http://10.0.0.1:9200".
	BaseURL string
	// HTTP is the underlying client. Routers and coordinators share one
	// tuned client (see newHTTPClient) across all their NodeClients so the
	// keep-alive pool spans the whole fan-out.
	HTTP *http.Client
	// jsonOnly latches true when the node rejects the binary doc codec
	// (HTTP 400 from an older build's JSON decoder, 415 from a different
	// codec version): all later IndexBatchPayload calls renegotiate down
	// to JSON without retrying binary.
	jsonOnly atomic.Bool
}

// NewNodeClient returns a client for the node at baseURL with its own
// default-transport HTTP client. Cluster routers/coordinators prefer
// newNodeClientShared so every node shares one tuned transport.
func NewNodeClient(baseURL string, timeout time.Duration) *NodeClient {
	return &NodeClient{BaseURL: baseURL, HTTP: &http.Client{Timeout: timeout}}
}

// newNodeClientShared returns a client for baseURL on a shared HTTP
// client (one tuned transport for the whole cluster fan-out).
func newNodeClientShared(baseURL string, httpc *http.Client) *NodeClient {
	return &NodeClient{BaseURL: baseURL, HTTP: httpc}
}

// newHTTPClient builds the shared tuned client for a router or
// coordinator: keep-alives sized for concurrent per-node fan-out, so
// steady-state batches ride pooled connections instead of re-dialing.
func newHTTPClient(timeout time.Duration, maxIdlePerHost int) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = maxIdlePerHost
	if tr.MaxIdleConns < maxIdlePerHost*4 {
		tr.MaxIdleConns = maxIdlePerHost * 4
	}
	return &http.Client{Transport: tr, Timeout: timeout}
}

// statusError is a non-2xx response, preserving the code so callers can
// distinguish codec rejection (400/415) from node failure.
type statusError struct {
	url, path string
	status    int
	msg       string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: node %s: %s: HTTP %d: %s", e.url, e.path, e.status, e.msg)
}

// do issues one request and decodes the JSON response into out (out ==
// nil: the body is drained and discarded). payload may be nil for GETs.
func (c *NodeClient) do(ctx context.Context, method, path, contentType string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("cluster: node %s: %w", c.BaseURL, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: node %s: %s: %w", c.BaseURL, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		drain(resp.Body)
		return &statusError{url: c.BaseURL, path: path, status: resp.StatusCode,
			msg: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		drain(resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: node %s: decode %s: %w", c.BaseURL, path, err)
	}
	// The decoder stops at the end of the first JSON value; whatever
	// trails it (the encoder's newline) must still be consumed or the
	// transport abandons the connection instead of pooling it.
	drain(resp.Body)
	return nil
}

// drain consumes the remainder of a response body (bounded: a well-formed
// store response never approaches the cap) so the connection is reusable.
func drain(r io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(r, 1<<22))
}

// post sends body as JSON to path and decodes the JSON response into out
// (skipped, but drained, when out is nil).
func (c *NodeClient) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: node %s: encode %s: %w", c.BaseURL, path, err)
	}
	return c.do(ctx, http.MethodPost, path, "application/json", payload, out)
}

// get fetches path and decodes the JSON response into out.
func (c *NodeClient) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, "", nil, out)
}

// IndexBatch bulk-indexes docs on the node via POST /index/batch in the
// JSON wire form — the compatibility path and the codec's oracle.
func (c *NodeClient) IndexBatch(ctx context.Context, docs []store.Doc) error {
	return c.post(ctx, "/index/batch", struct {
		Docs []store.Doc `json:"docs"`
	}{docs}, nil)
}

// IndexBatchPayload bulk-indexes a batch already encoded in the binary
// doc codec. When the node rejects the codec (old build or foreign
// version), the client latches JSON-only for this node and re-sends via
// docs() — the caller provides the fallback lazily so the common path
// never materializes a per-node doc slice.
func (c *NodeClient) IndexBatchPayload(ctx context.Context, payload []byte, docs func() []store.Doc) error {
	if !c.jsonOnly.Load() {
		err := c.do(ctx, http.MethodPost, "/index/batch", store.DocsContentType, payload, nil)
		if err == nil {
			return nil
		}
		var se *statusError
		if !errors.As(err, &se) || (se.status != http.StatusBadRequest && se.status != http.StatusUnsupportedMediaType) {
			return err
		}
		c.jsonOnly.Store(true)
	}
	return c.IndexBatch(ctx, docs())
}

// Search runs a query on the node. size < 0 means unlimited — the form
// the coordinator uses so truncation happens exactly once, after merge.
func (c *NodeClient) Search(ctx context.Context, q json.RawMessage, size int, sortAsc bool) ([]store.Hit, error) {
	var out struct {
		Hits []store.Hit `json:"hits"`
	}
	err := c.post(ctx, "/search", struct {
		Query   json.RawMessage `json:"query"`
		Size    int             `json:"size"`
		SortAsc bool            `json:"sort_asc"`
	}{q, size, sortAsc}, &out)
	return out.Hits, err
}

// Count returns the node's matching-document count.
func (c *NodeClient) Count(ctx context.Context, q json.RawMessage) (int, error) {
	var out struct {
		Count int `json:"count"`
	}
	err := c.post(ctx, "/count", struct {
		Query json.RawMessage `json:"query"`
	}{q}, &out)
	return out.Count, err
}

// DateHistogramSparse returns the node's non-empty histogram buckets —
// the merge-friendly form (summed by Start and gap-filled coordinator-
// side, under the same MaxHistogramBuckets clamp as a single store).
func (c *NodeClient) DateHistogramSparse(ctx context.Context, q json.RawMessage, interval time.Duration) ([]store.HistogramBucket, error) {
	var out []store.HistogramBucket
	err := c.post(ctx, "/agg/datehist", struct {
		Query    json.RawMessage `json:"query"`
		Interval string          `json:"interval"`
		Sparse   bool            `json:"sparse"`
	}{q, interval.String(), true}, &out)
	return out, err
}

// Terms returns the node's full terms aggregation (size 0 = unlimited,
// so the coordinator's merged top-k is exact, not an approximation from
// per-node truncations).
func (c *NodeClient) Terms(ctx context.Context, q json.RawMessage, field string, size int) ([]store.TermBucket, error) {
	var out []store.TermBucket
	err := c.post(ctx, "/agg/terms", struct {
		Query json.RawMessage `json:"query"`
		Field string          `json:"field"`
		Size  int             `json:"size"`
	}{q, field, size}, &out)
	return out, err
}

// Stats returns the node's store stats via GET /stats.
func (c *NodeClient) Stats(ctx context.Context) (store.Stats, error) {
	var out store.Stats
	err := c.get(ctx, "/stats", &out)
	return out, err
}
