package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"hetsyslog/internal/store"
)

// NodeClient speaks the store's HTTP API to one cluster node. All calls
// honor the passed context on top of the client's own timeout; a non-2xx
// status or transport failure returns an error carrying the node URL so
// breaker trips and failovers are attributable in logs.
type NodeClient struct {
	// BaseURL is the node's HTTP root, e.g. "http://10.0.0.1:9200".
	BaseURL string
	// HTTP is the underlying client (NewNodeClient sets the timeout).
	HTTP *http.Client
}

// NewNodeClient returns a client for the node at baseURL.
func NewNodeClient(baseURL string, timeout time.Duration) *NodeClient {
	return &NodeClient{BaseURL: baseURL, HTTP: &http.Client{Timeout: timeout}}
}

// post sends body as JSON to path and decodes the JSON response into out
// (skipped when out is nil).
func (c *NodeClient) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: node %s: encode %s: %w", c.BaseURL, path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("cluster: node %s: %w", c.BaseURL, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: node %s: %s: %w", c.BaseURL, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: node %s: %s: HTTP %d: %s",
			c.BaseURL, path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: node %s: decode %s: %w", c.BaseURL, path, err)
	}
	return nil
}

// IndexBatch bulk-indexes docs on the node via POST /index/batch.
func (c *NodeClient) IndexBatch(ctx context.Context, docs []store.Doc) error {
	return c.post(ctx, "/index/batch", struct {
		Docs []store.Doc `json:"docs"`
	}{docs}, nil)
}

// Search runs a query on the node. size < 0 means unlimited — the form
// the coordinator uses so truncation happens exactly once, after merge.
func (c *NodeClient) Search(ctx context.Context, q json.RawMessage, size int, sortAsc bool) ([]store.Hit, error) {
	var out struct {
		Hits []store.Hit `json:"hits"`
	}
	err := c.post(ctx, "/search", struct {
		Query   json.RawMessage `json:"query"`
		Size    int             `json:"size"`
		SortAsc bool            `json:"sort_asc"`
	}{q, size, sortAsc}, &out)
	return out.Hits, err
}

// Count returns the node's matching-document count.
func (c *NodeClient) Count(ctx context.Context, q json.RawMessage) (int, error) {
	var out struct {
		Count int `json:"count"`
	}
	err := c.post(ctx, "/count", struct {
		Query json.RawMessage `json:"query"`
	}{q}, &out)
	return out.Count, err
}

// DateHistogramSparse returns the node's non-empty histogram buckets —
// the merge-friendly form (summed by Start and gap-filled coordinator-
// side, under the same MaxHistogramBuckets clamp as a single store).
func (c *NodeClient) DateHistogramSparse(ctx context.Context, q json.RawMessage, interval time.Duration) ([]store.HistogramBucket, error) {
	var out []store.HistogramBucket
	err := c.post(ctx, "/agg/datehist", struct {
		Query    json.RawMessage `json:"query"`
		Interval string          `json:"interval"`
		Sparse   bool            `json:"sparse"`
	}{q, interval.String(), true}, &out)
	return out, err
}

// Terms returns the node's full terms aggregation (size 0 = unlimited,
// so the coordinator's merged top-k is exact, not an approximation from
// per-node truncations).
func (c *NodeClient) Terms(ctx context.Context, q json.RawMessage, field string, size int) ([]store.TermBucket, error) {
	var out []store.TermBucket
	err := c.post(ctx, "/agg/terms", struct {
		Query json.RawMessage `json:"query"`
		Field string          `json:"field"`
		Size  int             `json:"size"`
	}{q, field, size}, &out)
	return out, err
}

// Stats returns the node's store stats via GET /stats.
func (c *NodeClient) Stats(ctx context.Context) (store.Stats, error) {
	var out store.Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/stats", nil)
	if err != nil {
		return out, fmt.Errorf("cluster: node %s: %w", c.BaseURL, err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return out, fmt.Errorf("cluster: node %s: /stats: %w", c.BaseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return out, fmt.Errorf("cluster: node %s: /stats: HTTP %d", c.BaseURL, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("cluster: node %s: decode /stats: %w", c.BaseURL, err)
	}
	return out, nil
}
