package cluster

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"hetsyslog/internal/obs"
)

// Generation is a monotonically increasing ingest counter shared by the
// router and coordinator of one cluster front. The router bumps it every
// time documents actually reach a store node (live delivery or spool
// replay — a spooled-but-undelivered batch changes no query result), and
// the coordinator folds the current generation into every query cache
// key. Invalidation therefore costs nothing: ingest does not sweep the
// cache, it just makes every stale key unreachable, and the LRU bound
// retires the dead entries.
//
// The scheme assumes the front owning this Generation is the only ingest
// path into its nodes — true for both cmd/tivan and cmd/collector cluster
// modes, where one process runs the router and the coordinator. A
// deployment with several fronts writing to shared nodes must disable the
// cache (QueryCacheSize < 0 or a nil Gen) on fronts that query.
type Generation struct {
	n atomic.Int64
}

// NewGeneration returns a fresh shared ingest counter.
func NewGeneration() *Generation { return &Generation{} }

// Bump records that node-visible data changed. Safe on a nil receiver
// (routers without a configured Generation skip invalidation).
func (g *Generation) Bump() {
	if g != nil {
		g.n.Add(1)
	}
}

// Load returns the current generation (0 on a nil receiver).
func (g *Generation) Load() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// queryCache memoizes merged coordinator results (Count, DateHistogram,
// Terms — not Search, whose hit payloads are unbounded) keyed on
// (operation, canonical query JSON, parameters, store generation).
// Concurrent callers asking for the same key collapse onto one scatter,
// singleflight style: the first caller fans out, the rest wait for its
// merge. Errors are never cached, and a leader that fails lets the next
// caller retry. Entries are LRU-bounded; generation churn retires old
// keys through the same bound.
type queryCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	flight  map[string]*flightCall

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	collapsed *obs.Counter
}

type cacheEntry struct {
	key string
	val any
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// newQueryCache registers the cache's metrics in reg (nil = standalone)
// and returns a cache bounded to max entries.
func newQueryCache(max int, reg *obs.Registry) *queryCache {
	qc := &queryCache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flight:  make(map[string]*flightCall),
		hits: reg.Counter("cluster_query_cache_hits_total",
			"coordinator queries answered from the merged-result cache"),
		misses: reg.Counter("cluster_query_cache_misses_total",
			"coordinator queries that had to scatter"),
		evictions: reg.Counter("cluster_query_cache_evictions_total",
			"cached results retired by the LRU bound (stale generations age out here)"),
		collapsed: reg.Counter("cluster_query_cache_collapsed_total",
			"concurrent identical queries that waited on another caller's scatter"),
	}
	reg.GaugeFunc("cluster_query_cache_entries",
		"merged results currently cached", func() int64 {
			qc.mu.Lock()
			defer qc.mu.Unlock()
			return int64(len(qc.entries))
		})
	return qc
}

// do returns the cached value for key or computes it via fill, collapsing
// concurrent identical keys onto a single fill call. ctx bounds only the
// wait of a collapsed caller; the leader's fill runs under the leader's
// own context (a canceled leader surfaces its error to every waiter, who
// simply retry on their next call — errors are not cached).
func (qc *queryCache) do(ctx context.Context, key string, fill func() (any, error)) (any, error) {
	qc.mu.Lock()
	if el, ok := qc.entries[key]; ok {
		qc.lru.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		qc.mu.Unlock()
		qc.hits.Inc()
		return val, nil
	}
	if fc, ok := qc.flight[key]; ok {
		qc.mu.Unlock()
		qc.collapsed.Inc()
		select {
		case <-fc.done:
			return fc.val, fc.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fc := &flightCall{done: make(chan struct{})}
	qc.flight[key] = fc
	qc.mu.Unlock()
	qc.misses.Inc()

	fc.val, fc.err = fill()

	qc.mu.Lock()
	delete(qc.flight, key)
	if fc.err == nil {
		qc.entries[key] = qc.lru.PushFront(&cacheEntry{key: key, val: fc.val})
		for len(qc.entries) > qc.max {
			tail := qc.lru.Back()
			qc.lru.Remove(tail)
			delete(qc.entries, tail.Value.(*cacheEntry).key)
			qc.evictions.Inc()
		}
	}
	qc.mu.Unlock()
	close(fc.done)
	return fc.val, fc.err
}

// len reports the live entry count (tests).
func (qc *queryCache) len() int {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return len(qc.entries)
}
