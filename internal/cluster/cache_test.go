package cluster

// Query-cache suite. Names carry the Cluster prefix so CI's focused gate
// (`go test -run 'Cluster|ScatterGather' ./internal/...`) includes them.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetsyslog/internal/store"
)

// TestClusterQueryCacheLRU exercises hit/miss accounting and the LRU
// entry bound, including recency promotion on hit.
func TestClusterQueryCacheLRU(t *testing.T) {
	qc := newQueryCache(2, nil)
	ctx := context.Background()
	fills := 0
	fill := func(v string) func() (any, error) {
		return func() (any, error) { fills++; return v, nil }
	}

	if v, err := qc.do(ctx, "a", fill("A")); err != nil || v != "A" {
		t.Fatalf("first a: got %v, %v", v, err)
	}
	if v, err := qc.do(ctx, "a", fill("WRONG")); err != nil || v != "A" {
		t.Fatalf("cached a: got %v, %v (want cached A)", v, err)
	}
	if fills != 1 {
		t.Fatalf("fills after repeat = %d, want 1", fills)
	}
	if qc.hits.Value() != 1 || qc.misses.Value() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", qc.hits.Value(), qc.misses.Value())
	}

	// b fills; touching a promotes it, so adding c must evict b, not a.
	if _, err := qc.do(ctx, "b", fill("B")); err != nil {
		t.Fatal(err)
	}
	if _, err := qc.do(ctx, "a", fill("WRONG")); err != nil {
		t.Fatal(err)
	}
	if _, err := qc.do(ctx, "c", fill("C")); err != nil {
		t.Fatal(err)
	}
	if qc.len() != 2 {
		t.Fatalf("entries = %d, want LRU bound 2", qc.len())
	}
	if qc.evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", qc.evictions.Value())
	}
	fills = 0
	if v, err := qc.do(ctx, "a", fill("A2")); err != nil || v != "A" || fills != 0 {
		t.Fatalf("a should have survived eviction: got %v, %v, fills=%d", v, err, fills)
	}
	if _, err := qc.do(ctx, "b", fill("B2")); err != nil || fills != 1 {
		t.Fatalf("b should have been evicted: fills=%d, err=%v", fills, err)
	}
}

// TestClusterQueryCacheSingleflight checks that concurrent identical keys
// collapse onto one fill, and that errors are never cached.
func TestClusterQueryCacheSingleflight(t *testing.T) {
	qc := newQueryCache(8, nil)
	ctx := context.Background()

	var fillCalls atomic.Int64
	release := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := qc.do(ctx, "k", func() (any, error) {
				fillCalls.Add(1)
				<-release // hold the flight open until all callers queue up
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Wait until every non-leader caller is either parked on the flight or
	// yet to arrive, then release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for qc.collapsed.Value()+qc.misses.Value() < callers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := fillCalls.Load(); got != 1 {
		t.Fatalf("fill ran %d times for %d concurrent callers, want 1", got, callers)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %v, want 42", i, v)
		}
	}
	if qc.collapsed.Value() != callers-1 {
		t.Fatalf("collapsed = %d, want %d", qc.collapsed.Value(), callers-1)
	}

	// Errors must not be cached: the next caller refills.
	boom := errors.New("scatter failed")
	if _, err := qc.do(ctx, "err", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err fill: got %v", err)
	}
	refilled := false
	if v, err := qc.do(ctx, "err", func() (any, error) { refilled = true; return "ok", nil }); err != nil || v != "ok" || !refilled {
		t.Fatalf("error was cached: v=%v err=%v refilled=%v", v, err, refilled)
	}
}

// TestClusterQueryCacheGenerationInvalidation is the coordinator-level
// staleness contract: a cached aggregate may go stale only while no
// ingest reaches the nodes. Data slipped in behind the router's back is
// invisible until the generation advances; ingest through the router
// invalidates immediately.
func TestClusterQueryCacheGenerationInvalidation(t *testing.T) {
	nodes, urls := newTestNodes(t, 3)
	cfg := fastClusterCfg(urls, "")
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	co, err := NewCoordinator(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if co.cache == nil {
		t.Fatal("cache should be enabled: Gen wired and QueryCacheSize defaulted")
	}

	ctx := context.Background()
	const total = 120
	var batch []store.Doc
	for i := 0; i < total; i++ {
		batch = append(batch, store.Doc{
			Time: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
			Body: fmt.Sprintf("event %d", i),
			Fields: store.F("hostname", fmt.Sprintf("gh%02d", i%10),
				"app", "kernel"),
		})
	}
	if err := rt.IndexBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}

	n, err := co.Count(ctx, nil)
	if err != nil || n != total {
		t.Fatalf("count = %d, %v; want %d", n, err, total)
	}
	// Same query again: served from cache.
	if n, err = co.Count(ctx, nil); err != nil || n != total {
		t.Fatalf("cached count = %d, %v; want %d", n, err, total)
	}
	if co.cache.hits.Value() != 1 {
		t.Fatalf("cache hits = %d, want 1", co.cache.hits.Value())
	}

	// Mutate every node's store behind the router's back: one extra doc,
	// stamped into partition 0 so exactly one live owner reports it.
	for _, nd := range nodes {
		nd.store.IndexBatch([]store.Doc{{
			Time:   time.Date(2023, 7, 1, 1, 0, 0, 0, time.UTC),
			Body:   "smuggled",
			Fields: store.F(PartitionField, "0"),
		}})
	}
	// No generation bump: the cache keeps answering with the stale total.
	if n, _ = co.Count(ctx, nil); n != total {
		t.Fatalf("count after silent mutation = %d, want stale cached %d", n, total)
	}
	// Advancing the generation retires the key; the next count re-scatters.
	cfg.Gen.Bump()
	if n, err = co.Count(ctx, nil); err != nil || n != total+1 {
		t.Fatalf("count after bump = %d, %v; want %d", n, err, total+1)
	}

	// Ingest through the router invalidates without manual bumps.
	if err := rt.IndexBatch(ctx, []store.Doc{{
		Time:   time.Date(2023, 7, 1, 2, 0, 0, 0, time.UTC),
		Body:   "routed",
		Fields: store.F("hostname", "gh00", "app", "kernel"),
	}}); err != nil {
		t.Fatal(err)
	}
	if n, err = co.Count(ctx, nil); err != nil || n != total+2 {
		t.Fatalf("count after routed ingest = %d, %v; want %d", n, err, total+2)
	}
}

// TestClusterQueryCacheDisabled pins the opt-outs: a negative
// QueryCacheSize or an absent Generation must leave the coordinator
// uncached (every call re-scatters).
func TestClusterQueryCacheDisabled(t *testing.T) {
	_, urls := newTestNodes(t, 2)
	for name, mutate := range map[string]func(*Config){
		"negative_size": func(c *Config) { c.QueryCacheSize = -1 },
		"nil_gen":       func(c *Config) { c.Gen = nil },
	} {
		cfg := fastClusterCfg(urls, "")
		mutate(&cfg)
		co, err := NewCoordinator(cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if co.cache != nil {
			t.Fatalf("%s: cache should be disabled", name)
		}
	}
}
