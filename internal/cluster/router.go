package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/obs"
	"hetsyslog/internal/resilience"
	"hetsyslog/internal/store"
)

// Router is the cluster ingest sink: it partitions documents by
// (hostname, time slice), stamps the partition id into PartitionField,
// and delivers each document to its partition's Replication owner nodes
// over the store's bulk HTTP endpoint. Each node sits behind its own
// circuit breaker and (optionally) disk spool, so one dead node degrades
// to spool-and-replay for its share while the other replicas keep
// accepting — acknowledged records are never lost at Replication >= 2.
//
// Router implements collector.Sink (raw pipeline records, as in
// cmd/tivan) and core.DocIndexer (classified documents, as in
// cmd/collector). Write/IndexBatch return nil when every record reached
// at least one durable place (a node or a spool); they error only when
// some record achieved no durable placement at all, handing the batch
// back to the pipeline's own retry/spool machinery (redelivery may then
// duplicate records on nodes that had accepted — duplicates are
// preferred to loss, matching the pipeline's contract).
type Router struct {
	cfg   Config
	ring  *ring
	nodes []*routerNode
	// gen is the shared ingest generation (nil-safe): bumped whenever
	// documents actually reach a node, so a coordinator's query cache on
	// the same front invalidates exactly when results can change.
	gen *Generation

	replayCancel context.CancelFunc
	replayWG     sync.WaitGroup
	startOnce    sync.Once
	closeOnce    sync.Once

	writeLat     *obs.Histogram
	payloadBytes *obs.Histogram
	binBatches   *obs.Counter
	jsonBatches  *obs.Counter
}

// routerNode is one store node's delivery state.
type routerNode struct {
	url     string
	client  *NodeClient
	breaker *resilience.Breaker
	spool   *resilience.Spool

	delivered *obs.Counter
	spooled   *obs.Counter
	replayed  *obs.Counter
	evicted   *obs.Counter
	lost      *obs.Counter
}

// NewRouter validates cfg, opens the per-node spools, and registers the
// router's metrics (per-node breaker state and delivery counters, route
// write latency) into reg (nil = standalone metrics, still counted).
// Call Start to launch the spool replayers and Close to drain and stop.
func NewRouter(cfg Config, reg *obs.Registry) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rt := &Router{cfg: cfg, ring: newRing(cfg), gen: cfg.Gen}
	rt.writeLat = reg.Histogram("cluster_route_write_seconds",
		"router batch fan-out latency per sink write", obs.LatencyBuckets)
	rt.payloadBytes = reg.Histogram("cluster_codec_payload_bytes",
		"per-node /index/batch payload size", obs.ByteBuckets)
	rt.binBatches = reg.Counter(`cluster_codec_batches_total{codec="binary"}`,
		"per-node index batches sent, by wire codec")
	rt.jsonBatches = reg.Counter(`cluster_codec_batches_total{codec="json"}`,
		"per-node index batches sent, by wire codec")
	// One tuned transport spans every node so concurrent fan-out reuses
	// keep-alive connections instead of re-dialing per batch.
	httpc := newHTTPClient(cfg.HTTPTimeout, cfg.MaxIdleConnsPerHost)
	for i, url := range cfg.Nodes {
		nd := &routerNode{
			url:    url,
			client: newNodeClientShared(url, httpc),
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				FailureThreshold: cfg.BreakerThreshold,
				InitialBackoff:   cfg.RetryBackoff,
				MaxBackoff:       cfg.MaxRetryBackoff,
				Jitter:           cfg.RetryJitter,
				Seed:             cfg.Seed + int64(i),
			}),
			delivered: reg.Counter(nodeMetric("cluster_node_delivered_total", i),
				"records delivered to each node (live writes)"),
			spooled: reg.Counter(nodeMetric("cluster_node_spooled_total", i),
				"records diverted to each node's disk spool"),
			replayed: reg.Counter(nodeMetric("cluster_node_replayed_total", i),
				"records replayed from each node's spool after recovery"),
			evicted: reg.Counter(nodeMetric("cluster_node_evicted_total", i),
				"spooled records evicted under each node's spool byte bound"),
			lost: reg.Counter(nodeMetric("cluster_node_lost_total", i),
				"records with no durable placement on this node (write failed, no spool)"),
		}
		if cfg.SpoolDir != "" {
			spool, err := resilience.OpenSpool(resilience.SpoolConfig{
				Dir:      filepath.Join(cfg.SpoolDir, fmt.Sprintf("node-%d", i)),
				MaxBytes: cfg.SpoolMaxBytes,
			})
			if err != nil {
				return nil, err
			}
			nd.spool = spool
		}
		reg.GaugeFunc(nodeMetric("cluster_node_breaker_state", i),
			"per-node circuit breaker state (0 closed, 1 half-open, 2 open)",
			func() int64 { return int64(nd.breaker.State()) })
		if nd.spool != nil {
			reg.GaugeFunc(nodeMetric("cluster_node_spool_records", i),
				"records waiting in each node's spool",
				func() int64 { return nd.spool.Records() })
		}
		rt.nodes = append(rt.nodes, nd)
	}
	return rt, nil
}

// nodeMetric renders a per-node metric name with the node index label.
func nodeMetric(name string, node int) string {
	return fmt.Sprintf(`%s{node="%d"}`, name, node)
}

// Start launches the per-node spool replayers. It is a no-op without
// spools and safe to call once; ctx only scopes the background replay
// loops (Close performs a final drain regardless).
func (rt *Router) Start(ctx context.Context) {
	rt.startOnce.Do(func() {
		rctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		rt.replayCancel = cancel
		for i := range rt.nodes {
			if rt.nodes[i].spool == nil {
				continue
			}
			rt.replayWG.Add(1)
			go func(n int) {
				defer rt.replayWG.Done()
				rt.replayLoop(rctx, n)
			}(i)
		}
	})
}

// Close stops the replayers, attempts one final drain of every spool
// into whichever nodes will still take writes, and closes the spools.
// Whatever could not drain stays on disk for the next process.
func (rt *Router) Close() error {
	var err error
	rt.closeOnce.Do(func() {
		if rt.replayCancel != nil {
			rt.replayCancel()
		}
		rt.replayWG.Wait()
		for i, nd := range rt.nodes {
			if nd.spool == nil {
				continue
			}
			rt.replayDrain(context.Background(), i)
			if cerr := nd.spool.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// Write implements collector.Sink: pipeline records are converted to
// store documents and routed. The batch slice itself is not retained.
func (rt *Router) Write(ctx context.Context, batch []collector.Record) error {
	docs := make([]store.Doc, 0, len(batch))
	for _, r := range batch {
		docs = append(docs, collector.RecordToDoc(r))
	}
	return rt.IndexBatch(ctx, docs)
}

// encodedBatch is one batch's shared binary encoding: every doc encoded
// exactly once into buf, with off[i]:off[i+1] spanning doc i. Per-node
// payloads are assembled by copying the relevant spans after a header —
// a memcpy per replica instead of a re-marshal per replica.
type encodedBatch struct {
	buf []byte
	off []int
}

// encPool recycles encodedBatch values (and their buffers) across
// IndexBatch calls; payloadPool recycles the per-node wire buffers.
var (
	encPool     = sync.Pool{New: func() any { return new(encodedBatch) }}
	payloadPool = sync.Pool{New: func() any { return new([]byte) }}
)

// encodeBatch encodes every doc once into a pooled buffer.
func encodeBatch(docs []store.Doc) *encodedBatch {
	enc := encPool.Get().(*encodedBatch)
	enc.buf = enc.buf[:0]
	enc.off = append(enc.off[:0], 0)
	for i := range docs {
		enc.buf = store.AppendDoc(enc.buf, &docs[i])
		enc.off = append(enc.off, len(enc.buf))
	}
	return enc
}

// payload assembles the binary wire payload for one node's doc subset.
func (enc *encodedBatch) payload(dst []byte, idxs []int) []byte {
	dst = store.AppendDocsHeader(dst[:0], len(idxs))
	for _, i := range idxs {
		dst = append(dst, enc.buf[enc.off[i]:enc.off[i+1]]...)
	}
	return dst
}

func (enc *encodedBatch) release() { encPool.Put(enc) }

// IndexBatch implements core.DocIndexer: it stamps each document's
// partition into PartitionField (mutating docs[i].Fields), encodes the
// batch once, and fans per-node payloads out concurrently — one goroutine
// per replica node, assembled from the shared doc spans — spooling each
// dead node's share.
func (rt *Router) IndexBatch(ctx context.Context, docs []store.Doc) error {
	if len(docs) == 0 {
		return nil
	}
	start := time.Now()
	perNode := make([][]int, len(rt.nodes))
	for i := range docs {
		host, _ := docs[i].Fields.Get("hostname")
		p := rt.ring.partition(host, docs[i].Time)
		docs[i].Fields = docs[i].Fields.Set(PartitionField, strconv.Itoa(p))
		for _, n := range rt.ring.replicas(p, rt.cfg.Replication) {
			perNode[n] = append(perNode[n], i)
		}
	}
	var enc *encodedBatch
	if rt.cfg.Codec != CodecJSON {
		enc = encodeBatch(docs)
	}
	// Concurrent fan-out: each replica node's delivery (HTTP round-trip
	// or spool append) proceeds independently, so the batch costs one
	// slowest-node RTT instead of the sum over replicas.
	ok := make([]bool, len(rt.nodes))
	var wg sync.WaitGroup
	for n, idxs := range perNode {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int, idxs []int) {
			defer wg.Done()
			ok[n] = rt.deliverOrSpool(ctx, n, docs, idxs, enc)
		}(n, idxs)
	}
	wg.Wait()
	if enc != nil {
		enc.release()
	}
	delivered := false
	placed := make([]bool, len(docs))
	for n, idxs := range perNode {
		if !ok[n] {
			continue
		}
		delivered = true
		for _, i := range idxs {
			placed[i] = true
		}
	}
	if delivered {
		// Node-visible data may have changed: retire cached query results.
		rt.gen.Bump()
	}
	rt.writeLat.ObserveDuration(time.Since(start))
	unplaced := 0
	for _, p := range placed {
		if !p {
			unplaced++
		}
	}
	if unplaced > 0 {
		return fmt.Errorf("cluster: %d of %d records achieved no durable placement (all replicas down, no spool)",
			unplaced, len(docs))
	}
	return nil
}

// deliverOrSpool tries a live write of the docs at idxs to node n behind
// its breaker and falls back to the node's spool. enc carries the batch's
// shared binary encoding (nil forces the JSON wire form). It reports
// whether the docs reached a durable place.
func (rt *Router) deliverOrSpool(ctx context.Context, n int, docs []store.Doc, idxs []int, enc *encodedBatch) bool {
	nd := rt.nodes[n]
	// The JSON fallback and the spool path both need the node's doc
	// subset; materialize it lazily and at most once.
	var nodeDocs []store.Doc
	subset := func() []store.Doc {
		if nodeDocs == nil {
			nodeDocs = make([]store.Doc, len(idxs))
			for j, i := range idxs {
				nodeDocs[j] = docs[i]
			}
		}
		return nodeDocs
	}
	if nd.breaker.Allow() {
		var err error
		if enc != nil && !nd.client.jsonOnly.Load() {
			buf := payloadPool.Get().(*[]byte)
			*buf = enc.payload(*buf, idxs)
			rt.payloadBytes.Observe(float64(len(*buf)))
			rt.binBatches.Inc()
			err = nd.client.IndexBatchPayload(ctx, *buf, subset)
			payloadPool.Put(buf)
		} else {
			rt.jsonBatches.Inc()
			err = nd.client.IndexBatch(ctx, subset())
		}
		if err == nil {
			nd.breaker.Success()
			nd.delivered.Add(int64(len(idxs)))
			return true
		}
		nd.breaker.Failure()
	}
	if nd.spool != nil {
		if payload, err := encodeDocs(subset()); err == nil {
			evicted, err2 := nd.spool.Append(payload, len(idxs))
			if evicted > 0 {
				nd.evicted.Add(evicted)
			}
			if err2 == nil {
				nd.spooled.Add(int64(len(idxs)))
				return true
			}
		}
	}
	nd.lost.Add(int64(len(idxs)))
	return false
}

// replayLoop polls node n's spool, draining it whenever the node's
// breaker admits writes again.
func (rt *Router) replayLoop(ctx context.Context, n int) {
	tick := time.NewTicker(rt.cfg.ReplayInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			rt.replayDrain(ctx, n)
		}
	}
}

// replayDrain replays node n's spooled frames oldest-first while the
// breaker admits writes and they succeed. An undecodable frame (version
// skew) is dropped and counted lost rather than poisoning replay.
func (rt *Router) replayDrain(ctx context.Context, n int) {
	nd := rt.nodes[n]
	for ctx.Err() == nil {
		payload, cnt, tok, ok, err := nd.spool.Peek()
		if err != nil || !ok {
			return
		}
		docs, derr := decodeDocs(payload)
		if derr != nil {
			if nd.spool.Pop(tok) {
				nd.lost.Add(int64(cnt))
			}
			continue
		}
		if !nd.breaker.Allow() {
			return
		}
		if err := nd.client.IndexBatch(ctx, docs); err != nil {
			nd.breaker.Failure()
			return
		}
		nd.breaker.Success()
		// Replayed docs just became queryable on the node: invalidate
		// cached query results, same as a live delivery.
		rt.gen.Bump()
		// A refused Pop means the frame was concurrently evicted (and
		// counted evicted) while the write was in flight; it was in fact
		// delivered, so replayed is counted either way.
		nd.spool.Pop(tok)
		nd.replayed.Add(int64(cnt))
	}
}

// NodeStats is one node's delivery counters.
type NodeStats struct {
	URL          string `json:"url"`
	Breaker      string `json:"breaker"`
	Delivered    int64  `json:"delivered"`
	Spooled      int64  `json:"spooled"`
	Replayed     int64  `json:"replayed"`
	Evicted      int64  `json:"evicted"`
	Lost         int64  `json:"lost"`
	SpoolRecords int64  `json:"spool_records"`
}

// Stats snapshots every node's delivery counters.
func (rt *Router) Stats() []NodeStats {
	out := make([]NodeStats, len(rt.nodes))
	for i, nd := range rt.nodes {
		out[i] = NodeStats{
			URL:       nd.url,
			Breaker:   nd.breaker.State().String(),
			Delivered: nd.delivered.Value(),
			Spooled:   nd.spooled.Value(),
			Replayed:  nd.replayed.Value(),
			Evicted:   nd.evicted.Value(),
			Lost:      nd.lost.Value(),
		}
		if nd.spool != nil {
			out[i].SpoolRecords = nd.spool.Records()
		}
	}
	return out
}

// encodeDocs serializes a node's doc batch into one spool frame payload;
// gob is self-describing, so frames survive field additions across
// builds the same way the collector's record spool frames do.
func encodeDocs(docs []store.Doc) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(docs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeDocs reverses encodeDocs.
func decodeDocs(payload []byte) ([]store.Doc, error) {
	var docs []store.Doc
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&docs); err != nil {
		return nil, err
	}
	return docs, nil
}
