package cluster

import (
	"sort"
	"time"
)

// ring is the placement function: partition ids for documents (time+hash)
// and rendezvous-ranked owner nodes per partition, precomputed once since
// membership is fixed for the life of a router/coordinator.
type ring struct {
	partitions int
	timeSlice  time.Duration
	// owners[p] ranks every node for partition p, best first. The first
	// replication entries are the partition's owners; the ranking beyond
	// them is unused for placement but kept so failover code can reason
	// about "next choice" uniformly.
	owners [][]int
}

func newRing(cfg Config) *ring {
	r := &ring{
		partitions: cfg.Partitions,
		timeSlice:  cfg.TimeSlice,
		owners:     make([][]int, cfg.Partitions),
	}
	type scored struct {
		node  int
		score uint64
	}
	for p := 0; p < cfg.Partitions; p++ {
		ranked := make([]scored, len(cfg.Nodes))
		for n, url := range cfg.Nodes {
			// Rendezvous (highest-random-weight) hashing: each node scores
			// the partition independently, so removing one node leaves every
			// other partition→node ranking untouched.
			ranked[n] = scored{node: n, score: mix64(hash64(url) ^ mix64(uint64(p)+0x9e3779b97f4a7c15))}
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].score != ranked[b].score {
				return ranked[a].score > ranked[b].score
			}
			return ranked[a].node < ranked[b].node
		})
		order := make([]int, len(ranked))
		for i, s := range ranked {
			order[i] = s.node
		}
		r.owners[p] = order
	}
	return r
}

// partition maps a routing key (hostname) and timestamp onto a partition.
// The time slot is floor-divided so pre-epoch timestamps stay stable, and
// mixed into the key hash so one host's traffic walks the partitions as
// time advances instead of pinning one partition forever.
func (r *ring) partition(key string, t time.Time) int {
	h := hash64(key)
	if r.timeSlice > 0 {
		slot := floorDiv(t.UnixNano(), int64(r.timeSlice))
		h = mix64(h ^ mix64(uint64(slot)))
	}
	return int(h % uint64(r.partitions))
}

// replicas returns partition p's owner nodes, best first, truncated to n.
func (r *ring) replicas(p, n int) []int {
	if n > len(r.owners[p]) {
		n = len(r.owners[p])
	}
	return r.owners[p][:n]
}

// hash64 is FNV-1a over s.
func hash64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 is the splitmix64 finalizer — cheap avalanche so xor-combined
// hashes don't correlate.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// floorDiv is integer division rounding toward negative infinity,
// mirroring the store's histogram grid so routing of pre-epoch
// timestamps is as deterministic as bucketing them.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
