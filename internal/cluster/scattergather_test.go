package cluster

// Property suite for the scatter-gather merge: a corpus split across
// 2–4 in-process nodes must answer every query shape identically to a
// single store holding the union. Test names contain ScatterGather for
// CI's focused cluster gate.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hetsyslog/internal/store"
)

var sgBase = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

// randomCorpus builds n deterministic docs from rng: small vocabularies
// for interesting selectivity, a slice of pre-epoch timestamps to
// exercise floor-division bucketing, and one zero-time doc per corpus to
// exercise the histogram bucket clamp end to end.
func randomCorpus(rng *rand.Rand, n int) []store.Doc {
	words := []string{"cpu", "temperature", "throttled", "usb", "device",
		"connection", "closed", "memory", "error", "node", "sensor", "fan"}
	hosts := []string{"cn001", "cn002", "cn003", "cn004", "login1"}
	apps := []string{"kernel", "sshd", "slurmd"}
	docs := make([]store.Doc, 0, n)
	for i := 0; i < n; i++ {
		nw := 2 + rng.Intn(5)
		body := ""
		for w := 0; w < nw; w++ {
			if w > 0 {
				body += " "
			}
			body += words[rng.Intn(len(words))]
		}
		ts := sgBase.Add(time.Duration(rng.Intn(3600)) * time.Second)
		switch {
		case i == 0:
			ts = time.Time{} // the zero-time doc: histogram clamp fodder
		case rng.Intn(10) == 0:
			ts = time.Unix(0, 0).Add(-time.Duration(rng.Intn(3600)) * time.Second)
		}
		docs = append(docs, store.Doc{
			Time: ts,
			Fields: store.F(
				"hostname", hosts[rng.Intn(len(hosts))],
				"app", apps[rng.Intn(len(apps))],
			),
			Body: body,
		})
	}
	return docs
}

func randomClusterQuery(rng *rand.Rand, depth int) store.Query {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return store.MatchAll{}
		case 1:
			return store.Term{Field: "hostname", Value: fmt.Sprintf("cn%03d", 1+rng.Intn(6))}
		case 2:
			words := []string{"cpu", "temperature", "usb", "memory", "ghost"}
			return store.Match{Text: words[rng.Intn(len(words))]}
		default:
			return store.TimeRange{
				From: sgBase.Add(time.Duration(rng.Intn(1800)) * time.Second),
				To:   sgBase.Add(time.Duration(1800+rng.Intn(1800)) * time.Second),
			}
		}
	}
	b := store.Bool{}
	for i := 0; i < 1+rng.Intn(2); i++ {
		b.Must = append(b.Must, randomClusterQuery(rng, depth-1))
	}
	if rng.Intn(2) == 0 {
		b.MustNot = append(b.MustNot, randomClusterQuery(rng, depth-1))
	}
	return b
}

// hitKey identifies a logical document independent of which node stored
// it: per-node IDs and the router's partition stamp are placement
// artifacts, not content.
func hitKey(h store.Hit) string {
	host, _ := h.Doc.Fields.Get("hostname")
	return fmt.Sprintf("%d|%s|%s", h.Doc.Time.UnixNano(), host, h.Doc.Body)
}

// TestScatterGatherMergeMatchesSingleStore is the exactness property:
// for random corpora, node counts, replication factors, and queries, the
// coordinator's Search/Count/DateHistogram/Terms over the cluster equal
// a single store holding the union corpus.
func TestScatterGatherMergeMatchesSingleStore(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		nNodes := 2 + rng.Intn(3)
		cfg := Config{
			Nodes:       make([]string, 0, nNodes),
			Replication: 1 + rng.Intn(2),
			Partitions:  8 << rng.Intn(3),
			TimeSlice:   time.Duration(1+rng.Intn(4)) * time.Hour,
			HTTPTimeout: 10 * time.Second,
		}
		if cfg.Replication > nNodes {
			cfg.Replication = nNodes
		}
		_, urls := newTestNodes(t, nNodes)
		cfg.Nodes = urls

		// Reference store and cluster receive independently built (but
		// identical) corpora: the router mutates docs to stamp partitions.
		corpusSeed := rng.Int63()
		ref := store.New(3)
		ref.IndexBatch(randomCorpus(rand.New(rand.NewSource(corpusSeed)), 400))
		rt, err := NewRouter(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.IndexBatch(ctx, randomCorpus(rand.New(rand.NewSource(corpusSeed)), 400)); err != nil {
			t.Fatal(err)
		}
		rt.Close()
		co, err := NewCoordinator(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}

		for qi := 0; qi < 8; qi++ {
			q := randomClusterQuery(rng, rng.Intn(3))
			label := fmt.Sprintf("trial %d (nodes=%d repl=%d parts=%d) query %#v",
				trial, nNodes, cfg.Replication, cfg.Partitions, q)

			// Count.
			got, err := co.Count(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if want := ref.CountQuery(q); got != want {
				t.Fatalf("%s: Count = %d, want %d", label, got, want)
			}

			// Search: same logical multiset, same size semantics.
			hits, err := co.Search(ctx, q, -1, qi%2 == 0)
			if err != nil {
				t.Fatal(err)
			}
			refHits := ref.Search(store.SearchRequest{Query: q, Size: -1, SortAsc: qi%2 == 0})
			if len(hits) != len(refHits) {
				t.Fatalf("%s: Search returned %d hits, want %d", label, len(hits), len(refHits))
			}
			gotSet, wantSet := map[string]int{}, map[string]int{}
			for i := range hits {
				gotSet[hitKey(hits[i])]++
				wantSet[hitKey(refHits[i])]++
			}
			for k, n := range wantSet {
				if gotSet[k] != n {
					t.Fatalf("%s: hit %q: cluster %d copies, single store %d", label, k, gotSet[k], n)
				}
			}

			// DateHistogram: identical bucket sequence, including the
			// clamp behavior the zero-time doc triggers on match-all.
			interval := time.Duration(1+rng.Intn(600)) * time.Second
			gh, err := co.DateHistogram(ctx, q, interval)
			if err != nil {
				t.Fatal(err)
			}
			wh := ref.DateHistogram(q, interval)
			if len(gh) != len(wh) {
				t.Fatalf("%s: histogram has %d buckets, want %d (interval %v)", label, len(gh), len(wh), interval)
			}
			for i := range gh {
				if !gh[i].Start.Equal(wh[i].Start) || gh[i].Count != wh[i].Count {
					t.Fatalf("%s: bucket %d = %+v, want %+v", label, i, gh[i], wh[i])
				}
			}

			// Terms: identical order and counts, truncated and not.
			for _, size := range []int{0, 2} {
				gt, err := co.Terms(ctx, q, "hostname", size)
				if err != nil {
					t.Fatal(err)
				}
				wt := ref.Terms(q, "hostname", size)
				if len(gt) != len(wt) {
					t.Fatalf("%s: terms(size=%d) = %d buckets, want %d", label, size, len(gt), len(wt))
				}
				for i := range gt {
					if gt[i] != wt[i] {
						t.Fatalf("%s: terms[%d] = %+v, want %+v", label, i, gt[i], wt[i])
					}
				}
			}
		}
	}
}
