package cluster

// Cluster chaos suite. Test names deliberately contain Cluster or
// ScatterGather so CI's focused gate
// (`go test -run 'Cluster|ScatterGather' ./internal/...`) runs exactly
// these, with and without -race.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
)

// testNode is one in-process store node behind a real HTTP server.
type testNode struct {
	store  *store.Store
	server *httptest.Server
}

// newTestNodes spins up n store nodes and returns them with their URLs.
func newTestNodes(t testing.TB, n int) ([]*testNode, []string) {
	t.Helper()
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		st := store.New(2)
		srv := httptest.NewServer(st.Handler())
		t.Cleanup(srv.Close)
		nodes[i] = &testNode{store: st, server: srv}
		urls[i] = srv.URL
	}
	return nodes, urls
}

// fastClusterCfg returns aggressive-timer cluster knobs so breaker trips
// and spool replay resolve in test time.
func fastClusterCfg(urls []string, spoolDir string) Config {
	return Config{
		Nodes:            urls,
		Replication:      2,
		Partitions:       16,
		TimeSlice:        time.Hour,
		SpoolDir:         spoolDir,
		BreakerThreshold: 1,
		RetryBackoff:     time.Millisecond,
		MaxRetryBackoff:  50 * time.Millisecond,
		ReplayInterval:   5 * time.Millisecond,
		HTTPTimeout:      5 * time.Second,
		// Shared ingest generation: router bumps, coordinator cache keys on
		// it — the production wiring, so the suite exercises invalidation.
		Gen: NewGeneration(),
	}
}

func clusterRecord(host, app, content string) collector.Record {
	return collector.Record{
		Tag:  "syslog",
		Time: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
		Msg: &syslog.Message{
			Facility: syslog.Daemon, Severity: syslog.Info,
			Hostname: host, AppName: app, Content: content,
			Timestamp: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
		},
	}
}

// TestClusterRingPlacement pins the placement function's contracts:
// stable partitions, distinct replicas, time slices that move a host
// across partitions, and floor-divided (pre-epoch-safe) time slots.
func TestClusterRingPlacement(t *testing.T) {
	cfg := Config{
		Nodes:       []string{"http://a:1", "http://b:1", "http://c:1"},
		Partitions:  32,
		Replication: 2,
		TimeSlice:   time.Hour,
	}.withDefaults()
	r := newRing(cfg)

	now := time.Date(2023, 7, 1, 12, 30, 0, 0, time.UTC)
	for _, host := range []string{"cn001", "cn002", "login1"} {
		p := r.partition(host, now)
		if p < 0 || p >= cfg.Partitions {
			t.Fatalf("partition(%q) = %d out of range", host, p)
		}
		if p2 := r.partition(host, now.Add(time.Minute)); p2 != p {
			t.Errorf("same time slice moved %q: %d -> %d", host, p, p2)
		}
	}
	// Across many slices a host must not pin one partition forever.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[r.partition("cn001", now.Add(time.Duration(i)*time.Hour))] = true
	}
	if len(seen) < 2 {
		t.Errorf("host pinned to one partition across 64 time slices")
	}
	// Replicas are distinct nodes.
	for p := 0; p < cfg.Partitions; p++ {
		reps := r.replicas(p, 2)
		if len(reps) != 2 || reps[0] == reps[1] {
			t.Fatalf("replicas(%d) = %v", p, reps)
		}
	}
	// Pre-epoch timestamps get stable floor-divided slots: one nanosecond
	// inside a slice must not flip the slot the way truncation would.
	if floorDiv(-1, int64(time.Hour)) != -1 || floorDiv(int64(time.Hour)-1, int64(time.Hour)) != 0 {
		t.Error("floorDiv grid wrong around zero")
	}
	old := time.Date(1969, 12, 31, 23, 30, 0, 0, time.UTC)
	if r.partition("cn001", old) != r.partition("cn001", old.Add(time.Nanosecond)) {
		t.Error("pre-epoch partition unstable within a slice")
	}
}

// TestClusterRouterCoordinatorRoundTrip is the happy path: documents
// routed with replication 2 across 3 nodes come back exactly once
// through every coordinator query shape.
func TestClusterRouterCoordinatorRoundTrip(t *testing.T) {
	nodes, urls := newTestNodes(t, 3)
	cfg := fastClusterCfg(urls, "")
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const total = 480 // divisible by the 40 hosts: every terms bucket equal
	ctx := context.Background()
	var batch []collector.Record
	for i := 0; i < total; i++ {
		batch = append(batch, clusterRecord(
			fmt.Sprintf("cn%03d", i%40), "kernel", fmt.Sprintf("event %d", i)))
	}
	if err := rt.Write(ctx, batch); err != nil {
		t.Fatal(err)
	}

	// Replication 2 means exactly 2x the docs live across the nodes, and
	// every node should hold a share (16 partitions over 3 nodes).
	stored := 0
	for i, nd := range nodes {
		n := nd.store.Count()
		if n == 0 {
			t.Errorf("node %d holds no documents — placement is not spreading", i)
		}
		stored += n
	}
	if stored != 2*total {
		t.Errorf("stored copies = %d, want %d (replication 2)", stored, 2*total)
	}

	co, err := NewCoordinator(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := co.Count(ctx, nil); err != nil || n != total {
		t.Fatalf("Count = %d, %v; want %d", n, err, total)
	}
	hits, err := co.Search(ctx, nil, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, h := range hits {
		seen[h.Doc.Body]++
	}
	if len(seen) != total {
		t.Fatalf("unique hits = %d, want %d", len(seen), total)
	}
	for body, n := range seen {
		if n != 1 {
			t.Fatalf("hit %q returned %d times, want exactly once (replica double-count)", body, n)
		}
	}
	terms, err := co.Terms(ctx, nil, "hostname", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 40 {
		t.Fatalf("hostname terms = %d, want 40", len(terms))
	}
	for _, b := range terms {
		if b.Count != total/40 {
			t.Fatalf("terms bucket %+v, want count %d", b, total/40)
		}
	}
	hist, err := co.DateHistogram(ctx, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, b := range hist {
		sum += b.Count
	}
	if sum != total {
		t.Fatalf("histogram total = %d, want %d", sum, total)
	}
}

// TestClusterChaosNodeDeathZeroLoss is the acceptance chaos test: one of
// three nodes dies mid-ingest at replication 2. The pipeline must finish
// with its conservation invariant intact and nothing dropped (the dead
// node's share diverts to the router's per-node spool), and the
// coordinator must answer over the survivors with every acknowledged
// record exactly once.
func TestClusterChaosNodeDeathZeroLoss(t *testing.T) {
	nodes, urls := newTestNodes(t, 3)
	cfg := fastClusterCfg(urls, t.TempDir())
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(context.Background())
	defer rt.Close()

	p := &collector.Pipeline{Sink: rt, Config: &collector.Config{
		BatchSize:     32,
		FlushInterval: 2 * time.Millisecond,
		MaxRetries:    1,
		RetryBackoff:  time.Millisecond,
		WriteTimeout:  5 * time.Second,
	}}
	ch := make(chan collector.Record)
	p.Source = &collector.ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()

	const total = 4000
	for i := 0; i < total; i++ {
		if i == total/2 {
			// Kill node 1 mid-ingest: in-flight and future writes to it
			// fail, trip its breaker, and divert to its spool.
			nodes[1].server.CloseClientConnections()
			nodes[1].server.Close()
		}
		ch <- clusterRecord(fmt.Sprintf("cn%03d", i%64), "slurmd", fmt.Sprintf("job %d", i))
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Pipeline-side conservation: the node death must be invisible here —
	// the router acknowledged every batch (each record reached a live
	// replica or a spool), so nothing dropped, retried into loss, or left
	// in the pipeline's own spool.
	s := p.Stats()
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant broken: Ingested (%d) != Filtered (%d) + Flushed (%d) + Dropped (%d) + Spooled (%d)",
			s.Ingested, s.Filtered, s.Flushed, s.Dropped, s.Spooled)
	}
	if s.Ingested != total || s.Flushed != total || s.Dropped != 0 || s.Spooled != 0 {
		t.Errorf("stats = %+v, want Ingested=Flushed=%d Dropped=Spooled=0", s, total)
	}

	// Router-side accounting: no record may have lost its last copy, and
	// the dead node's share must be sitting in its spool.
	var spooled int64
	for i, ns := range rt.Stats() {
		if ns.Lost != 0 {
			t.Errorf("node %d lost %d records", i, ns.Lost)
		}
		spooled += ns.SpoolRecords
	}
	if spooled == 0 {
		t.Error("dead node's share never reached its spool")
	}

	// Survivor-side exactness: the coordinator fails node 1's partitions
	// over to their other replica and still returns every acknowledged
	// record exactly once.
	co, err := NewCoordinator(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if n, err := co.Count(ctx, nil); err != nil || n != total {
		t.Fatalf("survivor Count = %d, %v; want %d", n, err, total)
	}
	hits, err := co.Search(ctx, nil, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, h := range hits {
		seen[h.Doc.Body]++
	}
	if len(seen) != total {
		t.Fatalf("survivors returned %d unique records, want %d", len(seen), total)
	}
	for body, n := range seen {
		if n != 1 {
			t.Fatalf("record %q returned %d times, want exactly once", body, n)
		}
	}
}

// TestClusterChaosNodeDeathBinaryCodecCacheExact is the PR-8 chaos
// variant: binary wire codec and the coordinator query cache are both
// live, queries run mid-ingest (populating the cache), and a node dies
// mid-ingest at replication 2. The cache must never serve a stale result
// across the failover re-plan — every post-ingest answer is exact — and
// zero acknowledged records may be lost.
func TestClusterChaosNodeDeathBinaryCodecCacheExact(t *testing.T) {
	nodes, urls := newTestNodes(t, 3)
	cfg := fastClusterCfg(urls, t.TempDir())
	cfg.Codec = CodecBinary
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(context.Background())
	defer rt.Close()
	co, err := NewCoordinator(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if co.cache == nil {
		t.Fatal("query cache should be enabled")
	}

	p := &collector.Pipeline{Sink: rt, Config: &collector.Config{
		BatchSize:     32,
		FlushInterval: 2 * time.Millisecond,
		MaxRetries:    1,
		RetryBackoff:  time.Millisecond,
		WriteTimeout:  5 * time.Second,
	}}
	ch := make(chan collector.Record)
	p.Source = &collector.ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()

	ctx := context.Background()
	const total = 4000
	for i := 0; i < total; i++ {
		switch i {
		case total / 4:
			// Populate the cache mid-ingest, while every node is alive.
			// Whatever partial count this memoizes must be invalidated by
			// the ingest that follows, not resurrected after failover.
			if _, err := co.Count(ctx, nil); err != nil {
				t.Fatalf("mid-ingest count: %v", err)
			}
		case total / 2:
			// Kill node 1 mid-ingest: its share diverts to its spool and
			// its partitions fail over on the query side.
			nodes[1].server.CloseClientConnections()
			nodes[1].server.Close()
		}
		ch <- clusterRecord(fmt.Sprintf("cn%03d", i%64), "slurmd", fmt.Sprintf("job %d", i))
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	s := p.Stats()
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant broken: Ingested (%d) != Filtered (%d) + Flushed (%d) + Dropped (%d) + Spooled (%d)",
			s.Ingested, s.Filtered, s.Flushed, s.Dropped, s.Spooled)
	}
	if s.Ingested != total || s.Flushed != total || s.Dropped != 0 || s.Spooled != 0 {
		t.Errorf("stats = %+v, want Ingested=Flushed=%d Dropped=Spooled=0", s, total)
	}
	for i, ns := range rt.Stats() {
		if ns.Lost != 0 {
			t.Errorf("node %d lost %d records", i, ns.Lost)
		}
	}
	// The fast path must actually be the binary codec: live nodes never
	// negotiated down to JSON.
	if rt.binBatches.Value() == 0 {
		t.Error("no batches went over the binary codec")
	}
	if rt.jsonBatches.Value() != 0 {
		t.Errorf("%d batches fell back to JSON against same-build nodes", rt.jsonBatches.Value())
	}

	// Post-ingest exactness through the cache: the first count re-scatters
	// (ingest advanced the generation past the mid-ingest snapshot), the
	// second is a cache hit — and both must equal the acknowledged total.
	hitsBefore := co.cache.hits.Value()
	for round := 0; round < 2; round++ {
		if n, err := co.Count(ctx, nil); err != nil || n != total {
			t.Fatalf("post-ingest count round %d = %d, %v; want %d", round, n, err, total)
		}
	}
	if co.cache.hits.Value() != hitsBefore+1 {
		t.Errorf("second identical count missed the cache (hits %d -> %d)",
			hitsBefore, co.cache.hits.Value())
	}
	// Search (uncached) agrees with the cached count: every acknowledged
	// record exactly once across the survivors.
	hits, err := co.Search(ctx, nil, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, h := range hits {
		seen[h.Doc.Body]++
	}
	if len(seen) != total {
		t.Fatalf("survivors returned %d unique records, want %d", len(seen), total)
	}
	for body, n := range seen {
		if n != 1 {
			t.Fatalf("record %q returned %d times, want exactly once", body, n)
		}
	}
}

// TestClusterRouterNoDurablePlacementError pins the durability contract:
// with every replica down and no spool configured, Write must hand the
// batch back to the pipeline as an error instead of acking into loss.
func TestClusterRouterNoDurablePlacementError(t *testing.T) {
	nodes, urls := newTestNodes(t, 2)
	cfg := fastClusterCfg(urls, "") // no spool
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for _, nd := range nodes {
		nd.server.CloseClientConnections()
		nd.server.Close()
	}
	err = rt.Write(context.Background(), []collector.Record{
		clusterRecord("cn001", "kernel", "doomed"),
	})
	if err == nil {
		t.Fatal("Write acked a record with no durable placement")
	}
}

// TestClusterSpoolReplayAfterRecovery: a node that refuses writes for a
// while (503s behind the same URL) receives its spooled share via the
// replayer once it recovers, and the coordinator then sees every record.
func TestClusterSpoolReplayAfterRecovery(t *testing.T) {
	st0, st1 := store.New(2), store.New(2)
	srv0 := httptest.NewServer(st0.Handler())
	t.Cleanup(srv0.Close)
	var broken atomic.Bool
	broken.Store(true)
	h1 := st1.Handler()
	srv1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "node down", http.StatusServiceUnavailable)
			return
		}
		h1.ServeHTTP(w, r)
	}))
	t.Cleanup(srv1.Close)

	cfg := fastClusterCfg([]string{srv0.URL, srv1.URL}, t.TempDir())
	cfg.Replication = 1 // every record has exactly one home: replay is load-bearing
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(context.Background())
	defer rt.Close()

	const total = 400
	ctx := context.Background()
	var batch []collector.Record
	for i := 0; i < total; i++ {
		batch = append(batch, clusterRecord(fmt.Sprintf("cn%03d", i%32), "sshd", fmt.Sprintf("session %d", i)))
	}
	if err := rt.Write(ctx, batch); err != nil {
		t.Fatal(err)
	}
	// Recover the node and wait for the replayer to drain its spool.
	broken.Store(false)
	deadline := time.Now().Add(20 * time.Second)
	co, err := NewCoordinator(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if n, err := co.Count(ctx, nil); err == nil && n == total {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n, err := co.Count(ctx, nil); err != nil || n != total {
		t.Fatalf("after recovery Count = %d, %v; want %d (stats %+v)", n, err, total, rt.Stats())
	}
	for i, ns := range rt.Stats() {
		if ns.Lost != 0 {
			t.Errorf("node %d lost %d records", i, ns.Lost)
		}
		if i == 1 && ns.Replayed == 0 {
			t.Error("recovered node saw no replayed records")
		}
	}
}
