package cluster

// Cluster benchmarks: router fan-out ingest throughput and scatter-gather
// query latency over in-process HTTP store nodes. The numbers bound the
// cost of the cluster hop itself (HTTP + wire codec + partition planning)
// since the nodes run on the loopback of the same machine.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"hetsyslog/internal/store"
)

func benchClusterCfg(b *testing.B, nNodes, replication int, codec string) Config {
	b.Helper()
	_, urls := newTestNodes(b, nNodes)
	return Config{
		Nodes:       urls,
		Replication: replication,
		Partitions:  32,
		TimeSlice:   time.Hour,
		HTTPTimeout: 30 * time.Second,
		Codec:       codec,
		Gen:         NewGeneration(),
	}
}

func benchCluster(b *testing.B, nNodes, replication int, codec string) (*Router, *Coordinator) {
	b.Helper()
	cfg := benchClusterCfg(b, nNodes, replication, codec)
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rt.Close() })
	co, err := NewCoordinator(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	return rt, co
}

func benchDocs(n int) []store.Doc {
	base := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	docs := make([]store.Doc, n)
	for i := range docs {
		docs[i] = store.Doc{
			Time:   base.Add(time.Duration(i) * time.Second),
			Fields: store.F("hostname", fmt.Sprintf("cn%03d", i%64), "app", "kernel"),
			Body:   fmt.Sprintf("CPU %d temperature above threshold", i),
		}
	}
	return docs
}

// BenchmarkClusterRouterIndexBatch measures routed ingest: one pipeline
// batch partitioned, stamped, and delivered to every replica over HTTP.
// The bare replication=N names run the default (binary) codec and are the
// series compared against prior-PR baselines; the codec-labeled variants
// isolate the wire-format contribution (json is the pre-PR-8 path).
//
// The cluster is recycled off-timer every resetEvery iterations so the
// node-side corpus stays bounded: without the reset, a faster wire path
// simply runs more iterations, grows the stores further, and pays ever
// more for server-side indexing — the benchmark would measure corpus
// growth, not the hop. Every variant gets the identical cap.
func BenchmarkClusterRouterIndexBatch(b *testing.B) {
	const (
		batch      = 256
		resetEvery = 128
	)
	for _, bc := range []struct {
		name  string
		repl  int
		codec string
	}{
		{"replication=1", 1, CodecBinary},
		{"replication=2", 2, CodecBinary},
		{"replication=1/codec=json", 1, CodecJSON},
		{"replication=2/codec=json", 2, CodecJSON},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var (
				rt      *Router
				servers []*httptest.Server
			)
			makeCluster := func() {
				urls := make([]string, 3)
				servers = servers[:0]
				for i := range urls {
					srv := httptest.NewServer(store.New(2).Handler())
					servers = append(servers, srv)
					urls[i] = srv.URL
				}
				var err error
				rt, err = NewRouter(Config{
					Nodes:       urls,
					Replication: bc.repl,
					Partitions:  32,
					TimeSlice:   time.Hour,
					HTTPTimeout: 30 * time.Second,
					Codec:       bc.codec,
					Gen:         NewGeneration(),
				}, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			closeCluster := func() {
				rt.Close()
				for _, srv := range servers {
					srv.Close()
				}
			}
			makeCluster()
			defer func() { closeCluster() }()
			docs := benchDocs(batch)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%resetEvery == 0 {
					b.StopTimer()
					closeCluster()
					makeCluster()
					b.StartTimer()
				}
				if err := rt.IndexBatch(ctx, docs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "recs/s")
		})
	}
}

// BenchmarkClusterScatterGatherQuery measures coordinator queries against
// a preloaded 3-node cluster: the scatter plan, per-node HTTP calls, and
// the exact merge. The bare names run with the query cache enabled (the
// default front wiring), so steady-state iterations after the first are
// cache hits; the nocache variants measure the raw scatter every time —
// the series comparable to pre-PR-8 baselines.
func BenchmarkClusterScatterGatherQuery(b *testing.B) {
	cfg := benchClusterCfg(b, 3, 2, CodecBinary)
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rt.Close() })
	co, err := NewCoordinator(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	uncachedCfg := cfg
	uncachedCfg.QueryCacheSize = -1
	coNC, err := NewCoordinator(uncachedCfg, nil)
	if err != nil {
		b.Fatal(err)
	}

	ctx := context.Background()
	docs := benchDocs(20000)
	for lo := 0; lo < len(docs); lo += 512 {
		hi := lo + 512
		if hi > len(docs) {
			hi = len(docs)
		}
		if err := rt.IndexBatch(ctx, docs[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	q := store.Term{Field: "hostname", Value: "cn001"}

	b.Run("count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := co.Count(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("count/nocache", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coNC.Count(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("search", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := co.Search(ctx, q, -1, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("datehist", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := co.DateHistogram(ctx, nil, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("terms", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := co.Terms(ctx, nil, "hostname", 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}
