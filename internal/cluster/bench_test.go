package cluster

// Cluster benchmarks: router fan-out ingest throughput and scatter-gather
// query latency over in-process HTTP store nodes. The numbers bound the
// cost of the cluster hop itself (HTTP + JSON + partition planning) since
// the nodes run on the loopback of the same machine.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hetsyslog/internal/store"
)

func benchCluster(b *testing.B, nNodes, replication int) (*Router, *Coordinator) {
	b.Helper()
	_, urls := newTestNodes(b, nNodes)
	cfg := Config{
		Nodes:       urls,
		Replication: replication,
		Partitions:  32,
		TimeSlice:   time.Hour,
		HTTPTimeout: 30 * time.Second,
	}
	rt, err := NewRouter(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rt.Close() })
	co, err := NewCoordinator(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	return rt, co
}

func benchDocs(n int) []store.Doc {
	base := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	docs := make([]store.Doc, n)
	for i := range docs {
		docs[i] = store.Doc{
			Time:   base.Add(time.Duration(i) * time.Second),
			Fields: store.F("hostname", fmt.Sprintf("cn%03d", i%64), "app", "kernel"),
			Body:   fmt.Sprintf("CPU %d temperature above threshold", i),
		}
	}
	return docs
}

// BenchmarkClusterRouterIndexBatch measures routed ingest: one pipeline
// batch partitioned, stamped, and delivered to every replica over HTTP.
func BenchmarkClusterRouterIndexBatch(b *testing.B) {
	for _, repl := range []int{1, 2} {
		b.Run(fmt.Sprintf("replication=%d", repl), func(b *testing.B) {
			rt, _ := benchCluster(b, 3, repl)
			const batch = 256
			docs := benchDocs(batch)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.IndexBatch(ctx, docs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "recs/s")
		})
	}
}

// BenchmarkClusterScatterGatherQuery measures coordinator queries against
// a preloaded 3-node cluster: the scatter plan, per-node HTTP calls, and
// the exact merge.
func BenchmarkClusterScatterGatherQuery(b *testing.B) {
	rt, co := benchCluster(b, 3, 2)
	ctx := context.Background()
	docs := benchDocs(20000)
	for lo := 0; lo < len(docs); lo += 512 {
		hi := lo + 512
		if hi > len(docs) {
			hi = len(docs)
		}
		if err := rt.IndexBatch(ctx, docs[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	q := store.Term{Field: "hostname", Value: "cn001"}

	b.Run("count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := co.Count(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("search", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := co.Search(ctx, q, -1, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("datehist", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := co.DateHistogram(ctx, nil, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("terms", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := co.Terms(ctx, nil, "hostname", 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}
