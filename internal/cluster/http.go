package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hetsyslog/internal/store"
)

// Handler exposes the coordinator over the same query API shape as a
// single store node, so clients and dashboards can point at a cluster
// front without changes:
//
//	POST /search        {"query": {...}, "size": 100, "sort_asc": false}
//	POST /count         {"query": {...}}
//	POST /agg/datehist  {"query": {...}, "interval": "1m"}
//	POST /agg/terms    {"query": {...}, "field": "hostname", "size": 10}
//	GET  /search?q=app:sshd+-preauth&size=20
//	GET  /stats
//
// Index endpoints are deliberately absent: ingest goes through the
// Router (a pipeline sink), not the query front.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", co.handleSearch)
	mux.HandleFunc("POST /count", co.handleCount)
	mux.HandleFunc("POST /agg/datehist", co.handleDateHist)
	mux.HandleFunc("POST /agg/terms", co.handleTerms)
	mux.HandleFunc("GET /search", co.handleSearchGet)
	mux.HandleFunc("GET /stats", co.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseBodyQuery decodes an optional JSON DSL query (empty = match all).
func parseBodyQuery(raw json.RawMessage) (store.Query, error) {
	if len(raw) == 0 {
		return store.MatchAll{}, nil
	}
	return store.ParseQuery(raw)
}

type searchBody struct {
	Query   json.RawMessage `json:"query"`
	Size    int             `json:"size"`
	SortAsc bool            `json:"sort_asc"`
}

func (co *Coordinator) handleSearch(w http.ResponseWriter, r *http.Request) {
	var body searchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := parseBodyQuery(body.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hits, err := co.Search(r.Context(), q, body.Size, body.SortAsc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, map[string]any{"total": len(hits), "hits": hits})
}

func (co *Coordinator) handleSearchGet(w http.ResponseWriter, r *http.Request) {
	q, err := store.ParseQueryString(r.URL.Query().Get("q"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	size := 10
	if s := r.URL.Query().Get("size"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &size); err != nil {
			http.Error(w, "bad size", http.StatusBadRequest)
			return
		}
	}
	hits, err := co.Search(r.Context(), q, size, false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, map[string]any{"total": len(hits), "hits": hits})
}

func (co *Coordinator) handleCount(w http.ResponseWriter, r *http.Request) {
	var body searchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := parseBodyQuery(body.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n, err := co.Count(r.Context(), q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, map[string]int{"count": n})
}

type dateHistBody struct {
	Query    json.RawMessage `json:"query"`
	Interval string          `json:"interval"`
}

func (co *Coordinator) handleDateHist(w http.ResponseWriter, r *http.Request) {
	var body dateHistBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := parseBodyQuery(body.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	interval, err := time.ParseDuration(body.Interval)
	if err != nil {
		http.Error(w, "bad interval: "+err.Error(), http.StatusBadRequest)
		return
	}
	buckets, err := co.DateHistogram(r.Context(), q, interval)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, buckets)
}

type termsBody struct {
	Query json.RawMessage `json:"query"`
	Field string          `json:"field"`
	Size  int             `json:"size"`
}

func (co *Coordinator) handleTerms(w http.ResponseWriter, r *http.Request) {
	var body termsBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := parseBodyQuery(body.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if body.Field == "" {
		http.Error(w, "field required", http.StatusBadRequest)
		return
	}
	buckets, err := co.Terms(r.Context(), q, body.Field, body.Size)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, buckets)
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, co.Stats(r.Context()))
}
