package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/store"
)

// Coordinator scatter-gathers queries across the cluster's store nodes
// and merges the results exactly. For each query it picks one live owner
// per partition, restricts each node's query to the partitions it was
// picked for (so replicated documents are counted exactly once), fans
// the per-node calls out concurrently, and fails a dead node's
// partitions over to their next replica. The merge shapes are the ones
// internal/store's aggregations were built to allow: histogram buckets
// sum by Start (then gap-fill once, under the single-store clamp), term
// buckets sum by value then re-sort and truncate, hits merge by time.
type Coordinator struct {
	cfg     Config
	ring    *ring
	clients []*NodeClient
	// gen is the front's shared ingest generation and cache its merged-
	// result memo (Count/DateHistogram/Terms). Both nil when caching is
	// disabled (no Gen wired, or QueryCacheSize < 0).
	gen   *Generation
	cache *queryCache

	scatterLat  *obs.Histogram
	fanout      *obs.Histogram
	failovers   *obs.Counter
	queryTotal  *obs.Counter
	queryFailed *obs.Counter
}

// NewCoordinator validates cfg and returns a coordinator over its nodes.
// reg receives the scatter latency/fan-out instruments (nil = standalone).
func NewCoordinator(cfg Config, reg *obs.Registry) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	co := &Coordinator{cfg: cfg, ring: newRing(cfg)}
	// One tuned transport spans every node, same as the router's, so
	// scatter rounds ride pooled keep-alive connections.
	httpc := newHTTPClient(cfg.HTTPTimeout, cfg.MaxIdleConnsPerHost)
	for _, url := range cfg.Nodes {
		co.clients = append(co.clients, newNodeClientShared(url, httpc))
	}
	if cfg.Gen != nil && cfg.QueryCacheSize > 0 {
		co.gen = cfg.Gen
		co.cache = newQueryCache(cfg.QueryCacheSize, reg)
	}
	co.scatterLat = reg.Histogram("cluster_scatter_seconds",
		"scatter-gather latency per coordinator query (all rounds, merge included)",
		obs.LatencyBuckets)
	co.fanout = reg.Histogram("cluster_scatter_fanout",
		"nodes queried per coordinator query (failover rounds included)",
		obs.SizeBuckets)
	co.failovers = reg.Counter("cluster_scatter_failovers_total",
		"node failures rerouted to a surviving replica during queries")
	co.queryTotal = reg.Counter("cluster_query_total",
		"coordinator queries served")
	co.queryFailed = reg.Counter("cluster_query_failed_total",
		"coordinator queries that could not cover every partition")
	return co, nil
}

// scatter plans and executes one query: it assigns every partition to
// its best live owner, groups partitions by node, marshals each node's
// partition-restricted query, and calls fn once per node concurrently.
// A failed node is marked dead for the rest of this query and its
// partitions are retried on their next replica; scatter errors only when
// some partition has no live owner left (its data is unreachable).
func (co *Coordinator) scatter(ctx context.Context, q store.Query,
	fn func(ctx context.Context, node int, raw json.RawMessage) error) error {
	co.queryTotal.Inc()
	start := time.Now()
	defer func() { co.scatterLat.ObserveDuration(time.Since(start)) }()

	if q == nil {
		q = store.MatchAll{}
	}
	remaining := make([]int, co.cfg.Partitions)
	for p := range remaining {
		remaining[p] = p
	}
	dead := make([]bool, len(co.clients))
	nodesQueried := 0
	for len(remaining) > 0 {
		// Assign each uncovered partition to its best live owner.
		perNode := make(map[int][]int)
		for _, p := range remaining {
			assigned := false
			for _, n := range co.ring.replicas(p, co.cfg.Replication) {
				if !dead[n] {
					perNode[n] = append(perNode[n], p)
					assigned = true
					break
				}
			}
			if !assigned {
				co.queryFailed.Inc()
				return fmt.Errorf("cluster: partition %d has no live replica (every owner failed)", p)
			}
		}
		// Fan out.
		type result struct {
			node  int
			parts []int
			err   error
		}
		results := make([]result, 0, len(perNode))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for n, parts := range perNode {
			nodesQueried++
			wg.Add(1)
			go func(n int, parts []int) {
				defer wg.Done()
				raw, err := store.MarshalQuery(restrictToPartitions(q, parts))
				if err == nil {
					err = fn(ctx, n, raw)
				}
				mu.Lock()
				results = append(results, result{node: n, parts: parts, err: err})
				mu.Unlock()
			}(n, parts)
		}
		wg.Wait()
		remaining = remaining[:0]
		for _, r := range results {
			if r.err != nil {
				dead[r.node] = true
				co.failovers.Inc()
				remaining = append(remaining, r.parts...)
			}
		}
	}
	co.fanout.Observe(float64(nodesQueried))
	return nil
}

// restrictToPartitions wraps q so it only matches documents stamped with
// one of the given partitions: all of q, plus at least one partition
// Should-term — exactly Bool's semantics.
func restrictToPartitions(q store.Query, parts []int) store.Query {
	should := make([]store.Query, len(parts))
	for i, p := range parts {
		should[i] = store.Term{Field: PartitionField, Value: strconv.Itoa(p)}
	}
	return store.Bool{Must: []store.Query{q}, Should: should}
}

// cached routes fill through the merged-result cache when it is enabled,
// keying on (operation, parameters, canonical query JSON, current ingest
// generation). Ingest bumps the generation, which makes every stale key
// unreachable — a cached value can therefore never predate a data change
// under its own key. Cached values are shared across callers and must be
// treated as immutable.
func (co *Coordinator) cached(ctx context.Context, op, params string, q store.Query, fill func() (any, error)) (any, error) {
	if co.cache == nil {
		return fill()
	}
	if q == nil {
		q = store.MatchAll{}
	}
	raw, err := store.MarshalQuery(q)
	if err != nil {
		// Unmarshalable query shape: skip the cache and let the scatter
		// surface the real error.
		return fill()
	}
	key := op + "|g" + strconv.FormatInt(co.gen.Load(), 10) + "|" + params + "|" + string(raw)
	return co.cache.do(ctx, key, fill)
}

// Search scatter-gathers a search. size limits the merged result
// (negative = unlimited); each node is asked for its full result set so
// truncation happens exactly once, after the merge. Search results are
// deliberately not cached: hit payloads carry full documents, so one
// broad query could pin an unbounded slice of the corpus in memory —
// unlike the fixed-size merged aggregates Count/DateHistogram/Terms
// memoize.
func (co *Coordinator) Search(ctx context.Context, q store.Query, size int, sortAsc bool) ([]store.Hit, error) {
	var mu sync.Mutex
	var hits []store.Hit
	err := co.scatter(ctx, q, func(ctx context.Context, node int, raw json.RawMessage) error {
		h, err := co.clients[node].Search(ctx, raw, -1, sortAsc)
		if err != nil {
			return err
		}
		mu.Lock()
		hits = append(hits, h...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return MergeHits(hits, size, sortAsc), nil
}

// Count scatter-gathers a count; per-partition counts sum exactly.
// Results are memoized per ingest generation when the cache is enabled.
func (co *Coordinator) Count(ctx context.Context, q store.Query) (int, error) {
	v, err := co.cached(ctx, "count", "", q, func() (any, error) {
		var mu sync.Mutex
		total := 0
		err := co.scatter(ctx, q, func(ctx context.Context, node int, raw json.RawMessage) error {
			n, err := co.clients[node].Count(ctx, raw)
			if err != nil {
				return err
			}
			mu.Lock()
			total += n
			mu.Unlock()
			return nil
		})
		return total, err
	})
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}

// DateHistogram scatter-gathers the sparse per-node histograms, sums
// buckets by Start, and gap-fills once under the same
// store.MaxHistogramBuckets clamp as a single store — so the merged
// multi-node histogram is identical to one store holding the union.
func (co *Coordinator) DateHistogram(ctx context.Context, q store.Query, interval time.Duration) ([]store.HistogramBucket, error) {
	if interval <= 0 {
		interval = time.Minute
	}
	v, err := co.cached(ctx, "datehist", interval.String(), q, func() (any, error) {
		var mu sync.Mutex
		var all [][]store.HistogramBucket
		err := co.scatter(ctx, q, func(ctx context.Context, node int, raw json.RawMessage) error {
			b, err := co.clients[node].DateHistogramSparse(ctx, raw, interval)
			if err != nil {
				return err
			}
			mu.Lock()
			all = append(all, b)
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		return MergeHistograms(all, interval), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]store.HistogramBucket), nil
}

// Terms scatter-gathers the full per-node terms aggregations, sums by
// value, and re-sorts/truncates once — exact, unlike merging per-node
// top-k truncations.
func (co *Coordinator) Terms(ctx context.Context, q store.Query, field string, size int) ([]store.TermBucket, error) {
	v, err := co.cached(ctx, "terms", field+"|"+strconv.Itoa(size), q, func() (any, error) {
		var mu sync.Mutex
		var all [][]store.TermBucket
		err := co.scatter(ctx, q, func(ctx context.Context, node int, raw json.RawMessage) error {
			b, err := co.clients[node].Terms(ctx, raw, field, 0)
			if err != nil {
				return err
			}
			mu.Lock()
			all = append(all, b)
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		return MergeTerms(all, size), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]store.TermBucket), nil
}

// ClusterStats aggregates the per-node store stats the coordinator can
// reach. Docs double-counts replicas (it sums raw node totals; divide by
// the replication factor for a logical estimate).
type ClusterStats struct {
	Nodes     int           `json:"nodes"`
	Live      int           `json:"live"`
	Docs      int           `json:"docs"`
	TextTerms int           `json:"text_terms"`
	PerNode   []store.Stats `json:"per_node"`
}

// Stats polls every node's /stats; unreachable nodes leave a zero entry
// and decrement Live.
func (co *Coordinator) Stats(ctx context.Context) ClusterStats {
	out := ClusterStats{Nodes: len(co.clients), PerNode: make([]store.Stats, len(co.clients))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, c := range co.clients {
		wg.Add(1)
		go func(i int, c *NodeClient) {
			defer wg.Done()
			s, err := c.Stats(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				return
			}
			out.PerNode[i] = s
			out.Live++
			out.Docs += s.Docs
			out.TextTerms += s.TextTerms
		}(i, c)
	}
	wg.Wait()
	return out
}

// MergeHits merges scattered hits into the single-store order: by time
// (descending unless sortAsc), ties broken by per-node doc id, truncated
// to size (negative = unlimited, zero = the store's default 10).
func MergeHits(hits []store.Hit, size int, sortAsc bool) []store.Hit {
	sort.Slice(hits, func(a, b int) bool {
		ta, tb := hits[a].Doc.Time, hits[b].Doc.Time
		if !ta.Equal(tb) {
			if sortAsc {
				return ta.Before(tb)
			}
			return tb.Before(ta)
		}
		return hits[a].Doc.ID < hits[b].Doc.ID
	})
	if size == 0 {
		size = 10
	}
	if size >= 0 && len(hits) > size {
		hits = hits[:size]
	}
	return hits
}

// MergeHistograms sums sparse per-node histograms by bucket Start and
// materializes the gap-filled form exactly as a single store would
// (store.FillHistogram, including the MaxHistogramBuckets clamp). All
// inputs must share the interval grid — guaranteed by the store's
// floor-division bucketing.
func MergeHistograms(all [][]store.HistogramBucket, interval time.Duration) []store.HistogramBucket {
	counts := make(map[int64]int)
	for _, buckets := range all {
		for _, b := range buckets {
			counts[b.Start.UnixNano()] += b.Count
		}
	}
	if len(counts) == 0 {
		return nil
	}
	sparse := make([]store.HistogramBucket, 0, len(counts))
	for ns, c := range counts {
		sparse = append(sparse, store.HistogramBucket{Start: time.Unix(0, ns).UTC(), Count: c})
	}
	sort.Slice(sparse, func(a, b int) bool { return sparse[a].Start.Before(sparse[b].Start) })
	return store.FillHistogram(sparse, interval)
}

// MergeTerms sums per-node term buckets by value and applies the
// single-store order (count desc, value asc) and truncation.
func MergeTerms(all [][]store.TermBucket, size int) []store.TermBucket {
	counts := make(map[string]int)
	for _, buckets := range all {
		for _, b := range buckets {
			counts[b.Value] += b.Count
		}
	}
	out := make([]store.TermBucket, 0, len(counts))
	for v, c := range counts {
		out = append(out, store.TermBucket{Value: v, Count: c})
	}
	store.SortTerms(out)
	if size > 0 && len(out) > size {
		out = out[:size]
	}
	return out
}
