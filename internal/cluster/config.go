// Package cluster turns the single-node Tivan store into a multi-node
// story: a consistent-hash router sink spreads ingest across N store
// nodes over their HTTP index endpoints with a configurable replication
// factor, and a query coordinator scatter-gathers searches and
// aggregations across the nodes and merges the results exactly.
//
// Placement works in two layers. Every document maps to one of a fixed
// number of *partitions* by hashing its routing key (hostname) together
// with a coarse time slot — the "time+hash" routing from ROADMAP item 2:
// one host's traffic stays groupable while still spreading over nodes as
// time advances. Each partition is then owned by an ordered list of
// nodes chosen by rendezvous (highest-random-weight) hashing; the first
// Replication owners store a copy of every document in the partition.
// Adding or removing a node only remaps the partitions it participated
// in, which is all the consistency a log store needs.
//
// Replication is what makes the merge exact: a replicated document
// exists on R nodes, so the coordinator never queries "all nodes" — it
// picks one live owner per partition and restricts each node's query to
// the partitions it was picked for (documents carry their partition in
// the PartitionField metadata field). Every partition is counted exactly
// once, and a dead node's partitions fail over to their next live owner.
//
// Delivery reuses the PR-4 resilience machinery per node: each node gets
// its own circuit breaker and (optionally) its own disk spool, so a dead
// node degrades to spool-and-replay for its share of the traffic while
// the surviving replicas keep accepting writes — zero acknowledged-record
// loss at Replication >= 2.
package cluster

import (
	"errors"
	"fmt"
	"time"
)

// PartitionField is the metadata field the router stamps on every
// document with its partition id. The coordinator's per-node partition
// restriction filters on it; it rides along in search hits like any
// other metadata field.
const PartitionField = "_part"

// Defaults applied by Config.withDefaults.
const (
	DefaultPartitions          = 32
	DefaultReplication         = 2
	DefaultTimeSlice           = time.Hour
	DefaultReplayInterval      = 250 * time.Millisecond
	DefaultHTTPTimeout         = 30 * time.Second
	DefaultBreakerThreshold    = 3
	DefaultMaxIdleConnsPerHost = 32
	DefaultQueryCacheSize      = 256
)

// Codec values for Config.Codec: how the router serializes /index/batch
// payloads to store nodes.
const (
	// CodecBinary is the compact length-prefixed doc codec (store's
	// DocsContentType). Each batch encodes once; per-node payloads reuse
	// the shared doc spans. Nodes that do not speak it negotiate the
	// client down to JSON transparently.
	CodecBinary = "binary"
	// CodecJSON forces the JSON wire form everywhere — the compatibility
	// fallback, kept as the codec's differential oracle.
	CodecJSON = "json"
)

// Config describes the cluster membership and the router/coordinator
// knobs. The zero value of every optional field means "use the default".
type Config struct {
	// Nodes are the store nodes' HTTP base URLs (e.g.
	// "http://10.0.0.1:9200"), in a stable order: rendezvous placement
	// hashes the URL strings, so renaming a node remaps its partitions.
	Nodes []string
	// Replication is how many nodes store a copy of each document
	// (default 2, clamped nowhere — Validate rejects it above len(Nodes)).
	Replication int
	// Partitions is the number of hash partitions documents map onto
	// (default 32). It bounds placement granularity, not capacity; changing
	// it reshuffles placement, so pick it once per cluster.
	Partitions int
	// TimeSlice is the coarse time bucket mixed into the partition hash
	// (default 1h): records from one host within a slice share a
	// partition, and successive slices move the host across partitions.
	TimeSlice time.Duration
	// SpoolDir, when set, gives each node a disk spill queue in
	// SpoolDir/node-<i>: batches a node refuses spool there and replay
	// when it recovers. Empty disables spooling (a node outage then
	// surfaces as a router write error once every replica of a record is
	// unreachable).
	SpoolDir string
	// SpoolMaxBytes bounds each per-node spool (0 = unbounded).
	SpoolMaxBytes int64
	// BreakerThreshold is the consecutive failures that trip a node's
	// circuit breaker (default 3).
	BreakerThreshold int
	// RetryBackoff / MaxRetryBackoff / RetryJitter shape each node
	// breaker's backoff ladder (defaults from resilience.NewBreaker).
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration
	RetryJitter     float64
	// ReplayInterval is how often each node's replayer polls its spool
	// (default 250ms).
	ReplayInterval time.Duration
	// HTTPTimeout bounds each HTTP call to a node (default 30s). The
	// caller's context still applies on top.
	HTTPTimeout time.Duration
	// Seed seeds the per-node breaker jitter (default 1; node i uses
	// Seed+i so breakers desynchronize).
	Seed int64
	// Codec selects the /index/batch wire form: CodecBinary (default) or
	// CodecJSON. Binary-speaking clients fall back to JSON per node when a
	// node rejects the codec, so mixed-version clusters keep working.
	Codec string
	// MaxIdleConnsPerHost sizes the shared HTTP transport's keep-alive
	// pool per node (default 32). Concurrent fan-out opens one connection
	// per in-flight request; idle conns below this bound are reused
	// instead of re-dialed.
	MaxIdleConnsPerHost int
	// QueryCacheSize bounds the coordinator's merged-result cache in
	// entries (0 = default 256, negative = disabled). The cache also
	// requires Gen: without an ingest signal there is nothing to key
	// freshness on, so a nil Gen disables caching regardless.
	QueryCacheSize int
	// Gen is the shared ingest generation: the router bumps it when data
	// reaches a node, the coordinator keys its query cache on it. Wire the
	// SAME *Generation into the router and coordinator of a front. nil
	// disables the query cache.
	Gen *Generation
}

// Validate reports every violation at once, errors.Join-style, matching
// collector.Config's contract.
func (c Config) Validate() error {
	var errs []error
	if len(c.Nodes) == 0 {
		errs = append(errs, errors.New("cluster: Nodes must list at least one store node"))
	}
	seen := make(map[string]bool, len(c.Nodes))
	for _, n := range c.Nodes {
		if n == "" {
			errs = append(errs, errors.New("cluster: empty node URL"))
		} else if seen[n] {
			errs = append(errs, fmt.Errorf("cluster: duplicate node URL %q", n))
		}
		seen[n] = true
	}
	if c.Replication < 0 {
		errs = append(errs, fmt.Errorf("cluster: Replication must be >= 1 (got %d)", c.Replication))
	}
	if c.Replication > len(c.Nodes) && len(c.Nodes) > 0 {
		errs = append(errs, fmt.Errorf("cluster: Replication %d exceeds node count %d",
			c.Replication, len(c.Nodes)))
	}
	if c.Partitions < 0 {
		errs = append(errs, fmt.Errorf("cluster: Partitions must be positive (got %d)", c.Partitions))
	}
	if c.TimeSlice < 0 {
		errs = append(errs, fmt.Errorf("cluster: TimeSlice must be >= 0 (got %v)", c.TimeSlice))
	}
	if c.SpoolMaxBytes < 0 {
		errs = append(errs, fmt.Errorf("cluster: SpoolMaxBytes must be >= 0 (got %d)", c.SpoolMaxBytes))
	}
	if c.BreakerThreshold < 0 {
		errs = append(errs, fmt.Errorf("cluster: BreakerThreshold must be >= 0 (got %d)", c.BreakerThreshold))
	}
	if c.ReplayInterval < 0 {
		errs = append(errs, fmt.Errorf("cluster: ReplayInterval must be >= 0 (got %v)", c.ReplayInterval))
	}
	if c.HTTPTimeout < 0 {
		errs = append(errs, fmt.Errorf("cluster: HTTPTimeout must be >= 0 (got %v)", c.HTTPTimeout))
	}
	switch c.Codec {
	case "", CodecBinary, CodecJSON:
	default:
		errs = append(errs, fmt.Errorf("cluster: Codec must be %q or %q (got %q)", CodecBinary, CodecJSON, c.Codec))
	}
	if c.MaxIdleConnsPerHost < 0 {
		errs = append(errs, fmt.Errorf("cluster: MaxIdleConnsPerHost must be >= 0 (got %d)", c.MaxIdleConnsPerHost))
	}
	return errors.Join(errs...)
}

// withDefaults returns a copy with every unset knob defaulted.
func (c Config) withDefaults() Config {
	if c.Replication == 0 {
		c.Replication = DefaultReplication
		if c.Replication > len(c.Nodes) {
			c.Replication = len(c.Nodes)
		}
	}
	if c.Partitions == 0 {
		c.Partitions = DefaultPartitions
	}
	if c.TimeSlice == 0 {
		c.TimeSlice = DefaultTimeSlice
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.ReplayInterval == 0 {
		c.ReplayInterval = DefaultReplayInterval
	}
	if c.HTTPTimeout == 0 {
		c.HTTPTimeout = DefaultHTTPTimeout
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Codec == "" {
		c.Codec = CodecBinary
	}
	if c.MaxIdleConnsPerHost == 0 {
		c.MaxIdleConnsPerHost = DefaultMaxIdleConnsPerHost
	}
	if c.QueryCacheSize == 0 {
		c.QueryCacheSize = DefaultQueryCacheSize
	}
	return c
}
