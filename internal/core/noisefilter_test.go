package core

import (
	"context"
	"testing"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/syslog"
)

func noiseRecord(content string) collector.Record {
	return collector.Record{
		Time: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
		Msg: &syslog.Message{
			Facility: syslog.Daemon, Severity: syslog.Info,
			Hostname: "cn1", AppName: "app", Content: content,
		},
	}
}

func TestNoiseFilterDropsVariantsOnly(t *testing.T) {
	f := NewNoiseFilter(0)
	f.Blacklist("slurm_rpc_node_registration complete for cn001 usec=123")
	if f.Exemplars() != 1 {
		t.Fatalf("exemplars = %d", f.Exemplars())
	}

	// A near variant (two digits differ) is swallowed.
	if _, keep := f.Apply(noiseRecord("slurm_rpc_node_registration complete for cn007 usec=129")); keep {
		t.Error("close variant not dropped")
	}
	// A genuinely different message passes, even on the same topic.
	if _, keep := f.Apply(noiseRecord("slurmd version 22.05.3 differs, please update slurm")); !keep {
		t.Error("unrelated message dropped")
	}
	// Issue messages pass untouched.
	if _, keep := f.Apply(noiseRecord("CPU 3 temperature above threshold, cpu clock throttled")); !keep {
		t.Error("thermal message dropped by noise filter")
	}
	if f.Dropped() != 1 {
		t.Errorf("dropped = %d", f.Dropped())
	}
	// Nil message records are rejected (not counted as noise drops).
	if _, keep := f.Apply(collector.Record{}); keep {
		t.Error("nil message kept")
	}
}

// TestNoiseFilterTighterThanClassifierThreshold verifies the §5.1 design
// point: the blacklist threshold is below the bucketing threshold of 7, so
// it cannot swallow the broader message space the classifier should see.
func TestNoiseFilterTighterThanClassifierThreshold(t *testing.T) {
	f := NewNoiseFilter(0)
	f.Blacklist("periodic agent heartbeat 12345 ok, no error, interval 99 usec")
	// Distance > 3 but < 7: would join a classification bucket, must NOT
	// be blacklisted.
	msg := "periodic agent heartbeat 99 degraded, one error, interval 99 usec"
	if f.Matches(msg) {
		t.Error("noise filter swallowed a message beyond its tight threshold")
	}
}

// TestNoiseFilterInPipeline runs the §5.1 deployment shape: blacklist ->
// classify; blacklisted chatter never reaches the service.
func TestNoiseFilterInPipeline(t *testing.T) {
	c := smallCorpus(t, 1500)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	svc := &Service{Classifier: tc}
	f := NewNoiseFilter(0)
	f.Blacklist("periodic agent heartbeat 11111 ok, no error, interval 22222 usec")

	records := []collector.Record{
		noiseRecord("periodic agent heartbeat 11119 ok, no error, interval 22223 usec"),
		noiseRecord("CPU 9 temperature above threshold, cpu clock throttled"),
	}
	kept := 0
	for _, r := range records {
		if out, keep := f.Apply(r); keep {
			kept++
			if err := svc.Write(context.Background(), []collector.Record{out}); err != nil {
				t.Fatal(err)
			}
		}
	}
	classified, _ := svc.Counts()
	if kept != 1 || classified != 1 {
		t.Errorf("kept=%d classified=%d, want 1/1", kept, classified)
	}
}
