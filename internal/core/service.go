package core

import (
	"sync"
	"sync/atomic"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/ml/markov"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

// Service is the deployed system: each incoming record is classified in
// real time, indexed into Tivan with its category (so every §4.5 view can
// group by it), and routed to the alert manager when actionable. It
// implements collector.Sink, slotting directly into the collection
// pipeline as the terminal stage.
type Service struct {
	Classifier *TextClassifier
	Store      *store.Store
	Alerts     *monitor.AlertManager
	// Sequences optionally watches each node's category sequence with a
	// fitted markov.SequenceDetector (related work [15]): nodes whose
	// event *dynamics* become improbable fire OnSequenceAnomaly even when
	// every individual message is routine.
	Sequences         *markov.SequenceDetector
	OnSequenceAnomaly func(node string, surprise float64)

	seqMu      sync.Mutex
	classified atomic.Int64
	actionable atomic.Int64
	seqAnoms   atomic.Int64
}

// Write implements collector.Sink.
func (s *Service) Write(batch []collector.Record) error {
	for _, r := range batch {
		s.handle(r)
	}
	return nil
}

func (s *Service) handle(r collector.Record) {
	if r.Msg == nil {
		return
	}
	cat := s.Classifier.ClassifyCategory(r.Msg.Content)
	s.classified.Add(1)
	if taxonomy.Actionable(cat) {
		s.actionable.Add(1)
	}
	if s.Store != nil {
		doc := collector.RecordToDoc(r)
		doc.Fields["category"] = string(cat)
		s.Store.Index(doc)
	}
	if s.Alerts != nil {
		t := r.Time
		if t.IsZero() {
			t = r.Msg.Timestamp
		}
		s.Alerts.Consider(cat, r.Msg.Hostname, r.Msg.Content, t)
	}
	if s.Sequences != nil {
		if state := s.categoryIndex(cat); state >= 0 {
			s.seqMu.Lock()
			surprise, anomalous, err := s.Sequences.Observe(r.Msg.Hostname, state)
			s.seqMu.Unlock()
			if err == nil && anomalous {
				s.seqAnoms.Add(1)
				if s.OnSequenceAnomaly != nil {
					s.OnSequenceAnomaly(r.Msg.Hostname, surprise)
				}
			}
		}
	}
}

// categoryIndex maps a category to its index in the classifier's label
// set (the Markov chain's state alphabet), or -1.
func (s *Service) categoryIndex(cat taxonomy.Category) int {
	for i, l := range s.Classifier.Labels {
		if l == string(cat) {
			return i
		}
	}
	return -1
}

// SequenceAnomalies returns how many per-node sequence anomalies fired.
func (s *Service) SequenceAnomalies() int64 { return s.seqAnoms.Load() }

// Counts reports how many records were classified and how many fell into
// actionable categories.
func (s *Service) Counts() (classified, actionable int64) {
	return s.classified.Load(), s.actionable.Load()
}
