package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/ml/markov"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/obs"
	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

// Service is the deployed system: each incoming record is classified in
// real time, indexed into Tivan with its category (so every §4.5 view can
// group by it), and routed to the alert manager when actionable. It
// implements collector.Sink, slotting directly into the collection
// pipeline as the terminal stage.
//
// Concurrency: Write is safe for concurrent use (e.g. from a pipeline
// with FlushWorkers > 1). The classification path — Preprocessor.Process,
// Vectorizer.Transform, Classifier.Predict — is read-only after Train,
// the store and alert manager lock internally, and the one stateful
// component (the sequence detector) is serialized behind seqMu. Within
// one Write call, alerting and sequence observation happen in batch
// order on the calling goroutine, so a Notifier only sees concurrent
// calls when Write itself is called concurrently.
// DocIndexer receives a service's classified documents when they are
// routed somewhere other than the local Store — e.g. a multi-node
// cluster router (internal/cluster satisfies this without the import).
// IndexBatch must be safe to retry: the pipeline redelivers the whole
// batch on error, preferring duplicates to loss.
type DocIndexer interface {
	IndexBatch(ctx context.Context, docs []store.Doc) error
}

type Service struct {
	Classifier *TextClassifier
	Store      *store.Store
	// Indexer, when set, takes precedence over Store as the destination
	// for classified documents. Unlike the in-process Store it can fail;
	// Write surfaces the error so the pipeline's retry/breaker/spool
	// machinery applies. Alerting may re-fire on a redelivered batch (the
	// per-category cooldown mutes the repeats).
	Indexer DocIndexer
	Alerts  *monitor.AlertManager
	// Sequences optionally watches each node's category sequence with a
	// fitted markov.SequenceDetector (related work [15]): nodes whose
	// event *dynamics* become improbable fire OnSequenceAnomaly even when
	// every individual message is routine.
	Sequences         *markov.SequenceDetector
	OnSequenceAnomaly func(node string, surprise float64)

	// Workers sets how many goroutines classify each batch passed to
	// Write (0 defaults to runtime.GOMAXPROCS(0), negative or 1 forces
	// the serial path). Classification, indexing and alerting fan out;
	// sequence observation stays in batch order regardless.
	Workers int

	// Cache, when set, short-circuits classification of repeated and
	// templated messages (see ClassifyCache). The cache caches *model
	// outputs*: swap or retrain the classifier and this cache must be
	// replaced with it. Set before the first Write; safe under
	// Workers > 1 and concurrent Writes. Whether or not a cache is set,
	// the service classifies through the pooled-scratch zero-allocation
	// path (ProcessInto/TransformInto).
	Cache *ClassifyCache

	// Metrics optionally publishes the service's counters and the
	// per-record classify-latency histogram into a shared registry; set
	// it before the first Write. Left nil the counters still run
	// standalone (Counts() stays exact) and the latency histogram — the
	// only instrument that would add time.Now calls to the hot path — is
	// disabled entirely, so an unobserved service pays nothing.
	Metrics *obs.Registry

	metricsOnce  sync.Once
	metricsReady atomic.Bool
	classified   *obs.Counter
	actionable   *obs.Counter
	seqAnoms     *obs.Counter
	classifyLat  *obs.Histogram

	cacheHitsRaw    *obs.Counter
	cacheHitsMasked *obs.Counter
	cacheMisses     *obs.Counter

	// scratchPool hands each classifying goroutine a reusable
	// ClassifyScratch so the steady-state hot path allocates nothing.
	scratchPool sync.Pool

	// docsPool recycles the []store.Doc staging slice Write uses to hand
	// a whole classified batch to Store.IndexBatch in one call — one
	// id-range reservation and one lock per shard per batch, replacing
	// the per-record Store.Index mutex/lock pair that dominated the
	// socket→store profile.
	docsPool sync.Pool

	seqMu sync.Mutex

	catIdxOnce sync.Once
	catIdx     map[taxonomy.Category]int
}

// initMetrics lazily creates the service's metrics — inside Metrics when
// set, standalone otherwise. The classify-latency histogram only exists
// with a live registry: timing every record is the one instrumentation
// cost worth gating.
func (s *Service) initMetrics() {
	// Fast path without the Do closure: constructing the capturing func
	// value costs one small allocation per call, which would be the only
	// allocation left on the cached classify path.
	if s.metricsReady.Load() {
		return
	}
	s.metricsOnce.Do(func() {
		defer s.metricsReady.Store(true)
		s.classified = s.Metrics.Counter("service_classified_total",
			"records classified in real time")
		s.actionable = s.Metrics.Counter("service_actionable_total",
			"records classified into actionable categories")
		s.seqAnoms = s.Metrics.Counter("service_sequence_anomalies_total",
			"per-node sequence anomalies fired")
		if s.Metrics != nil {
			s.classifyLat = s.Metrics.Histogram("service_classify_seconds",
				"per-record classify latency (indexing is timed by store_index_batch_seconds)",
				obs.LatencyBuckets)
		}
		if s.Cache != nil {
			s.cacheHitsRaw = s.Metrics.Counter(`service_cache_hits_total{level="raw"}`,
				"classifications answered by the cache, by level")
			s.cacheHitsMasked = s.Metrics.Counter(`service_cache_hits_total{level="masked"}`,
				"classifications answered by the cache, by level")
			s.cacheMisses = s.Metrics.Counter("service_cache_misses_total",
				"classifications that ran the model (both cache levels missed)")
			s.Cache.rawEvictions = s.Metrics.Counter(`service_cache_evictions_total{level="raw"}`,
				"classify cache LRU evictions, by level")
			s.Cache.maskedEvictions = s.Metrics.Counter(`service_cache_evictions_total{level="masked"}`,
				"classify cache LRU evictions, by level")
			if s.Metrics != nil {
				s.Metrics.GaugeFuncFloat("service_cache_hit_ratio",
					"fraction of classifications answered by either cache level",
					func() float64 {
						hits := s.cacheHitsRaw.Value() + s.cacheHitsMasked.Value()
						total := hits + s.cacheMisses.Value()
						if total == 0 {
							return 0
						}
						return float64(hits) / float64(total)
					})
			}
		}
	})
}

// minParallelBatch is the batch size below which fan-out overhead
// outweighs the parallel speedup and Write stays serial.
const minParallelBatch = 8

// Write implements collector.Sink. Classification and indexing are
// in-memory, so ctx is only checked on entry: a batch whose write
// context already expired is refused whole (safe to redeliver), never
// half-classified.
func (s *Service) Write(ctx context.Context, batch []collector.Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.initMetrics()
	workers := s.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	hasSink := s.Store != nil || s.Indexer != nil
	if workers <= 1 || len(batch) < minParallelBatch {
		if !hasSink {
			for _, r := range batch {
				cat, ok := s.classify(r)
				if ok {
					s.finish(r, cat)
				}
			}
			return nil
		}
		docs := s.getDocs(len(batch))
		j := 0
		for _, r := range batch {
			cat, ok := s.classify(r)
			if !ok {
				continue
			}
			buildDocInto(&docs[j], r, cat)
			j++
			s.finish(r, cat)
		}
		err := s.indexDocs(ctx, docs[:j])
		s.putDocs(docs)
		return err
	}

	// Parallel phase: classification fans out; records are striped across
	// workers so each goroutine writes a disjoint subset of cats (and doc
	// slots, when a store is attached).
	cats := make([]taxonomy.Category, len(batch))
	valid := make([]bool, len(batch))
	var docs []store.Doc
	if hasSink {
		docs = s.getDocs(len(batch))
	}
	var wg sync.WaitGroup
	// The goroutine closures capture stride, not workers: capturing the
	// latter would move it to the heap and cost the serial path — the
	// cached zero-allocation path — one allocation per Write.
	stride := workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(batch); i += stride {
				cats[i], valid[i] = s.classify(batch[i])
				if valid[i] && docs != nil {
					buildDocInto(&docs[i], batch[i], cats[i])
				}
			}
		}(w)
	}
	wg.Wait()

	// Batched index handoff: the whole classified batch reaches the store
	// in one IndexBatch call (invalid slots compacted away first), so
	// parallel workers never contend on shard locks record by record.
	if docs != nil {
		j := 0
		for i := range docs {
			if valid[i] {
				// Swap rather than copy: every slot keeps a distinct Fields
				// backing array, which putDocs preserves for the next batch.
				docs[j], docs[i] = docs[i], docs[j]
				j++
			}
		}
		err := s.indexDocs(ctx, docs[:j])
		s.putDocs(docs)
		if err != nil {
			// Refused before the alert phase: a redelivered batch re-runs
			// classification but has not double-fired notifications.
			return err
		}
	}

	// Serial phase: alerting and the per-node Markov chains run in batch
	// order on this goroutine, so parallel classification can neither
	// permute a node's event sequence nor call the Notifier concurrently.
	if s.Alerts != nil || s.Sequences != nil {
		for i, r := range batch {
			if valid[i] {
				s.finish(r, cats[i])
			}
		}
	}
	return nil
}

// indexDocs delivers classified documents to the Indexer when one is
// set, else to the local Store (which cannot fail).
func (s *Service) indexDocs(ctx context.Context, docs []store.Doc) error {
	if s.Indexer != nil {
		return s.Indexer.IndexBatch(ctx, docs)
	}
	s.Store.IndexBatch(docs)
	return nil
}

// getDocs takes the pooled doc staging slice, sized to n slots. Slots
// come back from putDocs with their Fields backing arrays intact, so a
// steady-state batch conversion allocates nothing.
func (s *Service) getDocs(n int) []store.Doc {
	var docs []store.Doc
	if v := s.docsPool.Get(); v != nil {
		docs = *(v.(*[]store.Doc))
	}
	if cap(docs) < n {
		docs = make([]store.Doc, n)
	}
	return docs[:n]
}

// putDocs recycles the staging slice, scrubbing each slot so pooled
// capacity does not pin message strings — but keeping each slot's Fields
// backing array (contents cleared) for the next batch. The store copied
// everything it retains before this is called.
func (s *Service) putDocs(docs []store.Doc) {
	if cap(docs) == 0 {
		return
	}
	docs = docs[:cap(docs)]
	for i := range docs {
		f := docs[i].Fields
		clear(f[:cap(f)])
		docs[i] = store.Doc{Fields: f[:0]}
	}
	docs = docs[:0]
	s.docsPool.Put(&docs)
}

// buildDocInto converts one classified record into *d (reusing d.Fields'
// backing array), with the predicted category stamped as a queryable
// field.
func buildDocInto(d *store.Doc, r collector.Record, cat taxonomy.Category) {
	collector.RecordToDocInto(r, d)
	d.Fields = d.Fields.Set("category", string(cat))
}

// classify runs the order-independent part of the hot path for one
// record: predict the category and count it. It reports the category and
// whether the record carried a message. Indexing is no longer here — the
// caller batches the whole Write into one Store.IndexBatch call, so
// service_classify_seconds now times classification alone and the index
// stage is attributed separately by store_index_batch_seconds.
func (s *Service) classify(r collector.Record) (taxonomy.Category, bool) {
	if r.Msg == nil {
		return "", false
	}
	// Detector-injected alert records arrive pre-labeled
	// (Meta["category"], set by internal/detect): a valid label skips
	// the model so the alert is stored under the category the detector
	// chose, not whatever the classifier makes of the alert text.
	if pre, ok := r.Meta["category"]; ok {
		if cat := taxonomy.Category(pre); taxonomy.Valid(cat) {
			s.classified.Inc()
			if taxonomy.Actionable(cat) {
				s.actionable.Inc()
			}
			return cat, true
		}
	}
	var start time.Time
	if s.classifyLat != nil {
		start = time.Now()
	}
	cat := s.predictCategory(r.Msg.Content)
	s.classified.Inc()
	if taxonomy.Actionable(cat) {
		s.actionable.Inc()
	}
	if s.classifyLat != nil {
		s.classifyLat.ObserveDuration(time.Since(start))
	}
	return cat, true
}

// predictCategory runs the cached, scratch-pooled classify fast path for
// one message: exact-repeat cache, tokenize into per-worker scratch,
// template-family cache, then vectorize + predict only on a full miss.
func (s *Service) predictCategory(text string) taxonomy.Category {
	sc, _ := s.scratchPool.Get().(*ClassifyScratch)
	if sc == nil {
		sc = &ClassifyScratch{}
	}
	label, outcome := s.Classifier.PredictCached(text, s.Cache, sc)
	s.scratchPool.Put(sc)
	if s.Cache != nil {
		switch outcome {
		case CacheHitRaw:
			s.cacheHitsRaw.Inc()
		case CacheHitMasked:
			s.cacheHitsMasked.Inc()
		default:
			s.cacheMisses.Inc()
		}
	}
	return taxonomy.Category(s.Classifier.Labels[label])
}

// CategoryOf classifies one message text through the cached fast path
// and returns its category. It is the hook the streaming detection stage
// (internal/detect) uses to key rate baselines on the same model the
// sink applies; the classify cache is shared, so a detector lookup is
// usually a raw-cache hit the sink's own classify then reuses.
func (s *Service) CategoryOf(text string) taxonomy.Category {
	s.initMetrics()
	return s.predictCategory(text)
}

// CacheStats reports the cache counters (hits by level, misses) — reads
// of the same atomics /metrics exports. All zero when no cache is set.
func (s *Service) CacheStats() (rawHits, maskedHits, misses int64) {
	s.initMetrics()
	return s.cacheHitsRaw.Value(), s.cacheHitsMasked.Value(), s.cacheMisses.Value()
}

// finish runs the order-sensitive tail for one classified record:
// alert cooldown bookkeeping, then the sequence detector.
func (s *Service) finish(r collector.Record, cat taxonomy.Category) {
	// Detector-injected alerts were already routed through the alert
	// manager by the detector (with confidence attached), and they are
	// synthetic — not part of the host's real message sequence — so both
	// tails skip them: a second Consider would double-alert and a
	// synthetic record would pollute the host's Markov sequence.
	if r.Meta["detector"] != "" {
		return
	}
	if s.Alerts != nil {
		t := r.Time
		if t.IsZero() {
			t = r.Msg.Timestamp
		}
		s.Alerts.Consider(cat, r.Msg.Hostname, r.Msg.Content, t)
	}
	if s.Sequences == nil {
		return
	}
	state, ok := s.categoryIndex(cat)
	if !ok {
		return
	}
	s.seqMu.Lock()
	surprise, anomalous, err := s.Sequences.Observe(r.Msg.Hostname, state)
	s.seqMu.Unlock()
	if err == nil && anomalous {
		s.seqAnoms.Inc()
		if s.OnSequenceAnomaly != nil {
			s.OnSequenceAnomaly(r.Msg.Hostname, surprise)
		}
	}
}

// categoryIndex maps a category to its index in the classifier's label
// set (the Markov chain's state alphabet). The map is built once from
// Classifier.Labels on first use; Labels must not change afterwards.
func (s *Service) categoryIndex(cat taxonomy.Category) (int, bool) {
	s.catIdxOnce.Do(func() {
		s.catIdx = make(map[taxonomy.Category]int, len(s.Classifier.Labels))
		for i, l := range s.Classifier.Labels {
			s.catIdx[taxonomy.Category(l)] = i
		}
	})
	i, ok := s.catIdx[cat]
	return i, ok
}

// SequenceAnomalies returns how many per-node sequence anomalies fired.
func (s *Service) SequenceAnomalies() int64 {
	s.initMetrics()
	return s.seqAnoms.Value()
}

// Counts reports how many records were classified and how many fell into
// actionable categories — reads of the same counters /metrics exports.
// The sync.Once in initMetrics orders these reads against a concurrent
// first Write's lazy metric creation.
func (s *Service) Counts() (classified, actionable int64) {
	s.initMetrics()
	return s.classified.Value(), s.actionable.Value()
}
