package core

import (
	"context"
	"testing"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/ml/markov"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

// smallCorpus builds a scaled-down Table 2 corpus for tests.
func smallCorpus(t testing.TB, total int) *Corpus {
	t.Helper()
	g := loggen.NewGenerator(1)
	examples, err := g.Dataset(loggen.ScaledPaperCounts(total))
	if err != nil {
		t.Fatal(err)
	}
	return FromExamples(examples)
}

func TestCorpusSplitStratified(t *testing.T) {
	c := smallCorpus(t, 2000)
	train, test := c.Split(0.2, 1)
	if train.Len()+test.Len() != c.Len() {
		t.Fatalf("split lost samples: %d + %d != %d", train.Len(), test.Len(), c.Len())
	}
	// Every category must appear in train.
	seen := map[string]bool{}
	for _, l := range train.Labels {
		seen[l] = true
	}
	if len(seen) != 8 {
		t.Errorf("train covers %d categories, want 8", len(seen))
	}
}

func TestTrainAndClassify(t *testing.T) {
	c := smallCorpus(t, 2000)
	train, test := c.Split(0.2, 1)
	model, err := NewModel("Complement Naive Bayes")
	if err != nil {
		t.Fatal(err)
	}
	tc, err := Train(model, train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tc.TrainTime <= 0 {
		t.Error("TrainTime not recorded")
	}
	res, err := tc.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedF1 < 0.95 {
		t.Errorf("weighted F1 = %.4f, want > 0.95 (paper: all models > 0.95)", res.WeightedF1)
	}
	if res.TestTime <= 0 {
		t.Error("TestTime not recorded")
	}
	// Spot-check an easy message.
	if got := tc.Classify("CPU 5 Temperature Above Non-Recoverable - Asserted. Current temperature: 97C"); got != string(taxonomy.ThermalIssue) {
		t.Errorf("thermal message classified as %q", got)
	}
}

func TestTrainEmptyCorpusErrors(t *testing.T) {
	model, _ := NewModel("kNN")
	if _, err := Train(model, &Corpus{}, DefaultOptions()); err == nil {
		t.Error("empty corpus should error")
	}
}

func TestEvaluateUnseenLabelErrors(t *testing.T) {
	c := smallCorpus(t, 1500)
	model, _ := NewModel("Nearest Centroid")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := &Corpus{Texts: []string{"x"}, Labels: []string{"Novel Category"}}
	if _, err := tc.Evaluate(bad); err == nil {
		t.Error("unseen label should error")
	}
}

func TestNewModelRegistry(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := NewModel(name)
		if err != nil {
			t.Errorf("NewModel(%q): %v", name, err)
			continue
		}
		if m.Name() != name {
			t.Errorf("NewModel(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := NewModel("Perceptron"); err == nil {
		t.Error("unknown model should error")
	}
	if len(ModelNames()) != 8 {
		t.Errorf("registry has %d models, want 8 (Figure 3)", len(ModelNames()))
	}
}

func TestLemmaAblationOption(t *testing.T) {
	c := smallCorpus(t, 1500)
	train, test := c.Split(0.2, 3)
	model, _ := NewModel("Complement Naive Bayes")
	with, err := Train(model, train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	model2, _ := NewModel("Complement Naive Bayes")
	opts := DefaultOptions()
	opts.SkipLemmas = true
	without, err := Train(model2, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := with.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := without.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// Both must work; lemmatization shrinks the vocabulary.
	if with.Vectorizer.Dims() >= without.Vectorizer.Dims() {
		t.Errorf("lemmatized vocab %d should be smaller than raw %d",
			with.Vectorizer.Dims(), without.Vectorizer.Dims())
	}
	if r1.WeightedF1 < 0.9 || r2.WeightedF1 < 0.9 {
		t.Errorf("ablation F1s: with=%.3f without=%.3f", r1.WeightedF1, r2.WeightedF1)
	}
}

func TestServiceEndToEnd(t *testing.T) {
	// Train on generated data.
	c := smallCorpus(t, 2000)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	st := store.New(2)
	var alerts []monitor.Alert
	am := &monitor.AlertManager{Notifier: monitor.NotifierFunc(func(a monitor.Alert) {
		alerts = append(alerts, a)
	})}
	svc := &Service{Classifier: tc, Store: st, Alerts: am}

	// Feed a stream through a collector pipeline ending in the service.
	g := loggen.NewGenerator(99)
	ch := make(chan collector.Record)
	p := &collector.Pipeline{
		Source:    &collector.ChannelSource{Ch: ch},
		Sink:      svc,
		BatchSize: 16,
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	var sentThermal bool
	for i := 0; i < 200; i++ {
		ex := g.Example()
		if ex.Category == taxonomy.ThermalIssue {
			sentThermal = true
		}
		ch <- collector.Record{Tag: "syslog", Time: ex.Time, Msg: ex.Message()}
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	classified, actionable := svc.Counts()
	if classified != 200 {
		t.Fatalf("classified = %d", classified)
	}
	if st.Count() != 200 {
		t.Fatalf("stored = %d", st.Count())
	}
	if sentThermal && actionable == 0 {
		t.Error("no actionable classifications despite thermal traffic")
	}
	// Stored docs carry the category field, queryable per §4.5 views.
	cats := st.Terms(store.MatchAll{}, "category", 0)
	if len(cats) < 2 {
		t.Errorf("category terms = %+v", cats)
	}
	if sentThermal && len(alerts) == 0 {
		t.Error("no alerts emitted")
	}
	// Nil-message records are ignored.
	if err := svc.Write(context.Background(), []collector.Record{{}}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceClassificationLatency(t *testing.T) {
	// The headline claim: traditional models classify fast enough for the
	// message stream (>> Falcon's 1648-5633 msgs/hour).
	c := smallCorpus(t, 2000)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 2000
	g := loggen.NewGenerator(5)
	msgs := make([]string, n)
	for i := range msgs {
		msgs[i] = g.Example().Text
	}
	gen := time.Since(start)
	start = time.Now()
	for _, m := range msgs {
		tc.Classify(m)
	}
	elapsed := time.Since(start)
	perMsg := elapsed / n
	if perMsg > time.Millisecond {
		t.Errorf("per-message classify = %v (gen %v); must beat 1ms to sustain >1M msgs/hour", perMsg, gen)
	}
}

// TestServiceSequenceAnomaly wires the Markov sequence detector into the
// service: a node stuck in a memory-error loop must trigger the anomaly
// callback even though each message is individually well-classified.
func TestServiceSequenceAnomaly(t *testing.T) {
	c := smallCorpus(t, 2000)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Train the chain on healthy per-node sequences sampled from the
	// generator's background mix (mostly Unimportant with scattered
	// issues).
	g := loggen.NewGenerator(71)
	labelIdx := map[string]int{}
	for i, l := range tc.Labels {
		labelIdx[l] = i
	}
	perNode := map[string][]int{}
	for i := 0; i < 4000; i++ {
		ex := g.Example()
		perNode[ex.Node.Name] = append(perNode[ex.Node.Name], labelIdx[string(ex.Category)])
	}
	var seqs [][]int
	for _, s := range perNode {
		if len(s) >= 8 {
			seqs = append(seqs, s)
		}
	}
	chain := markov.NewChain(len(tc.Labels))
	if err := chain.Fit(seqs); err != nil {
		t.Fatal(err)
	}
	det := markov.NewSequenceDetector(chain, 8)
	if err := det.Calibrate(seqs, 1.1); err != nil {
		t.Fatal(err)
	}

	var anomalousNodes []string
	svc := &Service{
		Classifier: tc,
		Sequences:  det,
		OnSequenceAnomaly: func(node string, surprise float64) {
			anomalousNodes = append(anomalousNodes, node)
		},
	}

	// Healthy traffic: no (or almost no) anomalies.
	var recs []collector.Record
	for i := 0; i < 400; i++ {
		ex := g.Example()
		recs = append(recs, collector.Record{Time: ex.Time, Msg: ex.Message()})
	}
	if err := svc.Write(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	healthyAnoms := svc.SequenceAnomalies()

	// A wedged node: an unbroken run of memory errors.
	bad := g.Cluster.Nodes[5]
	var badRecs []collector.Record
	for _, ex := range g.Burst(taxonomy.MemoryIssue, bad, 30, 0) {
		badRecs = append(badRecs, collector.Record{Time: ex.Time, Msg: ex.Message()})
	}
	if err := svc.Write(context.Background(), badRecs); err != nil {
		t.Fatal(err)
	}
	if svc.SequenceAnomalies() <= healthyAnoms {
		t.Fatal("memory-error loop never flagged as a sequence anomaly")
	}
	found := false
	for _, n := range anomalousNodes {
		if n == bad.Name {
			found = true
		}
	}
	if !found {
		t.Errorf("anomalous nodes %v missing %s", anomalousNodes, bad.Name)
	}
}
