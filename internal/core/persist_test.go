package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestSaveLoadAllModels round-trips every registry model through
// serialization and verifies prediction equivalence.
func TestSaveLoadAllModels(t *testing.T) {
	c := smallCorpus(t, 1500)
	train, test := c.Split(0.2, 1)
	for _, name := range ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			model, err := NewModel(name)
			if err != nil {
				t.Fatal(err)
			}
			tc, err := Train(model, train, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tc.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadClassifier(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Model.Name() != name {
				t.Fatalf("restored model = %q", loaded.Model.Name())
			}
			for i, text := range test.Texts {
				if i >= 200 {
					break
				}
				if got, want := loaded.Classify(text), tc.Classify(text); got != want {
					t.Fatalf("restored %s diverges on %q: %q vs %q", name, text, got, want)
				}
			}
		})
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	c := smallCorpus(t, 1500)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := tc.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifierFile(path)
	if err != nil {
		t.Fatal(err)
	}
	msg := "CPU 9 Temperature Above Non-Recoverable - Asserted. Current temperature: 98C"
	if loaded.Classify(msg) != tc.Classify(msg) {
		t.Error("file round trip diverges")
	}
	if _, err := LoadClassifierFile(filepath.Join(t.TempDir(), "absent.bin")); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadClassifierCorrupt(t *testing.T) {
	if _, err := LoadClassifier(strings.NewReader("not a gob stream")); err == nil {
		t.Error("corrupt stream should error")
	}
}

func TestSaveLoadPreservesAblationFlags(t *testing.T) {
	c := smallCorpus(t, 1500)
	model, _ := NewModel("Nearest Centroid")
	opts := DefaultOptions()
	opts.SkipLemmas = true
	tc, err := Train(model, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Prep.SkipLemmas {
		t.Error("SkipLemmas flag lost in round trip")
	}
}

func TestCorpusTSVRoundTrip(t *testing.T) {
	c := &Corpus{}
	c.Append("CPU 3 throttled", "Thermal Issue")
	c.Append("usb 1-1: new device", "USB-Device")
	var buf bytes.Buffer
	if err := c.WriteCorpusTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpusTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Labels[0] != "Thermal Issue" || got.Texts[1] != "usb 1-1: new device" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestReadCorpusTSVMultiColumn(t *testing.T) {
	// cmd/loggen -dataset emits category<TAB>node<TAB>arch<TAB>text.
	in := "Thermal Issue\tcn001\tx86_64-dell\tCPU 3 throttled\n\nUSB-Device\tcn002\tarm\tusb attach\n"
	c, err := ReadCorpusTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Texts[0] != "CPU 3 throttled" {
		t.Errorf("parsed = %+v", c)
	}
}

func TestReadCorpusTSVErrors(t *testing.T) {
	if _, err := ReadCorpusTSV(strings.NewReader("only-one-field\n")); err == nil {
		t.Error("missing tab should error")
	}
	if _, err := ReadCorpusTSV(strings.NewReader("\ttext-without-label\n")); err == nil {
		t.Error("empty label should error")
	}
	if _, err := ReadCorpusTSVFile("/nonexistent/x.tsv"); err == nil {
		t.Error("missing file should error")
	}
}
