package core

import (
	"encoding"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"hetsyslog/internal/textproc"
	"hetsyslog/internal/tfidf"
)

// pipelineState is the serialized form of a trained TextClassifier:
// everything needed to classify on another machine or after a restart —
// the §7 deployment scenario ("deploying our trained models on the new
// data we stored in our collection system").
type pipelineState struct {
	ModelName     string
	ModelBlob     []byte
	Vectorizer    []byte
	Labels        []string
	KeepStopwords bool
	SkipLemmas    bool
}

// Save writes the fitted pipeline to w. The model must support binary
// marshaling (all eight registry models do).
func (tc *TextClassifier) Save(w io.Writer) error {
	bm, ok := tc.Model.(encoding.BinaryMarshaler)
	if !ok {
		return fmt.Errorf("core: model %s is not serializable", tc.Model.Name())
	}
	modelBlob, err := bm.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: serialize model: %w", err)
	}
	vzBlob, err := tc.Vectorizer.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: serialize vectorizer: %w", err)
	}
	st := pipelineState{
		ModelName:     tc.Model.Name(),
		ModelBlob:     modelBlob,
		Vectorizer:    vzBlob,
		Labels:        tc.Labels,
		KeepStopwords: tc.Prep.KeepStopwords,
		SkipLemmas:    tc.Prep.SkipLemmas,
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadClassifier restores a pipeline previously written by Save.
func LoadClassifier(r io.Reader) (*TextClassifier, error) {
	var st pipelineState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decode pipeline: %w", err)
	}
	model, err := NewModel(st.ModelName)
	if err != nil {
		return nil, err
	}
	bu, ok := model.(encoding.BinaryUnmarshaler)
	if !ok {
		return nil, fmt.Errorf("core: model %s is not deserializable", st.ModelName)
	}
	if err := bu.UnmarshalBinary(st.ModelBlob); err != nil {
		return nil, fmt.Errorf("core: restore model: %w", err)
	}
	vz := &tfidf.Vectorizer{}
	if err := vz.UnmarshalBinary(st.Vectorizer); err != nil {
		return nil, fmt.Errorf("core: restore vectorizer: %w", err)
	}
	prep := textproc.NewPreprocessor()
	prep.KeepStopwords = st.KeepStopwords
	prep.SkipLemmas = st.SkipLemmas
	return &TextClassifier{
		Prep: prep, Vectorizer: vz, Model: model, Labels: st.Labels,
	}, nil
}

// SaveFile persists the pipeline to path (atomic temp-file + rename).
func (tc *TextClassifier) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := tc.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadClassifierFile restores a pipeline from a SaveFile artifact.
func LoadClassifierFile(path string) (*TextClassifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadClassifier(f)
}
