package core

import (
	"strings"
	"sync"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/textproc"
	"hetsyslog/internal/tfidf"
)

// ClassifyCache exploits syslog's extreme repetitiveness (§4.4.1: 3,415
// bucket exemplars covered 196k messages) to make repeated
// classifications near-free. It is a sharded, bounded LRU with two
// levels, both mapping to a predicted label index:
//
//   - level 1 ("raw") keys on the exact message text, so an identical
//     repeat skips tokenization entirely and classifies with zero
//     allocations;
//   - level 2 ("masked") keys on the fully preprocessed token stream.
//     Numbers, hex IDs and IPs are already collapsed to mask tokens by
//     then, so one entry serves a whole template family ("CPU 7
//     throttled" and "CPU 23 throttled" share a key) and a level-2 hit
//     skips vectorization and model prediction.
//
// The cache MUST sit after masking — keying template families on raw
// variable values (distinct IPs, PIDs, temperatures) would fragment it
// into one entry per message. Level 1 is the exception: exact repeats
// are so common in syslog (storms, heartbeats) that the unmasked key
// pays for itself, and a level-2 hit immediately promotes into level 1.
//
// All methods are safe for concurrent use; each shard serializes on its
// own mutex so Workers > 1 classification scales. Entries are never
// invalidated by time: a cache in front of a drifting or retrained model
// must be discarded with the model (build a fresh one via
// NewClassifyCache) or disabled outright.
type ClassifyCache struct {
	raw    []cacheShard
	masked []cacheShard
	mask   uint64

	// Eviction counters, wired by Service.initMetrics when the cache is
	// attached to a service (standalone nil-safe otherwise).
	rawEvictions    *obs.Counter
	maskedEvictions *obs.Counter
}

// Cache sizing defaults: 8 shards balances lock contention against
// per-shard LRU quality; 32768 entries per level is a few MiB for
// typical message sizes while holding vastly more templates than the
// paper's corpus exhibited.
const (
	DefaultCacheShards = 8
	DefaultCacheSize   = 32768
)

// NewClassifyCache returns a cache with the given shard count (rounded up
// to a power of two) and total entry budget per level. Zero or negative
// arguments select the defaults.
func NewClassifyCache(shards, entriesPerLevel int) *ClassifyCache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	shards = n
	if entriesPerLevel <= 0 {
		entriesPerLevel = DefaultCacheSize
	}
	per := (entriesPerLevel + shards - 1) / shards
	c := &ClassifyCache{
		raw:    make([]cacheShard, shards),
		masked: make([]cacheShard, shards),
		mask:   uint64(shards - 1),
	}
	for i := range c.raw {
		c.raw[i].cap = per
		c.masked[i].cap = per
	}
	return c
}

// LookupRaw returns the cached label for an exact message text.
func (c *ClassifyCache) LookupRaw(msg string) (int, bool) {
	return c.raw[hashString(msg)&c.mask].get(msg)
}

// StoreRaw caches the label for an exact message text.
func (c *ClassifyCache) StoreRaw(msg string, label int) {
	if c.raw[hashString(msg)&c.mask].put(msg, label) {
		c.rawEvictions.Inc()
	}
}

// LookupMasked returns the cached label for a masked-token-stream key
// (see AppendMaskedKey). The []byte key is looked up without allocating.
func (c *ClassifyCache) LookupMasked(key []byte) (int, bool) {
	return c.masked[hashBytes(key)&c.mask].getBytes(key)
}

// StoreMasked caches the label for a masked-token-stream key, copying it.
func (c *ClassifyCache) StoreMasked(key []byte, label int) {
	if c.masked[hashBytes(key)&c.mask].putBytes(key, label) {
		c.maskedEvictions.Inc()
	}
}

// Len returns the live entry count across both levels (for tests and
// capacity monitoring).
func (c *ClassifyCache) Len() int {
	n := 0
	for i := range c.raw {
		n += c.raw[i].len() + c.masked[i].len()
	}
	return n
}

// cacheShard is one lock's worth of LRU state: a map from key to an
// intrusively linked entry, most recently used at the head.
type cacheShard struct {
	mu         sync.Mutex
	cap        int
	m          map[string]*cacheEntry
	head, tail *cacheEntry
}

type cacheEntry struct {
	key        string
	label      int
	prev, next *cacheEntry
}

func (s *cacheShard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *cacheShard) get(key string) (int, bool) {
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.moveToFront(e)
	label := e.label
	s.mu.Unlock()
	return label, true
}

// getBytes is get for a []byte key; the map index expression converts
// without allocating.
func (s *cacheShard) getBytes(key []byte) (int, bool) {
	s.mu.Lock()
	e, ok := s.m[string(key)]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.moveToFront(e)
	label := e.label
	s.mu.Unlock()
	return label, true
}

// put inserts or refreshes key -> label and reports whether an entry was
// evicted to make room.
func (s *cacheShard) put(key string, label int) bool {
	s.mu.Lock()
	evicted := s.putLocked(key, label)
	s.mu.Unlock()
	return evicted
}

// putBytes is put for a []byte key, converting to string only when an
// insert actually happens.
func (s *cacheShard) putBytes(key []byte, label int) bool {
	s.mu.Lock()
	if e, ok := s.m[string(key)]; ok {
		e.label = label
		s.moveToFront(e)
		s.mu.Unlock()
		return false
	}
	evicted := s.putLocked(string(key), label)
	s.mu.Unlock()
	return evicted
}

func (s *cacheShard) putLocked(key string, label int) bool {
	if s.m == nil {
		s.m = make(map[string]*cacheEntry, 64)
	}
	if e, ok := s.m[key]; ok {
		e.label = label
		s.moveToFront(e)
		return false
	}
	evicted := false
	if len(s.m) >= s.cap && s.tail != nil {
		lru := s.tail
		s.unlink(lru)
		delete(s.m, lru.key)
		evicted = true
	}
	// The raw level is keyed on message Content, which may be a view of a
	// pooled syslog slab that gets re-parsed once the record is released.
	// Copy the key only on a true insert — the hit/refresh paths above
	// keep the map's existing (already owned) key, so the steady state
	// stays allocation-free.
	k := strings.Clone(key)
	e := &cacheEntry{key: k, label: label}
	s.m[k] = e
	s.pushFront(e)
	return evicted
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// hashString is FNV-1a 64, inlined so shard selection never allocates.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// ClassifyScratch carries the per-worker reusable buffers for the
// zero-allocation classify path: preprocessing scratch (token slice +
// intern table), TF-IDF transform scratch, and the masked-key buffer.
// The zero value is ready to use; a scratch must not be shared between
// goroutines or between differently configured classifiers.
type ClassifyScratch struct {
	prep textproc.Scratch
	tf   tfidf.TransformScratch
	key  []byte
}

// CacheOutcome reports which cache level, if any, answered a
// PredictCached call.
type CacheOutcome int

const (
	// CacheMiss: the model ran (also the outcome when no cache is set).
	CacheMiss CacheOutcome = iota
	// CacheHitRaw: answered by the exact-message level; zero allocations.
	CacheHitRaw
	// CacheHitMasked: answered by the masked-token-stream level after
	// tokenization; vectorize and predict were skipped.
	CacheHitMasked
)

// PredictCached classifies text and returns the predicted label index
// (into tc.Labels) plus the cache outcome. c may be nil, in which case
// the call still runs the zero-allocation scratch path but never caches.
// Safe for concurrent use with per-goroutine scratches after Train.
func (tc *TextClassifier) PredictCached(text string, c *ClassifyCache, sc *ClassifyScratch) (int, CacheOutcome) {
	if c != nil {
		if label, ok := c.LookupRaw(text); ok {
			return label, CacheHitRaw
		}
	}
	tokens := tc.Prep.ProcessInto(text, &sc.prep)
	if c != nil {
		sc.key = AppendMaskedKey(sc.key[:0], tokens)
		if label, ok := c.LookupMasked(sc.key); ok {
			// Promote into level 1 so the next identical repeat is a
			// zero-allocation hit.
			c.StoreRaw(text, label)
			return label, CacheHitMasked
		}
	}
	label := tc.Model.Predict(tc.Vectorizer.TransformInto(tokens, &sc.tf))
	if c != nil {
		c.StoreMasked(sc.key, label)
		c.StoreRaw(text, label)
	}
	return label, CacheMiss
}

// AppendMaskedKey joins the processed token stream into dst with 0x1F
// (unit separator — never part of a token, since the tokenizer splits on
// non-alphanumerics) as the level-2 cache key.
func AppendMaskedKey(dst []byte, tokens []string) []byte {
	for i, t := range tokens {
		if i > 0 {
			dst = append(dst, 0x1f)
		}
		dst = append(dst, t...)
	}
	return dst
}
