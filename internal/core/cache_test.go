package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/obs"
	"hetsyslog/internal/raceflag"
	"hetsyslog/internal/store"
)

// TestClassifyCacheLRU exercises bounded eviction: the least recently
// used raw entry leaves first, and the eviction counter counts it.
func TestClassifyCacheLRU(t *testing.T) {
	c := NewClassifyCache(1, 3)
	evictions := obs.NewCounter()
	c.rawEvictions = evictions

	c.StoreRaw("a", 0)
	c.StoreRaw("b", 1)
	c.StoreRaw("c", 2)
	if _, ok := c.LookupRaw("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a should be cached")
	}
	c.StoreRaw("d", 3)
	if _, ok := c.LookupRaw("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	for k, want := range map[string]int{"a": 0, "c": 2, "d": 3} {
		got, ok := c.LookupRaw(k)
		if !ok || got != want {
			t.Errorf("LookupRaw(%q) = (%d, %v), want (%d, true)", k, got, ok, want)
		}
	}
	if evictions.Value() != 1 {
		t.Errorf("evictions = %d, want 1", evictions.Value())
	}
	// Re-storing an existing key refreshes in place, no eviction.
	c.StoreRaw("c", 9)
	if got, _ := c.LookupRaw("c"); got != 9 {
		t.Errorf("refreshed label = %d, want 9", got)
	}
	if evictions.Value() != 1 {
		t.Errorf("refresh evicted: %d", evictions.Value())
	}
}

// TestClassifyCacheMaskedLevel checks the two-level scheme end to end:
// distinct raw messages from one template family share a masked entry,
// and a masked hit promotes into the raw level.
func TestClassifyCacheMaskedLevel(t *testing.T) {
	tc := trainSmall(t)
	c := NewClassifyCache(4, 1024)
	var sc ClassifyScratch

	msgA := "CPU 3 Temperature Above Non-Recoverable - Asserted. Current reading: 91"
	msgB := "CPU 4 Temperature Above Non-Recoverable - Asserted. Current reading: 107"

	labelA, outcome := tc.PredictCached(msgA, c, &sc)
	if outcome != CacheMiss {
		t.Fatalf("first classification outcome = %v, want miss", outcome)
	}
	// Same template, different values: masked hit (numbers are masked).
	labelB, outcome := tc.PredictCached(msgB, c, &sc)
	if outcome != CacheHitMasked {
		t.Errorf("template variant outcome = %v, want masked hit", outcome)
	}
	if labelA != labelB {
		t.Errorf("template variants got labels %d and %d", labelA, labelB)
	}
	// The masked hit promoted msgB: exact repeat is now a raw hit.
	if _, outcome = tc.PredictCached(msgB, c, &sc); outcome != CacheHitRaw {
		t.Errorf("repeat outcome = %v, want raw hit", outcome)
	}
	// Predictions agree with the uncached pipeline.
	if want := tc.Classify(msgA); tc.Labels[labelA] != want {
		t.Errorf("cached label %q, uncached %q", tc.Labels[labelA], want)
	}
}

// TestPredictCachedNilCache: the scratch path must work and agree with
// Classify when no cache is attached.
func TestPredictCachedNilCache(t *testing.T) {
	tc := trainSmall(t)
	var sc ClassifyScratch
	msgs := []string{
		"error: Node cn042 has low real_memory size (153694 < 256000)",
		"usb 1-1.4: new high-speed USB device number 7 using xhci_hcd",
		"session opened for user root by (uid=0)",
		"",
	}
	for _, m := range msgs {
		label, outcome := tc.PredictCached(m, nil, &sc)
		if outcome != CacheMiss {
			t.Errorf("%q: outcome = %v, want miss", m, outcome)
		}
		if got, want := tc.Labels[label], tc.Classify(m); got != want {
			t.Errorf("%q: PredictCached = %q, Classify = %q", m, got, want)
		}
	}
}

// TestClassifyCacheConcurrent hammers one cache from many goroutines over
// an overlapping key space; run under -race this audits the shard locking.
func TestClassifyCacheConcurrent(t *testing.T) {
	c := NewClassifyCache(4, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := make([]byte, 0, 32)
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("msg-%d", i%300)
				if label, ok := c.LookupRaw(k); ok && label != i%300 {
					t.Errorf("LookupRaw(%q) = %d, want %d", k, label, i%300)
				}
				c.StoreRaw(k, i%300)
				key = AppendMaskedKey(key[:0], []string{"tmpl", fmt.Sprint(i % 50)})
				c.StoreMasked(key, i%50)
				if label, ok := c.LookupMasked(key); ok && label != i%50 {
					t.Errorf("LookupMasked = %d, want %d", label, i%50)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got > 2*256+2*4 { // per-level budget (+ shard rounding slack)
		t.Errorf("cache grew to %d entries, budget is 512", got)
	}
}

// TestServiceCacheMetrics checks the counters and the hit-ratio gauge
// reach /metrics exposition.
func TestServiceCacheMetrics(t *testing.T) {
	tc := trainSmall(t)
	reg := obs.NewRegistry()
	svc := &Service{Classifier: tc, Cache: NewClassifyCache(2, 128), Metrics: reg}
	recs := streamRecords(3, 64)
	if err := svc.Write(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	if err := svc.Write(context.Background(), recs); err != nil { // second pass: all raw hits
		t.Fatal(err)
	}
	rawHits, maskedHits, misses := svc.CacheStats()
	if rawHits < int64(len(recs)) {
		t.Errorf("raw hits = %d, want >= %d after replay", rawHits, len(recs))
	}
	if rawHits+maskedHits+misses != 2*int64(len(recs)) {
		t.Errorf("outcome counts %d+%d+%d don't sum to %d",
			rawHits, maskedHits, misses, 2*len(recs))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`service_cache_hits_total{level="raw"} `,
		`service_cache_hits_total{level="masked"} `,
		"service_cache_misses_total ",
		`service_cache_evictions_total{level="raw"} `,
		"service_cache_hit_ratio ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// trainSmall fits the small shared corpus once per test.
func trainSmall(t *testing.T) *TextClassifier {
	t.Helper()
	c := smallCorpus(t, 2000)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// zipfRecords samples a heavily repetitive (Zipf-distributed) record
// stream — the realistic workload the cache is built for.
func zipfRecords(seed int64, n, distinct int) []collector.Record {
	g := loggen.NewGenerator(seed)
	exs := g.ZipfExamples(n, distinct, 1.2)
	recs := make([]collector.Record, n)
	for i, ex := range exs {
		recs[i] = collector.Record{Tag: "syslog", Time: ex.Time, Msg: ex.Message()}
	}
	return recs
}

// runCachedService mirrors runService but lets the caller attach a
// classify cache, and reports how many alerts fired.
func runCachedService(t *testing.T, tc *TextClassifier, recs []collector.Record, workers int, cache *ClassifyCache) (*Service, *store.Store, int) {
	t.Helper()
	st := store.New(4)
	var mu sync.Mutex
	sent := 0
	svc := &Service{
		Classifier: tc,
		Store:      st,
		Workers:    workers,
		Cache:      cache,
		Alerts: &monitor.AlertManager{Notifier: monitor.NotifierFunc(func(a monitor.Alert) {
			mu.Lock()
			sent++
			mu.Unlock()
		})},
	}
	ch := make(chan collector.Record)
	p := &collector.Pipeline{
		Source:       &collector.ChannelSource{Ch: ch},
		Sink:         svc,
		BatchSize:    32,
		FlushWorkers: 1,
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	for _, r := range recs {
		ch <- r
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return svc, st, sent
}

// TestCachedParallelMatchesUncachedSerial is the cache-correctness audit:
// the same Zipf-repetitive traffic through (a) an uncached serial service
// and (b) a cached Workers=4 service must produce identical categories,
// store totals and alert counts — the cache may only change speed, never
// outcomes. Run under -race this also audits the sharded LRU locking in
// situ.
func TestCachedParallelMatchesUncachedSerial(t *testing.T) {
	tc := trainSmall(t)
	recs := zipfRecords(23, 3000, 150)

	plainSvc, plainSt, plainAlerts := runCachedService(t, tc, recs, -1, nil)
	cachedSvc, cachedSt, cachedAlerts := runCachedService(t, tc, recs, 4, NewClassifyCache(4, 4096))

	wantCl, wantAc := plainSvc.Counts()
	gotCl, gotAc := cachedSvc.Counts()
	if gotCl != wantCl || gotAc != wantAc {
		t.Errorf("cached counts = (%d, %d), uncached = (%d, %d)", gotCl, gotAc, wantCl, wantAc)
	}
	if cachedAlerts != plainAlerts {
		t.Errorf("cached alerts = %d, uncached = %d", cachedAlerts, plainAlerts)
	}
	if cachedSt.Count() != plainSt.Count() {
		t.Errorf("cached store count = %d, uncached = %d", cachedSt.Count(), plainSt.Count())
	}
	want := map[string]int{}
	for _, b := range plainSt.Terms(store.MatchAll{}, "category", 0) {
		want[b.Value] = b.Count
	}
	got := map[string]int{}
	for _, b := range cachedSt.Terms(store.MatchAll{}, "category", 0) {
		got[b.Value] = b.Count
	}
	if len(got) != len(want) {
		t.Fatalf("category sets differ: got %v, want %v", got, want)
	}
	for cat, n := range want {
		if got[cat] != n {
			t.Errorf("category %q: got %d docs, want %d", cat, got[cat], n)
		}
	}
	// On this workload the cache must actually be doing the work: 3000
	// records over <=150 distinct texts means the vast majority hit.
	rawHits, maskedHits, misses := cachedSvc.CacheStats()
	if hits := rawHits + maskedHits; hits < misses {
		t.Errorf("cache hits = %d, misses = %d on a Zipf workload", hits, misses)
	}
}

// TestCachedClassifyZeroAllocs pins the headline property: once the cache
// and scratch pool are warm, classifying a repeated message allocates
// nothing. AllocsPerRun is meaningless under the race detector, so the
// test skips there (CI enforces it in a separate non-race step).
func TestCachedClassifyZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun not meaningful under -race")
	}
	tc := trainSmall(t)
	svc := &Service{Classifier: tc, Cache: NewClassifyCache(2, 1024), Workers: -1}
	recs := streamRecords(9, 32)
	// Warm: initMetrics, scratch pool, both cache levels.
	if err := svc.Write(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := svc.Write(context.Background(), recs); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("cached serial Write allocates %.1f per run, want 0", allocs)
	}
}
