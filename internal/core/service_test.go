package core

import (
	"context"
	"sync"
	"testing"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/store"
)

// streamRecords samples n records from a fresh generator with the given
// seed, so serial and parallel runs see byte-identical traffic.
func streamRecords(seed int64, n int) []collector.Record {
	g := loggen.NewGenerator(seed)
	recs := make([]collector.Record, n)
	for i := range recs {
		ex := g.Example()
		recs[i] = collector.Record{Tag: "syslog", Time: ex.Time, Msg: ex.Message()}
	}
	return recs
}

// runService pushes the stream through a pipeline terminating in a
// Service configured with the given worker counts and returns the
// service plus its store.
func runService(t *testing.T, tc *TextClassifier, recs []collector.Record, workers, flushWorkers int) (*Service, *store.Store) {
	t.Helper()
	st := store.New(4)
	var mu sync.Mutex
	sent := 0
	svc := &Service{
		Classifier: tc,
		Store:      st,
		Workers:    workers,
		Alerts: &monitor.AlertManager{Notifier: monitor.NotifierFunc(func(a monitor.Alert) {
			mu.Lock()
			sent++
			mu.Unlock()
		})},
	}
	ch := make(chan collector.Record)
	p := &collector.Pipeline{
		Source:       &collector.ChannelSource{Ch: ch},
		Sink:         svc,
		BatchSize:    32,
		FlushWorkers: flushWorkers,
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	for _, r := range recs {
		ch <- r
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped {
		t.Errorf("pipeline stats invariant broken: %+v", s)
	}
	return svc, st
}

// TestServiceParallelMatchesSerial drives identical traffic through the
// serial path, the worker-pool path, and the worker-pool path behind a
// sharded flusher, and requires order-independent outcomes — classified
// and actionable counts, store doc totals, and per-category doc counts —
// to match exactly. Run under -race this is also the concurrency audit
// of the whole inference path.
func TestServiceParallelMatchesSerial(t *testing.T) {
	c := smallCorpus(t, 2000)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	recs := streamRecords(42, n)

	serialSvc, serialSt := runService(t, tc, recs, -1, 1)
	parSvc, parSt := runService(t, tc, recs, 4, 1)
	shardedSvc, shardedSt := runService(t, tc, recs, 4, 4)

	wantClassified, wantActionable := serialSvc.Counts()
	if wantClassified != n {
		t.Fatalf("serial classified = %d, want %d", wantClassified, n)
	}
	for name, svc := range map[string]*Service{"workers=4": parSvc, "workers=4 flushers=4": shardedSvc} {
		cl, ac := svc.Counts()
		if cl != wantClassified || ac != wantActionable {
			t.Errorf("%s counts = (%d, %d), serial = (%d, %d)", name, cl, ac, wantClassified, wantActionable)
		}
	}
	for name, st := range map[string]*store.Store{"workers=4": parSt, "workers=4 flushers=4": shardedSt} {
		if st.Count() != serialSt.Count() {
			t.Errorf("%s store count = %d, serial = %d", name, st.Count(), serialSt.Count())
		}
	}

	// Per-category doc totals must agree too: same records, same fitted
	// model, so every record gets the same label regardless of scheduling.
	want := map[string]int{}
	for _, b := range serialSt.Terms(store.MatchAll{}, "category", 0) {
		want[b.Value] = b.Count
	}
	for _, st := range []*store.Store{parSt, shardedSt} {
		got := map[string]int{}
		for _, b := range st.Terms(store.MatchAll{}, "category", 0) {
			got[b.Value] = b.Count
		}
		if len(got) != len(want) {
			t.Fatalf("category sets differ: got %v, want %v", got, want)
		}
		for cat, n := range want {
			if got[cat] != n {
				t.Errorf("category %q: got %d docs, want %d", cat, got[cat], n)
			}
		}
	}
}

// TestServiceConcurrentWrites calls Write from many goroutines at once —
// the FlushWorkers > 1 contract — and checks totals.
func TestServiceConcurrentWrites(t *testing.T) {
	c := smallCorpus(t, 2000)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(4)
	svc := &Service{Classifier: tc, Store: st, Workers: 2}
	recs := streamRecords(7, 800)

	var wg sync.WaitGroup
	const writers = 8
	per := len(recs) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(batch []collector.Record) {
			defer wg.Done()
			if err := svc.Write(context.Background(), batch); err != nil {
				t.Error(err)
			}
		}(recs[w*per : (w+1)*per])
	}
	wg.Wait()
	if cl, _ := svc.Counts(); cl != int64(len(recs)) {
		t.Errorf("classified = %d, want %d", cl, len(recs))
	}
	if st.Count() != len(recs) {
		t.Errorf("store count = %d, want %d", st.Count(), len(recs))
	}
}

// TestServiceWorkerDefaults exercises the Workers knob edge cases: zero
// (GOMAXPROCS default), negative (forced serial), and batches smaller
// than the parallel threshold.
func TestServiceWorkerDefaults(t *testing.T) {
	c := smallCorpus(t, 1500)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	recs := streamRecords(11, 100)
	for _, workers := range []int{0, -1, 1, 3, 64} {
		svc := &Service{Classifier: tc, Workers: workers}
		// Small batch (below minParallelBatch) then a large one.
		if err := svc.Write(context.Background(), recs[:3]); err != nil {
			t.Fatal(err)
		}
		if err := svc.Write(context.Background(), recs[3:]); err != nil {
			t.Fatal(err)
		}
		if cl, _ := svc.Counts(); cl != int64(len(recs)) {
			t.Errorf("workers=%d: classified = %d, want %d", workers, cl, len(recs))
		}
	}
}
