// Package core implements the paper's primary contribution: a real-time
// syslog classification pipeline for heterogeneous clusters. Raw message
// text flows through lemmatizing preprocessing (§4.3.2) and TF-IDF
// vectorization (§4.3.1) into one of the eight traditional classifiers
// evaluated in Figure 3; classified messages land in the Tivan store with
// their category, and actionable categories trigger administrator
// notifications (§3, §4.5).
package core

import (
	"fmt"
	"time"

	"hetsyslog/internal/loggen"
	"hetsyslog/internal/ml"
	"hetsyslog/internal/ml/bayes"
	"hetsyslog/internal/ml/forest"
	"hetsyslog/internal/ml/linear"
	"hetsyslog/internal/ml/metrics"
	"hetsyslog/internal/ml/neighbors"
	"hetsyslog/internal/sparse"
	"hetsyslog/internal/taxonomy"
	"hetsyslog/internal/textproc"
	"hetsyslog/internal/tfidf"
)

// Corpus is a labelled text dataset.
type Corpus struct {
	Texts  []string
	Labels []string
}

// Len returns the number of samples.
func (c *Corpus) Len() int { return len(c.Texts) }

// Append adds one labelled text.
func (c *Corpus) Append(text, label string) {
	c.Texts = append(c.Texts, text)
	c.Labels = append(c.Labels, label)
}

// FromExamples builds a corpus from generator output.
func FromExamples(examples []loggen.Example) *Corpus {
	c := &Corpus{
		Texts:  make([]string, len(examples)),
		Labels: make([]string, len(examples)),
	}
	for i, ex := range examples {
		c.Texts[i] = ex.Text
		c.Labels[i] = string(ex.Category)
	}
	return c
}

// Split partitions the corpus by a stratified split into train and test
// portions (testFrac per class to test).
func (c *Corpus) Split(testFrac float64, seed int64) (train, test *Corpus) {
	enc := ml.NewLabelEncoder()
	y := make([]int, len(c.Labels))
	for i, l := range c.Labels {
		y[i] = enc.Encode(l)
	}
	// Reuse ml.StratifiedSplit machinery through a dataset of indices.
	ds := &ml.Dataset{
		X:      &sparse.Matrix{Rows: make([]sparse.Vector, len(y))},
		Y:      y,
		Labels: enc.Labels(),
	}
	for i := range ds.X.Rows {
		ds.X.Rows[i] = sparse.NewVectorFromMap(map[int32]float64{0: float64(i + 1)})
	}
	tr, te := ml.StratifiedSplit(ds, testFrac, seed)
	extract := func(sub *ml.Dataset) *Corpus {
		out := &Corpus{}
		for k := range sub.Y {
			idx := int(sub.X.Rows[k].Val[0]) - 1
			out.Append(c.Texts[idx], c.Labels[idx])
		}
		return out
	}
	return extract(tr), extract(te)
}

// Options configures training.
type Options struct {
	// Sublinear applies log-damped term frequency (default true via
	// DefaultOptions).
	Sublinear bool
	// MinDF prunes rare terms (0 keeps all).
	MinDF int
	// MaxFeatures caps the vocabulary (0 = unlimited).
	MaxFeatures int
	// SkipLemmas disables lemmatization (ablation).
	SkipLemmas bool
}

// DefaultOptions returns the configuration used in the evaluation.
func DefaultOptions() Options { return Options{Sublinear: true, MinDF: 2} }

// TextClassifier is a fitted preprocessing + TF-IDF + model pipeline.
// After Train returns, every field is read-only, so Vectorize, Classify
// and ClassifyCategory are safe for concurrent use — this is what lets
// core.Service fan a batch across a worker pool without locking.
type TextClassifier struct {
	Prep       *textproc.Preprocessor
	Vectorizer *tfidf.Vectorizer
	Model      ml.Classifier
	Labels     []string

	// TrainTime records the wall-clock cost of the full training
	// pipeline — preprocessing/tokenization, TF-IDF fitting, and model
	// fitting — matching the Figure 3 "Training Time" column, which
	// times the whole fit, not just the model.
	TrainTime time.Duration
}

// Train fits the full pipeline on the corpus.
func Train(model ml.Classifier, corpus *Corpus, opts Options) (*TextClassifier, error) {
	if corpus.Len() == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	prep := textproc.NewPreprocessor()
	prep.SkipLemmas = opts.SkipLemmas

	start := time.Now()
	tokenized := make([][]string, corpus.Len())
	for i, t := range corpus.Texts {
		tokenized[i] = prep.Process(t)
	}
	vz := &tfidf.Vectorizer{
		Sublinear:   opts.Sublinear,
		MinDF:       opts.MinDF,
		MaxFeatures: opts.MaxFeatures,
	}

	X := vz.FitTransform(tokenized)
	enc := ml.NewLabelEncoder()
	y := make([]int, corpus.Len())
	for i, l := range corpus.Labels {
		y[i] = enc.Encode(l)
	}
	ds := &ml.Dataset{X: X, Y: y, Labels: enc.Labels()}
	if err := model.Fit(ds); err != nil {
		return nil, fmt.Errorf("core: training %s: %w", model.Name(), err)
	}
	return &TextClassifier{
		Prep: prep, Vectorizer: vz, Model: model, Labels: enc.Labels(),
		TrainTime: time.Since(start),
	}, nil
}

// Vectorize converts raw text to its feature vector.
func (tc *TextClassifier) Vectorize(text string) sparse.Vector {
	return tc.Vectorizer.Transform(tc.Prep.Process(text))
}

// Classify predicts the category label for one message.
func (tc *TextClassifier) Classify(text string) string {
	return tc.Labels[tc.Model.Predict(tc.Vectorize(text))]
}

// ClassifyCategory returns the prediction as a taxonomy.Category.
func (tc *TextClassifier) ClassifyCategory(text string) taxonomy.Category {
	return taxonomy.Category(tc.Classify(text))
}

// EvalResult bundles the evaluation outputs for one model — one row of
// Figure 3.
type EvalResult struct {
	ModelName  string
	WeightedF1 float64
	MacroF1    float64
	Accuracy   float64
	TrainTime  time.Duration
	TestTime   time.Duration
	Confusion  *metrics.ConfusionMatrix
}

// Evaluate classifies the test corpus and computes the paper's metrics.
// Labels unseen at training time are rejected with an error.
func (tc *TextClassifier) Evaluate(test *Corpus) (*EvalResult, error) {
	labelIdx := make(map[string]int, len(tc.Labels))
	for i, l := range tc.Labels {
		labelIdx[l] = i
	}
	yTrue := make([]int, test.Len())
	for i, l := range test.Labels {
		idx, ok := labelIdx[l]
		if !ok {
			return nil, fmt.Errorf("core: test label %q unseen in training", l)
		}
		yTrue[i] = idx
	}

	start := time.Now()
	yPred := make([]int, test.Len())
	for i, text := range test.Texts {
		yPred[i] = tc.Model.Predict(tc.Vectorize(text))
	}
	testTime := time.Since(start)

	cm, err := metrics.NewConfusionMatrix(tc.Labels, yTrue, yPred)
	if err != nil {
		return nil, err
	}
	return &EvalResult{
		ModelName:  tc.Model.Name(),
		WeightedF1: cm.WeightedF1(),
		MacroF1:    cm.MacroF1(),
		Accuracy:   cm.Accuracy(),
		TrainTime:  tc.TrainTime,
		TestTime:   testTime,
		Confusion:  cm,
	}, nil
}

// ModelNames lists the eight Figure 3 classifiers in the paper's order.
func ModelNames() []string {
	return []string{
		"Logistic Regression",
		"Ridge Classifier",
		"kNN",
		"Random Forest",
		"Linear SVC",
		"Log-loss SGD",
		"Nearest Centroid",
		"Complement Naive Bayes",
	}
}

// NewModel constructs a fresh classifier by its Figure 3 name.
func NewModel(name string) (ml.Classifier, error) {
	switch name {
	case "Logistic Regression":
		return &linear.LogisticRegression{}, nil
	case "Ridge Classifier":
		return &linear.Ridge{}, nil
	case "kNN":
		return &neighbors.KNN{}, nil
	case "Random Forest":
		return &forest.RandomForest{}, nil
	case "Linear SVC":
		return &linear.SVC{}, nil
	case "Log-loss SGD":
		return &linear.SGD{}, nil
	case "Nearest Centroid":
		return &neighbors.NearestCentroid{}, nil
	case "Complement Naive Bayes":
		return &bayes.ComplementNB{}, nil
	default:
		return nil, fmt.Errorf("core: unknown model %q (want one of %v)", name, ModelNames())
	}
}
