package core

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/store"
)

// TestServiceMetricsUnderConcurrentScrapes drives concurrent Write calls
// against an instrumented service while hammering /metrics, then requires
// the scraped counters to equal both the legacy Counts() snapshot and the
// exact record total. Run under -race this is the concurrency audit of
// the whole observability layer end to end.
func TestServiceMetricsUnderConcurrentScrapes(t *testing.T) {
	c := smallCorpus(t, 2000)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st := store.New(4)
	st.Instrument(reg)
	svc := &Service{Classifier: tc, Store: st, Metrics: reg, Workers: 2}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	const writers, batches, batchLen = 4, 10, 50
	recs := streamRecords(7, writers*batches*batchLen)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * batches * batchLen
			for b := 0; b < batches; b++ {
				lo := base + b*batchLen
				if err := svc.Write(context.Background(), recs[lo:lo+batchLen]); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 30; i++ {
			resp, err := srv.Client().Get(srv.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()
	<-scrapeDone

	// Final scrape: values must match the legacy accessors exactly.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	total := int64(writers * batches * batchLen)
	classified, actionable := svc.Counts()
	if classified != total {
		t.Fatalf("Counts() classified = %d, want %d", classified, total)
	}
	for series, want := range map[string]int64{
		"service_classified_total":       classified,
		"service_actionable_total":       actionable,
		"service_classify_seconds_count": classified,
		"store_index_total":              int64(st.Count()),
		"store_docs":                     int64(st.Count()),
	} {
		got, ok := scrapeValue(out, series)
		if !ok {
			t.Errorf("series %s missing from scrape:\n%s", series, out)
			continue
		}
		if got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
	if int64(st.Count()) != total {
		t.Errorf("store docs = %d, want %d", st.Count(), total)
	}
}

// scrapeValue extracts an integer sample for an exact series name from
// Prometheus text output.
func scrapeValue(out, series string) (int64, bool) {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\d+)$`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	return v, err == nil
}

// TestFiveStageRegistry wires all five instrumented stages into one
// registry — the cmd/collector topology — and checks each family shows up
// in a single valid exposition.
func TestFiveStageRegistry(t *testing.T) {
	c := smallCorpus(t, 1000)
	model, _ := NewModel("Complement Naive Bayes")
	tc, err := Train(model, c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st := store.New(2)
	st.Instrument(reg)
	svc := &Service{Classifier: tc, Store: st, Metrics: reg}
	if err := svc.Write(context.Background(), streamRecords(3, 20)); err != nil {
		t.Fatal(err)
	}
	st.Search(store.SearchRequest{})

	// The syslog, pipeline and dedup stages register through their own
	// packages; here it's enough that their families coexist with the
	// service/store ones (covered by their package tests) — but register
	// a couple to prove one registry serves multiple stages.
	reg.Counter("syslog_received_total", "x").Add(20)
	reg.Counter("pipeline_ingested_total", "x").Add(20)
	reg.Counter("dedup_suppressed_total", "x")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, family := range []string{
		"syslog_received_total",
		"pipeline_ingested_total",
		"dedup_suppressed_total",
		"service_classified_total",
		"service_classify_seconds_bucket",
		"store_index_total",
		`store_query_total{op="search"}`,
	} {
		if !strings.Contains(out, family) {
			t.Errorf("exposition missing %s:\n%s", family, out)
		}
	}
	if got, ok := scrapeValue(out, "service_classified_total"); !ok || got != 20 {
		t.Errorf("service_classified_total = %d (ok=%v), want 20", got, ok)
	}
	if got, ok := scrapeValue(out, fmt.Sprintf(`store_query_total{op=%q}`, "search")); !ok || got != 1 {
		t.Errorf("store_query_total{op=search} = %d (ok=%v), want 1", got, ok)
	}
}
