package core

import (
	"sync/atomic"

	"hetsyslog/internal/bucket"
	"hetsyslog/internal/collector"
)

// NoiseFilter is the pre-classification blacklist the paper proposes in
// §5.1/§6: because the traditional models' residual confusion concentrates
// on "Unimportant", administrators should be able to "blacklist specific
// kinds of messages" with the old minimum-edit-distance machinery at a
// *lower* threshold, dropping known noise before it ever reaches the
// classifier. It implements collector.Filter, so it slots ahead of the
// classification service in the pipeline.
type NoiseFilter struct {
	bk      *bucket.Bucketer
	dropped atomic.Int64
}

// DefaultNoiseThreshold is deliberately tighter than the classification
// threshold of 7 (§5.1: "a lower value for the categorization threshold")
// so the blacklist only swallows close variants of the listed exemplars.
const DefaultNoiseThreshold = 3

// NewNoiseFilter returns an empty blacklist with the given edit-distance
// threshold (<= 0 selects DefaultNoiseThreshold).
func NewNoiseFilter(threshold int) *NoiseFilter {
	if threshold <= 0 {
		threshold = DefaultNoiseThreshold
	}
	return &NoiseFilter{bk: &bucket.Bucketer{Threshold: threshold}}
}

// Blacklist registers one noise exemplar; messages within the threshold of
// it will be dropped.
func (f *NoiseFilter) Blacklist(exemplar string) {
	b, _ := f.bk.Assign(exemplar)
	f.bk.Label(b.ID, "blacklisted")
}

// Exemplars returns the number of blacklisted exemplars.
func (f *NoiseFilter) Exemplars() int { return f.bk.Len() }

// Dropped returns how many records the blacklist has swallowed.
func (f *NoiseFilter) Dropped() int64 { return f.dropped.Load() }

// Matches reports whether text falls within the blacklist, without
// mutating filter state.
func (f *NoiseFilter) Matches(text string) bool {
	_, matched := f.bk.Peek(text)
	return matched
}

// Apply implements collector.Filter.
func (f *NoiseFilter) Apply(r collector.Record) (collector.Record, bool) {
	if r.Msg == nil {
		return r, false
	}
	if f.Matches(r.Msg.Content) {
		f.dropped.Add(1)
		return r, false
	}
	return r, true
}

var _ collector.Filter = (*NoiseFilter)(nil)
