package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadCorpusTSV parses a labelled corpus from tab-separated lines of the
// form "category<TAB>[...ignored...<TAB>]text": the first field is the
// label, the last is the message text (matching cmd/loggen -dataset
// output, which puts node/arch columns in between). Blank lines are
// skipped.
func ReadCorpusTSV(r io.Reader) (*Corpus, error) {
	c := &Corpus{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("core: line %d: want category<TAB>[...<TAB>]text", lineNo)
		}
		label := strings.TrimSpace(fields[0])
		text := strings.TrimSpace(fields[len(fields)-1])
		if label == "" || text == "" {
			return nil, fmt.Errorf("core: line %d: empty label or text", lineNo)
		}
		c.Append(text, label)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// ReadCorpusTSVFile reads a TSV corpus from disk.
func ReadCorpusTSVFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCorpusTSV(f)
}

// WriteCorpusTSV writes the corpus as "category<TAB>text" lines.
func (c *Corpus) WriteCorpusTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, text := range c.Texts {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", c.Labels[i], text); err != nil {
			return err
		}
	}
	return bw.Flush()
}
