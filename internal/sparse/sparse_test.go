package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vec(pairs ...float64) Vector {
	// pairs: idx, val, idx, val ...
	m := map[int32]float64{}
	for i := 0; i+1 < len(pairs); i += 2 {
		m[int32(pairs[i])] = pairs[i+1]
	}
	return NewVectorFromMap(m)
}

func TestNewVectorFromMapSorted(t *testing.T) {
	v := NewVectorFromMap(map[int32]float64{5: 1, 1: 2, 9: 3})
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.Idx[0] != 1 || v.Idx[1] != 5 || v.Idx[2] != 9 {
		t.Errorf("indices = %v", v.Idx)
	}
}

func TestAt(t *testing.T) {
	v := vec(1, 2.0, 5, 3.0, 9, 4.0)
	if v.At(5) != 3.0 || v.At(1) != 2.0 || v.At(9) != 4.0 {
		t.Error("At returned wrong values")
	}
	if v.At(0) != 0 || v.At(4) != 0 || v.At(100) != 0 {
		t.Error("At should return 0 for absent indices")
	}
}

func TestDot(t *testing.T) {
	a := vec(0, 1, 2, 2, 4, 3)
	b := vec(2, 5, 3, 7, 4, 1)
	if got := Dot(a, b); got != 2*5+3*1 {
		t.Errorf("Dot = %v, want 13", got)
	}
	if got := Dot(a, Vector{}); got != 0 {
		t.Errorf("Dot with empty = %v", got)
	}
}

func TestDotDenseAndAxpy(t *testing.T) {
	v := vec(0, 1, 3, 2)
	w := []float64{10, 0, 0, 5}
	if got := DotDense(v, w); got != 1*10+2*5 {
		t.Errorf("DotDense = %v", got)
	}
	AxpyDense(2, v, w)
	if w[0] != 12 || w[3] != 9 {
		t.Errorf("AxpyDense result = %v", w)
	}
	// out-of-range indices ignored
	big := vec(100, 1)
	if got := DotDense(big, w); got != 0 {
		t.Errorf("DotDense out-of-range = %v", got)
	}
	AxpyDense(1, big, w) // must not panic
}

func TestNormScaleNormalize(t *testing.T) {
	v := vec(0, 3, 1, 4)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("normalized Norm = %v", v.Norm())
	}
	z := Vector{}
	z.Normalize() // no panic on zero vector
}

func TestCosine(t *testing.T) {
	a := vec(0, 1, 1, 1)
	b := vec(0, 2, 1, 2)
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("parallel cosine = %v", got)
	}
	c := vec(2, 1)
	if got := Cosine(a, c); got != 0 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, Vector{}); got != 0 {
		t.Errorf("zero-vector cosine = %v", got)
	}
}

func TestValidateCatchesBadForm(t *testing.T) {
	bad := Vector{Idx: []int32{3, 1}, Val: []float64{1, 1}}
	if bad.Validate() == nil {
		t.Error("unsorted vector should fail validation")
	}
	bad2 := Vector{Idx: []int32{1}, Val: []float64{0}}
	if bad2.Validate() == nil {
		t.Error("explicit zero should fail validation")
	}
	bad3 := Vector{Idx: []int32{1, 2}, Val: []float64{1}}
	if bad3.Validate() == nil {
		t.Error("length mismatch should fail validation")
	}
}

func TestMatrixColumnSums(t *testing.T) {
	m := Matrix{Rows: []Vector{vec(0, 1, 2, 2), vec(0, 3, 1, 4)}, Cols: 3}
	sums := m.ColumnSums()
	want := []float64{4, 4, 2}
	for i := range want {
		if sums[i] != want[i] {
			t.Errorf("ColumnSums = %v, want %v", sums, want)
		}
	}
	if m.NNZ() != 4 || m.NRows() != 2 {
		t.Errorf("NNZ=%d NRows=%d", m.NNZ(), m.NRows())
	}
}

func randomVector(rng *rand.Rand, dim, nnz int) Vector {
	m := map[int32]float64{}
	for len(m) < nnz {
		v := rng.NormFloat64()
		if v == 0 {
			continue
		}
		m[int32(rng.Intn(dim))] = v
	}
	return NewVectorFromMap(m)
}

// Property: Dot(a,b) == Dot(b,a) and agrees with a dense computation.
func TestQuickDotSymmetricMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := randomVector(rng, 50, rng.Intn(20))
		b := randomVector(rng, 50, rng.Intn(20))
		ab, ba := Dot(a, b), Dot(b, a)
		if math.Abs(ab-ba) > 1e-12 {
			t.Fatalf("Dot not symmetric: %v vs %v", ab, ba)
		}
		dense := make([]float64, 50)
		AxpyDense(1, b, dense)
		if math.Abs(ab-DotDense(a, dense)) > 1e-9 {
			t.Fatalf("sparse/dense dot mismatch")
		}
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= |a||b| and cosine in [-1,1].
func TestQuickCauchySchwarz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a := randomVector(rng, 30, 1+rng.Intn(10))
		b := randomVector(rng, 30, 1+rng.Intn(10))
		if math.Abs(Dot(a, b)) > a.Norm()*b.Norm()+1e-9 {
			t.Fatal("Cauchy-Schwarz violated")
		}
		if c := Cosine(a, b); c < -1-1e-9 || c > 1+1e-9 {
			t.Fatalf("cosine out of range: %v", c)
		}
	}
}

// Property: NewVectorFromMap always produces a vector passing Validate.
func TestQuickNormalForm(t *testing.T) {
	f := func(entries map[int32]float64) bool {
		for k, val := range entries {
			if val == 0 || math.IsNaN(val) {
				delete(entries, k)
			}
		}
		return NewVectorFromMap(entries).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDotSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomVector(rng, 30000, 15)
	y := randomVector(rng, 30000, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkDotDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomVector(rng, 30000, 15)
	w := make([]float64, 30000)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DotDense(x, w)
	}
}
