// Package sparse provides the sparse vector arithmetic shared by the TF-IDF
// vectorizer and all classifiers. Syslog feature vectors are extremely
// sparse (a dozen nonzeros out of tens of thousands of vocabulary terms),
// so every hot loop in training and inference iterates nonzeros only.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a sparse vector: parallel slices of strictly increasing feature
// indices and their values. The zero Vector is an empty vector.
type Vector struct {
	Idx []int32
	Val []float64
}

// NewVectorFromMap builds a normalized-form Vector from an index->value map.
func NewVectorFromMap(m map[int32]float64) Vector {
	v := Vector{
		Idx: make([]int32, 0, len(m)),
		Val: make([]float64, 0, len(m)),
	}
	for i := range m {
		v.Idx = append(v.Idx, i)
	}
	sort.Slice(v.Idx, func(a, b int) bool { return v.Idx[a] < v.Idx[b] })
	for _, i := range v.Idx {
		v.Val = append(v.Val, m[i])
	}
	return v
}

// NewVectorFromSorted wraps already-sorted parallel index/value slices as
// a Vector without copying. The caller promises idx is strictly
// increasing with no explicit zeros in val (Validate() normal form); the
// returned vector aliases the slices, which suits scratch-buffer reuse in
// allocation-free transform paths.
func NewVectorFromSorted(idx []int32, val []float64) Vector {
	return Vector{Idx: idx, Val: val}
}

// NNZ returns the number of stored (nonzero) entries.
func (v Vector) NNZ() int { return len(v.Idx) }

// At returns the value at index i (0 when absent) via binary search.
func (v Vector) At(i int32) float64 {
	lo, hi := 0, len(v.Idx)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case v.Idx[mid] < i:
			lo = mid + 1
		case v.Idx[mid] > i:
			hi = mid
		default:
			return v.Val[mid]
		}
	}
	return 0
}

// Dot returns the inner product of two sparse vectors (merge join).
func Dot(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// DotDense returns the inner product of sparse v with dense w. Indices
// beyond len(w) contribute zero.
func DotDense(v Vector, w []float64) float64 {
	var s float64
	for k, i := range v.Idx {
		if int(i) < len(w) {
			s += v.Val[k] * w[i]
		}
	}
	return s
}

// AxpyDense computes w += alpha * v for dense w, ignoring out-of-range
// indices.
func AxpyDense(alpha float64, v Vector, w []float64) {
	for k, i := range v.Idx {
		if int(i) < len(w) {
			w[i] += alpha * v.Val[k]
		}
	}
}

// Norm returns the L2 norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v.Val {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of stored values (the L1 norm for non-negative
// vectors such as term counts).
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v.Val {
		s += x
	}
	return s
}

// Scale multiplies every stored value by alpha, in place.
func (v Vector) Scale(alpha float64) {
	for i := range v.Val {
		v.Val[i] *= alpha
	}
}

// Normalize scales v to unit L2 norm in place; zero vectors are unchanged.
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	v.Scale(1 / n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	return Vector{
		Idx: append([]int32(nil), v.Idx...),
		Val: append([]float64(nil), v.Val...),
	}
}

// Cosine returns the cosine similarity of a and b; 0 when either is zero.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Validate checks normal form: strictly increasing indices, no explicit
// zeros, equal slice lengths. Used by tests and debug assertions.
func (v Vector) Validate() error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("sparse: len(Idx)=%d != len(Val)=%d", len(v.Idx), len(v.Val))
	}
	for k := range v.Idx {
		if k > 0 && v.Idx[k] <= v.Idx[k-1] {
			return fmt.Errorf("sparse: indices not strictly increasing at %d", k)
		}
		if v.Val[k] == 0 {
			return fmt.Errorf("sparse: explicit zero at index %d", v.Idx[k])
		}
	}
	return nil
}

// Matrix is a row-major sparse matrix: one Vector per sample.
type Matrix struct {
	Rows []Vector
	// Cols is the feature-space width (vocabulary size).
	Cols int
}

// NRows returns the number of rows.
func (m *Matrix) NRows() int { return len(m.Rows) }

// NNZ returns total stored entries across all rows.
func (m *Matrix) NNZ() int {
	n := 0
	for _, r := range m.Rows {
		n += r.NNZ()
	}
	return n
}

// ColumnSums accumulates per-column sums into a dense slice of length Cols.
func (m *Matrix) ColumnSums() []float64 {
	out := make([]float64, m.Cols)
	for _, r := range m.Rows {
		AxpyDense(1, r, out)
	}
	return out
}
