package loggen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hetsyslog/internal/syslog"
	"hetsyslog/internal/taxonomy"
)

// Example is one labelled message — the unit of the training corpus.
type Example struct {
	Text     string
	Category taxonomy.Category
	Node     Node
	App      string
	Severity syslog.Severity
	Facility syslog.Facility
	Time     time.Time
}

// Message converts the example into a parsed syslog message.
func (e Example) Message() *syslog.Message {
	return &syslog.Message{
		Facility:  e.Facility,
		Severity:  e.Severity,
		Timestamp: e.Time,
		Hostname:  e.Node.Name,
		AppName:   e.App,
		Content:   e.Text,
		Structured: syslog.StructuredData{
			"node@darwin": {
				"rack": fmt.Sprintf("r%d", e.Node.Rack),
				"arch": string(e.Node.Arch),
			},
		},
	}
}

// Generator produces labelled synthetic syslog from a simulated cluster.
// It is deterministic for a given seed.
type Generator struct {
	Cluster *Cluster
	rng     *rand.Rand
	now     time.Time
	// firmwareRev tracks per-architecture firmware revisions; bumping a
	// revision changes some templates' phrasing (drift).
	firmwareRev map[Arch]int
	// Mix is the sampling weight per category for Example(); defaults to
	// Table 2 proportions.
	Mix      map[taxonomy.Category]int
	mixKeys  []taxonomy.Category
	mixTotal int
}

// NewGenerator builds a generator over a fresh 128-node cluster.
func NewGenerator(seed int64) *Generator {
	g := &Generator{
		Cluster:     NewCluster(128, 16, seed),
		rng:         rand.New(rand.NewSource(seed + 7)),
		now:         time.Date(2023, time.July, 1, 0, 0, 0, 0, time.UTC),
		firmwareRev: make(map[Arch]int),
	}
	g.SetMix(taxonomy.PaperCounts())
	return g
}

// SetMix changes the category sampling weights for Example().
func (g *Generator) SetMix(mix map[taxonomy.Category]int) {
	g.Mix = mix
	g.mixKeys = g.mixKeys[:0]
	g.mixTotal = 0
	for _, c := range taxonomy.All() {
		if w := mix[c]; w > 0 {
			g.mixKeys = append(g.mixKeys, c)
			g.mixTotal += w
		}
	}
}

// ApplyFirmwareUpdate bumps the firmware revision of every node with the
// given architecture; drift-aware templates change phrasing afterwards.
func (g *Generator) ApplyFirmwareUpdate(a Arch) {
	g.firmwareRev[a]++
}

// Advance moves the generator clock forward; emitted examples carry
// monotonically increasing timestamps with small jitter.
func (g *Generator) Advance(d time.Duration) { g.now = g.now.Add(d) }

// Now returns the generator clock.
func (g *Generator) Now() time.Time { return g.now }

// ExampleOf emits one example of the given category from a random eligible
// node.
func (g *Generator) ExampleOf(cat taxonomy.Category) Example {
	tpls := categoryTemplates[cat]
	for {
		t := &tpls[g.rng.Intn(len(tpls))]
		// Rejection-sample nodes until the template's arch matches.
		n := g.Cluster.Nodes[g.rng.Intn(len(g.Cluster.Nodes))]
		if !t.appliesTo(n.Arch) {
			continue
		}
		g.now = g.now.Add(time.Duration(g.rng.Intn(2000)) * time.Millisecond)
		return Example{
			Text:     t.gen(g.rng, n, g.firmwareRev[n.Arch]),
			Category: cat,
			Node:     n,
			App:      t.app,
			Severity: t.sev,
			Facility: t.fac,
			Time:     g.now,
		}
	}
}

// Example emits one example with category sampled from Mix.
func (g *Generator) Example() Example {
	w := g.rng.Intn(g.mixTotal)
	for _, c := range g.mixKeys {
		w -= g.Mix[c]
		if w < 0 {
			return g.ExampleOf(c)
		}
	}
	return g.ExampleOf(g.mixKeys[len(g.mixKeys)-1])
}

// Dataset generates exactly counts[c] *unique* message texts per category,
// reproducing the structure of Table 2 (the paper's corpus holds unique
// messages). Duplicate texts are re-rolled; a category whose template
// space is too small to honour the request errors out.
func (g *Generator) Dataset(counts map[taxonomy.Category]int) ([]Example, error) {
	var out []Example
	for _, cat := range taxonomy.All() {
		want := counts[cat]
		if want == 0 {
			continue
		}
		seen := make(map[string]bool, want)
		stall := 0
		for len(seen) < want {
			ex := g.ExampleOf(cat)
			if seen[ex.Text] {
				// Bail when the template space looks exhausted: tens of
				// thousands of consecutive duplicates.
				if stall++; stall > 50000 {
					return nil, fmt.Errorf("loggen: category %q exhausted (%d/%d unique)",
						cat, len(seen), want)
				}
				continue
			}
			stall = 0
			seen[ex.Text] = true
			out = append(out, ex)
		}
	}
	// Interleave categories chronologically (examples already carry
	// increasing times, but they were generated category-by-category).
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

// ScaledPaperCounts returns Table 2 scaled down to approximately total
// messages, preserving the imbalance and keeping every category non-empty.
func ScaledPaperCounts(total int) map[taxonomy.Category]int {
	paper := taxonomy.PaperCounts()
	paperTotal := taxonomy.PaperTotal()
	out := make(map[taxonomy.Category]int, len(paper))
	for c, n := range paper {
		scaled := n * total / paperTotal
		if scaled < 2 {
			scaled = 2
		}
		out[c] = scaled
	}
	return out
}

// ZipfExamples emits n examples whose texts repeat with a Zipf
// distribution over a pool of distinct base messages — the shape of real
// syslog traffic, where a handful of heartbeat/storm templates dominate
// (§4.4.1: 3,415 exemplars covered a 196k-message corpus). skew is the
// Zipf s parameter; values just above 1 (e.g. 1.1) give the heavy head
// and long tail typical of log data, larger values concentrate harder.
// Deterministic for a given generator seed; repeated examples share the
// base example's text and metadata but carry fresh increasing timestamps.
func (g *Generator) ZipfExamples(n, distinct int, skew float64) []Example {
	if distinct < 1 {
		distinct = 1
	}
	if skew <= 1 {
		skew = 1.1
	}
	base := make([]Example, distinct)
	for i := range base {
		base[i] = g.Example()
	}
	z := rand.NewZipf(g.rng, skew, 1, uint64(distinct-1))
	out := make([]Example, n)
	for i := range out {
		ex := base[z.Uint64()]
		g.now = g.now.Add(time.Duration(g.rng.Intn(50)) * time.Millisecond)
		ex.Time = g.now
		out[i] = ex
	}
	return out
}

// Stream emits examples at the given rate until ctx is cancelled. A rate
// of 0 emits as fast as the consumer accepts.
func (g *Generator) Stream(ctx context.Context, rate time.Duration) <-chan Example {
	ch := make(chan Example, 64)
	go func() {
		defer close(ch)
		var tick *time.Ticker
		if rate > 0 {
			tick = time.NewTicker(rate)
			defer tick.Stop()
		}
		for {
			ex := g.Example()
			select {
			case <-ctx.Done():
				return
			case ch <- ex:
			}
			if tick != nil {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
			}
		}
	}()
	return ch
}

// Burst emits n examples of one category from one node in a tight time
// window — the §4.5.1 "surge of repeated messages" scenario used by the
// frequency-analysis example and tests.
func (g *Generator) Burst(cat taxonomy.Category, node Node, n int, window time.Duration) []Example {
	tpls := categoryTemplates[cat]
	start := g.now
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		var t *template
		for {
			t = &tpls[g.rng.Intn(len(tpls))]
			if t.appliesTo(node.Arch) {
				break
			}
		}
		ts := start.Add(time.Duration(float64(window) * float64(i) / float64(n)))
		out = append(out, Example{
			Text:     t.gen(g.rng, node, g.firmwareRev[node.Arch]),
			Category: cat,
			Node:     node,
			App:      t.app,
			Severity: t.sev,
			Facility: t.fac,
			Time:     ts,
		})
	}
	g.now = start.Add(window)
	return out
}
