package loggen

import (
	"context"
	"strings"
	"testing"
	"time"

	"hetsyslog/internal/taxonomy"
)

func TestClusterTopology(t *testing.T) {
	c := NewCluster(48, 16, 1)
	if len(c.Nodes) != 48 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if c.NumRacks() != 3 {
		t.Errorf("racks = %d, want 3", c.NumRacks())
	}
	// All nodes in one rack share an architecture.
	for r := 0; r < c.NumRacks(); r++ {
		nodes := c.NodesInRack(r)
		if len(nodes) != 16 {
			t.Errorf("rack %d has %d nodes", r, len(nodes))
		}
		for _, n := range nodes {
			if n.Arch != nodes[0].Arch {
				t.Errorf("rack %d mixes architectures", r)
			}
		}
	}
	// Names unique, lookup works.
	n, ok := c.Lookup("cn001")
	if !ok || n.Name != "cn001" {
		t.Error("Lookup cn001 failed")
	}
	if _, ok := c.Lookup("cn999"); ok {
		t.Error("Lookup of absent node succeeded")
	}
}

func TestClusterHeterogeneous(t *testing.T) {
	c := NewCluster(128, 16, 1)
	archs := map[Arch]bool{}
	for _, n := range c.Nodes {
		archs[n.Arch] = true
	}
	if len(archs) < 3 {
		t.Errorf("cluster has only %d architectures; need heterogeneity", len(archs))
	}
	for a := range archs {
		if len(c.NodesWithArch(a)) == 0 {
			t.Errorf("arch %s empty", a)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, g2 := NewGenerator(5), NewGenerator(5)
	for i := 0; i < 100; i++ {
		a, b := g1.Example(), g2.Example()
		if a.Text != b.Text || a.Category != b.Category || a.Node.Name != b.Node.Name {
			t.Fatal("same seed must generate identical streams")
		}
	}
}

func TestExampleOfEveryCategory(t *testing.T) {
	g := NewGenerator(3)
	for _, cat := range taxonomy.All() {
		ex := g.ExampleOf(cat)
		if ex.Category != cat {
			t.Errorf("category = %q, want %q", ex.Category, cat)
		}
		if ex.Text == "" || ex.App == "" || ex.Node.Name == "" {
			t.Errorf("incomplete example: %+v", ex)
		}
	}
}

func TestDatasetCountsAndUniqueness(t *testing.T) {
	g := NewGenerator(7)
	counts := map[taxonomy.Category]int{
		taxonomy.ThermalIssue: 500,
		taxonomy.SlurmIssue:   30,
		taxonomy.Unimportant:  800,
	}
	ds, err := g.Dataset(counts)
	if err != nil {
		t.Fatal(err)
	}
	got := map[taxonomy.Category]int{}
	seen := map[string]bool{}
	for _, ex := range ds {
		got[ex.Category]++
		key := string(ex.Category) + "|" + ex.Text
		if seen[key] {
			t.Fatalf("duplicate text within category: %q", ex.Text)
		}
		seen[key] = true
	}
	for c, want := range counts {
		if got[c] != want {
			t.Errorf("category %q = %d, want %d", c, got[c], want)
		}
	}
	// Chronological order after interleave.
	for i := 1; i < len(ds); i++ {
		if ds[i].Time.Before(ds[i-1].Time) {
			t.Fatal("dataset not chronologically sorted")
		}
	}
}

func TestDatasetExhaustionError(t *testing.T) {
	g := NewGenerator(1)
	// Slurm templates cannot produce 100k unique strings.
	_, err := g.Dataset(map[taxonomy.Category]int{taxonomy.SlurmIssue: 1000000})
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestScaledPaperCounts(t *testing.T) {
	counts := ScaledPaperCounts(20000)
	total := 0
	for _, c := range taxonomy.All() {
		if counts[c] < 2 {
			t.Errorf("category %q scaled to %d (< 2)", c, counts[c])
		}
		total += counts[c]
	}
	if total < 18000 || total > 22000 {
		t.Errorf("scaled total = %d, want ~20000", total)
	}
	// Imbalance preserved: Unimportant > Thermal > Memory > ... > Slurm.
	if counts[taxonomy.Unimportant] <= counts[taxonomy.ThermalIssue] ||
		counts[taxonomy.ThermalIssue] <= counts[taxonomy.MemoryIssue] {
		t.Errorf("imbalance not preserved: %v", counts)
	}
}

func TestHeterogeneousPhrasing(t *testing.T) {
	// Thermal messages must come in several distinct shapes (vendor
	// heterogeneity is the paper's core premise).
	g := NewGenerator(11)
	prefixes := map[string]bool{}
	for i := 0; i < 300; i++ {
		ex := g.ExampleOf(taxonomy.ThermalIssue)
		p := ex.Text
		if len(p) > 12 {
			p = p[:12]
		}
		prefixes[p] = true
	}
	if len(prefixes) < 4 {
		t.Errorf("thermal phrasing variety = %d shapes, want >= 4", len(prefixes))
	}
}

func TestFirmwareDriftChangesPhrasing(t *testing.T) {
	g := NewGenerator(13)
	// Collect pre-drift kernel thermal messages from x86 Dell nodes.
	before := map[string]bool{}
	for i := 0; i < 500; i++ {
		ex := g.ExampleOf(taxonomy.ThermalIssue)
		if ex.App == "kernel" && strings.Contains(ex.Text, "Core temperature above threshold") {
			before[ex.Text[:20]] = true
		}
	}
	if len(before) == 0 {
		t.Skip("no pre-drift samples drawn")
	}
	g.ApplyFirmwareUpdate(X86Dell)
	g.ApplyFirmwareUpdate(X86Super)
	g.ApplyFirmwareUpdate(GPUNvidia)
	sawNew := false
	for i := 0; i < 500; i++ {
		ex := g.ExampleOf(taxonomy.ThermalIssue)
		if strings.Contains(ex.Text, "Package temperature above threshold") &&
			strings.Contains(ex.Text, "throttled by firmware") {
			sawNew = true
			break
		}
	}
	if !sawNew {
		t.Error("firmware update did not change thermal phrasing")
	}
}

func TestMixSampling(t *testing.T) {
	g := NewGenerator(17)
	g.SetMix(map[taxonomy.Category]int{
		taxonomy.ThermalIssue: 90,
		taxonomy.SlurmIssue:   10,
	})
	counts := map[taxonomy.Category]int{}
	for i := 0; i < 1000; i++ {
		counts[g.Example().Category]++
	}
	if counts[taxonomy.ThermalIssue] < 800 || counts[taxonomy.SlurmIssue] < 50 {
		t.Errorf("mix sampling off: %v", counts)
	}
	if len(counts) != 2 {
		t.Errorf("unexpected categories: %v", counts)
	}
}

func TestBurst(t *testing.T) {
	g := NewGenerator(19)
	node := g.Cluster.Nodes[3]
	window := 2 * time.Minute
	burst := g.Burst(taxonomy.MemoryIssue, node, 50, window)
	if len(burst) != 50 {
		t.Fatalf("burst = %d", len(burst))
	}
	for _, ex := range burst {
		if ex.Node.Name != node.Name || ex.Category != taxonomy.MemoryIssue {
			t.Fatalf("burst example wrong: %+v", ex)
		}
	}
	span := burst[len(burst)-1].Time.Sub(burst[0].Time)
	if span > window {
		t.Errorf("burst span %v exceeds window %v", span, window)
	}
}

func TestStream(t *testing.T) {
	g := NewGenerator(23)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := g.Stream(ctx, 0)
	n := 0
	for range ch {
		n++
		if n == 100 {
			cancel()
			break
		}
	}
	if n != 100 {
		t.Errorf("streamed %d", n)
	}
	// drain until close
	for range ch {
	}
}

func TestExampleToSyslogMessage(t *testing.T) {
	g := NewGenerator(29)
	ex := g.ExampleOf(taxonomy.SSHConnection)
	m := ex.Message()
	if m.Hostname != ex.Node.Name || m.Content != ex.Text || m.AppName != ex.App {
		t.Errorf("Message conversion lost fields: %+v", m)
	}
	if m.Structured["node@darwin"]["arch"] != string(ex.Node.Arch) {
		t.Error("arch metadata missing")
	}
}

func BenchmarkGenerateExample(b *testing.B) {
	g := NewGenerator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Example()
	}
}

// BenchmarkTable2Generate regenerates a scaled Table 2 corpus (DESIGN.md
// experiment index: Table 2).
func BenchmarkTable2Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGenerator(int64(i))
		if _, err := g.Dataset(ScaledPaperCounts(5000)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestZipfExamples(t *testing.T) {
	g := NewGenerator(5)
	const n, distinct = 5000, 200
	out := g.ZipfExamples(n, distinct, 1.2)
	if len(out) != n {
		t.Fatalf("len = %d, want %d", len(out), n)
	}
	counts := make(map[string]int)
	for i, ex := range out {
		if ex.Text == "" {
			t.Fatal("empty text")
		}
		counts[ex.Text]++
		if i > 0 && out[i].Time.Before(out[i-1].Time) {
			t.Fatalf("timestamps not monotonic at %d", i)
		}
	}
	if len(counts) > distinct {
		t.Errorf("%d distinct texts, pool was %d", len(counts), distinct)
	}
	// Zipf head: the most frequent message must dominate a uniform share,
	// and a meaningful tail of distinct messages must still appear.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5*n/distinct {
		t.Errorf("head message count %d; expected heavy repetition (uniform share is %d)", max, n/distinct)
	}
	if len(counts) < distinct/10 {
		t.Errorf("only %d distinct texts sampled from a pool of %d", len(counts), distinct)
	}
	// Determinism for a fixed seed.
	again := NewGenerator(5).ZipfExamples(n, distinct, 1.2)
	for i := range out {
		if out[i].Text != again[i].Text {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}
