package loggen

import (
	"fmt"
	"time"

	"hetsyslog/internal/syslog"
	"hetsyslog/internal/taxonomy"
)

// AttackKind names a scripted adversarial traffic shape — the workloads
// the streaming detectors (internal/detect) are built to catch.
type AttackKind string

const (
	// AttackBurst is a failed-password burst: one attacker hammering one
	// account on one node.
	AttackBurst AttackKind = "burst"
	// AttackSpray is a username spray: auth failures across many
	// distinct usernames on one node from one attacker.
	AttackSpray AttackKind = "spray"
	// AttackScan is a sequential port scan: pre-authentication
	// connections walking ascending client ports against one node.
	AttackScan AttackKind = "scan"
)

// AttackKinds lists every scripted shape.
func AttackKinds() []AttackKind { return []AttackKind{AttackBurst, AttackSpray, AttackScan} }

// Attack scripts n messages of one adversarial shape against target,
// spread evenly across window (mirroring Burst's pacing), and advances
// the generator clock past the window. The messages use the same sshd
// phrasings as the normal template mix, so they exercise the detectors'
// matchers, not a special-cased vocabulary. Every example is labelled
// Intrusion Detection. Deterministic for a given generator seed.
func (g *Generator) Attack(kind AttackKind, target Node, n int, window time.Duration) ([]Example, error) {
	if n <= 0 {
		n = 20
	}
	if window <= 0 {
		window = time.Minute
	}
	attacker := randIP(g.rng)
	start := g.now
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		var text string
		sev := syslog.Warning
		switch kind {
		case AttackBurst:
			text = fmt.Sprintf("Failed password for root from %s port %d ssh2",
				attacker, 40000+g.rng.Intn(20000))
		case AttackSpray:
			// Distinct username per attempt — the spray signature. These
			// are auth failures too, so a spray implies a burst.
			text = fmt.Sprintf("Failed password for invalid user svc%03d from %s port %d ssh2",
				i, attacker, 40000+g.rng.Intn(20000))
		case AttackScan:
			sev = syslog.Info
			// Strictly ascending client ports: sequential probing, the
			// shape the scan detector's ascending-streak counter scores.
			text = fmt.Sprintf("Connection closed by %s port %d [preauth]",
				attacker, 1024+i*7)
		default:
			return nil, fmt.Errorf("loggen: unknown attack kind %q", kind)
		}
		ts := start.Add(time.Duration(float64(window) * float64(i) / float64(n)))
		out = append(out, Example{
			Text:     text,
			Category: taxonomy.IntrusionDetection,
			Node:     target,
			App:      "sshd",
			Severity: sev,
			Facility: syslog.AuthPriv,
			Time:     ts,
		})
	}
	g.now = start.Add(window)
	return out, nil
}
