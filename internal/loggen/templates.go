package loggen

import (
	"fmt"
	"math/rand"

	"hetsyslog/internal/syslog"
	"hetsyslog/internal/taxonomy"
)

// template is one message shape: an app/severity/facility triple and a
// generator that fills identifier slots. rev is the node's firmware
// revision; templates that drift produce different phrasing per revision,
// which is what breaks edit-distance bucketing across firmware updates.
type template struct {
	app    string
	sev    syslog.Severity
	fac    syslog.Facility
	arches []Arch // nil = all architectures
	gen    func(r *rand.Rand, n Node, rev int) string
}

func (t *template) appliesTo(a Arch) bool {
	if t.arches == nil {
		return true
	}
	for _, x := range t.arches {
		if x == a {
			return true
		}
	}
	return false
}

// pick returns one of the strings, uniformly.
func pick(r *rand.Rand, opts ...string) string { return opts[r.Intn(len(opts))] }

// Templates below are designed so the per-category TF-IDF top tokens land
// near the paper's Table 1:
//
//	Hardware:  timestamp, sync, clock, system, event
//	Intrusion: root, session, user, started, boot
//	Memory:    size, real_memory, low, cn, node
//	SSH:       closed, preauth, connection, port, user
//	Slurm:     version, update, slurm, please, node
//	Thermal:   processor, throttled, sensor, cpu, temperature
//	USB:       usb, device, hub, number, new
//	Unimportant: error, lpi_hbm_nn, job_argument, slurm_rpc_node_registration
var categoryTemplates = map[taxonomy.Category][]template{
	taxonomy.ThermalIssue: {
		{app: "kernel", sev: syslog.Warning, fac: syslog.Kern,
			arches: []Arch{X86Dell, X86Super, GPUNvidia},
			gen: func(r *rand.Rand, n Node, rev int) string {
				if rev > 0 {
					return fmt.Sprintf("CPU%d: Package temperature above threshold (%d C), cpu clock throttled by firmware (events=%d)",
						r.Intn(128), 85+r.Intn(20), r.Intn(100000))
				}
				return fmt.Sprintf("CPU%d: Core temperature above threshold, cpu clock throttled (total events = %d)",
					r.Intn(128), r.Intn(100000))
			}},
		{app: "ipmiseld", sev: syslog.Critical, fac: syslog.Daemon,
			arches: []Arch{X86Dell},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("CPU %d Temperature Above Non-Recoverable - Asserted. Current temperature: %dC",
					1+r.Intn(4), 90+r.Intn(20))
			}},
		{app: "ipmiseld", sev: syslog.Warning, fac: syslog.Daemon,
			arches: []Arch{X86Super, Power9IBM},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Sensor 'Processor %d Temp' reading %d degrees exceeds upper %s threshold on sensor bus %d",
					r.Intn(8), 80+r.Intn(30), pick(r, "critical", "non-critical"), r.Intn(4))
			}},
		{app: "kernel", sev: syslog.Warning, fac: syslog.Kern,
			arches: []Arch{ARMCav, ARMAmp},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("thermal thermal_zone%d: temperature sensor reports %d millidegrees, processor throttled to %d MHz",
					r.Intn(16), 80000+r.Intn(30000)*7, 1000+r.Intn(40)*50)
			}},
		{app: "kernel", sev: syslog.Warning, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Warning: Socket %d - CPU %d throttling, processor temperature sensor tripped at %d",
					r.Intn(2), r.Intn(256), 85+r.Intn(25))
			}},
		{app: "nvidia-smi", sev: syslog.Warning, fac: syslog.Daemon,
			arches: []Arch{GPUNvidia},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("GPU %08x:%02x:00.0: temperature %d exceeds slowdown threshold, clocks throttled by thermal sensor",
					r.Intn(0x10000), r.Intn(256), 88+r.Intn(14))
			}},
	},

	taxonomy.MemoryIssue: {
		{app: "slurmd", sev: syslog.Error, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				have := 150000 + r.Intn(100000)
				if rev > 0 {
					return fmt.Sprintf("error: node=%s reports real_memory %d below configured minimum %d, marking low", n.Name, have, 256000)
				}
				return fmt.Sprintf("error: Node %s has low real_memory size (%d < %d)", n.Name, have, 256000)
			}},
		{app: "kernel", sev: syslog.Error, fac: syslog.Kern,
			arches: []Arch{X86Dell, X86Super, GPUNvidia},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("EDAC MC%d: %d CE memory read error on CPU_SrcID#%d_MC#%d_Chan#%d_DIMM#%d node %s",
					r.Intn(8), 1+r.Intn(400), r.Intn(2), r.Intn(4), r.Intn(4), r.Intn(2), n.Name)
			}},
		{app: "kernel", sev: syslog.Critical, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Out of memory: Killed process %d (%s) total-vm:%dkB on node %s, low memory size remaining",
					1000+r.Intn(60000), pick(r, "python3", "mpirun", "lmp", "gmx"), 1000000+r.Intn(60000000), n.Name)
			}},
		{app: "mcelog", sev: syslog.Error, fac: syslog.Daemon,
			arches: []Arch{X86Dell, X86Super},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Corrected memory error on DIMM_%s%d rank %d, node %s memory size check scheduled",
					pick(r, "A", "B", "C", "D"), r.Intn(8), r.Intn(4), n.Name)
			}},
		{app: "kernel", sev: syslog.Error, fac: syslog.Kern,
			arches: []Arch{Power9IBM},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("EEH: Memory UE recovered on PHB#%d-PE#%x, node %s low real_memory window size %d",
					r.Intn(6), r.Intn(256), n.Name, 4096+r.Intn(8192))
			}},
	},

	taxonomy.SSHConnection: {
		{app: "sshd", sev: syslog.Info, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if rev > 0 {
					return fmt.Sprintf("Connection closed by authenticating client %s on port %d (preauth phase)", randIP(r), 1024+r.Intn(64000))
				}
				return fmt.Sprintf("Connection closed by %s port %d [preauth]", randIP(r), 1024+r.Intn(64000))
			}},
		{app: "sshd", sev: syslog.Info, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Disconnected from user %s %s port %d", randUser(r), randIP(r), 1024+r.Intn(64000))
			}},
		{app: "sshd", sev: syslog.Info, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Received disconnect from %s port %d:11: disconnected by user", randIP(r), 1024+r.Intn(64000))
			}},
		{app: "sshd", sev: syslog.Warning, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Connection reset by authenticating user %s %s port %d [preauth]",
					randUser(r), randIP(r), 1024+r.Intn(64000))
			}},
		{app: "sshd", sev: syslog.Info, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Timeout before authentication for connection from %s port %d, closed [preauth]",
					randIP(r), 1024+r.Intn(64000))
			}},
	},

	taxonomy.IntrusionDetection: {
		{app: "systemd-logind", sev: syslog.Info, fac: syslog.Auth,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if rev > 0 {
					return fmt.Sprintf("session %d for user root was started on seat%d following system boot", r.Intn(100000), r.Intn(4))
				}
				return fmt.Sprintf("New session %d of user root started on seat%d after boot", r.Intn(100000), r.Intn(4))
			}},
		{app: "sshd", sev: syslog.Notice, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("pam_unix(sshd:session): session opened for user root by (uid=%d)", r.Intn(2000))
			}},
		{app: "su", sev: syslog.Warning, fac: syslog.Auth,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("FAILED su for root by %s on pts/%d, session denied", randUser(r), r.Intn(32))
			}},
		{app: "sudo", sev: syslog.Alert, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("%s : user NOT in sudoers ; TTY=pts/%d ; USER=root ; COMMAND=%s",
					randUser(r), r.Intn(32), pick(r, "/bin/bash", "/usr/bin/vi /etc/shadow", "/usr/sbin/dmidecode"))
			}},
		{app: "audit", sev: syslog.Warning, fac: syslog.LogAudit,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("ANOM_LOGIN_FAILURES pid=%d uid=0 auid=%d ses=%d msg='user root boot console login failures exceeded'",
					r.Intn(65536), r.Intn(10000), r.Intn(100000))
			}},
		{app: "systemd-logind", sev: syslog.Info, fac: syslog.Auth,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Session %d of user %s started after unexpected system boot at runlevel %d",
					r.Intn(100000), randUser(r), 3+r.Intn(3))
			}},
	},

	taxonomy.SlurmIssue: {
		{app: "slurmd", sev: syslog.Error, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("slurmd version %d.%02d.%d differs from slurmctld, please update slurm on node %s",
					20+r.Intn(4), 2+r.Intn(10), r.Intn(9), n.Name)
			}},
		{app: "slurmctld", sev: syslog.Warning, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("update_node: node %s state set to DRAIN, reason: slurm version mismatch please update",
					n.Name)
			}},
	},

	taxonomy.USBDevice: {
		{app: "kernel", sev: syslog.Info, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if rev > 0 {
					return fmt.Sprintf("usb %d-%d: enumerated new high-speed USB device, assigned number %d (xhci_hcd rev2)",
						1+r.Intn(4), 1+r.Intn(8), 1+r.Intn(127))
				}
				return fmt.Sprintf("usb %d-%d: new high-speed USB device number %d using xhci_hcd",
					1+r.Intn(4), 1+r.Intn(8), 1+r.Intn(127))
			}},
		{app: "kernel", sev: syslog.Info, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("usb %d-%d: New USB device found, idVendor=%04x, idProduct=%04x, bcdDevice=%x.%02x",
					1+r.Intn(4), 1+r.Intn(8), r.Intn(0x10000), r.Intn(0x10000), r.Intn(16), r.Intn(256))
			}},
		{app: "kernel", sev: syslog.Info, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("hub %d-%d:1.0: USB hub found with %d ports, new device detection enabled",
					1+r.Intn(4), r.Intn(8), 2+r.Intn(8))
			}},
		{app: "kernel", sev: syslog.Info, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("usb %d-%d: USB disconnect, device number %d", 1+r.Intn(4), 1+r.Intn(8), 1+r.Intn(127))
			}},
	},

	taxonomy.HardwareIssue: {
		{app: "kernel", sev: syslog.Warning, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if rev > 0 {
					return fmt.Sprintf("clocksource watchdog: clock sync lost on cpu %d, measured timestamp skew of %d ns, system timing degraded",
						r.Intn(128), r.Intn(10000000))
				}
				return fmt.Sprintf("clocksource: timekeeping watchdog: system clock sync lost, timestamp skew %d ns on cpu %d",
					r.Intn(10000000), r.Intn(128))
			}},
		{app: "ipmiseld", sev: syslog.Error, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("BMC system event log entry %d: timestamp clock sync drift detected, event repeated %d times",
					r.Intn(100000), 1+r.Intn(50))
			}},
		{app: "chronyd", sev: syslog.Warning, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("System clock wrong by %d.%06d seconds, timestamp sync step applied at event %d",
					r.Intn(100), r.Intn(1000000), r.Intn(1000000))
			}},
		{app: "ipmiseld", sev: syslog.Critical, fac: syslog.Daemon,
			arches: []Arch{X86Dell, X86Super, Power9IBM},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Power Supply %d failure asserted on system event log, redundancy lost (event %d)",
					1+r.Intn(2), r.Intn(100000))
			}},
		{app: "kernel", sev: syslog.Error, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("Fan %d on system board below critical speed: %d RPM, hardware event timestamp %d",
					1+r.Intn(12), 100*r.Intn(30), r.Intn(10000000))
			}},
		{app: "kernel", sev: syslog.Error, fac: syslog.Kern,
			arches: []Arch{GPUNvidia},
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("NVRM: Xid (PCI:%04x:%02x:00): %d, GPU system event clock recovery, timestamp %d",
					r.Intn(0x10000), r.Intn(256), 13+r.Intn(80), r.Intn(100000000))
			}},
	},

	// Unimportant deliberately reuses salient words from the issue
	// categories ("error", "temperature", "connection", "memory") inside
	// routine status chatter — the source of the confusion the paper's
	// Figure 2 shows along the "Unimportant" row/column.
	taxonomy.Unimportant: {
		{app: "lpi_hbm_nn", sev: syslog.Info, fac: syslog.User,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("lpi_hbm_nn: job_argument %d processed, error code 0, %d tensors in %d usec",
					r.Intn(10000000), r.Intn(4096), r.Intn(10000000))
			}},
		{app: "slurmd", sev: syslog.Info, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("slurm_rpc_node_registration complete for %s usec=%d", n.Name, r.Intn(10000000))
			}},
		{app: "lpi_hbm_nn", sev: syslog.Info, fac: syslog.User,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("lpi_hbm_nn: stage %d checkpoint written, job_argument hash %08x, no error",
					r.Intn(64), r.Uint32())
			}},
		{app: "healthcheck", sev: syslog.Info, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("periodic probe %d: temperature sensors nominal, all %d processors idle, no error",
					r.Intn(1000000), 16+r.Intn(112))
			}},
		{app: "sshd", sev: syslog.Debug, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if r.Intn(2) == 0 {
					return fmt.Sprintf("debug1: rekey after %d blocks, cipher cache warm, counter %d",
						r.Intn(10000000), r.Intn(10000000))
				}
				return fmt.Sprintf("debug1: connection stats: %d bytes in %d out, session cache hit %d",
					r.Intn(10000000), r.Intn(10000000), r.Intn(1000))
			}},
		{app: "monitor", sev: syslog.Info, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("memory usage report: size %d MB of %d MB, watermark normal, error count 0",
					r.Intn(256000), 256000)
			}},
		{app: "systemd", sev: syslog.Info, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if r.Intn(2) == 0 {
					return fmt.Sprintf("Started Daily apt and cleanup timer run %d.", r.Intn(1000000))
				}
				return fmt.Sprintf("Started Session %d of user %s.", r.Intn(1000000), randUser(r))
			}},
		{app: "kernel", sev: syslog.Debug, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("perf: interrupt took too long (%d > %d), lowering kernel.perf_event_max_sample_rate to %d",
					2500+r.Intn(10000), 2500+r.Intn(5000), 1000*(1+r.Intn(50)))
			}},
		{app: "ntpd", sev: syslog.Info, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("kernel reports TIME_ERROR: 0x%x: Clock Unsynchronized poll %d (routine)", 0x2000+r.Intn(0x100), r.Intn(1024))
			}},
		{app: "cron", sev: syslog.Info, fac: syslog.Cron,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("(root) CMD (run-parts /etc/cron.hourly) job %d completed with error status 0 in %d ms",
					r.Intn(10000000), r.Intn(60000))
			}},
		// Ambiguous chatter: benign messages phrased in issue-category
		// vocabulary ("messages that use significant words from other
		// categories, but that aren't actually an interesting issue",
		// §5.1). Each keeps routine-telemetry anchor words so the
		// categories remain learnable, matching the paper's >0.95 F1.
		{app: "telemetry", sev: syslog.Info, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if r.Intn(2) == 0 {
					return fmt.Sprintf("telemetry sample %d: collection routine completed, poll interval %d usec, no error",
						r.Intn(10000000), r.Intn(1000000))
				}
				return fmt.Sprintf("telemetry sample %d: cpu temperature %dC nominal, sensor poll routine, no throttling required",
					r.Intn(10000000), 30+r.Intn(35))
			}},
		{app: "healthcheck", sev: syslog.Info, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if r.Intn(2) == 0 {
					return fmt.Sprintf("routine check %d completed ok on node %s, all probes nominal, no error",
						r.Intn(100000), n.Name)
				}
				return fmt.Sprintf("routine scrub pass %d completed: memory size %d verified ok on node %s",
					r.Intn(100000), 192000+r.Intn(64)*1000, n.Name)
			}},
		{app: "sshd", sev: syslog.Debug, fac: syslog.AuthPriv,
			gen: func(r *rand.Rand, n Node, rev int) string {
				return fmt.Sprintf("debug1: session stats for user %s: connection from %s port %d closed normally",
					randUser(r), randIP(r), 1024+r.Intn(64000))
			}},
		{app: "bmc-poll", sev: syslog.Info, fac: syslog.Daemon,
			gen: func(r *rand.Rand, n Node, rev int) string {
				if r.Intn(2) == 0 {
					return fmt.Sprintf("bmc poll %d finished: sensors read in %d usec, all nominal",
						r.Intn(10000000), r.Intn(1000000))
				}
				return fmt.Sprintf("system event log poll %d: clock sync ok, timestamp current, no new event",
					r.Intn(10000000))
			}},
		// Irreducible overlap: occasionally this agent echoes a message
		// that is *textually indistinguishable* from an issue category —
		// the admins labelled these noise because on this test-bed they
		// are a known benign quirk. No classifier can separate them,
		// which concentrates Figure 2's residual confusion on the
		// "Unimportant" row/column exactly as the paper observed.
		{app: "kernel", sev: syslog.Info, fac: syslog.Kern,
			gen: func(r *rand.Rand, n Node, rev int) string {
				switch r.Intn(16) {
				case 0:
					return fmt.Sprintf("Warning: Socket %d - CPU %d throttling, processor temperature sensor tripped at %d",
						r.Intn(2), r.Intn(256), 85+r.Intn(25))
				case 1:
					return fmt.Sprintf("Connection closed by %s port %d [preauth]", randIP(r), 1024+r.Intn(64000))
				default:
					return fmt.Sprintf("periodic agent heartbeat %d ok, no error, interval %d usec",
						r.Intn(10000000), r.Intn(1000000))
				}
			}},
	},
}

var userNames = []string{"alice", "bgrant", "cchen", "dkumar", "efranco",
	"gwu", "hlopez", "jsmith", "kpatel", "mjones", "nwhite", "psingh",
	"rgarcia", "tnguyen", "vkhan", "wzhao"}

func randUser(r *rand.Rand) string { return userNames[r.Intn(len(userNames))] }

func randIP(r *rand.Rand) string {
	return fmt.Sprintf("%d.%d.%d.%d", 10, r.Intn(32), r.Intn(256), 1+r.Intn(254))
}
