// Package loggen simulates the heterogeneous Darwin test-bed's syslog
// output. It substitutes for the paper's production data (DESIGN.md §2):
// multiple vendor/architecture families phrase the same issue differently,
// message identifiers vary (so the corpus contains hundreds of thousands of
// unique strings), the per-category volume follows Table 2, the "Unimportant"
// class deliberately reuses salient words from real categories (recreating
// the paper's confusion structure), and firmware updates can rewrite a
// family's phrasing mid-stream (the drift that defeats edit-distance
// bucketing, §3).
package loggen

import (
	"fmt"
	"math/rand"
)

// Arch identifies a node's architecture family. Darwin mixes x86, ARM,
// POWER and GPU nodes from several vendors.
type Arch string

// Architecture families in the simulated test-bed.
const (
	X86Dell   Arch = "x86_64-dell"
	X86Super  Arch = "x86_64-supermicro"
	ARMCav    Arch = "aarch64-cavium"
	ARMAmp    Arch = "aarch64-ampere"
	Power9IBM Arch = "ppc64le-ibm"
	GPUNvidia Arch = "x86_64-nvidia-gpu"
)

// Arches lists every simulated architecture.
func Arches() []Arch {
	return []Arch{X86Dell, X86Super, ARMCav, ARMAmp, Power9IBM, GPUNvidia}
}

// Node is one compute node with its physical placement — the topology the
// §4.5.2 positional analysis consumes.
type Node struct {
	Name string
	Arch Arch
	Rack int
	Slot int
}

// Cluster is the simulated test-bed: nodes grouped in racks, with a
// heterogeneous architecture mix per rack group (mirroring how test-beds
// install hardware generations rack by rack).
type Cluster struct {
	Nodes []Node
	racks int
}

// NewCluster builds a cluster of n nodes across ceil(n/nodesPerRack) racks.
// Architecture assignment is rack-granular: all nodes in a rack share an
// architecture, like real procurement batches.
func NewCluster(n, nodesPerRack int, seed int64) *Cluster {
	if nodesPerRack <= 0 {
		nodesPerRack = 16
	}
	rng := rand.New(rand.NewSource(seed))
	arches := Arches()
	c := &Cluster{}
	rack, slot := 0, 0
	rackArch := arches[rng.Intn(len(arches))]
	for i := 0; i < n; i++ {
		if slot == nodesPerRack {
			rack++
			slot = 0
			rackArch = arches[rng.Intn(len(arches))]
		}
		c.Nodes = append(c.Nodes, Node{
			Name: fmt.Sprintf("cn%03d", i+1),
			Arch: rackArch,
			Rack: rack,
			Slot: slot,
		})
		slot++
	}
	c.racks = rack + 1
	return c
}

// NumRacks returns the rack count.
func (c *Cluster) NumRacks() int { return c.racks }

// NodesInRack returns the nodes in the given rack.
func (c *Cluster) NodesInRack(rack int) []Node {
	var out []Node
	for _, n := range c.Nodes {
		if n.Rack == rack {
			out = append(out, n)
		}
	}
	return out
}

// NodesWithArch returns the nodes of one architecture — the §4.5.3
// per-architecture comparison group.
func (c *Cluster) NodesWithArch(a Arch) []Node {
	var out []Node
	for _, n := range c.Nodes {
		if n.Arch == a {
			out = append(out, n)
		}
	}
	return out
}

// Lookup returns the node with the given name.
func (c *Cluster) Lookup(name string) (Node, bool) {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}
