package collector

import (
	"errors"
	"fmt"
	"time"
)

// Config groups every pipeline knob behind one validated struct. The
// zero value is fully usable: zero fields fall back first to the
// pipeline's legacy loose fields (BatchSize, FlushInterval, MaxRetries,
// RetryBackoff, QueueDepth, FlushWorkers — the pre-Config API), then to
// the documented defaults. Validate reports every violation at once, not
// just the first.
type Config struct {
	// BatchSize flushes when a worker's buffer reaches this many records
	// (default 128).
	BatchSize int
	// FlushInterval flushes a partial buffer after this long
	// (default 250ms).
	FlushInterval time.Duration
	// MaxRetries bounds redelivery attempts per batch before the batch
	// is diverted to the spool (or dropped without one) (default 3).
	MaxRetries int
	// RetryBackoff is the initial backoff of the jittered exponential
	// ladder shared by per-batch retries and the circuit breaker's open
	// windows (default 10ms).
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the ladder (default 30s).
	MaxRetryBackoff time.Duration
	// RetryJitter is the random spread fraction on each backoff: a delay
	// is uniform in [base, base*(1+RetryJitter)] (default 0.5, which
	// desynchronizes concurrent flush workers retrying against the same
	// recovering sink). Set resilience.NoJitter (-1) for none.
	RetryJitter float64
	// QueueDepth is the buffered-channel depth between ingest and flush;
	// when full the source's emit blocks (backpressure, default 1024).
	QueueDepth int
	// FlushWorkers is the number of concurrent flusher goroutines
	// (default 1). Each worker keeps its own batch buffer and flush
	// timer, so up to FlushWorkers batches can be in flight against the
	// sink at once; the sink must then be safe for concurrent Write
	// calls (StoreSink and core.Service both are). With more than one
	// worker, batch delivery order is not the arrival order.
	FlushWorkers int
	// WriteTimeout bounds each individual Sink.Write attempt via its
	// context (default 30s). Shutdown never cancels an in-flight
	// attempt, so this is also the bound on shutdown latency.
	WriteTimeout time.Duration
	// BreakerThreshold is how many consecutive failed write attempts
	// trip the circuit breaker open (default 5). While open, batches
	// divert straight to the spool instead of hammering the sink.
	BreakerThreshold int
	// Seed seeds the jitter source (default 1), so retry schedules are
	// reproducible and differently seeded pipelines desynchronize.
	Seed int64
	// SpoolDir, when set, enables the disk spill queue: batches the sink
	// refuses are appended to a WAL under this directory and replayed in
	// order when the sink recovers (including across process restarts).
	SpoolDir string
	// SpoolMaxBytes bounds the spool; exceeding it evicts the oldest
	// segment (evicted records count as Dropped). 0 means unbounded.
	SpoolMaxBytes int64
	// ReplayInterval is how often the replayer polls the spool for
	// frames to push back into the sink (default 50ms).
	ReplayInterval time.Duration
	// SweepInterval is how often the pipeline calls Sweep(now) on stages
	// implementing the sweep lifecycle hook (default 1s). Negative
	// disables the ticker, leaving such stages to their own lazy sweeps;
	// it is therefore the one duration knob where a negative value is
	// meaningful rather than invalid.
	SweepInterval time.Duration
}

// Validate checks the configuration and returns every violation joined
// into one error (errors.Join), or nil. Zero values are not violations —
// they mean "use the default".
func (c Config) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("collector: "+format, args...))
	}
	if c.BatchSize < 0 {
		bad("BatchSize %d is negative", c.BatchSize)
	}
	if c.FlushInterval < 0 {
		bad("FlushInterval %v is negative", c.FlushInterval)
	}
	if c.MaxRetries < 0 {
		bad("MaxRetries %d is negative", c.MaxRetries)
	}
	if c.RetryBackoff < 0 {
		bad("RetryBackoff %v is negative", c.RetryBackoff)
	}
	if c.MaxRetryBackoff < 0 {
		bad("MaxRetryBackoff %v is negative", c.MaxRetryBackoff)
	}
	if c.MaxRetryBackoff > 0 && c.RetryBackoff > 0 && c.MaxRetryBackoff < c.RetryBackoff {
		bad("MaxRetryBackoff %v is below RetryBackoff %v", c.MaxRetryBackoff, c.RetryBackoff)
	}
	if c.RetryJitter < -1 {
		bad("RetryJitter %v is below resilience.NoJitter (-1)", c.RetryJitter)
	}
	if c.QueueDepth < 0 {
		bad("QueueDepth %d is negative", c.QueueDepth)
	}
	if c.FlushWorkers < 0 {
		bad("FlushWorkers %d is negative", c.FlushWorkers)
	}
	if c.WriteTimeout < 0 {
		bad("WriteTimeout %v is negative", c.WriteTimeout)
	}
	if c.BreakerThreshold < 0 {
		bad("BreakerThreshold %d is negative", c.BreakerThreshold)
	}
	if c.SpoolMaxBytes < 0 {
		bad("SpoolMaxBytes %d is negative", c.SpoolMaxBytes)
	}
	if c.SpoolMaxBytes > 0 && c.SpoolDir == "" {
		bad("SpoolMaxBytes %d set without SpoolDir", c.SpoolMaxBytes)
	}
	if c.ReplayInterval < 0 {
		bad("ReplayInterval %v is negative", c.ReplayInterval)
	}
	return errors.Join(errs...)
}

// fillFromLegacy backfills zero Config fields from the pipeline's
// deprecated loose knob fields, preserving the pre-Config API. A loose
// field <= 0 is treated as unset — the old defaults() ran with the
// documented default for it — so it is not copied into the Config and
// never reaches Validate, which only rejects negatives set explicitly
// on Config itself.
func (c *Config) fillFromLegacy(p *Pipeline) {
	if c.BatchSize == 0 && p.BatchSize > 0 {
		c.BatchSize = p.BatchSize
	}
	if c.FlushInterval == 0 && p.FlushInterval > 0 {
		c.FlushInterval = p.FlushInterval
	}
	if c.MaxRetries == 0 && p.MaxRetries > 0 {
		c.MaxRetries = p.MaxRetries
	}
	if c.RetryBackoff == 0 && p.RetryBackoff > 0 {
		c.RetryBackoff = p.RetryBackoff
	}
	if c.QueueDepth == 0 && p.QueueDepth > 0 {
		c.QueueDepth = p.QueueDepth
	}
	if c.FlushWorkers == 0 && p.FlushWorkers > 0 {
		c.FlushWorkers = p.FlushWorkers
	}
}

// withDefaults returns c with the documented default for every field
// still unset. It runs after Validate, so every field is non-negative
// here; the <= guards are only belt and braces.
func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 250 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.MaxRetryBackoff <= 0 {
		c.MaxRetryBackoff = 30 * time.Second
	}
	if c.MaxRetryBackoff < c.RetryBackoff {
		c.MaxRetryBackoff = c.RetryBackoff
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.FlushWorkers <= 0 {
		c.FlushWorkers = 1
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReplayInterval <= 0 {
		c.ReplayInterval = 50 * time.Millisecond
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Second
	}
	return c
}
