package collector

// Fault-injection tests for the delivery path: circuit breaker, disk
// spill queue, and the resilience.ChaosSink harness driving them. Test
// names deliberately contain Chaos/Spool/Breaker so CI's focused gate
// (`go test -run 'Chaos|Spool|Breaker' ./internal/...`) runs exactly
// this suite, with and without -race.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/raceflag"
	"hetsyslog/internal/resilience"
	"hetsyslog/internal/syslog"
)

// faultCfg is the shared aggressive-timer config for fault tests: small
// batches, fast retries, fast replay, so outages resolve in test time.
func faultCfg(spoolDir string) *Config {
	return &Config{
		BatchSize:        32,
		FlushInterval:    2 * time.Millisecond,
		MaxRetries:       1,
		RetryBackoff:     time.Millisecond,
		MaxRetryBackoff:  50 * time.Millisecond,
		BreakerThreshold: 3,
		WriteTimeout:     5 * time.Second,
		ReplayInterval:   5 * time.Millisecond,
		SpoolDir:         spoolDir,
	}
}

// checkInvariant asserts the accounting identity that every fault test
// must preserve: Ingested == Filtered + Flushed + Dropped + Spooled.
func checkInvariant(t *testing.T, s Stats) {
	t.Helper()
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant broken: Ingested (%d) != Filtered (%d) + Flushed (%d) + Dropped (%d) + Spooled (%d)",
			s.Ingested, s.Filtered, s.Flushed, s.Dropped, s.Spooled)
	}
}

// uniqueContents counts distinct message contents in the sink — the
// exactly-once/at-least-once discriminator under partial deliveries.
func uniqueContents(sink *MemorySink) map[string]int {
	seen := map[string]int{}
	for _, r := range sink.Records() {
		seen[r.Msg.Content]++
	}
	return seen
}

// waitUntil polls cond every 2ms until it holds or the timeout passes.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestChaosOutageZeroLossWithSpool is the headline acceptance test: a
// total sink outage starts with the first write and lasts seconds, the
// pipeline keeps ingesting at load the whole time, and when the sink
// recovers every record must be in the sink exactly once with
// Dropped == 0 — the outage costs latency, never data.
func TestChaosOutageZeroLossWithSpool(t *testing.T) {
	total, outage := 20000, 5*time.Second
	if raceflag.Enabled || testing.Short() {
		total, outage = 3000, time.Second
	}
	inner := &MemorySink{}
	chaos := resilience.NewChaosSink(inner.Write, resilience.ChaosPlan{
		OutageAfter: 0, OutageFor: outage,
	})
	p := &Pipeline{Sink: chaos, Config: faultCfg(t.TempDir())}
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()

	for i := 0; i < total; i++ {
		ch <- record(fmt.Sprintf("cn%d", i%64), "kernel", fmt.Sprintf("event %d", i), syslog.Info)
	}
	// The sink is down: records must be spooling, not dropping. Then the
	// outage ends and the replayer must drain the spool completely.
	if !waitUntil(outage+20*time.Second, func() bool {
		return len(inner.Records()) == total && p.Stats().Spooled == 0
	}) {
		t.Fatalf("after outage: delivered=%d/%d, stats=%+v", len(inner.Records()), total, p.Stats())
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	s := p.Stats()
	if s.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (outage must spool, not drop)", s.Dropped)
	}
	if s.Ingested != int64(total) || s.Flushed != int64(total) || s.Spooled != 0 {
		t.Errorf("stats = %+v, want Ingested=Flushed=%d Spooled=0", s, total)
	}
	checkInvariant(t, s)
	seen := uniqueContents(inner)
	if len(seen) != total {
		t.Fatalf("unique records = %d, want %d", len(seen), total)
	}
	for content, n := range seen {
		if n != 1 {
			t.Fatalf("record %q delivered %d times, want exactly once", content, n)
		}
	}
	if calls, faults := chaos.Stats(); faults == 0 {
		t.Errorf("chaos sink saw %d calls but injected no faults — outage never exercised", calls)
	}
}

// TestSpoolReplayExactlyOnce is the -race parity test: batches that fail
// their first deliveries spill to disk and are replayed, and every
// record still reaches the sink exactly once within the process.
func TestSpoolReplayExactlyOnce(t *testing.T) {
	const total = 600
	inner := &MemorySink{}
	var calls atomic.Int64
	flaky := SinkFunc(func(ctx context.Context, batch []Record) error {
		if calls.Add(1) <= 6 {
			return errors.New("sink down")
		}
		return inner.Write(ctx, batch)
	})
	p := &Pipeline{Sink: flaky, Config: faultCfg(t.TempDir())}
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	for i := 0; i < total; i++ {
		ch <- record("cn1", "slurmd", fmt.Sprintf("job step %d", i), syslog.Info)
	}
	if !waitUntil(20*time.Second, func() bool {
		return len(inner.Records()) == total && p.Stats().Spooled == 0
	}) {
		t.Fatalf("delivered=%d/%d, stats=%+v", len(inner.Records()), total, p.Stats())
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Dropped != 0 || s.Spooled != 0 {
		t.Errorf("stats = %+v, want Dropped=0 Spooled=0", s)
	}
	checkInvariant(t, s)
	for content, n := range uniqueContents(inner) {
		if n != 1 {
			t.Fatalf("record %q delivered %d times, want exactly once", content, n)
		}
	}
}

// TestSpoolRecoveryAcrossRestart runs one pipeline against a dead sink
// (everything spools), tears it down, then starts a second pipeline over
// the same spool directory with a healthy sink: the recovered records
// must enter the new run's books as Ingested and land in the sink.
func TestSpoolRecoveryAcrossRestart(t *testing.T) {
	const total = 120
	dir := t.TempDir()

	dead := SinkFunc(func(context.Context, []Record) error {
		return errors.New("sink down for the whole run")
	})
	p1 := &Pipeline{Sink: dead, Config: faultCfg(dir)}
	ch := make(chan Record)
	p1.Source = &ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p1.Run(context.Background()) }()
	for i := 0; i < total; i++ {
		ch <- record("cn2", "kernel", fmt.Sprintf("pre-crash %d", i), syslog.Warning)
	}
	if !waitUntil(10*time.Second, func() bool { return p1.Stats().Spooled == int64(total) }) {
		t.Fatalf("run 1 never spooled everything: %+v", p1.Stats())
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s1 := p1.Stats()
	if s1.Dropped != 0 || s1.Spooled != int64(total) || s1.Flushed != 0 {
		t.Fatalf("run 1 stats = %+v, want all %d records spooled", s1, total)
	}
	checkInvariant(t, s1)

	// "Restart": a fresh pipeline over the same directory, healthy sink,
	// no new input. Run's final drain replays the recovered records even
	// though the source closes immediately.
	sink := &MemorySink{}
	p2 := &Pipeline{Sink: sink, Config: faultCfg(dir)}
	ch2 := make(chan Record)
	p2.Source = &ChannelSource{Ch: ch2}
	close(ch2)
	if err := p2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := p2.Stats()
	if got := len(sink.Records()); got != total {
		t.Fatalf("recovered records delivered = %d, want %d", got, total)
	}
	if s2.Ingested != int64(total) || s2.Flushed != int64(total) || s2.Spooled != 0 || s2.Dropped != 0 {
		t.Errorf("run 2 stats = %+v, want Ingested=Flushed=%d", s2, total)
	}
	checkInvariant(t, s2)
}

// TestSpoolCatchesShutdownMidFlush cancels the pipeline while a batch is
// mid-retry against a failing sink: with a spool configured the
// abandoned batch must spill to disk (Spooled), not vanish (Dropped) —
// the durability counterpart of TestShutdownInterruptsRetryBackoff.
func TestSpoolCatchesShutdownMidFlush(t *testing.T) {
	var calls atomic.Int64
	failing := SinkFunc(func(context.Context, []Record) error {
		calls.Add(1)
		return errors.New("sink down")
	})
	cfg := faultCfg(t.TempDir())
	cfg.BatchSize = 1
	cfg.FlushInterval = time.Millisecond
	cfg.MaxRetries = 10
	cfg.RetryBackoff = 30 * time.Second // ladder would take minutes
	cfg.MaxRetryBackoff = time.Minute
	cfg.BreakerThreshold = 100 // keep the breaker out of this test
	p := &Pipeline{Sink: failing, Config: cfg}
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	ch <- record("cn1", "kernel", "doomed but durable", syslog.Info)
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	cancel()
	close(ch)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung in retry backoff")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("shutdown took %v, want prompt exit from backoff", elapsed)
	}
	s := p.Stats()
	if s.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (batch must spill to disk)", s.Dropped)
	}
	if s.Spooled != 1 {
		t.Errorf("Spooled = %d, want 1 (batch abandoned mid-retry)", s.Spooled)
	}
	checkInvariant(t, s)
}

// TestChaosPartialDeliveryAtLeastOnce turns on the nastiest failure mode:
// the sink delivers a prefix of the batch, then errors. Redelivery means
// duplicates are allowed, but every record must still arrive at least
// once and nothing may be dropped.
func TestChaosPartialDeliveryAtLeastOnce(t *testing.T) {
	const total = 400
	inner := &MemorySink{}
	chaos := resilience.NewChaosSink(inner.Write, resilience.ChaosPlan{
		Seed: 7, ErrorRate: 0.3, PartialRate: 1.0,
	})
	cfg := faultCfg(t.TempDir())
	cfg.BatchSize = 8
	p := &Pipeline{Sink: chaos, Config: cfg}
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	for i := 0; i < total; i++ {
		ch <- record("cn3", "sshd", fmt.Sprintf("session %d", i), syslog.Info)
	}
	if !waitUntil(30*time.Second, func() bool {
		return len(uniqueContents(inner)) == total && p.Stats().Spooled == 0
	}) {
		t.Fatalf("unique=%d/%d, stats=%+v", len(uniqueContents(inner)), total, p.Stats())
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", s.Dropped)
	}
	checkInvariant(t, s)
	if _, faults := chaos.Stats(); faults == 0 {
		t.Error("chaos plan injected no faults — partial path never exercised")
	}
}

// TestChaosSlowSinkNoLoss injects random latency (a slow sink rather
// than a dead one) and checks delivery stays lossless under it.
func TestChaosSlowSinkNoLoss(t *testing.T) {
	const total = 200
	inner := &MemorySink{}
	chaos := resilience.NewChaosSink(inner.Write, resilience.ChaosPlan{
		Seed: 3, MaxDelay: 4 * time.Millisecond,
	})
	cfg := faultCfg(t.TempDir())
	cfg.FlushWorkers = 2
	p := &Pipeline{Sink: chaos, Config: cfg}
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < total; i++ {
			ch <- record("cn4", "kernel", fmt.Sprintf("slow %d", i), syslog.Info)
		}
	})
	s := p.Stats()
	if got := len(inner.Records()); got != total {
		t.Fatalf("delivered = %d, want %d", got, total)
	}
	if s.Dropped != 0 || s.Spooled != 0 {
		t.Errorf("stats = %+v", s)
	}
	checkInvariant(t, s)
}

// TestBreakerTripsInsteadOfHammeringSink checks that a dead sink stops
// seeing write attempts once the breaker opens: without the breaker a
// run this size would hit the sink once per batch times retries.
func TestBreakerTripsInsteadOfHammeringSink(t *testing.T) {
	const batches = 50
	var calls atomic.Int64
	dead := SinkFunc(func(context.Context, []Record) error {
		calls.Add(1)
		return errors.New("sink down")
	})
	cfg := faultCfg(t.TempDir())
	cfg.BatchSize = 1
	cfg.RetryBackoff = 50 * time.Millisecond // open windows outlast the test body
	cfg.MaxRetryBackoff = time.Second
	p := &Pipeline{Sink: dead, Config: cfg}
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < batches; i++ {
			ch <- record("cn5", "kernel", fmt.Sprintf("storm %d", i), syslog.Emergency)
		}
	})
	s := p.Stats()
	// Every record is safe on disk regardless of how often the sink was hit.
	if s.Dropped != 0 || s.Spooled != int64(batches) {
		t.Errorf("stats = %+v, want all %d records spooled", s, batches)
	}
	checkInvariant(t, s)
	// The breaker admits at most threshold failures plus occasional
	// half-open probes; far fewer than one attempt per batch.
	if got := calls.Load(); got >= batches {
		t.Errorf("sink saw %d write attempts for %d batches; breaker never opened", got, batches)
	}
}

// TestBreakerAndSpoolMetricsExported checks the new gauges and counters
// are visible on /metrics while the pipeline runs: breaker state, spool
// occupancy, replay/eviction counters, per-attempt latency histogram.
func TestBreakerAndSpoolMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	var calls atomic.Int64
	inner := &MemorySink{}
	flaky := SinkFunc(func(ctx context.Context, batch []Record) error {
		if calls.Add(1) <= 2 {
			return errors.New("warmup failure")
		}
		return inner.Write(ctx, batch)
	})
	p := &Pipeline{Sink: flaky, Config: faultCfg(t.TempDir()), Metrics: reg}
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	for i := 0; i < 10; i++ {
		ch <- record("cn6", "kernel", fmt.Sprintf("observable %d", i), syslog.Info)
	}
	if !waitUntil(10*time.Second, func() bool { return len(inner.Records()) == 10 }) {
		t.Fatalf("delivery stalled: %+v", p.Stats())
	}

	// Scrape while the pipeline is live: the breaker and spool gauges are
	// registered by Run.
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, metric := range []string{
		"sink_breaker_state",
		"spool_bytes",
		"spool_segments",
		"spool_replayed_total",
		"spool_evicted_total",
		"pipeline_spooled",
		"pipeline_spooled_total",
		"sink_write_attempt_seconds",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics is missing %s", metric)
		}
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSpoolEvictionCountsAsDropped bounds the spool far below the
// workload against a dead sink: the oldest records must be evicted,
// counted as Dropped, and the invariant must still balance.
func TestSpoolEvictionCountsAsDropped(t *testing.T) {
	const total = 300
	dead := SinkFunc(func(context.Context, []Record) error {
		return errors.New("sink down")
	})
	cfg := faultCfg(t.TempDir())
	cfg.BatchSize = 10
	cfg.SpoolMaxBytes = 8 * 1024 // a handful of gob batches
	p := &Pipeline{Sink: dead, Config: cfg}
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < total; i++ {
			ch <- record("cn7", "kernel", fmt.Sprintf("flood %d with some padding to grow frames", i), syslog.Info)
		}
	})
	s := p.Stats()
	if s.Dropped == 0 {
		t.Error("expected evictions under the byte bound to count as Dropped")
	}
	if s.Spooled == 0 {
		t.Error("expected the newest records to survive in the spool")
	}
	if s.Dropped+s.Spooled != total {
		t.Errorf("Dropped (%d) + Spooled (%d) != %d", s.Dropped, s.Spooled, total)
	}
	checkInvariant(t, s)
}

// TestSpoolReplayEvictionRaceNoLoss deterministically reproduces the
// replay/eviction race: while a replayed frame's sink write is in
// flight, a concurrent divert evicts that frame's segment from the
// bounded spool. Before the FrameToken fix, Pop then consumed the next
// (never-delivered) frame — losing it without any accounting — and the
// delivered frame was double-counted as both Dropped (eviction) and
// Flushed. Now every record must reach the sink exactly once, end with
// Dropped == 0, and keep the invariant balanced.
func TestSpoolReplayEvictionRaceNoLoss(t *testing.T) {
	mkBatch := func(prefix string) []Record {
		b := make([]Record, 3)
		for i := range b {
			b[i] = record("cn9", "kernel", fmt.Sprintf("%s %d", prefix, i), syslog.Info)
		}
		return b
	}
	// Same-length prefixes so the three gob frames are byte-identical in
	// size and the spool bound below admits exactly two of them.
	batchA, batchB, batchC := mkBatch("evict-a"), mkBatch("frame-b"), mkBatch("frame-c")
	payA, err := encodeBatch(batchA)
	if err != nil {
		t.Fatal(err)
	}
	payB, err := encodeBatch(batchB)
	if err != nil {
		t.Fatal(err)
	}

	inner := &MemorySink{}
	p := &Pipeline{Source: sourceFunc(func(context.Context, func(Record) error) error { return nil })}
	var raced atomic.Bool
	p.Sink = SinkFunc(func(ctx context.Context, batch []Record) error {
		if raced.CompareAndSwap(false, true) {
			// Mid-write of frame A: a flush worker diverts a new batch,
			// overflowing the bound and evicting frame A's segment.
			p.divert(batchC)
		}
		return inner.Write(ctx, batch)
	})
	if err := p.prepare(); err != nil {
		t.Fatal(err)
	}
	p.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 3, InitialBackoff: time.Millisecond,
		MaxBackoff: 10 * time.Millisecond, Seed: 1,
	})
	// SegmentBytes 1 puts every frame in its own segment; the bound holds
	// exactly two frames (12 bytes of header per frame).
	spool, err := resilience.OpenSpool(resilience.SpoolConfig{
		Dir:          t.TempDir(),
		MaxBytes:     int64(len(payA) + len(payB) + 2*12),
		SegmentBytes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer spool.Close()
	p.spool = spool

	p.ingested.Add(9) // the three batches, as if emitted by a source
	p.divert(batchA)
	p.divert(batchB)
	p.replayDrain(context.Background())

	s := p.Stats()
	if s.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (evicted-mid-replay frame was delivered)", s.Dropped)
	}
	if s.Flushed != 9 || s.Spooled != 0 {
		t.Errorf("stats = %+v, want Flushed=9 Spooled=0", s)
	}
	checkInvariant(t, s)
	seen := uniqueContents(inner)
	if len(seen) != 9 {
		t.Fatalf("unique records delivered = %d, want 9 (frame B must not be consumed undelivered)", len(seen))
	}
	for content, n := range seen {
		if n != 1 {
			t.Errorf("record %q delivered %d times, want exactly once", content, n)
		}
	}
	if got := p.evicted.Value(); got != 0 {
		t.Errorf("spool_evicted_total = %d, want 0 after reclassification", got)
	}
}

// sourceFunc adapts a function to Source for tests.
type sourceFunc func(ctx context.Context, emit func(Record) error) error

func (f sourceFunc) Run(ctx context.Context, emit func(Record) error) error { return f(ctx, emit) }

// TestEmitReturnsErrPipelineClosed wedges the queue behind a blocked
// sink, cancels the pipeline, and checks the source's emit callback
// reports typed ErrPipelineClosed instead of silently discarding.
func TestEmitReturnsErrPipelineClosed(t *testing.T) {
	release := make(chan struct{})
	blocking := SinkFunc(func(ctx context.Context, batch []Record) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	emitErr := make(chan error, 1)
	src := sourceFunc(func(ctx context.Context, emit func(Record) error) error {
		for i := 0; ; i++ {
			if err := emit(record("cn8", "kernel", fmt.Sprintf("m%d", i), syslog.Info)); err != nil {
				emitErr <- err
				return err
			}
		}
	})
	p := &Pipeline{
		Source: src, Sink: blocking,
		Config: &Config{BatchSize: 1, FlushInterval: time.Millisecond, QueueDepth: 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	time.Sleep(20 * time.Millisecond) // let the queue wedge behind the sink
	cancel()
	select {
	case err := <-emitErr:
		if !errors.Is(err, ErrPipelineClosed) {
			t.Errorf("emit error = %v, want ErrPipelineClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("emit never returned after cancel")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want nil (ErrPipelineClosed is a clean shutdown)", err)
	}
	checkInvariant(t, p.Stats())
}

// TestSyslogSourceStopsOnEmitError checks the network source tears its
// listeners down when the pipeline reports closed, instead of parsing
// records nobody will take.
func TestSyslogSourceStopsOnEmitError(t *testing.T) {
	src := NewSyslogSource("127.0.0.1:0", "")
	done := make(chan error, 1)
	go func() {
		done <- src.Run(context.Background(), func(Record) error { return ErrPipelineClosed })
	}()
	<-src.Ready()
	snd, err := syslog.DialSender("udp", src.BoundUDP, syslog.FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	deadline := time.After(5 * time.Second)
	for {
		// UDP may drop; keep sending until the refused emit closes the server.
		_ = snd.Send(&syslog.Message{
			Facility: syslog.Kern, Severity: syslog.Info,
			Timestamp: time.Now(), Hostname: "cn9", AppName: "kernel",
			Content: "one record is enough",
		})
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Run = %v", err)
			}
			return
		case <-deadline:
			t.Fatal("source kept running after emit reported the pipeline closed")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// legacyMemorySink implements the deprecated LegacySink interface.
type legacyMemorySink struct {
	inner MemorySink
}

func (s *legacyMemorySink) Write(batch []Record) error {
	return s.inner.Write(context.Background(), batch)
}

// TestAdaptSinkBridgesLegacySinks checks pre-context sinks still slot
// into the pipeline through the AdaptSink shim.
func TestAdaptSinkBridgesLegacySinks(t *testing.T) {
	legacy := &legacyMemorySink{}
	p := &Pipeline{Sink: AdaptSink(legacy), BatchSize: 4, FlushInterval: time.Millisecond}
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < 10; i++ {
			ch <- record("cn10", "kernel", fmt.Sprintf("legacy %d", i), syslog.Info)
		}
	})
	if got := len(legacy.inner.Records()); got != 10 {
		t.Fatalf("legacy sink got %d records, want 10", got)
	}
}

// TestConfigValidateReturnsAllViolations checks Validate reports every
// problem in one error instead of stopping at the first.
func TestConfigValidateReturnsAllViolations(t *testing.T) {
	bad := Config{
		BatchSize:        -1,
		FlushInterval:    -time.Second,
		MaxRetries:       -2,
		RetryBackoff:     time.Second,
		MaxRetryBackoff:  time.Millisecond, // below RetryBackoff
		RetryJitter:      -2,               // below NoJitter
		QueueDepth:       -3,
		FlushWorkers:     -1,
		WriteTimeout:     -time.Second,
		BreakerThreshold: -5,
		SpoolMaxBytes:    1024, // without SpoolDir
		ReplayInterval:   -time.Millisecond,
	}
	err := bad.Validate()
	if err == nil {
		t.Fatal("want an error")
	}
	for _, field := range []string{
		"BatchSize", "FlushInterval", "MaxRetries", "MaxRetryBackoff",
		"RetryJitter", "QueueDepth", "FlushWorkers", "WriteTimeout",
		"BreakerThreshold", "SpoolMaxBytes", "ReplayInterval",
	} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("Validate error does not mention %s: %v", field, err)
		}
	}
	if got := len(strings.Split(err.Error(), "\n")); got < 11 {
		t.Errorf("Validate reported %d violations, want all 11", got)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero Config must validate: %v", err)
	}
	if err := faultCfg(t.TempDir()).Validate(); err != nil {
		t.Errorf("fault test Config must validate: %v", err)
	}
}

// TestConfigLegacyFieldFallback checks the deprecated loose Pipeline
// fields still work (Config zero fields fall back to them) and that an
// explicit Config wins over loose fields.
func TestConfigLegacyFieldFallback(t *testing.T) {
	p := &Pipeline{
		Source: &ChannelSource{}, Sink: &MemorySink{},
		BatchSize: 7, FlushInterval: 9 * time.Millisecond, MaxRetries: 2,
		RetryBackoff: 3 * time.Millisecond, QueueDepth: 5, FlushWorkers: 2,
	}
	if err := p.prepare(); err != nil {
		t.Fatal(err)
	}
	cfg := p.cfg
	if cfg.BatchSize != 7 || cfg.FlushInterval != 9*time.Millisecond ||
		cfg.MaxRetries != 2 || cfg.RetryBackoff != 3*time.Millisecond ||
		cfg.QueueDepth != 5 || cfg.FlushWorkers != 2 {
		t.Errorf("legacy fields not honored: %+v", cfg)
	}
	// Fields the legacy API never had get their documented defaults.
	if cfg.WriteTimeout != 30*time.Second || cfg.BreakerThreshold != 5 || cfg.Seed != 1 {
		t.Errorf("defaults not filled: %+v", cfg)
	}

	p2 := &Pipeline{
		Source: &ChannelSource{}, Sink: &MemorySink{},
		BatchSize: 7,
		Config:    &Config{BatchSize: 11},
	}
	if err := p2.prepare(); err != nil {
		t.Fatal(err)
	}
	if p2.cfg.BatchSize != 11 {
		t.Errorf("Config.BatchSize = %d, want 11 (Config wins over loose fields)", p2.cfg.BatchSize)
	}

	// Negative loose fields mean "unset" under the pre-Config API (the
	// old defaults() clamped them): they must resolve to the defaults,
	// not be rejected by Validate.
	p3 := &Pipeline{
		Source: &ChannelSource{}, Sink: &MemorySink{},
		BatchSize: -1, FlushInterval: -time.Second, MaxRetries: -2,
		RetryBackoff: -time.Millisecond, QueueDepth: -5, FlushWorkers: -1,
	}
	if err := p3.prepare(); err != nil {
		t.Fatalf("negative legacy fields must fall back to defaults, got error: %v", err)
	}
	if p3.cfg.BatchSize != 128 || p3.cfg.FlushInterval != 250*time.Millisecond ||
		p3.cfg.MaxRetries != 3 || p3.cfg.RetryBackoff != 10*time.Millisecond ||
		p3.cfg.QueueDepth != 1024 || p3.cfg.FlushWorkers != 1 {
		t.Errorf("negative legacy fields not defaulted: %+v", p3.cfg)
	}
	// A negative field set explicitly on Config stays an error.
	p4 := &Pipeline{
		Source: &ChannelSource{}, Sink: &MemorySink{},
		Config: &Config{BatchSize: -1},
	}
	if err := p4.prepare(); err == nil {
		t.Error("negative Config.BatchSize must be rejected by Validate")
	}
}

// TestWithMetasCopiesOnce checks the multi-key enrichment path both for
// correctness and for its reason to exist: one map copy for n keys,
// strictly cheaper than the equivalent WithMeta chain.
func TestWithMetasCopiesOnce(t *testing.T) {
	base := record("cn11", "kernel", "x", syslog.Info).WithMeta("existing", "kept")
	r := base.WithMetas("rack", "r3", "arch", "aarch64")
	if r.Meta["existing"] != "kept" || r.Meta["rack"] != "r3" || r.Meta["arch"] != "aarch64" {
		t.Errorf("meta = %+v", r.Meta)
	}
	if base.Meta["rack"] != "" {
		t.Error("WithMetas must not mutate the receiver's map")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd kv list must panic")
			}
		}()
		base.WithMetas("dangling")
	}()

	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	multi := testing.AllocsPerRun(200, func() {
		benchRecord = base.WithMetas("rack", "r3", "arch", "aarch64")
	})
	chain := testing.AllocsPerRun(200, func() {
		benchRecord = base.WithMeta("rack", "r3").WithMeta("arch", "aarch64")
	})
	if multi >= chain {
		t.Errorf("WithMetas allocs = %.1f, chained WithMeta = %.1f; the batched path must be cheaper", multi, chain)
	}
}

// benchRecord keeps benchmark/alloc-count results live so the compiler
// cannot elide the map copies under measurement.
var benchRecord Record

// BenchmarkRecordWithMetas contrasts the batched enrichment path against
// the chained one (satellite fix: the chain copies the map per key).
func BenchmarkRecordWithMetas(b *testing.B) {
	base := record("cn12", "kernel", "x", syslog.Info).WithMeta("existing", "kept")
	b.Run("WithMetas", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchRecord = base.WithMetas("rack", "r3", "arch", "aarch64")
		}
	})
	b.Run("WithMetaChain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchRecord = base.WithMeta("rack", "r3").WithMeta("arch", "aarch64")
		}
	})
}
