package collector

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/syslog"
)

// sliceBatchSource is a BatchSource feeding fixed batches, mixing the
// single-record and batch emit paths like a real listener under light load.
type sliceBatchSource struct {
	batches  [][]Record
	ranBatch atomic.Bool
}

func (s *sliceBatchSource) Run(ctx context.Context, emit func(Record) error) error {
	for _, b := range s.batches {
		for _, r := range b {
			if err := emit(r); err != nil {
				return nil
			}
		}
	}
	return nil
}

func (s *sliceBatchSource) RunBatch(ctx context.Context, emit func(Record) error,
	emitBatch func([]Record) error) error {
	s.ranBatch.Store(true)
	for i, b := range s.batches {
		if i%3 == 2 { // every third batch goes record-by-record
			for _, r := range b {
				if err := emit(r); err != nil {
					return nil
				}
			}
			continue
		}
		if err := emitBatch(b); err != nil {
			return nil
		}
	}
	return nil
}

func makeBatches(nBatches, perBatch int) [][]Record {
	out := make([][]Record, nBatches)
	i := 0
	for b := range out {
		batch := make([]Record, perBatch)
		for j := range batch {
			sev := syslog.Info
			if i%4 == 0 {
				sev = syslog.Debug // filtered out below
			}
			batch[j] = record(fmt.Sprintf("cn%d", i%8), "kernel",
				fmt.Sprintf("batched message %d", i), sev)
			i++
		}
		out[b] = batch
	}
	return out
}

// TestPipelinePrefersBatchSource: a source implementing BatchSource is
// driven through RunBatch, the filter chain still applies per record, and
// the accounting invariant holds exactly.
func TestPipelinePrefersBatchSource(t *testing.T) {
	const nBatches, perBatch = 12, 10
	src := &sliceBatchSource{batches: makeBatches(nBatches, perBatch)}
	sink := &MemorySink{}
	p := &Pipeline{
		Source: src, Sink: sink,
		BatchSize: 16, FlushInterval: time.Millisecond,
		Filters: []Filter{SeverityFilter(syslog.Info)},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !src.ranBatch.Load() {
		t.Fatal("pipeline used Run instead of RunBatch for a BatchSource")
	}
	total := int64(nBatches * perBatch)
	filtered := int64(nBatches * perBatch / 4) // every 4th record is Debug
	s := p.Stats()
	if s.Ingested != total || s.Filtered != filtered || s.Dropped != 0 {
		t.Errorf("stats = %+v, want Ingested=%d Filtered=%d", s, total, filtered)
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant broken: %+v", s)
	}
	if got := int64(len(sink.Records())); got != s.Flushed {
		t.Errorf("sink has %d records, Flushed = %d", got, s.Flushed)
	}
}

// TestBatchRefusalCountsDropped cancels the pipeline while the flusher is
// blocked and the queue is full, so batch handoffs get refused — every
// refused record must land in Dropped and keep the invariant exact.
func TestBatchRefusalCountsDropped(t *testing.T) {
	release := make(chan struct{})
	blocking := SinkFunc(func(ctx context.Context, batch []Record) error {
		<-release
		return nil
	})
	src := &sliceBatchSource{batches: makeBatches(50, 8)}
	p := &Pipeline{
		Source: src, Sink: blocking,
		BatchSize: 2, FlushInterval: time.Millisecond, QueueDepth: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Dropped == 0 {
		t.Error("expected refused batch records to count as Dropped")
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant broken: %+v", s)
	}
}

// TestSyslogSourceBatchedTCPEndToEnd drives the full batched path — one
// TCP write carrying many frames, listener drain, BatchHandler, emitBatch,
// chunked queue, sink — and checks exact counts, per-record content, and
// the queue-depth gauge returning to zero.
func TestSyslogSourceBatchedTCPEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	src := NewSyslogSource("", "127.0.0.1:0")
	src.MaxBatch = 8
	src.Metrics = reg
	sink := &MemorySink{}
	p := &Pipeline{
		Source: src, Sink: sink, Metrics: reg,
		BatchSize: 16, FlushInterval: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	<-src.Ready()

	conn, err := net.Dial("tcp", src.BoundTCP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 100
	var sb strings.Builder
	for i := 0; i < n; i++ {
		wire := syslog.FormatRFC5424(&syslog.Message{
			Facility: syslog.Kern, Severity: syslog.Warning,
			Timestamp: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
			Hostname:  "cn42", AppName: "kernel",
			Content: fmt.Sprintf("thermal event %d", i),
		})
		fmt.Fprintf(&sb, "%d %s", len(wire), wire)
	}
	if _, err := conn.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	if !sink.WaitFor(n, 5*time.Second) {
		t.Fatalf("only %d records arrived", len(sink.Records()))
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	s := p.Stats()
	if s.Ingested != n || s.Flushed != n || s.Dropped != 0 || s.Filtered != 0 {
		t.Errorf("stats = %+v, want %d clean deliveries", s, n)
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant broken: %+v", s)
	}
	recs := sink.Records()
	for i, r := range recs {
		want := fmt.Sprintf("thermal event %d", i)
		if r.Msg == nil || r.Msg.Content != want || r.Msg.Hostname != "cn42" {
			t.Fatalf("record %d = %+v, want content %q", i, r.Msg, want)
		}
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pipeline_queue_depth 0",
		fmt.Sprintf("syslog_received_total %d", n),
		"pipeline_ingested_total 100",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
