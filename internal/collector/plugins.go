package collector

import (
	"context"
	"sync"
	"time"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
)

// SyslogSource ingests from network syslog listeners (the paper's
// rsyslog -> Fluentd hop).
type SyslogSource struct {
	// UDPAddr and TCPAddr are listen addresses; empty disables that
	// listener. Use "127.0.0.1:0" to pick free ports.
	UDPAddr string
	TCPAddr string
	// Tag stamps every record (default "syslog").
	Tag string
	// MaxBatch caps the per-read-loop message batches the listener hands
	// to the batched ingest path (syslog.Server.MaxBatch); 0 means
	// syslog.DefaultMaxBatch.
	MaxBatch int
	// Metrics optionally publishes the underlying syslog server's
	// counters into a shared registry; set it before Run.
	Metrics *obs.Registry

	server *syslog.Server
	// BoundUDP/BoundTCP expose the actual addresses after Run starts
	// (for tests and examples using port 0).
	BoundUDP string
	BoundTCP string
	ready    chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

// NewSyslogSource returns a source listening on the given addresses.
func NewSyslogSource(udpAddr, tcpAddr string) *SyslogSource {
	return &SyslogSource{UDPAddr: udpAddr, TCPAddr: tcpAddr, Tag: "syslog",
		ready: make(chan struct{}), stop: make(chan struct{})}
}

// Ready is closed once the listeners are bound.
func (s *SyslogSource) Ready() <-chan struct{} { return s.ready }

// Run implements Source. When emit reports the pipeline closed, the
// listeners shut down instead of parsing records nobody will take. The
// listener's messages are pooled, so every retained one is Leased: the
// pipeline's Release hook (when configured) recycles it after final
// disposition, and an unhooked pipeline simply lets it fall to the GC
// exactly as Detach used to.
func (s *SyslogSource) Run(ctx context.Context, emit func(Record) error) error {
	return s.run(ctx, syslog.HandlerFunc(func(m *syslog.Message) {
		if err := emit(Record{Tag: s.Tag, Time: m.Timestamp, Msg: m.Lease()}); err != nil {
			s.stopOnce.Do(func() { close(s.stop) })
		}
	}))
}

// RunBatch implements BatchSource: the listener's per-read-loop batches
// flow through emitBatch, one pipeline handoff per batch.
func (s *SyslogSource) RunBatch(ctx context.Context, emit func(Record) error,
	emitBatch func([]Record) error) error {
	return s.run(ctx, &sourceBatchHandler{src: s, emit: emit, emitBatch: emitBatch})
}

func (s *SyslogSource) run(ctx context.Context, h syslog.Handler) error {
	s.server = &syslog.Server{Metrics: s.Metrics, Handler: h, MaxBatch: s.MaxBatch}
	if s.UDPAddr != "" {
		addr, err := s.server.ListenUDP(s.UDPAddr)
		if err != nil {
			return err
		}
		s.BoundUDP = addr.String()
	}
	if s.TCPAddr != "" {
		addr, err := s.server.ListenTCP(s.TCPAddr)
		if err != nil {
			return err
		}
		s.BoundTCP = addr.String()
	}
	close(s.ready)
	select {
	case <-ctx.Done():
	case <-s.stop:
	}
	return s.server.Close()
}

// sourceBatchHandler adapts the listener's BatchHandler delivery to the
// pipeline's emitBatch. It must be safe for concurrent use (the UDP loop
// and every TCP connection deliver on their own goroutines), so the
// Record staging buffers come from a pool rather than being shared state.
type sourceBatchHandler struct {
	src       *SyslogSource
	emit      func(Record) error
	emitBatch func([]Record) error
	recsPool  sync.Pool
}

func (h *sourceBatchHandler) HandleSyslog(m *syslog.Message) {
	if err := h.emit(Record{Tag: h.src.Tag, Time: m.Timestamp, Msg: m.Lease()}); err != nil {
		h.src.stopOnce.Do(func() { close(h.src.stop) })
	}
}

func (h *sourceBatchHandler) HandleSyslogBatch(ms []*syslog.Message) {
	var recs []Record
	if v := h.recsPool.Get(); v != nil {
		recs = (*v.(*[]Record))[:0]
	} else {
		recs = make([]Record, 0, len(ms))
	}
	for _, m := range ms {
		// Lease: the message outlives the handler inside the Record, and
		// the pipeline's Release hook returns it to the listener pool.
		recs = append(recs, Record{Tag: h.src.Tag, Time: m.Timestamp, Msg: m.Lease()})
	}
	err := h.emitBatch(recs)
	recs = recs[:cap(recs)]
	clear(recs)
	recs = recs[:0]
	h.recsPool.Put(&recs)
	if err != nil {
		h.src.stopOnce.Do(func() { close(h.src.stop) })
	}
}

// ChannelSource ingests records from a Go channel (generator-driven
// pipelines and tests).
type ChannelSource struct {
	Ch <-chan Record
}

// Run implements Source: it forwards until the channel closes, ctx ends,
// or emit reports the pipeline closed.
func (s *ChannelSource) Run(ctx context.Context, emit func(Record) error) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case r, ok := <-s.Ch:
			if !ok {
				return nil
			}
			if err := emit(r); err != nil {
				return err
			}
		}
	}
}

// SeverityFilter drops records less severe than Max (remember: higher
// numeric severity = less severe).
func SeverityFilter(max syslog.Severity) Filter {
	return FilterFunc(func(r Record) (Record, bool) {
		if r.Msg == nil {
			return r, false
		}
		return r, r.Msg.Severity <= max
	})
}

// AppFilter keeps only records from the given applications.
func AppFilter(apps ...string) Filter {
	set := make(map[string]bool, len(apps))
	for _, a := range apps {
		set[a] = true
	}
	return FilterFunc(func(r Record) (Record, bool) {
		return r, r.Msg != nil && set[r.Msg.AppName]
	})
}

// TopologyEnricher annotates records with rack/arch metadata looked up by
// hostname — the positional context §4.5.2 needs. lookup returns
// (rack, arch, ok).
func TopologyEnricher(lookup func(host string) (rack, arch string, ok bool)) Filter {
	return FilterFunc(func(r Record) (Record, bool) {
		if r.Msg == nil {
			return r, false
		}
		if rack, arch, ok := lookup(r.Msg.Hostname); ok {
			r = r.WithMetas("rack", rack, "arch", arch)
		}
		return r, true
	})
}

// StoreSink writes batches into a Tivan store, mapping syslog fields and
// filter metadata to document fields. Each batch reaches the store as a
// single IndexBatch call — one id-range reservation and one lock per
// shard — through a pooled doc staging slice whose per-slot Fields
// backing arrays survive pooling, so a steady-state batch write allocates
// nothing (the store copies everything it retains).
type StoreSink struct {
	Store *store.Store

	docsPool sync.Pool
}

// Write implements Sink. Indexing is in-memory and fast, so ctx is only
// consulted on entry: a batch whose write context already expired is
// refused whole (safe to redeliver; duplicates are preferred to loss).
func (s *StoreSink) Write(ctx context.Context, batch []Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var docs []store.Doc
	if v := s.docsPool.Get(); v != nil {
		docs = *v.(*[]store.Doc)
	}
	if cap(docs) < len(batch) {
		docs = make([]store.Doc, len(batch))
	}
	docs = docs[:len(batch)]
	for i, r := range batch {
		RecordToDocInto(r, &docs[i])
	}
	s.Store.IndexBatch(docs)
	// Scrub the slots (pooled capacity must not pin strings or messages)
	// while keeping each slot's Fields backing array for the next batch.
	for i := range docs {
		f := docs[i].Fields
		clear(f[:cap(f)])
		docs[i] = store.Doc{Fields: f[:0]}
	}
	docs = docs[:0]
	s.docsPool.Put(&docs)
	return nil
}

// RecordToDoc converts a pipeline record to a store document.
func RecordToDoc(r Record) store.Doc {
	var d store.Doc
	RecordToDocInto(r, &d)
	return d
}

// RecordToDocInto converts a pipeline record into *d, reusing d.Fields'
// backing array (truncated, then appended to). With a recycled slot —
// StoreSink's doc pool, core.Service's — the conversion allocates nothing
// beyond the first batch that sizes the slots.
func RecordToDocInto(r Record, d *store.Doc) {
	// Sized for the canonical field set: tag + four syslog fields +
	// rack/arch enrichment + the category the service stamps on. One
	// contiguous allocation, no hashing: converting a record no longer
	// shows up as mapassign_faststr on the socket→store profile.
	fields := d.Fields[:0]
	if cap(fields) == 0 {
		fields = make(store.Fields, 0, 8)
	}
	fields = append(fields, store.Field{K: "tag", V: r.Tag})
	if r.Msg != nil {
		fields = append(fields,
			store.Field{K: "hostname", V: r.Msg.Hostname},
			store.Field{K: "app", V: r.Msg.AppName},
			store.Field{K: "severity", V: r.Msg.Severity.String()},
			store.Field{K: "facility", V: r.Msg.Facility.String()},
		)
	}
	for k, v := range r.Meta {
		fields = fields.Set(k, v)
	}
	t := r.Time
	if t.IsZero() && r.Msg != nil {
		t = r.Msg.Timestamp
	}
	body := ""
	if r.Msg != nil {
		body = r.Msg.Content
	}
	d.ID = 0
	d.Time = t
	d.Fields = fields
	d.Body = body
}

// MemorySink accumulates batches for tests and small tools. The zero value
// is ready to use.
type MemorySink struct {
	mu      sync.Mutex
	records []Record
}

// Write implements Sink.
func (s *MemorySink) Write(_ context.Context, batch []Record) error {
	s.mu.Lock()
	s.records = append(s.records, batch...)
	s.mu.Unlock()
	return nil
}

// Records returns a snapshot of everything written.
func (s *MemorySink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.records...)
}

// WaitFor polls until at least n records arrived or the timeout passes.
func (s *MemorySink) WaitFor(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(s.Records()) >= n {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return len(s.Records()) >= n
}
