package collector

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/syslog"
)

// fakeClockDedup returns a dedup with a controllable clock starting at a
// fixed instant.
func fakeClockDedup(window time.Duration) (*Dedup, *time.Time) {
	clock := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	d := NewDedup(window)
	d.Now = func() time.Time { return clock }
	return d, &clock
}

func TestDedupEvictsExpiredEntries(t *testing.T) {
	d, clock := fakeClockDedup(time.Second)
	// 100 distinct messages, none repeated.
	for i := 0; i < 100; i++ {
		r := record("cn1", "kernel", "unique message "+strings.Repeat("x", i), syslog.Info)
		if _, keep := d.Apply(r); !keep {
			t.Fatal("distinct messages must pass")
		}
	}
	if got := d.Tracked(); got != 100 {
		t.Fatalf("Tracked = %d, want 100", got)
	}
	// After the window, the next Apply's lazy sweep must evict them all:
	// without eviction every unique triple ever seen lives forever.
	*clock = clock.Add(2 * time.Second)
	if _, keep := d.Apply(record("cn2", "sshd", "fresh", syslog.Info)); !keep {
		t.Fatal("fresh message must pass")
	}
	if got := d.Tracked(); got != 1 {
		t.Errorf("Tracked after lazy sweep = %d, want 1 (the fresh entry)", got)
	}
}

func TestDedupSweepEmitsExpiredBurstSummary(t *testing.T) {
	d, clock := fakeClockDedup(time.Second)
	var emitted []Record
	d.SetEmit(func(r Record) { emitted = append(emitted, r) })

	r := record("cn1", "ipmiseld", "temperature above threshold", syslog.Critical)
	if _, keep := d.Apply(r); !keep {
		t.Fatal("first occurrence must pass")
	}
	for i := 0; i < 7; i++ {
		*clock = clock.Add(50 * time.Millisecond)
		if _, keep := d.Apply(r); keep {
			t.Fatal("duplicate inside window must drop")
		}
	}
	// The burst never recurs; the explicit sweep must emit the summary.
	*clock = clock.Add(2 * time.Second)
	if evicted := d.Sweep(*clock); evicted != 1 {
		t.Errorf("Sweep evicted = %d, want 1", evicted)
	}
	if len(emitted) != 1 {
		t.Fatalf("emitted = %d records, want 1", len(emitted))
	}
	if got := emitted[0].Meta["repeated"]; got != "7" {
		t.Errorf("repeated annotation = %q, want \"7\"", got)
	}
	if emitted[0].Msg.Content != "temperature above threshold" {
		t.Errorf("summary must carry the burst's first record, got %q", emitted[0].Msg.Content)
	}
	if d.Tracked() != 0 {
		t.Errorf("Tracked = %d after sweep, want 0", d.Tracked())
	}
	// Sweeping again is a no-op.
	if evicted := d.Sweep(*clock); evicted != 0 {
		t.Errorf("second Sweep evicted = %d, want 0", evicted)
	}
}

func TestDedupLazySweepEmitsViaApply(t *testing.T) {
	d, clock := fakeClockDedup(time.Second)
	var emitted []Record
	d.SetEmit(func(r Record) { emitted = append(emitted, r) })

	burst := record("cn1", "kernel", "ecc error", syslog.Error)
	d.Apply(burst)
	*clock = clock.Add(10 * time.Millisecond)
	d.Apply(burst) // suppressed
	// A different message two windows later triggers the lazy sweep.
	*clock = clock.Add(3 * time.Second)
	d.Apply(record("cn9", "sshd", "login", syslog.Info))
	if len(emitted) != 1 || emitted[0].Meta["repeated"] != "1" {
		t.Fatalf("lazy sweep emitted = %+v, want one record with repeated=1", emitted)
	}
}

func TestDedupRecurrenceStillAnnotates(t *testing.T) {
	// Recurrence after the window keeps the original semantics: the
	// recurring record passes annotated, and no separate summary fires
	// for the same burst.
	d, clock := fakeClockDedup(time.Second)
	var emitted []Record
	d.SetEmit(func(r Record) { emitted = append(emitted, r) })

	r := record("cn1", "kernel", "same", syslog.Warning)
	d.Apply(r)
	*clock = clock.Add(100 * time.Millisecond)
	d.Apply(r) // suppressed
	*clock = clock.Add(time.Second)
	out, keep := d.Apply(r)
	if !keep || out.Meta["repeated"] != "1" {
		t.Fatalf("recurrence = keep=%v meta=%v, want annotated pass", keep, out.Meta)
	}
	*clock = clock.Add(2 * time.Second)
	d.Sweep(*clock)
	if len(emitted) != 0 {
		t.Errorf("summary emitted for a burst already reported by recurrence: %+v", emitted)
	}
}

func TestDedupPipelineEmitsSummariesDownstream(t *testing.T) {
	// Wired into a pipeline, expired-burst summaries are injected through
	// the rest of the filter chain and reach the sink, and the accounting
	// invariant holds.
	// The pipeline reads the clock from its own goroutine, so the fake
	// clock must be advanced atomically.
	var clockNano atomic.Int64
	clockNano.Store(time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	tick := func(d time.Duration) { clockNano.Add(int64(d)) }
	d := NewDedup(time.Second)
	d.Now = func() time.Time { return time.Unix(0, clockNano.Load()).UTC() }
	tagged := FilterFunc(func(r Record) (Record, bool) {
		return r.WithMeta("downstream", "yes"), true
	})

	sink := &MemorySink{}
	p := &Pipeline{
		Sink:    sink,
		Filters: []Filter{d, tagged},
	}
	runPipeline(t, p, func(ch chan<- Record) {
		burst := record("cn7", "ipmiseld", "temperature above threshold", syslog.Critical)
		ch <- burst
		for i := 0; i < 4; i++ {
			tick(10 * time.Millisecond)
			ch <- burst
		}
		// Advance past the window and send an unrelated record so the
		// lazy sweep fires inside the pipeline.
		tick(5 * time.Second)
		ch <- record("cn8", "sshd", "accepted publickey", syslog.Info)
	})

	recs := sink.Records()
	if len(recs) != 3 {
		t.Fatalf("delivered = %d records, want 3 (first + summary + unrelated)", len(recs))
	}
	var summary *Record
	for i := range recs {
		if recs[i].Meta["repeated"] != "" {
			summary = &recs[i]
		}
		if recs[i].Meta["downstream"] != "yes" {
			t.Errorf("record skipped downstream filters: %+v", recs[i].Meta)
		}
	}
	if summary == nil || summary.Meta["repeated"] != "4" {
		t.Fatalf("no summary with repeated=4 delivered: %+v", recs)
	}
	s := p.Stats()
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped {
		t.Errorf("accounting invariant broken with injected records: %+v", s)
	}
	// 6 source records + 1 injected summary.
	if s.Ingested != 7 || s.Flushed != 3 || s.Filtered != 4 {
		t.Errorf("stats = %+v, want Ingested=7 Flushed=3 Filtered=4", s)
	}
}

func TestDedupMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	d, clock := fakeClockDedup(time.Second)
	d.Metrics = reg
	r := record("cn1", "kernel", "same", syslog.Warning)
	d.Apply(r)
	*clock = clock.Add(time.Millisecond)
	d.Apply(r)
	*clock = clock.Add(time.Millisecond)
	d.Apply(r)
	*clock = clock.Add(2 * time.Second)
	d.Sweep(*clock)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dedup_suppressed_total 2",
		"dedup_evicted_total 1",
		"dedup_tracked 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestPipelineMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &MemorySink{}
	p := &Pipeline{
		Sink:      sink,
		Metrics:   reg,
		BatchSize: 4,
		Filters:   []Filter{SeverityFilter(syslog.Warning)},
	}
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < 20; i++ {
			sev := syslog.Info // filtered out
			if i%2 == 0 {
				sev = syslog.Critical
			}
			ch <- record("cn1", "kernel", fmt.Sprintf("m%d", i), sev)
		}
	})

	s := p.Stats()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for metric, want := range map[string]int64{
		"pipeline_ingested_total": s.Ingested,
		"pipeline_filtered_total": s.Filtered,
		"pipeline_flushed_total":  s.Flushed,
		"pipeline_dropped_total":  s.Dropped,
		"pipeline_retries_total":  s.Retries,
		"pipeline_queue_depth":    0,
	} {
		line := fmt.Sprintf("%s %d\n", metric, want)
		if !strings.Contains(out, line) {
			t.Errorf("metrics missing %q (Stats=%+v):\n%s", line, s, out)
		}
	}
	if s.Ingested != 20 || s.Filtered != 10 || s.Flushed != 10 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(out, "pipeline_batch_size_count") ||
		!strings.Contains(out, "pipeline_flush_seconds_count") {
		t.Errorf("histograms missing from exposition:\n%s", out)
	}
}
