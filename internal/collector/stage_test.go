package collector

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// lifecycleStage is a Stage exercising every optional hook: it retains
// the pipeline's emit (SetEmit), counts Sweep calls and emits one record
// per sweep, and emits one final record from Close.
type lifecycleStage struct {
	mu     sync.Mutex
	emit   func(Record)
	sweeps int
	closed bool
}

func (s *lifecycleStage) Process(r Record, _ func(Record)) (Record, bool) { return r, true }

func (s *lifecycleStage) SetEmit(emit func(Record)) {
	s.mu.Lock()
	s.emit = emit
	s.mu.Unlock()
}

func (s *lifecycleStage) Sweep(_ time.Time) int {
	s.mu.Lock()
	s.sweeps++
	emit := s.emit
	s.mu.Unlock()
	if emit != nil {
		emit(Record{Tag: "sweep"})
	}
	return 0
}

func (s *lifecycleStage) Close() {
	s.mu.Lock()
	s.closed = true
	emit := s.emit
	s.mu.Unlock()
	if emit != nil {
		emit(Record{Tag: "close"})
	}
}

// TestStageEmitAccounting locks down the emission contract: records a
// stage injects run through the rest of the chain, count as Ingested,
// and the invariant Ingested == Filtered + Flushed + Dropped + Spooled
// holds exactly. A downstream stage must see injected records; the
// injecting stage must not see its own.
func TestStageEmitAccounting(t *testing.T) {
	const n = 50
	var downstreamSaw atomic.Int64
	duplicator := StageFunc(func(r Record, emit func(Record)) (Record, bool) {
		if r.Tag == "dup" {
			emit(Record{Tag: "injected"})
		}
		if r.Tag == "injected" {
			t.Error("injecting stage saw its own emission")
		}
		return r, true
	})
	counter := StageFunc(func(r Record, _ func(Record)) (Record, bool) {
		if r.Tag == "injected" {
			downstreamSaw.Add(1)
		}
		return r, r.Tag != "drop"
	})
	var flushed atomic.Int64
	p := &Pipeline{
		Source: sourceFunc(func(_ context.Context, emit func(Record) error) error {
			for i := 0; i < n; i++ {
				tag := "plain"
				switch i % 5 {
				case 0:
					tag = "dup"
				case 1:
					tag = "drop"
				}
				if err := emit(Record{Tag: tag}); err != nil {
					return err
				}
			}
			return nil
		}),
		Stages: []Stage{duplicator, counter},
		Sink: SinkFunc(func(_ context.Context, batch []Record) error {
			flushed.Add(int64(len(batch)))
			return nil
		}),
		Config: &Config{BatchSize: 8, FlushInterval: time.Millisecond},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	const dups, drops = n / 5, n / 5
	if got := downstreamSaw.Load(); got != dups {
		t.Errorf("downstream stage saw %d injected records, want %d", got, dups)
	}
	s := p.Stats()
	if s.Ingested != n+dups {
		t.Errorf("Ingested = %d, want %d source + %d injected", s.Ingested, n, dups)
	}
	if s.Filtered != drops {
		t.Errorf("Filtered = %d, want %d", s.Filtered, drops)
	}
	if s.Flushed != flushed.Load() || s.Flushed != n+dups-drops {
		t.Errorf("Flushed = %d (sink saw %d), want %d", s.Flushed, flushed.Load(), n+dups-drops)
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant broken: %+v", s)
	}
}

// TestStageSweepAndCloseLifecycle drives the clock-driven sweep ticker
// and the shutdown Close hook: sweeps happen while the source idles,
// stop at shutdown, Close runs exactly once before the queue closes, and
// records emitted from both hooks are delivered and accounted.
func TestStageSweepAndCloseLifecycle(t *testing.T) {
	stage := &lifecycleStage{}
	var mu sync.Mutex
	tags := map[string]int{}
	p := &Pipeline{
		Source: sourceFunc(func(ctx context.Context, emit func(Record) error) error {
			if err := emit(Record{Tag: "plain"}); err != nil {
				return err
			}
			// Idle long enough for several sweep ticks.
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
			}
			return nil
		}),
		Stages: []Stage{stage},
		Sink: SinkFunc(func(_ context.Context, batch []Record) error {
			mu.Lock()
			for _, r := range batch {
				tags[r.Tag]++
			}
			mu.Unlock()
			return nil
		}),
		Config: &Config{
			BatchSize: 4, FlushInterval: time.Millisecond,
			SweepInterval: 5 * time.Millisecond,
		},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stage.mu.Lock()
	sweeps := stage.sweeps
	closed := stage.closed
	stage.mu.Unlock()
	if sweeps == 0 {
		t.Fatal("sweep ticker never drove Sweep")
	}
	if !closed {
		t.Fatal("Close hook never ran")
	}
	mu.Lock()
	defer mu.Unlock()
	if tags["plain"] != 1 || tags["close"] != 1 || tags["sweep"] != sweeps {
		t.Errorf("delivered %v, want 1 plain, 1 close, %d sweep", tags, sweeps)
	}
	s := p.Stats()
	if s.Ingested != int64(1+sweeps+1) || s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("accounting = %+v, want Ingested %d and the invariant", s, 1+sweeps+1)
	}
}

// TestStageSweepDisabled: a negative SweepInterval turns the ticker off.
func TestStageSweepDisabled(t *testing.T) {
	stage := &lifecycleStage{}
	p := &Pipeline{
		Source: sourceFunc(func(_ context.Context, emit func(Record) error) error {
			time.Sleep(20 * time.Millisecond)
			return nil
		}),
		Stages: []Stage{stage},
		Sink:   SinkFunc(func(_ context.Context, _ []Record) error { return nil }),
		Config: &Config{SweepInterval: -1, FlushInterval: time.Millisecond},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stage.mu.Lock()
	defer stage.mu.Unlock()
	if stage.sweeps != 0 {
		t.Errorf("ticker ran %d sweeps with SweepInterval < 0", stage.sweeps)
	}
}

// TestStageFilterInterop: deprecated Filters run ahead of Stages in one
// chain — a filter-dropped record never reaches the stages, a
// filter-enriched record arrives transformed, and both Filtered counts
// land in the same bucket.
func TestStageFilterInterop(t *testing.T) {
	var stageSaw atomic.Int64
	probe := StageFunc(func(r Record, _ func(Record)) (Record, bool) {
		if r.Meta["mark"] != "yes" {
			t.Errorf("stage saw record without the filter's enrichment: %+v", r)
		}
		stageSaw.Add(1)
		return r, true
	})
	p := &Pipeline{
		Source: sourceFunc(func(_ context.Context, emit func(Record) error) error {
			for i := 0; i < 10; i++ {
				tag := "keep"
				if i%2 == 0 {
					tag = "drop"
				}
				if err := emit(Record{Tag: tag}); err != nil {
					return err
				}
			}
			return nil
		}),
		Filters: []Filter{FilterFunc(func(r Record) (Record, bool) {
			if r.Tag == "drop" {
				return r, false
			}
			return r.WithMeta("mark", "yes"), true
		})},
		Stages: []Stage{probe},
		Sink:   SinkFunc(func(_ context.Context, _ []Record) error { return nil }),
		Config: &Config{BatchSize: 4, FlushInterval: time.Millisecond},
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := stageSaw.Load(); got != 5 {
		t.Errorf("stage saw %d records, want 5 survivors", got)
	}
	s := p.Stats()
	if s.Filtered != 5 || s.Flushed != 5 {
		t.Errorf("accounting = %+v, want 5 filtered, 5 flushed", s)
	}
}
