package collector

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hetsyslog/internal/obs"
)

// Dedup suppresses repeated identical messages per (host, app, content)
// within a window, emitting a classic "message repeated N times" record
// when the burst ends — the behaviour rsyslogd applies before forwarding,
// which keeps a thermal storm from flooding the store (§4.5.1 surges can
// exceed thousands of identical lines per minute).
//
// A burst can end two ways. If the message recurs after the window, the
// recurrence passes annotated with Meta["repeated"] carrying the count it
// absorbed. If it never recurs, the entry is evicted once its window
// expires — by the lazy sweep Apply runs at most once per window, or by
// an explicit Sweep — and a copy of the burst's first record, annotated
// the same way, is handed to the emit callback (see SetEmit). Eviction
// bounds memory: without it every distinct (host, app, content) triple
// ever seen would live forever.
type Dedup struct {
	// Window is how long a message suppresses its duplicates
	// (default 1s).
	Window time.Duration
	// Now allows tests to control the clock.
	Now func() time.Time

	// Metrics optionally publishes the filter's counters (suppressed,
	// evicted, live tracked entries) into a shared registry; set it
	// before first use.
	Metrics *obs.Registry

	metricsOnce     sync.Once
	suppressedTotal *obs.Counter
	evictedTotal    *obs.Counter

	mu        sync.Mutex
	last      map[string]*dedupEntry
	lastSweep time.Time
	emit      func(Record)
	// emitSet lets Process skip the emit-install lock once one is
	// wired, keeping the per-record path at a single lock acquisition.
	emitSet atomic.Bool
}

type dedupEntry struct {
	first      time.Time
	suppressed int
	// rec is the burst's first record, kept so an expired burst can be
	// re-emitted with its "repeated" annotation.
	rec Record
}

// NewDedup returns a Dedup filter with the given window.
func NewDedup(window time.Duration) *Dedup {
	if window <= 0 {
		window = time.Second
	}
	return &Dedup{Window: window, last: make(map[string]*dedupEntry)}
}

func (d *Dedup) now() time.Time {
	if d.Now != nil {
		return d.Now()
	}
	return time.Now()
}

func (d *Dedup) initMetrics() {
	d.metricsOnce.Do(func() {
		d.suppressedTotal = d.Metrics.Counter("dedup_suppressed_total",
			"duplicate records suppressed inside the window")
		d.evictedTotal = d.Metrics.Counter("dedup_evicted_total",
			"expired burst entries evicted from the tracking map")
		if d.Metrics != nil {
			d.Metrics.GaugeFunc("dedup_tracked",
				"live (host, app, content) entries being tracked",
				func() int64 {
					d.mu.Lock()
					defer d.mu.Unlock()
					return int64(len(d.last))
				})
		}
	})
}

// SetEmit installs the callback that receives "message repeated N times"
// summary records when a suppressed burst's window expires without the
// message recurring. The pipeline wires this automatically (see
// EmittingFilter); the callback runs outside Dedup's lock.
func (d *Dedup) SetEmit(emit func(Record)) {
	d.mu.Lock()
	d.emit = emit
	d.mu.Unlock()
	d.emitSet.Store(emit != nil)
}

// Process implements Stage with the same semantics as Apply. The first
// call retains emit for summary delivery from Apply/Sweep/Close (the
// pipeline passes a stable closure, see Stage).
func (d *Dedup) Process(r Record, emit func(Record)) (Record, bool) {
	if emit != nil && !d.emitSet.Load() {
		d.SetEmit(emit)
	}
	return d.Apply(r)
}

// Close implements the Stage close lifecycle hook: it flushes every
// tracked burst — all entries expire as of now+Window — so suppressed
// repeats are summarized at pipeline shutdown rather than lost.
func (d *Dedup) Close() {
	d.Sweep(d.now().Add(d.Window))
}

// Apply implements Filter. The first occurrence passes; duplicates inside
// the window are dropped; the first occurrence after the window passes
// with a Meta["repeated"] annotation carrying the suppressed count. At
// most once per window Apply also sweeps the tracking map, evicting
// expired entries and emitting summaries for bursts that never recurred.
func (d *Dedup) Apply(r Record) (Record, bool) {
	if r.Msg == nil {
		return r, false
	}
	d.initMetrics()
	key := r.Msg.Hostname + "\x00" + r.Msg.AppName + "\x00" + r.Msg.Content
	now := d.now()

	d.mu.Lock()
	e, ok := d.last[key]
	var keep bool
	if !ok || now.Sub(e.first) >= d.Window {
		var repeated int
		if ok {
			repeated = e.suppressed
		}
		// The entry outlives this record's trip through the pipeline (its
		// summary may be emitted a window later), so a transient message —
		// pooled or leased, recycled after the pipeline releases the
		// record — must be deep-copied. One clone per burst, not per
		// duplicate.
		rec := r
		if rec.Msg != nil && rec.Msg.Transient() {
			rec.Msg = rec.Msg.Clone()
		}
		d.last[key] = &dedupEntry{first: now, rec: rec}
		if repeated > 0 {
			r = r.WithMeta("repeated", strconv.Itoa(repeated))
		}
		keep = true
	} else {
		e.suppressed++
		d.suppressedTotal.Inc()
	}
	var expired []Record
	if now.Sub(d.lastSweep) >= d.Window {
		expired, _ = d.sweepLocked(now)
	}
	d.mu.Unlock()

	d.emitAll(expired)
	return r, keep
}

// Sweep evicts every entry whose window has expired as of now, emitting
// summary records for bursts that absorbed duplicates, and returns the
// number of entries evicted. Apply runs the same sweep lazily at most
// once per window; call Sweep directly to bound the map during lulls
// (e.g. from a ticker) or to flush at shutdown with a far-future now.
func (d *Dedup) Sweep(now time.Time) int {
	d.initMetrics()
	d.mu.Lock()
	expired, evicted := d.sweepLocked(now)
	d.mu.Unlock()
	d.emitAll(expired)
	return evicted
}

// sweepLocked removes expired entries, returning the summary records to
// emit and the eviction count. Caller holds d.mu.
func (d *Dedup) sweepLocked(now time.Time) ([]Record, int) {
	var out []Record
	evicted := 0
	for key, e := range d.last {
		if now.Sub(e.first) < d.Window {
			continue
		}
		if e.suppressed > 0 {
			out = append(out, e.rec.WithMeta("repeated", strconv.Itoa(e.suppressed)))
		}
		delete(d.last, key)
		evicted++
	}
	d.evictedTotal.Add(int64(evicted))
	d.lastSweep = now
	return out, evicted
}

// emitAll delivers expired-burst summaries outside the lock.
func (d *Dedup) emitAll(expired []Record) {
	if len(expired) == 0 {
		return
	}
	d.mu.Lock()
	emit := d.emit
	d.mu.Unlock()
	if emit == nil {
		return
	}
	for _, r := range expired {
		emit(r)
	}
}

// Suppressed returns the number of currently-tracked suppressed
// duplicates (diagnostics; the cumulative count is the
// dedup_suppressed_total counter).
func (d *Dedup) Suppressed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, e := range d.last {
		n += e.suppressed
	}
	return n
}

// Tracked returns how many (host, app, content) entries are live.
func (d *Dedup) Tracked() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.last)
}

var _ Filter = (*Dedup)(nil)
var _ EmittingFilter = (*Dedup)(nil)
var _ SweepingStage = (*Dedup)(nil)
var _ ClosingStage = (*Dedup)(nil)
