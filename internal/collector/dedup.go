package collector

import (
	"fmt"
	"sync"
	"time"
)

// Dedup suppresses repeated identical messages per (host, app, content)
// within a window, emitting a classic "message repeated N times" record
// when the burst ends — the behaviour rsyslogd applies before forwarding,
// which keeps a thermal storm from flooding the store (§4.5.1 surges can
// exceed thousands of identical lines per minute).
type Dedup struct {
	// Window is how long a message suppresses its duplicates
	// (default 1s).
	Window time.Duration
	// Now allows tests to control the clock.
	Now func() time.Time

	mu   sync.Mutex
	last map[string]*dedupEntry
}

type dedupEntry struct {
	first      time.Time
	suppressed int
}

// NewDedup returns a Dedup filter with the given window.
func NewDedup(window time.Duration) *Dedup {
	if window <= 0 {
		window = time.Second
	}
	return &Dedup{Window: window, last: make(map[string]*dedupEntry)}
}

func (d *Dedup) now() time.Time {
	if d.Now != nil {
		return d.Now()
	}
	return time.Now()
}

// Apply implements Filter. The first occurrence passes; duplicates inside
// the window are dropped; the first occurrence after the window passes
// with a Meta["repeated"] annotation carrying the suppressed count.
func (d *Dedup) Apply(r Record) (Record, bool) {
	if r.Msg == nil {
		return r, false
	}
	key := r.Msg.Hostname + "\x00" + r.Msg.AppName + "\x00" + r.Msg.Content
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.last[key]
	if !ok || now.Sub(e.first) >= d.Window {
		var repeated int
		if ok {
			repeated = e.suppressed
		}
		d.last[key] = &dedupEntry{first: now}
		if repeated > 0 {
			r = r.WithMeta("repeated", fmt.Sprintf("%d", repeated))
		}
		return r, true
	}
	e.suppressed++
	return r, false
}

// Suppressed returns the number of currently-tracked suppressed duplicates
// (diagnostics).
func (d *Dedup) Suppressed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, e := range d.last {
		n += e.suppressed
	}
	return n
}

var _ Filter = (*Dedup)(nil)
