package collector

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetsyslog/internal/obs"
)

// hammerBatchSource drives emitBatch from several goroutines at once,
// modelling the syslog listener's concurrent per-connection read loops.
// Every worker loops until the pipeline refuses a batch with
// ErrPipelineClosed, so by the time RunBatch returns each worker has
// observed at least one shutdown refusal. workersDone is closed when the
// last worker exits.
type hammerBatchSource struct {
	workers     int
	batchLen    int
	workersDone chan struct{}
}

func (s *hammerBatchSource) Run(ctx context.Context, emit func(Record) error) error {
	return s.RunBatch(ctx, emit, func(rs []Record) error {
		for _, r := range rs {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

func (s *hammerBatchSource) RunBatch(ctx context.Context, _ func(Record) error,
	emitBatch func([]Record) error) error {
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]Record, s.batchLen)
			for i := range batch {
				batch[i] = Record{Tag: fmt.Sprintf("worker%d", w)}
			}
			// One record per batch is marked for the filter chain, so the
			// invariant is exercised with Filtered > 0 too.
			batch[0].Tag = "drop"
			for emitBatch(batch) == nil {
			}
		}(w)
	}
	wg.Wait()
	close(s.workersDone)
	return nil
}

// TestAccountingInvariantUnderConcurrentRefusal locks down the pipeline's
// accounting contract under the batched handoff: with several goroutines
// hammering emitBatch, a full queue, a sink that blocks until released,
// and a mid-traffic shutdown forcing concurrent batch refusals, every
// record must still land in exactly one bucket —
// Ingested == Filtered + Flushed + Dropped + Spooled — and the
// queue-depth gauge must return to zero once Run returns. Run under
// -race in CI, this doubles as the regression test for torn counter
// updates on the batched path.
func TestAccountingInvariantUnderConcurrentRefusal(t *testing.T) {
	const workers = 4
	gate := make(chan struct{})
	var sinkGot atomic.Int64
	sink := SinkFunc(func(_ context.Context, batch []Record) error {
		<-gate
		sinkGot.Add(int64(len(batch)))
		return nil
	})
	src := &hammerBatchSource{
		workers:     workers,
		batchLen:    8,
		workersDone: make(chan struct{}),
	}
	reg := obs.NewRegistry()
	p := &Pipeline{
		Source: src,
		Sink:   sink,
		Filters: []Filter{FilterFunc(func(r Record) (Record, bool) {
			return r, r.Tag != "drop"
		})},
		Metrics: reg,
		Config: &Config{
			BatchSize:     8,
			FlushInterval: time.Millisecond,
			QueueDepth:    2,
			FlushWorkers:  2,
			MaxRetries:    1,
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	// Let traffic build until the blocked sink has the queue saturated,
	// then shut down mid-flight: the workers' in-progress emitBatch calls
	// must be refused and accounted as Dropped.
	deadline := time.Now().Add(5 * time.Second)
	// The bound is what backpressure admits with the sink blocked: the
	// queue's chunks plus the flushers' buffers plus one in-flight batch
	// per worker (~80 records here), so wait for a level safely below
	// that saturation point.
	for p.Stats().Ingested < 64 {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never ingested enough traffic: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	// Every worker exits only after a refusal, so Dropped > 0 is
	// guaranteed before the gate opens.
	select {
	case <-src.workersDone:
	case <-time.After(5 * time.Second):
		t.Fatal("source workers did not observe pipeline refusal")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}

	st := p.Stats()
	if st.Ingested != st.Filtered+st.Flushed+st.Dropped+st.Spooled {
		t.Errorf("accounting invariant broken: Ingested=%d != Filtered=%d + Flushed=%d + Dropped=%d + Spooled=%d",
			st.Ingested, st.Filtered, st.Flushed, st.Dropped, st.Spooled)
	}
	if st.Dropped == 0 {
		t.Error("expected refused batches to be accounted as Dropped")
	}
	if st.Filtered == 0 {
		t.Error("expected filtered records in the mix")
	}
	if got := sinkGot.Load(); got != st.Flushed {
		t.Errorf("sink received %d records but Flushed=%d", got, st.Flushed)
	}
	if depth := reg.Gauge("pipeline_queue_depth",
		"records buffered between ingest and flush").Value(); depth != 0 {
		t.Errorf("pipeline_queue_depth = %d after Run returned, want 0", depth)
	}
}
