package collector

import (
	"bytes"
	"encoding/gob"
)

// encodeBatch serializes a batch into one spool frame payload. gob is
// self-describing, so frames written by an older build replay under a
// newer one as long as field names are stable; an undecodable frame is
// detected (decodeBatch errors) and skipped rather than poisoning replay.
func encodeBatch(batch []Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(batch); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeBatch reverses encodeBatch.
func decodeBatch(payload []byte) ([]Record, error) {
	var batch []Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&batch); err != nil {
		return nil, err
	}
	return batch, nil
}
