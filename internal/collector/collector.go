// Package collector implements the Fluentd role from the paper's
// infrastructure (§4.2): it ingests records from a source (typically the
// syslog listener), runs them through a filter chain (parsing, metadata
// enrichment, noise dropping), buffers them, and flushes batches to a sink
// (typically the Tivan store) with bounded retry, backpressure, a circuit
// breaker, and an optional disk spill queue so a sink outage spools
// records instead of dropping them — the durability Fluentd's file buffer
// provides in the paper's deployment.
package collector

import (
	"context"
	"errors"
	"sync"
	"time"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/resilience"
	"hetsyslog/internal/syslog"
)

// Record is the unit flowing through the pipeline.
type Record struct {
	// Tag routes records, Fluentd-style ("syslog.cn101").
	Tag  string
	Time time.Time
	// Msg is the parsed syslog message.
	Msg *syslog.Message
	// Meta carries enrichment added by filters (rack, arch, category...).
	Meta map[string]string
}

// WithMeta returns a copy of r with key=value added to Meta. Each call
// copies the map; filters adding several keys should use WithMetas.
func (r Record) WithMeta(key, value string) Record {
	return r.WithMetas(key, value)
}

// WithMetas returns a copy of r with every key/value pair added to Meta,
// copying the map once instead of once per key — the enrichment-chain
// fast path. kv must alternate keys and values; an odd trailing key is a
// programming error and panics.
func (r Record) WithMetas(kv ...string) Record {
	if len(kv)%2 != 0 {
		panic("collector: WithMetas requires alternating key/value pairs")
	}
	meta := make(map[string]string, len(r.Meta)+len(kv)/2)
	for k, v := range r.Meta {
		meta[k] = v
	}
	for i := 0; i < len(kv); i += 2 {
		meta[kv[i]] = kv[i+1]
	}
	r.Meta = meta
	return r
}

// ErrPipelineClosed is returned by a pipeline's emit callback when the
// pipeline is shutting down and can no longer accept the record. Sources
// should stop producing when they see it; the record it was returned for
// has been accounted as Dropped.
var ErrPipelineClosed = errors.New("collector: pipeline closed")

// Source produces records until ctx is cancelled.
type Source interface {
	// Run blocks, calling emit for each record, until ctx is done or
	// emit returns an error. emit returns nil when the record was
	// accepted and ErrPipelineClosed when the pipeline is shutting down;
	// a source receiving an error should stop and return (returning
	// ErrPipelineClosed itself is treated as a clean shutdown).
	Run(ctx context.Context, emit func(Record) error) error
}

// BatchSource is an optional upgrade interface for Source: when the
// pipeline's Source implements it, Run is never called — RunBatch is,
// with an additional emitBatch that ingests a whole batch through the
// filter chain and into the queue with one channel operation, amortizing
// enqueue cost for sources that naturally produce bursts (the syslog
// listener's per-read-loop batches). emitBatch returns nil when the
// surviving records were accepted and ErrPipelineClosed when the pipeline
// refused them at shutdown (they are accounted as Dropped); the batch
// slice is copied before emitBatch returns, so callers may reuse it.
// Accounting is identical to per-record emit, so
// Ingested == Filtered + Flushed + Dropped + Spooled is unaffected.
type BatchSource interface {
	Source
	RunBatch(ctx context.Context, emit func(Record) error,
		emitBatch func([]Record) error) error
}

// Stage is a first-class element of the processing chain: it can
// transform a record, drop it, and inject additional records of its own.
// It unifies the older Filter/EmittingFilter pair behind one interface
// and is the seam cross-message analytics (Dedup summaries, the
// internal/detect streaming detectors) mount on.
type Stage interface {
	// Process handles one record, returning the (possibly modified)
	// record and whether to keep it. emit injects extra records — dedup
	// summaries, detector alerts — downstream of this stage: they run
	// through the remaining chain, are counted as Ingested, and are
	// enqueued like any other record, so the accounting invariant
	// Ingested == Filtered + Flushed + Dropped + Spooled still holds.
	//
	// The pipeline passes the same emit function on every call to a
	// given stage, and it stays valid until Run returns, so stages may
	// retain it for emissions from the Sweep/Close lifecycle hooks.
	// Stages must be safe for concurrent Process calls: batched sources
	// deliver from several goroutines and the sweep ticker runs
	// alongside them.
	Process(r Record, emit func(Record)) (Record, bool)
}

// StageFunc adapts a function to Stage.
type StageFunc func(r Record, emit func(Record)) (Record, bool)

// Process calls f.
func (f StageFunc) Process(r Record, emit func(Record)) (Record, bool) { return f(r, emit) }

// SweepingStage is an optional Stage lifecycle extension. The pipeline
// calls Sweep periodically (every Config.SweepInterval) so window-based
// stages expire state and emit pending summaries during traffic lulls
// instead of waiting for the next record to trigger a lazy sweep. Sweep
// returns how many entries were evicted.
type SweepingStage interface {
	Stage
	Sweep(now time.Time) int
}

// ClosingStage is an optional Stage lifecycle extension. The pipeline
// calls Close once per Run, after the source has stopped and before the
// flush queue closes, so a stage can flush whatever it is still holding
// — records it emits from Close are delivered normally.
type ClosingStage interface {
	Stage
	Close()
}

// Filter transforms or drops records.
//
// Deprecated: implement Stage. Filters wired through Pipeline.Filters
// keep working — the pipeline adapts them — but cannot inject records or
// receive lifecycle hooks unless they also implement Stage (as Dedup
// does) or the legacy EmittingFilter interface.
type Filter interface {
	// Apply returns the (possibly modified) record and whether to keep it.
	Apply(r Record) (Record, bool)
}

// FilterFunc adapts a function to Filter.
type FilterFunc func(r Record) (Record, bool)

// Apply calls f.
func (f FilterFunc) Apply(r Record) (Record, bool) { return f(r) }

// EmittingFilter is a Filter that can inject additional records of its
// own. The pipeline calls SetEmit before the source starts; injected
// records get the same treatment as Stage emissions.
//
// Deprecated: implement Stage, whose Process receives the emit function
// directly.
type EmittingFilter interface {
	Filter
	SetEmit(emit func(Record))
}

// filterStage adapts a legacy Filter into the Stage chain. Injection for
// EmittingFilters still flows through SetEmit, wired by the pipeline.
type filterStage struct{ f Filter }

func (s filterStage) Process(r Record, _ func(Record)) (Record, bool) { return s.f.Apply(r) }

// stageHooks resolves which value to probe for the SetEmit/Sweep/Close
// hooks: the wrapped Filter for adapted legacy filters, the stage itself
// otherwise.
func stageHooks(s Stage) any {
	if fs, ok := s.(filterStage); ok {
		return fs.f
	}
	return s
}

// Sink receives flushed batches. Write must be safe to retry: the
// pipeline re-delivers the whole batch on error (possibly replayed from
// the disk spool, possibly on a different goroutine). ctx carries the
// pipeline's per-attempt write timeout; implementations doing I/O should
// honor it. Sinks that predate the context parameter can be wrapped with
// AdaptSink.
type Sink interface {
	Write(ctx context.Context, batch []Record) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(ctx context.Context, batch []Record) error

// Write calls f.
func (f SinkFunc) Write(ctx context.Context, batch []Record) error { return f(ctx, batch) }

// LegacySink is the pre-context sink interface.
//
// Deprecated: implement Sink (context-aware Write) instead. LegacySink
// and AdaptSink remain for one release to ease migration.
type LegacySink interface {
	Write(batch []Record) error
}

// AdaptSink wraps a LegacySink into a Sink, discarding the context (the
// wrapped sink cannot observe per-attempt timeouts or shutdown).
func AdaptSink(s LegacySink) Sink {
	return SinkFunc(func(_ context.Context, batch []Record) error { return s.Write(batch) })
}

// Stats counts pipeline activity.
type Stats struct {
	Ingested int64 // records emitted by the source (plus spool-recovered ones)
	Filtered int64 // records dropped by the filter chain
	Flushed  int64 // records successfully written to the sink (incl. replayed)
	Retries  int64 // batch write retries
	// Dropped counts records lost for any reason: retries exhausted with
	// no spool configured, spool write failure, spool eviction under its
	// byte bound, retry abandoned at shutdown with no spool, or discarded
	// at enqueue because the context was cancelled while the queue was
	// full. After Run returns,
	// Ingested == Filtered + Flushed + Dropped + Spooled.
	Dropped int64
	// Spooled counts records currently sitting in the disk spill queue
	// awaiting replay (they survive the process and are recovered by the
	// next Run over the same spool directory).
	Spooled int64
}

// Pipeline wires source -> filters -> buffer -> sink, with a circuit
// breaker and an optional disk spill queue between buffer and sink.
//
// Knobs live in Config. The loose fields below predate it and keep
// working: a knob left zero in Config (or with Config nil) falls back to
// the corresponding loose field, and whatever is still unset gets the
// documented default. See Config for the mapping.
type Pipeline struct {
	Source Source
	// Filters is the legacy processing chain, run before Stages.
	//
	// Deprecated: use Stages. A Filter that also implements Stage (Dedup)
	// is used natively, so it gets the emit function and lifecycle hooks
	// whichever field it was wired through.
	Filters []Filter
	// Stages is the processing chain: each record flows through every
	// stage in order (after any adapted Filters), and stages may drop,
	// transform, or inject records. See Stage.
	Stages []Stage
	Sink   Sink

	// Config groups and validates every pipeline knob. Optional: a nil
	// Config behaves as the zero Config (loose fields, then defaults).
	Config *Config

	// BatchSize flushes when the buffer reaches this many records.
	//
	// Deprecated: set Config.BatchSize.
	BatchSize int
	// FlushInterval flushes a partial buffer after this long.
	//
	// Deprecated: set Config.FlushInterval.
	FlushInterval time.Duration
	// MaxRetries bounds redelivery attempts per batch.
	//
	// Deprecated: set Config.MaxRetries.
	MaxRetries int
	// RetryBackoff is the initial backoff of the jittered ladder.
	//
	// Deprecated: set Config.RetryBackoff.
	RetryBackoff time.Duration
	// QueueDepth is the buffered-channel depth between ingest and flush.
	//
	// Deprecated: set Config.QueueDepth.
	QueueDepth int
	// FlushWorkers is the number of concurrent flusher goroutines.
	//
	// Deprecated: set Config.FlushWorkers.
	FlushWorkers int

	// Metrics optionally publishes the pipeline's counters, queue-depth
	// gauge, breaker/spool gauges and batch/flush/attempt histograms into
	// a shared registry; set it before Run. Left nil the same counters
	// still run standalone, so Stats() is always exact.
	Metrics *obs.Registry

	// Release, when set, is called once per record after the pipeline's
	// final disposition of it: delivered to the sink, diverted to the
	// spool (the spool encodes its own copy), or dropped at a shutdown
	// enqueue. It exists to return pooled resources — wire it to
	// syslog.Recycle and every leased listener message goes back to the
	// listener pool instead of the GC, closing the per-record allocation
	// loop end to end.
	//
	// Opt-in, because it asserts the sink retains nothing from the batch
	// after Write returns (StoreSink qualifies: the store copies what it
	// keeps; MemorySink does not). Records dropped mid-chain by a stage
	// are NOT released — stages may retain them (Dedup holds its summary
	// records) — and neither are spool replays, which are decoded heap
	// copies.
	Release func(r Record)

	cfg     Config
	breaker *resilience.Breaker
	spool   *resilience.Spool

	// chunkPool recycles the []Record chunks flowing through the queue
	// channel, so batched ingest does not allocate a slice per handoff.
	chunkPool sync.Pool

	metricsOnce  sync.Once
	queueDepth   *obs.Gauge
	ingested     *obs.Counter
	filtered     *obs.Counter
	flushed      *obs.Counter
	retries      *obs.Counter
	dropped      *obs.Counter
	spooled      *obs.Gauge
	spooledTotal *obs.Counter
	replayed     *obs.Counter
	evicted      *obs.Counter
	batchSize    *obs.Histogram
	flushLatency *obs.Histogram
	attemptLat   *obs.Histogram
}

// initMetrics lazily creates the pipeline's metrics — inside Metrics when
// set, standalone otherwise.
func (p *Pipeline) initMetrics() {
	p.metricsOnce.Do(func() {
		p.queueDepth = p.Metrics.Gauge("pipeline_queue_depth",
			"records buffered between ingest and flush")
		p.ingested = p.Metrics.Counter("pipeline_ingested_total",
			"records emitted by the source (including filter-injected and spool-recovered records)")
		p.filtered = p.Metrics.Counter("pipeline_filtered_total",
			"records dropped by the filter chain")
		p.flushed = p.Metrics.Counter("pipeline_flushed_total",
			"records successfully written to the sink (including spool replays)")
		p.retries = p.Metrics.Counter("pipeline_retries_total",
			"batch write retries")
		p.dropped = p.Metrics.Counter("pipeline_dropped_total",
			"records lost: no spool on sink failure, spool failure/eviction, or discarded at enqueue")
		p.spooled = p.Metrics.Gauge("pipeline_spooled",
			"records currently in the disk spill queue awaiting replay")
		p.spooledTotal = p.Metrics.Counter("pipeline_spooled_total",
			"records spilled to the disk queue (cumulative)")
		p.replayed = p.Metrics.Counter("spool_replayed_total",
			"records replayed from the disk spill queue into the sink")
		p.evicted = p.Metrics.Counter("spool_evicted_total",
			"spooled records evicted (oldest first) to respect the spool byte bound")
		p.batchSize = p.Metrics.Histogram("pipeline_batch_size",
			"records per flushed batch", obs.SizeBuckets)
		p.flushLatency = p.Metrics.Histogram("pipeline_flush_seconds",
			"sink flush latency per batch, including retries and backoff", obs.LatencyBuckets)
		p.attemptLat = p.Metrics.Histogram("sink_write_attempt_seconds",
			"sink write latency per attempt (excluding retries and backoff)", obs.LatencyBuckets)
	})
}

// Stats returns a snapshot of the counters — reads of the same counters
// /metrics exports.
func (p *Pipeline) Stats() Stats {
	p.initMetrics()
	return Stats{
		Ingested: p.ingested.Value(),
		Filtered: p.filtered.Value(),
		Flushed:  p.flushed.Value(),
		Retries:  p.retries.Value(),
		Dropped:  p.dropped.Value(),
		Spooled:  p.spooled.Value(),
	}
}

// chain resolves the effective processing chain: the deprecated Filters
// (adapted) first, then Stages. A Filter that already implements Stage
// is used directly so its emit function and lifecycle hooks work no
// matter which field it was wired through.
func (p *Pipeline) chain() []Stage {
	chain := make([]Stage, 0, len(p.Filters)+len(p.Stages))
	for _, f := range p.Filters {
		if s, ok := f.(Stage); ok {
			chain = append(chain, s)
		} else {
			chain = append(chain, filterStage{f: f})
		}
	}
	return append(chain, p.Stages...)
}

// prepare validates the pipeline, resolves the effective Config and
// initializes metrics.
func (p *Pipeline) prepare() error {
	if p.Source == nil || p.Sink == nil {
		return errors.New("collector: pipeline needs a Source and a Sink")
	}
	cfg := Config{}
	if p.Config != nil {
		cfg = *p.Config
	}
	cfg.fillFromLegacy(p)
	if err := cfg.Validate(); err != nil {
		return err
	}
	p.cfg = cfg.withDefaults()
	p.initMetrics()
	return nil
}

// Run operates the pipeline until ctx is cancelled, then drains the buffer
// (and, if the sink is accepting writes, the spool) and returns the
// source's error (nil on clean shutdown).
func (p *Pipeline) Run(ctx context.Context) error {
	if err := p.prepare(); err != nil {
		return err
	}
	p.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: p.cfg.BreakerThreshold,
		InitialBackoff:   p.cfg.RetryBackoff,
		MaxBackoff:       p.cfg.MaxRetryBackoff,
		Jitter:           p.cfg.RetryJitter,
		Seed:             p.cfg.Seed,
	})
	p.Metrics.GaugeFunc("sink_breaker_state",
		"sink circuit breaker state (0 closed, 1 half-open, 2 open)",
		func() int64 { return int64(p.breaker.State()) })
	if p.cfg.SpoolDir != "" {
		spool, err := resilience.OpenSpool(resilience.SpoolConfig{
			Dir: p.cfg.SpoolDir, MaxBytes: p.cfg.SpoolMaxBytes,
		})
		if err != nil {
			return err
		}
		p.spool = spool
		defer p.spool.Close()
		p.Metrics.GaugeFunc("spool_bytes",
			"bytes of spooled batch frames on disk",
			func() int64 { return spool.Bytes() })
		p.Metrics.GaugeFunc("spool_segments",
			"live WAL segment files in the spool directory",
			func() int64 { return int64(spool.Segments()) })
		// Records spooled by a previous process enter this run through
		// the spool: count them as Ingested + Spooled so the accounting
		// invariant spans restarts.
		if rec := spool.Records(); rec > 0 {
			p.ingested.Add(rec)
			p.spooled.Add(rec)
		}
	}

	// The queue carries chunks — one chunk per emit on the per-record
	// path, one per batch on the batched path — so a batched source pays
	// one channel operation per read-loop iteration instead of one per
	// message. QueueDepth therefore bounds buffered *handoffs*; the
	// queueDepth gauge still counts records exactly.
	queue := make(chan []Record, p.cfg.QueueDepth)

	var wg sync.WaitGroup
	for w := 0; w < p.cfg.FlushWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.flusher(ctx, queue)
		}()
	}

	// The replayer drains the spool back into the sink whenever the
	// breaker admits writes; it runs on its own context so it keeps
	// replaying while the source drains during shutdown.
	replayCtx, stopReplay := context.WithCancel(context.Background())
	var replayWG sync.WaitGroup
	if p.spool != nil {
		replayWG.Add(1)
		go func() {
			defer replayWG.Done()
			p.replayer(replayCtx)
		}()
	}

	// sendChunk delivers one chunk of filtered records, preferring
	// delivery over shutdown: a cancelled context only refuses a chunk
	// when the queue has no room for it, and the refusal is reported to
	// the source as ErrPipelineClosed.
	sendChunk := func(chunk []Record) error {
		n := int64(len(chunk))
		if n == 0 {
			p.putChunk(chunk)
			return nil
		}
		p.queueDepth.Add(n)
		select {
		case queue <- chunk:
			return nil
		default:
		}
		select {
		case queue <- chunk:
			return nil
		case <-ctx.Done():
			// The records were discarded, not delivered: account for them
			// so Ingested == Filtered + Flushed + Dropped + Spooled holds
			// at shutdown, and tell the source to stop.
			p.queueDepth.Add(-n)
			p.dropped.Add(n)
			p.releaseBatch(chunk)
			p.putChunk(chunk)
			return ErrPipelineClosed
		}
	}

	// The effective chain: adapted legacy Filters first, then Stages.
	chain := p.chain()

	// processFrom runs r through chain[from:] and enqueues survivors as
	// single-record chunks. Each stage gets one stable emit closure that
	// injects records downstream of itself, counted as Ingested; records
	// refused at shutdown are accounted by enqueue. Legacy
	// EmittingFilters receive the same closure through SetEmit.
	var processFrom func(r Record, from int) error
	emitFor := make([]func(Record), len(chain))
	for i := range chain {
		after := i + 1
		emitFor[i] = func(r Record) {
			p.ingested.Add(1)
			_ = processFrom(r, after)
		}
	}
	processFrom = func(r Record, from int) error {
		for i := from; i < len(chain); i++ {
			var keep bool
			r, keep = chain[i].Process(r, emitFor[i])
			if !keep {
				p.filtered.Add(1)
				return nil
			}
		}
		return sendChunk(append(p.getChunk(), r))
	}
	for i, s := range chain {
		if ef, ok := stageHooks(s).(interface{ SetEmit(func(Record)) }); ok {
			ef.SetEmit(emitFor[i])
		}
	}

	emit := func(r Record) error {
		p.ingested.Add(1)
		return processFrom(r, 0)
	}

	// emitBatch ingests a whole batch: every record runs the full chain,
	// survivors share one chunk and one channel operation.
	emitBatch := func(rs []Record) error {
		p.ingested.Add(int64(len(rs)))
		chunk := p.getChunk()
		for _, r := range rs {
			keep := true
			for i := 0; i < len(chain); i++ {
				r, keep = chain[i].Process(r, emitFor[i])
				if !keep {
					p.filtered.Add(1)
					break
				}
			}
			if keep {
				chunk = append(chunk, r)
			}
		}
		return sendChunk(chunk)
	}

	// The sweep ticker gives window-based stages (Dedup, the detectors)
	// a clock-driven eviction pass, so expired bursts summarize and idle
	// sources evict even when no traffic arrives to trigger the stages'
	// own lazy sweeps.
	var sweepers []interface{ Sweep(now time.Time) int }
	for _, s := range chain {
		if sw, ok := stageHooks(s).(interface{ Sweep(now time.Time) int }); ok {
			sweepers = append(sweepers, sw)
		}
	}
	stopSweep := make(chan struct{})
	var sweepWG sync.WaitGroup
	if len(sweepers) > 0 && p.cfg.SweepInterval > 0 {
		sweepWG.Add(1)
		go func() {
			defer sweepWG.Done()
			tick := time.NewTicker(p.cfg.SweepInterval)
			defer tick.Stop()
			for {
				select {
				case <-stopSweep:
					return
				case <-tick.C:
					for _, sw := range sweepers {
						sw.Sweep(time.Now())
					}
				}
			}
		}()
	}

	var err error
	if bs, ok := p.Source.(BatchSource); ok {
		err = bs.RunBatch(ctx, emit, emitBatch)
	} else {
		err = p.Source.Run(ctx, emit)
	}
	// Close lifecycle: with the source stopped and the queue still open,
	// stages flush whatever they are holding (pending dedup summaries)
	// so it is delivered instead of lost.
	close(stopSweep)
	sweepWG.Wait()
	for _, s := range chain {
		if cl, ok := stageHooks(s).(interface{ Close() }); ok {
			cl.Close()
		}
	}
	close(queue)
	wg.Wait()
	if p.spool != nil {
		stopReplay()
		replayWG.Wait()
		// Final drain: replay whatever the sink will still take. Bounded:
		// the first refused or failed write stops it, leaving the rest on
		// disk for the next run.
		p.replayDrain(context.Background())
	}
	stopReplay()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrPipelineClosed) {
		return nil
	}
	return err
}

// getChunk takes a queue chunk from the pool (or makes a small one).
func (p *Pipeline) getChunk() []Record {
	if v := p.chunkPool.Get(); v != nil {
		return (*v.(*[]Record))[:0]
	}
	return make([]Record, 0, 16)
}

// putChunk recycles a drained chunk, clearing it first so pooled capacity
// does not pin messages or meta maps.
func (p *Pipeline) putChunk(c []Record) {
	if cap(c) == 0 {
		return
	}
	c = c[:cap(c)]
	clear(c)
	c = c[:0]
	p.chunkPool.Put(&c)
}

// flusher drains the queue into batches and writes them with retry. When
// FlushWorkers > 1 several flushers share the queue, each with its own
// batch buffer and timer.
func (p *Pipeline) flusher(ctx context.Context, queue <-chan []Record) {
	batch := make([]Record, 0, p.cfg.BatchSize)
	timer := time.NewTimer(p.cfg.FlushInterval)
	defer timer.Stop()
	flush := func() {
		if len(batch) == 0 {
			return
		}
		p.deliver(ctx, batch)
		batch = batch[:0]
	}
	for {
		select {
		case chunk, ok := <-queue:
			if !ok {
				flush()
				return
			}
			p.queueDepth.Add(-int64(len(chunk)))
			for _, r := range chunk {
				batch = append(batch, r)
				if len(batch) >= p.cfg.BatchSize {
					flush()
					if !timer.Stop() {
						select {
						case <-timer.C:
						default:
						}
					}
					timer.Reset(p.cfg.FlushInterval)
				}
			}
			p.putChunk(chunk)
		case <-timer.C:
			flush()
			timer.Reset(p.cfg.FlushInterval)
		}
	}
}

// deliver writes one batch through the circuit breaker, retrying with the
// breaker's jittered capped backoff. A batch the sink will not take —
// breaker open, retries exhausted, or retry abandoned at shutdown — is
// diverted to the spool (or dropped when none is configured). Backoff
// sleeps watch ctx so shutdown never waits out the ladder; the in-flight
// write attempt itself is never cancelled by shutdown, only by the
// per-attempt timeout, so shutdown latency is bounded by one attempt.
func (p *Pipeline) deliver(ctx context.Context, batch []Record) {
	p.batchSize.Observe(float64(len(batch)))
	start := time.Now()
	for attempt := 0; ; attempt++ {
		if !p.breaker.Allow() {
			p.divert(batch)
			return
		}
		err := p.writeAttempt(ctx, batch)
		if err == nil {
			p.breaker.Success()
			p.flushed.Add(int64(len(batch)))
			p.flushLatency.ObserveDuration(time.Since(start))
			p.releaseBatch(batch)
			return
		}
		p.breaker.Failure()
		if attempt >= p.cfg.MaxRetries {
			p.divert(batch)
			return
		}
		p.retries.Add(1)
		t := time.NewTimer(p.breaker.RetryDelay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			p.divert(batch)
			return
		}
	}
}

// writeAttempt performs one sink write under the per-attempt timeout. The
// write context is detached from pipeline cancellation: an in-flight
// attempt is never abandoned halfway through shutdown (a half-written
// remote batch is worse than a slightly slower exit), so shutdown waits
// at most WriteTimeout for it.
func (p *Pipeline) writeAttempt(ctx context.Context, batch []Record) error {
	wctx := context.WithoutCancel(ctx)
	if p.cfg.WriteTimeout > 0 {
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(wctx, p.cfg.WriteTimeout)
		defer cancel()
	}
	start := time.Now()
	err := p.Sink.Write(wctx, batch)
	p.attemptLat.ObserveDuration(time.Since(start))
	return err
}

// divert routes a batch the sink refused into the disk spill queue so
// nothing is lost; without a spool (or when the disk fails too) the batch
// is dropped, preserving the pre-spool behaviour. Either way the batch's
// records reached their final disposition — the spool holds an encoded
// copy, not the records — so they are released on every path.
func (p *Pipeline) divert(batch []Record) {
	defer p.releaseBatch(batch)
	n := int64(len(batch))
	if p.spool == nil {
		p.dropped.Add(n)
		return
	}
	payload, err := encodeBatch(batch)
	if err == nil {
		var evicted int64
		evicted, err = p.spool.Append(payload, len(batch))
		if evicted > 0 {
			p.spooled.Add(-evicted)
			p.dropped.Add(evicted)
			p.evicted.Add(evicted)
		}
	}
	if err != nil {
		p.dropped.Add(n)
		return
	}
	p.spooled.Add(n)
	p.spooledTotal.Add(n)
}

// releaseBatch invokes the Release hook for each record of a batch that
// reached its final disposition. No-op when the hook is unset.
func (p *Pipeline) releaseBatch(batch []Record) {
	if p.Release == nil {
		return
	}
	for _, r := range batch {
		p.Release(r)
	}
}

// replayer polls the spool, draining it into the sink whenever the
// breaker admits writes — including the half-open probe after an outage,
// which is taken by the oldest spooled frame so replay stays in order.
func (p *Pipeline) replayer(ctx context.Context) {
	tick := time.NewTicker(p.cfg.ReplayInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			p.replayDrain(ctx)
		}
	}
}

// replayDrain replays spooled frames oldest-first while the breaker
// admits writes and they succeed. Replayed records move from Spooled to
// Flushed; an undecodable frame (version skew) is dropped.
//
// Eviction can race an in-flight replay: a flush worker's divert ->
// Spool.Append may evict the head segment while the peeked frame is
// being written to the sink. Pop therefore takes the Peek token and
// refuses to consume a different frame; a refused Pop means eviction
// already accounted the frame (Spooled -> Dropped via divert), so only
// the delta between that and what actually happened is applied here.
func (p *Pipeline) replayDrain(ctx context.Context) {
	for ctx.Err() == nil {
		payload, n, tok, ok, err := p.spool.Peek()
		if err != nil || !ok {
			return
		}
		batch, derr := decodeBatch(payload)
		if derr != nil {
			if p.spool.Pop(tok) {
				p.spooled.Add(-int64(n))
				p.dropped.Add(int64(n))
			}
			continue
		}
		if !p.breaker.Allow() {
			return
		}
		if err := p.writeAttempt(ctx, batch); err != nil {
			p.breaker.Failure()
			return
		}
		p.breaker.Success()
		if p.spool.Pop(tok) {
			p.spooled.Add(-int64(n))
		} else {
			// The frame reached the sink but was evicted mid-write and
			// billed as Dropped (and evicted): it was in fact delivered,
			// so reclassify Dropped -> Flushed.
			p.dropped.Add(-int64(n))
			p.evicted.Add(-int64(n))
		}
		p.flushed.Add(int64(n))
		p.replayed.Add(int64(n))
	}
}
