// Package collector implements the Fluentd role from the paper's
// infrastructure (§4.2): it ingests records from a source (typically the
// syslog listener), runs them through a filter chain (parsing, metadata
// enrichment, noise dropping), buffers them, and flushes batches to a sink
// (typically the Tivan store) with bounded retry and backpressure.
package collector

import (
	"context"
	"errors"
	"sync"
	"time"

	"hetsyslog/internal/obs"
	"hetsyslog/internal/syslog"
)

// Record is the unit flowing through the pipeline.
type Record struct {
	// Tag routes records, Fluentd-style ("syslog.cn101").
	Tag  string
	Time time.Time
	// Msg is the parsed syslog message.
	Msg *syslog.Message
	// Meta carries enrichment added by filters (rack, arch, category...).
	Meta map[string]string
}

// WithMeta returns a copy of r with key=value added to Meta.
func (r Record) WithMeta(key, value string) Record {
	meta := make(map[string]string, len(r.Meta)+1)
	for k, v := range r.Meta {
		meta[k] = v
	}
	meta[key] = value
	r.Meta = meta
	return r
}

// Source produces records until ctx is cancelled.
type Source interface {
	// Run blocks, calling emit for each record, until ctx is done.
	Run(ctx context.Context, emit func(Record)) error
}

// Filter transforms or drops records.
type Filter interface {
	// Apply returns the (possibly modified) record and whether to keep it.
	Apply(r Record) (Record, bool)
}

// FilterFunc adapts a function to Filter.
type FilterFunc func(r Record) (Record, bool)

// Apply calls f.
func (f FilterFunc) Apply(r Record) (Record, bool) { return f(r) }

// EmittingFilter is a Filter that can inject additional records of its
// own — e.g. Dedup's "message repeated N times" summaries when a burst's
// window expires. The pipeline calls SetEmit before the source starts;
// injected records are run through the remaining filter chain (everything
// downstream of the emitting filter), counted as Ingested, and enqueued
// like any other record, so the accounting invariant
// Ingested == Filtered + Flushed + Dropped still holds.
type EmittingFilter interface {
	Filter
	SetEmit(emit func(Record))
}

// Sink receives flushed batches. Write must be safe to retry: the pipeline
// re-delivers the whole batch on error.
type Sink interface {
	Write(batch []Record) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(batch []Record) error

// Write calls f.
func (f SinkFunc) Write(batch []Record) error { return f(batch) }

// Stats counts pipeline activity.
type Stats struct {
	Ingested int64 // records emitted by the source
	Filtered int64 // records dropped by the filter chain
	Flushed  int64 // records successfully written to the sink
	Retries  int64 // batch write retries
	// Dropped counts records lost for any reason: retries exhausted,
	// retry abandoned at shutdown, or discarded at enqueue because the
	// context was cancelled while the queue was full. After Run returns,
	// Ingested == Filtered + Flushed + Dropped.
	Dropped int64
}

// Pipeline wires source -> filters -> buffer -> sink.
type Pipeline struct {
	Source  Source
	Filters []Filter
	Sink    Sink

	// BatchSize flushes when the buffer reaches this many records
	// (default 128).
	BatchSize int
	// FlushInterval flushes a partial buffer after this long
	// (default 250ms).
	FlushInterval time.Duration
	// MaxRetries bounds redelivery attempts per batch (default 3).
	MaxRetries int
	// RetryBackoff is the initial backoff, doubled per attempt
	// (default 10ms).
	RetryBackoff time.Duration
	// QueueDepth is the buffered-channel depth between ingest and flush;
	// when full the source's emit blocks (backpressure, default 1024).
	QueueDepth int
	// FlushWorkers is the number of concurrent flusher goroutines
	// (default 1). Each worker keeps its own batch buffer and flush
	// timer, so up to FlushWorkers batches can be in flight against the
	// sink at once; the sink must then be safe for concurrent Write
	// calls (StoreSink and core.Service both are). With more than one
	// worker, batch delivery order is not the arrival order.
	FlushWorkers int

	// Metrics optionally publishes the pipeline's counters, queue-depth
	// gauge and batch/flush histograms into a shared registry; set it
	// before Run. Left nil the same counters still run standalone, so
	// Stats() is always exact.
	Metrics *obs.Registry

	metricsOnce  sync.Once
	ingested     *obs.Counter
	filtered     *obs.Counter
	flushed      *obs.Counter
	retries      *obs.Counter
	dropped      *obs.Counter
	batchSize    *obs.Histogram
	flushLatency *obs.Histogram
}

// initMetrics lazily creates the pipeline's metrics — inside Metrics when
// set, standalone otherwise.
func (p *Pipeline) initMetrics() {
	p.metricsOnce.Do(func() {
		p.ingested = p.Metrics.Counter("pipeline_ingested_total",
			"records emitted by the source (including filter-injected records)")
		p.filtered = p.Metrics.Counter("pipeline_filtered_total",
			"records dropped by the filter chain")
		p.flushed = p.Metrics.Counter("pipeline_flushed_total",
			"records successfully written to the sink")
		p.retries = p.Metrics.Counter("pipeline_retries_total",
			"batch write retries")
		p.dropped = p.Metrics.Counter("pipeline_dropped_total",
			"records lost: retries exhausted, retry abandoned at shutdown, or discarded at enqueue")
		p.batchSize = p.Metrics.Histogram("pipeline_batch_size",
			"records per flushed batch", obs.SizeBuckets)
		p.flushLatency = p.Metrics.Histogram("pipeline_flush_seconds",
			"sink flush latency per batch, including retries and backoff", obs.LatencyBuckets)
	})
}

// Stats returns a snapshot of the counters — reads of the same counters
// /metrics exports.
func (p *Pipeline) Stats() Stats {
	p.initMetrics()
	return Stats{
		Ingested: p.ingested.Value(),
		Filtered: p.filtered.Value(),
		Flushed:  p.flushed.Value(),
		Retries:  p.retries.Value(),
		Dropped:  p.dropped.Value(),
	}
}

func (p *Pipeline) defaults() error {
	if p.Source == nil || p.Sink == nil {
		return errors.New("collector: pipeline needs a Source and a Sink")
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 128
	}
	if p.FlushInterval <= 0 {
		p.FlushInterval = 250 * time.Millisecond
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = 10 * time.Millisecond
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = 1024
	}
	if p.FlushWorkers <= 0 {
		p.FlushWorkers = 1
	}
	p.initMetrics()
	return nil
}

// Run operates the pipeline until ctx is cancelled, then drains the buffer
// and returns the source's error (nil on clean shutdown).
func (p *Pipeline) Run(ctx context.Context) error {
	if err := p.defaults(); err != nil {
		return err
	}
	queue := make(chan Record, p.QueueDepth)
	// Scrape-time gauge: len on a buffered channel is exact and free, so
	// the hot path pays nothing for queue visibility.
	p.Metrics.GaugeFunc("pipeline_queue_depth",
		"records buffered between ingest and flush",
		func() int64 { return int64(len(queue)) })

	var wg sync.WaitGroup
	for w := 0; w < p.FlushWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.flusher(ctx, queue)
		}()
	}

	// enqueue delivers one filtered record, preferring delivery over
	// shutdown: a cancelled context only drops a record when the queue
	// has no room for it.
	enqueue := func(r Record) {
		select {
		case queue <- r:
			return
		default:
		}
		select {
		case queue <- r:
		case <-ctx.Done():
			// The record was discarded, not delivered: account for it so
			// Ingested == Filtered + Flushed + Dropped holds at shutdown.
			p.dropped.Add(1)
		}
	}

	// filterFrom runs r through p.Filters[from:] and enqueues survivors.
	filterFrom := func(r Record, from int) {
		for _, f := range p.Filters[from:] {
			var keep bool
			r, keep = f.Apply(r)
			if !keep {
				p.filtered.Add(1)
				return
			}
		}
		enqueue(r)
	}

	// Filters that inject their own records (dedup summaries) feed them
	// through the rest of the chain, downstream of themselves.
	for i, f := range p.Filters {
		if ef, ok := f.(EmittingFilter); ok {
			after := i + 1
			ef.SetEmit(func(r Record) {
				p.ingested.Add(1)
				filterFrom(r, after)
			})
		}
	}

	emit := func(r Record) {
		p.ingested.Add(1)
		filterFrom(r, 0)
	}

	err := p.Source.Run(ctx, emit)
	close(queue)
	wg.Wait()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}

// flusher drains the queue into batches and writes them with retry. When
// FlushWorkers > 1 several flushers share the queue, each with its own
// batch buffer and timer.
func (p *Pipeline) flusher(ctx context.Context, queue <-chan Record) {
	batch := make([]Record, 0, p.BatchSize)
	timer := time.NewTimer(p.FlushInterval)
	defer timer.Stop()
	flush := func() {
		if len(batch) == 0 {
			return
		}
		p.writeWithRetry(ctx, batch)
		batch = batch[:0]
	}
	for {
		select {
		case r, ok := <-queue:
			if !ok {
				flush()
				return
			}
			batch = append(batch, r)
			if len(batch) >= p.BatchSize {
				flush()
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(p.FlushInterval)
			}
		case <-timer.C:
			flush()
			timer.Reset(p.FlushInterval)
		}
	}
}

// writeWithRetry delivers one batch, retrying with exponential backoff.
// Backoff sleeps watch ctx so shutdown never waits out the backoff
// ladder; a batch abandoned mid-retry counts as Dropped. The in-flight
// Sink.Write itself is never interrupted (Write is not ctx-aware), so
// shutdown latency is bounded by one Write plus nothing.
func (p *Pipeline) writeWithRetry(ctx context.Context, batch []Record) {
	p.batchSize.Observe(float64(len(batch)))
	start := time.Now()
	backoff := p.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := p.Sink.Write(batch)
		if err == nil {
			p.flushed.Add(int64(len(batch)))
			p.flushLatency.ObserveDuration(time.Since(start))
			return
		}
		if attempt >= p.MaxRetries {
			p.dropped.Add(int64(len(batch)))
			return
		}
		p.retries.Add(1)
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			p.dropped.Add(int64(len(batch)))
			return
		}
		backoff *= 2
	}
}
