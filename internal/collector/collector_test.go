package collector

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
)

func record(host, app, content string, sev syslog.Severity) Record {
	return Record{
		Tag:  "syslog",
		Time: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
		Msg: &syslog.Message{
			Facility: syslog.Daemon, Severity: sev,
			Hostname: host, AppName: app, Content: content,
			Timestamp: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
		},
	}
}

func runPipeline(t *testing.T, p *Pipeline, feed func(chan<- Record)) {
	t.Helper()
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	feed(ch)
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDeliversToSink(t *testing.T) {
	sink := &MemorySink{}
	p := &Pipeline{Sink: sink, BatchSize: 4, FlushInterval: 10 * time.Millisecond}
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < 10; i++ {
			ch <- record("cn1", "kernel", fmt.Sprintf("message %d", i), syslog.Info)
		}
	})
	if got := len(sink.Records()); got != 10 {
		t.Fatalf("delivered = %d, want 10", got)
	}
	s := p.Stats()
	if s.Ingested != 10 || s.Flushed != 10 || s.Dropped != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPipelineFilterChain(t *testing.T) {
	sink := &MemorySink{}
	p := &Pipeline{
		Sink:    sink,
		Filters: []Filter{SeverityFilter(syslog.Warning)},
	}
	runPipeline(t, p, func(ch chan<- Record) {
		ch <- record("cn1", "kernel", "critical thing", syslog.Critical)
		ch <- record("cn1", "kernel", "noise", syslog.Debug)
		ch <- record("cn1", "kernel", "warning thing", syslog.Warning)
	})
	if got := len(sink.Records()); got != 2 {
		t.Fatalf("delivered = %d, want 2", got)
	}
	if p.Stats().Filtered != 1 {
		t.Errorf("filtered = %d", p.Stats().Filtered)
	}
}

func TestAppFilter(t *testing.T) {
	f := AppFilter("sshd", "slurmd")
	if _, keep := f.Apply(record("h", "sshd", "x", syslog.Info)); !keep {
		t.Error("sshd should pass")
	}
	if _, keep := f.Apply(record("h", "kernel", "x", syslog.Info)); keep {
		t.Error("kernel should be dropped")
	}
	if _, keep := f.Apply(Record{}); keep {
		t.Error("nil message should be dropped")
	}
}

func TestTopologyEnricher(t *testing.T) {
	f := TopologyEnricher(func(host string) (string, string, bool) {
		if host == "cn1" {
			return "r7", "x86_64-dell", true
		}
		return "", "", false
	})
	r, keep := f.Apply(record("cn1", "kernel", "x", syslog.Info))
	if !keep || r.Meta["rack"] != "r7" || r.Meta["arch"] != "x86_64-dell" {
		t.Errorf("enriched = %+v", r.Meta)
	}
	r2, keep := f.Apply(record("unknown", "kernel", "x", syslog.Info))
	if !keep || len(r2.Meta) != 0 {
		t.Errorf("unknown host should pass through unenriched: %+v", r2.Meta)
	}
}

func TestPipelineRetriesAndDrops(t *testing.T) {
	var calls atomic.Int64
	failing := SinkFunc(func(ctx context.Context, batch []Record) error {
		calls.Add(1)
		return errors.New("sink down")
	})
	p := &Pipeline{
		Sink: failing, BatchSize: 2, FlushInterval: 5 * time.Millisecond,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	}
	runPipeline(t, p, func(ch chan<- Record) {
		ch <- record("cn1", "kernel", "a", syslog.Info)
		ch <- record("cn1", "kernel", "b", syslog.Info)
	})
	s := p.Stats()
	if s.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", s.Dropped)
	}
	if s.Retries != 2 {
		t.Errorf("retries = %d, want 2", s.Retries)
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Errorf("sink calls = %d, want 3", calls.Load())
	}
}

func TestPipelineRecoversAfterTransientFailure(t *testing.T) {
	var calls atomic.Int64
	sink := &MemorySink{}
	flaky := SinkFunc(func(ctx context.Context, batch []Record) error {
		if calls.Add(1) == 1 {
			return errors.New("transient")
		}
		return sink.Write(ctx, batch)
	})
	p := &Pipeline{Sink: flaky, BatchSize: 2, MaxRetries: 3, RetryBackoff: time.Millisecond}
	runPipeline(t, p, func(ch chan<- Record) {
		ch <- record("cn1", "kernel", "a", syslog.Info)
		ch <- record("cn1", "kernel", "b", syslog.Info)
	})
	if got := len(sink.Records()); got != 2 {
		t.Fatalf("delivered after retry = %d", got)
	}
	if p.Stats().Dropped != 0 {
		t.Error("nothing should drop on transient failure")
	}
}

func TestPipelineFlushOnInterval(t *testing.T) {
	sink := &MemorySink{}
	p := &Pipeline{Sink: sink, BatchSize: 1000, FlushInterval: 5 * time.Millisecond}
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	ch <- record("cn1", "kernel", "lonely", syslog.Info)
	// Far below BatchSize: only the interval can flush it.
	if !sink.WaitFor(1, 2*time.Second) {
		t.Fatal("interval flush never happened")
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShutdownInterruptsRetryBackoff cancels the pipeline while the sink
// is failing with a long backoff ladder: shutdown must not sleep the
// ladder out, and the abandoned batch must be accounted as Dropped.
func TestShutdownInterruptsRetryBackoff(t *testing.T) {
	var calls atomic.Int64
	failing := SinkFunc(func(ctx context.Context, batch []Record) error {
		calls.Add(1)
		return errors.New("sink down")
	})
	p := &Pipeline{
		Sink: failing, BatchSize: 1, FlushInterval: time.Millisecond,
		MaxRetries: 10, RetryBackoff: 30 * time.Second, // ladder would take minutes
	}
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	ch <- record("cn1", "kernel", "doomed", syslog.Info)
	// Let the flusher pick the record up and enter the first backoff.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	cancel()
	close(ch)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown hung in retry backoff")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("shutdown took %v, want prompt exit from backoff", elapsed)
	}
	s := p.Stats()
	if s.Dropped != 1 {
		t.Errorf("dropped = %d, want 1 (batch abandoned mid-retry)", s.Dropped)
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped {
		t.Errorf("stats invariant broken: %+v", s)
	}
}

// TestStatsInvariantWhenCancelledWithFullQueue wedges the queue behind a
// blocked sink, cancels, and checks that records discarded at enqueue
// show up in Dropped: Ingested == Filtered + Flushed + Dropped.
func TestStatsInvariantWhenCancelledWithFullQueue(t *testing.T) {
	release := make(chan struct{})
	sink := &MemorySink{}
	blocking := SinkFunc(func(ctx context.Context, batch []Record) error {
		<-release
		return sink.Write(ctx, batch)
	})
	p := &Pipeline{
		Sink: blocking, BatchSize: 2, FlushInterval: time.Millisecond,
		QueueDepth: 2,
	}
	ch := make(chan Record)
	p.Source = &ChannelSource{Ch: ch}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	// Feed from a goroutine: once the flusher blocks in Write and the
	// queue fills, emit blocks until the cancel below discards records.
	go func() {
		for i := 0; i < 50; i++ {
			select {
			case ch <- record("cn1", "kernel", fmt.Sprintf("m%d", i), syslog.Info):
			case <-ctx.Done():
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Dropped == 0 {
		t.Error("expected records discarded at enqueue to count as Dropped")
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped {
		t.Errorf("Ingested (%d) != Filtered (%d) + Flushed (%d) + Dropped (%d)",
			s.Ingested, s.Filtered, s.Flushed, s.Dropped)
	}
}

// TestFlushWorkersDeliverEverything runs the sharded flusher and checks
// nothing is lost or double-counted relative to the serial flusher.
func TestFlushWorkersDeliverEverything(t *testing.T) {
	sink := &MemorySink{}
	p := &Pipeline{
		Sink: sink, BatchSize: 4, FlushInterval: time.Millisecond,
		FlushWorkers: 4,
	}
	const n = 500
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < n; i++ {
			ch <- record(fmt.Sprintf("cn%d", i%8), "kernel", fmt.Sprintf("message %d", i), syslog.Info)
		}
	})
	if got := len(sink.Records()); got != n {
		t.Fatalf("delivered = %d, want %d", got, n)
	}
	s := p.Stats()
	if s.Flushed != n || s.Dropped != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped {
		t.Errorf("stats invariant broken: %+v", s)
	}
}

func TestPipelineRequiresSourceAndSink(t *testing.T) {
	if err := (&Pipeline{}).Run(context.Background()); err == nil {
		t.Error("empty pipeline should error")
	}
}

func TestRecordToDoc(t *testing.T) {
	r := record("cn7", "sshd", "Connection closed", syslog.Warning).
		WithMeta("rack", "r2").WithMeta("arch", "aarch64-cavium")
	d := RecordToDoc(r)
	if d.Body != "Connection closed" || d.Fields.Value("hostname") != "cn7" ||
		d.Fields.Value("app") != "sshd" || d.Fields.Value("severity") != "warning" ||
		d.Fields.Value("rack") != "r2" {
		t.Errorf("doc = %+v", d)
	}
}

func TestStoreSinkEndToEnd(t *testing.T) {
	st := store.New(2)
	p := &Pipeline{Sink: &StoreSink{Store: st}, BatchSize: 8}
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < 20; i++ {
			ch <- record(fmt.Sprintf("cn%d", i%4), "kernel",
				fmt.Sprintf("CPU %d temperature above threshold", i), syslog.Warning)
		}
	})
	if st.Count() != 20 {
		t.Fatalf("store count = %d", st.Count())
	}
	hits := st.Search(store.SearchRequest{Query: store.Term{Field: "hostname", Value: "cn1"}, Size: -1})
	if len(hits) != 5 {
		t.Errorf("cn1 hits = %d, want 5", len(hits))
	}
}

func TestSyslogSourceEndToEnd(t *testing.T) {
	src := NewSyslogSource("127.0.0.1:0", "")
	sink := &MemorySink{}
	p := &Pipeline{Source: src, Sink: sink, BatchSize: 4, FlushInterval: 5 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	<-src.Ready()

	snd, err := syslog.DialSender("udp", src.BoundUDP, syslog.FormatRFC5424)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	for i := 0; i < 12; i++ {
		if err := snd.Send(&syslog.Message{
			Facility: syslog.Kern, Severity: syslog.Warning,
			Timestamp: time.Now(), Hostname: "cn42", AppName: "kernel",
			Content: fmt.Sprintf("thermal event %d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !sink.WaitFor(12, 5*time.Second) {
		t.Fatalf("only %d records arrived", len(sink.Records()))
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := sink.Records()[0]
	if got.Msg.Hostname != "cn42" {
		t.Errorf("record = %+v", got.Msg)
	}
}

func TestDedupSuppressesWithinWindow(t *testing.T) {
	clock := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	d := NewDedup(time.Second)
	d.Now = func() time.Time { return clock }

	r := record("cn1", "kernel", "same message", syslog.Warning)
	if _, keep := d.Apply(r); !keep {
		t.Fatal("first occurrence must pass")
	}
	for i := 0; i < 5; i++ {
		clock = clock.Add(100 * time.Millisecond)
		if _, keep := d.Apply(r); keep {
			t.Fatal("duplicate inside window must drop")
		}
	}
	if d.Suppressed() != 5 {
		t.Errorf("Suppressed = %d", d.Suppressed())
	}
	// After the window: passes again, annotated with the count.
	clock = clock.Add(time.Second)
	out, keep := d.Apply(r)
	if !keep {
		t.Fatal("post-window occurrence must pass")
	}
	if out.Meta["repeated"] != "5" {
		t.Errorf("repeated annotation = %q", out.Meta["repeated"])
	}
}

func TestDedupDistinguishesKeys(t *testing.T) {
	d := NewDedup(time.Minute)
	a := record("cn1", "kernel", "msg", syslog.Info)
	b := record("cn2", "kernel", "msg", syslog.Info)   // different host
	c := record("cn1", "sshd", "msg", syslog.Info)     // different app
	e := record("cn1", "kernel", "other", syslog.Info) // different content
	for _, r := range []Record{a, b, c, e} {
		if _, keep := d.Apply(r); !keep {
			t.Fatal("distinct keys must all pass")
		}
	}
	if _, keep := d.Apply(a); keep {
		t.Fatal("true duplicate must drop")
	}
	if _, keep := d.Apply(Record{}); keep {
		t.Fatal("nil message must drop")
	}
}

func TestDedupInPipeline(t *testing.T) {
	sink := &MemorySink{}
	p := &Pipeline{
		Sink:    sink,
		Filters: []Filter{NewDedup(time.Minute)},
	}
	runPipeline(t, p, func(ch chan<- Record) {
		for i := 0; i < 10; i++ {
			ch <- record("cn7", "ipmiseld", "temperature above threshold", syslog.Critical)
		}
		ch <- record("cn7", "ipmiseld", "different event", syslog.Critical)
	})
	// Three records: the burst's first occurrence, the distinct event,
	// and the "repeated 9" summary the Close lifecycle hook flushes at
	// shutdown (the burst's window never expired while running).
	if got := len(sink.Records()); got != 3 {
		t.Fatalf("delivered = %d, want 3 (first + distinct + shutdown summary)", got)
	}
	summaries := 0
	for _, r := range sink.Records() {
		if r.Meta["repeated"] == "9" {
			summaries++
		}
	}
	if summaries != 1 {
		t.Errorf("shutdown summaries = %d, want 1", summaries)
	}
	s := p.Stats()
	if s.Filtered != 9 {
		t.Errorf("filtered = %d", s.Filtered)
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant violated: %+v", s)
	}
}
