package collector

import (
	"context"
	"testing"
	"time"

	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
)

// TestStoreSinkSurvivesMessageReparse pins the contract the zero-copy
// ingest path rests on: StoreSink.Write hands the store string views of
// the message's materialization slab, the store copies them into its own
// arenas, and re-parsing different wire bytes into the SAME message —
// exactly what happens when a pooled message is recycled to the listener
// and reused for the next frame — must not change a single stored
// document.
func TestStoreSinkSurvivesMessageReparse(t *testing.T) {
	ref := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var m syslog.Message
	if err := syslog.ParseBytes([]byte("<13>Aug  7 12:00:00 cn042 kernel: CPU 3 temperature above threshold"), ref, &m); err != nil {
		t.Fatal(err)
	}

	st := store.New(2)
	sink := &StoreSink{Store: st}
	if err := sink.Write(context.Background(), []Record{{Tag: "syslog", Msg: &m}}); err != nil {
		t.Fatal(err)
	}

	// Recycle-and-reparse: the second frame overwrites m's slab in place,
	// which is what the message pool does between deliveries.
	if err := syslog.ParseBytes([]byte("<86>Aug  7 12:00:01 gpu07 sshd: Accepted publickey for root from 10.0.0.9"), ref, &m); err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(context.Background(), []Record{{Tag: "syslog", Msg: &m}}); err != nil {
		t.Fatal(err)
	}

	if got := st.Count(); got != 2 {
		t.Fatalf("store count = %d, want 2", got)
	}
	hits := st.Search(store.SearchRequest{Query: store.Term{Field: "hostname", Value: "cn042"}, Size: -1})
	if len(hits) != 1 {
		t.Fatalf("first message: %d hits for its hostname, want 1", len(hits))
	}
	if hits[0].Doc.Body != "CPU 3 temperature above threshold" {
		t.Errorf("first message's stored body mutated by re-parse:\n got %q", hits[0].Doc.Body)
	}
	if v, _ := hits[0].Doc.Fields.Get("app"); v != "kernel" {
		t.Errorf("first message's stored app mutated by re-parse: got %q", v)
	}
	if got := st.CountQuery(store.Match{Text: "publickey"}); got != 1 {
		t.Errorf("second message not indexed correctly: %d matches", got)
	}
}

// TestPipelineReleaseHook checks the opt-in release path end to end: with
// Release wired, every record delivered to a non-retaining sink is handed
// back exactly once, and records the sink never saw (ctx-cancelled or
// stage-dropped) are not double-released.
func TestPipelineReleaseHook(t *testing.T) {
	st := store.New(1)
	released := 0
	ch := make(chan Record, 16)
	p := &Pipeline{
		Source:    &ChannelSource{Ch: ch},
		Sink:      &StoreSink{Store: st},
		BatchSize: 4,
		Release: func(r Record) {
			released++
			syslog.Recycle(r.Msg) // heap messages: no-op, nil-safe
		},
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()

	const n = 10
	ref := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		var m syslog.Message
		if err := syslog.ParseBytes([]byte("<13>Aug  7 12:00:00 cn001 kernel: link down on port eth0"), ref, &m); err != nil {
			t.Fatal(err)
		}
		ch <- Record{Tag: "syslog", Msg: &m}
	}
	close(ch)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if released != n {
		t.Errorf("released %d records, want %d", released, n)
	}
	if got := st.Count(); got != n {
		t.Errorf("store count = %d, want %d", got, n)
	}
}
