package detect

import (
	"math"
	"strings"
	"sync"
)

// rateTable tracks one rateSource per (host, category), sharded by key
// hash so concurrent Process calls from batched sources contend on
// different locks.
type rateTable struct {
	shards      []rateShard
	mask        uint64
	maxPerShard int
}

type rateShard struct {
	mu      sync.Mutex
	sources map[uint64]*rateSource
}

// rateSource is the O(1) per-source state of the spike detector: a ring
// of per-bucket counts spanning one window, and an exponentially-decayed
// mean/variance of completed buckets as the baseline. No per-minute maps
// — the footprint never grows with time or traffic.
type rateSource struct {
	host     string // cloned, never aliases a message slab
	category string // cloned
	counts   []uint32
	cur      int   // ring index of the bucket containing curStart
	curStart int64 // start of the current bucket, ns
	mean     float64
	vari     float64
	warm     int   // completed buckets folded into the baseline
	lastSeen int64 // ns, drives idle eviction
	lastFire int64 // ns, drives the per-source cooldown
}

func newRateTable(shards, maxPerShard int) *rateTable {
	t := &rateTable{
		shards:      make([]rateShard, shards),
		mask:        uint64(shards - 1),
		maxPerShard: maxPerShard,
	}
	for i := range t.shards {
		t.shards[i].sources = make(map[uint64]*rateSource)
	}
	return t
}

// observe folds one record into its source's current bucket and checks
// the spike condition. It appends to fired (under the shard lock) rather
// than emitting, so delivery happens unlocked.
func (t *rateTable) observe(d *Detector, host, category string, now int64, fired *firedList) {
	key := hashKey(host, category)
	sh := &t.shards[key&t.mask]
	sh.mu.Lock()
	s := sh.sources[key]
	if s == nil {
		if len(sh.sources) >= t.maxPerShard {
			sh.evictIdlest(d)
		}
		s = &rateSource{
			host:     strings.Clone(host),
			category: strings.Clone(category),
			counts:   make([]uint32, d.cfg.Buckets),
			curStart: now - now%d.bucket,
		}
		sh.sources[key] = s
	}
	s.lastSeen = now
	s.advance(now, d)
	if s.counts[s.cur] != math.MaxUint32 {
		s.counts[s.cur]++
	}
	x := float64(s.counts[s.cur])
	// Fire only once warm (the baseline has seen a full window of
	// completed buckets) and past the absolute floor: a z-score over an
	// empty baseline says nothing.
	if s.warm >= len(s.counts) && s.counts[s.cur] >= uint32(d.cfg.MinCount) {
		// +1 in the denominator keeps z finite for a zero-variance
		// baseline and damps significance at very low volumes.
		z := (x - s.mean) / math.Sqrt(s.vari+1)
		if z >= d.cfg.ZScore {
			if now-s.lastFire >= d.window {
				s.lastFire = now
				fired.add(firedAlert{
					kind:     kindRate,
					host:     s.host,
					category: s.category,
					count:    int(s.counts[s.cur]),
					baseline: s.mean,
					z:        z,
					conf:     z / (z + d.cfg.ZScore),
				})
			} else {
				d.suppressed[kindRate].Inc()
			}
		}
	}
	sh.mu.Unlock()
}

// advance rotates the ring to the bucket containing now, folding each
// completed bucket into the decayed baseline:
//
//	diff = x - mean;  mean += α·diff;  var = (1-α)·(var + diff·α·diff)
//
// After an idle gap the fold is capped at two ring lengths — the ring's
// own contents plus one window of zeros — which decays the baseline
// toward the gap's silence without spinning proportionally to its
// length.
func (s *rateSource) advance(now int64, d *Detector) {
	steps := (now - s.curStart) / d.bucket
	if steps <= 0 {
		return
	}
	fold := steps
	if limit := int64(2 * len(s.counts)); fold > limit {
		fold = limit
	}
	alpha := d.cfg.Decay
	for i := int64(0); i < fold; i++ {
		x := float64(s.counts[s.cur])
		diff := x - s.mean
		incr := alpha * diff
		s.mean += incr
		s.vari = (1 - alpha) * (s.vari + diff*incr)
		if s.warm < 1<<30 {
			s.warm++
		}
		s.cur++
		if s.cur == len(s.counts) {
			s.cur = 0
		}
		s.counts[s.cur] = 0
	}
	s.curStart += steps * d.bucket
}

// evictScan bounds how many entries an at-capacity insert examines when
// choosing a victim: the idlest of a small sample, in O(evictScan)
// instead of O(shard). Go's randomized map iteration supplies the
// sampling.
const evictScan = 8

// evictIdlest drops the least-recently-seen of up to evictScan sampled
// entries. Caller holds sh.mu and guarantees the shard is non-empty.
func (sh *rateShard) evictIdlest(d *Detector) {
	var victim uint64
	oldest := int64(math.MaxInt64)
	n := 0
	for k, s := range sh.sources {
		if s.lastSeen < oldest {
			oldest, victim = s.lastSeen, k
		}
		n++
		if n >= evictScan {
			break
		}
	}
	delete(sh.sources, victim)
	d.evicted.Inc()
}

// sweep drops every source last seen before cutoff, returning how many.
func (t *rateTable) sweep(cutoff int64) int {
	evicted := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, s := range sh.sources {
			if s.lastSeen < cutoff {
				delete(sh.sources, k)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

func (t *rateTable) len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.sources)
		sh.mu.Unlock()
	}
	return n
}
