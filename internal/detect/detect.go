// Package detect is the streaming security-analytics stage of the
// pipeline: cross-message detectors that watch the record flow between
// the collector's edge and the store for attack shapes no per-message
// classifier can see — rate spikes against a learned per-source baseline,
// failed-password bursts, username sprays, and scan-like probing. The
// paper's taxonomy has an Intrusion Detection category but classifies
// strictly per message; this stage covers the cross-message half.
//
// The Detector is a collector.Stage. Alerts leave it two ways, mirroring
// how Dedup handles "message repeated N times" summaries: as synthetic
// alert Records emitted downstream — classified, stored, queryable, and
// visible to the cluster coordinator like any other record — and as
// monitor.AlertManager notifications carrying the detector name and a
// confidence score.
//
// Memory is O(1) per source and bounded overall. Per-source state is a
// fixed-size ring of bucket counts plus exponentially-decayed
// mean/variance (never batch maps keyed by minute), the distinct-value
// counters are fixed-capacity open-addressing sets, and the source
// tables are sharded and capped (MaxSources) with idle eviction driven
// by the pipeline's sweep lifecycle — the same pattern as Dedup's window
// sweep. The steady-state evaluation path allocates nothing; inserts of
// never-seen sources and alert emission are the only allocating events.
package detect

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/obs"
	"hetsyslog/internal/syslog"
	"hetsyslog/internal/taxonomy"
)

// Detector kinds, indexing the fired/suppressed counter arrays.
const (
	kindRate = iota
	kindBurst
	kindSpray
	kindScan
	numKinds
)

// kindNames are the wire names used in Meta["detector"], alert
// attribution, metric labels and /detect/state.
var kindNames = [numKinds]string{"rate", "burst", "spray", "scan"}

// Config parametrizes a Detector. The zero value is usable: every field
// falls back to its documented default.
type Config struct {
	// Window is the sliding detection window (default 1m): the rate ring
	// spans one window, the sensitive-pattern counters reset each
	// window, and a source that fired re-arms after one window (the
	// per-source alert cooldown).
	Window time.Duration
	// Buckets subdivides the rate window's ring (default 6). More
	// buckets mean finer spike localization at a few bytes per source.
	Buckets int
	// ZScore is the rate-spike threshold in decayed standard deviations
	// above the per-source baseline (default 3).
	ZScore float64
	// MinCount is the minimum current-bucket count before a rate spike
	// is considered (default 10) — a large z-score over a near-zero
	// baseline is noise, not a surge.
	MinCount int
	// Decay is the exponential-decay factor folding each completed
	// bucket into the baseline mean/variance, in (0, 1) (default 0.3).
	// Higher values track shifts faster but forgive sustained floods
	// sooner.
	Decay float64
	// MaxSources caps tracked sources per table (rate and sensitive
	// each); inserting past the cap evicts the idlest of a bounded
	// sample of the target shard (default 1<<20).
	MaxSources int
	// IdleTTL evicts sources unseen this long during sweeps
	// (default 10*Window).
	IdleTTL time.Duration
	// Shards is the source-table shard count, rounded up to a power of
	// two (default 16). More shards cut lock contention under
	// multi-goroutine ingest.
	Shards int
	// BurstThreshold is how many auth failures on one host within one
	// window raise a failed-password-burst alert (default 6).
	BurstThreshold int
	// SprayThreshold is how many distinct usernames with auth failures
	// on one host within one window raise a spray alert (default 5).
	SprayThreshold int
	// ScanThreshold is how many distinct client ports making
	// pre-authentication connections to one host within one window raise
	// a scan alert (default 12).
	ScanThreshold int
	// DisableRate/DisableSensitive turn off one detector family.
	DisableRate      bool
	DisableSensitive bool
	// Classify optionally maps a message text to its taxonomy category —
	// wire it to core.Service.CategoryOf so rate baselines are keyed per
	// (host, category) by the same model the sink applies (the classify
	// cache is shared, so the lookup is usually a cache hit). Left nil,
	// the category dimension degrades to the syslog app name.
	Classify func(text string) taxonomy.Category
	// Alerts, when set, receives a ConsiderAlert call for every fired
	// alert, with the detector name and confidence attached.
	Alerts *monitor.AlertManager
	// Metrics optionally publishes the detector's counters, the
	// source-table gauge and the evaluation-latency histogram.
	Metrics *obs.Registry
	// Now allows tests to control the clock.
	Now func() time.Time
}

// withDefaults resolves every unset knob.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Buckets <= 0 {
		c.Buckets = 6
	}
	if c.ZScore <= 0 {
		c.ZScore = 3
	}
	if c.MinCount <= 0 {
		c.MinCount = 10
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.3
	}
	if c.MaxSources <= 0 {
		c.MaxSources = 1 << 20
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = 10 * c.Window
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.BurstThreshold <= 0 {
		c.BurstThreshold = 6
	}
	if c.SprayThreshold <= 0 {
		c.SprayThreshold = 5
	}
	if c.ScanThreshold <= 0 {
		c.ScanThreshold = 12
	}
	return c
}

// Detector is the streaming detection stage. Create one with New; it is
// safe for concurrent Process calls and implements
// collector.SweepingStage.
type Detector struct {
	cfg    Config
	window int64 // Window in nanoseconds
	bucket int64 // Window/Buckets in nanoseconds
	rate   *rateTable
	sens   *sensTable

	evaluated  *obs.Counter
	evicted    *obs.Counter
	fired      [numKinds]*obs.Counter
	suppressed [numKinds]*obs.Counter
	evalLat    *obs.Histogram
}

// New builds a Detector from cfg.
func New(cfg Config) (*Detector, error) {
	if cfg.DisableRate && cfg.DisableSensitive {
		return nil, errors.New("detect: both detector families disabled")
	}
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:    cfg,
		window: int64(cfg.Window),
		bucket: int64(cfg.Window) / int64(cfg.Buckets),
	}
	if d.bucket <= 0 {
		return nil, fmt.Errorf("detect: window %v too small for %d buckets", cfg.Window, cfg.Buckets)
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	perShard := (cfg.MaxSources + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	if !cfg.DisableRate {
		d.rate = newRateTable(shards, perShard)
	}
	if !cfg.DisableSensitive {
		d.sens = newSensTable(shards, perShard)
	}

	d.evaluated = cfg.Metrics.Counter("detect_evaluated_total",
		"records evaluated by the streaming detectors")
	d.evicted = cfg.Metrics.Counter("detect_evicted_total",
		"detector sources evicted (idle sweep or table at capacity)")
	for k := 0; k < numKinds; k++ {
		d.fired[k] = cfg.Metrics.Counter(
			`detect_fired_total{detector="`+kindNames[k]+`"}`,
			"alerts fired by the "+kindNames[k]+" detector")
		d.suppressed[k] = cfg.Metrics.Counter(
			`detect_suppressed_total{detector="`+kindNames[k]+`"}`,
			"alerts suppressed by the "+kindNames[k]+" detector's per-source cooldown")
	}
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("detect_sources",
			"sources tracked across the detector tables",
			func() int64 { return int64(d.Sources()) })
		d.evalLat = cfg.Metrics.Histogram("detect_eval_seconds",
			"streaming-detector evaluation latency per record", obs.LatencyBuckets)
	}
	return d, nil
}

func (d *Detector) now() time.Time {
	if d.cfg.Now != nil {
		return d.cfg.Now()
	}
	return time.Now()
}

// Process implements collector.Stage. Every record passes through
// unchanged — dropping is the filter chain's business — while the
// detectors fold it into their per-source state; any alerts it tips over
// a threshold are emitted downstream and offered to the alert manager.
func (d *Detector) Process(r collector.Record, emit func(collector.Record)) (collector.Record, bool) {
	if r.Msg == nil {
		return r, true
	}
	var start time.Time
	if d.evalLat != nil {
		start = time.Now()
	}
	now := d.now()
	nowNS := now.UnixNano()
	// Alerts fire from under shard locks into a fixed-size list and are
	// delivered after all detector state is updated, so emission (which
	// re-enters the chain downstream) never runs locked.
	var fired firedList
	if d.rate != nil {
		cat := r.Msg.AppName
		if d.cfg.Classify != nil {
			cat = string(d.cfg.Classify(r.Msg.Content))
		}
		d.rate.observe(d, r.Msg.Hostname, cat, nowNS, &fired)
	}
	if d.sens != nil {
		d.sens.observe(d, r.Msg.Hostname, r.Msg.Content, nowNS, &fired)
	}
	d.evaluated.Inc()
	if d.evalLat != nil {
		d.evalLat.ObserveDuration(time.Since(start))
	}
	for i := 0; i < fired.n; i++ {
		d.deliver(&fired.a[i], now, emit)
	}
	return r, true
}

// Sweep implements the pipeline's sweep lifecycle hook: it evicts
// sources unseen for IdleTTL from both tables, bounding memory through
// lulls, and returns the eviction count.
func (d *Detector) Sweep(now time.Time) int {
	cutoff := now.UnixNano() - int64(d.cfg.IdleTTL)
	n := 0
	if d.rate != nil {
		n += d.rate.sweep(cutoff)
	}
	if d.sens != nil {
		n += d.sens.sweep(cutoff)
	}
	if n > 0 {
		d.evicted.Add(int64(n))
	}
	return n
}

// Sources reports how many sources the detector tables currently track
// (rate and sensitive combined) — the value behind the detect_sources
// gauge.
func (d *Detector) Sources() int {
	n := 0
	if d.rate != nil {
		n += d.rate.len()
	}
	if d.sens != nil {
		n += d.sens.len()
	}
	return n
}

// firedAlert is one threshold crossing, recorded under a shard lock and
// rendered into a Record afterwards. host/category alias the source
// entry's own cloned strings, so they stay valid after the lock drops.
type firedAlert struct {
	kind      int
	host      string
	category  string
	count     int
	users     int
	ascending int
	baseline  float64
	z         float64
	conf      float64
}

// firedList collects the alerts one record can trip — at most one per
// detector kind — without allocating.
type firedList struct {
	n int
	a [numKinds]firedAlert
}

func (l *firedList) add(a firedAlert) {
	if l.n < len(l.a) {
		l.a[l.n] = a
		l.n++
	}
}

// deliver renders one fired alert into a synthetic Record, emits it
// downstream (where it is classified under the pre-labeled category,
// stored, and queryable like any record), and offers it to the alert
// manager with detector attribution and confidence.
func (d *Detector) deliver(f *firedAlert, now time.Time, emit func(collector.Record)) {
	d.fired[f.kind].Inc()
	var text string
	facility := syslog.AuthPriv
	severity := syslog.Alert
	cat := taxonomy.IntrusionDetection
	switch f.kind {
	case kindRate:
		text = fmt.Sprintf("rate spike: %d %q messages from %s in the current bucket (baseline %.1f/bucket, z=%.1f)",
			f.count, f.category, f.host, f.baseline, f.z)
		facility = syslog.Daemon
		severity = syslog.Warning
		// A spike is an anomaly in whatever category surged; only an
		// unlabeled surge falls back to Intrusion Detection.
		if c := taxonomy.Category(f.category); taxonomy.Valid(c) {
			cat = c
		}
	case kindBurst:
		text = fmt.Sprintf("failed-password burst: %d auth failures on %s within %v",
			f.count, f.host, d.cfg.Window)
	case kindSpray:
		text = fmt.Sprintf("username spray: auth failures for %d distinct users on %s within %v",
			f.users, f.host, d.cfg.Window)
	case kindScan:
		text = fmt.Sprintf("scan pattern: pre-auth connections from %d distinct ports on %s within %v (%d ascending)",
			f.count, f.host, d.cfg.Window, f.ascending)
	}
	rec := collector.Record{
		Tag:  "detect." + kindNames[f.kind],
		Time: now,
		Msg: &syslog.Message{
			Facility:  facility,
			Severity:  severity,
			Timestamp: now,
			Hostname:  f.host,
			AppName:   "detect",
			Content:   text,
		},
		Meta: map[string]string{
			"detector":   kindNames[f.kind],
			"confidence": strconv.FormatFloat(f.conf, 'f', 2, 64),
			"category":   string(cat),
		},
	}
	if emit != nil {
		emit(rec)
	}
	if d.cfg.Alerts != nil {
		d.cfg.Alerts.ConsiderAlert(monitor.Alert{
			Category:   cat,
			Node:       f.host,
			Text:       text,
			Time:       now,
			Detector:   kindNames[f.kind],
			Confidence: f.conf,
		})
	}
}

// FNV-1a, the alloc-free hash behind every source-table key.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// hashKey hashes host (and, for rate sources, category) into the uint64
// table key; the zero-byte separator keeps ("ab","c") and ("a","bc")
// distinct.
func hashKey(host, category string) uint64 {
	h := hashString(fnvOffset64, host)
	h ^= 0
	h *= fnvPrime64
	return hashString(h, category)
}

var _ collector.SweepingStage = (*Detector)(nil)
