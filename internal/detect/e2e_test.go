package detect

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/obs"
	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

// sliceSource replays a fixed record slice and returns, letting the
// pipeline drain and shut down cleanly.
type sliceSource struct{ recs []collector.Record }

func (s sliceSource) Run(_ context.Context, emit func(collector.Record) error) error {
	for _, r := range s.recs {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// TestDetectEndToEndAttacks is the acceptance scenario from the issue:
// each scripted loggen attack shape, replayed through a real pipeline
// with the detection stage, must fire exactly the expected alerts — as
// synthetic records that land in the store like any other message, and
// as ring entries behind GET /alerts — with the accounting invariant
// intact.
func TestDetectEndToEndAttacks(t *testing.T) {
	cases := []struct {
		kind loggen.AttackKind
		want map[string]int // detector name -> fired alerts
	}{
		{loggen.AttackBurst, map[string]int{"burst": 1}},
		// Spray attempts are auth failures too, so a spray fires the
		// burst detector alongside.
		{loggen.AttackSpray, map[string]int{"spray": 1, "burst": 1}},
		{loggen.AttackScan, map[string]int{"scan": 1}},
	}
	for _, tc := range cases {
		t.Run(string(tc.kind), func(t *testing.T) {
			gen := loggen.NewGenerator(42)
			target := gen.Cluster.Nodes[0]
			const n = 20
			examples, err := gen.Attack(tc.kind, target, n, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			recs := make([]collector.Record, 0, n)
			for _, ex := range examples {
				recs = append(recs, collector.Record{
					Tag: "syslog." + ex.Node.Name, Time: ex.Time, Msg: ex.Message(),
				})
			}

			st := store.New(2)
			am := &monitor.AlertManager{}
			reg := obs.NewRegistry()
			det, err := New(Config{Window: time.Minute, Alerts: am, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			pipe := &collector.Pipeline{
				Source:  sliceSource{recs: recs},
				Stages:  []collector.Stage{det},
				Sink:    &collector.StoreSink{Store: st},
				Metrics: reg,
				Config:  &collector.Config{BatchSize: 8, FlushInterval: time.Millisecond},
			}
			if err := pipe.Run(context.Background()); err != nil {
				t.Fatal(err)
			}

			wantAlerts := 0
			for _, c := range tc.want {
				wantAlerts += c
			}
			for name, want := range tc.want {
				k := -1
				for i, kn := range kindNames {
					if kn == name {
						k = i
					}
				}
				if got := det.fired[k].Value(); got != int64(want) {
					t.Errorf("%s fired %d, want %d", name, got, want)
				}
			}
			if got := det.fired[kindRate].Value(); got != 0 {
				t.Errorf("rate fired %d on a cold baseline, want 0", got)
			}

			// The synthetic alert records are stored alongside the attack
			// traffic, so they are queryable like any other record.
			if got := st.Count(); got != n+wantAlerts {
				t.Errorf("store holds %d docs, want %d attack + %d alerts", got, n, wantAlerts)
			}

			// Accounting: detector emissions count as Ingested, and every
			// record lands in exactly one bucket.
			s := pipe.Stats()
			if s.Ingested != int64(n+wantAlerts) {
				t.Errorf("Ingested = %d, want %d (source) + %d (detector emissions)", s.Ingested, n, wantAlerts)
			}
			if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
				t.Errorf("invariant broken: %+v", s)
			}

			// GET /alerts serves the same firings with attribution.
			w := httptest.NewRecorder()
			am.ServeAlerts(w, httptest.NewRequest("GET", "/alerts", nil))
			if w.Code != 200 {
				t.Fatalf("/alerts status %d: %s", w.Code, w.Body)
			}
			var served []monitor.Alert
			if err := json.Unmarshal(w.Body.Bytes(), &served); err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, a := range served {
				got[a.Detector]++
				if a.Node != target.Name {
					t.Errorf("alert names node %q, want target %q", a.Node, target.Name)
				}
				if a.Category != taxonomy.IntrusionDetection {
					t.Errorf("alert category %q, want %q", a.Category, taxonomy.IntrusionDetection)
				}
				if a.Confidence <= 0 || a.Confidence >= 1 {
					t.Errorf("alert confidence %v outside (0, 1)", a.Confidence)
				}
			}
			for name, want := range tc.want {
				if got[name] != want {
					t.Errorf("/alerts served %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// burstBatchSource hammers emitBatch from several goroutines, each
// replaying auth failures against its own host — the concurrent-ingest
// shape the syslog listener produces.
type burstBatchSource struct {
	workers, batches, batchLen int
}

func (s burstBatchSource) Run(ctx context.Context, emit func(collector.Record) error) error {
	return s.RunBatch(ctx, emit, func(rs []collector.Record) error {
		for _, r := range rs {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

func (s burstBatchSource) RunBatch(_ context.Context, _ func(collector.Record) error,
	emitBatch func([]collector.Record) error) error {
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := fmt.Sprintf("cn%03d", w)
			batch := make([]collector.Record, s.batchLen)
			for i := range batch {
				batch[i] = rec(host, "sshd",
					"Failed password for root from 203.0.113.9 port 40123 ssh2")
			}
			for b := 0; b < s.batches; b++ {
				if emitBatch(batch) != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// TestDetectStageAccountingInvariant is the property test from the
// issue, run under -race in CI: with several goroutines driving batched
// ingest through the detection stage and the detector injecting alert
// records mid-stream, the exact relation
//
//	Ingested == source records + detector emissions
//	Ingested == Filtered + Flushed + Dropped + Spooled
//
// must hold once the pipeline drains — no record double-counted or lost,
// however the emissions interleave.
func TestDetectStageAccountingInvariant(t *testing.T) {
	// A short window lapses the per-source cooldown mid-run, so each
	// host fires repeatedly while its worker is still emitting.
	det, err := New(Config{Window: 12 * time.Millisecond, Buckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	src := burstBatchSource{workers: 4, batches: 300, batchLen: 8}
	pipe := &collector.Pipeline{
		Source: src,
		Stages: []collector.Stage{det},
		Sink: collector.SinkFunc(func(_ context.Context, batch []collector.Record) error {
			delivered.Add(int64(len(batch)))
			return nil
		}),
		Config: &collector.Config{
			BatchSize: 16, FlushInterval: time.Millisecond,
			FlushWorkers: 2, SweepInterval: 5 * time.Millisecond,
		},
	}
	if err := pipe.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	sourceRecords := int64(src.workers * src.batches * src.batchLen)
	var emitted int64
	for k := 0; k < numKinds; k++ {
		emitted += det.fired[k].Value()
	}
	if emitted == 0 {
		t.Fatal("detector never fired; the property is vacuous")
	}
	s := pipe.Stats()
	if s.Ingested != sourceRecords+emitted {
		t.Errorf("Ingested = %d, want %d source + %d emitted", s.Ingested, sourceRecords, emitted)
	}
	if s.Ingested != s.Filtered+s.Flushed+s.Dropped+s.Spooled {
		t.Errorf("invariant broken: %+v", s)
	}
	if s.Flushed != delivered.Load() {
		t.Errorf("Flushed = %d but sink saw %d", s.Flushed, delivered.Load())
	}
}
